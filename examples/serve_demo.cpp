// End-to-end demo of the query-serving engine: build a (possibly sharded)
// IVF+RaBitQ index, hand it to a SearchEngine, and drive SubmitAsync from
// several producer threads while another thread churns the live index
// through its full lifecycle -- inserts, deletes and in-place updates, with
// background compaction reclaiming tombstones as their ratio crosses the
// configured threshold. Shows the future-based API, the micro-batching
// scheduler at work (mean batch size > 1 under concurrent load), the
// scatter-gather shard fan-out, and the per-engine stats endpoint including
// the lifecycle gauges. With --metrics-out, a background thread periodically
// rewrites the file with the engine's Prometheus text exposition -- point a
// node_exporter textfile collector (or curl in a loop) at it to scrape the
// demo, and the full metrics snapshot is printed as JSON at exit.
//
//   ./serve_demo [num_producers] [queries_per_producer] [--shards S]
//               [--metric l2|ip|cosine] [--metrics-out PATH]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/search_engine.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "util/prng.h"

using rabitq::EngineConfig;
using rabitq::EngineStatsSnapshot;
using rabitq::IdFilter;
using rabitq::IvfSearchParams;
using rabitq::Matrix;
using rabitq::Rng;
using rabitq::SearchEngine;
using rabitq::SearchRequest;
using rabitq::SearchResponse;
using rabitq::ShardedConfig;
using rabitq::ShardedIndex;
using rabitq::Status;

namespace {

Matrix GaussianClusters(std::size_t n, std::size_t dim, std::size_t clusters,
                        std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 6.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_shards = 1;
  rabitq::Metric metric = rabitq::Metric::kL2;
  const char* metrics_out = nullptr;
  std::vector<std::size_t> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0) {
      if (i + 1 >= argc || std::atol(argv[i + 1]) < 1) {
        std::fprintf(stderr,
                     "usage: serve_demo [num_producers] "
                     "[queries_per_producer] [--shards S>=1] "
                     "[--metric l2|ip|cosine] [--metrics-out PATH]\n");
        return 1;
      }
      num_shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--metric") == 0) {
      if (i + 1 >= argc || !rabitq::ParseMetricName(argv[i + 1], &metric)) {
        std::fprintf(stderr, "--metric needs one of l2|ip|cosine\n");
        return 1;
      }
      ++i;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--metrics-out needs a file path\n");
        return 1;
      }
      metrics_out = argv[++i];
    } else {
      positional.push_back(static_cast<std::size_t>(std::atol(argv[i])));
    }
  }
  const std::size_t num_producers =
      positional.size() > 0 ? positional[0] : 4;
  const std::size_t queries_per_producer =
      positional.size() > 1 ? positional[1] : 200;
  const std::size_t n = 20000, dim = 64;

  std::printf("building IVF+RaBitQ index over %zu x %zu vectors (%zu shard%s, "
              "metric %s)...\n",
              n, dim, num_shards, num_shards == 1 ? "" : "s",
              rabitq::MetricName(metric));
  Matrix data = GaussianClusters(n, dim, 32, 1);
  ShardedIndex index;
  ShardedConfig sharded_config;
  sharded_config.num_shards = num_shards;
  sharded_config.ivf.metric = metric;
  // Split the list budget across the shards so the total probe work stays
  // comparable as --shards grows.
  sharded_config.ivf.num_lists =
      std::max<std::size_t>(1, 128 / num_shards);
  Status status = index.Build(data, sharded_config);
  if (!status.ok()) {
    std::fprintf(stderr, "Build failed: %s\n", status.ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.max_batch = 32;
  config.batch_linger_us = 200;
  // Compact a list as soon as 10% of its entries are tombstones, so the
  // short demo run actually exercises the background compactor.
  config.compaction_tombstone_ratio = 0.10f;
  config.compaction_min_dead = 8;
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = std::max<std::size_t>(1, 16 / num_shards);  // per shard
  config.default_params = params;

  // Trace sink: every 64th query (the default sample period) delivers its
  // per-stage span breakdown here. Keep the first few and print them at the
  // end -- a stand-in for shipping traces to a real collector.
  struct TraceRecord {
    std::uint64_t seed;
    double us[rabitq::obs::kNumStages];
  };
  std::mutex trace_mutex;
  std::vector<TraceRecord> trace_records;
  config.trace_sink = [&](std::uint64_t seed,
                          const rabitq::obs::QueryTrace& trace) {
    std::lock_guard<std::mutex> lock(trace_mutex);
    if (trace_records.size() >= 5) return;
    TraceRecord rec;
    rec.seed = seed;
    for (int s = 0; s < rabitq::obs::kNumStages; ++s) {
      rec.us[s] = trace.Micros(static_cast<rabitq::obs::Stage>(s));
    }
    trace_records.push_back(rec);
  };

  SearchEngine engine(std::move(index), config);
  std::printf("engine up: %zu worker thread(s), %zu shard(s), max_batch=%zu\n",
              engine.num_threads(), engine.num_shards(), config.max_batch);

  // Metrics exporter: periodically rewrite --metrics-out with the Prometheus
  // text format (write to a temp file then rename, so scrapers never see a
  // torn exposition).
  std::atomic<bool> stop_exporter{false};
  std::thread exporter;
  if (metrics_out != nullptr) {
    exporter = std::thread([&] {
      const std::string tmp = std::string(metrics_out) + ".tmp";
      while (!stop_exporter.load(std::memory_order_relaxed)) {
        const std::string text =
            rabitq::obs::ExportPrometheus(engine.SnapshotMetrics());
        if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
          std::fwrite(text.data(), 1, text.size(), f);
          std::fclose(f);
          std::rename(tmp.c_str(), metrics_out);
        }
        for (int i = 0; i < 10 && !stop_exporter.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    });
    std::printf("metrics exporter: writing Prometheus text to %s every 1s\n",
                metrics_out);
  }

  // Producers: each thread submits its queries and immediately waits on the
  // returned futures -- the scheduler gathers concurrent submissions into
  // shared batches behind the scenes.
  Matrix queries =
      GaussianClusters(num_producers * queries_per_producer, dim, 32, 2);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < num_producers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<SearchResponse>> futures;
      futures.reserve(queries_per_producer);
      for (std::size_t i = 0; i < queries_per_producer; ++i) {
        futures.push_back(engine.SubmitAsync(
            SearchRequest{queries.Row(p * queries_per_producer + i), params}));
      }
      std::size_t ok = 0;
      float nearest = -1.0f;
      for (auto& f : futures) {
        SearchResponse result = f.get();
        if (result.status.ok()) {
          ++ok;
          if (!result.neighbors.empty()) nearest = result.neighbors[0].first;
        }
      }
      std::printf("producer %zu: %zu/%zu ok (last top-1 dist^2 %.3f)\n", p,
                  ok, queries_per_producer, nearest);
    });
  }

  // A writer churns the serving index concurrently: a fresh insert, a
  // delete and an in-place update per round -- live traffic never stops.
  // The writer tracks its own deletions rather than peeking at
  // engine.index() mid-flight: reading index internals while the
  // background compactor commits is outside the documented contract.
  std::thread writer([&] {
    Matrix fresh = GaussianClusters(256, dim, 32, 3);
    Rng rng(4);
    std::vector<bool> deleted(n, false);
    for (std::size_t i = 0; i < fresh.rows(); ++i) {
      std::uint32_t id = 0;
      if (!engine.Insert(fresh.Row(i), &id).ok()) continue;
      const std::uint32_t victim = static_cast<std::uint32_t>(i * 7 % n);
      if (!deleted[victim] && engine.Delete(victim).ok()) {
        deleted[victim] = true;
      }
      const std::uint32_t moved = static_cast<std::uint32_t>(i * 13 % n);
      if (!deleted[moved]) {
        std::vector<float> vec(dim);
        for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 6.0f;
        engine.Update(moved, vec.data());
      }
      if ((i + 1) % 64 == 0) {
        const EngineStatsSnapshot s = engine.Stats();
        std::printf("writer: +%llu -%llu ~%llu | live %llu, tombstones %llu,"
                    " compactions %llu, epoch %llu\n",
                    static_cast<unsigned long long>(s.inserts),
                    static_cast<unsigned long long>(s.deletes),
                    static_cast<unsigned long long>(s.updates),
                    static_cast<unsigned long long>(s.live_vectors),
                    static_cast<unsigned long long>(s.tombstones),
                    static_cast<unsigned long long>(s.compactions),
                    static_cast<unsigned long long>(s.epoch));
      }
    }
  });

  for (auto& t : producers) t.join();
  writer.join();

  // Drain whatever tombstones the background pass has not claimed yet.
  const Status compact_status = engine.CompactNow();
  if (!compact_status.ok()) {
    std::fprintf(stderr, "CompactNow failed: %s\n",
                 compact_status.ToString().c_str());
  }

  // --- Filtered search: the same serving path with a per-query IdFilter.
  // The filter is pushed down into the fused scan (it joins the tombstone
  // bits in the kernel's survivors mask), so excluded ids never reach exact
  // re-ranking and there is no post-filtering pass. Here: a predicate
  // admitting only even ids, then an allow-bitmap pinned to three ids --
  // the "search within this user's documents" shape.
  if (queries.rows() > 0) {
    SearchRequest request{queries.Row(0), params};
    request.options.seed = 42;  // explicit seed: reproducible across runs
    request.options.filter = IdFilter::FromPredicate(
        [](void*, std::uint32_t id) { return id % 2 == 0; }, nullptr);
    const SearchResponse even = engine.Search(request);
    bool all_even = even.ok();
    for (const auto& nb : even.neighbors) all_even &= nb.second % 2 == 0;
    std::printf("\nfiltered search (even ids only): %zu hits, all even: %s, "
                "codes filtered in-scan: %zu\n",
                even.neighbors.size(), all_even ? "yes" : "NO",
                even.stats.codes_filtered);

    std::vector<std::uint64_t> bitmap((n + 63) / 64, 0);
    for (const std::uint32_t id : {2001u, 9999u, 15000u}) {  // churn survivors
      bitmap[id >> 6] |= std::uint64_t{1} << (id & 63u);
    }
    request.options.filter = IdFilter::AllowBitmap(bitmap.data(), n);
    // Probe every list: with only three candidate ids in the whole index,
    // an IVF subset probe would usually miss their lists entirely.
    request.options.nprobe = ~std::size_t{0};
    const SearchResponse pinned = engine.Search(request);
    std::printf("filtered search (3-id allowlist): top hits =");
    for (const auto& nb : pinned.neighbors) {
      std::printf(" %u(d^2=%.2f)", nb.second, nb.first);
    }
    std::printf("\n");
  }

  const EngineStatsSnapshot stats = engine.Stats();
  std::printf(
      "\nserved %llu queries in %llu batches (mean batch %.1f)\n"
      "qps %.0f | latency p50 %.0fus p99 %.0fus max %.0fus\n"
      "codes estimated %llu | candidates re-ranked %llu | lists probed %llu"
      " | codes filtered %llu\n"
      "inserts %llu, deletes %llu, updates %llu, lists compacted %llu\n"
      "epoch %llu | ids %zu, live %llu, tombstones %llu\n",
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.batches), stats.mean_batch_size,
      stats.qps, stats.latency_p50_us, stats.latency_p99_us,
      stats.latency_max_us,
      static_cast<unsigned long long>(stats.codes_estimated),
      static_cast<unsigned long long>(stats.candidates_reranked),
      static_cast<unsigned long long>(stats.lists_probed),
      static_cast<unsigned long long>(stats.codes_filtered),
      static_cast<unsigned long long>(stats.inserts),
      static_cast<unsigned long long>(stats.deletes),
      static_cast<unsigned long long>(stats.updates),
      static_cast<unsigned long long>(stats.compactions),
      static_cast<unsigned long long>(stats.epoch), engine.size(),
      static_cast<unsigned long long>(stats.live_vectors),
      static_cast<unsigned long long>(stats.tombstones));
  std::printf(
      "estimator health: eps0 violation rate %.4f | signed rel-err mean "
      "%+.4f | bound tightness %.3f (%llu samples)\n",
      stats.eps0_violation_rate, stats.rerank_signed_err_mean,
      stats.rerank_bound_tightness_mean,
      static_cast<unsigned long long>(stats.rerank_health_samples));

  {
    std::lock_guard<std::mutex> lock(trace_mutex);
    std::printf("\nsampled query traces (first %zu):\n", trace_records.size());
    for (const TraceRecord& rec : trace_records) {
      std::printf("  seed %llu:", static_cast<unsigned long long>(rec.seed));
      for (int s = 0; s < rabitq::obs::kNumStages; ++s) {
        std::printf(" %s=%.1fus",
                    rabitq::obs::StageName(static_cast<rabitq::obs::Stage>(s)),
                    rec.us[s]);
      }
      std::printf("\n");
    }
  }

  if (exporter.joinable()) {
    stop_exporter.store(true);
    exporter.join();
    // One final write so the file reflects the full run.
    const std::string text =
        rabitq::obs::ExportPrometheus(engine.SnapshotMetrics());
    if (std::FILE* f = std::fopen(metrics_out, "w")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
    }
  }
  std::printf("\nmetrics snapshot (JSON):\n%s\n",
              rabitq::obs::ExportJson(engine.SnapshotMetrics()).c_str());
  return 0;
}
