// End-to-end demo of the serving stack. Two modes:
//
//   * Default (wire): starts the network server in-process on an ephemeral
//     port, creates a "demo" collection over the wire (training vectors ride
//     the create_collection frame), then drives it like a real deployment:
//     N closed-loop producer clients searching, a writer client churning the
//     live collection (add / delete / update), a metrics scraper polling the
//     stats endpoint. --metrics-out periodically rewrites the file with the
//     collection's Prometheus exposition FETCHED OVER THE WIRE -- the same
//     text the in-process exporter used to write, so existing scrape
//     tooling keeps working. Ends with a filtered search (allow-bitmap
//     pushed down through the protocol), a drain request and a clean server
//     shutdown.
//
//   * --in-process: the pre-server demo, linking SearchEngine directly --
//     SubmitAsync futures, micro-batching, background compaction, the
//     predicate IdFilter (which cannot cross the wire) and sampled query
//     traces.
//
//   ./serve_demo [num_producers] [queries_per_producer] [--shards S]
//               [--metric l2|ip|cosine] [--metrics-out PATH] [--in-process]

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/search_engine.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"
#include "util/prng.h"

using rabitq::EngineConfig;
using rabitq::EngineStatsSnapshot;
using rabitq::IdFilter;
using rabitq::IvfSearchParams;
using rabitq::Matrix;
using rabitq::Rng;
using rabitq::SearchEngine;
using rabitq::SearchOptions;
using rabitq::SearchRequest;
using rabitq::SearchResponse;
using rabitq::ShardedConfig;
using rabitq::ShardedIndex;
using rabitq::Status;

namespace {

Matrix GaussianClusters(std::size_t n, std::size_t dim, std::size_t clusters,
                        std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 6.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

void WriteFileAtomic(const char* path, const std::string& text) {
  const std::string tmp = std::string(path) + ".tmp";
  if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::rename(tmp.c_str(), path);
  }
}

struct DemoArgs {
  std::size_t num_producers = 4;
  std::size_t queries_per_producer = 200;
  std::size_t num_shards = 1;
  rabitq::Metric metric = rabitq::Metric::kL2;
  const char* metrics_out = nullptr;
  bool in_process = false;
};

// ------------------------------------------------------------ wire mode ---

int RunWire(const DemoArgs& args) {
  using rabitq::server::Client;
  using rabitq::server::Server;
  using rabitq::server::ServerConfig;
  using rabitq::server::WireCollectionSpec;

  const std::size_t n = 20000, dim = 64;
  std::printf("starting rabitq server (in-process, ephemeral port)...\n");
  ServerConfig server_config;
  server_config.port = 0;
  server_config.collections.root_dir =
      "/tmp/serve_demo_" + std::to_string(::getpid());
  server_config.collections.engine.compaction_tombstone_ratio = 0.10f;
  server_config.collections.engine.compaction_min_dead = 8;
  Server server(server_config);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  const std::uint16_t port = server.port();

  std::printf("creating collection 'demo' over the wire: %zu x %zu vectors "
              "(%zu shard%s, metric %s)...\n",
              n, dim, args.num_shards, args.num_shards == 1 ? "" : "s",
              rabitq::MetricName(args.metric));
  const Matrix data = GaussianClusters(n, dim, 32, 1);
  WireCollectionSpec spec;
  spec.dim = dim;
  spec.metric = args.metric;
  spec.bits_per_dim = 1;
  spec.num_shards = static_cast<std::uint32_t>(args.num_shards);
  // Split the list budget across the shards so the total probe work stays
  // comparable as --shards grows.
  spec.num_lists = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, 128 / args.num_shards));

  Client admin;
  status = admin.Connect("127.0.0.1", port);
  if (status.ok()) status = admin.CreateCollection("demo", spec, data);
  if (!status.ok()) {
    std::fprintf(stderr, "create_collection failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  SearchOptions options;
  options.k = 10;
  options.nprobe = std::max<std::size_t>(1, 16 / args.num_shards);

  // Metrics scraper: polls the stats endpoint over the wire and atomically
  // rewrites --metrics-out with the collection's Prometheus exposition --
  // the same unlabeled text the in-process exporter wrote, so scrape
  // tooling (and the CI greps) see an unchanged format.
  std::atomic<bool> stop_exporter{false};
  std::thread exporter;
  if (args.metrics_out != nullptr) {
    exporter = std::thread([&] {
      Client scraper;
      if (!scraper.Connect("127.0.0.1", port).ok()) return;
      while (!stop_exporter.load(std::memory_order_relaxed)) {
        std::string text;
        if (scraper.Stats("demo", /*format=*/1, &text).ok()) {
          WriteFileAtomic(args.metrics_out, text);
        }
        for (int i = 0; i < 10 && !stop_exporter.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    });
    std::printf("metrics scraper: polling stats -> %s every 1s\n",
                args.metrics_out);
  }

  // Producers: one closed-loop client connection each. Concurrent requests
  // from different connections coalesce in the server's micro-batching
  // queue exactly like in-process SubmitAsync producers.
  const Matrix queries = GaussianClusters(
      args.num_producers * args.queries_per_producer, dim, 32, 2);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < args.num_producers; ++p) {
    producers.emplace_back([&, p] {
      Client client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        std::fprintf(stderr, "producer %zu: connect failed\n", p);
        return;
      }
      std::size_t ok = 0;
      float nearest = -1.0f;
      for (std::size_t i = 0; i < args.queries_per_producer; ++i) {
        const SearchResponse response = client.Search(
            "demo", queries.Row(p * args.queries_per_producer + i), dim,
            options);
        if (response.status.ok()) {
          ++ok;
          if (!response.neighbors.empty()) {
            nearest = response.neighbors[0].first;
          }
        }
      }
      std::printf("producer %zu: %zu/%zu ok (last top-1 dist^2 %.3f)\n", p,
                  ok, args.queries_per_producer, nearest);
    });
  }

  // Writer client: churns the live collection over the wire -- a fresh add,
  // a delete and an in-place update per round, against live search traffic.
  std::thread writer([&] {
    Client client;
    if (!client.Connect("127.0.0.1", port).ok()) return;
    const Matrix fresh = GaussianClusters(256, dim, 32, 3);
    Rng rng(4);
    std::vector<bool> deleted(n, false);
    std::size_t adds = 0, deletes = 0, updates = 0;
    for (std::size_t i = 0; i < fresh.rows(); ++i) {
      std::uint32_t id = 0;
      if (!client.Add("demo", fresh.Row(i), dim, &id).ok()) continue;
      ++adds;
      const std::uint32_t victim = static_cast<std::uint32_t>(i * 7 % n);
      if (!deleted[victim] && client.Delete("demo", victim).ok()) {
        deleted[victim] = true;
        ++deletes;
      }
      const std::uint32_t moved = static_cast<std::uint32_t>(i * 13 % n);
      if (!deleted[moved]) {
        std::vector<float> vec(dim);
        for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 6.0f;
        if (client.Update("demo", moved, vec.data(), dim).ok()) ++updates;
      }
    }
    std::printf("writer: +%zu -%zu ~%zu over the wire\n", adds, deletes,
                updates);
  });

  for (auto& t : producers) t.join();
  writer.join();

  // Filtered search over the wire: an allow-bitmap rides the request frame
  // and is pushed down into the per-shard scans server-side. (Predicate
  // filters have no wire form -- see --in-process for that path.)
  {
    std::vector<std::uint64_t> bitmap((n + 63) / 64, 0);
    for (const std::uint32_t id : {2001u, 9999u, 15000u}) {  // churn survivors
      bitmap[id >> 6] |= std::uint64_t{1} << (id & 63u);
    }
    SearchOptions pinned = options;
    pinned.seed = 42;  // explicit seed: reproducible across runs
    pinned.filter = IdFilter::AllowBitmap(bitmap.data(), n);
    pinned.nprobe = ~std::size_t{0};  // probe every list for a 3-id allowlist
    const SearchResponse response =
        admin.Search("demo", queries.Row(0), dim, pinned);
    std::printf("\nfiltered search over the wire (3-id allowlist): hits =");
    for (const auto& nb : response.neighbors) {
      std::printf(" %u(d^2=%.2f)", nb.second, nb.first);
    }
    std::printf("\n");
  }

  // Final scrapes: the per-collection JSON and the server-wide exposition
  // (server counters + collection="demo" labeled engine series).
  std::string collection_json;
  if (admin.Stats("demo", /*format=*/0, &collection_json).ok()) {
    std::printf("\ncollection metrics (JSON over the wire):\n%s\n",
                collection_json.c_str());
  }
  std::string server_stats;
  if (admin.Stats("", /*format=*/1, &server_stats).ok()) {
    std::printf("\nserver-wide exposition: %zu bytes "
                "(rabitq_server_* + collection-labeled series)\n",
                server_stats.size());
  }

  if (exporter.joinable()) {
    stop_exporter.store(true);
    exporter.join();
    // One final scrape so the file reflects the full run.
    std::string text;
    if (admin.Stats("demo", /*format=*/1, &text).ok()) {
      WriteFileAtomic(args.metrics_out, text);
    }
  }

  const Status drain_status = admin.Drain();
  server.Wait();
  if (!drain_status.ok()) {
    std::fprintf(stderr, "drain failed: %s\n",
                 drain_status.ToString().c_str());
    return 1;
  }
  std::printf("\nserver drained cleanly\n");
  return 0;
}

// ------------------------------------------------------ in-process mode ---

int RunInProcess(const DemoArgs& args) {
  const std::size_t num_producers = args.num_producers;
  const std::size_t queries_per_producer = args.queries_per_producer;
  const std::size_t num_shards = args.num_shards;
  const rabitq::Metric metric = args.metric;
  const char* metrics_out = args.metrics_out;
  const std::size_t n = 20000, dim = 64;

  std::printf("building IVF+RaBitQ index over %zu x %zu vectors (%zu shard%s, "
              "metric %s)...\n",
              n, dim, num_shards, num_shards == 1 ? "" : "s",
              rabitq::MetricName(metric));
  Matrix data = GaussianClusters(n, dim, 32, 1);
  ShardedIndex index;
  ShardedConfig sharded_config;
  sharded_config.num_shards = num_shards;
  sharded_config.ivf.metric = metric;
  // Split the list budget across the shards so the total probe work stays
  // comparable as --shards grows.
  sharded_config.ivf.num_lists =
      std::max<std::size_t>(1, 128 / num_shards);
  Status status = index.Build(data, sharded_config);
  if (!status.ok()) {
    std::fprintf(stderr, "Build failed: %s\n", status.ToString().c_str());
    return 1;
  }

  EngineConfig config;
  config.max_batch = 32;
  config.batch_linger_us = 200;
  // Compact a list as soon as 10% of its entries are tombstones, so the
  // short demo run actually exercises the background compactor.
  config.compaction_tombstone_ratio = 0.10f;
  config.compaction_min_dead = 8;
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = std::max<std::size_t>(1, 16 / num_shards);  // per shard
  config.default_params = params;

  // Trace sink: every 64th query (the default sample period) delivers its
  // per-stage span breakdown here. Keep the first few and print them at the
  // end -- a stand-in for shipping traces to a real collector.
  struct TraceRecord {
    std::uint64_t seed;
    double us[rabitq::obs::kNumStages];
  };
  std::mutex trace_mutex;
  std::vector<TraceRecord> trace_records;
  config.trace_sink = [&](std::uint64_t seed,
                          const rabitq::obs::QueryTrace& trace) {
    std::lock_guard<std::mutex> lock(trace_mutex);
    if (trace_records.size() >= 5) return;
    TraceRecord rec;
    rec.seed = seed;
    for (int s = 0; s < rabitq::obs::kNumStages; ++s) {
      rec.us[s] = trace.Micros(static_cast<rabitq::obs::Stage>(s));
    }
    trace_records.push_back(rec);
  };

  SearchEngine engine(std::move(index), config);
  std::printf("engine up: %zu worker thread(s), %zu shard(s), max_batch=%zu\n",
              engine.num_threads(), engine.num_shards(), config.max_batch);

  // Metrics exporter: periodically rewrite --metrics-out with the Prometheus
  // text format (write to a temp file then rename, so scrapers never see a
  // torn exposition).
  std::atomic<bool> stop_exporter{false};
  std::thread exporter;
  if (metrics_out != nullptr) {
    exporter = std::thread([&] {
      while (!stop_exporter.load(std::memory_order_relaxed)) {
        WriteFileAtomic(metrics_out,
                        rabitq::obs::ExportPrometheus(engine.SnapshotMetrics()));
        for (int i = 0; i < 10 && !stop_exporter.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      }
    });
    std::printf("metrics exporter: writing Prometheus text to %s every 1s\n",
                metrics_out);
  }

  // Producers: each thread submits its queries and immediately waits on the
  // returned futures -- the scheduler gathers concurrent submissions into
  // shared batches behind the scenes.
  Matrix queries =
      GaussianClusters(num_producers * queries_per_producer, dim, 32, 2);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < num_producers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<std::future<SearchResponse>> futures;
      futures.reserve(queries_per_producer);
      for (std::size_t i = 0; i < queries_per_producer; ++i) {
        futures.push_back(engine.SubmitAsync(
            SearchRequest{queries.Row(p * queries_per_producer + i), params}));
      }
      std::size_t ok = 0;
      float nearest = -1.0f;
      for (auto& f : futures) {
        SearchResponse result = f.get();
        if (result.status.ok()) {
          ++ok;
          if (!result.neighbors.empty()) nearest = result.neighbors[0].first;
        }
      }
      std::printf("producer %zu: %zu/%zu ok (last top-1 dist^2 %.3f)\n", p,
                  ok, queries_per_producer, nearest);
    });
  }

  // A writer churns the serving index concurrently: a fresh insert, a
  // delete and an in-place update per round -- live traffic never stops.
  // The writer tracks its own deletions rather than peeking at
  // engine.index() mid-flight: reading index internals while the
  // background compactor commits is outside the documented contract.
  std::thread writer([&] {
    Matrix fresh = GaussianClusters(256, dim, 32, 3);
    Rng rng(4);
    std::vector<bool> deleted(n, false);
    for (std::size_t i = 0; i < fresh.rows(); ++i) {
      std::uint32_t id = 0;
      if (!engine.Insert(fresh.Row(i), &id).ok()) continue;
      const std::uint32_t victim = static_cast<std::uint32_t>(i * 7 % n);
      if (!deleted[victim] && engine.Delete(victim).ok()) {
        deleted[victim] = true;
      }
      const std::uint32_t moved = static_cast<std::uint32_t>(i * 13 % n);
      if (!deleted[moved]) {
        std::vector<float> vec(dim);
        for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 6.0f;
        engine.Update(moved, vec.data());
      }
      if ((i + 1) % 64 == 0) {
        const EngineStatsSnapshot s = engine.Stats();
        std::printf("writer: +%llu -%llu ~%llu | live %llu, tombstones %llu,"
                    " compactions %llu, epoch %llu\n",
                    static_cast<unsigned long long>(s.inserts),
                    static_cast<unsigned long long>(s.deletes),
                    static_cast<unsigned long long>(s.updates),
                    static_cast<unsigned long long>(s.live_vectors),
                    static_cast<unsigned long long>(s.tombstones),
                    static_cast<unsigned long long>(s.compactions),
                    static_cast<unsigned long long>(s.epoch));
      }
    }
  });

  for (auto& t : producers) t.join();
  writer.join();

  // Drain whatever tombstones the background pass has not claimed yet.
  const Status compact_status = engine.CompactNow();
  if (!compact_status.ok()) {
    std::fprintf(stderr, "CompactNow failed: %s\n",
                 compact_status.ToString().c_str());
  }

  // --- Filtered search: the same serving path with a per-query IdFilter.
  // The filter is pushed down into the fused scan (it joins the tombstone
  // bits in the kernel's survivors mask), so excluded ids never reach exact
  // re-ranking and there is no post-filtering pass. Here: a predicate
  // admitting only even ids, then an allow-bitmap pinned to three ids --
  // the "search within this user's documents" shape.
  if (queries.rows() > 0) {
    SearchRequest request{queries.Row(0), params};
    request.options.seed = 42;  // explicit seed: reproducible across runs
    request.options.filter = IdFilter::FromPredicate(
        [](void*, std::uint32_t id) { return id % 2 == 0; }, nullptr);
    const SearchResponse even = engine.Search(request);
    bool all_even = even.ok();
    for (const auto& nb : even.neighbors) all_even &= nb.second % 2 == 0;
    std::printf("\nfiltered search (even ids only): %zu hits, all even: %s, "
                "codes filtered in-scan: %zu\n",
                even.neighbors.size(), all_even ? "yes" : "NO",
                even.stats.codes_filtered);

    std::vector<std::uint64_t> bitmap((n + 63) / 64, 0);
    for (const std::uint32_t id : {2001u, 9999u, 15000u}) {  // churn survivors
      bitmap[id >> 6] |= std::uint64_t{1} << (id & 63u);
    }
    request.options.filter = IdFilter::AllowBitmap(bitmap.data(), n);
    // Probe every list: with only three candidate ids in the whole index,
    // an IVF subset probe would usually miss their lists entirely.
    request.options.nprobe = ~std::size_t{0};
    const SearchResponse pinned = engine.Search(request);
    std::printf("filtered search (3-id allowlist): top hits =");
    for (const auto& nb : pinned.neighbors) {
      std::printf(" %u(d^2=%.2f)", nb.second, nb.first);
    }
    std::printf("\n");
  }

  const EngineStatsSnapshot stats = engine.Stats();
  std::printf(
      "\nserved %llu queries in %llu batches (mean batch %.1f)\n"
      "qps %.0f | latency p50 %.0fus p99 %.0fus max %.0fus\n"
      "codes estimated %llu | candidates re-ranked %llu | lists probed %llu"
      " | codes filtered %llu\n"
      "inserts %llu, deletes %llu, updates %llu, lists compacted %llu\n"
      "epoch %llu | ids %zu, live %llu, tombstones %llu\n",
      static_cast<unsigned long long>(stats.queries),
      static_cast<unsigned long long>(stats.batches), stats.mean_batch_size,
      stats.qps, stats.latency_p50_us, stats.latency_p99_us,
      stats.latency_max_us,
      static_cast<unsigned long long>(stats.codes_estimated),
      static_cast<unsigned long long>(stats.candidates_reranked),
      static_cast<unsigned long long>(stats.lists_probed),
      static_cast<unsigned long long>(stats.codes_filtered),
      static_cast<unsigned long long>(stats.inserts),
      static_cast<unsigned long long>(stats.deletes),
      static_cast<unsigned long long>(stats.updates),
      static_cast<unsigned long long>(stats.compactions),
      static_cast<unsigned long long>(stats.epoch), engine.size(),
      static_cast<unsigned long long>(stats.live_vectors),
      static_cast<unsigned long long>(stats.tombstones));
  std::printf(
      "estimator health: eps0 violation rate %.4f | signed rel-err mean "
      "%+.4f | bound tightness %.3f (%llu samples)\n",
      stats.eps0_violation_rate, stats.rerank_signed_err_mean,
      stats.rerank_bound_tightness_mean,
      static_cast<unsigned long long>(stats.rerank_health_samples));

  {
    std::lock_guard<std::mutex> lock(trace_mutex);
    std::printf("\nsampled query traces (first %zu):\n", trace_records.size());
    for (const TraceRecord& rec : trace_records) {
      std::printf("  seed %llu:", static_cast<unsigned long long>(rec.seed));
      for (int s = 0; s < rabitq::obs::kNumStages; ++s) {
        std::printf(" %s=%.1fus",
                    rabitq::obs::StageName(static_cast<rabitq::obs::Stage>(s)),
                    rec.us[s]);
      }
      std::printf("\n");
    }
  }

  if (exporter.joinable()) {
    stop_exporter.store(true);
    exporter.join();
    // One final write so the file reflects the full run.
    WriteFileAtomic(metrics_out,
                    rabitq::obs::ExportPrometheus(engine.SnapshotMetrics()));
  }
  std::printf("\nmetrics snapshot (JSON):\n%s\n",
              rabitq::obs::ExportJson(engine.SnapshotMetrics()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DemoArgs args;
  std::vector<std::size_t> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0) {
      if (i + 1 >= argc || std::atol(argv[i + 1]) < 1) {
        std::fprintf(stderr,
                     "usage: serve_demo [num_producers] "
                     "[queries_per_producer] [--shards S>=1] "
                     "[--metric l2|ip|cosine] [--metrics-out PATH] "
                     "[--in-process]\n");
        return 1;
      }
      args.num_shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--metric") == 0) {
      if (i + 1 >= argc || !rabitq::ParseMetricName(argv[i + 1], &args.metric)) {
        std::fprintf(stderr, "--metric needs one of l2|ip|cosine\n");
        return 1;
      }
      ++i;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--metrics-out needs a file path\n");
        return 1;
      }
      args.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--in-process") == 0) {
      args.in_process = true;
    } else {
      positional.push_back(static_cast<std::size_t>(std::atol(argv[i])));
    }
  }
  if (positional.size() > 0) args.num_producers = positional[0];
  if (positional.size() > 1) args.queries_per_producer = positional[1];

  return args.in_process ? RunInProcess(args) : RunWire(args);
}
