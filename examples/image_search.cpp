// Image-retrieval scenario: build an IVF+RaBitQ index over image-like
// embeddings (clustered 150-d vectors, mirroring the paper's "Image"
// dataset) and run top-100 searches with the paper's tuning-free
// error-bound re-ranking. Embedding retrieval usually ranks by angle, so
// the distance metric is a flag: cosine (or ip) serves maximum-similarity
// search through the same index and the same error-bound machinery.
//
//   $ ./build/examples/image_search [--metric l2|ip|cosine]

#include <cstdio>
#include <cstring>

#include "eval/datasets.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/ivf.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace rabitq;

  Metric metric = Metric::kL2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc &&
        ParseMetricName(argv[i + 1], &metric)) {
      ++i;
    } else {
      std::fprintf(stderr, "usage: image_search [--metric l2|ip|cosine]\n");
      return 1;
    }
  }

  // --- Synthetic image-embedding workload (see eval/datasets.h). ----------
  SyntheticSpec spec;
  spec.name = "image-embeddings";
  spec.n = 50000;
  spec.dim = 150;
  spec.num_queries = 100;
  spec.kind = DatasetKind::kGaussianMixture;
  spec.num_clusters = 120;
  spec.cluster_spread = 0.7f;
  Matrix base, queries;
  Status status = GenerateDataset(spec, &base, &queries);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("dataset: %zu images, dim %zu, %zu queries\n", base.rows(),
              base.cols(), queries.rows());

  // --- Build the index. -----------------------------------------------------
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 256;  // ~4 sqrt(N)
  ivf.metric = metric;
  WallTimer build_timer;
  status = index.Build(base, ivf, RabitqConfig{});
  if (!status.ok()) {
    std::fprintf(stderr, "build failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("index built in %.1fs (%zu lists, %zu-bit codes, metric %s)\n",
              build_timer.ElapsedSeconds(), index.num_lists(),
              index.encoder().total_bits(), MetricName(metric));

  // --- Ground truth for recall reporting (same metric as the index; the
  // mismatch guard below turns a drifted flag into an error, not a silently
  // wrong recall table). ----------------------------------------------------
  GroundTruth gt;
  status = ComputeGroundTruth(base, queries, 100, metric, &gt);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  status = CheckGroundTruthMetric(gt, index.metric());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // --- Search at several probe widths. --------------------------------------
  TablePrinter table({"nprobe", "recall@100", "avg dist ratio", "QPS",
                      "reranked/query"});
  Rng rng(7);
  for (const std::size_t nprobe : {4u, 8u, 16u, 32u, 64u}) {
    IvfSearchParams params;
    params.k = 100;
    params.nprobe = nprobe;
    double recall = 0.0, ratio = 0.0;
    std::size_t reranked = 0;
    WallTimer timer;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      params.seed = rng.NextU64();
      const rabitq::SearchResponse response =
          index.Search(rabitq::SearchRequest{queries.Row(q), params});
      if (!response.ok()) {
        std::fprintf(stderr, "%s\n", response.status.ToString().c_str());
        return 1;
      }
      recall += RecallAtK(gt, q, response.neighbors, 100);
      ratio += AverageDistanceRatio(gt, q, response.neighbors, 100);
      reranked += response.stats.candidates_reranked;
    }
    const double seconds = timer.ElapsedSeconds();
    table.AddRow({std::to_string(nprobe),
                  TablePrinter::FormatDouble(100.0 * recall / queries.rows(), 2),
                  TablePrinter::FormatDouble(ratio / queries.rows(), 4),
                  TablePrinter::FormatDouble(queries.rows() / seconds, 0),
                  std::to_string(reranked / queries.rows())});
  }
  table.Print();
  std::printf("\nNote: re-ranking is driven by the eps0=1.9 error bound -- "
              "no per-dataset tuning.\n");
  return 0;
}
