// rabitq_server: the standalone network server binary.
//
//   rabitq_server [--host H] [--port P] [--root DIR] [--threads N]
//       Serve collections over the wire until SIGINT/SIGTERM or a client
//       drain request. Prints "listening on H:P" (with the actual bound
//       port, so --port 0 is usable by scripts) once ready.
//
//   rabitq_server --smoke
//       Self-contained end-to-end check: in-process server on an ephemeral
//       port, a client runs the full lifecycle (create / add / search /
//       stats / snapshot / restore / drain) against it. Exit 0 = pass.
//
//   rabitq_server --client-smoke HOST PORT
//       The same round-trip against an ALREADY RUNNING server (the CI smoke
//       step pairs this with a backgrounded serve mode), finishing with a
//       drain -- so the served process exits cleanly afterwards.

#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/server.h"

namespace {

rabitq::server::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->Stop();
}

rabitq::Matrix MakeTrainingSet(std::size_t rows, std::size_t dim,
                               std::uint64_t seed) {
  rabitq::Matrix data(rows, dim);
  std::mt19937_64 rng(seed);
  std::normal_distribution<float> dist(0.0f, 1.0f);
  for (std::size_t i = 0; i < data.size(); ++i) data.data()[i] = dist(rng);
  return data;
}

#define SMOKE_CHECK(cond, what)                               \
  do {                                                        \
    if (!(cond)) {                                            \
      std::fprintf(stderr, "smoke FAILED: %s\n", what);       \
      return 1;                                               \
    }                                                         \
  } while (0)

#define SMOKE_OK(expr, what)                                          \
  do {                                                                \
    const rabitq::Status smoke_status = (expr);                       \
    if (!smoke_status.ok()) {                                         \
      std::fprintf(stderr, "smoke FAILED: %s: %s\n", what,            \
                   smoke_status.ToString().c_str());                  \
      return 1;                                                       \
    }                                                                 \
  } while (0)

/// The client-side round-trip shared by --smoke and --client-smoke. Ends
/// with a drain, so the server being exercised shuts down afterwards.
int RunClientSmoke(const std::string& host, std::uint16_t port,
                   const std::string& snapshot_check) {
  using rabitq::server::Client;
  using rabitq::server::WireCollectionSpec;

  Client client;
  SMOKE_OK(client.Connect(host, port), "connect");
  SMOKE_OK(client.Ping(), "ping");

  const std::size_t kDim = 24;
  WireCollectionSpec spec;
  spec.dim = kDim;
  spec.metric = rabitq::Metric::kL2;
  spec.bits_per_dim = 1;
  spec.num_shards = 2;
  spec.num_lists = 16;
  const rabitq::Matrix train = MakeTrainingSet(512, kDim, 7);
  SMOKE_OK(client.CreateCollection("smoke", spec, train), "create_collection");

  std::vector<std::string> names;
  SMOKE_OK(client.ListCollections(&names), "list_collections");
  SMOKE_CHECK(std::find(names.begin(), names.end(), "smoke") != names.end(),
              "created collection missing from list");

  std::uint32_t id = 0;
  SMOKE_OK(client.Add("smoke", train.Row(0), kDim, &id), "add");

  rabitq::SearchOptions options;
  options.k = 5;
  options.nprobe = 8;
  options.seed = 42;
  const rabitq::SearchResponse response =
      client.Search("smoke", train.Row(1), kDim, options);
  SMOKE_OK(response.status, "search");
  SMOKE_CHECK(!response.neighbors.empty(), "search returned no neighbors");
  SMOKE_CHECK(response.neighbors.size() <= options.k, "search overdelivered");

  std::vector<rabitq::SearchResponse> batch;
  SMOKE_OK(client.BatchSearch("smoke", train.Row(0), 4, kDim, options, &batch),
           "batch_search");
  SMOKE_CHECK(batch.size() == 4, "batch_search response count");

  SMOKE_OK(client.Delete("smoke", id), "delete");

  std::string stats;
  SMOKE_OK(client.Stats("", /*format=*/1, &stats), "stats");
  SMOKE_CHECK(stats.find("rabitq_server_requests_total") != std::string::npos,
              "server counters missing from stats");
  SMOKE_CHECK(stats.find("collection=\"smoke\"") != std::string::npos,
              "per-collection labels missing from stats");

  if (!snapshot_check.empty()) {
    SMOKE_OK(client.Snapshot("smoke"), "snapshot");
    SMOKE_OK(client.DropCollection("smoke"), "drop_collection");
    SMOKE_OK(client.Restore("smoke"), "restore");
    const rabitq::SearchResponse after =
        client.Search("smoke", train.Row(1), kDim, options);
    SMOKE_OK(after.status, "search after restore");
  }

  SMOKE_OK(client.Drain(), "drain");
  std::printf("smoke OK\n");
  return 0;
}

int RunSelfSmoke() {
  using rabitq::server::Server;
  using rabitq::server::ServerConfig;

  const std::string root =
      "/tmp/rabitq_server_smoke_" + std::to_string(::getpid());
  ServerConfig config;
  config.port = 0;  // ephemeral
  config.collections.root_dir = root;
  Server server(config);
  const rabitq::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "start failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const int rc = RunClientSmoke("127.0.0.1", server.port(), root);
  server.Stop();
  server.Wait();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7471;
  std::string root;
  std::size_t threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      return RunSelfSmoke();
    } else if (arg == "--client-smoke" && i + 2 < argc) {
      const std::string peer_host = argv[++i];
      const int peer_port = std::atoi(argv[++i]);
      return RunClientSmoke(peer_host, static_cast<std::uint16_t>(peer_port),
                            /*snapshot_check=*/"");
    } else if (arg == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: rabitq_server [--host H] [--port P] [--root DIR] "
                   "[--threads N] | --smoke | --client-smoke HOST PORT\n");
      return 2;
    }
  }

  rabitq::server::ServerConfig config;
  config.host = host;
  config.port = port;
  config.collections.root_dir = root;
  config.collections.engine.num_threads = threads;

  rabitq::server::Server server(config);
  const rabitq::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "rabitq_server: %s\n", status.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  std::printf("rabitq_server listening on %s:%u%s\n", host.c_str(),
              static_cast<unsigned>(server.port()),
              root.empty() ? " (in-memory, no snapshot root)" : "");
  std::fflush(stdout);

  server.Wait();
  std::printf("rabitq_server drained, exiting\n");
  return 0;
}
