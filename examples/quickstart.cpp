// Quickstart: quantize a small vector collection with RaBitQ and estimate
// distances with the theoretical error bound.
//
//   $ ./build/examples/quickstart
//
// Walks through the full public API surface:
//   1. RabitqEncoder::Init            -- sample the random rotation
//   2. RabitqEncoder::EncodeAppend    -- D-dimensional float -> D-bit code
//   3. PrepareQuery                   -- rotate + 4-bit-quantize the query
//   4. EstimateDistance               -- unbiased estimate + error bound

#include <cstdio>
#include <vector>

#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

int main() {
  using namespace rabitq;

  constexpr std::size_t kDim = 128;
  constexpr std::size_t kNumVectors = 1000;

  // --- Make a toy dataset (any float vectors work). -----------------------
  Rng rng(42);
  Matrix data(kNumVectors, kDim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  // RaBitQ normalizes vectors against a centroid; here the dataset mean.
  std::vector<float> centroid(kDim, 0.0f);
  for (std::size_t i = 0; i < kNumVectors; ++i) {
    Axpy(1.0f / kNumVectors, data.Row(i), centroid.data(), kDim);
  }

  // --- Index phase: encode every vector into a 128-bit code. --------------
  RabitqConfig config;   // defaults: B = D rounded up to 64, eps0 = 1.9, Bq = 4
  RabitqEncoder encoder;
  Status status = encoder.Init(kDim, config);
  if (!status.ok()) {
    std::fprintf(stderr, "encoder init failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  RabitqCodeStore store(encoder.total_bits());
  store.Reserve(kNumVectors);
  for (std::size_t i = 0; i < kNumVectors; ++i) {
    status = encoder.EncodeAppend(data.Row(i), centroid.data(), &store);
    if (!status.ok()) {
      std::fprintf(stderr, "encode failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  store.Finalize();  // builds the packed layout for the batch estimator
  std::printf("Encoded %zu vectors of dim %zu into %zu-bit codes "
              "(%.1fx compression vs float32)\n",
              store.size(), kDim, encoder.total_bits(),
              32.0 * kDim / encoder.total_bits());

  // --- Query phase. --------------------------------------------------------
  std::vector<float> query(kDim);
  for (auto& v : query) v = static_cast<float>(rng.Gaussian());

  QuantizedQuery qq;
  status = PrepareQuery(encoder, query.data(), centroid.data(), &rng, &qq);
  if (!status.ok()) {
    std::fprintf(stderr, "query prep failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("\n%6s  %12s  %12s  %12s  %9s\n", "vector", "true dist^2",
              "estimated", "lower bound", "rel.err");
  double total_rel_err = 0.0;
  std::size_t bound_violations = 0;
  for (std::size_t i = 0; i < store.size(); ++i) {
    const DistanceEstimate est =
        EstimateDistance(qq, store.View(i), config.epsilon0);
    const float truth = L2SqrDistance(query.data(), data.Row(i), kDim);
    total_rel_err += std::abs(est.dist_sq - truth) / truth;
    if (est.lower_bound_sq > truth) ++bound_violations;
    if (i < 8) {
      std::printf("%6zu  %12.2f  %12.2f  %12.2f  %8.2f%%\n", i, truth,
                  est.dist_sq, est.lower_bound_sq,
                  100.0 * std::abs(est.dist_sq - truth) / truth);
    }
  }
  std::printf("...\naverage relative error over %zu vectors: %.2f%%\n",
              store.size(), 100.0 * total_rel_err / store.size());
  std::printf("lower-bound violations at eps0=%.1f: %zu / %zu "
              "(theory: ~2.9%% one-sided tail for generic pairs)\n",
              config.epsilon0, bound_violations, store.size());
  return 0;
}
