// Demonstrates the paper's Section-4 idea in isolation: using the
// theoretical error bound as a *filter*. Given a candidate set and a
// distance threshold (the current k-th best), RaBitQ's lower bound decides
// -- without touching the raw vectors -- which candidates can be discarded
// safely. Prints pruning power and the (near-zero) false-discard rate.
//
//   $ ./build/examples/error_bound_filter

#include <algorithm>
#include <cstdio>

#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "eval/datasets.h"
#include "index/brute_force.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

int main() {
  using namespace rabitq;

  const SyntheticSpec spec = SiftLikeSpec(30000, 50);
  Matrix base, queries;
  if (Status s = GenerateDataset(spec, &base, &queries); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const std::size_t dim = spec.dim;
  const std::size_t k = 10;

  std::vector<float> centroid(dim, 0.0f);
  for (std::size_t i = 0; i < base.rows(); ++i) {
    Axpy(1.0f / base.rows(), base.Row(i), centroid.data(), dim);
  }

  RabitqEncoder encoder;
  if (Status s = encoder.Init(dim, RabitqConfig{}); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  RabitqCodeStore store(encoder.total_bits());
  for (std::size_t i = 0; i < base.rows(); ++i) {
    if (Status s = encoder.EncodeAppend(base.Row(i), centroid.data(), &store);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  store.Finalize();

  Rng rng(3);
  std::size_t total_pruned = 0, total_candidates = 0, false_discards = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    // The "current k-th best": exact distance of the true k-th neighbor
    // (the hardest threshold the filter will ever face).
    const std::vector<Neighbor> truth =
        BruteForceSearch(base, queries.Row(q), k);
    const float threshold = truth.back().first;

    QuantizedQuery qq;
    if (Status s =
            PrepareQuery(encoder, queries.Row(q), centroid.data(), &rng, &qq);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<float> est(store.size()), lb(store.size());
    EstimateAll(qq, store, encoder.config().epsilon0, est.data(), lb.data());
    for (std::size_t i = 0; i < store.size(); ++i) {
      ++total_candidates;
      if (lb[i] > threshold) {
        ++total_pruned;
        // Was this a true top-k neighbor? (False discard = recall loss.)
        for (const auto& [d, id] : truth) {
          if (id == i) {
            ++false_discards;
            break;
          }
        }
      }
    }
  }
  std::printf("candidates examined : %zu\n", total_candidates);
  std::printf("pruned by bound     : %zu (%.1f%%)\n", total_pruned,
              100.0 * total_pruned / total_candidates);
  std::printf("true top-%zu discarded: %zu (%.5f%% of candidates)\n", k,
              false_discards, 100.0 * false_discards / total_candidates);
  std::printf("\nOnly the unpruned ~%.0f%% ever need a raw-vector distance "
              "computation;\nthe guarantee made that decision safe without "
              "tuning any parameter.\n",
              100.0 - 100.0 * total_pruned / total_candidates);
  return 0;
}
