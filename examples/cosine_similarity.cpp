// Extension from the paper's conclusion (footnote 8): RaBitQ estimates
// cosine similarity / inner product unbiasedly, because the cosine of two
// vectors IS the inner product of their unit normalizations -- exactly what
// the estimator targets. Part 1 demonstrates the raw estimator on
// unit-normalized "document embeddings"; part 2 retrieves through the
// first-class Metric::kCosine index path (normalization, probe ordering and
// exact re-ranking handled by the index).
//
//   $ ./build/cosine_similarity

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "eval/datasets.h"
#include "index/ivf.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

int main() {
  using namespace rabitq;

  // Word2Vec-like angular data, already unit-normalized by the generator.
  SyntheticSpec spec;
  spec.name = "doc-embeddings";
  spec.n = 20000;
  spec.dim = 300;
  spec.num_queries = 20;
  spec.kind = DatasetKind::kAngular;
  Matrix base, queries;
  if (Status s = GenerateDataset(spec, &base, &queries); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const std::size_t dim = spec.dim;

  // Centroid = origin: normalized residual of a unit vector is itself, so
  // the estimated <o, q> *is* the cosine similarity.
  RabitqEncoder encoder;
  if (Status s = encoder.Init(dim, RabitqConfig{}); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  RabitqCodeStore store(encoder.total_bits());
  for (std::size_t i = 0; i < base.rows(); ++i) {
    if (Status s = encoder.EncodeAppend(base.Row(i), nullptr, &store);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  Rng rng(11);
  double total_abs_err = 0.0;
  std::size_t pairs = 0;
  std::size_t top1_hits = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    QuantizedQuery qq;
    if (Status s = PrepareQuery(encoder, queries.Row(q), nullptr, &rng, &qq);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    // Estimated cosine = est.ip (both sides unit). Track top-1 retrieval.
    float best_est = -2.0f, best_true = -2.0f;
    std::size_t best_est_id = 0, best_true_id = 0;
    for (std::size_t i = 0; i < store.size(); ++i) {
      const float est_cos = EstimateDistance(qq, store.View(i), 0.0f).ip;
      const float true_cos = Dot(queries.Row(q), base.Row(i), dim);
      total_abs_err += std::abs(est_cos - true_cos);
      ++pairs;
      if (est_cos > best_est) {
        best_est = est_cos;
        best_est_id = i;
      }
      if (true_cos > best_true) {
        best_true = true_cos;
        best_true_id = i;
      }
    }
    if (best_est_id == best_true_id) ++top1_hits;
    if (q < 5) {
      std::printf("query %zu: est top-1 doc %zu (cos~%.3f), true top-1 doc "
                  "%zu (cos=%.3f)\n",
                  q, best_est_id, best_est, best_true_id, best_true);
    }
  }
  std::printf("\nmean |cosine error| = %.4f over %zu pairs "
              "(theory: O(1/sqrt(B)), B=%zu -> ~%.3f)\n",
              total_abs_err / pairs, pairs, encoder.total_bits(),
              1.0 / std::sqrt(static_cast<double>(encoder.total_bits())));
  std::printf("top-1 agreement before re-ranking: %zu / %zu queries\n",
              top1_hits, queries.rows());

  // --- Part 2: the same retrieval through the Metric::kCosine index. ------
  // The index normalizes at ingest and query time itself, so raw (even
  // un-normalized) embeddings are fine; results rank by -cosine.
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 64;
  ivf.metric = Metric::kCosine;
  if (Status s = index.Build(base, ivf, RabitqConfig{}); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::size_t index_top1_hits = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    IvfSearchParams params;
    params.k = 1;
    params.nprobe = 16;
    params.seed = 100 + q;
    const SearchResponse response =
        index.Search(SearchRequest{queries.Row(q), params});
    if (!response.ok()) {
      std::fprintf(stderr, "%s\n", response.status.ToString().c_str());
      return 1;
    }
    float best_true = -2.0f;
    std::size_t best_true_id = 0;
    for (std::size_t i = 0; i < base.rows(); ++i) {
      const float true_cos = Dot(queries.Row(q), base.Row(i), dim);
      if (true_cos > best_true) {
        best_true = true_cos;
        best_true_id = i;
      }
    }
    if (!response.neighbors.empty() &&
        response.neighbors[0].second == best_true_id) {
      ++index_top1_hits;
    }
  }
  std::printf("Metric::kCosine index (nprobe=16/64, error-bound re-rank): "
              "top-1 agreement %zu / %zu queries\n",
              index_top1_hits, queries.rows());
  return 0;
}
