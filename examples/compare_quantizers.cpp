// Side-by-side accuracy comparison of every quantizer in the library on one
// dataset: RaBitQ (D bits) vs PQ/OPQ (2D bits, the paper's default) vs
// LSQ-lite. Prints the paper's headline: RaBitQ wins with half the bits.
//
//   $ ./build/examples/compare_quantizers

#include <cmath>
#include <cstdio>

#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "index/ivf.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "linalg/vector_ops.h"
#include "quant/lsq.h"
#include "quant/opq.h"
#include "quant/pq.h"
#include "util/timer.h"

namespace {

using namespace rabitq;

bool Check(const Status& status) {
  if (!status.ok()) std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return status.ok();
}

}  // namespace

int main() {
  const SyntheticSpec spec = SiftLikeSpec(20000, 50);
  Matrix base, queries;
  if (!Check(GenerateDataset(spec, &base, &queries))) return 1;
  const std::size_t dim = spec.dim;
  std::printf("dataset: %s  N=%zu  D=%zu  queries=%zu\n\n", spec.name.c_str(),
              base.rows(), dim, queries.rows());

  TablePrinter table(
      {"method", "code bits", "train+encode (s)", "avg rel err", "max rel err"});

  // ---- RaBitQ: D bits, normalized against IVF cluster centroids as the
  // paper prescribes (Sections 3.1.1 and 4). ---------------------------------
  {
    WallTimer timer;
    IvfConfig ivf;
    ivf.num_lists = base.rows() / 256;
    IvfRabitqIndex index;
    if (!Check(index.Build(base, ivf, RabitqConfig{}))) return 1;
    const double index_seconds = timer.ElapsedSeconds();
    Rng rng(1);
    RelativeErrorAccumulator err;
    std::vector<float> rotated_query(index.encoder().total_bits());
    std::vector<float> estimates;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      RotateQueryOnce(index.encoder(), queries.Row(q), rotated_query.data());
      for (const auto& [dist_sq, l] :
           index.ProbeOrderWithDistances(queries.Row(q))) {
        const auto& ids = index.list_ids(l);
        if (ids.empty()) continue;
        QuantizedQuery qq;
        if (!Check(PrepareQueryFromRotated(
                index.encoder(), rotated_query.data(),
                index.rotated_centroids().Row(l),
                std::sqrt(std::max(0.0f, dist_sq)), &rng, &qq))) {
          return 1;
        }
        estimates.resize(ids.size());
        EstimateAll(qq, index.list_codes(l), 0.0f, estimates.data(), nullptr);
        for (std::size_t i = 0; i < ids.size(); ++i) {
          err.Add(estimates[i],
                  L2SqrDistance(queries.Row(q), base.Row(ids[i]), dim));
        }
      }
    }
    const RelativeErrorStats stats = err.Stats();
    table.AddRow({"RaBitQ", std::to_string(index.encoder().total_bits()),
                  TablePrinter::FormatDouble(index_seconds, 1),
                  TablePrinter::FormatDouble(100 * stats.average, 2) + "%",
                  TablePrinter::FormatDouble(100 * stats.maximum, 1) + "%"});
  }

  // ---- PQ / OPQ at 2D bits (M = D/2, 4-bit codes). --------------------------
  auto run_pq_like = [&](const char* name, bool use_opq) {
    WallTimer timer;
    PqConfig pq_config;
    pq_config.num_segments = dim / 2;
    pq_config.bits = 4;
    ProductQuantizer pq;
    OptimizedProductQuantizer opq;
    std::vector<std::uint8_t> codes;
    if (use_opq) {
      OpqConfig opq_config;
      opq_config.pq = pq_config;
      opq_config.opq_iterations = 6;
      if (!Check(opq.Train(base, opq_config))) return false;
      opq.EncodeBatch(base, &codes);
    } else {
      if (!Check(pq.Train(base, pq_config))) return false;
      pq.EncodeBatch(base, &codes);
    }
    const double index_seconds = timer.ElapsedSeconds();
    RelativeErrorAccumulator err;
    AlignedVector<float> luts;
    AlignedVector<std::uint8_t> qluts;
    const std::size_t m = pq_config.num_segments;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      if (use_opq) {
        opq.ComputeLookupTables(queries.Row(q), &luts);
      } else {
        pq.ComputeLookupTables(queries.Row(q), &luts);
      }
      float scale, bias;
      QuantizeLutsToU8(luts.data(), m, &qluts, &scale, &bias);
      for (std::size_t i = 0; i < base.rows(); ++i) {
        std::uint32_t acc = 0;
        for (std::size_t seg = 0; seg < m; ++seg) {
          acc += qluts[seg * 16 + codes[i * m + seg]];
        }
        err.Add(scale * static_cast<float>(acc) + bias,
                L2SqrDistance(queries.Row(q), base.Row(i), dim));
      }
    }
    const RelativeErrorStats stats = err.Stats();
    table.AddRow({name, std::to_string(m * 4),
                  TablePrinter::FormatDouble(index_seconds, 1),
                  TablePrinter::FormatDouble(100 * stats.average, 2) + "%",
                  TablePrinter::FormatDouble(100 * stats.maximum, 1) + "%"});
    return true;
  };
  if (!run_pq_like("PQx4fs", false)) return 1;
  if (!run_pq_like("OPQx4fs", true)) return 1;

  // ---- LSQ-lite (additive; encoding dominates, so use a subsample). --------
  {
    WallTimer timer;
    LsqConfig lsq_config;
    lsq_config.num_codebooks = dim / 4;  // D bits
    lsq_config.train_iterations = 2;
    AdditiveQuantizer aq;
    if (!Check(aq.Train(base, lsq_config))) return 1;
    const std::size_t sample = 5000;
    std::vector<std::uint8_t> codes(sample * aq.num_codebooks());
    std::vector<float> norms(sample);
    for (std::size_t i = 0; i < sample; ++i) {
      aq.Encode(base.Row(i), codes.data() + i * aq.num_codebooks(), &norms[i]);
    }
    const double index_seconds = timer.ElapsedSeconds();
    RelativeErrorAccumulator err;
    AlignedVector<float> luts;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      aq.ComputeLookupTables(queries.Row(q), &luts);
      const float query_sq = SquaredNorm(queries.Row(q), dim);
      for (std::size_t i = 0; i < sample; ++i) {
        err.Add(aq.EstimateWithLuts(codes.data() + i * aq.num_codebooks(),
                                    luts.data(), norms[i], query_sq),
                L2SqrDistance(queries.Row(q), base.Row(i), dim));
      }
    }
    const RelativeErrorStats stats = err.Stats();
    table.AddRow(
        {"LSQ-lite (5k sample)", std::to_string(aq.code_bits()),
         TablePrinter::FormatDouble(index_seconds, 1),
         TablePrinter::FormatDouble(100 * stats.average, 2) + "%",
         TablePrinter::FormatDouble(100 * stats.maximum, 1) + "%"});
  }

  table.Print();
  std::printf("\nRaBitQ uses HALF the bits of PQ/OPQ above; it beats PQ "
              "decisively and matches OPQ\non this locally-Gaussian synthetic "
              "set (on the paper's real datasets, and on the\nheavy-tailed "
              "MSong-like generator, it wins outright -- see bench/).\n");
  return 0;
}
