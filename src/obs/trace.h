// Sampled per-stage query tracing. A QueryTrace is a fixed array of relaxed
// atomic nanosecond accumulators, one per pipeline stage -- atomic because
// one query's (query x shard) cells execute concurrently on different
// workers and each adds its scan/re-rank time into the SAME trace. Sampling
// is a pure function of (query seed, sample period), so the traced subset is
// deterministic across runs, shard counts and thread interleavings -- the
// same property the engine's result determinism is built on.
//
// Cost when a query is NOT sampled: one MixSeed + modulo at batch setup and
// a null-pointer check per stage; no clock reads. A sampled query pays two
// steady_clock reads per stage span.

#ifndef RABITQ_OBS_TRACE_H_
#define RABITQ_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/prng.h"

namespace rabitq {
namespace obs {

/// Pipeline stages of one served query, in execution order.
enum class Stage : std::uint8_t {
  kQueueWait = 0,   // SubmitAsync enqueue -> batch execution start
  kPreprocess = 1,  // gather + batched query rotation (P^T q)
  kProbeOrder = 2,  // centroid distances + nprobe-prefix ordering
  kScan = 3,        // fused estimate+prune over probed lists (minus re-rank)
  kRerank = 4,      // exact distance computations on surviving candidates
  kMerge = 5,       // sharded gather: merge of per-shard candidate sets
};

inline constexpr int kNumStages = 6;

inline const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kPreprocess: return "preprocess";
    case Stage::kProbeOrder: return "probe_order";
    case Stage::kScan: return "scan";
    case Stage::kRerank: return "rerank";
    case Stage::kMerge: return "merge";
  }
  return "unknown";
}

/// Per-stage nanosecond accumulators for ONE query. Neither copyable nor
/// movable (atomics); the engine owns an array sized to the largest batch.
class QueryTrace {
 public:
  QueryTrace() = default;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  void AddNanos(Stage stage, std::uint64_t ns) {
    ns_[static_cast<int>(stage)].fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t Nanos(Stage stage) const {
    return ns_[static_cast<int>(stage)].load(std::memory_order_relaxed);
  }

  double Micros(Stage stage) const {
    return static_cast<double>(Nanos(stage)) * 1e-3;
  }

  void Clear() {
    for (auto& n : ns_) n.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> ns_[kNumStages] = {};
};

/// RAII span: adds the enclosed wall time to `trace`'s `stage` accumulator.
/// A null trace costs one branch and no clock reads.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, Stage stage) : trace_(trace), stage_(stage) {
    if (trace_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) {
      trace_->AddNanos(stage_,
                       static_cast<std::uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now() - start_)
                               .count()));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  QueryTrace* trace_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_;
};

/// Deterministic sampling decision: a pure function of (query seed, period),
/// independent of thread/shard interleaving. period 0 disables tracing,
/// period 1 traces everything, period N traces ~1/N of the seed stream.
inline bool SampleTrace(std::uint64_t query_seed, std::uint32_t period) {
  if (period == 0) return false;
  if (period == 1) return true;
  return MixSeed(query_seed, 0x0B5E7B17ULL) % period == 0;
}

}  // namespace obs
}  // namespace rabitq

#endif  // RABITQ_OBS_TRACE_H_
