// Lock-free observability primitives for the serving engine. The hot path
// (one RecordBatch per executed batch, one span add per traced stage) does
// plain relaxed atomic adds into per-thread striped slots; aggregation
// happens only at Snapshot() time. Nothing here takes a lock after
// registration, so instrumented code keeps its concurrency profile -- the
// engine-wide stats mutex this module replaces is gone.
//
// Layering: obs sits next to util (no index/engine dependencies); the
// engine's EngineStatsCollector is a thin facade over a MetricsRegistry.
//
// Primitives:
//   * Counter       monotonic u64, striped over cache-line-aligned slots
//   * FloatCounter  monotonic double sum (CAS-add), striped
//   * Gauge         last-write-wins double
//   * Histogram     log-bucketed (the LatencyHistogram geometry), striped
//
// Consistency: a snapshot sums stripes with relaxed loads, so it is not a
// linearizable cut across metrics -- counters may be mutually off by the
// handful of increments in flight. That is the usual contract for telemetry
// and the price of a zero-coordination fast path. Reset() concurrent with
// writers may likewise lose in-flight increments.

#ifndef RABITQ_OBS_METRICS_H_
#define RABITQ_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rabitq {
namespace obs {

// ---------------------------------------------------------------------------
// Geometric bucket layout, shared with engine/LatencyHistogram: bucket i
// covers [2^(i/4), 2^((i+1)/4)) value units (~19% relative resolution);
// 128 buckets reach ~75 minutes when the unit is microseconds. Values below
// 1 land in bucket 0, whose lower edge is treated as 0 for interpolation.
// ---------------------------------------------------------------------------

inline constexpr int kNumBuckets = 128;

/// floor(4 * log2(value)) clamped to the table; sub-unit values -> bucket 0.
int BucketIndex(double value);
/// Lower edge of bucket i (0 for bucket 0, else 2^(i/4)).
double BucketLower(int i);
/// Upper edge of bucket i: 2^((i+1)/4).
double BucketUpper(int i);

/// Interpolated quantile over a raw bucket array: walks to the bucket
/// holding the target rank, then interpolates linearly WITHIN the bucket by
/// the fraction of its population at or below the rank -- fixing the
/// up-to-19% systematic overestimate of reporting the upper edge. Clamped
/// to `max_value` (the largest recorded sample). q in [0, 1]; 0 when empty.
double BucketQuantile(const std::uint64_t* buckets, std::uint64_t count,
                      double max_value, double q);

// ---------------------------------------------------------------------------
// Striping: each writer thread picks a fixed slot (round-robin over the
// thread-local registration order) and only ever RMWs that slot, so two
// hot threads do not ping-pong one cache line. Must be a power of two.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kStripes = 16;

/// Stable per-thread stripe index in [0, kStripes).
std::size_t ThreadStripe();

/// Monotonic counter. Add() is wait-free (one relaxed fetch_add on the
/// caller's stripe); Value() sums the stripes.
class Counter {
 public:
  void Add(std::uint64_t n) {
    slots_[ThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  std::uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  Slot slots_[kStripes];
};

/// Monotonic double accumulator (for sums of relative errors etc.).
/// Add() is lock-free (relaxed CAS loop on the caller's stripe).
class FloatCounter {
 public:
  void Add(double d) {
    std::atomic<double>& a = slots_[ThreadStripe()].v;
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double Value() const;
  void Reset();

 private:
  struct alignas(64) Slot {
    std::atomic<double> v{0.0};
  };
  Slot slots_[kStripes];
};

/// Last-write-wins double (lifecycle gauges: live vectors, epoch, ...).
class Gauge {
 public:
  void Set(double d) { value_.store(d, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregated view of one histogram, detached from its atomics: safe to
/// copy, merge and query after the snapshot.
struct HistogramSnapshot {
  std::uint64_t buckets[kNumBuckets] = {};
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  double Quantile(double q) const {
    return BucketQuantile(buckets, count, max, q);
  }
  double Mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// Bucket-wise merge; associative and commutative over integral-valued
  /// recordings (double sums reassociate otherwise).
  void Merge(const HistogramSnapshot& other);
};

/// Log-bucketed histogram with striped slots. Record() is lock-free: one
/// relaxed fetch_add on the bucket + count, a CAS-add on the sum and a
/// CAS-max, all on the caller's stripe.
class Histogram {
 public:
  void Record(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> buckets[kNumBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };
  Slot slots_[kStripes];
};

enum class MetricKind : std::uint8_t {
  kCounter,
  kFloatCounter,
  kGauge,
  kHistogram,
};

/// One metric's aggregated value at snapshot time.
struct MetricValue {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t u64 = 0;           // kCounter
  double value = 0.0;              // kCounter (as double) / kFloatCounter / kGauge
  HistogramSnapshot hist;          // kHistogram
};

/// Point-in-time aggregation of a whole registry.
struct MetricsSnapshot {
  /// Seconds since the registry was created or last Reset() -- the rate
  /// window (e.g. qps = queries / window_seconds).
  double window_seconds = 0.0;
  std::vector<MetricValue> metrics;  // registration order

  const MetricValue* Find(const std::string& name) const;
};

/// Owns metrics by name. Registration (Get*) takes a mutex and returns a
/// pointer stable for the registry's lifetime -- instrumented code resolves
/// its metrics once and then never touches the registry lock again. Getting
/// an existing name returns the SAME object; a kind mismatch returns null.
class MetricsRegistry {
 public:
  MetricsRegistry();

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  FloatCounter* GetFloatCounter(const std::string& name,
                                const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  MetricsSnapshot Snapshot() const;
  /// Zeroes every metric and restarts the rate window. Increments in flight
  /// on other threads may survive the reset (telemetry contract).
  void Reset();
  /// Seconds since construction or the last Reset().
  double WindowSeconds() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind;
    // Exactly one of these is non-null, matching `kind`.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<FloatCounter> float_counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const std::string& help,
                      MetricKind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
  std::unordered_map<std::string, Entry*> by_name_;
  std::atomic<std::chrono::steady_clock::time_point::rep> window_start_;
};

}  // namespace obs
}  // namespace rabitq

#endif  // RABITQ_OBS_METRICS_H_
