#include "obs/export.h"

#include <cstdio>

namespace rabitq {
namespace obs {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendJsonKey(std::string* out, const std::string& name, bool* first) {
  if (!*first) out->append(",");
  *first = false;
  out->append("\"").append(name).append("\":");
}

}  // namespace

std::string ExportJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"window_seconds\":";
  AppendDouble(&out, snapshot.window_seconds);

  out.append(",\"counters\":{");
  bool first = true;
  for (const MetricValue& mv : snapshot.metrics) {
    if (mv.kind == MetricKind::kCounter) {
      AppendJsonKey(&out, mv.name, &first);
      AppendU64(&out, mv.u64);
    } else if (mv.kind == MetricKind::kFloatCounter) {
      AppendJsonKey(&out, mv.name, &first);
      AppendDouble(&out, mv.value);
    }
  }

  out.append("},\"gauges\":{");
  first = true;
  for (const MetricValue& mv : snapshot.metrics) {
    if (mv.kind != MetricKind::kGauge) continue;
    AppendJsonKey(&out, mv.name, &first);
    AppendDouble(&out, mv.value);
  }

  out.append("},\"histograms\":{");
  first = true;
  for (const MetricValue& mv : snapshot.metrics) {
    if (mv.kind != MetricKind::kHistogram) continue;
    AppendJsonKey(&out, mv.name, &first);
    out.append("{\"count\":");
    AppendU64(&out, mv.hist.count);
    out.append(",\"sum\":");
    AppendDouble(&out, mv.hist.sum);
    out.append(",\"max\":");
    AppendDouble(&out, mv.hist.max);
    out.append(",\"mean\":");
    AppendDouble(&out, mv.hist.Mean());
    out.append(",\"p50\":");
    AppendDouble(&out, mv.hist.Quantile(0.50));
    out.append(",\"p90\":");
    AppendDouble(&out, mv.hist.Quantile(0.90));
    out.append(",\"p99\":");
    AppendDouble(&out, mv.hist.Quantile(0.99));
    out.append("}");
  }
  out.append("}}");
  return out;
}

namespace {

/// Writes `name{labels} ` / `name_suffix{labels,extra} ` with the braces
/// elided entirely when there is nothing to put inside them -- which is what
/// keeps the labels == "" rendering byte-identical to the historical
/// unlabeled format.
void AppendSeries(std::string* out, const std::string& name,
                  const char* suffix, const std::string& labels,
                  const std::string& extra) {
  out->append(name).append(suffix);
  if (!labels.empty() || !extra.empty()) {
    out->append("{").append(labels);
    if (!labels.empty() && !extra.empty()) out->append(",");
    out->append(extra).append("}");
  }
  out->append(" ");
}

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot,
                             const std::string& labels) {
  std::string out;
  for (const MetricValue& mv : snapshot.metrics) {
    if (!mv.help.empty()) {
      out.append("# HELP ").append(mv.name).append(" ").append(mv.help).append(
          "\n");
    }
    switch (mv.kind) {
      case MetricKind::kCounter:
      case MetricKind::kFloatCounter:
        out.append("# TYPE ").append(mv.name).append(" counter\n");
        AppendSeries(&out, mv.name, "", labels, "");
        AppendDouble(&out, mv.value);
        out.append("\n");
        break;
      case MetricKind::kGauge:
        out.append("# TYPE ").append(mv.name).append(" gauge\n");
        AppendSeries(&out, mv.name, "", labels, "");
        AppendDouble(&out, mv.value);
        out.append("\n");
        break;
      case MetricKind::kHistogram: {
        out.append("# TYPE ").append(mv.name).append(" histogram\n");
        // Cumulative counts over the OCCUPIED bucket edges: scrapes stay
        // compact (128 mostly-empty buckets would dominate the payload) and
        // remain valid Prometheus histograms -- a bucket that first fills
        // later simply appears then, carrying the full cumulative count.
        std::uint64_t cumulative = 0;
        for (int i = 0; i < kNumBuckets; ++i) {
          if (mv.hist.buckets[i] == 0) continue;
          cumulative += mv.hist.buckets[i];
          std::string le = "le=\"";
          AppendDouble(&le, BucketUpper(i));
          le.append("\"");
          AppendSeries(&out, mv.name, "_bucket", labels, le);
          AppendU64(&out, cumulative);
          out.append("\n");
        }
        AppendSeries(&out, mv.name, "_bucket", labels, "le=\"+Inf\"");
        AppendU64(&out, mv.hist.count);
        out.append("\n");
        AppendSeries(&out, mv.name, "_sum", labels, "");
        AppendDouble(&out, mv.hist.sum);
        out.append("\n");
        AppendSeries(&out, mv.name, "_count", labels, "");
        AppendU64(&out, mv.hist.count);
        out.append("\n");
        break;
      }
    }
  }
  return out;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  return ExportPrometheus(snapshot, std::string());
}

}  // namespace obs
}  // namespace rabitq
