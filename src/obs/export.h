// Serialization of a MetricsSnapshot for scraping and tooling:
//   * ExportJson        one compact JSON object (counters / gauges /
//                       histogram summaries), the bench/CI format;
//   * ExportPrometheus  Prometheus text exposition format 0.0.4 (counters,
//                       gauges, and cumulative-bucket histograms), the
//                       serve_demo --metrics-out format.
// Both are pure functions of the snapshot -- take the snapshot once and
// render it as many ways as needed.

#ifndef RABITQ_OBS_EXPORT_H_
#define RABITQ_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace rabitq {
namespace obs {

/// {"window_seconds":..., "counters":{...}, "gauges":{...},
///  "histograms":{name:{count,sum,max,mean,p50,p90,p99},...}}
std::string ExportJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition: # HELP / # TYPE headers, counter/gauge
/// samples, and histogram series (name_bucket{le="..."} cumulative counts
/// over the occupied bucket edges plus le="+Inf", name_sum, name_count).
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// Labeled variant: `labels` is a pre-rendered label list WITHOUT braces
/// (e.g. `collection="images"`), attached to every sample -- plain series
/// render as `name{collection="images"} v`, histogram buckets as
/// `name_bucket{collection="images",le="..."}`. The server's multi-tenant
/// stats endpoint uses it to export one engine registry per collection into
/// a shared scrape. Label VALUES must not contain `"` or `\` (collection
/// names are whitelisted to [A-Za-z0-9_-], which guarantees that). An empty
/// `labels` renders byte-identically to the unlabeled overload, keeping
/// every existing scrape and CI grep stable.
std::string ExportPrometheus(const MetricsSnapshot& snapshot,
                             const std::string& labels);

}  // namespace obs
}  // namespace rabitq

#endif  // RABITQ_OBS_EXPORT_H_
