#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace rabitq {
namespace obs {

int BucketIndex(double value) {
  if (value < 1.0) return 0;
  const int idx = static_cast<int>(4.0 * std::log2(value));
  return std::min(idx, kNumBuckets - 1);
}

double BucketLower(int i) { return i == 0 ? 0.0 : std::exp2(i / 4.0); }

double BucketUpper(int i) { return std::exp2((i + 1) / 4.0); }

double BucketQuantile(const std::uint64_t* buckets, std::uint64_t count,
                      double max_value, double q) {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t below = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(below + in_bucket) >= target) {
      // The rank falls inside this bucket: interpolate by the fraction of
      // the bucket's population at or below the rank.
      const double lower = BucketLower(i);
      const double upper = BucketUpper(i);
      const double fraction =
          (target - static_cast<double>(below)) / static_cast<double>(in_bucket);
      return std::min(lower + fraction * (upper - lower), max_value);
    }
    below += in_bucket;
  }
  return max_value;
}

std::size_t ThreadStripe() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    total += slot.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Slot& slot : slots_) slot.v.store(0, std::memory_order_relaxed);
}

double FloatCounter::Value() const {
  double total = 0.0;
  for (const Slot& slot : slots_) {
    total += slot.v.load(std::memory_order_relaxed);
  }
  return total;
}

void FloatCounter::Reset() {
  for (Slot& slot : slots_) slot.v.store(0.0, std::memory_order_relaxed);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

void Histogram::Record(double value) {
  Slot& slot = slots_[ThreadStripe()];
  slot.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  double cur = slot.sum.load(std::memory_order_relaxed);
  while (!slot.sum.compare_exchange_weak(cur, cur + value,
                                         std::memory_order_relaxed)) {
  }
  double m = slot.max.load(std::memory_order_relaxed);
  while (m < value && !slot.max.compare_exchange_weak(
                          m, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Slot& slot : slots_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      snap.buckets[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += slot.count.load(std::memory_order_relaxed);
    snap.sum += slot.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, slot.max.load(std::memory_order_relaxed));
  }
  return snap;
}

void Histogram::Reset() {
  for (Slot& slot : slots_) {
    for (int i = 0; i < kNumBuckets; ++i) {
      slot.buckets[i].store(0, std::memory_order_relaxed);
    }
    slot.count.store(0, std::memory_order_relaxed);
    slot.sum.store(0.0, std::memory_order_relaxed);
    slot.max.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry::MetricsRegistry()
    : window_start_(
          std::chrono::steady_clock::now().time_since_epoch().count()) {}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      const std::string& help,
                                                      MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second->kind == kind ? it->second : nullptr;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kFloatCounter:
      entry->float_counter = std::make_unique<FloatCounter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  by_name_.emplace(raw->name, raw);
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  Entry* e = FindOrCreate(name, help, MetricKind::kCounter);
  return e != nullptr ? e->counter.get() : nullptr;
}

FloatCounter* MetricsRegistry::GetFloatCounter(const std::string& name,
                                               const std::string& help) {
  Entry* e = FindOrCreate(name, help, MetricKind::kFloatCounter);
  return e != nullptr ? e->float_counter.get() : nullptr;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  Entry* e = FindOrCreate(name, help, MetricKind::kGauge);
  return e != nullptr ? e->gauge.get() : nullptr;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  Entry* e = FindOrCreate(name, help, MetricKind::kHistogram);
  return e != nullptr ? e->histogram.get() : nullptr;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  snap.window_seconds = WindowSeconds();
  std::lock_guard<std::mutex> lock(mutex_);
  snap.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricValue mv;
    mv.name = entry->name;
    mv.help = entry->help;
    mv.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        mv.u64 = entry->counter->Value();
        mv.value = static_cast<double>(mv.u64);
        break;
      case MetricKind::kFloatCounter:
        mv.value = entry->float_counter->Value();
        break;
      case MetricKind::kGauge:
        mv.value = entry->gauge->Value();
        break;
      case MetricKind::kHistogram:
        mv.hist = entry->histogram->Snapshot();
        break;
    }
    snap.metrics.push_back(std::move(mv));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case MetricKind::kCounter: entry->counter->Reset(); break;
      case MetricKind::kFloatCounter: entry->float_counter->Reset(); break;
      case MetricKind::kGauge: entry->gauge->Reset(); break;
      case MetricKind::kHistogram: entry->histogram->Reset(); break;
    }
  }
  window_start_.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
}

double MetricsRegistry::WindowSeconds() const {
  const auto start = std::chrono::steady_clock::time_point(
      std::chrono::steady_clock::duration(
          window_start_.load(std::memory_order_relaxed)));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

const MetricValue* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricValue& mv : metrics) {
    if (mv.name == name) return &mv;
  }
  return nullptr;
}

}  // namespace obs
}  // namespace rabitq
