// Sampling of random orthogonal matrices, the Johnson-Lindenstrauss transform
// at the heart of RaBitQ's codebook construction (paper Section 3.1.2 and
// Appendix B): fill a D x D matrix with i.i.d. standard Gaussians and
// orthonormalize it with (modified, re-orthogonalized) Gram-Schmidt. The
// resulting distribution over rotations is the Haar measure restricted to the
// sign ambiguity of Gram-Schmidt, exactly the sampling model analyzed in the
// paper's proofs.

#ifndef RABITQ_LINALG_ORTHOGONAL_H_
#define RABITQ_LINALG_ORTHOGONAL_H_

#include "linalg/matrix.h"
#include "util/prng.h"
#include "util/status.h"

namespace rabitq {

/// Samples a dim x dim random orthogonal matrix into `out`.
/// Degenerate Gaussian draws (numerically dependent rows) are re-sampled.
Status SampleRandomOrthogonal(std::size_t dim, Rng* rng, Matrix* out);

/// Orthonormalizes the rows of `m` in place via modified Gram-Schmidt with one
/// re-orthogonalization pass. Fails if a row collapses to (near) zero norm.
Status GramSchmidtRows(Matrix* m);

}  // namespace rabitq

#endif  // RABITQ_LINALG_ORTHOGONAL_H_
