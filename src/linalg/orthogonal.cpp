#include "linalg/orthogonal.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace rabitq {

Status GramSchmidtRows(Matrix* m) {
  const std::size_t n = m->rows();
  const std::size_t dim = m->cols();
  if (n > dim) {
    return Status::InvalidArgument("more rows than dimensions");
  }
  for (std::size_t i = 0; i < n; ++i) {
    float* row = m->Row(i);
    // Two projection passes: classic Gram-Schmidt loses orthogonality at
    // dimensionality ~1e3; one re-orthogonalization restores it to ~1e-6.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t j = 0; j < i; ++j) {
        const float proj = Dot(row, m->Row(j), dim);
        Axpy(-proj, m->Row(j), row, dim);
      }
    }
    const float norm = NormalizeInPlace(row, dim);
    if (norm < 1e-6f) {
      return Status::Internal("Gram-Schmidt encountered a degenerate row");
    }
  }
  return Status::Ok();
}

Status SampleRandomOrthogonal(std::size_t dim, Rng* rng, Matrix* out) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (rng == nullptr || out == nullptr) {
    return Status::InvalidArgument("null rng/out");
  }
  for (int attempt = 0; attempt < 4; ++attempt) {
    out->Reset(dim, dim);
    for (std::size_t i = 0; i < dim * dim; ++i) {
      out->data()[i] = static_cast<float>(rng->Gaussian());
    }
    if (GramSchmidtRows(out).ok()) return Status::Ok();
  }
  return Status::Internal("failed to sample an orthogonal matrix");
}

}  // namespace rabitq
