// Row-major float matrix with 64-byte-aligned storage. This is the container
// for datasets (N x D), rotation matrices (D x D) and codebooks.

#ifndef RABITQ_LINALG_MATRIX_H_
#define RABITQ_LINALG_MATRIX_H_

#include <cstddef>

#include "util/aligned_buffer.h"

namespace rabitq {

/// Dense row-major matrix of floats.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float* Row(std::size_t r) { return data_.data() + r * cols_; }
  const float* Row(std::size_t r) const { return data_.data() + r * cols_; }

  float& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Reshapes to rows x cols, zero-filled (previous contents discarded).
  void Reset(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, 0.0f);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVector<float> data_;
};

/// out = M v  (M: rows x cols, v: cols, out: rows).
void MatVec(const Matrix& m, const float* v, float* out);

/// out = M^T v  (M: rows x cols, v: rows, out: cols).
void MatTVec(const Matrix& m, const float* v, float* out);

/// out = A * B (A: n x k, B: k x m). `out` is reset to n x m.
void MatMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = A^T * B (A: k x n, B: k x m). `out` is reset to n x m.
void MatTMul(const Matrix& a, const Matrix& b, Matrix* out);

/// out = M^T (rows and cols swapped).
void Transpose(const Matrix& m, Matrix* out);

/// Max |A[i,j] - B[i,j]|; matrices must have identical shape.
float MaxAbsDiff(const Matrix& a, const Matrix& b);

/// True when M^T M is within `tol` of the identity (column orthonormality).
bool IsOrthogonal(const Matrix& m, float tol);

}  // namespace rabitq

#endif  // RABITQ_LINALG_MATRIX_H_
