#include "linalg/matrix.h"

#include <cmath>

#include "linalg/vector_ops.h"

namespace rabitq {

void MatVec(const Matrix& m, const float* v, float* out) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    out[r] = Dot(m.Row(r), v, m.cols());
  }
}

void MatTVec(const Matrix& m, const float* v, float* out) {
  for (std::size_t c = 0; c < m.cols(); ++c) out[c] = 0.0f;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    Axpy(v[r], m.Row(r), out, m.cols());
  }
}

void MatMul(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Reset(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* a_row = a.Row(i);
    float* out_row = out->Row(i);
    for (std::size_t k = 0; k < a.cols(); ++k) {
      Axpy(a_row[k], b.Row(k), out_row, b.cols());
    }
  }
}

void MatTMul(const Matrix& a, const Matrix& b, Matrix* out) {
  out->Reset(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    const float* a_row = a.Row(k);
    const float* b_row = b.Row(k);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      Axpy(a_row[i], b_row, out->Row(i), b.cols());
    }
  }
}

void Transpose(const Matrix& m, Matrix* out) {
  out->Reset(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out->At(c, r) = m.At(r, c);
    }
  }
}

float MaxAbsDiff(const Matrix& a, const Matrix& b) {
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_diff = std::fmax(max_diff, std::fabs(a.data()[i] - b.data()[i]));
  }
  return max_diff;
}

bool IsOrthogonal(const Matrix& m, float tol) {
  if (m.rows() != m.cols()) return false;
  const std::size_t n = m.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      // Column inner products via rows of the transpose access pattern.
      float acc = 0.0f;
      for (std::size_t r = 0; r < n; ++r) acc += m.At(r, i) * m.At(r, j);
      const float expected = (i == j) ? 1.0f : 0.0f;
      if (std::fabs(acc - expected) > tol) return false;
    }
  }
  return true;
}

}  // namespace rabitq
