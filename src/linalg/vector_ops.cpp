#include "linalg/vector_ops.h"

#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace rabitq {

namespace scalar {

float Dot(const float* a, const float* b, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float L2SqrDistance(const float* a, const float* b, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float L1Norm(const float* a, std::size_t dim) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < dim; ++i) acc += std::fabs(a[i]);
  return acc;
}

}  // namespace scalar

#if defined(__AVX2__)

namespace {

inline float HorizontalSum(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

}  // namespace

bool HasAvx2Kernels() { return true; }

float Dot(const float* a, const float* b, std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8),
                           acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float acc = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

float L2SqrDistance(const float* a, const float* b, std::size_t dim) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= dim; i += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 =
        _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= dim; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float acc = HorizontalSum(_mm256_add_ps(acc0, acc1));
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

float L1Norm(const float* a, std::size_t dim) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= dim; i += 8) {
    acc = _mm256_add_ps(acc, _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(a + i)));
  }
  float out = HorizontalSum(acc);
  for (; i < dim; ++i) out += std::fabs(a[i]);
  return out;
}

#else  // !defined(__AVX2__)

bool HasAvx2Kernels() { return false; }

float Dot(const float* a, const float* b, std::size_t dim) {
  return scalar::Dot(a, b, dim);
}

float L2SqrDistance(const float* a, const float* b, std::size_t dim) {
  return scalar::L2SqrDistance(a, b, dim);
}

float L1Norm(const float* a, std::size_t dim) { return scalar::L1Norm(a, dim); }

#endif  // defined(__AVX2__)

float SquaredNorm(const float* a, std::size_t dim) { return Dot(a, a, dim); }

float Norm(const float* a, std::size_t dim) {
  return std::sqrt(SquaredNorm(a, dim));
}

void Subtract(const float* a, const float* b, float* out, std::size_t dim) {
  for (std::size_t i = 0; i < dim; ++i) out[i] = a[i] - b[i];
}

void Axpy(float alpha, const float* a, float* out, std::size_t dim) {
  for (std::size_t i = 0; i < dim; ++i) out[i] += alpha * a[i];
}

void ScaleInPlace(float* a, float alpha, std::size_t dim) {
  for (std::size_t i = 0; i < dim; ++i) a[i] *= alpha;
}

float NormalizeInPlace(float* a, std::size_t dim) {
  const float norm = Norm(a, dim);
  if (norm > 0.0f) ScaleInPlace(a, 1.0f / norm, dim);
  return norm;
}

}  // namespace rabitq
