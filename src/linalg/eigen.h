// Jacobi eigendecomposition and SVD. These back OPQ's Procrustes step
// (R = argmax_R tr(R M) = V U^T for M = U S V^T), so only square matrices are
// required. One-sided Jacobi is slow (O(D^3) per sweep) but dependency-free,
// numerically robust, and fast enough for the D <= 1024 regimes in the paper.

#ifndef RABITQ_LINALG_EIGEN_H_
#define RABITQ_LINALG_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace rabitq {

/// Eigendecomposition of a symmetric matrix A = V diag(w) V^T via cyclic
/// Jacobi rotations. `eigenvalues` are returned in descending order;
/// `eigenvectors` rows are the corresponding (unit) eigenvectors.
Status JacobiEigenSymmetric(const Matrix& a, std::vector<float>* eigenvalues,
                            Matrix* eigenvectors, int max_sweeps = 50,
                            float tol = 1e-7f);

/// Thin SVD of a square matrix A = U diag(s) V^T via one-sided Jacobi.
/// Singular values are non-negative, descending. U and V are square
/// orthogonal; rank-deficient inputs get their null-space columns completed
/// to an orthonormal basis.
Status SvdSquare(const Matrix& a, Matrix* u, std::vector<float>* singular_values,
                 Matrix* v, int max_sweeps = 60, float tol = 1e-8f);

/// Orthogonal Procrustes: the R maximizing tr(R M), i.e. R = V U^T for
/// M = U S V^T. Used by OPQ: with M = Y^T X (Y = PQ reconstructions,
/// X = data), R minimizes ||X - Y R^T||_F over orthogonal R.
Status ProcrustesRotation(const Matrix& m, Matrix* r);

}  // namespace rabitq

#endif  // RABITQ_LINALG_EIGEN_H_
