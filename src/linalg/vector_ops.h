// Dense float vector kernels (inner product, squared L2, norms, BLAS-1 style
// helpers). AVX2+FMA implementations are selected at compile time when the
// target supports them, with scalar fallbacks kept bit-compatible enough for
// the tests to cross-check (identical reduction order is not guaranteed, so
// comparisons use relative tolerances).

#ifndef RABITQ_LINALG_VECTOR_OPS_H_
#define RABITQ_LINALG_VECTOR_OPS_H_

#include <cstddef>

namespace rabitq {

/// <a, b>.
float Dot(const float* a, const float* b, std::size_t dim);

/// ||a - b||^2.
float L2SqrDistance(const float* a, const float* b, std::size_t dim);

/// ||a||^2.
float SquaredNorm(const float* a, std::size_t dim);

/// ||a||.
float Norm(const float* a, std::size_t dim);

/// L1 norm: sum_i |a[i]|.
float L1Norm(const float* a, std::size_t dim);

/// out = a - b.
void Subtract(const float* a, const float* b, float* out, std::size_t dim);

/// out += alpha * a.
void Axpy(float alpha, const float* a, float* out, std::size_t dim);

/// a *= alpha in place.
void ScaleInPlace(float* a, float alpha, std::size_t dim);

/// Normalizes `a` to unit L2 norm in place; returns the original norm.
/// If the norm is zero the vector is left unchanged and 0 is returned.
float NormalizeInPlace(float* a, std::size_t dim);

/// Portable reference implementations (used by tests to validate the
/// SIMD paths; also the fallback on non-AVX2 targets).
namespace scalar {
float Dot(const float* a, const float* b, std::size_t dim);
float L2SqrDistance(const float* a, const float* b, std::size_t dim);
float L1Norm(const float* a, std::size_t dim);
}  // namespace scalar

/// True when the library was compiled with the AVX2 kernels.
bool HasAvx2Kernels();

}  // namespace rabitq

#endif  // RABITQ_LINALG_VECTOR_OPS_H_
