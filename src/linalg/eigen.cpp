#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/orthogonal.h"
#include "linalg/vector_ops.h"

namespace rabitq {

Status JacobiEigenSymmetric(const Matrix& a, std::vector<float>* eigenvalues,
                            Matrix* eigenvectors, int max_sweeps, float tol) {
  if (a.rows() != a.cols()) return Status::InvalidArgument("matrix not square");
  const std::size_t n = a.rows();
  Matrix work = a;
  eigenvectors->Reset(n, n);
  for (std::size_t i = 0; i < n; ++i) eigenvectors->At(i, i) = 1.0f;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    float off_diag = 0.0f;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        off_diag += work.At(p, q) * work.At(p, q);
      }
    }
    if (std::sqrt(off_diag) <= tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const float apq = work.At(p, q);
        if (std::fabs(apq) < 1e-12f) continue;
        const float app = work.At(p, p);
        const float aqq = work.At(q, q);
        const float theta = 0.5f * (aqq - app) / apq;
        const float t = std::copysign(
            1.0f / (std::fabs(theta) + std::sqrt(1.0f + theta * theta)), theta);
        const float c = 1.0f / std::sqrt(1.0f + t * t);
        const float s = t * c;
        // Update rows/cols p and q of the symmetric working matrix.
        for (std::size_t k = 0; k < n; ++k) {
          const float akp = work.At(k, p);
          const float akq = work.At(k, q);
          work.At(k, p) = c * akp - s * akq;
          work.At(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const float apk = work.At(p, k);
          const float aqk = work.At(q, k);
          work.At(p, k) = c * apk - s * aqk;
          work.At(q, k) = s * apk + c * aqk;
        }
        // Accumulate the rotation into the eigenvector rows.
        for (std::size_t k = 0; k < n; ++k) {
          const float vpk = eigenvectors->At(p, k);
          const float vqk = eigenvectors->At(q, k);
          eigenvectors->At(p, k) = c * vpk - s * vqk;
          eigenvectors->At(q, k) = s * vpk + c * vqk;
        }
      }
    }
  }

  eigenvalues->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*eigenvalues)[i] = work.At(i, i);

  // Sort descending, permuting eigenvector rows alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return (*eigenvalues)[x] > (*eigenvalues)[y];
  });
  std::vector<float> sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted_values[i] = (*eigenvalues)[order[i]];
    for (std::size_t k = 0; k < n; ++k) {
      sorted_vectors.At(i, k) = eigenvectors->At(order[i], k);
    }
  }
  *eigenvalues = std::move(sorted_values);
  *eigenvectors = std::move(sorted_vectors);
  return Status::Ok();
}

Status SvdSquare(const Matrix& a, Matrix* u, std::vector<float>* singular_values,
                 Matrix* v, int max_sweeps, float tol) {
  if (a.rows() != a.cols()) return Status::InvalidArgument("matrix not square");
  const std::size_t n = a.rows();

  // One-sided Jacobi on the columns of A, carried out on rows of W = A^T so
  // every inner loop is contiguous (AVX2-friendly). Right-rotations on A's
  // columns are row-rotations on W; accumulating them into G (init I) yields
  // G = V^T. At convergence W = (A V)^T = Sigma U^T: row j of W is
  // sigma_j * u_j.
  Matrix w;
  Transpose(a, &w);
  Matrix g(n, n);
  for (std::size_t i = 0; i < n; ++i) g.At(i, i) = 1.0f;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        float* wp = w.Row(p);
        float* wq = w.Row(q);
        const float app = Dot(wp, wp, n);
        const float aqq = Dot(wq, wq, n);
        const float apq = Dot(wp, wq, n);
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) + 1e-30f) continue;
        converged = false;
        const float theta = 0.5f * (aqq - app) / apq;
        const float t = std::copysign(
            1.0f / (std::fabs(theta) + std::sqrt(1.0f + theta * theta)), theta);
        const float c = 1.0f / std::sqrt(1.0f + t * t);
        const float s = t * c;
        float* gp = g.Row(p);
        float* gq = g.Row(q);
        for (std::size_t k = 0; k < n; ++k) {
          const float kp = wp[k];
          const float kq = wq[k];
          wp[k] = c * kp - s * kq;
          wq[k] = s * kp + c * kq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const float kp = gp[k];
          const float kq = gq[k];
          gp[k] = c * kp - s * kq;
          gq[k] = s * kp + c * kq;
        }
      }
    }
    if (converged) break;
  }

  // Extract singular values (row norms of W), sorted descending.
  std::vector<float> row_norms(n);
  for (std::size_t j = 0; j < n; ++j) row_norms[j] = Norm(w.Row(j), n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return row_norms[x] > row_norms[y]; });

  singular_values->assign(n, 0.0f);
  u->Reset(n, n);
  v->Reset(n, n);
  const float rank_tol = 1e-6f * row_norms[order[0]];
  std::size_t rank = 0;
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    (*singular_values)[jj] = row_norms[j];
    for (std::size_t k = 0; k < n; ++k) v->At(k, jj) = g.At(j, k);
    if (row_norms[j] > rank_tol && row_norms[j] > 0.0f) {
      const float inv = 1.0f / row_norms[j];
      for (std::size_t k = 0; k < n; ++k) u->At(k, jj) = w.At(j, k) * inv;
      ++rank;
    }
  }

  if (rank < n) {
    // Complete U's null-space columns to an orthonormal basis (work on the
    // transpose so the columns being completed are contiguous rows).
    Matrix ut;
    Transpose(*u, &ut);
    std::size_t filled = rank;
    for (std::size_t e = 0; e < n && filled < n; ++e) {
      float* row = ut.Row(filled);
      std::fill(row, row + n, 0.0f);
      row[e] = 1.0f;
      for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t j = 0; j < filled; ++j) {
          const float proj = Dot(row, ut.Row(j), n);
          Axpy(-proj, ut.Row(j), row, n);
        }
      }
      if (NormalizeInPlace(row, n) > 1e-4f) ++filled;
    }
    if (filled < n) return Status::Internal("failed to complete U basis");
    Transpose(ut, u);
  }
  return Status::Ok();
}

Status ProcrustesRotation(const Matrix& m, Matrix* r) {
  Matrix u, v;
  std::vector<float> s;
  RABITQ_RETURN_IF_ERROR(SvdSquare(m, &u, &s, &v));
  // R = V U^T maximizes tr(R^T M)... specifically here: the orthogonal R
  // maximizing tr(R M) is V U^T for M = U S V^T; callers pick the M that
  // matches their objective (see opq.cpp).
  Matrix ut;
  Transpose(u, &ut);
  MatMul(v, ut, r);
  // Jacobi with capped sweeps can leave R slightly non-orthogonal; clean up.
  return GramSchmidtRows(r);
}

}  // namespace rabitq
