#include "cluster/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/vector_ops.h"
#include "util/prng.h"
#include "util/thread_pool.h"

namespace rabitq {

namespace {

// kmeans++ seeding over the (possibly subsampled) training rows.
void SeedPlusPlus(const Matrix& data, const std::vector<std::size_t>& rows,
                  std::size_t k, Rng* rng, Matrix* centroids) {
  const std::size_t dim = data.cols();
  centroids->Reset(k, dim);
  const std::size_t n = rows.size();

  std::vector<float> min_dist(n, std::numeric_limits<float>::max());
  const std::size_t first = rows[rng->UniformInt(n)];
  std::copy_n(data.Row(first), dim, centroids->Row(0));

  for (std::size_t c = 1; c < k; ++c) {
    const float* last = centroids->Row(c - 1);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const float d = L2SqrDistance(data.Row(rows[i]), last, dim);
      min_dist[i] = std::min(min_dist[i], d);
      total += min_dist[i];
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng->UniformDouble() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= min_dist[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng->UniformInt(n);
    }
    std::copy_n(data.Row(rows[chosen]), dim, centroids->Row(c));
  }
}

}  // namespace

std::uint32_t NearestCentroid(const float* vec, const Matrix& centroids,
                              float* dist_out) {
  std::uint32_t best = 0;
  float best_dist = std::numeric_limits<float>::max();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const float d = L2SqrDistance(vec, centroids.Row(c), centroids.cols());
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  if (dist_out != nullptr) *dist_out = best_dist;
  return best;
}

void AssignToNearestCentroid(const Matrix& data, const Matrix& centroids,
                             std::vector<std::uint32_t>* assignments) {
  assignments->resize(data.rows());
  GlobalThreadPool().ParallelFor(
      data.rows(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          (*assignments)[i] = NearestCentroid(data.Row(i), centroids);
        }
      });
}

Status RunKMeans(const Matrix& data, const KMeansConfig& config,
                 KMeansResult* result) {
  if (result == nullptr) return Status::InvalidArgument("null result");
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (config.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be positive");
  }
  const std::size_t n = data.rows();
  const std::size_t dim = data.cols();
  const std::size_t k = config.num_clusters;
  Rng rng(config.seed);

  // Training subsample (indices into `data`).
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  if (config.max_training_points > 0 && n > config.max_training_points) {
    for (std::size_t i = 0; i < config.max_training_points; ++i) {
      std::swap(rows[i], rows[i + rng.UniformInt(n - i)]);
    }
    rows.resize(config.max_training_points);
  }

  SeedPlusPlus(data, rows, k, &rng, &result->centroids);
  Matrix& centroids = result->centroids;

  std::vector<std::uint32_t> train_assign(rows.size());
  double prev_objective = std::numeric_limits<double>::max();
  int iterations = 0;
  for (; iterations < config.max_iterations; ++iterations) {
    // Assignment step (threaded over the training rows).
    std::vector<double> partial_obj(rows.size(), 0.0);
    GlobalThreadPool().ParallelFor(
        rows.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            float d = 0.0f;
            train_assign[i] = NearestCentroid(data.Row(rows[i]), centroids, &d);
            partial_obj[i] = d;
          }
        });
    double objective = 0.0;
    for (const double d : partial_obj) objective += d;
    objective /= static_cast<double>(rows.size());

    // Update step.
    Matrix sums(k, dim);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::uint32_t c = train_assign[i];
      Axpy(1.0f, data.Row(rows[i]), sums.Row(c), dim);
      ++counts[c];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Empty-cluster repair: re-seed at the point farthest from its
        // centroid among the training rows.
        std::size_t farthest = 0;
        float max_d = -1.0f;
        for (std::size_t i = 0; i < rows.size(); ++i) {
          const float d = L2SqrDistance(data.Row(rows[i]),
                                        centroids.Row(train_assign[i]), dim);
          if (d > max_d) {
            max_d = d;
            farthest = i;
          }
        }
        std::copy_n(data.Row(rows[farthest]), dim, centroids.Row(c));
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[c]);
      for (std::size_t j = 0; j < dim; ++j) {
        centroids.At(c, j) = sums.At(c, j) * inv;
      }
    }

    result->final_objective = objective;
    if (prev_objective - objective <
        config.convergence_threshold * std::max(prev_objective, 1e-12)) {
      ++iterations;
      break;
    }
    prev_objective = objective;
  }
  result->iterations_run = iterations;

  // Final assignment over the full dataset.
  AssignToNearestCentroid(data, centroids, &result->assignments);
  return Status::Ok();
}

}  // namespace rabitq
