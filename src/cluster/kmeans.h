// KMeans clustering: kmeans++ seeding, Lloyd iterations with multi-threaded
// assignment, and empty-cluster repair. Used as (1) the IVF coarse quantizer
// that also provides RaBitQ's normalization centroids (paper Sections 3.1.1
// and 4) and (2) the sub-codebook trainer for PQ/OPQ/LSQ.

#ifndef RABITQ_CLUSTER_KMEANS_H_
#define RABITQ_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace rabitq {

struct KMeansConfig {
  std::size_t num_clusters = 16;
  int max_iterations = 25;
  /// Relative improvement of the objective below which training stops early.
  double convergence_threshold = 1e-4;
  /// Training subsample cap; 0 means "use all points". Sampling keeps the
  /// index phase cheap on large N without changing centroid quality much.
  std::size_t max_training_points = 0;
  std::uint64_t seed = 42;
};

struct KMeansResult {
  Matrix centroids;                       // num_clusters x dim
  std::vector<std::uint32_t> assignments; // size N (for the full input)
  double final_objective = 0.0;           // mean squared distance to centroid
  int iterations_run = 0;
};

/// Runs KMeans over `data` (N x dim). Requires N >= 1 and num_clusters >= 1;
/// if N < num_clusters the surplus centroids duplicate data points.
Status RunKMeans(const Matrix& data, const KMeansConfig& config,
                 KMeansResult* result);

/// Assigns each row of `data` to its nearest centroid (exhaustive, threaded).
void AssignToNearestCentroid(const Matrix& data, const Matrix& centroids,
                             std::vector<std::uint32_t>* assignments);

/// Index of the centroid nearest to `vec`, and optionally its squared
/// distance through `dist_out`.
std::uint32_t NearestCentroid(const float* vec, const Matrix& centroids,
                              float* dist_out = nullptr);

}  // namespace rabitq

#endif  // RABITQ_CLUSTER_KMEANS_H_
