#include "engine/search_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "linalg/vector_ops.h"
#include "util/failpoint.h"
#include "util/prng.h"

namespace rabitq {

namespace {

IvfSearchStats SumStats(const IvfSearchStats* stats, std::size_t n) {
  IvfSearchStats agg;
  for (std::size_t i = 0; i < n; ++i) {
    agg.codes_estimated += stats[i].codes_estimated;
    agg.candidates_reranked += stats[i].candidates_reranked;
    agg.lists_probed += stats[i].lists_probed;
    agg.codes_filtered += stats[i].codes_filtered;
    agg.codes_refined += stats[i].codes_refined;
    agg.rerank_bound_violations += stats[i].rerank_bound_violations;
    agg.rerank_health_samples += stats[i].rerank_health_samples;
    agg.rerank_signed_err_sum += stats[i].rerank_signed_err_sum;
    agg.rerank_tightness_sum += stats[i].rerank_tightness_sum;
  }
  return agg;
}

}  // namespace

SearchEngine::SearchEngine(ShardedIndex index, const EngineConfig& config)
    : index_(std::move(index)),
      dim_(index_.dim()),
      metric_(index_.metric()),
      bits_per_dim_(index_.encoder().config().bits_per_dim),
      config_(config),
      pool_(config.num_threads),
      worker_scratch_(pool_.num_threads()),
      stats_(&metrics_),
      queue_(config.max_queue_depth) {
  for (int s = 0; s < obs::kNumStages; ++s) {
    stage_hist_[s] = metrics_.GetHistogram(
        std::string("rabitq_stage_") +
            obs::StageName(static_cast<obs::Stage>(s)) + "_us",
        std::string("Per-query ") +
            obs::StageName(static_cast<obs::Stage>(s)) +
            " time in microseconds (sampled traces)");
  }
  compaction_pass_seconds_ = metrics_.GetHistogram(
      "rabitq_compaction_pass_seconds",
      "Wall time of background/explicit compaction passes that did work");
  compaction_codes_reclaimed_ = metrics_.GetCounter(
      "rabitq_compaction_codes_reclaimed_total",
      "Tombstoned code entries dropped by list compactions");
  traced_queries_ = metrics_.GetCounter("rabitq_traced_queries_total",
                                        "Queries with a sampled trace");
  gauge_live_vectors_ =
      metrics_.GetGauge("rabitq_live_vectors", "Live (non-deleted) vectors");
  gauge_tombstones_ = metrics_.GetGauge(
      "rabitq_tombstones", "Tombstoned list entries awaiting compaction");
  gauge_epoch_ = metrics_.GetGauge("rabitq_epoch", "Index mutation epoch");
  gauge_shards_ = metrics_.GetGauge("rabitq_num_shards", "Index shards");
  gauge_violation_rate_ = metrics_.GetGauge(
      "rabitq_eps0_violation_rate",
      "Observed share of re-ranked candidates violating the eps0 bound");
  gauge_signed_err_mean_ = metrics_.GetGauge(
      "rabitq_rerank_signed_err_mean",
      "Mean signed relative error of the estimate at re-rank");
  gauge_tightness_mean_ = metrics_.GetGauge(
      "rabitq_rerank_tightness_mean",
      "Mean lower_bound / exact distance ratio at re-rank");
  for (std::size_t s = 0; s < index_.num_shards(); ++s) {
    sync_.push_back(std::make_unique<ShardSync>());
  }
  scheduler_ = std::thread([this] { SchedulerLoop(); });
  compactor_ = std::thread([this] { CompactorLoop(); });
}

SearchEngine::SearchEngine(IvfRabitqIndex index, const EngineConfig& config)
    : SearchEngine(ShardedIndex::FromSingle(std::move(index)), config) {}

SearchEngine::~SearchEngine() { Drain(); }

void SearchEngine::Drain() {
  queue_.Close();  // PopBatch drains what was accepted, then returns false
  if (scheduler_.joinable()) scheduler_.join();
  {
    std::lock_guard<std::mutex> lock(compactor_mutex_);
    compactor_stop_ = true;
  }
  compactor_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
}

std::size_t SearchEngine::size() const { return index_.size(); }

std::size_t SearchEngine::live_size() const {
  std::size_t live = 0;
  for (std::size_t s = 0; s < index_.num_shards(); ++s) {
    std::shared_lock<std::shared_mutex> lock(sync_[s]->index_mutex);
    live += index_.shard(s).live_size();
  }
  return live;
}

std::uint64_t SearchEngine::QuerySeed(std::uint64_t base,
                                      std::uint64_t ticket) {
  return MixSeed(base, ticket);
}

void SearchEngine::ExecuteBatch(
    const float* const* queries, std::size_t n,
    const IvfSearchParams* const* params, const std::uint64_t* seeds,
    const std::chrono::steady_clock::time_point* submit_times,
    Status* statuses, std::vector<Neighbor>* results, IvfSearchStats* stats,
    ShardMergeInfo* infos) {
  using Clock = std::chrono::steady_clock;
  std::lock_guard<std::mutex> batch_lock(batch_mutex_);
  const Clock::time_point start = Clock::now();
  const std::size_t S = index_.num_shards();
  if (S == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      statuses[i] = Status::FailedPrecondition("engine index not built");
    }
    return;
  }

  // Deterministic trace sampling, decided before any work: a pure function
  // of each query's resolved seed, so the traced subset does not depend on
  // threads, shards or batch composition. batch_traces_[i] stays null for
  // untraced queries -- every downstream hook is then one branch, no clock.
  batch_traces_.assign(n, nullptr);
  bool any_traced = false;
  if (config_.trace_sample_period > 0) {
    if (n > trace_capacity_) {
      trace_storage_ = std::make_unique<obs::QueryTrace[]>(n);
      trace_capacity_ = n;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (obs::SampleTrace(seeds[i], config_.trace_sample_period)) {
        trace_storage_[i].Clear();
        batch_traces_[i] = &trace_storage_[i];
        any_traced = true;
      }
    }
  }

  // The whole batch runs against one consistent snapshot: shared locks on
  // every shard, so mutations run between batches (or overlap batches that
  // have already finished with their shard -- never mid-read).
  std::vector<std::shared_lock<std::shared_mutex>> read_locks;
  read_locks.reserve(S);
  for (std::size_t s = 0; s < S; ++s) {
    read_locks.emplace_back(sync_[s]->index_mutex);
  }

  // Gather and rotate every query with one matrix-matrix product -- the
  // per-query gemv this replaces is the dominant shared-preprocessing cost.
  Clock::time_point preprocess_start;
  if (any_traced) preprocess_start = Clock::now();
  const std::size_t d = index_.dim();
  gather_buf_.Reset(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    std::copy_n(queries[i], d, gather_buf_.Row(i));
  }
  // Cosine normalizes where it rotates (the index contract for pre-rotated
  // queries). A zero-norm query fails per-query, not per-batch: its gather
  // row rotates to zeros harmlessly and its cells are skipped below.
  std::vector<Status> query_status(n, Status::Ok());
  if (metric_ == Metric::kCosine) {
    for (std::size_t i = 0; i < n; ++i) {
      if (NormalizeInPlace(gather_buf_.Row(i), d) == 0.0f) {
        query_status[i] =
            Status::InvalidArgument("zero-norm query under cosine metric");
      }
    }
  }
  index_.encoder().rotator().InverseRotateBatch(gather_buf_, &rotated_buf_);
  if (any_traced) {
    // The batched rotation is shared work; each sampled trace gets its
    // per-query share (batch duration / batch size).
    const std::uint64_t preprocess_ns =
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - preprocess_start)
                .count()) /
        n;
    for (std::size_t i = 0; i < n; ++i) {
      if (batch_traces_[i] != nullptr) {
        batch_traces_[i]->AddNanos(obs::Stage::kPreprocess, preprocess_ns);
      }
    }
  }

  // Scatter: (query x shard) cells fanned out over the pool, one contiguous
  // chunk per worker slot so chunk c exclusively owns worker_scratch_[c].
  const std::size_t cells = n * S;
  cell_status_.assign(cells, Status::Ok());
  cell_results_.resize(cells);
  cell_stats_.assign(cells, IvfSearchStats{});
  const std::size_t chunks = std::min(pool_.num_threads(), cells);
  const std::size_t per_chunk = (cells + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(begin + per_chunk, cells);
    if (begin >= end) break;
    futures.push_back(pool_.SubmitTask([&, c, begin, end] {
      IvfSearchScratch& scratch = worker_scratch_[c].shard_scratch;
      for (std::size_t cell = begin; cell < end; ++cell) {
        const std::size_t q = cell / S;
        const std::size_t s = cell % S;
        // A sampled query's cells may run on several workers; its trace's
        // relaxed atomic accumulators absorb the concurrent span adds.
        if (!query_status[q].ok()) {
          cell_status_[cell] = query_status[q];
          continue;
        }
        scratch.trace = batch_traces_[q];
        // The gather row (normalized under cosine, a plain copy otherwise)
        // is the query the shards see -- exact re-ranks and the merge must
        // score against the SAME vector the estimates were prepared from.
        cell_status_[cell] = index_.SearchShard(
            s, gather_buf_.Row(q), rotated_buf_.Row(q), *params[q], seeds[q],
            &scratch, &cell_results_[cell], &cell_stats_[cell]);
      }
      scratch.trace = nullptr;
    }));
  }
  // Drain EVERY chunk before surfacing a failure: packaged_task futures do
  // not block on destruction, so rethrowing from the first get() would
  // unwind (freeing the cell buffers and releasing batch_mutex_) while the
  // remaining workers still write through those pointers.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);

  // Gather: per-query merge of the S shard cells into global results.
  futures.clear();
  const std::size_t merge_chunks = std::min(pool_.num_threads(), n);
  const std::size_t per_merge = (n + merge_chunks - 1) / merge_chunks;
  for (std::size_t c = 0; c < merge_chunks; ++c) {
    const std::size_t begin = c * per_merge;
    const std::size_t end = std::min(begin + per_merge, n);
    if (begin >= end) break;
    futures.push_back(pool_.SubmitTask([&, c, begin, end] {
      for (std::size_t q = begin; q < end; ++q) {
        // A query that failed validation before the scatter (zero-norm
        // under cosine) never ran any cell; everything else merges with the
        // per-shard statuses so a failed or out-of-time shard degrades the
        // query instead of failing it (see ShardedIndex::MergeShardResults).
        if (!query_status[q].ok()) {
          statuses[q] = query_status[q];
          continue;
        }
        obs::ScopedSpan merge_span(batch_traces_[q], obs::Stage::kMerge);
        statuses[q] = index_.MergeShardResults(
            gather_buf_.Row(q), *params[q], &cell_results_[q * S],
            &cell_stats_[q * S], &worker_scratch_[c], &results[q], &stats[q],
            &cell_status_[q * S], &infos[q]);
      }
    }));
  }
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  for (auto& lock : read_locks) lock.unlock();

  const Clock::time_point end = Clock::now();
  const double batch_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  std::vector<double> latencies(n);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    latencies[i] =
        submit_times != nullptr
            ? std::chrono::duration<double, std::micro>(end - submit_times[i])
                  .count()
            : batch_us;
    if (!statuses[i].ok()) ++errors;
    if (statuses[i].code() == StatusCode::kDeadlineExceeded) {
      stats_.RecordDeadlineExceeded();
    }
    if (infos[i].partial) stats_.RecordPartialResponse();
    if (infos[i].shards_failed > 0) {
      stats_.RecordShardFailures(infos[i].shards_failed);
    }
  }
  stats_.RecordBatch(n, latencies.data(), SumStats(stats, n), errors);

  // Fold the sampled traces into the per-stage histograms and hand them to
  // the optional sink. Queue wait (submit -> batch start) only exists on
  // the async path; the sync path records no kQueueWait samples.
  if (any_traced) {
    for (std::size_t i = 0; i < n; ++i) {
      obs::QueryTrace* const trace = batch_traces_[i];
      if (trace == nullptr) continue;
      if (submit_times != nullptr) {
        const std::int64_t wait_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                start - submit_times[i])
                .count();
        if (wait_ns > 0) {
          trace->AddNanos(obs::Stage::kQueueWait,
                          static_cast<std::uint64_t>(wait_ns));
        }
      }
      for (int s = 0; s < obs::kNumStages; ++s) {
        const std::uint64_t ns = trace->Nanos(static_cast<obs::Stage>(s));
        if (ns > 0) {
          stage_hist_[s]->Record(static_cast<double>(ns) * 1e-3);
        }
      }
      traced_queries_->Increment();
      if (config_.trace_sink) config_.trace_sink(seeds[i], *trace);
    }
  }
}

Status SearchEngine::SearchBatch(const SearchRequest* requests,
                                 std::size_t num_requests,
                                 std::vector<SearchResponse>* responses) {
  if (responses == nullptr) {
    return Status::InvalidArgument("null responses");
  }
  responses->assign(num_requests, {});
  if (num_requests == 0) return Status::Ok();  // empty batch is a no-op
  if (requests == nullptr) {
    return Status::InvalidArgument("null requests");
  }
  // Per-response error contract: a null-query request fails through its own
  // response.status while the valid requests still execute (compacted into
  // a dense sub-batch, then scattered back).
  std::vector<std::size_t> live;
  live.reserve(num_requests);
  for (std::size_t i = 0; i < num_requests; ++i) {
    if (requests[i].query == nullptr) {
      (*responses)[i].status = Status::InvalidArgument("null query in request");
    } else {
      live.push_back(i);
    }
  }
  const std::size_t n = live.size();
  if (n > 0) {
    std::vector<const float*> query_ptrs(n);
    std::vector<IvfSearchParams> owned_params(n);
    std::vector<const IvfSearchParams*> param_ptrs(n);
    std::vector<std::uint64_t> seeds(n);
    std::vector<Status> statuses(n);
    std::vector<std::vector<Neighbor>> results(n);
    std::vector<IvfSearchStats> stats(n);
    std::vector<ShardMergeInfo> infos(n);
    // Relative timeouts resolve against ONE admission timestamp for the
    // whole batch -- read lazily, so deadline-free batches never touch the
    // clock here (part of the bit-determinism contract).
    std::chrono::steady_clock::time_point now{};
    bool now_read = false;
    for (std::size_t j = 0; j < n; ++j) {
      const SearchRequest& request = requests[live[j]];
      query_ptrs[j] = request.query;
      owned_params[j] = request.options;
      if (owned_params[j].timeout_us != 0 && !now_read) {
        now = std::chrono::steady_clock::now();
        now_read = true;
      }
      owned_params[j].ResolveDeadline(now);
      param_ptrs[j] = &owned_params[j];
      // Auto-seed by the request's BATCH POSITION (not its compacted slot)
      // so a request's derived seed is independent of its neighbors'
      // validity.
      seeds[j] =
          request.options.seed.value_or(QuerySeed(config_.seed, live[j]));
    }
    ExecuteBatch(query_ptrs.data(), n, param_ptrs.data(), seeds.data(),
                 /*submit_times=*/nullptr, statuses.data(), results.data(),
                 stats.data(), infos.data());
    for (std::size_t j = 0; j < n; ++j) {
      SearchResponse& response = (*responses)[live[j]];
      response.status = std::move(statuses[j]);
      response.neighbors = std::move(results[j]);
      response.stats = stats[j];
      response.partial = infos[j].partial;
      response.shards_ok = infos[j].shards_ok;
      response.shards_failed = infos[j].shards_failed;
    }
  }
  for (const SearchResponse& response : *responses) {
    if (!response.status.ok()) return response.status;
  }
  return Status::Ok();
}

SearchResponse SearchEngine::Search(const SearchRequest& request) {
  std::vector<SearchResponse> responses;
  const Status status = SearchBatch(&request, 1, &responses);
  if (responses.empty()) {
    SearchResponse response;
    response.status =
        status.ok() ? Status::Internal("batch of one produced no response")
                    : status;
    return response;
  }
  SearchResponse response = std::move(responses.front());
  // A batch-level failure must not surface as an ok() response.
  if (response.status.ok() && !status.ok()) response.status = status;
  return response;
}

std::future<SearchResponse> SearchEngine::SubmitAsync(
    const SearchRequest& request) {
  QueuedQuery queued;
  std::future<SearchResponse> future = queued.promise.get_future();
  if (request.query == nullptr) {
    queued.promise.set_value(
        SearchResponse{Status::InvalidArgument("null query in request"),
                       {},
                       {}});
    return future;
  }
  queued.query.assign(request.query, request.query + dim());
  queued.options = request.options;
  // Not value_or: its argument evaluates eagerly, and an explicitly-seeded
  // submission must NOT consume a ticket (the auto-seed stream of
  // interleaved unseeded submissions would shift otherwise).
  queued.seed = request.options.seed.has_value()
                    ? *request.options.seed
                    : QuerySeed(config_.seed, next_ticket_.fetch_add(
                                                  1, std::memory_order_relaxed));
  queued.submit_time = std::chrono::steady_clock::now();
  // A relative timeout becomes an absolute deadline at ADMISSION, so queue
  // time counts against the budget (that is the point of shedding).
  queued.options.ResolveDeadline(queued.submit_time);
  bool injected_full = false;
  RABITQ_FAILPOINT("engine.queue_push", injected_full = true);
  const RequestQueue::PushResult pushed =
      injected_full ? RequestQueue::PushResult::kFull
                    : queue_.Push(std::move(queued));
  switch (pushed) {
    case RequestQueue::PushResult::kAccepted:
      break;
    case RequestQueue::PushResult::kFull: {
      // Push refused without consuming `queued`; fail fast instead of
      // queueing work the engine is too far behind to serve in time.
      stats_.RecordRejected();
      SearchResponse response;
      response.status = Status::ResourceExhausted("request queue is full");
      queued.promise.set_value(std::move(response));
      break;
    }
    case RequestQueue::PushResult::kClosed: {
      SearchResponse response;
      response.status = Status::FailedPrecondition("engine is shutting down");
      queued.promise.set_value(std::move(response));
      break;
    }
  }
  return future;
}

Status SearchEngine::Insert(const float* vec, std::uint32_t* id_out) {
  std::uint32_t id = 0, shard = 0;
  RABITQ_RETURN_IF_ERROR(index_.ReserveId(&id, &shard));
  Status status;
  {
    std::lock_guard<std::mutex> writer(sync_[shard]->writer_mutex);
    std::unique_lock<std::shared_mutex> write_lock(sync_[shard]->index_mutex);
    status = index_.CompleteAdd(id, shard, vec);
  }
  if (status.ok()) {
    epoch_.fetch_add(1, std::memory_order_release);
    stats_.RecordInsert();
    if (id_out != nullptr) *id_out = id;
  }
  return status;
}

bool SearchEngine::ListNeedsCompaction(std::uint32_t shard,
                                       std::uint32_t list_id) const {
  // Called under the shard's writer_mutex with no other writer of that
  // shard possible, so reading its list stats outside index_mutex is safe;
  // O(1), unlike a full ListsNeedingCompaction scan.
  if (config_.compaction_tombstone_ratio <= 0.0f) return false;
  const IvfRabitqIndex& s = index_.shard(shard);
  const std::size_t dead = s.list_tombstones(list_id);
  if (dead == 0 || dead < config_.compaction_min_dead) return false;
  return static_cast<float>(dead) >=
         config_.compaction_tombstone_ratio *
             static_cast<float>(s.list_ids(list_id).size());
}

Status SearchEngine::Delete(std::uint32_t id) {
  std::uint32_t shard = 0;
  if (!index_.TryShardOf(id, &shard)) return Status::NotFound("id not live");
  bool kick = false;
  Status status;
  {
    std::lock_guard<std::mutex> writer(sync_[shard]->writer_mutex);
    {
      std::unique_lock<std::shared_mutex> write_lock(sync_[shard]->index_mutex);
      status = index_.Delete(id);
    }
    if (status.ok()) {
      epoch_.fetch_add(1, std::memory_order_release);
      stats_.RecordDelete();
      // Delete leaves the local id pointing at the tombstoned entry's list.
      kick = ListNeedsCompaction(
          shard, index_.shard(shard).list_of(index_.local_of(id)));
    }
  }
  if (kick) KickCompactor();
  return status;
}

Status SearchEngine::Update(std::uint32_t id, const float* vec) {
  std::uint32_t shard = 0;
  if (!index_.TryShardOf(id, &shard)) return Status::NotFound("id not live");
  bool kick = false;
  Status status;
  {
    std::lock_guard<std::mutex> writer(sync_[shard]->writer_mutex);
    // The tombstone lands in the list currently holding the id; capture it
    // before Update repoints the shard's id->list mapping.
    const bool live = !index_.IsDeleted(id);
    const std::uint32_t old_list =
        live ? index_.shard(shard).list_of(index_.local_of(id)) : 0;
    {
      std::unique_lock<std::shared_mutex> write_lock(sync_[shard]->index_mutex);
      status = index_.Update(id, vec);
    }
    if (status.ok()) {
      epoch_.fetch_add(1, std::memory_order_release);
      stats_.RecordUpdate();
      kick = ListNeedsCompaction(shard, old_list);
    }
  }
  if (kick) KickCompactor();
  return status;
}

Status SearchEngine::CompactNow() {
  return RunCompactions(/*min_ratio=*/0.0f, /*min_dead=*/1);
}

Status SearchEngine::RunCompactions(float min_ratio, std::size_t min_dead) {
  Status first_error;
  const auto pass_start = std::chrono::steady_clock::now();
  std::size_t lists_done = 0;
  for (std::size_t shard = 0; shard < index_.num_shards(); ++shard) {
    std::vector<std::uint32_t> victims;
    {
      std::lock_guard<std::mutex> writer(sync_[shard]->writer_mutex);
      victims = index_.shard(shard).ListsNeedingCompaction(min_ratio, min_dead);
    }
    for (const std::uint32_t l : victims) {
      // The shard's writer_mutex is held per LIST, not across the pass: it
      // pins the list between plan (under the shared lock -- queries keep
      // executing) and commit (brief exclusive swap), while mutations of
      // this shard interleave between lists instead of stalling, and other
      // shards are never touched at all.
      std::lock_guard<std::mutex> writer(sync_[shard]->writer_mutex);
      IvfRabitqIndex* target = index_.mutable_shard(shard);
      // Tombstone count at plan time == entries the commit reclaims (the
      // commit fails closed if the list mutates in between).
      const std::size_t dead = target->list_tombstones(l);
      if (dead == 0) continue;  // mutated since selection
      IvfCompactionPlan plan;
      Status s;
      {
        std::shared_lock<std::shared_mutex> read_lock(sync_[shard]->index_mutex);
        s = target->PlanListCompaction(l, &plan);
      }
      if (s.ok()) {
        std::unique_lock<std::shared_mutex> write_lock(sync_[shard]->index_mutex);
        s = target->CommitListCompaction(std::move(plan));
      }
      if (s.ok()) {
        epoch_.fetch_add(1, std::memory_order_release);
        stats_.RecordCompaction();
        compaction_codes_reclaimed_->Add(dead);
        ++lists_done;
      } else if (first_error.ok()) {
        first_error = s;
      }
    }
  }
  // Idle scans (nothing selected) record no pass: the histogram measures
  // the cost of passes that did work, not the compactor's polling cadence.
  if (lists_done > 0) {
    compaction_pass_seconds_->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      pass_start)
            .count());
  }
  return first_error;
}

void SearchEngine::KickCompactor() {
  {
    std::lock_guard<std::mutex> lock(compactor_mutex_);
    compactor_kicked_ = true;
  }
  compactor_cv_.notify_one();
}

void SearchEngine::CompactorLoop() {
  std::unique_lock<std::mutex> lock(compactor_mutex_);
  for (;;) {
    compactor_cv_.wait(lock,
                       [this] { return compactor_kicked_ || compactor_stop_; });
    if (compactor_stop_) return;
    compactor_kicked_ = false;
    lock.unlock();
    RunCompactions(config_.compaction_tombstone_ratio,
                   config_.compaction_min_dead);
    lock.lock();
  }
}

EngineStatsSnapshot SearchEngine::Stats() const {
  EngineStatsSnapshot snap = stats_.Snapshot();
  snap.epoch = epoch();
  snap.num_shards = index_.num_shards();
  for (std::size_t s = 0; s < index_.num_shards(); ++s) {
    std::shared_lock<std::shared_mutex> lock(sync_[s]->index_mutex);
    snap.live_vectors += index_.shard(s).live_size();
    snap.tombstones += index_.shard(s).num_tombstones();
  }
  // Mirror the lifecycle and derived-health values into gauges so the
  // registry exports (Prometheus/JSON) carry them without recomputation.
  gauge_live_vectors_->Set(static_cast<double>(snap.live_vectors));
  gauge_tombstones_->Set(static_cast<double>(snap.tombstones));
  gauge_epoch_->Set(static_cast<double>(snap.epoch));
  gauge_shards_->Set(static_cast<double>(snap.num_shards));
  gauge_violation_rate_->Set(snap.eps0_violation_rate);
  gauge_signed_err_mean_->Set(snap.rerank_signed_err_mean);
  gauge_tightness_mean_->Set(snap.rerank_bound_tightness_mean);
  return snap;
}

obs::MetricsSnapshot SearchEngine::SnapshotMetrics() const {
  (void)Stats();  // refresh the lifecycle + derived-health gauges
  return metrics_.Snapshot();
}

Status SearchEngine::SaveSnapshot(const std::string& path) const {
  // Shared locks on every shard (ascending, matching ExecuteBatch's order):
  // the saved cut is consistent across shards, searches keep flowing, and
  // writers/compaction commits queue behind the write.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(sync_.size());
  for (const auto& sync : sync_) locks.emplace_back(sync->index_mutex);
  return index_.Save(path);
}

void SearchEngine::SchedulerLoop() {
  std::vector<QueuedQuery> batch;
  std::vector<QueuedQuery> shed;
  std::vector<const float*> query_ptrs;
  std::vector<const IvfSearchParams*> param_ptrs;
  std::vector<std::uint64_t> seeds;
  std::vector<std::chrono::steady_clock::time_point> submit_times;
  std::vector<Status> statuses;
  std::vector<std::vector<Neighbor>> results;
  std::vector<IvfSearchStats> stats;
  std::vector<ShardMergeInfo> infos;
  while (queue_.PopBatch(config_.max_batch,
                         std::chrono::microseconds(config_.batch_linger_us),
                         &batch, &shed)) {
    // Shed queries fail without executing: their deadline expired while
    // they waited, so the kindest answer is an immediate one.
    for (QueuedQuery& dropped : shed) {
      stats_.RecordShed();
      SearchResponse response;
      response.status =
          Status::DeadlineExceeded("deadline expired while queued");
      response.partial = true;
      dropped.promise.set_value(std::move(response));
    }
    const std::size_t n = batch.size();
    if (n == 0) continue;  // everything popped this round was shed
    query_ptrs.resize(n);
    param_ptrs.resize(n);
    seeds.resize(n);
    submit_times.resize(n);
    statuses.assign(n, Status::Ok());
    results.assign(n, {});
    stats.assign(n, IvfSearchStats{});
    infos.assign(n, ShardMergeInfo{});
    for (std::size_t i = 0; i < n; ++i) {
      query_ptrs[i] = batch[i].query.data();
      param_ptrs[i] = &batch[i].options;
      seeds[i] = batch[i].seed;
      submit_times[i] = batch[i].submit_time;
    }
    ExecuteBatch(query_ptrs.data(), n, param_ptrs.data(), seeds.data(),
                 submit_times.data(), statuses.data(), results.data(),
                 stats.data(), infos.data());
    for (std::size_t i = 0; i < n; ++i) {
      SearchResponse response;
      response.status = std::move(statuses[i]);
      response.neighbors = std::move(results[i]);
      response.stats = stats[i];
      response.partial = infos[i].partial;
      response.shards_ok = infos[i].shards_ok;
      response.shards_failed = infos[i].shards_failed;
      batch[i].promise.set_value(std::move(response));
    }
  }
}

}  // namespace rabitq
