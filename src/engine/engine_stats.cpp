#include "engine/engine_stats.h"

#include <algorithm>
#include <cmath>

namespace rabitq {

namespace {

// Bucket index for a latency: floor(4 * log2(us)) clamped to the table.
// Sub-microsecond latencies land in bucket 0.
int BucketIndex(double micros) {
  if (micros < 1.0) return 0;
  const int idx = static_cast<int>(4.0 * std::log2(micros));
  return std::min(idx, LatencyHistogram::kNumBuckets - 1);
}

// Upper edge of bucket i: 2^((i+1)/4) microseconds.
double BucketUpperEdge(int i) { return std::exp2((i + 1) / 4.0); }

}  // namespace

void LatencyHistogram::Record(double micros) {
  ++buckets_[BucketIndex(micros)];
  ++count_;
  max_micros_ = std::max(max_micros_, micros);
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = std::max(1.0, q * static_cast<double>(count_));
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      return std::min(BucketUpperEdge(i), max_micros_);
    }
  }
  return max_micros_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_, buckets_ + kNumBuckets, 0);
  count_ = 0;
  max_micros_ = 0.0;
}

void EngineStatsCollector::RecordBatch(std::size_t batch_size,
                                       const double* latencies_us,
                                       const IvfSearchStats& batch_stats,
                                       std::size_t errors) {
  std::lock_guard<std::mutex> lock(mutex_);
  queries_ += batch_size;
  ++batches_;
  search_errors_ += errors;
  codes_estimated_ += batch_stats.codes_estimated;
  candidates_reranked_ += batch_stats.candidates_reranked;
  lists_probed_ += batch_stats.lists_probed;
  codes_filtered_ += batch_stats.codes_filtered;
  for (std::size_t i = 0; i < batch_size; ++i) {
    latency_.Record(latencies_us[i]);
  }
}

void EngineStatsCollector::RecordInsert() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++inserts_;
}

void EngineStatsCollector::RecordDelete() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++deletes_;
}

void EngineStatsCollector::RecordUpdate() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++updates_;
}

void EngineStatsCollector::RecordCompaction() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++compactions_;
}

EngineStatsSnapshot EngineStatsCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineStatsSnapshot snap;
  snap.queries = queries_;
  snap.batches = batches_;
  snap.inserts = inserts_;
  snap.deletes = deletes_;
  snap.updates = updates_;
  snap.compactions = compactions_;
  snap.search_errors = search_errors_;
  snap.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  snap.qps = snap.uptime_seconds > 0.0
                 ? static_cast<double>(queries_) / snap.uptime_seconds
                 : 0.0;
  snap.mean_batch_size =
      batches_ > 0 ? static_cast<double>(queries_) / batches_ : 0.0;
  snap.latency_p50_us = latency_.Quantile(0.50);
  snap.latency_p99_us = latency_.Quantile(0.99);
  snap.latency_max_us = latency_.max_micros();
  snap.codes_estimated = codes_estimated_;
  snap.candidates_reranked = candidates_reranked_;
  snap.lists_probed = lists_probed_;
  snap.codes_filtered = codes_filtered_;
  return snap;
}

void EngineStatsCollector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  start_ = std::chrono::steady_clock::now();
  queries_ = batches_ = inserts_ = search_errors_ = 0;
  deletes_ = updates_ = compactions_ = 0;
  codes_estimated_ = candidates_reranked_ = lists_probed_ = 0;
  codes_filtered_ = 0;
  latency_.Reset();
}

}  // namespace rabitq
