#include "engine/engine_stats.h"

#include <algorithm>

namespace rabitq {

void LatencyHistogram::Record(double micros) {
  ++buckets_[obs::BucketIndex(micros)];
  ++count_;
  max_micros_ = std::max(max_micros_, micros);
}

double LatencyHistogram::Quantile(double q) const {
  return obs::BucketQuantile(buckets_, count_, max_micros_, q);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_, buckets_ + kNumBuckets, 0);
  count_ = 0;
  max_micros_ = 0.0;
}

EngineStatsCollector::EngineStatsCollector(obs::MetricsRegistry* registry)
    : registry_(registry),
      created_(std::chrono::steady_clock::now()),
      queries_(registry->GetCounter("rabitq_queries_total",
                                    "Queries served (all batches)")),
      batches_(registry->GetCounter("rabitq_batches_total",
                                    "Batches executed")),
      inserts_(registry->GetCounter("rabitq_inserts_total", "Inserts")),
      deletes_(registry->GetCounter("rabitq_deletes_total", "Deletes")),
      updates_(registry->GetCounter("rabitq_updates_total", "Updates")),
      compactions_(registry->GetCounter("rabitq_lists_compacted_total",
                                        "Lists compacted")),
      search_errors_(registry->GetCounter("rabitq_search_errors_total",
                                          "Queries that failed")),
      rejected_(registry->GetCounter(
          "rabitq_queries_rejected_total",
          "Submissions rejected at admission (queue full)")),
      shed_(registry->GetCounter(
          "rabitq_queries_shed_total",
          "Queued queries shed unexecuted (deadline expired in queue)")),
      deadline_exceeded_(registry->GetCounter(
          "rabitq_deadline_exceeded_total",
          "Queries that ran out of deadline mid-scan")),
      partial_responses_(registry->GetCounter(
          "rabitq_partial_responses_total",
          "Responses flagged partial (deadline and/or shard failure)")),
      shard_failures_(registry->GetCounter(
          "rabitq_shard_failures_total",
          "Per-shard hard failures isolated by the scatter-gather merge")),
      codes_estimated_(registry->GetCounter("rabitq_codes_estimated_total",
                                            "Codes distance-estimated")),
      candidates_reranked_(
          registry->GetCounter("rabitq_candidates_reranked_total",
                               "Candidates exactly re-ranked")),
      lists_probed_(registry->GetCounter("rabitq_lists_probed_total",
                                         "IVF lists probed")),
      codes_filtered_(
          registry->GetCounter("rabitq_codes_filtered_total",
                               "Live codes excluded by IdFilters")),
      codes_refined_(registry->GetCounter(
          "rabitq_codes_refined_total",
          "Stage-2 multi-bit refinements in the two-stage scan")),
      bound_violations_(registry->GetCounter(
          "rabitq_rerank_bound_violations_total",
          "Re-ranked candidates whose exact distance beat the eps0 bound")),
      health_samples_(registry->GetCounter(
          "rabitq_rerank_health_samples_total",
          "Re-ranked candidates contributing to the health means")),
      signed_err_sum_(registry->GetFloatCounter(
          "rabitq_rerank_signed_err_sum",
          "Sum of (estimate - exact) / exact at re-rank")),
      tightness_sum_(registry->GetFloatCounter(
          "rabitq_rerank_tightness_sum",
          "Sum of lower_bound / exact at re-rank")),
      latency_(registry->GetHistogram("rabitq_query_latency_us",
                                      "Per-query latency in microseconds")) {}

void EngineStatsCollector::RecordBatch(std::size_t batch_size,
                                       const double* latencies_us,
                                       const IvfSearchStats& batch_stats,
                                       std::size_t errors) {
  queries_->Add(batch_size);
  batches_->Increment();
  search_errors_->Add(errors);
  codes_estimated_->Add(batch_stats.codes_estimated);
  candidates_reranked_->Add(batch_stats.candidates_reranked);
  lists_probed_->Add(batch_stats.lists_probed);
  codes_filtered_->Add(batch_stats.codes_filtered);
  codes_refined_->Add(batch_stats.codes_refined);
  bound_violations_->Add(batch_stats.rerank_bound_violations);
  health_samples_->Add(batch_stats.rerank_health_samples);
  if (batch_stats.rerank_signed_err_sum != 0.0) {
    signed_err_sum_->Add(batch_stats.rerank_signed_err_sum);
  }
  if (batch_stats.rerank_tightness_sum != 0.0) {
    tightness_sum_->Add(batch_stats.rerank_tightness_sum);
  }
  for (std::size_t i = 0; i < batch_size; ++i) {
    latency_->Record(latencies_us[i]);
  }
}

EngineStatsSnapshot EngineStatsCollector::Snapshot() const {
  EngineStatsSnapshot snap;
  snap.queries = queries_->Value();
  snap.batches = batches_->Value();
  snap.inserts = inserts_->Value();
  snap.deletes = deletes_->Value();
  snap.updates = updates_->Value();
  snap.compactions = compactions_->Value();
  snap.search_errors = search_errors_->Value();
  snap.queries_rejected = rejected_->Value();
  snap.queries_shed = shed_->Value();
  snap.deadline_exceeded = deadline_exceeded_->Value();
  snap.partial_responses = partial_responses_->Value();
  snap.shard_failures = shard_failures_->Value();
  snap.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    created_)
          .count();
  // QPS over the window since the last Reset(), NOT process uptime: a
  // post-warmup Reset() starts a fresh window, so the reported rate is not
  // diluted by build/idle time before it.
  snap.window_seconds = registry_->WindowSeconds();
  snap.qps = snap.window_seconds > 0.0
                 ? static_cast<double>(snap.queries) / snap.window_seconds
                 : 0.0;
  snap.mean_batch_size =
      snap.batches > 0
          ? static_cast<double>(snap.queries) / static_cast<double>(snap.batches)
          : 0.0;
  const obs::HistogramSnapshot latency = latency_->Snapshot();
  snap.latency_p50_us = latency.Quantile(0.50);
  snap.latency_p99_us = latency.Quantile(0.99);
  snap.latency_max_us = latency.max;
  snap.codes_estimated = codes_estimated_->Value();
  snap.candidates_reranked = candidates_reranked_->Value();
  snap.lists_probed = lists_probed_->Value();
  snap.codes_filtered = codes_filtered_->Value();
  snap.codes_refined = codes_refined_->Value();
  snap.rerank_bound_violations = bound_violations_->Value();
  snap.rerank_health_samples = health_samples_->Value();
  snap.eps0_violation_rate =
      snap.candidates_reranked > 0
          ? static_cast<double>(snap.rerank_bound_violations) /
                static_cast<double>(snap.candidates_reranked)
          : 0.0;
  if (snap.rerank_health_samples > 0) {
    const double inv = 1.0 / static_cast<double>(snap.rerank_health_samples);
    snap.rerank_signed_err_mean = signed_err_sum_->Value() * inv;
    snap.rerank_bound_tightness_mean = tightness_sum_->Value() * inv;
  }
  return snap;
}

}  // namespace rabitq
