// Serving-side statistics for SearchEngine. EngineStatsCollector is a thin
// facade over an obs::MetricsRegistry: every Record* call is a handful of
// relaxed striped-atomic adds (no mutex -- the engine-wide stats lock this
// class used to hold is gone), and Snapshot() aggregates the registry into
// the same EngineStatsSnapshot consumers always read. The registry itself is
// owned by the engine and also feeds the per-stage trace histograms and the
// Prometheus/JSON exports (see obs/export.h).

#ifndef RABITQ_ENGINE_ENGINE_STATS_H_
#define RABITQ_ENGINE_ENGINE_STATS_H_

#include <chrono>
#include <cstdint>

#include "index/ivf.h"
#include "obs/metrics.h"

namespace rabitq {

/// Point-in-time view of an engine's counters, safe to copy around.
struct EngineStatsSnapshot {
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t updates = 0;
  std::uint64_t compactions = 0;  // lists compacted, not passes
  std::uint64_t search_errors = 0;
  // Overload / degraded-outcome tallies (the robustness layer): rejected at
  // admission (queue at max_queue_depth), shed unexecuted (deadline expired
  // while queued), out of time mid-scan, responses flagged partial, and
  // per-shard hard failures the scatter-gather merge isolated.
  std::uint64_t queries_rejected = 0;
  std::uint64_t queries_shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t partial_responses = 0;
  std::uint64_t shard_failures = 0;
  std::uint64_t epoch = 0;  // index version; bumped by every mutation
  // Index lifecycle gauges sampled at Stats() time (summed over shards).
  std::uint64_t num_shards = 1;
  std::uint64_t live_vectors = 0;
  std::uint64_t tombstones = 0;
  double uptime_seconds = 0.0;     // since collector construction
  double qps = 0.0;                // queries / window_seconds
  double mean_batch_size = 0.0;
  double latency_p50_us = 0.0;     // per-query latency quantiles; for async
  double latency_p99_us = 0.0;     // queries this includes queueing time
  double latency_max_us = 0.0;
  // Aggregated IvfSearchStats over every served query.
  std::uint64_t codes_estimated = 0;
  std::uint64_t candidates_reranked = 0;
  std::uint64_t lists_probed = 0;
  std::uint64_t codes_filtered = 0;  // excluded by per-query IdFilters
  /// Stage-2 multi-bit refinements (bits_per_dim > 1 under kErrorBound);
  /// 0 on a 1-bit index.
  std::uint64_t codes_refined = 0;

  /// Seconds since construction or the last Reset() -- the rate window the
  /// qps above is computed over, so a post-warmup Reset() yields a QPS
  /// undiluted by build/idle time.
  double window_seconds = 0.0;
  // Estimator-health telemetry aggregated from the kErrorBound re-rank
  // sites (see IvfSearchStats): the live view of the paper's Eq. 16 bound.
  std::uint64_t rerank_bound_violations = 0;
  std::uint64_t rerank_health_samples = 0;
  /// rerank_bound_violations / candidates_reranked; tracks P(Z > eps0).
  double eps0_violation_rate = 0.0;
  /// Mean of (estimate - exact) / exact; ~0 iff the estimator is unbiased.
  double rerank_signed_err_mean = 0.0;
  /// Mean of 1 - (exact - lower_bound) / |exact| in (0, 1]; how tight the
  /// bound runs (1 = bound hugging the exact score).
  double rerank_bound_tightness_mean = 0.0;
};

/// Histogram over geometrically spaced latency buckets: bucket i covers
/// [2^(i/4), 2^((i+1)/4)) microseconds, i.e. ~19% relative resolution, with
/// 128 buckets reaching ~75 minutes (the obs::Histogram bucket geometry).
/// Quantiles interpolate linearly WITHIN the reporting bucket and clamp to
/// the recorded maximum. NOT thread-safe -- this is the single-threaded
/// value type; the engine's concurrent histograms are obs::Histogram.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = obs::kNumBuckets;

  void Record(double micros);
  /// Interpolated quantile in microseconds; q in [0, 1]. 0 when empty.
  double Quantile(double q) const;
  double max_micros() const { return max_micros_; }
  std::uint64_t count() const { return count_; }
  void Reset();

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double max_micros_ = 0.0;
};

/// Thread-safe collector owned by a SearchEngine: a facade that resolves
/// its metrics out of the engine's registry once at construction, then
/// records lock-free. Record* calls may race freely; Snapshot() is a
/// relaxed aggregate (counters may be mutually off by in-flight adds).
class EngineStatsCollector {
 public:
  /// `registry` must outlive the collector (the engine owns both).
  explicit EngineStatsCollector(obs::MetricsRegistry* registry);

  /// One executed batch: its size, the per-query latencies (microseconds),
  /// the IvfSearchStats summed over the batch, and how many queries failed.
  void RecordBatch(std::size_t batch_size, const double* latencies_us,
                   const IvfSearchStats& batch_stats, std::size_t errors);
  void RecordInsert() { inserts_->Increment(); }
  void RecordDelete() { deletes_->Increment(); }
  void RecordUpdate() { updates_->Increment(); }
  /// One list compacted (a background pass may record several).
  void RecordCompaction() { compactions_->Increment(); }
  /// One submission rejected at admission (queue at max_queue_depth).
  void RecordRejected() { rejected_->Increment(); }
  /// One queued query shed unexecuted (deadline expired while queued).
  void RecordShed() { shed_->Increment(); }
  /// One query that ran out of deadline mid-scan (partial results).
  void RecordDeadlineExceeded() { deadline_exceeded_->Increment(); }
  /// One response flagged partial (deadline and/or shard failure).
  void RecordPartialResponse() { partial_responses_->Increment(); }
  /// `n` shards hard-failed and were excluded from one query's merge.
  void RecordShardFailures(std::uint64_t n) { shard_failures_->Add(n); }

  EngineStatsSnapshot Snapshot() const;
  /// Zeroes every registry metric and restarts the QPS window (the uptime
  /// clock keeps running from construction).
  void Reset() { registry_->Reset(); }

 private:
  obs::MetricsRegistry* registry_;
  std::chrono::steady_clock::time_point created_;
  obs::Counter* queries_;
  obs::Counter* batches_;
  obs::Counter* inserts_;
  obs::Counter* deletes_;
  obs::Counter* updates_;
  obs::Counter* compactions_;
  obs::Counter* search_errors_;
  obs::Counter* rejected_;
  obs::Counter* shed_;
  obs::Counter* deadline_exceeded_;
  obs::Counter* partial_responses_;
  obs::Counter* shard_failures_;
  obs::Counter* codes_estimated_;
  obs::Counter* candidates_reranked_;
  obs::Counter* lists_probed_;
  obs::Counter* codes_filtered_;
  obs::Counter* codes_refined_;
  obs::Counter* bound_violations_;
  obs::Counter* health_samples_;
  obs::FloatCounter* signed_err_sum_;
  obs::FloatCounter* tightness_sum_;
  obs::Histogram* latency_;
};

}  // namespace rabitq

#endif  // RABITQ_ENGINE_ENGINE_STATS_H_
