// Serving-side statistics for SearchEngine: query/batch/insert counters,
// work counters aggregated from IvfSearchStats, and a log-bucketed latency
// histogram that yields approximate quantiles (p50/p99) without retaining
// samples. Recording is mutex-guarded but batched -- one RecordBatch call per
// executed batch -- so the cost is O(1) per batch, not per query.

#ifndef RABITQ_ENGINE_ENGINE_STATS_H_
#define RABITQ_ENGINE_ENGINE_STATS_H_

#include <chrono>
#include <cstdint>
#include <mutex>

#include "index/ivf.h"

namespace rabitq {

/// Point-in-time view of an engine's counters, safe to copy around.
struct EngineStatsSnapshot {
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t updates = 0;
  std::uint64_t compactions = 0;  // lists compacted, not passes
  std::uint64_t search_errors = 0;
  std::uint64_t epoch = 0;  // index version; bumped by every mutation
  // Index lifecycle gauges sampled at Stats() time (summed over shards).
  std::uint64_t num_shards = 1;
  std::uint64_t live_vectors = 0;
  std::uint64_t tombstones = 0;
  double uptime_seconds = 0.0;
  double qps = 0.0;                // queries / uptime
  double mean_batch_size = 0.0;
  double latency_p50_us = 0.0;     // per-query latency quantiles; for async
  double latency_p99_us = 0.0;     // queries this includes queueing time
  double latency_max_us = 0.0;
  // Aggregated IvfSearchStats over every served query.
  std::uint64_t codes_estimated = 0;
  std::uint64_t candidates_reranked = 0;
  std::uint64_t lists_probed = 0;
  std::uint64_t codes_filtered = 0;  // excluded by per-query IdFilters
};

/// Histogram over geometrically spaced latency buckets: bucket i covers
/// [2^(i/4), 2^((i+1)/4)) microseconds, i.e. ~19% relative resolution, with
/// 128 buckets reaching ~75 minutes. Quantiles report the upper bucket edge
/// (a <= 19% overestimate -- fine for p50/p99 served out of a stats endpoint).
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 128;

  void Record(double micros);
  /// Approximate quantile in microseconds; q in [0, 1]. 0 when empty.
  double Quantile(double q) const;
  double max_micros() const { return max_micros_; }
  std::uint64_t count() const { return count_; }
  void Reset();

 private:
  std::uint64_t buckets_[kNumBuckets] = {};
  std::uint64_t count_ = 0;
  double max_micros_ = 0.0;
};

/// Thread-safe collector owned by a SearchEngine.
class EngineStatsCollector {
 public:
  EngineStatsCollector() : start_(std::chrono::steady_clock::now()) {}

  /// One executed batch: its size, the per-query latencies (microseconds),
  /// the IvfSearchStats summed over the batch, and how many queries failed.
  void RecordBatch(std::size_t batch_size, const double* latencies_us,
                   const IvfSearchStats& batch_stats, std::size_t errors);
  void RecordInsert();
  void RecordDelete();
  void RecordUpdate();
  /// One list compacted (a background pass may record several).
  void RecordCompaction();

  EngineStatsSnapshot Snapshot() const;
  /// Zeroes every counter and restarts the uptime/QPS clock.
  void Reset();

 private:
  mutable std::mutex mutex_;
  std::chrono::steady_clock::time_point start_;
  std::uint64_t queries_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t deletes_ = 0;
  std::uint64_t updates_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t search_errors_ = 0;
  std::uint64_t codes_estimated_ = 0;
  std::uint64_t candidates_reranked_ = 0;
  std::uint64_t lists_probed_ = 0;
  std::uint64_t codes_filtered_ = 0;
  LatencyHistogram latency_;
};

}  // namespace rabitq

#endif  // RABITQ_ENGINE_ENGINE_STATS_H_
