// Concurrent query-serving engine over a sharded IVF+RaBitQ index -- the
// layer the paper's evaluation protocol (one thread, one query at a time)
// leaves out. Layering: linalg -> quant/core -> cluster/index -> engine ->
// bench/examples.
//
// What it does:
//   * Batched execution (SearchBatch): rotates a whole batch of queries with
//     ONE matrix-matrix product (Rotator::InverseRotateBatch) instead of one
//     gemv per query, then scatters the (query x shard) work cells across a
//     private ThreadPool and gathers per-query global results with a merge
//     pass. Each worker owns its scratch, so the hot path stops allocating
//     once the buffers reach steady state.
//   * Micro-batching (SubmitAsync): producers enqueue single queries and get
//     futures; a scheduler thread gathers the queue into batches (up to
//     max_batch, lingering batch_linger_us) and runs them through the same
//     batched path, amortizing the per-batch costs across concurrent callers.
//   * Read/write coordination, PER SHARD: every batch executes against a
//     consistent snapshot (shared lock on every shard for the batch's
//     duration); Insert/Delete/Update lock only the ONE shard their id
//     hashes to -- exclusively for the index mutation, plus that shard's
//     writer mutex for the logical span. Mutations to different shards no
//     longer contend, which is the write-scaling point of sharding; the
//     engine-wide single writer mutex of the unsharded engine is gone.
//   * Background compaction: when a mutation pushes a list's tombstone
//     ratio past EngineConfig::compaction_tombstone_ratio, a maintenance
//     thread rebuilds that (shard, list). The rebuild (plan) runs under the
//     shard's SHARED lock -- queries keep flowing -- and only the
//     O(live-entries) swap (commit) takes the shard's exclusive lock.
//   * Determinism: each query is searched with seeds derived from
//     (engine seed, ticket) -- or an explicit caller seed -- and per-list
//     rounding seeds derive from (query seed, list id), so results are
//     bit-identical to the sequential reference no matter how many threads
//     or shards serve the batch or how requests interleave.
//
// Thread safety: every public method may be called from any thread.

#ifndef RABITQ_ENGINE_SEARCH_ENGINE_H_
#define RABITQ_ENGINE_SEARCH_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "engine/engine_stats.h"
#include "engine/request_queue.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace rabitq {

struct EngineConfig {
  /// Worker threads for batch execution; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Async scheduler: largest batch gathered from the submission queue.
  std::size_t max_batch = 32;
  /// Async scheduler: how long the first request of a batch may wait for
  /// company, in microseconds. 0 disables lingering (greedy batches).
  std::size_t batch_linger_us = 200;
  /// Bounded admission: SubmitAsync fails fast with kResourceExhausted once
  /// this many requests are queued, so a flood of producers cannot grow the
  /// backlog (and its memory) without limit. 0 means unbounded -- the
  /// pre-robustness behavior.
  std::size_t max_queue_depth = 16384;
  /// Base of the per-query seed derivation (see QuerySeed).
  std::uint64_t seed = 0x5EEDC0FFEE5EEDULL;
  /// Default search parameters for SubmitAsync overloads without params.
  IvfSearchParams default_params;
  /// Background compaction trigger: a list is rebuilt once its tombstone
  /// ratio (dead entries / entries) reaches this. <= 0 disables the
  /// background pass (CompactNow still works).
  float compaction_tombstone_ratio = 0.25f;
  /// Lists with fewer tombstones than this are never auto-compacted
  /// (rebuilding a 3-entry list over one tombstone is churn, not progress).
  std::size_t compaction_min_dead = 32;
  /// Per-stage trace sampling: one query in `trace_sample_period` records
  /// spans (queue wait, preprocess, probe order, scan, re-rank, merge) into
  /// the per-stage latency histograms. The decision is a pure function of
  /// the query's resolved seed (obs::SampleTrace), so the traced subset is
  /// deterministic across runs and shard counts. 0 disables tracing;
  /// 1 traces every query. Untraced queries pay one seed mix and a few
  /// null checks -- no clock reads.
  std::uint32_t trace_sample_period = 64;
  /// Optional per-query trace dump: invoked synchronously after each batch
  /// for every SAMPLED query with (resolved query seed, completed trace).
  /// Runs on the batch-executing thread with no engine locks held, but
  /// stalls serving while it runs -- keep it cheap, and make it thread-safe
  /// if batches come from several threads.
  std::function<void(std::uint64_t, const obs::QueryTrace&)> trace_sink;
};

/// Owns a built (possibly sharded) index and serves k-NN concurrently.
class SearchEngine {
 public:
  /// Takes ownership of a BUILT sharded index (an engine serving an empty
  /// index is a config error surfaced by the first search).
  explicit SearchEngine(ShardedIndex index, const EngineConfig& config = {});

  /// Convenience: wraps a single IvfRabitqIndex as a 1-shard configuration.
  explicit SearchEngine(IvfRabitqIndex index, const EngineConfig& config = {});

  ~SearchEngine();

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  /// The owned index. Reading it while a writer (Insert/Delete/Update or a
  /// background compaction commit) runs on another thread races; quiesce
  /// writers (or take no writers by construction) before touching index
  /// internals directly. Serving-path accessors (Stats, size) are safe.
  const ShardedIndex& index() const { return index_; }

  std::size_t num_threads() const { return pool_.num_threads(); }
  std::size_t num_shards() const { return index_.num_shards(); }
  /// Cached at construction: the serving paths read it lock-free, and even
  /// an immutable-in-practice index_.dim() would race with Insert's move
  /// of the underlying storage.
  std::size_t dim() const { return dim_; }
  /// Distance metric of the served index (cached at construction, same
  /// reasoning as dim()).
  Metric metric() const { return metric_; }
  /// Bits per dimension of the served index's codes (cached at
  /// construction, same reasoning as dim()). Widths > 1 run the two-stage
  /// error-bound scan -- see EngineStatsSnapshot::codes_refined.
  std::size_t bits_per_dim() const { return bits_per_dim_; }
  /// Current number of ids ever assigned (racy snapshot, safe anytime).
  std::size_t size() const;
  /// Current number of live (non-deleted) vectors (racy snapshot).
  std::size_t live_size() const;
  /// Index version: starts at 0, bumped by every successful mutation
  /// (Insert/Delete/Update and each committed list compaction).
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Deterministic per-query seed stream: SplitMix64 of (base, ticket).
  /// Query i of a request batch without explicit seeds uses
  /// QuerySeed(config.seed, i); the parity tests replay the same seeds
  /// through the sequential reference.
  static std::uint64_t QuerySeed(std::uint64_t base, std::uint64_t ticket);

  /// Synchronous batched search -- the request-based core every other entry
  /// point (single-query Search, SubmitAsync, the deprecated raw-pointer
  /// shims) funnels into. responses->at(i) receives query i's outcome
  /// (GLOBAL ids); a failed query reports through its own response.status
  /// while the rest of the batch still executes, and the first per-query
  /// error is also returned. Each request's options.seed is used verbatim
  /// when set, else QuerySeed(config.seed, i). Filters ride in the options
  /// and are pushed into the per-shard scans (see ShardedIndex).
  Status SearchBatch(const SearchRequest* requests, std::size_t num_requests,
                     std::vector<SearchResponse>* responses);

  /// Synchronous single query: a batch of one.
  SearchResponse Search(const SearchRequest& request);

  /// Enqueues one query for the micro-batching scheduler and returns a
  /// future fulfilled when its batch executes. The vector is copied; the
  /// options (including the filter VIEW -- keep its bitmap/context alive
  /// until the future resolves) ride along. options.seed unset draws the
  /// next ticket from the engine's auto-seed stream; set, it is used
  /// verbatim, making the result reproducible independently of submission
  /// interleaving. Overload behavior: with the queue at max_queue_depth the
  /// future resolves immediately with kResourceExhausted; a request whose
  /// deadline (options.deadline / options.timeout_us, resolved against the
  /// submission time) expires while queued is shed unexecuted and resolves
  /// with kDeadlineExceeded.
  std::future<SearchResponse> SubmitAsync(const SearchRequest& request);

  /// Graceful shutdown: closes admission (subsequent SubmitAsync resolves
  /// with kFailedPrecondition), serves or sheds every already-accepted
  /// request, joins the scheduler, and stops the background compactor.
  /// Idempotent; the destructor calls it. Synchronous entry points
  /// (SearchBatch / Search) keep working after a drain.
  void Drain();

#ifndef RABITQ_NO_DEPRECATED
  /// Legacy overload ladder, now thin shims over the request-based core
  /// (definitions in search_compat.h; hidden by RABITQ_NO_DEPRECATED).
  RABITQ_DEPRECATED("use SearchBatch(const SearchRequest*, ...)")
  Status SearchBatch(const float* queries, std::size_t num_queries,
                     const IvfSearchParams& params, std::uint64_t seed_base,
                     std::vector<std::vector<Neighbor>>* results,
                     IvfSearchStats* agg = nullptr);

  RABITQ_DEPRECATED("use SearchBatch(const SearchRequest*, ...)")
  Status SearchBatch(const float* queries, std::size_t num_queries,
                     const IvfSearchParams& params,
                     std::vector<std::vector<Neighbor>>* results,
                     IvfSearchStats* agg = nullptr);

  RABITQ_DEPRECATED("use SubmitAsync(const SearchRequest&)")
  std::future<SearchResponse> SubmitAsync(const float* query,
                                          const IvfSearchParams& params);
  RABITQ_DEPRECATED("use SubmitAsync(const SearchRequest&) with options.seed")
  std::future<SearchResponse> SubmitAsync(const float* query,
                                          const IvfSearchParams& params,
                                          std::uint64_t seed);
  RABITQ_DEPRECATED("use SubmitAsync(const SearchRequest&)")
  std::future<SearchResponse> SubmitAsync(const float* query);
#endif  // RABITQ_NO_DEPRECATED

  /// Appends one vector (copied): reserves the next global id, then
  /// excludes search batches from ONLY the owning shard for the duration of
  /// the underlying append. Queries batched before and after the insert see
  /// consistent pre-/post-insert snapshots respectively.
  Status Insert(const float* vec, std::uint32_t* id_out = nullptr);

  /// Tombstones `id`; it stops appearing in results from the next batch on.
  /// May trigger a background compaction of the affected (shard, list).
  Status Delete(std::uint32_t id);

  /// Replaces the vector of live `id` in place (same id and shard).
  /// May trigger a background compaction of the list left behind.
  Status Update(std::uint32_t id, const float* vec);

  /// Synchronously compacts every list of every shard that has any
  /// tombstone, regardless of the configured trigger. Queries keep flowing
  /// during the rebuilds; each list swap briefly excludes them from its
  /// shard. Returns the first error.
  Status CompactNow();

  EngineStatsSnapshot Stats() const;
  /// Zeroes EVERY registry metric (engine counters, per-stage histograms,
  /// compaction metrics) and restarts the QPS window -- call after warmup
  /// for rates over the serving window only.
  void ResetStats() { stats_.Reset(); }

  /// Full observability snapshot: every registry metric (engine counters,
  /// per-stage trace histograms rabitq_stage_*_us, estimator health,
  /// compaction metrics) with the lifecycle/health gauges refreshed first.
  /// Feed it to obs::ExportJson / obs::ExportPrometheus.
  obs::MetricsSnapshot SnapshotMetrics() const;

  /// The engine's metric registry: extension point for embedding callers
  /// that want to register their own metrics into the same export.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  /// Writes a snapshot of the owned index to `path` (ShardedIndex::Save:
  /// crash-safe, two-phase, manifest-last). Every shard lock is taken
  /// SHARED for the write, so the snapshot is a consistent cut: queries
  /// keep flowing, mutations and compaction commits wait.
  Status SaveSnapshot(const std::string& path) const;

 private:
  /// Per-shard coordination: readers (batches) share index_mutex; mutators
  /// take it exclusively for the index mutation and ALSO hold writer_mutex
  /// for their full logical span -- serializing writers of the SAME shard
  /// against each other and pinning list state between a compaction's plan
  /// (shared lock only) and commit (exclusive lock). Writers of different
  /// shards run fully in parallel. Lock order: writer_mutex before
  /// index_mutex; shard locks in ascending shard order.
  struct ShardSync {
    mutable std::shared_mutex index_mutex;
    std::mutex writer_mutex;
  };

  /// Executes `n` gathered queries: one shared lock per shard, one batched
  /// rotation, then a (query x shard) scatter across the pool followed by a
  /// per-query merge pass. Exactly one batch runs at a time (batch_mutex_):
  /// per-worker scratch and the cell buffers are reused across batches.
  /// `statuses`, `results`, `stats` are arrays of length n. `submit_times`
  /// non-null switches the recorded per-query latency from batch execution
  /// time to submit-to-completion time (the async path, queueing included).
  /// `infos` (length n) receives each query's scatter-gather degradation
  /// tallies (shards_ok / shards_failed / partial).
  void ExecuteBatch(const float* const* queries, std::size_t n,
                    const IvfSearchParams* const* params,
                    const std::uint64_t* seeds,
                    const std::chrono::steady_clock::time_point* submit_times,
                    Status* statuses, std::vector<Neighbor>* results,
                    IvfSearchStats* stats, ShardMergeInfo* infos);

  void SchedulerLoop();
  void CompactorLoop();
  /// O(1) trigger check for the one list a mutation just touched. Must be
  /// called under sync_[shard]->writer_mutex.
  bool ListNeedsCompaction(std::uint32_t shard, std::uint32_t list_id) const;
  /// Wakes the compactor to re-scan for over-threshold lists.
  void KickCompactor();
  /// Plan+commit every (shard, list) selected by (min_ratio, min_dead).
  /// Caller must hold NO shard locks.
  Status RunCompactions(float min_ratio, std::size_t min_dead);

  ShardedIndex index_;
  std::size_t dim_;
  Metric metric_;
  std::size_t bits_per_dim_;
  EngineConfig config_;
  ThreadPool pool_;

  std::vector<std::unique_ptr<ShardSync>> sync_;  // one per shard
  std::atomic<std::uint64_t> epoch_{0};

  // One batch in flight at a time; guards the scratch below.
  std::mutex batch_mutex_;
  Matrix gather_buf_;   // batch x dim, for async requests
  Matrix rotated_buf_;  // batch x total_bits, the batched rotation
  std::vector<ShardedSearchScratch> worker_scratch_;  // one per pool thread
  // (query x shard) cell buffers, laid out q * num_shards + s.
  std::vector<Status> cell_status_;
  std::vector<std::vector<Neighbor>> cell_results_;
  std::vector<IvfSearchStats> cell_stats_;

  // Observability. metrics_ is declared before stats_ (the collector
  // resolves its metrics out of it at construction). Traced queries write
  // into trace_storage_ slots (QueryTrace holds atomics, so the storage is
  // a raw array grown to the largest batch, guarded by batch_mutex_);
  // batch_traces_[q] is the sampled query q's trace or null.
  obs::MetricsRegistry metrics_;
  obs::Histogram* stage_hist_[obs::kNumStages];
  obs::Histogram* compaction_pass_seconds_;
  obs::Counter* compaction_codes_reclaimed_;
  obs::Counter* traced_queries_;
  obs::Gauge* gauge_live_vectors_;
  obs::Gauge* gauge_tombstones_;
  obs::Gauge* gauge_epoch_;
  obs::Gauge* gauge_shards_;
  obs::Gauge* gauge_violation_rate_;
  obs::Gauge* gauge_signed_err_mean_;
  obs::Gauge* gauge_tightness_mean_;
  std::unique_ptr<obs::QueryTrace[]> trace_storage_;
  std::size_t trace_capacity_ = 0;
  std::vector<obs::QueryTrace*> batch_traces_;

  EngineStatsCollector stats_;

  // Async serving.
  RequestQueue queue_;
  std::atomic<std::uint64_t> next_ticket_{0};
  std::thread scheduler_;

  // Background compaction.
  std::mutex compactor_mutex_;
  std::condition_variable compactor_cv_;
  bool compactor_kicked_ = false;
  bool compactor_stop_ = false;
  std::thread compactor_;
};

}  // namespace rabitq

// Deprecated-overload shim definitions (see search_compat.h for the scheme).
#define RABITQ_SEARCH_COMPAT_HAVE_ENGINE 1
#include "index/search_compat.h"

#endif  // RABITQ_ENGINE_SEARCH_ENGINE_H_
