// Concurrent query-serving engine on top of IvfRabitqIndex -- the layer the
// paper's evaluation protocol (one thread, one query at a time) leaves out.
// Layering: linalg -> quant/core -> cluster/index -> engine -> bench/examples.
//
// What it does:
//   * Batched execution (SearchBatch): rotates a whole batch of queries with
//     ONE matrix-matrix product (Rotator::InverseRotateBatch) instead of one
//     gemv per query, then fans the per-query probe/estimate/re-rank work out
//     across a private ThreadPool. Each worker owns an IvfSearchScratch, so
//     the hot path stops allocating once the buffers reach steady state.
//   * Micro-batching (SubmitAsync): producers enqueue single queries and get
//     futures; a scheduler thread gathers the queue into batches (up to
//     max_batch, lingering batch_linger_us) and runs them through the same
//     batched path, amortizing the per-batch costs across concurrent callers.
//   * Read/write coordination: every batch executes against a consistent
//     snapshot of the index (readers hold a shared lock for the batch's
//     duration; Insert takes the lock exclusively between batches and bumps
//     the epoch counter). Searches never block each other.
//   * Determinism: each query is searched with a private Rng seeded from
//     (engine seed, ticket) -- or an explicit caller seed -- so results are
//     bit-identical to the sequential IvfRabitqIndex::Search(seed) reference
//     no matter how many threads serve the batch or how requests interleave.
//
// Thread safety: every public method may be called from any thread.

#ifndef RABITQ_ENGINE_SEARCH_ENGINE_H_
#define RABITQ_ENGINE_SEARCH_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "engine/engine_stats.h"
#include "engine/request_queue.h"
#include "index/ivf.h"
#include "util/thread_pool.h"

namespace rabitq {

struct EngineConfig {
  /// Worker threads for batch execution; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Async scheduler: largest batch gathered from the submission queue.
  std::size_t max_batch = 32;
  /// Async scheduler: how long the first request of a batch may wait for
  /// company, in microseconds. 0 disables lingering (greedy batches).
  std::size_t batch_linger_us = 200;
  /// Base of the per-query seed derivation (see QuerySeed).
  std::uint64_t seed = 0x5EEDC0FFEE5EEDULL;
  /// Default search parameters for SubmitAsync overloads without params.
  IvfSearchParams default_params;
};

/// Owns a built IvfRabitqIndex and serves k-NN queries concurrently.
class SearchEngine {
 public:
  /// Takes ownership of a BUILT index (engine serving an empty index is a
  /// config error surfaced by the first search).
  explicit SearchEngine(IvfRabitqIndex index, const EngineConfig& config = {});
  ~SearchEngine();

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  /// The owned index. Reading it while Insert runs on another thread races;
  /// quiesce writers (or take no writers by construction) before touching
  /// index internals directly. Serving-path accessors (Stats, size) are safe.
  const IvfRabitqIndex& index() const { return index_; }

  std::size_t num_threads() const { return pool_.num_threads(); }
  /// Cached at construction: the serving paths read it lock-free, and even
  /// an immutable-in-practice index_.dim() would race with Insert's move
  /// of the underlying Matrix.
  std::size_t dim() const { return dim_; }
  /// Current number of indexed vectors (racy snapshot, safe to call anytime).
  std::size_t size() const;
  /// Index version: starts at 0, bumped by every successful Insert.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Deterministic per-query seed stream: SplitMix64 of (base, ticket).
  /// Query i of a SearchBatch(seed_base) uses QuerySeed(seed_base, i); the
  /// parity tests replay the same seeds through the sequential reference.
  static std::uint64_t QuerySeed(std::uint64_t base, std::uint64_t ticket);

  /// Synchronous batched search: queries is num_queries x dim row-major.
  /// results[i] receives the neighbors of query i, searched with
  /// Rng(QuerySeed(seed_base, i)). Returns the first per-query error if any
  /// query fails (remaining queries still execute). `agg` (optional) sums
  /// the per-query IvfSearchStats.
  Status SearchBatch(const float* queries, std::size_t num_queries,
                     const IvfSearchParams& params, std::uint64_t seed_base,
                     std::vector<std::vector<Neighbor>>* results,
                     IvfSearchStats* agg = nullptr);

  /// As above with the engine's config seed.
  Status SearchBatch(const float* queries, std::size_t num_queries,
                     const IvfSearchParams& params,
                     std::vector<std::vector<Neighbor>>* results,
                     IvfSearchStats* agg = nullptr);

  /// Enqueues one query (copied) for the micro-batching scheduler and
  /// returns a future that is fulfilled when its batch executes. The
  /// engine-seeded overload draws the next ticket from the auto-seed stream;
  /// pass an explicit seed to make the result reproducible independently of
  /// submission interleaving.
  std::future<EngineResult> SubmitAsync(const float* query,
                                        const IvfSearchParams& params);
  std::future<EngineResult> SubmitAsync(const float* query,
                                        const IvfSearchParams& params,
                                        std::uint64_t seed);
  std::future<EngineResult> SubmitAsync(const float* query);

  /// Appends one vector (copied) to the index. Excludes search batches for
  /// the duration of the underlying IvfRabitqIndex::Add (exclusive lock),
  /// then bumps the epoch. Queries batched before and after the insert see
  /// consistent pre-/post-insert snapshots respectively.
  Status Insert(const float* vec, std::uint32_t* id_out = nullptr);

  EngineStatsSnapshot Stats() const;
  void ResetStats() { stats_.Reset(); }

 private:
  /// Executes `n` gathered queries under one shared index lock. Exactly one
  /// batch runs at a time (batch_mutex_): per-worker scratch slots and the
  /// rotation buffer are reused across batches without reallocation.
  /// `statuses`, `results`, `stats` are arrays of length n. `submit_times`
  /// non-null switches the recorded per-query latency from batch execution
  /// time to submit-to-completion time (the async path, queueing included).
  void ExecuteBatch(const float* const* queries, std::size_t n,
                    const IvfSearchParams* const* params,
                    const std::uint64_t* seeds,
                    const std::chrono::steady_clock::time_point* submit_times,
                    Status* statuses, std::vector<Neighbor>* results,
                    IvfSearchStats* stats);

  void SchedulerLoop();

  IvfRabitqIndex index_;
  std::size_t dim_;
  EngineConfig config_;
  ThreadPool pool_;

  // Readers (batches) share, Insert excludes; epoch_ versions the index.
  mutable std::shared_mutex index_mutex_;
  std::atomic<std::uint64_t> epoch_{0};

  // One batch in flight at a time; guards the scratch below.
  std::mutex batch_mutex_;
  Matrix gather_buf_;       // batch x dim, for async requests
  Matrix rotated_buf_;      // batch x total_bits, the batched rotation
  std::vector<IvfSearchScratch> worker_scratch_;  // one per pool thread

  EngineStatsCollector stats_;

  // Async serving.
  RequestQueue queue_;
  std::atomic<std::uint64_t> next_ticket_{0};
  std::thread scheduler_;
};

}  // namespace rabitq

#endif  // RABITQ_ENGINE_SEARCH_ENGINE_H_
