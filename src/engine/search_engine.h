// Concurrent query-serving engine on top of IvfRabitqIndex -- the layer the
// paper's evaluation protocol (one thread, one query at a time) leaves out.
// Layering: linalg -> quant/core -> cluster/index -> engine -> bench/examples.
//
// What it does:
//   * Batched execution (SearchBatch): rotates a whole batch of queries with
//     ONE matrix-matrix product (Rotator::InverseRotateBatch) instead of one
//     gemv per query, then fans the per-query probe/estimate/re-rank work out
//     across a private ThreadPool. Each worker owns an IvfSearchScratch, so
//     the hot path stops allocating once the buffers reach steady state.
//   * Micro-batching (SubmitAsync): producers enqueue single queries and get
//     futures; a scheduler thread gathers the queue into batches (up to
//     max_batch, lingering batch_linger_us) and runs them through the same
//     batched path, amortizing the per-batch costs across concurrent callers.
//   * Read/write coordination: every batch executes against a consistent
//     snapshot of the index (readers hold a shared lock for the batch's
//     duration; Insert/Delete/Update take the lock exclusively between
//     batches and bump the epoch counter). Searches never block each other,
//     and writers additionally serialize among themselves (writer_mutex_),
//     which keeps the index's single-writer contract and lets compaction
//     plan against a stable list.
//   * Background compaction: when a mutation pushes a list's tombstone
//     ratio past EngineConfig::compaction_tombstone_ratio, a dedicated
//     maintenance thread rebuilds that list. The rebuild (plan) runs under
//     the SHARED lock -- queries keep flowing -- and only the O(live-entries)
//     swap (commit) takes the exclusive lock, so readers are never blocked
//     longer than an epoch bump.
//   * Determinism: each query is searched with a private Rng seeded from
//     (engine seed, ticket) -- or an explicit caller seed -- so results are
//     bit-identical to the sequential IvfRabitqIndex::Search(seed) reference
//     no matter how many threads serve the batch or how requests interleave.
//
// Thread safety: every public method may be called from any thread.

#ifndef RABITQ_ENGINE_SEARCH_ENGINE_H_
#define RABITQ_ENGINE_SEARCH_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "engine/engine_stats.h"
#include "engine/request_queue.h"
#include "index/ivf.h"
#include "util/thread_pool.h"

namespace rabitq {

struct EngineConfig {
  /// Worker threads for batch execution; 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Async scheduler: largest batch gathered from the submission queue.
  std::size_t max_batch = 32;
  /// Async scheduler: how long the first request of a batch may wait for
  /// company, in microseconds. 0 disables lingering (greedy batches).
  std::size_t batch_linger_us = 200;
  /// Base of the per-query seed derivation (see QuerySeed).
  std::uint64_t seed = 0x5EEDC0FFEE5EEDULL;
  /// Default search parameters for SubmitAsync overloads without params.
  IvfSearchParams default_params;
  /// Background compaction trigger: a list is rebuilt once its tombstone
  /// ratio (dead entries / entries) reaches this. <= 0 disables the
  /// background pass (CompactNow still works).
  float compaction_tombstone_ratio = 0.25f;
  /// Lists with fewer tombstones than this are never auto-compacted
  /// (rebuilding a 3-entry list over one tombstone is churn, not progress).
  std::size_t compaction_min_dead = 32;
};

/// Owns a built IvfRabitqIndex and serves k-NN queries concurrently.
class SearchEngine {
 public:
  /// Takes ownership of a BUILT index (engine serving an empty index is a
  /// config error surfaced by the first search).
  explicit SearchEngine(IvfRabitqIndex index, const EngineConfig& config = {});
  ~SearchEngine();

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  /// The owned index. Reading it while a writer (Insert/Delete/Update or a
  /// background compaction commit) runs on another thread races; quiesce
  /// writers (or take no writers by construction) before touching index
  /// internals directly. Serving-path accessors (Stats, size) are safe.
  const IvfRabitqIndex& index() const { return index_; }

  std::size_t num_threads() const { return pool_.num_threads(); }
  /// Cached at construction: the serving paths read it lock-free, and even
  /// an immutable-in-practice index_.dim() would race with Insert's move
  /// of the underlying Matrix.
  std::size_t dim() const { return dim_; }
  /// Current number of ids ever assigned (racy snapshot, safe anytime).
  std::size_t size() const;
  /// Current number of live (non-deleted) vectors (racy snapshot).
  std::size_t live_size() const;
  /// Index version: starts at 0, bumped by every successful mutation
  /// (Insert/Delete/Update and each committed list compaction).
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Deterministic per-query seed stream: SplitMix64 of (base, ticket).
  /// Query i of a SearchBatch(seed_base) uses QuerySeed(seed_base, i); the
  /// parity tests replay the same seeds through the sequential reference.
  static std::uint64_t QuerySeed(std::uint64_t base, std::uint64_t ticket);

  /// Synchronous batched search: queries is num_queries x dim row-major.
  /// results[i] receives the neighbors of query i, searched with
  /// Rng(QuerySeed(seed_base, i)). Returns the first per-query error if any
  /// query fails (remaining queries still execute). `agg` (optional) sums
  /// the per-query IvfSearchStats.
  Status SearchBatch(const float* queries, std::size_t num_queries,
                     const IvfSearchParams& params, std::uint64_t seed_base,
                     std::vector<std::vector<Neighbor>>* results,
                     IvfSearchStats* agg = nullptr);

  /// As above with the engine's config seed.
  Status SearchBatch(const float* queries, std::size_t num_queries,
                     const IvfSearchParams& params,
                     std::vector<std::vector<Neighbor>>* results,
                     IvfSearchStats* agg = nullptr);

  /// Enqueues one query (copied) for the micro-batching scheduler and
  /// returns a future that is fulfilled when its batch executes. The
  /// engine-seeded overload draws the next ticket from the auto-seed stream;
  /// pass an explicit seed to make the result reproducible independently of
  /// submission interleaving.
  std::future<EngineResult> SubmitAsync(const float* query,
                                        const IvfSearchParams& params);
  std::future<EngineResult> SubmitAsync(const float* query,
                                        const IvfSearchParams& params,
                                        std::uint64_t seed);
  std::future<EngineResult> SubmitAsync(const float* query);

  /// Appends one vector (copied) to the index. Excludes search batches for
  /// the duration of the underlying IvfRabitqIndex::Add (exclusive lock),
  /// then bumps the epoch. Queries batched before and after the insert see
  /// consistent pre-/post-insert snapshots respectively.
  Status Insert(const float* vec, std::uint32_t* id_out = nullptr);

  /// Tombstones `id`; it stops appearing in results from the next batch on.
  /// May trigger a background compaction of the affected list.
  Status Delete(std::uint32_t id);

  /// Replaces the vector of live `id` in place (same id, new location).
  /// May trigger a background compaction of the list left behind.
  Status Update(std::uint32_t id, const float* vec);

  /// Synchronously compacts every list that has any tombstone, regardless
  /// of the configured trigger. Queries keep flowing during the rebuilds;
  /// each list swap briefly excludes them. Returns the first error.
  Status CompactNow();

  EngineStatsSnapshot Stats() const;
  void ResetStats() { stats_.Reset(); }

 private:
  /// Executes `n` gathered queries under one shared index lock. Exactly one
  /// batch runs at a time (batch_mutex_): per-worker scratch slots and the
  /// rotation buffer are reused across batches without reallocation.
  /// `statuses`, `results`, `stats` are arrays of length n. `submit_times`
  /// non-null switches the recorded per-query latency from batch execution
  /// time to submit-to-completion time (the async path, queueing included).
  void ExecuteBatch(const float* const* queries, std::size_t n,
                    const IvfSearchParams* const* params,
                    const std::uint64_t* seeds,
                    const std::chrono::steady_clock::time_point* submit_times,
                    Status* statuses, std::vector<Neighbor>* results,
                    IvfSearchStats* stats);

  void SchedulerLoop();
  void CompactorLoop();
  /// O(1) trigger check for the one list a mutation just touched. Must be
  /// called under writer_mutex_.
  bool ListNeedsCompaction(std::uint32_t list_id) const;
  /// Wakes the compactor to re-scan for over-threshold lists.
  void KickCompactor();
  /// Plan+commit every list selected by (min_ratio, min_dead). Caller must
  /// NOT hold writer_mutex_ or index_mutex_.
  Status RunCompactions(float min_ratio, std::size_t min_dead);

  IvfRabitqIndex index_;
  std::size_t dim_;
  EngineConfig config_;
  ThreadPool pool_;

  // Readers (batches) share index_mutex_; mutators take it exclusively for
  // the duration of the index mutation. Mutators ALSO hold writer_mutex_
  // for their full logical span, which (a) serializes writers against each
  // other and (b) pins list state between a compaction's plan (shared lock
  // only) and commit (exclusive lock). Lock order: writer_mutex_ before
  // index_mutex_. epoch_ versions the index.
  mutable std::shared_mutex index_mutex_;
  std::mutex writer_mutex_;
  std::atomic<std::uint64_t> epoch_{0};

  // One batch in flight at a time; guards the scratch below.
  std::mutex batch_mutex_;
  Matrix gather_buf_;       // batch x dim, for async requests
  Matrix rotated_buf_;      // batch x total_bits, the batched rotation
  std::vector<IvfSearchScratch> worker_scratch_;  // one per pool thread

  EngineStatsCollector stats_;

  // Async serving.
  RequestQueue queue_;
  std::atomic<std::uint64_t> next_ticket_{0};
  std::thread scheduler_;

  // Background compaction.
  std::mutex compactor_mutex_;
  std::condition_variable compactor_cv_;
  bool compactor_kicked_ = false;
  bool compactor_stop_ = false;
  std::thread compactor_;
};

}  // namespace rabitq

#endif  // RABITQ_ENGINE_SEARCH_ENGINE_H_
