// Micro-batching submission queue: many producer threads Push search
// requests; the engine's single scheduler thread PopBatch-es them. PopBatch
// blocks until at least one request arrives, then lingers a bounded time for
// the batch to fill toward max_batch -- trading a small, configurable latency
// hit for the amortization wins of batch execution (one batched rotation, one
// worker fan-out, one stats update per batch instead of per query).

#ifndef RABITQ_ENGINE_REQUEST_QUEUE_H_
#define RABITQ_ENGINE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "index/ivf.h"
#include "index/search_types.h"
#include "util/status.h"

namespace rabitq {

#ifndef RABITQ_NO_DEPRECATED
/// Legacy name for the outcome of one served query; the unified response
/// type replaced it (same members: status / neighbors / stats).
using EngineResult RABITQ_DEPRECATED("use SearchResponse") = SearchResponse;
#endif  // RABITQ_NO_DEPRECATED

/// One queued query, owning a copy of the vector (the caller's buffer may
/// die immediately after SubmitAsync returns; the options' IdFilter stays a
/// view -- its bitmap/context must live until the future resolves). `seed`
/// is already resolved: options.seed when the caller set one, else the
/// engine's ticket-derived seed drawn at submission.
struct QueuedQuery {
  std::vector<float> query;
  SearchOptions options;
  std::uint64_t seed = 0;
  std::chrono::steady_clock::time_point submit_time;
  std::promise<SearchResponse> promise;
};

class RequestQueue {
 public:
  /// Enqueues a request. Returns false (leaving `req` untouched) after
  /// Close(), so late producers can fail their promise instead of losing it.
  bool Push(QueuedQuery&& req) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      queue_.push_back(std::move(req));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until a request is available or the queue is closed, then moves
  /// up to `max_batch` requests into `*out` (cleared first), waiting at most
  /// `linger` after the first request for the batch to fill. Returns false
  /// only when the queue is closed AND drained -- the scheduler's exit
  /// condition, which guarantees every accepted request is served.
  bool PopBatch(std::size_t max_batch, std::chrono::microseconds linger,
                std::vector<QueuedQuery>* out) {
    out->clear();
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // closed and drained
    if (queue_.size() < max_batch && !closed_ && linger.count() > 0) {
      ready_.wait_for(lock, linger, [this, max_batch] {
        return closed_ || queue_.size() >= max_batch;
      });
    }
    const std::size_t take = std::min(max_batch, queue_.size());
    out->reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return true;
  }

  /// Stops accepting new requests; PopBatch keeps draining what was queued.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<QueuedQuery> queue_;
  bool closed_ = false;
};

}  // namespace rabitq

#endif  // RABITQ_ENGINE_REQUEST_QUEUE_H_
