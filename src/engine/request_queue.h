// Micro-batching submission queue: many producer threads Push search
// requests; the engine's single scheduler thread PopBatch-es them. PopBatch
// blocks until at least one request arrives, then lingers a bounded time for
// the batch to fill toward max_batch -- trading a small, configurable latency
// hit for the amortization wins of batch execution (one batched rotation, one
// worker fan-out, one stats update per batch instead of per query).
//
// The queue is the engine's admission-control point: a capacity bound makes
// Push refuse work once the backlog hits it (bounded memory under overload),
// and PopBatch sheds queries whose deadline already expired while queued.

#ifndef RABITQ_ENGINE_REQUEST_QUEUE_H_
#define RABITQ_ENGINE_REQUEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "index/ivf.h"
#include "index/search_types.h"
#include "util/status.h"

namespace rabitq {

#ifndef RABITQ_NO_DEPRECATED
/// Legacy name for the outcome of one served query; the unified response
/// type replaced it (same members: status / neighbors / stats).
using EngineResult RABITQ_DEPRECATED("use SearchResponse") = SearchResponse;
#endif  // RABITQ_NO_DEPRECATED

/// One queued query, owning a copy of the vector (the caller's buffer may
/// die immediately after SubmitAsync returns; the options' IdFilter stays a
/// view -- its bitmap/context must live until the future resolves). `seed`
/// is already resolved: options.seed when the caller set one, else the
/// engine's ticket-derived seed drawn at submission.
struct QueuedQuery {
  std::vector<float> query;
  SearchOptions options;
  std::uint64_t seed = 0;
  std::chrono::steady_clock::time_point submit_time;
  std::promise<SearchResponse> promise;
};

class RequestQueue {
 public:
  /// Outcome of a Push: admitted, bounced off the capacity bound, or
  /// refused because the queue was closed. On kFull/kClosed `req` is left
  /// untouched, so the producer can fail its promise instead of losing it.
  enum class PushResult { kAccepted, kFull, kClosed };

  /// `capacity` bounds how many requests may wait at once (the admission
  /// control of the overload story); 0 means unbounded.
  explicit RequestQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Enqueues a request, or refuses it (see PushResult).
  PushResult Push(QueuedQuery&& req) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (capacity_ != 0 && queue_.size() >= capacity_) {
        return PushResult::kFull;
      }
      queue_.push_back(std::move(req));
    }
    ready_.notify_one();
    return PushResult::kAccepted;
  }

  /// Blocks until a request is available or the queue is closed, then moves
  /// up to `max_batch` requests into `*out` (cleared first), waiting at most
  /// `linger` after the first request for the batch to fill. When `shed` is
  /// non-null, requests whose resolved deadline already expired while they
  /// waited are moved there instead of into `*out` (they do not count
  /// toward max_batch): under overload, queue time eats the whole budget
  /// and executing such a query wastes a batch slot on a guaranteed
  /// kDeadlineExceeded. Returns false only when the queue is closed AND
  /// drained -- the scheduler's exit condition, which guarantees every
  /// accepted request is answered (served or shed).
  bool PopBatch(std::size_t max_batch, std::chrono::microseconds linger,
                std::vector<QueuedQuery>* out,
                std::vector<QueuedQuery>* shed = nullptr) {
    out->clear();
    if (shed != nullptr) shed->clear();
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return false;  // closed and drained
    if (queue_.size() < max_batch && !closed_ && linger.count() > 0) {
      ready_.wait_for(lock, linger, [this, max_batch] {
        return closed_ || queue_.size() >= max_batch;
      });
    }
    const auto now = std::chrono::steady_clock::now();
    while (!queue_.empty() && out->size() < max_batch) {
      QueuedQuery& front = queue_.front();
      const bool expired =
          shed != nullptr &&
          front.options.deadline != SearchOptions::kNoDeadline &&
          now >= front.options.deadline;
      (expired ? shed : out)->push_back(std::move(front));
      queue_.pop_front();
    }
    return true;
  }

  /// Stops accepting new requests; PopBatch keeps draining what was queued.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<QueuedQuery> queue_;
  bool closed_ = false;
};

}  // namespace rabitq

#endif  // RABITQ_ENGINE_REQUEST_QUEUE_H_
