#include "server/server.h"

#include <cstring>
#include <exception>
#include <utility>

#include "obs/export.h"
#include "util/failpoint.h"

namespace rabitq {
namespace server {

namespace {

std::string StatusBody(const Status& status) {
  std::string body;
  WireWriter w(&body);
  EncodeStatus(WireStatus::FromStatus(status), &w);
  return body;
}

std::string MalformedBody(const char* what) {
  return StatusBody(Status::InvalidArgument(std::string("malformed ") + what +
                                            " request body"));
}

/// A connection's reusable frame buffer is shrunk back below this after any
/// larger frame, so one big create does not pin 256 MiB per idle connection.
constexpr std::size_t kFrameBufferRetain = 1u << 20;  // 1 MiB

}  // namespace

Server::Server(const ServerConfig& config)
    : config_(config), manager_(config.collections) {
  connections_total_ = metrics_.GetCounter(
      "rabitq_server_connections_total", "Connections accepted");
  connections_rejected_ = metrics_.GetCounter(
      "rabitq_server_connections_rejected_total",
      "Connections closed at accept (max_connections)");
  requests_total_ = metrics_.GetCounter("rabitq_server_requests_total",
                                        "Well-framed requests dispatched");
  frame_errors_ = metrics_.GetCounter(
      "rabitq_server_frame_errors_total",
      "Connections dropped on framing errors (magic/version/CRC/torn read)");
  request_errors_ = metrics_.GetCounter(
      "rabitq_server_request_errors_total",
      "Requests answered with a non-OK status");
  accept_errors_ = metrics_.GetCounter("rabitq_server_accept_errors_total",
                                       "Transient accept failures survived");
  gauge_active_connections_ = metrics_.GetGauge(
      "rabitq_server_connections_active", "Currently served connections");
  gauge_collections_ =
      metrics_.GetGauge("rabitq_server_collections", "Live collections");
}

Server::~Server() {
  Stop();
  Wait();
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  RABITQ_RETURN_IF_ERROR(
      listener_.Listen(config_.host, config_.port, config_.backlog));
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Stop() {
  if (stopping_.exchange(true)) return;
  listener_.Shutdown();
  std::lock_guard<std::mutex> lock(conn_mutex_);
  // Unblock readers; in-flight responses still flush before the loops exit.
  for (auto& conn : connections_) conn->socket.ShutdownRead();
}

void Server::Wait() {
  if (acceptor_.joinable()) acceptor_.join();
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (connections_.empty()) break;
      conn = std::move(connections_.front());
      connections_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  listener_.Close();
  manager_.DrainAll();
}

void Server::ReapConnections() {
  std::lock_guard<std::mutex> lock(conn_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::AcceptLoop() {
  while (!stopping()) {
    bool injected_accept_fault = false;
    RABITQ_FAILPOINT("server.accept", injected_accept_fault = true);
    if (injected_accept_fault) {
      accept_errors_->Increment();
      continue;
    }
    Socket socket;
    const Status status = listener_.Accept(&socket);
    if (!status.ok()) {
      if (stopping()) break;
      // Transient accept failure (EMFILE and friends): keep serving.
      accept_errors_->Increment();
      continue;
    }
    ReapConnections();
    if (active_connections_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      connections_rejected_->Increment();
      continue;  // socket closes on scope exit
    }
    if (config_.io_timeout_ms != 0) {
      (void)socket.SetIoTimeout(config_.io_timeout_ms);
    }
    connections_total_->Increment();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    gauge_active_connections_->Set(
        static_cast<double>(active_connections_.load()));

    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(socket);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      if (stopping()) {
        // Raced with Stop(): Stop's shutdown pass already ran. Drop it.
        active_connections_.fetch_sub(1, std::memory_order_relaxed);
        break;
      }
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

bool Server::ReserveFrameBytes(std::size_t n) {
  if (n == 0) return true;
  std::size_t used = frame_bytes_in_use_.load(std::memory_order_relaxed);
  while (true) {
    if (n > config_.frame_memory_budget ||
        used > config_.frame_memory_budget - n) {
      return false;
    }
    if (frame_bytes_in_use_.compare_exchange_weak(used, used + n,
                                                  std::memory_order_relaxed)) {
      return true;
    }
  }
}

void Server::ReleaseFrameBytes(std::size_t n) {
  if (n != 0) frame_bytes_in_use_.fetch_sub(n, std::memory_order_relaxed);
}

Status Server::ReadFrame(int fd, FrameHeader* header,
                         std::vector<std::uint8_t>* buf,
                         std::size_t* reserved) {
  *reserved = 0;
  RABITQ_FAILPOINT("server.conn_read",
                   return Status::IoError("injected read fault"));
  std::uint8_t head[kFrameHeaderSize];
  RABITQ_RETURN_IF_ERROR(ReadFull(fd, head, sizeof(head)));
  RABITQ_RETURN_IF_ERROR(DecodeFrameHeader(head, header));
  // Admit the claimed body against the global budget BEFORE buffering it --
  // the claim is attacker-controlled until the CRC at the end checks out.
  if (!ReserveFrameBytes(header->body_len)) {
    return Status::ResourceExhausted("frame memory budget exhausted");
  }
  *reserved = header->body_len;
  buf->resize(kFrameHeaderSize + header->body_len);
  std::memcpy(buf->data(), head, sizeof(head));
  if (header->body_len > 0) {
    RABITQ_RETURN_IF_ERROR(
        ReadFull(fd, buf->data() + kFrameHeaderSize, header->body_len));
  }
  std::uint8_t crc_bytes[4];
  RABITQ_RETURN_IF_ERROR(ReadFull(fd, crc_bytes, sizeof(crc_bytes)));
  std::uint32_t crc = 0;
  std::memcpy(&crc, crc_bytes, sizeof(crc));
  return CheckFrameCrc(buf->data(), buf->size(), crc);
}

Status Server::WriteFrame(int fd, std::uint16_t type, std::uint64_t request_id,
                          const std::string& body) {
  std::string frame;
  EncodeFrame(type, request_id, body, &frame);
  RABITQ_FAILPOINT("server.conn_write", {
    // Torn write: flush HALF the frame, then fail the connection -- the
    // client-side framing must reject the stub without crashing.
    (void)WriteFull(fd, frame.data(), frame.size() / 2);
    return Status::IoError("injected torn write");
  });
  return WriteFull(fd, frame.data(), frame.size());
}

void Server::ConnectionLoop(Connection* conn) {
  try {
    ServeConnection(conn);
  } catch (const std::exception&) {
    // A throwing handler or a failed allocation (bad_alloc on a huge but
    // well-framed body) costs this connection, never the process.
    frame_errors_->Increment();
  }
  {
    // Close under conn_mutex_ so Stop()'s ShutdownRead pass never races the
    // fd being closed (and possibly reused) underneath it.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn->socket.Close();
  }
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  gauge_active_connections_->Set(
      static_cast<double>(active_connections_.load()));
  conn->done.store(true, std::memory_order_release);
}

void Server::ServeConnection(Connection* conn) {
  const int fd = conn->socket.fd();
  FrameHeader header;
  std::vector<std::uint8_t> buf;
  while (!stopping()) {
    std::size_t reserved = 0;
    const Status read_status = ReadFrame(fd, &header, &buf, &reserved);
    if (!read_status.ok()) {
      ReleaseFrameBytes(reserved);
      // NotFound = peer closed cleanly between frames; anything else is a
      // framing error and the connection fails closed.
      if (read_status.code() != StatusCode::kNotFound && !stopping()) {
        frame_errors_->Increment();
      }
      break;
    }
    if ((header.type & kResponseFlag) != 0) {
      ReleaseFrameBytes(reserved);
      frame_errors_->Increment();
      break;
    }
    requests_total_->Increment();
    bool drain_after_reply = false;
    const std::string body =
        Dispatch(header.type, buf.data() + kFrameHeaderSize, header.body_len,
                 &drain_after_reply);
    // The request body is consumed; return its budget charge and drop an
    // outsized buffer instead of pinning its capacity until the peer leaves.
    ReleaseFrameBytes(reserved);
    if (buf.capacity() > kFrameBufferRetain) {
      buf.clear();
      buf.shrink_to_fit();
    }
    const Status write_status = WriteFrame(
        fd, static_cast<std::uint16_t>(header.type | kResponseFlag),
        header.request_id, body);
    if (!write_status.ok()) {
      frame_errors_->Increment();
      break;
    }
    if (drain_after_reply) {
      // Respond first, then initiate shutdown. Stop() only signals -- the
      // joins happen in Wait() on the owning thread, never here.
      Stop();
      break;
    }
  }
}

std::string Server::Dispatch(std::uint16_t type, const std::uint8_t* body,
                             std::size_t len, bool* drain_after_reply) {
  WireReader r(body, len);
  std::string response;
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing:
      response = StatusBody(Status::Ok());
      break;
    case MsgType::kCreateCollection:
      response = HandleCreate(&r);
      break;
    case MsgType::kDropCollection:
      response = HandleDrop(&r);
      break;
    case MsgType::kAdd:
      response = HandleAdd(&r);
      break;
    case MsgType::kDelete:
      response = HandleDelete(&r);
      break;
    case MsgType::kUpdate:
      response = HandleUpdate(&r);
      break;
    case MsgType::kSearch:
      response = HandleSearch(&r);
      break;
    case MsgType::kBatchSearch:
      response = HandleBatchSearch(&r);
      break;
    case MsgType::kSnapshot:
      response = HandleSnapshot(&r);
      break;
    case MsgType::kRestore:
      response = HandleRestore(&r);
      break;
    case MsgType::kStats:
      response = HandleStats(&r);
      break;
    case MsgType::kListCollections:
      response = HandleListCollections(&r);
      break;
    case MsgType::kDrain:
      *drain_after_reply = true;
      response = StatusBody(Status::Ok());
      break;
    default:
      response = StatusBody(Status::Unimplemented(
          "unknown message type " + std::to_string(type)));
      break;
  }
  // Every response leads with a WireStatus; count the failures.
  if (response.size() >= 2) {
    std::uint16_t code = 0;
    std::memcpy(&code, response.data(), sizeof(code));
    if (code != 0) request_errors_->Increment();
  }
  gauge_collections_->Set(static_cast<double>(manager_.size()));
  return response;
}

std::string Server::HandleCreate(WireReader* r) {
  std::string name;
  WireCollectionSpec spec;
  std::uint32_t rows = 0;
  if (!r->String(&name) || !DecodeCollectionSpec(r, &spec) || !r->U32(&rows)) {
    return MalformedBody("create_collection");
  }
  // The training floats are the remainder of the body; refuse before
  // allocating if the frame cannot hold what the prefix claims. The cell
  // count is bounded first: rows * dim * 4 wraps uint64 for crafted sizes
  // (rows = dim = 2^31 multiplies out to 0), which would slip an empty
  // remainder past an equality check and drive a ~2^64-byte allocation.
  const std::uint64_t cells = static_cast<std::uint64_t>(rows) * spec.dim;
  if (cells > kMaxFrameBody / sizeof(float) ||
      r->remaining() != cells * sizeof(float)) {
    return MalformedBody("create_collection");
  }
  Matrix train(rows, spec.dim);
  std::vector<float> flat;
  if (!r->Floats(&flat, static_cast<std::size_t>(rows) * spec.dim) ||
      !r->AtEnd()) {
    return MalformedBody("create_collection");
  }
  std::memcpy(train.data(), flat.data(), flat.size() * sizeof(float));
  return StatusBody(manager_.Create(name, spec, train));
}

std::string Server::HandleDrop(WireReader* r) {
  std::string name;
  if (!r->String(&name) || !r->AtEnd()) return MalformedBody("drop_collection");
  return StatusBody(manager_.Drop(name));
}

std::string Server::HandleAdd(WireReader* r) {
  std::string name;
  std::uint32_t dim = 0;
  std::vector<float> vec;
  if (!r->String(&name) || !r->U32(&dim) || !r->Floats(&vec, dim) ||
      !r->AtEnd()) {
    return MalformedBody("add");
  }
  auto collection = manager_.Get(name);
  if (collection == nullptr) {
    return StatusBody(Status::NotFound("no such collection: " + name));
  }
  if (dim != collection->spec.dim) {
    return StatusBody(Status::InvalidArgument("vector dim mismatch"));
  }
  std::uint32_t id = 0;
  const Status status = collection->engine->Insert(vec.data(), &id);
  std::string body = StatusBody(status);
  WireWriter w(&body);
  w.U32(id);
  return body;
}

std::string Server::HandleDelete(WireReader* r) {
  std::string name;
  std::uint32_t id = 0;
  if (!r->String(&name) || !r->U32(&id) || !r->AtEnd()) {
    return MalformedBody("delete");
  }
  auto collection = manager_.Get(name);
  if (collection == nullptr) {
    return StatusBody(Status::NotFound("no such collection: " + name));
  }
  return StatusBody(collection->engine->Delete(id));
}

std::string Server::HandleUpdate(WireReader* r) {
  std::string name;
  std::uint32_t id = 0;
  std::uint32_t dim = 0;
  std::vector<float> vec;
  if (!r->String(&name) || !r->U32(&id) || !r->U32(&dim) ||
      !r->Floats(&vec, dim) || !r->AtEnd()) {
    return MalformedBody("update");
  }
  auto collection = manager_.Get(name);
  if (collection == nullptr) {
    return StatusBody(Status::NotFound("no such collection: " + name));
  }
  if (dim != collection->spec.dim) {
    return StatusBody(Status::InvalidArgument("vector dim mismatch"));
  }
  return StatusBody(collection->engine->Update(id, vec.data()));
}

std::string Server::HandleSearch(WireReader* r) {
  std::string name;
  WireSearchOptions wire_options;
  std::uint32_t dim = 0;
  std::vector<float> query;
  if (!r->String(&name) || !DecodeSearchOptions(r, &wire_options) ||
      !r->U32(&dim) || !r->Floats(&query, dim) || !r->AtEnd()) {
    return MalformedBody("search");
  }
  auto collection = manager_.Get(name);
  if (collection == nullptr) {
    return StatusBody(Status::NotFound("no such collection: " + name));
  }
  if (dim != collection->spec.dim) {
    return StatusBody(Status::InvalidArgument("query dim mismatch"));
  }
  // Through SubmitAsync on purpose: cross-connection micro-batching plus
  // the bounded admission / queued-deadline machinery, so overload answers
  // kResourceExhausted / kDeadlineExceeded instead of stalling the socket.
  // wire_options owns the filter bitmap and outlives the blocking get().
  SearchRequest request;
  request.query = query.data();
  request.options = wire_options.ToOptions();
  SearchResponse engine_response =
      collection->engine->SubmitAsync(request).get();
  std::string body;
  WireWriter w(&body);
  EncodeSearchResponse(engine_response, &w);
  return body;
}

std::string Server::HandleBatchSearch(WireReader* r) {
  std::string name;
  WireSearchOptions wire_options;
  std::uint32_t num = 0;
  std::uint32_t dim = 0;
  if (!r->String(&name) || !DecodeSearchOptions(r, &wire_options) ||
      !r->U32(&num) || !r->U32(&dim)) {
    return MalformedBody("batch_search");
  }
  // Same overflow-safe shape as HandleCreate: bound num * dim before the
  // byte-size multiply can wrap.
  const std::uint64_t cells = static_cast<std::uint64_t>(num) * dim;
  if (cells > kMaxFrameBody / sizeof(float) ||
      r->remaining() != cells * sizeof(float)) {
    return MalformedBody("batch_search");
  }
  std::vector<float> queries;
  if (!r->Floats(&queries, static_cast<std::size_t>(num) * dim) ||
      !r->AtEnd()) {
    return MalformedBody("batch_search");
  }
  auto collection = manager_.Get(name);
  if (collection == nullptr) {
    return StatusBody(Status::NotFound("no such collection: " + name));
  }
  if (dim != collection->spec.dim) {
    return StatusBody(Status::InvalidArgument("query dim mismatch"));
  }
  const SearchOptions options = wire_options.ToOptions();
  std::vector<SearchRequest> requests(num);
  for (std::uint32_t i = 0; i < num; ++i) {
    requests[i].query = queries.data() + static_cast<std::size_t>(i) * dim;
    requests[i].options = options;
  }
  // Synchronous batched path: the caller already amortized client-side, so
  // it bypasses the micro-batching queue (and its admission bound).
  std::vector<SearchResponse> responses;
  const Status first_error = collection->engine->SearchBatch(
      requests.data(), requests.size(), &responses);
  std::string body = StatusBody(first_error);
  WireWriter w(&body);
  w.U32(static_cast<std::uint32_t>(responses.size()));
  for (const SearchResponse& response : responses) {
    EncodeSearchResponse(response, &w);
  }
  return body;
}

std::string Server::HandleSnapshot(WireReader* r) {
  std::string name;
  if (!r->String(&name) || !r->AtEnd()) return MalformedBody("snapshot");
  return StatusBody(manager_.Snapshot(name));
}

std::string Server::HandleRestore(WireReader* r) {
  std::string name;
  if (!r->String(&name) || !r->AtEnd()) return MalformedBody("restore");
  return StatusBody(manager_.Restore(name));
}

std::string Server::HandleStats(WireReader* r) {
  std::string name;
  std::uint8_t format = 0;
  if (!r->String(&name) || !r->U8(&format) || !r->AtEnd() || format > 1) {
    return MalformedBody("stats");
  }
  std::string payload;
  if (!name.empty()) {
    // One collection, UNLABELED: the historical single-engine exposition
    // (serve_demo --metrics-out greps stay stable against this output).
    auto collection = manager_.Get(name);
    if (collection == nullptr) {
      return StatusBody(Status::NotFound("no such collection: " + name));
    }
    const obs::MetricsSnapshot snapshot =
        collection->engine->SnapshotMetrics();
    payload = format == 0 ? obs::ExportJson(snapshot)
                          : obs::ExportPrometheus(snapshot);
  } else if (format == 1) {
    // Server-wide Prometheus: the server's own counters unlabeled, then
    // every collection's engine registry labeled collection="<name>" --
    // one scrape for the whole tenant set.
    gauge_collections_->Set(static_cast<double>(manager_.size()));
    payload = obs::ExportPrometheus(metrics_.Snapshot());
    for (const std::string& collection_name : manager_.List()) {
      auto collection = manager_.Get(collection_name);
      if (collection == nullptr) continue;  // dropped between List and Get
      payload += obs::ExportPrometheus(
          collection->engine->SnapshotMetrics(),
          "collection=\"" + collection_name + "\"");
    }
  } else {
    gauge_collections_->Set(static_cast<double>(manager_.size()));
    payload = "{\"server\":" + obs::ExportJson(metrics_.Snapshot()) +
              ",\"collections\":{";
    bool first = true;
    for (const std::string& collection_name : manager_.List()) {
      auto collection = manager_.Get(collection_name);
      if (collection == nullptr) continue;
      if (!first) payload += ",";
      first = false;
      payload += "\"" + collection_name + "\":" +
                 obs::ExportJson(collection->engine->SnapshotMetrics());
    }
    payload += "}}";
  }
  std::string body = StatusBody(Status::Ok());
  WireWriter w(&body);
  w.String(payload);
  return body;
}

std::string Server::HandleListCollections(WireReader* r) {
  if (!r->AtEnd()) return MalformedBody("list_collections");
  const std::vector<std::string> names = manager_.List();
  std::string body = StatusBody(Status::Ok());
  WireWriter w(&body);
  w.U32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) w.String(name);
  return body;
}

}  // namespace server
}  // namespace rabitq
