#include "server/net.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rabitq {
namespace server {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SetIoTimeout(std::uint64_t timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("socket not open");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IoError(Errno("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)"));
  }
  return Status::Ok();
}

Status ReadFull(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return Status::NotFound("connection closed");
      return Status::IoError("connection closed mid-read (torn frame)");
    }
    if (errno == EINTR) continue;
    return Status::IoError(Errno("recv"));
  }
  return Status::Ok();
}

Status WriteFull(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t put = 0;
  while (put < n) {
    const ssize_t r = ::send(fd, p + put, n - put, MSG_NOSIGNAL);
    if (r > 0) {
      put += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return Status::IoError(Errno("send"));
  }
  return Status::Ok();
}

Status ConnectTcp(const std::string& host, std::uint16_t port, Socket* out) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  Status status = Status::IoError("no addresses for " + host);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      status = Status::IoError(Errno("socket"));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = Socket(fd);
      status = Status::Ok();
      break;
    }
    status = Status::IoError(Errno("connect(" + host + ":" + port_str + ")"));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return status;
}

Status Listener::Listen(const std::string& host, std::uint16_t port,
                        int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError(Errno("socket"));
  Socket sock(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("listen host must be an IPv4 literal: " +
                                   host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Status::IoError(Errno("bind(" + host + ":" + std::to_string(port) +
                                 ")"));
  }
  if (::listen(fd, backlog) != 0) return Status::IoError(Errno("listen"));

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::IoError(Errno("getsockname"));
  }
  port_ = ntohs(bound.sin_port);
  socket_ = std::move(sock);
  return Status::Ok();
}

Status Listener::Accept(Socket* out) {
  if (!socket_.valid()) return Status::FailedPrecondition("listener closed");
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR) return Status::ResourceExhausted("accept interrupted");
    return Status::IoError(Errno("accept"));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = Socket(fd);
  return Status::Ok();
}

}  // namespace server
}  // namespace rabitq
