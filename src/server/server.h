// The TCP server: thread-per-connection framing loop over net.h, dispatching
// protocol.h messages onto a CollectionManager. The engine already owns the
// hard serving problems (bounded admission, queued-deadline shedding,
// partial responses, graceful drain); this layer's job is to map them onto
// the wire without losing information:
//
//   * Search dispatches through SubmitAsync -- one queue, one admission
//     bound, one micro-batcher across ALL connections -- so an overloaded
//     server answers kResourceExhausted / kDeadlineExceeded protocol
//     statuses instead of stalling accepts, and concurrent clients' queries
//     coalesce into shared batches exactly like in-process producers.
//     BatchSearch is the synchronous path (SearchBatch), for callers that
//     already batch client-side.
//   * Framing errors (bad magic/version, oversized body, CRC mismatch, torn
//     read) fail CLOSED: the connection drops without a response -- a peer
//     that cannot frame cannot be trusted to parse one. Well-framed but
//     malformed bodies get an InvalidArgument response instead.
//   * Drain: replies Ok first, then initiates shutdown (stop accepting,
//     unblock every connection's read). Wait() joins the threads and drains
//     every collection -- the join cannot happen on the connection thread
//     that carried the drain request.
//   * Slow/dead peers are bounded by per-socket SO_RCVTIMEO/SO_SNDTIMEO;
//     a tripped timeout is a framing error (drop).
//
// Failpoints (RABITQ_FAILPOINTS builds): "server.accept" fails one accept,
// "server.conn_read" tears an inbound frame read, "server.conn_write"
// writes HALF a response frame then fails -- the torn-write drill clients
// must survive.

#ifndef RABITQ_SERVER_SERVER_H_
#define RABITQ_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/collection.h"
#include "server/net.h"
#include "server/protocol.h"

namespace rabitq {
namespace server {

struct ServerConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back via port() (how tests avoid
  /// racing over a fixed port).
  std::uint16_t port = 0;
  int backlog = 128;
  /// Per-connection socket read/write timeout; a peer idle longer is
  /// dropped. 0 disables (not recommended outside tests).
  std::uint64_t io_timeout_ms = 60000;
  /// Accepted connections beyond this are closed immediately (counted in
  /// rabitq_server_connections_rejected_total).
  std::size_t max_connections = 256;
  /// Global cap on frame bodies buffered at once across ALL connections.
  /// Without it, max_connections peers each claiming kMaxFrameBody could
  /// demand max_connections * 256 MiB before a single CRC is checked. A
  /// connection whose claimed body does not fit the budget is dropped
  /// (framing error), same as any other frame the server refuses to read.
  std::size_t frame_memory_budget = 512u << 20;  // 512 MiB
  CollectionManager::Config collections;
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds + listens + starts the acceptor thread.
  Status Start();

  /// Bound port (valid after Start).
  std::uint16_t port() const { return listener_.port(); }

  /// Signals shutdown: stops accepting and unblocks every connection's
  /// read. Safe from any thread, including a connection thread serving a
  /// drain request; idempotent. Does NOT join -- call Wait().
  void Stop();

  /// Blocks until the server has stopped (externally via Stop() or by a
  /// wire drain request), joins the acceptor and every connection thread,
  /// then drains every collection. Call from the owning thread.
  void Wait();

  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  CollectionManager* collections() { return &manager_; }
  obs::MetricsRegistry* metrics() { return &metrics_; }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  /// Thread body: ServeConnection inside a try/catch (a throwing handler or
  /// allocation drops THIS connection, never the process), then cleanup.
  void ConnectionLoop(Connection* conn);
  /// The request/response loop for one connection.
  void ServeConnection(Connection* conn);
  /// Joins finished connection threads (called from the accept loop so the
  /// list does not grow with connection churn).
  void ReapConnections();

  /// Charges `n` bytes against frame_memory_budget; false when it does not
  /// fit. Every successful reservation is paired with ReleaseFrameBytes.
  bool ReserveFrameBytes(std::size_t n);
  void ReleaseFrameBytes(std::size_t n);

  /// Reads one full frame (header + body + CRC), validating as it goes.
  /// NotFound = clean close between frames; any other error = drop. The
  /// body is admitted against frame_memory_budget before it is buffered;
  /// `*reserved` reports the charge the caller must ReleaseFrameBytes once
  /// the body is consumed (set even when the read fails after admission).
  Status ReadFrame(int fd, FrameHeader* header, std::vector<std::uint8_t>* buf,
                   std::size_t* reserved);
  Status WriteFrame(int fd, std::uint16_t type, std::uint64_t request_id,
                    const std::string& body);

  /// Routes one well-framed request to its handler; returns the response
  /// body. Sets *drain_after_reply for kDrain.
  std::string Dispatch(std::uint16_t type, const std::uint8_t* body,
                       std::size_t len, bool* drain_after_reply);

  // Handlers append their response payload AFTER the leading WireStatus.
  std::string HandleCreate(WireReader* r);
  std::string HandleDrop(WireReader* r);
  std::string HandleAdd(WireReader* r);
  std::string HandleDelete(WireReader* r);
  std::string HandleUpdate(WireReader* r);
  std::string HandleSearch(WireReader* r);
  std::string HandleBatchSearch(WireReader* r);
  std::string HandleSnapshot(WireReader* r);
  std::string HandleRestore(WireReader* r);
  std::string HandleStats(WireReader* r);
  std::string HandleListCollections(WireReader* r);

  ServerConfig config_;
  CollectionManager manager_;
  Listener listener_;
  std::thread acceptor_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::mutex conn_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
  std::atomic<std::size_t> active_connections_{0};
  std::atomic<std::size_t> frame_bytes_in_use_{0};

  // Server-level telemetry (the engines keep their own registries; the
  // stats endpoint stitches them together per collection).
  obs::MetricsRegistry metrics_;
  obs::Counter* connections_total_;
  obs::Counter* connections_rejected_;
  obs::Counter* requests_total_;
  obs::Counter* frame_errors_;
  obs::Counter* request_errors_;
  obs::Counter* accept_errors_;
  obs::Gauge* gauge_active_connections_;
  obs::Gauge* gauge_collections_;
};

}  // namespace server
}  // namespace rabitq

#endif  // RABITQ_SERVER_SERVER_H_
