#include "server/collection.h"

#include <algorithm>
#include <filesystem>
#include <utility>

namespace rabitq {
namespace server {

bool CollectionManager::ValidName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Status CollectionManager::ReserveName(const std::string& name) {
  if (!ValidName(name)) {
    return Status::InvalidArgument(
        "collection name must match [A-Za-z0-9_-]{1,64}: '" + name + "'");
  }
  std::unique_lock lock(mutex_);
  if (collections_.count(name) != 0) {
    return Status::FailedPrecondition("collection already exists: " + name);
  }
  if (pending_.count(name) != 0) {
    return Status::FailedPrecondition("collection is being created: " + name);
  }
  if (collections_.size() + pending_.size() >= config_.max_collections) {
    return Status::ResourceExhausted(
        "collection limit reached (" +
        std::to_string(config_.max_collections) + ")");
  }
  pending_.insert(name);
  return Status::Ok();
}

void CollectionManager::PublishOrRelease(
    const std::string& name, std::shared_ptr<Collection> collection) {
  std::unique_lock lock(mutex_);
  pending_.erase(name);
  if (collection != nullptr) collections_.emplace(name, std::move(collection));
}

Status CollectionManager::Create(const std::string& name,
                                 const WireCollectionSpec& spec,
                                 const Matrix& train) {
  if (spec.dim == 0) return Status::InvalidArgument("dim must be > 0");
  if (spec.bits_per_dim != 1 && spec.bits_per_dim != 2 &&
      spec.bits_per_dim != 4 && spec.bits_per_dim != 8) {
    return Status::InvalidArgument("bits_per_dim must be 1, 2, 4 or 8");
  }
  if (spec.num_shards == 0 || spec.num_shards > ShardedIndex::kMaxShards) {
    return Status::InvalidArgument("num_shards out of range");
  }
  if (spec.num_lists == 0) {
    return Status::InvalidArgument("num_lists must be > 0");
  }
  RABITQ_RETURN_IF_ERROR(ValidateMetric(spec.metric));
  if (train.cols() != spec.dim) {
    return Status::InvalidArgument("training matrix dim mismatch");
  }
  if (train.rows() < spec.num_shards) {
    return Status::InvalidArgument(
        "need at least num_shards training vectors");
  }

  RABITQ_RETURN_IF_ERROR(ReserveName(name));

  // Build with no registry lock held: KMeans + encoding dominate create
  // latency, and other collections must keep serving through it.
  ShardedConfig sharded;
  sharded.num_shards = spec.num_shards;
  // kShared keeps scatter-gather results bit-identical to a single-shard
  // index -- the property the wire-vs-in-process parity tests pin.
  sharded.clustering = ShardClustering::kShared;
  sharded.ivf.num_lists = spec.num_lists;
  sharded.ivf.metric = spec.metric;
  sharded.rabitq.bits_per_dim = spec.bits_per_dim;

  ShardedIndex index;
  Status status = index.Build(train, sharded);
  if (!status.ok()) {
    PublishOrRelease(name, nullptr);
    return status;
  }

  auto collection = std::make_shared<Collection>();
  collection->name = name;
  collection->spec = spec;
  collection->engine =
      std::make_unique<SearchEngine>(std::move(index), config_.engine);
  PublishOrRelease(name, std::move(collection));
  return Status::Ok();
}

Status CollectionManager::Drop(const std::string& name) {
  std::shared_ptr<Collection> victim;
  {
    std::unique_lock lock(mutex_);
    auto it = collections_.find(name);
    if (it == collections_.end()) {
      return Status::NotFound("no such collection: " + name);
    }
    victim = std::move(it->second);
    collections_.erase(it);
  }
  // Drain outside the lock; requests still holding the shared_ptr finish
  // against the drained engine (synchronous search stays valid post-drain).
  victim->engine->Drain();
  return Status::Ok();
}

std::shared_ptr<Collection> CollectionManager::Get(
    const std::string& name) const {
  std::shared_lock lock(mutex_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second;
}

std::vector<std::string> CollectionManager::List() const {
  std::vector<std::string> names;
  {
    std::shared_lock lock(mutex_);
    names.reserve(collections_.size());
    for (const auto& [name, unused] : collections_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string CollectionManager::SnapshotDir(const std::string& name) const {
  return (std::filesystem::path(config_.root_dir) / name / "snapshot")
      .string();
}

Status CollectionManager::Snapshot(const std::string& name) {
  if (config_.root_dir.empty()) {
    return Status::FailedPrecondition("server has no snapshot root");
  }
  auto collection = Get(name);
  if (collection == nullptr) {
    return Status::NotFound("no such collection: " + name);
  }
  return collection->engine->SaveSnapshot(SnapshotDir(name));
}

Status CollectionManager::Restore(const std::string& name) {
  if (config_.root_dir.empty()) {
    return Status::FailedPrecondition("server has no snapshot root");
  }
  RABITQ_RETURN_IF_ERROR(ReserveName(name));

  ShardedIndex index;
  Status status = index.Load(SnapshotDir(name));
  if (!status.ok()) {
    PublishOrRelease(name, nullptr);
    return status;
  }

  // The snapshot is self-describing; rebuild the spec from the loaded index
  // instead of asking the caller to repeat (and possibly contradict) it.
  auto collection = std::make_shared<Collection>();
  collection->name = name;
  collection->spec.dim = static_cast<std::uint32_t>(index.dim());
  collection->spec.metric = index.metric();
  collection->spec.bits_per_dim =
      static_cast<std::uint8_t>(index.encoder().config().bits_per_dim);
  collection->spec.num_shards = static_cast<std::uint32_t>(index.num_shards());
  collection->spec.num_lists = static_cast<std::uint32_t>(index.num_lists());
  collection->engine =
      std::make_unique<SearchEngine>(std::move(index), config_.engine);
  PublishOrRelease(name, std::move(collection));
  return Status::Ok();
}

void CollectionManager::DrainAll() {
  std::vector<std::shared_ptr<Collection>> all;
  {
    std::shared_lock lock(mutex_);
    all.reserve(collections_.size());
    for (const auto& [unused, collection] : collections_) {
      all.push_back(collection);
    }
  }
  for (const auto& collection : all) collection->engine->Drain();
}

std::size_t CollectionManager::size() const {
  std::shared_lock lock(mutex_);
  return collections_.size();
}

}  // namespace server
}  // namespace rabitq
