// Minimal POSIX TCP layer under the server and client: RAII fds, full-buffer
// read/write loops, and a listener that can bind port 0 for tests (the bound
// port is read back, so integration tests never race over a fixed port).
// Linux-only by design -- the rest of the repo already assumes it (epoll-free
// though: the server is thread-per-connection, sized for the closed-loop
// client counts the bench drives, not for c10k).

#ifndef RABITQ_SERVER_NET_H_
#define RABITQ_SERVER_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "util/status.h"

namespace rabitq {
namespace server {

/// Owning fd wrapper; move-only. Closing is idempotent.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// shutdown(SHUT_RD): unblocks a reader parked in recv() without closing
  /// the fd under it -- how Stop() interrupts connection threads while any
  /// in-flight response still flushes.
  void ShutdownRead();
  /// shutdown(SHUT_RDWR).
  void ShutdownBoth();

  /// Arms SO_RCVTIMEO / SO_SNDTIMEO so a dead or glacial peer cannot pin a
  /// connection thread forever. 0 = no timeout.
  Status SetIoTimeout(std::uint64_t timeout_ms);

 private:
  int fd_ = -1;
};

/// Reads exactly `n` bytes. EOF mid-buffer or an error (including a tripped
/// SO_RCVTIMEO) is an IoError. A clean EOF before the FIRST byte returns
/// NotFound so callers can tell "peer hung up between requests" from a torn
/// read.
Status ReadFull(int fd, void* buf, std::size_t n);

/// Writes exactly `n` bytes (loops over short writes, EINTR-safe; SIGPIPE is
/// suppressed per-call via MSG_NOSIGNAL).
Status WriteFull(int fd, const void* buf, std::size_t n);

/// Blocking TCP connect to host:port (numeric or resolvable host).
Status ConnectTcp(const std::string& host, std::uint16_t port, Socket* out);

/// Listening socket. Bind port 0 to let the kernel pick; port() reports the
/// actual bound port either way.
class Listener {
 public:
  Status Listen(const std::string& host, std::uint16_t port, int backlog);
  Status Accept(Socket* out);
  std::uint16_t port() const { return port_; }
  bool valid() const { return socket_.valid(); }
  /// Unblocks a thread parked in Accept (it returns an error afterwards).
  void Shutdown() { socket_.ShutdownBoth(); }
  void Close() { socket_.Close(); }

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

}  // namespace server
}  // namespace rabitq

#endif  // RABITQ_SERVER_NET_H_
