// Blocking C++ client for the rabitq server: one TCP connection, one
// request in flight at a time (the closed-loop shape the bench drives N of).
// Every method is a full round-trip; transport-level failures poison the
// connection (subsequent calls fail fast with FailedPrecondition until
// Connect is called again), while SERVER-reported statuses -- NotFound,
// kResourceExhausted at admission, kDeadlineExceeded with partial results --
// come back as ordinary Status / SearchResponse values, exactly as the
// in-process SearchEngine reports them.
//
// Not thread-safe: one Client per thread (it is cheap; the server is
// thread-per-connection anyway).

#ifndef RABITQ_SERVER_CLIENT_H_
#define RABITQ_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "server/net.h"
#include "server/protocol.h"

namespace rabitq {
namespace server {

class Client {
 public:
  struct Options {
    /// Socket read/write timeout for each round-trip; 0 = none.
    std::uint64_t io_timeout_ms = 60000;
  };

  Client() = default;

  Status Connect(const std::string& host, std::uint16_t port,
                 const Options& options);
  Status Connect(const std::string& host, std::uint16_t port) {
    return Connect(host, port, Options());
  }
  void Close() { socket_.Close(); }
  bool connected() const { return socket_.valid(); }

  Status Ping();

  /// Creates a collection built (and initially filled) from `train`
  /// (rows x spec.dim). The training set rides in the request body.
  Status CreateCollection(const std::string& name,
                          const WireCollectionSpec& spec, const Matrix& train);
  Status DropCollection(const std::string& name);

  Status Add(const std::string& name, const float* vec, std::size_t dim,
             std::uint32_t* id_out = nullptr);
  Status Delete(const std::string& name, std::uint32_t id);
  Status Update(const std::string& name, std::uint32_t id, const float* vec,
                std::size_t dim);

  /// One query. Engine semantics cross the wire intact: options.seed set
  /// makes the result a pure function of (collection, query, options);
  /// options.timeout_us maps onto the server-side deadline machinery;
  /// bitmap filters encode (predicate filters are InvalidArgument).
  /// Transport failures surface in the returned response's status.
  SearchResponse Search(const std::string& name, const float* query,
                        std::size_t dim, const SearchOptions& options);

  /// Client-side batch: one round-trip, executed on the server through the
  /// synchronous SearchBatch path. Returns the first per-query error (the
  /// responses still carry every query's outcome), or the transport error.
  Status BatchSearch(const std::string& name, const float* queries,
                     std::size_t num, std::size_t dim,
                     const SearchOptions& options,
                     std::vector<SearchResponse>* responses);

  Status Snapshot(const std::string& name);
  Status Restore(const std::string& name);

  /// Stats exposition. `name` empty = server-wide (server counters plus
  /// per-collection labeled series under format 1); non-empty = that
  /// collection's engine registry, unlabeled. format: 0 = JSON,
  /// 1 = Prometheus text.
  Status Stats(const std::string& name, std::uint8_t format,
               std::string* payload);

  Status ListCollections(std::vector<std::string>* names);

  /// Asks the server to shut down gracefully (respond-then-drain).
  Status Drain();

 private:
  /// One round-trip: frame + send + receive + validate (type echo,
  /// request_id echo, CRC). Fills `reader` over the response body, which
  /// lives in `*storage`. Transport/framing failures Close() the socket.
  Status Call(MsgType type, const std::string& body,
              std::vector<std::uint8_t>* storage, WireReader* reader);
  /// Call + decode the leading WireStatus; `reader` is left positioned at
  /// the payload after it.
  Status CallChecked(MsgType type, const std::string& body,
                     std::vector<std::uint8_t>* storage, WireReader* reader);

  Socket socket_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace server
}  // namespace rabitq

#endif  // RABITQ_SERVER_CLIENT_H_
