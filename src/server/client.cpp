#include "server/client.h"

#include <cstring>

namespace rabitq {
namespace server {

Status Client::Connect(const std::string& host, std::uint16_t port,
                       const Options& options) {
  Close();
  RABITQ_RETURN_IF_ERROR(ConnectTcp(host, port, &socket_));
  if (options.io_timeout_ms != 0) {
    RABITQ_RETURN_IF_ERROR(socket_.SetIoTimeout(options.io_timeout_ms));
  }
  return Status::Ok();
}

Status Client::Call(MsgType type, const std::string& body,
                    std::vector<std::uint8_t>* storage, WireReader* reader) {
  if (!socket_.valid()) {
    return Status::FailedPrecondition("client not connected");
  }
  const std::uint64_t request_id = next_request_id_++;
  std::string frame;
  EncodeFrame(static_cast<std::uint16_t>(type), request_id, body, &frame);
  Status status = WriteFull(socket_.fd(), frame.data(), frame.size());

  FrameHeader header;
  if (status.ok()) {
    std::uint8_t head[kFrameHeaderSize];
    status = ReadFull(socket_.fd(), head, sizeof(head));
    if (status.ok()) status = DecodeFrameHeader(head, &header);
    if (status.ok()) {
      storage->resize(kFrameHeaderSize + header.body_len);
      std::memcpy(storage->data(), head, sizeof(head));
      if (header.body_len > 0) {
        status = ReadFull(socket_.fd(), storage->data() + kFrameHeaderSize,
                          header.body_len);
      }
    }
    if (status.ok()) {
      std::uint8_t crc_bytes[4];
      status = ReadFull(socket_.fd(), crc_bytes, sizeof(crc_bytes));
      if (status.ok()) {
        std::uint32_t crc = 0;
        std::memcpy(&crc, crc_bytes, sizeof(crc));
        status = CheckFrameCrc(storage->data(), storage->size(), crc);
      }
    }
  }
  if (status.ok() &&
      header.type != (static_cast<std::uint16_t>(type) | kResponseFlag)) {
    status = Status::IoError("response type mismatch");
  }
  if (status.ok() && header.request_id != request_id) {
    status = Status::IoError("response request_id mismatch");
  }
  if (!status.ok()) {
    // Fail closed: a connection that tore a frame (or answered out of
    // protocol) cannot be resynchronized -- drop it.
    Close();
    return status;
  }
  *reader = WireReader(storage->data() + kFrameHeaderSize, header.body_len);
  return Status::Ok();
}

Status Client::CallChecked(MsgType type, const std::string& body,
                           std::vector<std::uint8_t>* storage,
                           WireReader* reader) {
  RABITQ_RETURN_IF_ERROR(Call(type, body, storage, reader));
  WireStatus wire_status;
  if (!DecodeStatus(reader, &wire_status)) {
    Close();
    return Status::IoError("malformed response status");
  }
  return wire_status.ToStatus();
}

Status Client::Ping() {
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  return CallChecked(MsgType::kPing, std::string(), &storage, &reader);
}

Status Client::CreateCollection(const std::string& name,
                                const WireCollectionSpec& spec,
                                const Matrix& train) {
  if (train.cols() != spec.dim) {
    return Status::InvalidArgument("training matrix dim mismatch");
  }
  std::string body;
  WireWriter w(&body);
  w.String(name);
  EncodeCollectionSpec(spec, &w);
  w.U32(static_cast<std::uint32_t>(train.rows()));
  w.Floats(train.data(), train.size());
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  return CallChecked(MsgType::kCreateCollection, body, &storage, &reader);
}

Status Client::DropCollection(const std::string& name) {
  std::string body;
  WireWriter w(&body);
  w.String(name);
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  return CallChecked(MsgType::kDropCollection, body, &storage, &reader);
}

Status Client::Add(const std::string& name, const float* vec, std::size_t dim,
                   std::uint32_t* id_out) {
  std::string body;
  WireWriter w(&body);
  w.String(name);
  w.U32(static_cast<std::uint32_t>(dim));
  w.Floats(vec, dim);
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  const Status status = CallChecked(MsgType::kAdd, body, &storage, &reader);
  std::uint32_t id = 0;
  if (reader.U32(&id) && id_out != nullptr) *id_out = id;
  return status;
}

Status Client::Delete(const std::string& name, std::uint32_t id) {
  std::string body;
  WireWriter w(&body);
  w.String(name);
  w.U32(id);
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  return CallChecked(MsgType::kDelete, body, &storage, &reader);
}

Status Client::Update(const std::string& name, std::uint32_t id,
                      const float* vec, std::size_t dim) {
  std::string body;
  WireWriter w(&body);
  w.String(name);
  w.U32(id);
  w.U32(static_cast<std::uint32_t>(dim));
  w.Floats(vec, dim);
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  return CallChecked(MsgType::kUpdate, body, &storage, &reader);
}

SearchResponse Client::Search(const std::string& name, const float* query,
                              std::size_t dim, const SearchOptions& options) {
  SearchResponse response;
  WireSearchOptions wire_options;
  response.status = WireSearchOptions::FromOptions(options, &wire_options);
  if (!response.status.ok()) return response;

  std::string body;
  WireWriter w(&body);
  w.String(name);
  EncodeSearchOptions(wire_options, &w);
  w.U32(static_cast<std::uint32_t>(dim));
  w.Floats(query, dim);

  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  response.status = Call(MsgType::kSearch, body, &storage, &reader);
  if (!response.status.ok()) return response;
  WireStatus wire_status;
  if (!DecodeStatus(&reader, &wire_status)) {
    Close();
    response.status = Status::IoError("malformed search response");
    return response;
  }
  response.status = wire_status.ToStatus();
  // A request-level rejection (NotFound, dim mismatch) is a bare status;
  // engine outcomes -- including degraded ones like kDeadlineExceeded with
  // partial neighbors -- carry the full response shape.
  if (!response.status.ok() && reader.AtEnd()) return response;
  if (!DecodeSearchResponseTail(&reader, &response) || !reader.AtEnd()) {
    Close();
    response = SearchResponse();
    response.status = Status::IoError("malformed search response");
  }
  return response;
}

Status Client::BatchSearch(const std::string& name, const float* queries,
                           std::size_t num, std::size_t dim,
                           const SearchOptions& options,
                           std::vector<SearchResponse>* responses) {
  responses->clear();
  WireSearchOptions wire_options;
  RABITQ_RETURN_IF_ERROR(
      WireSearchOptions::FromOptions(options, &wire_options));

  std::string body;
  WireWriter w(&body);
  w.String(name);
  EncodeSearchOptions(wire_options, &w);
  w.U32(static_cast<std::uint32_t>(num));
  w.U32(static_cast<std::uint32_t>(dim));
  w.Floats(queries, num * dim);

  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  RABITQ_RETURN_IF_ERROR(Call(MsgType::kBatchSearch, body, &storage, &reader));
  WireStatus wire_status;
  if (!DecodeStatus(&reader, &wire_status)) {
    Close();
    return Status::IoError("malformed batch_search response");
  }
  const Status first_error = wire_status.ToStatus();
  // A request-level rejection (NotFound, dim mismatch, malformed) carries
  // no per-query payload; a PER-QUERY first error still does.
  if (!first_error.ok() && reader.AtEnd()) return first_error;

  std::uint32_t count = 0;
  if (!reader.U32(&count)) {
    Close();
    return Status::IoError("malformed batch_search response");
  }
  responses->resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!DecodeSearchResponse(&reader, &(*responses)[i])) {
      Close();
      responses->clear();
      return Status::IoError("malformed batch_search response");
    }
  }
  return first_error;
}

Status Client::Snapshot(const std::string& name) {
  std::string body;
  WireWriter w(&body);
  w.String(name);
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  return CallChecked(MsgType::kSnapshot, body, &storage, &reader);
}

Status Client::Restore(const std::string& name) {
  std::string body;
  WireWriter w(&body);
  w.String(name);
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  return CallChecked(MsgType::kRestore, body, &storage, &reader);
}

Status Client::Stats(const std::string& name, std::uint8_t format,
                     std::string* payload) {
  std::string body;
  WireWriter w(&body);
  w.String(name);
  w.U8(format);
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  RABITQ_RETURN_IF_ERROR(CallChecked(MsgType::kStats, body, &storage, &reader));
  if (!reader.String(payload) || !reader.AtEnd()) {
    Close();
    return Status::IoError("malformed stats response");
  }
  return Status::Ok();
}

Status Client::ListCollections(std::vector<std::string>* names) {
  names->clear();
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  RABITQ_RETURN_IF_ERROR(
      CallChecked(MsgType::kListCollections, std::string(), &storage, &reader));
  std::uint32_t count = 0;
  if (!reader.U32(&count)) {
    Close();
    return Status::IoError("malformed list_collections response");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    if (!reader.String(&name)) {
      Close();
      names->clear();
      return Status::IoError("malformed list_collections response");
    }
    names->push_back(std::move(name));
  }
  return Status::Ok();
}

Status Client::Drain() {
  std::vector<std::uint8_t> storage;
  WireReader reader(nullptr, 0);
  return CallChecked(MsgType::kDrain, std::string(), &storage, &reader);
}

}  // namespace server
}  // namespace rabitq
