#include "server/protocol.h"

#include "util/crc32.h"

namespace rabitq {
namespace server {

void EncodeFrame(std::uint16_t type, std::uint64_t request_id,
                 const std::string& body, std::string* out) {
  out->clear();
  out->reserve(kFrameHeaderSize + body.size() + sizeof(std::uint32_t));
  WireWriter w(out);
  w.U32(kFrameMagic);
  w.U16(kProtocolVersion);
  w.U16(type);
  w.U64(request_id);
  w.U32(static_cast<std::uint32_t>(body.size()));
  out->append(body);
  const std::uint32_t crc = Crc32(out->data(), out->size());
  w.U32(crc);
}

Status DecodeFrameHeader(const std::uint8_t* buf, FrameHeader* header) {
  WireReader r(buf, kFrameHeaderSize);
  if (!r.U32(&header->magic) || !r.U16(&header->version) ||
      !r.U16(&header->type) || !r.U64(&header->request_id) ||
      !r.U32(&header->body_len)) {
    return Status::Internal("frame header underrun");
  }
  if (header->magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (header->version != kProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version");
  }
  if (header->body_len > kMaxFrameBody) {
    return Status::InvalidArgument("frame body exceeds kMaxFrameBody");
  }
  return Status::Ok();
}

Status CheckFrameCrc(const std::uint8_t* frame, std::size_t frame_len,
                     std::uint32_t crc) {
  if (Crc32(frame, frame_len) != crc) {
    return Status::IoError("frame CRC mismatch");
  }
  return Status::Ok();
}

// ------------------------------------------------------------- payloads ---

WireStatus WireStatus::FromStatus(const Status& s) {
  WireStatus w;
  w.code = static_cast<std::uint16_t>(s.code());
  w.message = s.message();
  return w;
}

Status WireStatus::ToStatus() const {
  if (code == 0) return Status::Ok();
  if (code > static_cast<std::uint16_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal("unknown wire status code");
  }
  return Status(static_cast<StatusCode>(code), message);
}

void EncodeStatus(const WireStatus& s, WireWriter* w) {
  w->U16(s.code);
  w->String(s.message);
}

bool DecodeStatus(WireReader* r, WireStatus* s) {
  return r->U16(&s->code) && r->String(&s->message);
}

bool WireReader::String(std::string* s) {
  std::uint32_t n = 0;
  if (!U32(&n)) return false;
  if (!ok_ || len_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

bool WireReader::Floats(std::vector<float>* v, std::size_t n) {
  // Bound n first: n * sizeof(float) wraps for attacker-sized counts.
  if (!ok_ || n > (len_ - pos_) / sizeof(float)) {
    ok_ = false;
    return false;
  }
  v->resize(n);
  std::memcpy(v->data(), data_ + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return true;
}

bool WireReader::U64s(std::vector<std::uint64_t>* v, std::size_t n) {
  if (!ok_ || n > (len_ - pos_) / sizeof(std::uint64_t)) {
    ok_ = false;
    return false;
  }
  v->resize(n);
  std::memcpy(v->data(), data_ + pos_, n * sizeof(std::uint64_t));
  pos_ += n * sizeof(std::uint64_t);
  return true;
}

void EncodeCollectionSpec(const WireCollectionSpec& spec, WireWriter* w) {
  w->U32(spec.dim);
  w->U8(static_cast<std::uint8_t>(spec.metric));
  w->U8(spec.bits_per_dim);
  w->U32(spec.num_shards);
  w->U32(spec.num_lists);
}

bool DecodeCollectionSpec(WireReader* r, WireCollectionSpec* spec) {
  std::uint8_t metric = 0;
  if (!r->U32(&spec->dim) || !r->U8(&metric) || !r->U8(&spec->bits_per_dim) ||
      !r->U32(&spec->num_shards) || !r->U32(&spec->num_lists)) {
    return false;
  }
  if (metric > static_cast<std::uint8_t>(kMaxMetricValue)) return false;
  spec->metric = static_cast<Metric>(metric);
  return true;
}

Status WireSearchOptions::FromOptions(const SearchOptions& options,
                                      WireSearchOptions* out) {
  out->k = options.k;
  out->nprobe = options.nprobe;
  out->policy = static_cast<std::uint8_t>(options.policy);
  out->rerank_candidates = options.rerank_candidates;
  out->epsilon0_override = options.epsilon0_override;
  out->use_batch_estimator = options.use_batch_estimator ? 1 : 0;
  out->seed = options.seed;
  out->timeout_us = options.timeout_us;
  // An absolute deadline has no wire form; re-express whatever budget is
  // left as a relative timeout at encode time.
  if (options.deadline != SearchOptions::kNoDeadline) {
    const auto now = std::chrono::steady_clock::now();
    const auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        options.deadline - now);
    out->timeout_us =
        left.count() > 0 ? static_cast<std::uint64_t>(left.count()) : 1;
  }
  out->filter_kind = 0;
  out->filter_num_ids = 0;
  out->filter_words.clear();
  if (options.filter.active()) {
    if (!options.filter.is_bitmap()) {
      return Status::InvalidArgument(
          "predicate filters cannot cross the wire; use a bitmap filter");
    }
    out->filter_kind = options.filter.is_deny_bitmap() ? 2 : 1;
    out->filter_num_ids = options.filter.bitmap_num_ids();
    const std::size_t words = (options.filter.bitmap_num_ids() + 63) / 64;
    out->filter_words.assign(options.filter.bitmap_words(),
                             options.filter.bitmap_words() + words);
  }
  return Status::Ok();
}

SearchOptions WireSearchOptions::ToOptions() const {
  SearchOptions o;
  o.k = static_cast<std::size_t>(k);
  o.nprobe = static_cast<std::size_t>(nprobe);
  o.policy = policy <= 2 ? static_cast<RerankPolicy>(policy)
                         : RerankPolicy::kErrorBound;
  o.rerank_candidates = static_cast<std::size_t>(rerank_candidates);
  o.epsilon0_override = epsilon0_override;
  o.use_batch_estimator = use_batch_estimator != 0;
  o.seed = seed;
  o.timeout_us = timeout_us;
  if (filter_kind == 1) {
    o.filter = IdFilter::AllowBitmap(filter_words.data(),
                                     static_cast<std::size_t>(filter_num_ids));
  } else if (filter_kind == 2) {
    o.filter = IdFilter::DenyBitmap(filter_words.data(),
                                    static_cast<std::size_t>(filter_num_ids));
  }
  return o;
}

void EncodeSearchOptions(const WireSearchOptions& o, WireWriter* w) {
  w->U64(o.k);
  w->U64(o.nprobe);
  w->U8(o.policy);
  w->U64(o.rerank_candidates);
  w->F32(o.epsilon0_override);
  w->U8(o.use_batch_estimator);
  w->U8(o.seed.has_value() ? 1 : 0);
  w->U64(o.seed.value_or(0));
  w->U64(o.timeout_us);
  w->U8(o.filter_kind);
  if (o.filter_kind != 0) {
    w->U64(o.filter_num_ids);
    const std::uint32_t words = static_cast<std::uint32_t>(o.filter_words.size());
    w->U32(words);
    w->U64s(o.filter_words.data(), words);
  }
}

bool DecodeSearchOptions(WireReader* r, WireSearchOptions* o) {
  std::uint8_t has_seed = 0;
  std::uint64_t seed = 0;
  if (!r->U64(&o->k) || !r->U64(&o->nprobe) || !r->U8(&o->policy) ||
      !r->U64(&o->rerank_candidates) || !r->F32(&o->epsilon0_override) ||
      !r->U8(&o->use_batch_estimator) || !r->U8(&has_seed) || !r->U64(&seed) ||
      !r->U64(&o->timeout_us) || !r->U8(&o->filter_kind)) {
    return false;
  }
  o->seed = has_seed != 0 ? std::optional<std::uint64_t>(seed) : std::nullopt;
  o->filter_num_ids = 0;
  o->filter_words.clear();
  if (o->filter_kind > 2) return false;
  if (o->filter_kind != 0) {
    std::uint32_t words = 0;
    if (!r->U64(&o->filter_num_ids) || !r->U32(&words)) return false;
    // The bitmap must cover exactly the id range it claims. An empty range
    // is meaningless for an active filter, and the word count is computed
    // without `num_ids + 63` (which wraps for num_ids near 2^64 and would
    // let words==0 pass, leaving ToOptions a null bitmap with a huge range).
    if (o->filter_num_ids == 0) return false;
    const std::uint64_t expect_words =
        o->filter_num_ids / 64 + (o->filter_num_ids % 64 != 0 ? 1 : 0);
    if (words != expect_words) return false;
    if (!r->U64s(&o->filter_words, words)) return false;
  }
  return true;
}

void EncodeSearchResponse(const SearchResponse& resp, WireWriter* w) {
  EncodeStatus(WireStatus::FromStatus(resp.status), w);
  w->U8(resp.partial ? 1 : 0);
  w->U32(resp.shards_ok);
  w->U32(resp.shards_failed);
  w->U32(static_cast<std::uint32_t>(resp.neighbors.size()));
  for (const Neighbor& n : resp.neighbors) {
    w->F32(n.first);
    w->U32(n.second);
  }
  w->U64(resp.stats.codes_estimated);
  w->U64(resp.stats.candidates_reranked);
  w->U64(resp.stats.lists_probed);
  w->U64(resp.stats.codes_filtered);
  w->U64(resp.stats.codes_refined);
}

bool DecodeSearchResponse(WireReader* r, SearchResponse* resp) {
  WireStatus ws;
  if (!DecodeStatus(r, &ws)) return false;
  resp->status = ws.ToStatus();
  return DecodeSearchResponseTail(r, resp);
}

bool DecodeSearchResponseTail(WireReader* r, SearchResponse* resp) {
  std::uint8_t partial = 0;
  std::uint32_t count = 0;
  if (!r->U8(&partial) || !r->U32(&resp->shards_ok) ||
      !r->U32(&resp->shards_failed) || !r->U32(&count)) {
    return false;
  }
  resp->partial = partial != 0;
  // Guard the resize against a corrupt count (the frame is CRC-checked, but
  // decode still refuses to allocate past what the payload can hold).
  if (r->remaining() < static_cast<std::size_t>(count) * 8) return false;
  resp->neighbors.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!r->F32(&resp->neighbors[i].first) ||
        !r->U32(&resp->neighbors[i].second)) {
      return false;
    }
  }
  std::uint64_t est = 0, rr = 0, lp = 0, cf = 0, cref = 0;
  if (!r->U64(&est) || !r->U64(&rr) || !r->U64(&lp) || !r->U64(&cf) ||
      !r->U64(&cref)) {
    return false;
  }
  resp->stats = IvfSearchStats{};
  resp->stats.codes_estimated = static_cast<std::size_t>(est);
  resp->stats.candidates_reranked = static_cast<std::size_t>(rr);
  resp->stats.lists_probed = static_cast<std::size_t>(lp);
  resp->stats.codes_filtered = static_cast<std::size_t>(cf);
  resp->stats.codes_refined = static_cast<std::size_t>(cref);
  return true;
}

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kPing: return "ping";
    case MsgType::kCreateCollection: return "create_collection";
    case MsgType::kDropCollection: return "drop_collection";
    case MsgType::kAdd: return "add";
    case MsgType::kDelete: return "delete";
    case MsgType::kUpdate: return "update";
    case MsgType::kSearch: return "search";
    case MsgType::kBatchSearch: return "batch_search";
    case MsgType::kSnapshot: return "snapshot";
    case MsgType::kRestore: return "restore";
    case MsgType::kStats: return "stats";
    case MsgType::kListCollections: return "list_collections";
    case MsgType::kDrain: return "drain";
  }
  return "unknown";
}

}  // namespace server
}  // namespace rabitq
