// Wire protocol of the network server: a small length-prefixed binary
// framing with CRC-32 integrity (util/crc32.h), plus the encode/decode
// routines for every message the server speaks. Pure byte-shuffling -- no
// sockets here (net.h owns IO), so the frame fuzzer and the client library
// exercise exactly the code the server parses with.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//        0     4  magic      0x57514252 ("RBQW")
//        4     2  version    kProtocolVersion (1)
//        6     2  type       MsgType; responses set kResponseFlag (0x8000)
//        8     8  request_id echoed verbatim in the response
//       16     4  body_len   payload bytes that follow (<= kMaxFrameBody)
//       20   len  body
//   20+len     4  crc32      CRC-32 over bytes [0, 20+len)
//
// Every decode is bounds-checked and fails CLOSED: a bad magic, an
// unsupported version, an oversized body_len or a CRC mismatch is a framing
// error -- the server drops the connection without allocating for the
// payload, mirroring how the snapshot loaders reject corrupt headers before
// reconstruction. Payload decoding (WireReader) likewise never reads past
// the frame and rejects trailing garbage where noted.
//
// Response bodies all begin with a WireStatus (u16 StatusCode + message), so
// engine outcomes -- kResourceExhausted at admission, kDeadlineExceeded with
// partial results, per-shard degradation -- cross the wire as first-class
// protocol status codes rather than a collapsed "error" byte.

#ifndef RABITQ_SERVER_PROTOCOL_H_
#define RABITQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/metric.h"
#include "index/search_types.h"
#include "util/status.h"

namespace rabitq {
namespace server {

inline constexpr std::uint32_t kFrameMagic = 0x57514252u;  // "RBQW"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 20;
/// Hard cap on one frame's payload. Large enough for a create_collection
/// carrying a training set (rows * dim floats); small enough that a
/// corrupted body_len cannot drive a giant allocation.
inline constexpr std::uint32_t kMaxFrameBody = 256u << 20;  // 256 MiB
/// Responses OR this into the request's type.
inline constexpr std::uint16_t kResponseFlag = 0x8000;

enum class MsgType : std::uint16_t {
  kPing = 1,
  kCreateCollection = 2,
  kDropCollection = 3,
  kAdd = 4,
  kDelete = 5,
  kUpdate = 6,
  kSearch = 7,
  kBatchSearch = 8,
  kSnapshot = 9,
  kRestore = 10,
  kStats = 11,
  kListCollections = 12,
  kDrain = 13,
};

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint64_t request_id = 0;
  std::uint32_t body_len = 0;
};

// ---------------------------------------------------------------- framing --

/// Serializes header + body + CRC-32 footer into `*out` (replaced).
void EncodeFrame(std::uint16_t type, std::uint64_t request_id,
                 const std::string& body, std::string* out);

/// Parses and validates the fixed-size header prefix (magic, version,
/// body_len cap). `buf` must hold kFrameHeaderSize bytes.
Status DecodeFrameHeader(const std::uint8_t* buf, FrameHeader* header);

/// Validates the CRC-32 footer of a fully read frame: `frame` holds header +
/// body (kFrameHeaderSize + header.body_len bytes) and `crc` is the footer
/// word read after it.
Status CheckFrameCrc(const std::uint8_t* frame, std::size_t frame_len,
                     std::uint32_t crc);

// ------------------------------------------------------- wire primitives --

/// Append-only little-endian encoder over a std::string.
class WireWriter {
 public:
  explicit WireWriter(std::string* out) : out_(out) {}

  void U8(std::uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v) { AppendLE(&v, sizeof(v)); }
  void U32(std::uint32_t v) { AppendLE(&v, sizeof(v)); }
  void U64(std::uint64_t v) { AppendLE(&v, sizeof(v)); }
  void F32(float v) { AppendLE(&v, sizeof(v)); }
  /// u32 length prefix + raw bytes.
  void String(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_->append(s);
  }
  void Floats(const float* v, std::size_t n) { AppendLE(v, n * sizeof(float)); }
  void U64s(const std::uint64_t* v, std::size_t n) {
    AppendLE(v, n * sizeof(std::uint64_t));
  }

 private:
  // Little-endian host assumed (x86/aarch64 targets); memcpy keeps it UB-free.
  void AppendLE(const void* p, std::size_t n) {
    out_->append(static_cast<const char*>(p), n);
  }
  std::string* out_;
};

/// Bounds-checked little-endian decoder. Every Read* returns false (and
/// poisons the reader) on underrun; callers bail on the first failure.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t len)
      : data_(data), len_(len) {}

  bool U8(std::uint8_t* v) { return Copy(v, sizeof(*v)); }
  bool U16(std::uint16_t* v) { return Copy(v, sizeof(*v)); }
  bool U32(std::uint32_t* v) { return Copy(v, sizeof(*v)); }
  bool U64(std::uint64_t* v) { return Copy(v, sizeof(*v)); }
  bool F32(float* v) { return Copy(v, sizeof(*v)); }
  bool String(std::string* s);
  /// Reads exactly `n` floats into `*v` (resized).
  bool Floats(std::vector<float>* v, std::size_t n);
  bool U64s(std::vector<std::uint64_t>* v, std::size_t n);

  std::size_t remaining() const { return ok_ ? len_ - pos_ : 0; }
  bool ok() const { return ok_; }
  /// True when the payload was consumed exactly -- decoders that demand no
  /// trailing garbage end with this.
  bool AtEnd() const { return ok_ && pos_ == len_; }

 private:
  bool Copy(void* dst, std::size_t n) {
    if (!ok_ || len_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ------------------------------------------------------------- payloads ---

/// Status as it crosses the wire. Codes map 1:1 onto util/status.h's
/// StatusCode (values are part of the protocol; see docs/PROTOCOL.md).
struct WireStatus {
  std::uint16_t code = 0;
  std::string message;

  static WireStatus FromStatus(const Status& s);
  Status ToStatus() const;
  bool ok() const { return code == 0; }
};

void EncodeStatus(const WireStatus& s, WireWriter* w);
bool DecodeStatus(WireReader* r, WireStatus* s);

/// Per-collection configuration, fixed at create time.
struct WireCollectionSpec {
  std::uint32_t dim = 0;
  Metric metric = Metric::kL2;
  std::uint8_t bits_per_dim = 1;
  std::uint32_t num_shards = 1;
  std::uint32_t num_lists = 64;
};

void EncodeCollectionSpec(const WireCollectionSpec& spec, WireWriter* w);
bool DecodeCollectionSpec(WireReader* r, WireCollectionSpec* spec);

/// SearchOptions as they cross the wire. Owns its filter bitmap (an IdFilter
/// is a non-owning view; the decoded copy must outlive the search).
/// Predicate filters cannot cross the wire -- only bitmap kinds encode.
struct WireSearchOptions {
  std::uint64_t k = 100;
  std::uint64_t nprobe = 16;
  std::uint8_t policy = 0;  // RerankPolicy
  std::uint64_t rerank_candidates = 1000;
  float epsilon0_override = -1.0f;
  std::uint8_t use_batch_estimator = 1;
  std::optional<std::uint64_t> seed;
  std::uint64_t timeout_us = 0;
  // Filter: 0 = none, 1 = allow bitmap, 2 = deny bitmap.
  std::uint8_t filter_kind = 0;
  std::uint64_t filter_num_ids = 0;
  std::vector<std::uint64_t> filter_words;

  /// Captures everything encodable from `options`. Fails (InvalidArgument)
  /// on a predicate filter -- a function pointer has no wire form.
  static Status FromOptions(const SearchOptions& options,
                            WireSearchOptions* out);
  /// Materializes engine-facing options. The returned options' filter VIEW
  /// points into this object's filter_words -- keep it alive for the search.
  SearchOptions ToOptions() const;
};

void EncodeSearchOptions(const WireSearchOptions& o, WireWriter* w);
bool DecodeSearchOptions(WireReader* r, WireSearchOptions* o);

/// One query outcome as it crosses the wire: the engine's SearchResponse
/// minus the non-portable bits (health sums ride the stats endpoint).
void EncodeSearchResponse(const SearchResponse& resp, WireWriter* w);
bool DecodeSearchResponse(WireReader* r, SearchResponse* resp);
/// Decodes everything AFTER the leading WireStatus (which the caller has
/// already consumed -- request-level rejections are a bare status, so the
/// client peeks the status before committing to the full shape).
bool DecodeSearchResponseTail(WireReader* r, SearchResponse* resp);

const char* MsgTypeName(MsgType t);

}  // namespace server
}  // namespace rabitq

#endif  // RABITQ_SERVER_PROTOCOL_H_
