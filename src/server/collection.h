// Named-collection lifecycle behind the network server: a registry of
// {name -> SearchEngine over a ShardedIndex}, each with its own per-
// collection config (dim, metric, bits_per_dim, shards) and its own
// snapshot directory under one root.
//
// Concurrency scheme:
//   * The registry itself is a shared_mutex map of shared_ptr<Collection>.
//     Request dispatch does one shared-locked lookup and then operates on
//     the collection OUTSIDE the registry lock, so a slow create/drop never
//     stalls traffic to other collections.
//   * Create is two-phase, mirroring ShardedIndex::ReserveId/CompleteAdd:
//     the name is reserved in a pending set under the exclusive lock, the
//     index builds (KMeans + encode -- seconds at scale) with NO lock held,
//     then the finished collection is published. A failed build just
//     releases the reservation.
//   * Drop unlinks the collection from the registry and drains its engine
//     after unlocking; in-flight requests holding the shared_ptr finish
//     against the drained-but-alive engine. The snapshot directory is left
//     on disk (drop forgets the name, not the data; Restore brings it back).
//
// Snapshots reuse the crash-safe two-phase ShardedIndex::Save verbatim --
// each collection writes root/<name>/snapshot -- and SearchEngine's
// SaveSnapshot hook takes every shard lock SHARED so serving continues
// while the snapshot writes.

#ifndef RABITQ_SERVER_COLLECTION_H_
#define RABITQ_SERVER_COLLECTION_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/search_engine.h"
#include "server/protocol.h"

namespace rabitq {
namespace server {

/// One live named collection. `spec` is fixed at create/restore; `engine`
/// owns the index and all serving machinery.
struct Collection {
  std::string name;
  WireCollectionSpec spec;
  std::unique_ptr<SearchEngine> engine;
};

class CollectionManager {
 public:
  struct Config {
    /// Root of all per-collection snapshot directories
    /// (root/<name>/snapshot). Empty string: snapshot/restore are
    /// FailedPrecondition (a purely in-memory server).
    std::string root_dir;
    /// Engine template applied to every collection (threads, batching,
    /// admission depth, compaction knobs). Per-collection spec fields
    /// (dim/metric/bits/shards) come from the create request instead.
    EngineConfig engine;
    /// Registry size cap: create past it is kResourceExhausted.
    std::size_t max_collections = 64;
  };

  explicit CollectionManager(Config config) : config_(std::move(config)) {}

  /// Collection names are path components (snapshot dirs) and metric label
  /// values; the whitelist [A-Za-z0-9_-]{1,64} rules out traversal and
  /// exposition-format injection in one check.
  static bool ValidName(const std::string& name);

  /// Builds and publishes a collection over `train` (also its initial
  /// contents). Two-phase: the build runs with no registry lock held.
  Status Create(const std::string& name, const WireCollectionSpec& spec,
                const Matrix& train);

  /// Unlinks + drains. The snapshot directory, if any, stays on disk.
  Status Drop(const std::string& name);

  /// Shared-locked lookup; null when absent. Callers operate on the
  /// returned collection with no registry lock held.
  std::shared_ptr<Collection> Get(const std::string& name) const;

  /// Live collection names, sorted.
  std::vector<std::string> List() const;

  /// Writes root/<name>/snapshot via SearchEngine::SaveSnapshot (serving
  /// continues; crash-safe two-phase write).
  Status Snapshot(const std::string& name);

  /// Re-creates `name` from its snapshot directory. The collection must not
  /// currently exist (drop first); the spec is rebuilt from the loaded
  /// index, so restore needs no spec argument.
  Status Restore(const std::string& name);

  /// Drains every collection's engine (graceful shutdown). Collections stay
  /// in the registry; synchronous search keeps working post-drain.
  void DrainAll();

  std::size_t size() const;
  std::string SnapshotDir(const std::string& name) const;

 private:
  /// Reserves `name` in the pending set (exclusive lock). Fails on invalid
  /// name, existing/pending collection, or a full registry.
  Status ReserveName(const std::string& name);
  /// Publishes a built collection (or, with null, just releases the
  /// reservation after a failed build).
  void PublishOrRelease(const std::string& name,
                        std::shared_ptr<Collection> collection);

  Config config_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Collection>> collections_;
  std::unordered_set<std::string> pending_;
};

}  // namespace server
}  // namespace rabitq

#endif  // RABITQ_SERVER_COLLECTION_H_
