#include "core/rabitq.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"

namespace rabitq {

void RabitqCodeStore::Append(const std::uint64_t* bits, float dist_to_centroid,
                             float o_o, std::uint32_t bit_count,
                             float norm_sq) {
  bits_.insert(bits_.end(), bits, bits + words_per_code_);
  dist_to_centroid_.push_back(dist_to_centroid);
  o_o_.push_back(o_o);
  bit_count_.push_back(bit_count);
  norm_sq_.push_back(norm_sq);
  // Derived factors: all of the estimator's per-code trigonometry (square,
  // reciprocal, Eq. 16 sqrt) paid once here instead of once per (query,
  // code) pair in the scan, under the store's metric (see rabitq.h for the
  // two algebras). The clamps mirror the estimator's historical guards so a
  // degenerate o_o stays finite.
  const float d_sq = dist_to_centroid * dist_to_centroid;
  if (metric_ == Metric::kL2) {
    f_sq_.push_back(d_sq);
    f_cross_.push_back(2.0f * dist_to_centroid);
  } else {
    f_sq_.push_back(0.5f * (d_sq - norm_sq));
    f_cross_.push_back(dist_to_centroid);
  }
  const float o_c = std::max(o_o, 1e-9f);
  f_inv_oo_.push_back(1.0f / o_c);
  const float o_sq = std::max(o_c * o_c, 1e-12f);
  f_err_.push_back(std::sqrt((1.0f - o_sq) / o_sq) /
                   std::sqrt(static_cast<float>(total_bits_ - 1)));
}

void RabitqCodeStore::Finalize() {
  const std::size_t n = size();
  const std::size_t num_segments = total_bits_ / 4;
  // Expand each code into one nibble value per byte, then pack.
  std::vector<std::uint8_t> nibbles(n * num_segments);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* code = BitsAt(i);
    for (std::size_t t = 0; t < num_segments; ++t) {
      nibbles[i * num_segments + t] = GetNibble(code, t);
    }
  }
  PackFastScanCodes(nibbles.data(), n, num_segments, &packed_);
}

void RabitqCodeStore::FinalizeAppend() {
  const std::size_t n = size();
  if (n == 0) return;
  if (packed_.num_vectors + 1 != n) {
    Finalize();  // store was not finalized right before this append
    return;
  }
  const std::size_t num_segments = total_bits_ / 4;
  const std::size_t i = n - 1;
  const std::size_t block = i / kFastScanBlockSize;
  const std::size_t slot = i % kFastScanBlockSize;
  if (block >= packed_.num_blocks) {
    packed_.num_segments = num_segments;
    packed_.num_blocks = block + 1;
    // Tail slots of the new block start zero-filled, as PackFastScanCodes
    // leaves them.
    packed_.packed.resize(packed_.num_blocks * num_segments * 16, 0);
  }
  const std::uint64_t* code = BitsAt(i);
  std::uint8_t* block_ptr = packed_.packed.data() + block * num_segments * 16;
  for (std::size_t t = 0; t < num_segments; ++t) {
    const std::uint8_t nibble = GetNibble(code, t);
    std::uint8_t& byte = block_ptr[t * 16 + (slot & 15)];
    byte = slot < 16 ? static_cast<std::uint8_t>((byte & 0xF0) | nibble)
                     : static_cast<std::uint8_t>((byte & 0x0F) | (nibble << 4));
  }
  packed_.num_vectors = n;
}

void RabitqCodeStore::CompactInto(const std::uint8_t* dead,
                                  RabitqCodeStore* out) const {
  out->Init(total_bits_, metric_);
  const std::size_t n = size();
  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i) live += dead[i] == 0;
  out->Reserve(live);
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    // Append recomputes the derived factors from the same (dist, o_o,
    // norm_sq) floats -- a pure function, so the compacted store's factors
    // are bit-identical to the originals (tested).
    out->Append(BitsAt(i), dist_to_centroid_[i], o_o_[i], bit_count_[i],
                norm_sq_[i]);
  }
  if (out->size() > 0) out->Finalize();
}

Status RabitqEncoder::Init(std::size_t dim, const RabitqConfig& config) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (config.query_bits < 1 || config.query_bits > 8) {
    return Status::InvalidArgument("query_bits must be in [1, 8]");
  }
  if (config.epsilon0 < 0.0f) {
    return Status::InvalidArgument("epsilon0 must be non-negative");
  }
  config_ = config;
  dim_ = dim;
  std::size_t padded =
      config.total_bits == 0 ? DefaultPaddedDim(dim) : config.total_bits;
  if (padded < dim) {
    return Status::InvalidArgument("total_bits must be >= dim");
  }
  if (padded % 64 != 0) {
    return Status::InvalidArgument("total_bits must be a multiple of 64");
  }
  RABITQ_RETURN_IF_ERROR(
      CreateRotator(dim, padded, config.rotator, config.seed, &rotator_));
  total_bits_ = rotator_->padded_dim();  // kFht may round up to a power of 2
  return Status::Ok();
}

Status RabitqEncoder::EncodeAppend(const float* vec, const float* centroid,
                                   RabitqCodeStore* store) const {
  if (store == nullptr) return Status::InvalidArgument("null store");
  if (store->total_bits() != total_bits_) {
    return Status::FailedPrecondition("store bit width mismatch");
  }
  const std::size_t b = total_bits_;
  const std::size_t words = WordsForBits(b);

  // ||o_r||^2 always rides along to the store (it only enters the factors
  // under IP/cosine, but storing it unconditionally keeps snapshots
  // metric-switchable without re-encoding).
  const float norm_sq = SquaredNorm(vec, dim_);

  // Residual o_r - c and its norm.
  std::vector<float> residual(dim_);
  if (centroid != nullptr) {
    Subtract(vec, centroid, residual.data(), dim_);
  } else {
    std::copy_n(vec, dim_, residual.data());
  }
  const float dist = Norm(residual.data(), dim_);
  std::vector<std::uint64_t> bits(words, 0);
  if (dist == 0.0f) {
    // Residual-free vector: the estimator short-circuits on
    // dist_to_centroid == 0 (kL2) or zeroes the cross term (IP/cosine), so
    // the code content is irrelevant; o_o = 1 keeps downstream arithmetic
    // finite.
    store->Append(bits.data(), 0.0f, 1.0f, 0, norm_sq);
    return Status::Ok();
  }
  ScaleInPlace(residual.data(), 1.0f / dist, dim_);

  // o' = P^T o; sign bits form x_b (Section 3.1.3), and
  // <o-bar, o> = <x-bar, o'> = ||o'||_1 / sqrt(B) (Appendix B, Eq. 30).
  std::vector<float> rotated(b);
  rotator_->InverseRotate(residual.data(), rotated.data());
  std::uint32_t ones = 0;
  float l1 = 0.0f;
  for (std::size_t i = 0; i < b; ++i) {
    l1 += std::fabs(rotated[i]);
    if (rotated[i] >= 0.0f) {
      SetBit(bits.data(), i);
      ++ones;
    }
  }
  const float o_o = l1 / std::sqrt(static_cast<float>(b));
  store->Append(bits.data(), dist, o_o, ones, norm_sq);
  return Status::Ok();
}

void RabitqEncoder::ReconstructQuantizedUnit(const std::uint64_t* bits,
                                             float* out) const {
  const std::size_t b = total_bits_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(b));
  std::vector<float> x_bar(b);
  for (std::size_t i = 0; i < b; ++i) {
    x_bar[i] = GetBit(bits, i) ? scale : -scale;
  }
  rotator_->Rotate(x_bar.data(), out);
}

}  // namespace rabitq
