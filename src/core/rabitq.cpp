#include "core/rabitq.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"

namespace rabitq {

void RabitqCodeStore::Append(const std::uint64_t* bits, float dist_to_centroid,
                             float o_o, std::uint32_t bit_count, float norm_sq,
                             const std::uint64_t* extra_planes, float m_o_o,
                             float m_alpha, float m_beta, float m_code_sum) {
  bits_.insert(bits_.end(), bits, bits + words_per_code_);
  dist_to_centroid_.push_back(dist_to_centroid);
  o_o_.push_back(o_o);
  bit_count_.push_back(bit_count);
  norm_sq_.push_back(norm_sq);
  // Derived factors: all of the estimator's per-code trigonometry (square,
  // reciprocal, Eq. 16 sqrt) paid once here instead of once per (query,
  // code) pair in the scan, under the store's metric (see rabitq.h for the
  // two algebras). The clamps mirror the estimator's historical guards so a
  // degenerate o_o stays finite.
  const float d_sq = dist_to_centroid * dist_to_centroid;
  if (metric_ == Metric::kL2) {
    f_sq_.push_back(d_sq);
    f_cross_.push_back(2.0f * dist_to_centroid);
  } else {
    f_sq_.push_back(0.5f * (d_sq - norm_sq));
    f_cross_.push_back(dist_to_centroid);
  }
  const float o_c = std::max(o_o, 1e-9f);
  f_inv_oo_.push_back(1.0f / o_c);
  const float o_sq = std::max(o_c * o_c, 1e-12f);
  f_err_.push_back(std::sqrt((1.0f - o_sq) / o_sq) /
                   std::sqrt(static_cast<float>(total_bits_ - 1)));
  if (bits_per_dim_ > 1) {
    const std::size_t extra_words = extra_words_per_code();
    if (extra_planes != nullptr) {
      extra_bits_.insert(extra_bits_.end(), extra_planes,
                         extra_planes + extra_words);
    } else {
      extra_bits_.resize(extra_bits_.size() + extra_words, 0);
    }
    m_o_o_.push_back(m_o_o);
    m_alpha_.push_back(m_alpha);
    m_beta_.push_back(m_beta);
    m_code_sum_.push_back(m_code_sum);
    // Same derivation as f_inv_oo / f_err, just against the tighter
    // multi-bit <x-bar, o'>: the bound's query-invariant part shrinks as
    // the grid refines.
    const float mo_c = std::max(m_o_o, 1e-9f);
    m_inv_oo_.push_back(1.0f / mo_c);
    const float mo_sq = std::max(mo_c * mo_c, 1e-12f);
    // At 8 bits <x-bar, o'> sits so close to 1 that rounding could nudge
    // mo_sq past it; clamp the numerator so the half-width stays 0, not NaN.
    m_err_.push_back(std::sqrt(std::max(1.0f - mo_sq, 0.0f) / mo_sq) /
                     std::sqrt(static_cast<float>(total_bits_ - 1)));
  }
}

void RabitqCodeStore::Finalize() {
  const std::size_t n = size();
  const std::size_t num_segments = total_bits_ / 4;
  // Expand each code into one nibble value per byte, then pack.
  std::vector<std::uint8_t> nibbles(n * num_segments);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t* code = BitsAt(i);
    for (std::size_t t = 0; t < num_segments; ++t) {
      nibbles[i * num_segments + t] = GetNibble(code, t);
    }
  }
  PackFastScanCodes(nibbles.data(), n, num_segments, &packed_);
  // Each extra plane gets its own packing so the stage-2 refine can reuse
  // the 1-bit LUT accumulator verbatim, one pass per plane.
  for (std::size_t j = 0; j + 1 < bits_per_dim_; ++j) {
    const std::size_t extra_words = extra_words_per_code();
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t* plane =
          extra_bits_.data() + i * extra_words + j * words_per_code_;
      for (std::size_t t = 0; t < num_segments; ++t) {
        nibbles[i * num_segments + t] = GetNibble(plane, t);
      }
    }
    PackFastScanCodes(nibbles.data(), n, num_segments, &extra_packed_[j]);
  }
}

void RabitqCodeStore::FinalizeAppend() {
  const std::size_t n = size();
  if (n == 0) return;
  if (packed_.num_vectors + 1 != n) {
    Finalize();  // store was not finalized right before this append
    return;
  }
  const std::size_t num_segments = total_bits_ / 4;
  const std::size_t i = n - 1;
  const std::size_t block = i / kFastScanBlockSize;
  const std::size_t slot = i % kFastScanBlockSize;
  const auto write_slot = [&](FastScanCodes* dst, const std::uint64_t* code) {
    if (block >= dst->num_blocks) {
      dst->num_segments = num_segments;
      dst->num_blocks = block + 1;
      // Tail slots of the new block start zero-filled, as PackFastScanCodes
      // leaves them.
      dst->packed.resize(dst->num_blocks * num_segments * 16, 0);
    }
    std::uint8_t* block_ptr = dst->packed.data() + block * num_segments * 16;
    for (std::size_t t = 0; t < num_segments; ++t) {
      const std::uint8_t nibble = GetNibble(code, t);
      std::uint8_t& byte = block_ptr[t * 16 + (slot & 15)];
      byte = slot < 16
                 ? static_cast<std::uint8_t>((byte & 0xF0) | nibble)
                 : static_cast<std::uint8_t>((byte & 0x0F) | (nibble << 4));
    }
    dst->num_vectors = n;
  };
  write_slot(&packed_, BitsAt(i));
  for (std::size_t j = 0; j + 1 < bits_per_dim_; ++j) {
    write_slot(&extra_packed_[j],
               ExtraPlanesAt(i) + j * words_per_code_);
  }
}

void RabitqCodeStore::CompactInto(const std::uint8_t* dead,
                                  RabitqCodeStore* out) const {
  out->Init(total_bits_, metric_, bits_per_dim_);
  const std::size_t n = size();
  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i) live += dead[i] == 0;
  out->Reserve(live);
  const bool multi = bits_per_dim_ > 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (dead[i]) continue;
    // Append recomputes the derived factors from the same (dist, o_o,
    // norm_sq) floats -- a pure function, so the compacted store's factors
    // are bit-identical to the originals (tested).
    if (multi) {
      out->Append(BitsAt(i), dist_to_centroid_[i], o_o_[i], bit_count_[i],
                  norm_sq_[i], ExtraPlanesAt(i), m_o_o_[i], m_alpha_[i],
                  m_beta_[i], m_code_sum_[i]);
    } else {
      out->Append(BitsAt(i), dist_to_centroid_[i], o_o_[i], bit_count_[i],
                  norm_sq_[i]);
    }
  }
  if (out->size() > 0) out->Finalize();
}

Status RabitqEncoder::Init(std::size_t dim, const RabitqConfig& config) {
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (config.query_bits < 1 || config.query_bits > 8) {
    return Status::InvalidArgument("query_bits must be in [1, 8]");
  }
  if (config.epsilon0 < 0.0f) {
    return Status::InvalidArgument("epsilon0 must be non-negative");
  }
  if (config.bits_per_dim != 1 && config.bits_per_dim != 2 &&
      config.bits_per_dim != 4 && config.bits_per_dim != 8) {
    return Status::InvalidArgument("bits_per_dim must be 1, 2, 4 or 8");
  }
  config_ = config;
  dim_ = dim;
  std::size_t padded =
      config.total_bits == 0 ? DefaultPaddedDim(dim) : config.total_bits;
  if (padded < dim) {
    return Status::InvalidArgument("total_bits must be >= dim");
  }
  if (padded % 64 != 0) {
    return Status::InvalidArgument("total_bits must be a multiple of 64");
  }
  RABITQ_RETURN_IF_ERROR(
      CreateRotator(dim, padded, config.rotator, config.seed, &rotator_));
  total_bits_ = rotator_->padded_dim();  // kFht may round up to a power of 2
  return Status::Ok();
}

Status RabitqEncoder::EncodeAppend(const float* vec, const float* centroid,
                                   RabitqCodeStore* store) const {
  if (store == nullptr) return Status::InvalidArgument("null store");
  if (store->total_bits() != total_bits_) {
    return Status::FailedPrecondition("store bit width mismatch");
  }
  if (store->bits_per_dim() != config_.bits_per_dim) {
    return Status::FailedPrecondition("store bits_per_dim mismatch");
  }
  const std::size_t b = total_bits_;
  const std::size_t words = WordsForBits(b);

  // ||o_r||^2 always rides along to the store (it only enters the factors
  // under IP/cosine, but storing it unconditionally keeps snapshots
  // metric-switchable without re-encoding).
  const float norm_sq = SquaredNorm(vec, dim_);

  // Residual o_r - c and its norm.
  std::vector<float> residual(dim_);
  if (centroid != nullptr) {
    Subtract(vec, centroid, residual.data(), dim_);
  } else {
    std::copy_n(vec, dim_, residual.data());
  }
  const float dist = Norm(residual.data(), dim_);
  std::vector<std::uint64_t> bits(words, 0);
  const std::size_t bpd = config_.bits_per_dim;
  if (dist == 0.0f) {
    // Residual-free vector: the estimator short-circuits on
    // dist_to_centroid == 0 (kL2) or zeroes the cross term (IP/cosine), so
    // the code content is irrelevant; o_o = 1 keeps downstream arithmetic
    // finite. Under a multi-bit width the all-zero extra planes (u = 0,
    // alpha = beta = 0) make the refine stage assemble the same
    // short-circuit values.
    store->Append(bits.data(), 0.0f, 1.0f, 0, norm_sq);
    return Status::Ok();
  }
  ScaleInPlace(residual.data(), 1.0f / dist, dim_);

  // o' = P^T o; sign bits form x_b (Section 3.1.3), and
  // <o-bar, o> = <x-bar, o'> = ||o'||_1 / sqrt(B) (Appendix B, Eq. 30).
  std::vector<float> rotated(b);
  rotator_->InverseRotate(residual.data(), rotated.data());
  std::uint32_t ones = 0;
  float l1 = 0.0f;
  for (std::size_t i = 0; i < b; ++i) {
    l1 += std::fabs(rotated[i]);
    if (rotated[i] >= 0.0f) {
      SetBit(bits.data(), i);
      ++ones;
    }
  }
  const float o_o = l1 / std::sqrt(static_cast<float>(b));
  if (bpd == 1) {
    store->Append(bits.data(), dist, o_o, ones, norm_sq);
    return Status::Ok();
  }

  // Multi-bit grid (see rabitq.h): symmetric uniform over [-m, m], split at
  // zero so u's MSB is forced to the sign bit computed above -- the branch
  // below quantizes each half-range separately, which both guarantees the
  // plane identity under float rounding and equals the ideal
  // floor((o' + m) / delta) grid away from the sign boundary.
  float m = 0.0f;
  for (std::size_t i = 0; i < b; ++i) m = std::max(m, std::fabs(rotated[i]));
  const std::uint32_t levels = 1u << bpd;
  const std::uint32_t half = levels >> 1;
  const float delta = 2.0f * m / static_cast<float>(levels);
  const float lo = -m;
  std::vector<std::uint8_t> u(b);
  double rec_norm_sq = 0.0;
  double rec_dot = 0.0;
  std::uint32_t code_sum = 0;
  for (std::size_t i = 0; i < b; ++i) {
    std::uint32_t q;
    if (rotated[i] >= 0.0f) {
      const float t = std::floor(rotated[i] / delta);
      q = half + std::min(static_cast<std::uint32_t>(std::max(t, 0.0f)),
                          half - 1);
    } else {
      const float t = std::floor((rotated[i] + m) / delta);
      q = std::min(static_cast<std::uint32_t>(std::max(t, 0.0f)), half - 1);
    }
    u[i] = static_cast<std::uint8_t>(q);
    code_sum += q;
    const double rec = static_cast<double>(lo) +
                       (static_cast<double>(q) + 0.5) *
                           static_cast<double>(delta);
    rec_norm_sq += rec * rec;
    rec_dot += rec * static_cast<double>(rotated[i]);
  }
  const float rec_norm =
      std::sqrt(std::max(static_cast<float>(rec_norm_sq), 1e-30f));
  const float m_alpha = delta / rec_norm;
  const float m_beta = (lo + 0.5f * delta) / rec_norm;
  const float m_o_o = static_cast<float>(rec_dot) / rec_norm;

  std::vector<std::uint64_t> extra((bpd - 1) * words, 0);
  for (std::size_t j = 0; j + 1 < bpd; ++j) {
    std::uint64_t* plane = extra.data() + j * words;
    for (std::size_t i = 0; i < b; ++i) {
      if ((u[i] >> j) & 1u) SetBit(plane, i);
    }
  }
  store->Append(bits.data(), dist, o_o, ones, norm_sq, extra.data(), m_o_o,
                m_alpha, m_beta, static_cast<float>(code_sum));
  return Status::Ok();
}

void RabitqEncoder::ReconstructQuantizedUnit(const std::uint64_t* bits,
                                             float* out) const {
  const std::size_t b = total_bits_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(b));
  std::vector<float> x_bar(b);
  for (std::size_t i = 0; i < b; ++i) {
    x_bar[i] = GetBit(bits, i) ? scale : -scale;
  }
  rotator_->Rotate(x_bar.data(), out);
}

}  // namespace rabitq
