// The random rotation P defining RaBitQ's codebook C_rand = {P x | x in C}
// (paper Section 3.1.2). Vectors of the original dimensionality D are
// zero-padded to the code length B before rotating, implementing the
// "padding with 0's" knob of Section 5.1 (longer codes = lower error).
//
// Two implementations:
//  * DenseRotator -- a sampled B x B random orthogonal matrix, the exact
//    construction analyzed in the paper's proofs (Appendix B).
//  * FhtRotator -- 3 rounds of {random sign flip, normalized Walsh-Hadamard
//    transform}: an O(B log B) JLT. This is the "faster rotation" extension
//    the paper leaves to future work; the concentration bench shows it
//    matches the dense rotation empirically.

#ifndef RABITQ_CORE_ROTATOR_H_
#define RABITQ_CORE_ROTATOR_H_

#include <cstdint>
#include <memory>

#include "linalg/matrix.h"
#include "util/aligned_buffer.h"
#include "util/status.h"

namespace rabitq {

enum class RotatorKind {
  kDense,     // sampled random orthogonal matrix (the paper's construction)
  kFht,       // randomized Hadamard transform (O(B log B) extension)
  kIdentity,  // NO rotation: the deterministic codebook C of Eq. 3. Only for
              // the Appendix F.1 ablation -- the error bound does NOT hold.
};

/// Orthogonal transform with zero-padding from `input_dim` to `padded_dim`.
class Rotator {
 public:
  virtual ~Rotator() = default;

  std::size_t input_dim() const { return input_dim_; }
  std::size_t padded_dim() const { return padded_dim_; }

  /// out[0..padded_dim) = P * pad(in); `in` has padded_dim entries (pass a
  /// zero-extended buffer when starting from input_dim floats).
  virtual void Rotate(const float* in, float* out) const = 0;

  /// out[0..padded_dim) = P^T * pad(in); `in` has input_dim entries, the
  /// padding is implicit. This is the transform used on data vectors
  /// (Section 3.1.3) and query vectors (Section 3.3).
  virtual void InverseRotate(const float* in, float* out) const = 0;

  /// Batched inverse rotation for query serving: `queries` is n x input_dim,
  /// `out` is reset to n x padded_dim with out->Row(i) = P^T pad(Row(i)).
  ///
  /// Contract: bit-identical to calling InverseRotate row by row. The
  /// engine's result-parity guarantee (batched search == sequential search)
  /// rests on this, so overrides must reuse the single-query accumulation
  /// kernel and may only restructure the loop nest for locality.
  virtual void InverseRotateBatch(const Matrix& queries, Matrix* out) const {
    out->Reset(queries.rows(), padded_dim_);
    for (std::size_t i = 0; i < queries.rows(); ++i) {
      InverseRotate(queries.Row(i), out->Row(i));
    }
  }

 protected:
  Rotator(std::size_t input_dim, std::size_t padded_dim)
      : input_dim_(input_dim), padded_dim_(padded_dim) {}

  std::size_t input_dim_;
  std::size_t padded_dim_;
};

/// Creates a rotator. For kDense `padded_dim` may be any value >= dim (the
/// library rounds code lengths to multiples of 64 upstream); for kFht it is
/// raised to the next power of two. Deterministic in `seed`.
Status CreateRotator(std::size_t dim, std::size_t padded_dim, RotatorKind kind,
                     std::uint64_t seed, std::unique_ptr<Rotator>* out);

/// Smallest multiple of 64 that is >= dim (the paper's default code length).
std::size_t DefaultPaddedDim(std::size_t dim);

}  // namespace rabitq

#endif  // RABITQ_CORE_ROTATOR_H_
