// RaBitQ distance estimation (paper Sections 3.2-3.3):
//   est <o,q>      = <x-bar, q-bar> / <o-bar, o>        (unbiased, Thm 3.2)
//   est ||or-qr||^2 = d_o^2 + d_q^2 - 2 d_o d_q est<o,q> (Eq. 2)
//   error bound    = sqrt((1-<o,o-bar>^2)/<o,o-bar>^2) * eps0/sqrt(B-1)
//                                                        (Eq. 14/16)
// The paper's estimator is fundamentally an INNER-PRODUCT estimator --
// est<o,q> is recovered first, L2 derived from it -- so the same kernels
// serve every metric: the "distance" they assemble is a generic ascending
// score, base + cross * est<o,q>, whose ingredients (base, the f_sq /
// f_cross factors) were baked per-metric at append/preprocess time (see
// rabitq.h and QuantizedQuery::q_base). Under kL2 the score is the squared
// distance of Eq. 2; under kInnerProduct/kCosine it is the negated inner
// product -<o_r, q_r>, with the halved f_cross doubling as the IP-analogue
// error half-width. The two exact edge blends (q_dist == 0, d == 0) are
// L2-only and gated on query.metric identically in every path.
// Two execution paths:
//   * single code: B_q bitwise and+popcount passes (Eq. 22),
//   * packed batch of 32 codes: the shared fast-scan kernel (Section 3.3.2)
//     followed by the fused float assembly below.
//
// The assembly consumes the factors precomputed at append time by
// RabitqCodeStore (f_sq, f_cross, f_inv_oo, f_err), so per lane it is four
// loads, two int->float converts and six mul/add/fma -- no sqrt, no divide,
// no branch. Every path (single-code, fused scalar, fused AVX2) performs the
// SAME operations in the SAME order per lane (explicit std::fma mirroring
// the SIMD fmadd/fnmadd), which is what makes the bitwise path, the scalar
// reference and the 8-wide kernel agree bit-for-bit (tested).

#ifndef RABITQ_CORE_ESTIMATOR_H_
#define RABITQ_CORE_ESTIMATOR_H_

#include <cstdint>

#include "core/query.h"
#include "core/rabitq.h"

namespace rabitq {

/// One estimated distance plus its confidence information.
struct DistanceEstimate {
  float ip = 0.0f;             // estimate of <o, q> (unit vectors)
  float dist_sq = 0.0f;        // estimate of ||o_r - q_r||^2
  float lower_bound_sq = 0.0f; // dist_sq lower bound at confidence eps0
  float ip_error = 0.0f;       // half-width of the <o,q> confidence interval
};

/// Half-width of the confidence interval on <o,q> (Eq. 16).
float IpErrorBound(float o_o, float epsilon0, std::size_t total_bits);

/// <x_b, q-bar_u> via B_q bitwise-and + popcount passes (Eq. 22).
std::uint32_t BitwiseDotQuery(const QuantizedQuery& query,
                              const std::uint64_t* code_bits);

/// Full single-code estimate. `epsilon0` <= 0 skips the bound computation
/// (lower_bound_sq = dist_sq).
DistanceEstimate EstimateDistance(const QuantizedQuery& query,
                                  const RabitqCodeView& code, float epsilon0);

/// Naive (PQ-style, biased) estimator <o-bar, q> used by the Table 7
/// ablation: same bit arithmetic but WITHOUT dividing by <o-bar, o>.
DistanceEstimate EstimateDistanceBiased(const QuantizedQuery& query,
                                        const RabitqCodeView& code);

/// Batch estimation over one packed fast-scan block (32 codes). Writes
/// estimated squared distances for codes [block*32, block*32 + count) and,
/// when `lower_bounds` is non-null, their eps0 lower bounds. Requires
/// query.has_exact_luts (B_q <= 6) and store.finalized().
void EstimateBlock(const QuantizedQuery& query, const RabitqCodeStore& store,
                   std::size_t block, float epsilon0, float* dist_sq,
                   float* lower_bounds);

/// Fused assembly over one block given the 32 fast-scan sums `sums` (from
/// FastScanAccumulateBlock): estimated squared distances and, when
/// `lower_bounds` is non-null, eps0 lower bounds. Output buffers must hold
/// kFastScanBlockSize floats -- a full block is stored 8 lanes at a time,
/// and lanes past size() on the tail block are unspecified (the SIMD path
/// may write garbage there, the scalar path leaves them untouched).
/// AVX2+FMA when available, bit-identical to the scalar reference.
void EstimateBlockFused(const QuantizedQuery& query,
                        const RabitqCodeStore& store, std::size_t block,
                        const std::uint32_t* sums, float epsilon0,
                        float* dist_sq, float* lower_bounds);

/// Bit-exact scalar reference for EstimateBlockFused (mirrors the kernel's
/// per-lane operation order with explicit std::fma).
void EstimateBlockFusedScalar(const QuantizedQuery& query,
                              const RabitqCodeStore& store, std::size_t block,
                              const std::uint32_t* sums, float epsilon0,
                              float* dist_sq, float* lower_bounds);

/// In-kernel pruning variant for the kErrorBound policy: assembles the block
/// like EstimateBlockFused (same buffer contract, both buffers written) and
/// returns a survivors bitmask -- bit k set iff lane k is a real code
/// (k < count for a tail block), is not tombstoned (`dead`, 32 flags for
/// this block, may be null when the list has no tombstones), is allowed by
/// `lane_mask` (bit k clear drops lane k -- the per-query IdFilter's
/// pushdown, all-ones when unfiltered) and its lower bound does not exceed
/// `prune_threshold` (the caller's current top-k threshold; pass +infinity
/// -- NOT FLT_MAX -- to disable pruning, e.g. while the heap is still
/// filling: a lower bound that overflowed to +inf must survive then, and
/// only `> inf` guarantees that). The caller walks set bits only, fusing
/// candidate selection into the scan.
std::uint32_t EstimateBlockFusedPruned(const QuantizedQuery& query,
                                       const RabitqCodeStore& store,
                                       std::size_t block,
                                       const std::uint32_t* sums,
                                       float epsilon0, float prune_threshold,
                                       const std::uint8_t* dead,
                                       float* dist_sq, float* lower_bounds,
                                       std::uint32_t lane_mask = 0xFFFFFFFFu);

/// Bit-exact scalar reference for EstimateBlockFusedPruned.
std::uint32_t EstimateBlockFusedPrunedScalar(
    const QuantizedQuery& query, const RabitqCodeStore& store,
    std::size_t block, const std::uint32_t* sums, float epsilon0,
    float prune_threshold, const std::uint8_t* dead, float* dist_sq,
    float* lower_bounds, std::uint32_t lane_mask = 0xFFFFFFFFu);

// --- Multi-bit refine kernels (stores with bits_per_dim > 1) --------------
//
// Stage 2 of the two-stage error-bound scan: the 1-bit kernels above prune
// with the sign plane, then the survivors are re-estimated from the full
// B_d-bit code. With x-bar_i = m_alpha * u_i + m_beta (see rabitq.h) the
// assembly is
//   <x-bar, q-bar> = m_alpha * (step * S + lo * sum(u)) + m_beta * kq,
//   S = sum_j 2^j <plane_j, q-bar_u>   (sign plane = MSB plane)
// followed by the same cross/base/bound arithmetic as the 1-bit lane, using
// the tighter m_inv_oo / m_err factors. Fused AVX2 and scalar reference
// follow the 1-bit discipline: identical operation order per lane, so they
// agree bit-for-bit with each other and with the single-code path (tested).

/// Weighted bitwise dot for a multi-bit code: S = sum_j 2^j <plane_j, qu>,
/// the sign plane contributing 2^(bits_per_dim - 1).
std::uint32_t BitwiseDotQueryMulti(const QuantizedQuery& query,
                                   const RabitqCodeStore& store,
                                   std::size_t i);

/// Full single-code multi-bit estimate; requires store.bits_per_dim() > 1.
/// Bit-identical to the fused block kernels at the same code.
DistanceEstimate EstimateDistanceMulti(const QuantizedQuery& query,
                                       const RabitqCodeStore& store,
                                       std::size_t i, float epsilon0);

/// Accumulates the weighted multi-bit LUT sums S for one packed block into
/// `multi_sums` (kFastScanBlockSize entries): `sign_sums` are the sign-plane
/// sums the stage-1 scan already produced (reused, not recomputed), the
/// extra planes are accumulated here. Requires query.has_exact_luts and a
/// finalized store with bits_per_dim() > 1.
void AccumulateMultiBlockSums(const QuantizedQuery& query,
                              const RabitqCodeStore& store, std::size_t block,
                              const std::uint32_t* sign_sums,
                              std::uint32_t* multi_sums);

/// Stage-2 refine over one block: assembles the multi-bit estimate and
/// lower bound for the lanes set in `candidate_mask` (stage-1 survivors)
/// and returns the refined survivors mask -- candidate lanes whose
/// multi-bit lower bound does not exceed `prune_threshold` (same strict >,
/// same +inf no-prune sentinel as EstimateBlockFusedPruned). Outputs at
/// lanes outside `candidate_mask` are unspecified (the SIMD path may write
/// whole 8-lane groups, and skips groups with no candidates entirely).
std::uint32_t EstimateBlockMultiPruned(const QuantizedQuery& query,
                                       const RabitqCodeStore& store,
                                       std::size_t block,
                                       const std::uint32_t* multi_sums,
                                       float epsilon0, float prune_threshold,
                                       std::uint32_t candidate_mask,
                                       float* dist_sq, float* lower_bounds);

/// Bit-exact scalar reference for EstimateBlockMultiPruned.
std::uint32_t EstimateBlockMultiPrunedScalar(
    const QuantizedQuery& query, const RabitqCodeStore& store,
    std::size_t block, const std::uint32_t* multi_sums, float epsilon0,
    float prune_threshold, std::uint32_t candidate_mask, float* dist_sq,
    float* lower_bounds);

/// Software-prefetches block `block`'s packed codes and factor arrays into
/// cache; no-op past the last block. The block scan loops (EstimateAll, the
/// IVF fused selection loop) call this one block ahead so the next block's
/// data streams in while the current block is assembled.
void PrefetchBlockData(const RabitqCodeStore& store, std::size_t block);

/// Estimates all codes in `store` through the fast-scan path; `dist_sq`
/// (and `lower_bounds` if non-null) must hold store.size() floats.
void EstimateAll(const QuantizedQuery& query, const RabitqCodeStore& store,
                 float epsilon0, float* dist_sq, float* lower_bounds);

/// Multi-bit analogue of EstimateAll: every code estimated from its full
/// B_d-bit planes, no pruning (+inf threshold, all-lanes candidate mask).
/// Bit-identical per code to EstimateDistanceMulti. Both output buffers
/// must be non-null (the block kernel always assembles the bound) and hold
/// store.size() floats. Requires store.bits_per_dim() > 1.
void EstimateAllMulti(const QuantizedQuery& query,
                      const RabitqCodeStore& store, float epsilon0,
                      float* dist_sq, float* lower_bounds);

}  // namespace rabitq

#endif  // RABITQ_CORE_ESTIMATOR_H_
