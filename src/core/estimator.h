// RaBitQ distance estimation (paper Sections 3.2-3.3):
//   est <o,q>      = <x-bar, q-bar> / <o-bar, o>        (unbiased, Thm 3.2)
//   est ||or-qr||^2 = d_o^2 + d_q^2 - 2 d_o d_q est<o,q> (Eq. 2)
//   error bound    = sqrt((1-<o,o-bar>^2)/<o,o-bar>^2) * eps0/sqrt(B-1)
//                                                        (Eq. 14/16)
// Two execution paths:
//   * single code: B_q bitwise and+popcount passes (Eq. 22),
//   * packed batch of 32 codes: the shared fast-scan kernel (Section 3.3.2).

#ifndef RABITQ_CORE_ESTIMATOR_H_
#define RABITQ_CORE_ESTIMATOR_H_

#include <cstdint>

#include "core/query.h"
#include "core/rabitq.h"

namespace rabitq {

/// One estimated distance plus its confidence information.
struct DistanceEstimate {
  float ip = 0.0f;             // estimate of <o, q> (unit vectors)
  float dist_sq = 0.0f;        // estimate of ||o_r - q_r||^2
  float lower_bound_sq = 0.0f; // dist_sq lower bound at confidence eps0
  float ip_error = 0.0f;       // half-width of the <o,q> confidence interval
};

/// Half-width of the confidence interval on <o,q> (Eq. 16).
float IpErrorBound(float o_o, float epsilon0, std::size_t total_bits);

/// <x_b, q-bar_u> via B_q bitwise-and + popcount passes (Eq. 22).
std::uint32_t BitwiseDotQuery(const QuantizedQuery& query,
                              const std::uint64_t* code_bits);

/// Full single-code estimate. `epsilon0` <= 0 skips the bound computation
/// (lower_bound_sq = dist_sq).
DistanceEstimate EstimateDistance(const QuantizedQuery& query,
                                  const RabitqCodeView& code, float epsilon0);

/// Naive (PQ-style, biased) estimator <o-bar, q> used by the Table 7
/// ablation: same bit arithmetic but WITHOUT dividing by <o-bar, o>.
DistanceEstimate EstimateDistanceBiased(const QuantizedQuery& query,
                                        const RabitqCodeView& code);

/// Batch estimation over one packed fast-scan block (32 codes). Writes
/// estimated squared distances for codes [block*32, block*32 + count) and,
/// when `lower_bounds` is non-null, their eps0 lower bounds. Requires
/// query.has_exact_luts (B_q <= 6) and store.finalized().
void EstimateBlock(const QuantizedQuery& query, const RabitqCodeStore& store,
                   std::size_t block, float epsilon0, float* dist_sq,
                   float* lower_bounds);

/// Estimates all codes in `store` through the fast-scan path; `dist_sq`
/// (and `lower_bounds` if non-null) must hold store.size() floats.
void EstimateAll(const QuantizedQuery& query, const RabitqCodeStore& store,
                 float epsilon0, float* dist_sq, float* lower_bounds);

}  // namespace rabitq

#endif  // RABITQ_CORE_ESTIMATOR_H_
