// RaBitQ query-phase preprocessing (paper Section 3.3 and Algorithm 2).
// For one (query, centroid) pair this computes, once, everything the
// per-code estimator consumes:
//   q' = P^T ((q_r - c) / ||q_r - c||)           inverse-rotated unit query
//   q-bar_u = randomized B_q-bit quantization     (Eq. 18, unbiased)
//   B_q bit planes of q-bar_u                     (Eq. 22 bitwise path)
//   B/4 nibble LUTs over q-bar_u                  (Section 3.3.2 batch path)
// and the scalar factors of Eq. 20. The cost is shared by every data vector
// scanned under this centroid.

#ifndef RABITQ_CORE_QUERY_H_
#define RABITQ_CORE_QUERY_H_

#include <cstdint>

#include "core/metric.h"
#include "core/rabitq.h"
#include "util/aligned_buffer.h"
#include "util/prng.h"
#include "util/status.h"

namespace rabitq {

/// Preprocessed query state relative to one centroid.
struct QuantizedQuery {
  std::size_t total_bits = 0;   // B
  std::size_t num_words = 0;    // B / 64
  int query_bits = 0;           // B_q
  float q_dist = 0.0f;          // ||q_r - c||

  /// Metric the estimator should assemble scores in. Set by Prepare*; the
  /// estimator reads it to pick the score algebra and (for kL2 only) the
  /// exact q_dist==0 / d==0 edge blends.
  Metric metric = Metric::kL2;
  /// Metric-dependent additive base of the assembled score:
  ///   kL2:         q_dist^2                      (score = d^2 + q^2 - cross)
  ///   kIP/kCosine: (q_dist^2 - ||q||^2) / 2      (score = g + h - cross)
  /// Precomputed here so the kernel's shape -- one fma against one scalar
  /// base -- is identical across metrics.
  float q_base = 0.0f;

  // Randomized scalar quantization of q' (Section 3.3.1).
  float lo = 0.0f;              // v_l
  float step = 0.0f;            // Delta
  std::uint32_t sum_qu = 0;     // sum_i q-bar_u[i]
  AlignedVector<std::uint8_t> qu;  // B entries in [0, 2^B_q)

  // Eq. 20 rearranged: <x-bar, q-bar> = ip_scale * <x_b, q-bar_u>
  //                                    + pop_scale * popcount(x_b) + bias.
  float ip_scale = 0.0f;   // 2*Delta/sqrt(B)
  float pop_scale = 0.0f;  // 2*v_l/sqrt(B)
  float bias = 0.0f;       // -Delta/sqrt(B)*sum_qu - sqrt(B)*v_l

  // Multi-bit assembly companion (codes with bits_per_dim > 1): with
  // x-bar_i = m_alpha * u_i + m_beta,
  //   <x-bar, q-bar> = m_alpha * (step * S + lo * sum(u)) + m_beta * kq
  // where S = sum_i u_i * qu_i (accumulated from the code's bit planes) and
  //   kq = step * sum_qu + B * lo
  // is the only query-side scalar the refine kernel needs beyond (step, lo).
  float kq = 0.0f;

  // Bitwise single-code path: B_q planes of B bits each (Eq. 22).
  AlignedVector<std::uint64_t> bit_planes;

  // Batch fast-scan path: B/4 LUTs of 16 u8 entries; exact (lossless) when
  // 4 * (2^B_q - 1) <= 255, i.e. B_q <= 6. Empty otherwise.
  AlignedVector<std::uint8_t> luts;
  bool has_exact_luts = false;

  // Workspace for the rotated unit residual q' (B floats), not an output.
  // Lives in the struct so that reusing one QuantizedQuery across probes and
  // queries (as the serving engine's per-worker scratch does) makes the
  // Prepare* calls allocation-free once capacity is established.
  AlignedVector<float> unit_scratch;

  const std::uint64_t* Plane(int j) const {
    return bit_planes.data() + static_cast<std::size_t>(j) * num_words;
  }
};

/// Builds the quantized query for `query_raw` against `centroid` (nullptr =
/// origin). `rng` drives the randomized rounding; reusing one generator
/// across queries keeps rounding independent, as Theorem 3.3 assumes.
/// `query_bits_override` > 0 replaces the encoder's configured B_q (used by
/// the Fig. 6 sweep; codes are B_q-independent so no re-encoding is needed).
///
/// `metric` selects the score algebra baked into the output (see
/// QuantizedQuery::q_base). For kCosine the caller must pass an ALREADY
/// NORMALIZED query -- normalization happens once at the outermost layer
/// that owns the query buffer, never here (re-normalizing a normalized
/// vector is not a bitwise no-op). For kInnerProduct / kCosine this
/// overload computes ||query_raw||^2 itself.
Status PrepareQuery(const RabitqEncoder& encoder, const float* query_raw,
                    const float* centroid, Rng* rng, QuantizedQuery* out,
                    int query_bits_override = 0, Metric metric = Metric::kL2);

/// Cost-sharing path for multi-cluster probing (the paper's "cost shared by
/// all the data vectors"): since P^T is linear,
///   P^T((q - c) / ||q - c||) = (P^T q - P^T c) / ||q - c||,
/// so the expensive rotation of q happens ONCE per query and each probed
/// cluster only pays a subtract-and-scale over B floats. `P^T c` per
/// centroid is precomputed in the index phase (see IvfRabitqIndex).
///
/// `rotated_query` = P^T q_r (B floats, from RotateQueryOnce);
/// `rotated_centroid` = P^T c (B floats; nullptr = origin);
/// `q_dist` = ||q_r - c|| computed in the original space.
///
/// For kInnerProduct / kCosine the caller also passes `query_norm_sq` =
/// ||q||^2 of the (for cosine: pre-normalized) original-space query, since
/// only the rotated view is in hand here; it feeds QuantizedQuery::q_base
/// and is ignored under kL2.
Status PrepareQueryFromRotated(const RabitqEncoder& encoder,
                               const float* rotated_query,
                               const float* rotated_centroid, float q_dist,
                               Rng* rng, QuantizedQuery* out,
                               int query_bits_override = 0,
                               Metric metric = Metric::kL2,
                               float query_norm_sq = 0.0f);

/// Computes P^T q_r into `out` (encoder.total_bits() floats).
void RotateQueryOnce(const RabitqEncoder& encoder, const float* query_raw,
                     float* out);

}  // namespace rabitq

#endif  // RABITQ_CORE_QUERY_H_
