#include "core/rotator.h"

#include <algorithm>
#include <cmath>

#include "linalg/orthogonal.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {

std::size_t DefaultPaddedDim(std::size_t dim) { return ((dim + 63) / 64) * 64; }

namespace {

class DenseRotator final : public Rotator {
 public:
  DenseRotator(std::size_t input_dim, std::size_t padded_dim, const Matrix& p)
      : Rotator(input_dim, padded_dim) {
    // Store P^T so the hot path (InverseRotate, once per probed cluster per
    // query) runs B streaming dot products of length D instead of D
    // strided axpys of length B -- compute-bound instead of memory-bound.
    Transpose(p, &pt_);
  }

  void Rotate(const float* in, float* out) const override {
    // P in = (P^T)^T in.
    MatTVec(pt_, in, out);
  }

  void InverseRotate(const float* in, float* out) const override {
    // (P^T pad(in))[i] = <column i of P, pad(in)> = <row i of P^T, in[0..D)>
    // -- padding contributes nothing, so each dot stops at input_dim.
    for (std::size_t i = 0; i < padded_dim_; ++i) {
      out[i] = Dot(pt_.Row(i), in, input_dim_);
    }
  }

  void InverseRotateBatch(const Matrix& queries, Matrix* out) const override {
    // One (n x D) x (D x B) matrix product, tiled over query groups so each
    // row of P^T streams through cache once per kTile queries instead of
    // once per query -- the B x D matrix traffic that dominates a single
    // gemv amortizes across the batch. Each output element stays the exact
    // Dot(pt_.Row(i), q, input_dim_) of InverseRotate (not an Axpy-ordered
    // MatMul), preserving the base-class bit-identity contract.
    out->Reset(queries.rows(), padded_dim_);
    constexpr std::size_t kTile = 8;
    for (std::size_t q0 = 0; q0 < queries.rows(); q0 += kTile) {
      const std::size_t q1 = std::min(q0 + kTile, queries.rows());
      for (std::size_t i = 0; i < padded_dim_; ++i) {
        const float* p_row = pt_.Row(i);
        for (std::size_t q = q0; q < q1; ++q) {
          out->At(q, i) = Dot(p_row, queries.Row(q), input_dim_);
        }
      }
    }
  }

 private:
  Matrix pt_;  // P^T, padded_dim x padded_dim
};

// In-place normalized Walsh-Hadamard transform; n must be a power of two.
void Fht(float* v, std::size_t n) {
  for (std::size_t half = 1; half < n; half <<= 1) {
    for (std::size_t group = 0; group < n; group += half << 1) {
      for (std::size_t i = group; i < group + half; ++i) {
        const float a = v[i];
        const float b = v[i + half];
        v[i] = a + b;
        v[i + half] = a - b;
      }
    }
  }
  const float scale = 1.0f / std::sqrt(static_cast<float>(n));
  ScaleInPlace(v, scale, n);
}

class IdentityRotator final : public Rotator {
 public:
  IdentityRotator(std::size_t input_dim, std::size_t padded_dim)
      : Rotator(input_dim, padded_dim) {}

  void Rotate(const float* in, float* out) const override {
    std::copy_n(in, padded_dim_, out);
  }

  void InverseRotate(const float* in, float* out) const override {
    std::copy_n(in, input_dim_, out);
    std::fill(out + input_dim_, out + padded_dim_, 0.0f);
  }
};

class FhtRotator final : public Rotator {
 public:
  static constexpr int kRounds = 3;

  FhtRotator(std::size_t input_dim, std::size_t padded_dim, std::uint64_t seed)
      : Rotator(input_dim, padded_dim) {
    Rng rng(seed);
    for (int r = 0; r < kRounds; ++r) {
      signs_[r].resize(padded_dim);
      for (auto& s : signs_[r]) s = (rng.NextU64() & 1) ? 1.0f : -1.0f;
    }
  }

  // P = (S3 H)(S2 H)(S1 H) reading right to left on the input, i.e.
  // Rotate applies H then S1, ..., H then S3? -- we define it the other way
  // around so InverseRotate (the hot path) is sign-then-transform:
  //   P   = H S1 H S2 H S3         (applied right-to-left)
  //   P^T = S3 H S2 H S1 H
  void Rotate(const float* in, float* out) const override {
    std::copy_n(in, padded_dim_, out);
    for (int r = kRounds - 1; r >= 0; --r) {
      ApplySigns(out, r);
      Fht(out, padded_dim_);
    }
  }

  void InverseRotate(const float* in, float* out) const override {
    std::copy_n(in, input_dim_, out);
    std::fill(out + input_dim_, out + padded_dim_, 0.0f);
    for (int r = 0; r < kRounds; ++r) {
      Fht(out, padded_dim_);
      ApplySigns(out, r);
    }
  }

 private:
  void ApplySigns(float* v, int round) const {
    const float* s = signs_[round].data();
    for (std::size_t i = 0; i < padded_dim_; ++i) v[i] *= s[i];
  }

  AlignedVector<float> signs_[kRounds];
};

}  // namespace

Status CreateRotator(std::size_t dim, std::size_t padded_dim, RotatorKind kind,
                     std::uint64_t seed, std::unique_ptr<Rotator>* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (dim == 0) return Status::InvalidArgument("dim must be positive");
  if (padded_dim == 0) padded_dim = DefaultPaddedDim(dim);
  if (padded_dim < dim) {
    return Status::InvalidArgument("padded_dim must be >= dim");
  }
  switch (kind) {
    case RotatorKind::kDense: {
      Matrix p;
      Rng rng(seed);
      RABITQ_RETURN_IF_ERROR(SampleRandomOrthogonal(padded_dim, &rng, &p));
      *out = std::make_unique<DenseRotator>(dim, padded_dim, std::move(p));
      return Status::Ok();
    }
    case RotatorKind::kFht: {
      std::size_t pow2 = 1;
      while (pow2 < padded_dim) pow2 <<= 1;
      *out = std::make_unique<FhtRotator>(dim, pow2, seed);
      return Status::Ok();
    }
    case RotatorKind::kIdentity:
      *out = std::make_unique<IdentityRotator>(dim, padded_dim);
      return Status::Ok();
  }
  return Status::InvalidArgument("unknown rotator kind");
}

}  // namespace rabitq
