#include "core/estimator.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <limits>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

#include "quant/fastscan.h"
#include "util/bit_ops.h"

namespace rabitq {

namespace {

// One lane of the fused assembly, written so that every operation maps 1:1
// onto the AVX2 kernel below (explicit std::fma <-> fmadd/fnmadd, lone
// mul/add <-> mul_ps/add_ps). The explicit fma calls are not just speed:
// they pin the rounding sequence so the compiler cannot contract the scalar
// path differently from the hand-written SIMD path, which is what keeps the
// two bit-identical.
//
// Edge handling mirrors the kernel's blends, L2 ONLY (`l2_edges`): a
// q_dist == 0 query overrides the whole lane with f_sq, then a
// dist_to_centroid == 0 code wins with q_base (== q_dist^2 under kL2).
// (For codes produced by Append the blends are actually no-ops -- d == 0
// implies f_sq = f_cross = 0 and f_err = 0, so the arithmetic already lands
// on the same values -- but the blends keep the contract independent of
// those identities.) Under IP/cosine no blends are needed OR wanted: either
// edge zeroes the cross term, and f_sq + q_base is then EXACTLY -<o,q>
// (resp. -<c,q>), so the straight-line arithmetic is already exact.
inline void AssembleLane(float s_f, float pc_f, float d, float f_sq,
                         float f_cross, float f_inv_oo, float f_err,
                         float q_dist, float q_base, float ip_scale,
                         float pop_scale, float bias, float epsilon0,
                         bool l2_edges, float* dist_out, float* lb_out) {
  const float x_qbar = std::fma(ip_scale, s_f, std::fma(pop_scale, pc_f, bias));
  const float ip = x_qbar * f_inv_oo;
  const float cross = f_cross * q_dist;
  const float base = f_sq + q_base;
  float dist = std::fma(-cross, ip, base);
  float lb = epsilon0 > 0.0f ? std::fma(-cross, f_err * epsilon0, dist) : dist;
  if (l2_edges) {
    if (q_dist == 0.0f) {
      dist = f_sq;
      lb = f_sq;
    }
    if (d == 0.0f) {
      dist = q_base;
      lb = q_base;
    }
  }
  *dist_out = dist;
  *lb_out = lb;
}

// Assembles the distance estimate from the raw bit dot product S = <x_b, qu>.
// Same per-lane operation order as AssembleLane (early returns instead of
// blends -- the values are identical), plus the ip/ip_error outputs the
// batch path does not carry.
inline DistanceEstimate Assemble(const QuantizedQuery& query,
                                 const RabitqCodeView& code, std::uint32_t s,
                                 float epsilon0, bool unbias) {
  DistanceEstimate est;
  // The exact-edge early returns are L2-only, mirroring AssembleLane's
  // gated blends; under IP/cosine the straight-line arithmetic below is
  // already exact at both edges (cross = 0).
  if (query.metric == Metric::kL2) {
    if (code.dist_to_centroid == 0.0f) {
      est.dist_sq = query.q_base;
      est.lower_bound_sq = est.dist_sq;
      est.ip = 1.0f;
      return est;
    }
    if (query.q_dist == 0.0f) {
      est.dist_sq = code.f_sq;
      est.lower_bound_sq = est.dist_sq;
      est.ip = 1.0f;
      return est;
    }
  }
  // Eq. 20: <x-bar, q-bar>.
  const float x_qbar =
      std::fma(query.ip_scale, static_cast<float>(s),
               std::fma(query.pop_scale, static_cast<float>(code.bit_count),
                        query.bias));
  // Thm 3.2: multiply by the precomputed 1/<o-bar, o> for unbiasedness; the
  // biased ablation (Appendix F.2) keeps <o-bar, q> as-is.
  est.ip = unbias ? x_qbar * code.f_inv_oo : x_qbar;
  const float cross = code.f_cross * query.q_dist;
  const float base = code.f_sq + query.q_base;
  est.dist_sq = std::fma(-cross, est.ip, base);
  if (epsilon0 > 0.0f) {
    est.ip_error = code.f_err * epsilon0;
    est.lower_bound_sq = std::fma(-cross, est.ip_error, est.dist_sq);
  } else {
    est.lower_bound_sq = est.dist_sq;
  }
  return est;
}

// One lane of the multi-bit refine assembly (stage 2); the same 1:1
// scalar/SIMD operation-order discipline as AssembleLane. The front end
// differs -- <x-bar, q-bar> comes from the weighted plane sum S and the
// per-code (m_alpha, m_beta) affine map -- but from `ip` on the arithmetic
// is AssembleLane's, just fed the tighter m_inv_oo / m_err factors.
inline void AssembleMultiLane(float s_f, float u_f, float d, float f_sq,
                              float f_cross, float m_alpha, float m_beta,
                              float m_inv_oo, float m_err, float q_dist,
                              float q_base, float step, float lo, float kq,
                              float epsilon0, bool l2_edges, float* dist_out,
                              float* lb_out) {
  const float s_mul = step * s_f;
  const float inner = std::fma(lo, u_f, s_mul);
  const float bk = m_beta * kq;
  const float x_qbar = std::fma(m_alpha, inner, bk);
  const float ip = x_qbar * m_inv_oo;
  const float cross = f_cross * q_dist;
  const float base = f_sq + q_base;
  float dist = std::fma(-cross, ip, base);
  float lb = epsilon0 > 0.0f ? std::fma(-cross, m_err * epsilon0, dist) : dist;
  if (l2_edges) {
    if (q_dist == 0.0f) {
      dist = f_sq;
      lb = f_sq;
    }
    if (d == 0.0f) {
      dist = q_base;
      lb = q_base;
    }
  }
  *dist_out = dist;
  *lb_out = lb;
}

// Scalar multi-bit refine over the candidate lanes of [0, count); returns
// the refined survivors mask (candidate lanes with lb <= threshold).
inline std::uint32_t MultiBlockScalar(const QuantizedQuery& query,
                                      const RabitqCodeStore& store,
                                      std::size_t begin,
                                      const std::uint32_t* multi_sums,
                                      std::size_t count, float epsilon0,
                                      float prune_threshold,
                                      std::uint32_t candidate_mask,
                                      float* dist_sq, float* lower_bounds) {
  const float* d_arr = store.dist_to_centroid_data() + begin;
  const float* f_sq = store.f_sq_data() + begin;
  const float* f_cross = store.f_cross_data() + begin;
  const float* m_alpha = store.m_alpha_data() + begin;
  const float* m_beta = store.m_beta_data() + begin;
  const float* m_inv = store.m_inv_oo_data() + begin;
  const float* m_err = store.m_err_data() + begin;
  const float* u_sum = store.m_code_sum_data() + begin;
  const bool l2_edges = query.metric == Metric::kL2;
  std::uint32_t mask = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (((candidate_mask >> k) & 1u) == 0) continue;
    float dist = 0.0f, lb = 0.0f;
    AssembleMultiLane(static_cast<float>(multi_sums[k]), u_sum[k], d_arr[k],
                      f_sq[k], f_cross[k], m_alpha[k], m_beta[k], m_inv[k],
                      m_err[k], query.q_dist, query.q_base, query.step,
                      query.lo, query.kq, epsilon0, l2_edges, &dist, &lb);
    dist_sq[k] = dist;
    lower_bounds[k] = lb;
    mask |= static_cast<std::uint32_t>(!(lb > prune_threshold)) << k;
  }
  return mask;
}

#if defined(__AVX2__) && defined(__FMA__)

// Full-block multi-bit refine: 8-lane groups in AssembleMultiLane's exact
// order; groups with no candidate lanes are skipped (their outputs stay
// unspecified, per the header contract).
inline std::uint32_t MultiBlockAvx2(const QuantizedQuery& query,
                                    const RabitqCodeStore& store,
                                    std::size_t begin,
                                    const std::uint32_t* multi_sums,
                                    float epsilon0, float prune_threshold,
                                    std::uint32_t candidate_mask,
                                    float* dist_sq, float* lower_bounds) {
  const float* d_arr = store.dist_to_centroid_data() + begin;
  const float* f_sq = store.f_sq_data() + begin;
  const float* f_cross = store.f_cross_data() + begin;
  const float* m_alpha = store.m_alpha_data() + begin;
  const float* m_beta = store.m_beta_data() + begin;
  const float* m_inv = store.m_inv_oo_data() + begin;
  const float* m_err = store.m_err_data() + begin;
  const float* u_sum = store.m_code_sum_data() + begin;
  const float q_dist = query.q_dist;
  const __m256 v_step = _mm256_set1_ps(query.step);
  const __m256 v_lo = _mm256_set1_ps(query.lo);
  const __m256 v_kq = _mm256_set1_ps(query.kq);
  const __m256 v_q_dist = _mm256_set1_ps(q_dist);
  const __m256 v_q_base = _mm256_set1_ps(query.q_base);
  const __m256 v_eps = _mm256_set1_ps(epsilon0);
  const __m256 v_thr = _mm256_set1_ps(prune_threshold);
  const __m256 v_zero = _mm256_setzero_ps();
  const bool has_bound = epsilon0 > 0.0f;
  const bool l2_edges = query.metric == Metric::kL2;
  const bool q_zero = l2_edges && q_dist == 0.0f;
  std::uint32_t mask = 0;
  for (int g = 0; g < 4; ++g) {
    const std::size_t off = static_cast<std::size_t>(g) * 8;
    if (((candidate_mask >> off) & 0xFFu) == 0) continue;
    const __m256 s_f = _mm256_cvtepi32_ps(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(multi_sums + off)));
    const __m256 u_f = _mm256_loadu_ps(u_sum + off);
    const __m256 s_mul = _mm256_mul_ps(v_step, s_f);
    const __m256 inner = _mm256_fmadd_ps(v_lo, u_f, s_mul);
    const __m256 bk = _mm256_mul_ps(_mm256_loadu_ps(m_beta + off), v_kq);
    const __m256 x_qbar =
        _mm256_fmadd_ps(_mm256_loadu_ps(m_alpha + off), inner, bk);
    const __m256 ip = _mm256_mul_ps(x_qbar, _mm256_loadu_ps(m_inv + off));
    const __m256 cross =
        _mm256_mul_ps(_mm256_loadu_ps(f_cross + off), v_q_dist);
    const __m256 vf_sq = _mm256_loadu_ps(f_sq + off);
    const __m256 base = _mm256_add_ps(vf_sq, v_q_base);
    __m256 dist = _mm256_fnmadd_ps(cross, ip, base);
    __m256 lb = dist;
    if (has_bound) {
      lb = _mm256_fnmadd_ps(
          cross, _mm256_mul_ps(_mm256_loadu_ps(m_err + off), v_eps), dist);
    }
    if (q_zero) {
      dist = vf_sq;
      lb = vf_sq;
    }
    if (l2_edges) {
      const __m256 edge_d =
          _mm256_cmp_ps(_mm256_loadu_ps(d_arr + off), v_zero, _CMP_EQ_OQ);
      dist = _mm256_blendv_ps(dist, v_q_base, edge_d);
      lb = _mm256_blendv_ps(lb, v_q_base, edge_d);
    }
    _mm256_storeu_ps(dist_sq + off, dist);
    _mm256_storeu_ps(lower_bounds + off, lb);
    const int pruned =
        _mm256_movemask_ps(_mm256_cmp_ps(lb, v_thr, _CMP_GT_OQ));
    mask |= (static_cast<std::uint32_t>(~pruned) & 0xFFu) << off;
  }
  return mask & candidate_mask;
}

#endif  // defined(__AVX2__) && defined(__FMA__)

// Folds the structural masks into a survivors bitmask: tail lanes of a
// partial block, tombstoned entries and lanes the caller's `lane_mask`
// (the per-query IdFilter pushdown) cleared never survive.
inline std::uint32_t FoldAliveMask(std::uint32_t mask, const std::uint8_t* dead,
                                   std::size_t count,
                                   std::uint32_t lane_mask) {
  std::uint32_t alive = count >= kFastScanBlockSize
                            ? 0xFFFFFFFFu
                            : ((1u << count) - 1u);
  alive &= lane_mask;
  if (dead != nullptr) {
    for (std::size_t k = 0; k < count; ++k) {
      alive &= ~(static_cast<std::uint32_t>(dead[k] != 0) << k);
    }
  }
  return mask & alive;
}

// Scalar fused assembly over lanes [0, count); returns the raw
// lb-vs-threshold mask (before FoldAliveMask).
inline std::uint32_t FusedBlockScalar(const QuantizedQuery& query,
                                      const RabitqCodeStore& store,
                                      std::size_t begin,
                                      const std::uint32_t* sums,
                                      std::size_t count, float epsilon0,
                                      float prune_threshold, float* dist_sq,
                                      float* lower_bounds) {
  const float* d_arr = store.dist_to_centroid_data() + begin;
  const float* f_sq = store.f_sq_data() + begin;
  const float* f_cross = store.f_cross_data() + begin;
  const float* f_inv = store.f_inv_oo_data() + begin;
  const float* f_err = store.f_err_data() + begin;
  const std::uint32_t* pc = store.bit_count_data() + begin;
  const bool l2_edges = query.metric == Metric::kL2;
  std::uint32_t mask = 0;
  for (std::size_t k = 0; k < count; ++k) {
    float dist = 0.0f, lb = 0.0f;
    AssembleLane(static_cast<float>(sums[k]), static_cast<float>(pc[k]),
                 d_arr[k], f_sq[k], f_cross[k], f_inv[k], f_err[k],
                 query.q_dist, query.q_base, query.ip_scale, query.pop_scale,
                 query.bias, epsilon0, l2_edges, &dist, &lb);
    dist_sq[k] = dist;
    if (lower_bounds != nullptr) lower_bounds[k] = lb;
    // Survive unless lb > threshold -- the same strict comparison (and the
    // same NaN-survives semantics) as the SIMD _CMP_GT_OQ path.
    mask |= static_cast<std::uint32_t>(!(lb > prune_threshold)) << k;
  }
  return mask;
}

#if defined(__AVX2__) && defined(__FMA__)

// Full-block (32-lane) fused assembly. Per 8-lane group: two int->float
// converts, six loads, then fmadd/mul/add/fnmadd in exactly AssembleLane's
// order. Returns the raw lb-vs-threshold survivors mask.
inline std::uint32_t FusedBlockAvx2(const QuantizedQuery& query,
                                    const RabitqCodeStore& store,
                                    std::size_t begin,
                                    const std::uint32_t* sums, float epsilon0,
                                    float prune_threshold, float* dist_sq,
                                    float* lower_bounds) {
  const float* d_arr = store.dist_to_centroid_data() + begin;
  const float* f_sq = store.f_sq_data() + begin;
  const float* f_cross = store.f_cross_data() + begin;
  const float* f_inv = store.f_inv_oo_data() + begin;
  const float* f_err = store.f_err_data() + begin;
  const std::uint32_t* pc = store.bit_count_data() + begin;
  const float q_dist = query.q_dist;
  const __m256 v_ip_scale = _mm256_set1_ps(query.ip_scale);
  const __m256 v_pop_scale = _mm256_set1_ps(query.pop_scale);
  const __m256 v_bias = _mm256_set1_ps(query.bias);
  const __m256 v_q_dist = _mm256_set1_ps(q_dist);
  const __m256 v_q_base = _mm256_set1_ps(query.q_base);
  const __m256 v_eps = _mm256_set1_ps(epsilon0);
  const __m256 v_thr = _mm256_set1_ps(prune_threshold);
  const __m256 v_zero = _mm256_setzero_ps();
  const bool has_bound = epsilon0 > 0.0f;
  // The exact-edge blends are L2-only (see AssembleLane).
  const bool l2_edges = query.metric == Metric::kL2;
  const bool q_zero = l2_edges && q_dist == 0.0f;
  std::uint32_t mask = 0;
  for (int g = 0; g < 4; ++g) {
    const std::size_t off = static_cast<std::size_t>(g) * 8;
    const __m256 s_f = _mm256_cvtepi32_ps(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(sums + off)));
    const __m256 pc_f = _mm256_cvtepi32_ps(_mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(pc + off)));
    const __m256 x_qbar = _mm256_fmadd_ps(
        v_ip_scale, s_f, _mm256_fmadd_ps(v_pop_scale, pc_f, v_bias));
    const __m256 ip = _mm256_mul_ps(x_qbar, _mm256_loadu_ps(f_inv + off));
    const __m256 cross =
        _mm256_mul_ps(_mm256_loadu_ps(f_cross + off), v_q_dist);
    const __m256 vf_sq = _mm256_loadu_ps(f_sq + off);
    const __m256 base = _mm256_add_ps(vf_sq, v_q_base);
    __m256 dist = _mm256_fnmadd_ps(cross, ip, base);
    __m256 lb = dist;
    if (has_bound) {
      lb = _mm256_fnmadd_ps(
          cross, _mm256_mul_ps(_mm256_loadu_ps(f_err + off), v_eps), dist);
    }
    if (q_zero) {
      dist = vf_sq;
      lb = vf_sq;
    }
    if (l2_edges) {
      const __m256 edge_d =
          _mm256_cmp_ps(_mm256_loadu_ps(d_arr + off), v_zero, _CMP_EQ_OQ);
      dist = _mm256_blendv_ps(dist, v_q_base, edge_d);
      lb = _mm256_blendv_ps(lb, v_q_base, edge_d);
    }
    _mm256_storeu_ps(dist_sq + off, dist);
    if (lower_bounds != nullptr) _mm256_storeu_ps(lower_bounds + off, lb);
    const int pruned =
        _mm256_movemask_ps(_mm256_cmp_ps(lb, v_thr, _CMP_GT_OQ));
    mask |= (static_cast<std::uint32_t>(~pruned) & 0xFFu) << off;
  }
  return mask;
}

#endif  // defined(__AVX2__) && defined(__FMA__)

// Dispatch: AVX2 for full blocks, the bit-identical scalar reference for
// the (at most one) partial tail block -- the factor arrays hold exactly
// size() entries, so the tail must not be read 8-wide.
inline std::uint32_t FusedBlockDispatch(const QuantizedQuery& query,
                                        const RabitqCodeStore& store,
                                        std::size_t block,
                                        const std::uint32_t* sums,
                                        float epsilon0, float prune_threshold,
                                        float* dist_sq, float* lower_bounds) {
  const std::size_t begin = block * kFastScanBlockSize;
  const std::size_t count = std::min(kFastScanBlockSize, store.size() - begin);
#if defined(__AVX2__) && defined(__FMA__)
  if (count == kFastScanBlockSize) {
    return FusedBlockAvx2(query, store, begin, sums, epsilon0, prune_threshold,
                          dist_sq, lower_bounds);
  }
#endif
  return FusedBlockScalar(query, store, begin, sums, count, epsilon0,
                          prune_threshold, dist_sq, lower_bounds);
}

}  // namespace

float IpErrorBound(float o_o, float epsilon0, std::size_t total_bits) {
  const float o_o_sq = std::max(o_o * o_o, 1e-12f);
  return std::sqrt((1.0f - o_o_sq) / o_o_sq) * epsilon0 /
         std::sqrt(static_cast<float>(total_bits - 1));
}

std::uint32_t BitwiseDotQuery(const QuantizedQuery& query,
                              const std::uint64_t* code_bits) {
  return BitPlaneDot(code_bits, query.bit_planes.data(),
                     static_cast<std::size_t>(query.query_bits),
                     query.num_words);
}

DistanceEstimate EstimateDistance(const QuantizedQuery& query,
                                  const RabitqCodeView& code, float epsilon0) {
  const std::uint32_t s = BitwiseDotQuery(query, code.bits);
  return Assemble(query, code, s, epsilon0, /*unbias=*/true);
}

DistanceEstimate EstimateDistanceBiased(const QuantizedQuery& query,
                                        const RabitqCodeView& code) {
  const std::uint32_t s = BitwiseDotQuery(query, code.bits);
  return Assemble(query, code, s, /*epsilon0=*/0.0f, /*unbias=*/false);
}

void EstimateBlockFused(const QuantizedQuery& query,
                        const RabitqCodeStore& store, std::size_t block,
                        const std::uint32_t* sums, float epsilon0,
                        float* dist_sq, float* lower_bounds) {
  FusedBlockDispatch(query, store, block, sums, epsilon0, FLT_MAX, dist_sq,
                     lower_bounds);
}

void EstimateBlockFusedScalar(const QuantizedQuery& query,
                              const RabitqCodeStore& store, std::size_t block,
                              const std::uint32_t* sums, float epsilon0,
                              float* dist_sq, float* lower_bounds) {
  const std::size_t begin = block * kFastScanBlockSize;
  const std::size_t count = std::min(kFastScanBlockSize, store.size() - begin);
  FusedBlockScalar(query, store, begin, sums, count, epsilon0, FLT_MAX,
                   dist_sq, lower_bounds);
}

std::uint32_t EstimateBlockFusedPruned(const QuantizedQuery& query,
                                       const RabitqCodeStore& store,
                                       std::size_t block,
                                       const std::uint32_t* sums,
                                       float epsilon0, float prune_threshold,
                                       const std::uint8_t* dead,
                                       float* dist_sq, float* lower_bounds,
                                       std::uint32_t lane_mask) {
  const std::size_t begin = block * kFastScanBlockSize;
  const std::size_t count = std::min(kFastScanBlockSize, store.size() - begin);
  const std::uint32_t mask =
      FusedBlockDispatch(query, store, block, sums, epsilon0, prune_threshold,
                         dist_sq, lower_bounds);
  return FoldAliveMask(mask, dead, count, lane_mask);
}

std::uint32_t EstimateBlockFusedPrunedScalar(
    const QuantizedQuery& query, const RabitqCodeStore& store,
    std::size_t block, const std::uint32_t* sums, float epsilon0,
    float prune_threshold, const std::uint8_t* dead, float* dist_sq,
    float* lower_bounds, std::uint32_t lane_mask) {
  const std::size_t begin = block * kFastScanBlockSize;
  const std::size_t count = std::min(kFastScanBlockSize, store.size() - begin);
  const std::uint32_t mask =
      FusedBlockScalar(query, store, begin, sums, count, epsilon0,
                       prune_threshold, dist_sq, lower_bounds);
  return FoldAliveMask(mask, dead, count, lane_mask);
}

std::uint32_t BitwiseDotQueryMulti(const QuantizedQuery& query,
                                   const RabitqCodeStore& store,
                                   std::size_t i) {
  const std::size_t top = store.bits_per_dim() - 1;
  std::uint32_t s = BitwiseDotQuery(query, store.BitsAt(i)) << top;
  const std::uint64_t* extra = store.ExtraPlanesAt(i);
  for (std::size_t j = 0; j < top; ++j) {
    s += BitPlaneDot(extra + j * store.words_per_code(),
                     query.bit_planes.data(),
                     static_cast<std::size_t>(query.query_bits),
                     query.num_words)
         << j;
  }
  return s;
}

DistanceEstimate EstimateDistanceMulti(const QuantizedQuery& query,
                                       const RabitqCodeStore& store,
                                       std::size_t i, float epsilon0) {
  const std::uint32_t s = BitwiseDotQueryMulti(query, store, i);
  DistanceEstimate est;
  // Shares AssembleMultiLane with the block kernels, so the single-code
  // path is bit-identical to the fused ones by construction.
  AssembleMultiLane(static_cast<float>(s), store.m_code_sum(i),
                    store.dist_to_centroid(i), store.f_sq_data()[i],
                    store.f_cross_data()[i], store.m_alpha(i),
                    store.m_beta(i), store.m_inv_oo_data()[i],
                    store.m_err_data()[i], query.q_dist, query.q_base,
                    query.step, query.lo, query.kq, epsilon0,
                    query.metric == Metric::kL2, &est.dist_sq,
                    &est.lower_bound_sq);
  const float x_qbar =
      std::fma(store.m_alpha(i),
               std::fma(query.lo, store.m_code_sum(i),
                        query.step * static_cast<float>(s)),
               store.m_beta(i) * query.kq);
  est.ip = x_qbar * store.m_inv_oo_data()[i];
  est.ip_error = epsilon0 > 0.0f ? store.m_err_data()[i] * epsilon0 : 0.0f;
  return est;
}

void AccumulateMultiBlockSums(const QuantizedQuery& query,
                              const RabitqCodeStore& store, std::size_t block,
                              const std::uint32_t* sign_sums,
                              std::uint32_t* multi_sums) {
  const std::size_t top = store.bits_per_dim() - 1;
  for (std::size_t k = 0; k < kFastScanBlockSize; ++k) {
    multi_sums[k] = sign_sums[k] << top;
  }
  std::uint32_t tmp[kFastScanBlockSize];
  for (std::size_t j = 0; j < top; ++j) {
    const FastScanCodes& packed = store.extra_packed(j);
    FastScanAccumulateBlock(packed.BlockPtr(block), packed.num_segments,
                            query.luts.data(), tmp);
    for (std::size_t k = 0; k < kFastScanBlockSize; ++k) {
      multi_sums[k] += tmp[k] << j;
    }
  }
}

std::uint32_t EstimateBlockMultiPruned(const QuantizedQuery& query,
                                       const RabitqCodeStore& store,
                                       std::size_t block,
                                       const std::uint32_t* multi_sums,
                                       float epsilon0, float prune_threshold,
                                       std::uint32_t candidate_mask,
                                       float* dist_sq, float* lower_bounds) {
  const std::size_t begin = block * kFastScanBlockSize;
  const std::size_t count = std::min(kFastScanBlockSize, store.size() - begin);
#if defined(__AVX2__) && defined(__FMA__)
  if (count == kFastScanBlockSize) {
    return MultiBlockAvx2(query, store, begin, multi_sums, epsilon0,
                          prune_threshold, candidate_mask, dist_sq,
                          lower_bounds);
  }
#endif
  return MultiBlockScalar(query, store, begin, multi_sums, count, epsilon0,
                          prune_threshold, candidate_mask, dist_sq,
                          lower_bounds);
}

std::uint32_t EstimateBlockMultiPrunedScalar(
    const QuantizedQuery& query, const RabitqCodeStore& store,
    std::size_t block, const std::uint32_t* multi_sums, float epsilon0,
    float prune_threshold, std::uint32_t candidate_mask, float* dist_sq,
    float* lower_bounds) {
  const std::size_t begin = block * kFastScanBlockSize;
  const std::size_t count = std::min(kFastScanBlockSize, store.size() - begin);
  return MultiBlockScalar(query, store, begin, multi_sums, count, epsilon0,
                          prune_threshold, candidate_mask, dist_sq,
                          lower_bounds);
}

void PrefetchBlockData(const RabitqCodeStore& store, std::size_t block) {
#if defined(__GNUC__) || defined(__clang__)
  const FastScanCodes& packed = store.packed();
  if (block >= packed.num_blocks) return;
  const std::uint8_t* p = packed.BlockPtr(block);
  const std::size_t bytes = packed.num_segments * 16;
  for (std::size_t off = 0; off < bytes; off += 64) {
    __builtin_prefetch(p + off, /*rw=*/0, /*locality=*/3);
  }
  const std::size_t begin = block * kFastScanBlockSize;
  __builtin_prefetch(store.f_sq_data() + begin, 0, 3);
  __builtin_prefetch(store.f_cross_data() + begin, 0, 3);
  __builtin_prefetch(store.f_inv_oo_data() + begin, 0, 3);
  __builtin_prefetch(store.f_err_data() + begin, 0, 3);
  __builtin_prefetch(store.bit_count_data() + begin, 0, 3);
  __builtin_prefetch(store.dist_to_centroid_data() + begin, 0, 3);
#else
  (void)store;
  (void)block;
#endif
}

void EstimateBlock(const QuantizedQuery& query, const RabitqCodeStore& store,
                   std::size_t block, float epsilon0, float* dist_sq,
                   float* lower_bounds) {
  const FastScanCodes& packed = store.packed();
  std::uint32_t s[kFastScanBlockSize];
  FastScanAccumulateBlock(packed.BlockPtr(block), packed.num_segments,
                          query.luts.data(), s);
  const std::size_t begin = block * kFastScanBlockSize;
  const std::size_t count = std::min(kFastScanBlockSize, store.size() - begin);
  if (count == kFastScanBlockSize) {
    EstimateBlockFused(query, store, block, s, epsilon0, dist_sq,
                       lower_bounds);
    return;
  }
  // Partial tail: this entry point promises to write exactly `count`
  // entries, so assemble into block-sized temporaries and copy.
  float tmp_dist[kFastScanBlockSize];
  float tmp_lb[kFastScanBlockSize];
  EstimateBlockFused(query, store, block, s, epsilon0, tmp_dist,
                     lower_bounds == nullptr ? nullptr : tmp_lb);
  std::memcpy(dist_sq, tmp_dist, count * sizeof(float));
  if (lower_bounds != nullptr) {
    std::memcpy(lower_bounds, tmp_lb, count * sizeof(float));
  }
}

void EstimateAll(const QuantizedQuery& query, const RabitqCodeStore& store,
                 float epsilon0, float* dist_sq, float* lower_bounds) {
  if (!query.has_exact_luts || !store.finalized()) {
    // B_q > 6 has no lossless u8 LUTs; fall back to the bitwise path.
    for (std::size_t i = 0; i < store.size(); ++i) {
      const DistanceEstimate est =
          EstimateDistance(query, store.View(i), epsilon0);
      dist_sq[i] = est.dist_sq;
      if (lower_bounds != nullptr) lower_bounds[i] = est.lower_bound_sq;
    }
    return;
  }
  const std::size_t num_blocks = store.packed().num_blocks;
  for (std::size_t block = 0; block < num_blocks; ++block) {
    const std::size_t begin = block * kFastScanBlockSize;
    PrefetchBlockData(store, block + 1);
    EstimateBlock(query, store, block, epsilon0, dist_sq + begin,
                  lower_bounds == nullptr ? nullptr : lower_bounds + begin);
  }
}

void EstimateAllMulti(const QuantizedQuery& query,
                      const RabitqCodeStore& store, float epsilon0,
                      float* dist_sq, float* lower_bounds) {
  if (!query.has_exact_luts || !store.finalized()) {
    for (std::size_t i = 0; i < store.size(); ++i) {
      const DistanceEstimate est =
          EstimateDistanceMulti(query, store, i, epsilon0);
      dist_sq[i] = est.dist_sq;
      lower_bounds[i] = est.lower_bound_sq;
    }
    return;
  }
  const FastScanCodes& packed = store.packed();
  std::uint32_t sums[kFastScanBlockSize];
  std::uint32_t msums[kFastScanBlockSize];
  for (std::size_t block = 0; block < packed.num_blocks; ++block) {
    const std::size_t begin = block * kFastScanBlockSize;
    PrefetchBlockData(store, block + 1);
    FastScanAccumulateBlock(packed.BlockPtr(block), packed.num_segments,
                            query.luts.data(), sums);
    AccumulateMultiBlockSums(query, store, block, sums, msums);
    EstimateBlockMultiPruned(query, store, block, msums, epsilon0,
                             std::numeric_limits<float>::infinity(),
                             0xFFFFFFFFu, dist_sq + begin,
                             lower_bounds + begin);
  }
}

}  // namespace rabitq
