#include "core/estimator.h"

#include <algorithm>
#include <cmath>

#include "quant/fastscan.h"
#include "util/bit_ops.h"

namespace rabitq {

namespace {

// Assembles the distance estimate from the raw bit dot product S = <x_b, qu>.
inline DistanceEstimate Assemble(const QuantizedQuery& query,
                                 const RabitqCodeView& code, std::uint32_t s,
                                 float epsilon0, bool unbias) {
  DistanceEstimate est;
  if (code.dist_to_centroid == 0.0f) {
    est.dist_sq = query.q_dist * query.q_dist;
    est.lower_bound_sq = est.dist_sq;
    est.ip = 1.0f;
    return est;
  }
  if (query.q_dist == 0.0f) {
    est.dist_sq = code.dist_to_centroid * code.dist_to_centroid;
    est.lower_bound_sq = est.dist_sq;
    est.ip = 1.0f;
    return est;
  }
  // Eq. 20: <x-bar, q-bar>.
  const float x_qbar = query.ip_scale * static_cast<float>(s) +
                       query.pop_scale * static_cast<float>(code.bit_count) +
                       query.bias;
  // Thm 3.2: divide by <o-bar, o> for unbiasedness; the biased ablation
  // (Appendix F.2) keeps <o-bar, q> as-is.
  const float o_o = std::max(code.o_o, 1e-9f);
  est.ip = unbias ? x_qbar / o_o : x_qbar;
  const float cross = 2.0f * code.dist_to_centroid * query.q_dist;
  est.dist_sq = code.dist_to_centroid * code.dist_to_centroid +
                query.q_dist * query.q_dist - cross * est.ip;
  if (epsilon0 > 0.0f) {
    est.ip_error = IpErrorBound(o_o, epsilon0, query.total_bits);
    est.lower_bound_sq = est.dist_sq - cross * est.ip_error;
  } else {
    est.lower_bound_sq = est.dist_sq;
  }
  return est;
}

}  // namespace

float IpErrorBound(float o_o, float epsilon0, std::size_t total_bits) {
  const float o_o_sq = std::max(o_o * o_o, 1e-12f);
  return std::sqrt((1.0f - o_o_sq) / o_o_sq) * epsilon0 /
         std::sqrt(static_cast<float>(total_bits - 1));
}

std::uint32_t BitwiseDotQuery(const QuantizedQuery& query,
                              const std::uint64_t* code_bits) {
  return BitPlaneDot(code_bits, query.bit_planes.data(),
                     static_cast<std::size_t>(query.query_bits),
                     query.num_words);
}

DistanceEstimate EstimateDistance(const QuantizedQuery& query,
                                  const RabitqCodeView& code, float epsilon0) {
  const std::uint32_t s = BitwiseDotQuery(query, code.bits);
  return Assemble(query, code, s, epsilon0, /*unbias=*/true);
}

DistanceEstimate EstimateDistanceBiased(const QuantizedQuery& query,
                                        const RabitqCodeView& code) {
  const std::uint32_t s = BitwiseDotQuery(query, code.bits);
  return Assemble(query, code, s, /*epsilon0=*/0.0f, /*unbias=*/false);
}

void EstimateBlock(const QuantizedQuery& query, const RabitqCodeStore& store,
                   std::size_t block, float epsilon0, float* dist_sq,
                   float* lower_bounds) {
  const FastScanCodes& packed = store.packed();
  std::uint32_t s[kFastScanBlockSize];
  FastScanAccumulateBlock(packed.BlockPtr(block), packed.num_segments,
                          query.luts.data(), s);
  const std::size_t begin = block * kFastScanBlockSize;
  const std::size_t end = std::min(begin + kFastScanBlockSize, store.size());
  for (std::size_t i = begin; i < end; ++i) {
    const DistanceEstimate est =
        Assemble(query, store.View(i), s[i - begin], epsilon0, /*unbias=*/true);
    dist_sq[i - begin] = est.dist_sq;
    if (lower_bounds != nullptr) lower_bounds[i - begin] = est.lower_bound_sq;
  }
}

void EstimateAll(const QuantizedQuery& query, const RabitqCodeStore& store,
                 float epsilon0, float* dist_sq, float* lower_bounds) {
  if (!query.has_exact_luts || !store.finalized()) {
    // B_q > 6 has no lossless u8 LUTs; fall back to the bitwise path.
    for (std::size_t i = 0; i < store.size(); ++i) {
      const DistanceEstimate est =
          EstimateDistance(query, store.View(i), epsilon0);
      dist_sq[i] = est.dist_sq;
      if (lower_bounds != nullptr) lower_bounds[i] = est.lower_bound_sq;
    }
    return;
  }
  const std::size_t num_blocks = store.packed().num_blocks;
  for (std::size_t block = 0; block < num_blocks; ++block) {
    const std::size_t begin = block * kFastScanBlockSize;
    EstimateBlock(query, store, block, epsilon0, dist_sq + begin,
                  lower_bounds == nullptr ? nullptr : lower_bounds + begin);
  }
}

}  // namespace rabitq
