#include "core/query.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"
#include "quant/scalar_quantizer.h"
#include "util/bit_ops.h"

namespace rabitq {

namespace {

// Query coincides with the centroid: every distance is exactly
// dist_to_centroid^2 and the estimator short-circuits on q_dist == 0.
void FillDegenerate(std::size_t b, QuantizedQuery* out) {
  out->qu.assign(b, 0);
  out->bit_planes.assign(
      static_cast<std::size_t>(out->query_bits) * out->num_words, 0);
  out->luts.assign((b / 4) * 16, 0);
  out->has_exact_luts = true;
  out->lo = out->step = out->ip_scale = out->pop_scale = out->bias = 0.0f;
  out->kq = 0.0f;
  out->sum_qu = 0;
}

// Bakes the metric-dependent additive score base into the query (see
// QuantizedQuery::q_base). Requires out->q_dist to be final. Under kL2 the
// expression is exactly the q_dist * q_dist the kernels used to compute
// locally, keeping L2 assembly bitwise unchanged.
void SetMetricBase(Metric metric, float query_norm_sq, QuantizedQuery* out) {
  out->metric = metric;
  const float q_sq = out->q_dist * out->q_dist;
  out->q_base =
      metric == Metric::kL2 ? q_sq : 0.5f * (q_sq - query_norm_sq);
}

// Shared tail: randomized scalar quantization of the rotated unit residual
// q' (B floats), Eq. 20 constants, bit planes and nibble LUTs.
Status QuantizeRotatedUnit(const float* q_prime, std::size_t b, Rng* rng,
                           QuantizedQuery* out) {
  RandomizedQuantizedVector quantized;
  RABITQ_RETURN_IF_ERROR(RandomizedUniformQuantize(q_prime, b, out->query_bits,
                                                   rng, &quantized));
  out->lo = quantized.lo;
  out->step = quantized.step;
  out->sum_qu = quantized.sum;
  out->qu.assign(quantized.codes.begin(), quantized.codes.end());

  const float sqrt_b = std::sqrt(static_cast<float>(b));
  out->ip_scale = 2.0f * out->step / sqrt_b;
  out->pop_scale = 2.0f * out->lo / sqrt_b;
  out->bias = -out->step / sqrt_b * static_cast<float>(out->sum_qu) -
              sqrt_b * out->lo;
  out->kq = out->step * static_cast<float>(out->sum_qu) +
            static_cast<float>(b) * out->lo;

  // Bit planes: plane j, bit i = j-th bit of qu[i] (Eq. 22).
  out->bit_planes.assign(
      static_cast<std::size_t>(out->query_bits) * out->num_words, 0);
  for (std::size_t i = 0; i < b; ++i) {
    std::uint8_t v = out->qu[i];
    int j = 0;
    while (v != 0) {
      if (v & 1) SetBit(out->bit_planes.data() + j * out->num_words, i);
      v >>= 1;
      ++j;
    }
  }

  // Nibble LUTs for the fast-scan batch path: LUT[t][pattern] =
  // sum of qu[4t + bit] over set bits of the pattern. Exact in u8 iff the
  // largest possible entry 4*(2^B_q - 1) fits.
  const int max_entry = 4 * ((1 << out->query_bits) - 1);
  out->has_exact_luts = max_entry <= 255;
  if (out->has_exact_luts) {
    const std::size_t num_segments = b / 4;
    out->luts.assign(num_segments * 16, 0);
    for (std::size_t t = 0; t < num_segments; ++t) {
      const std::uint8_t* q_seg = out->qu.data() + t * 4;
      std::uint8_t* lut = out->luts.data() + t * 16;
      // Build the 16 subset sums with the standard doubling trick.
      lut[0] = 0;
      for (int bit = 0; bit < 4; ++bit) {
        const int half = 1 << bit;
        for (int pattern = 0; pattern < half; ++pattern) {
          lut[half + pattern] =
              static_cast<std::uint8_t>(lut[pattern] + q_seg[bit]);
        }
      }
    }
  } else {
    out->luts.clear();
  }
  return Status::Ok();
}

}  // namespace

void RotateQueryOnce(const RabitqEncoder& encoder, const float* query_raw,
                     float* out) {
  encoder.rotator().InverseRotate(query_raw, out);
}

Status PrepareQuery(const RabitqEncoder& encoder, const float* query_raw,
                    const float* centroid, Rng* rng, QuantizedQuery* out,
                    int query_bits_override, Metric metric) {
  if (query_raw == nullptr || rng == nullptr || out == nullptr) {
    return Status::InvalidArgument("bad arguments");
  }
  if (query_bits_override < 0 || query_bits_override > 8) {
    return Status::InvalidArgument("query_bits_override out of range");
  }
  const std::size_t dim = encoder.dim();
  const std::size_t b = encoder.total_bits();
  out->total_bits = b;
  out->num_words = WordsForBits(b);
  out->query_bits = query_bits_override > 0 ? query_bits_override
                                            : encoder.config().query_bits;

  std::vector<float> residual(dim);
  if (centroid != nullptr) {
    Subtract(query_raw, centroid, residual.data(), dim);
  } else {
    std::copy_n(query_raw, dim, residual.data());
  }
  out->q_dist = Norm(residual.data(), dim);
  const float query_norm_sq =
      metric == Metric::kL2 ? 0.0f : SquaredNorm(query_raw, dim);
  SetMetricBase(metric, query_norm_sq, out);
  if (out->q_dist == 0.0f) {
    FillDegenerate(b, out);
    return Status::Ok();
  }
  ScaleInPlace(residual.data(), 1.0f / out->q_dist, dim);

  // q' = P^T q (padded).
  std::vector<float> rotated(b);
  encoder.rotator().InverseRotate(residual.data(), rotated.data());
  return QuantizeRotatedUnit(rotated.data(), b, rng, out);
}

Status PrepareQueryFromRotated(const RabitqEncoder& encoder,
                               const float* rotated_query,
                               const float* rotated_centroid, float q_dist,
                               Rng* rng, QuantizedQuery* out,
                               int query_bits_override, Metric metric,
                               float query_norm_sq) {
  if (rotated_query == nullptr || rng == nullptr || out == nullptr) {
    return Status::InvalidArgument("bad arguments");
  }
  if (query_bits_override < 0 || query_bits_override > 8) {
    return Status::InvalidArgument("query_bits_override out of range");
  }
  if (q_dist < 0.0f) return Status::InvalidArgument("negative q_dist");
  const std::size_t b = encoder.total_bits();
  out->total_bits = b;
  out->num_words = WordsForBits(b);
  out->query_bits = query_bits_override > 0 ? query_bits_override
                                            : encoder.config().query_bits;
  out->q_dist = q_dist;
  SetMetricBase(metric, query_norm_sq, out);
  if (q_dist == 0.0f) {
    FillDegenerate(b, out);
    return Status::Ok();
  }
  // q' = (P^T q - P^T c) / ||q - c||: one subtract-and-scale over B floats.
  out->unit_scratch.resize(b);
  float* rotated = out->unit_scratch.data();
  const float inv = 1.0f / q_dist;
  if (rotated_centroid != nullptr) {
    for (std::size_t i = 0; i < b; ++i) {
      rotated[i] = (rotated_query[i] - rotated_centroid[i]) * inv;
    }
  } else {
    for (std::size_t i = 0; i < b; ++i) rotated[i] = rotated_query[i] * inv;
  }
  return QuantizeRotatedUnit(rotated, b, rng, out);
}

}  // namespace rabitq
