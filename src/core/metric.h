// The metric seam, at the bottom of the layering (linalg -> quant/core ->
// cluster/index -> engine) so the estimator, query preprocessing and every
// index layer speak one vocabulary:
//   kL2           -- squared Euclidean distance, ascending.
//   kInnerProduct -- maximum inner product; scores are NEGATED inner
//                    products so "larger is better" maps onto the same
//                    ascending (score, id) order, heaps and merges as L2.
//   kCosine       -- inner product over unit vectors: data is normalized
//                    once at ingest, the query once per search, then the
//                    whole pipeline is kInnerProduct. Scores are negated
//                    cosine similarities in [-1, 1].
// Every build/load path funnels through ValidateMetric, every exact re-rank
// site through MetricDistance -- the two choke points that keep the index
// scan, the sharded merge and the brute-force oracle element-identical.

#ifndef RABITQ_CORE_METRIC_H_
#define RABITQ_CORE_METRIC_H_

#include <cstdint>
#include <string>

#include "linalg/vector_ops.h"
#include "util/status.h"

namespace rabitq {

/// Distance space of an index. Validated at build and at snapshot load
/// (see ValidateMetric); persisted by snapshot format v3 and the sharded
/// MANIFEST v2.
enum class Metric : std::uint8_t {
  kL2 = 0,
  kInnerProduct = 1,
  kCosine = 2,
};

/// Largest value of the enum; loaders reject anything past it BEFORE doing
/// any expensive reconstruction work.
inline constexpr std::uint32_t kMaxMetricValue = 2;

inline const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL2: return "l2";
    case Metric::kInnerProduct: return "inner_product";
    case Metric::kCosine: return "cosine";
  }
  return "unknown";
}

/// Single funnel for the metric seam: every index build/load path calls
/// this. All three metrics are implemented; the funnel now guards against
/// out-of-range values (a corrupt snapshot metric byte, a miscast integer)
/// failing closed instead of silently searching the wrong space.
inline Status ValidateMetric(Metric metric) {
  switch (metric) {
    case Metric::kL2:
    case Metric::kInnerProduct:
    case Metric::kCosine:
      return Status::Ok();
  }
  return Status::InvalidArgument(
      "metric value out of range: " +
      std::to_string(static_cast<std::uint32_t>(metric)));
}

/// Parses a user-facing metric name ("l2", "ip"/"inner_product",
/// "cos"/"cosine") -- the CLI surface of serve_demo/image_search --metric
/// and the CI matrix's METRIC env var.
inline bool ParseMetricName(const std::string& name, Metric* out) {
  if (name == "l2") {
    *out = Metric::kL2;
  } else if (name == "ip" || name == "inner_product") {
    *out = Metric::kInnerProduct;
  } else if (name == "cos" || name == "cosine") {
    *out = Metric::kCosine;
  } else {
    return false;
  }
  return true;
}

/// The exact score of one (data vector, query) pair -- the quantity every
/// exact re-rank site (index scan, sharded merge, brute-force oracle)
/// computes, ascending-is-better under every metric:
///   kL2:            ||a - q||^2
///   kInnerProduct:  -<a, q>
///   kCosine:        -<a, q> with both sides pre-normalized by the caller
///                   (the index normalizes data at ingest and the query
///                   once per search, so no normalization happens here --
///                   which is what keeps all re-rank sites bit-identical).
inline float MetricDistance(Metric metric, const float* a, const float* q,
                            std::size_t dim) {
  if (metric == Metric::kL2) return L2SqrDistance(a, q, dim);
  return -Dot(a, q, dim);
}

}  // namespace rabitq

#endif  // RABITQ_CORE_METRIC_H_
