// RaBitQ index-phase machinery (paper Section 3.1 and Algorithm 1):
// normalize data vectors against a centroid, inverse-rotate by the sampled
// orthogonal P, and store the sign bit string x_b together with the
// per-vector factors the estimator needs:
//   dist_to_centroid = ||o_r - c||        (Eq. 2)
//   o_o              = <o-bar, o> = ||P^T o||_1 / sqrt(B)   (Eq. 30)
//   bit_count        = popcount(x_b)      (Eq. 20)
// plus derived factors precomputed once per code so the query-phase assembly
// of Eq. 20 + the Thm 3.2 error bound is a pure fused-multiply-add kernel
// (no sqrt, no divide, no AoS view in the hot loop -- Andre et al.'s
// fast-scan discipline of hoisting everything query-invariant out of the
// scan, applied to the float assembly as well as the LUT accumulation).
// The factors are METRIC-AWARE: the store bakes the index's metric into
// them at append time so the query-phase kernel is one fma regardless of
// metric (the score it assembles is L2 squared distance under kL2, negated
// inner product under kInnerProduct/kCosine):
//   kL2:     f_sq    = dist_to_centroid^2
//            f_cross = 2 * dist_to_centroid
//   kIP/cos: f_sq    = (dist_to_centroid^2 - ||o_r||^2) / 2
//            f_cross = dist_to_centroid
//            (from -<o,q> = g + h - d_o d_q <u,v> with
//             g = (d_o^2 - ||o_r||^2)/2 per code and
//             h = (d_q^2 - ||q_r||^2)/2 per query, the latter living in
//             QuantizedQuery::q_base)
//   always:  f_inv_oo = 1 / max(o_o, 1e-9)
//            f_err    = sqrt((1 - o_o^2) / max(o_o^2, 1e-12)) / sqrt(B - 1)
//            (the query-invariant part of Eq. 16; the estimator multiplies
//             by eps0 at query time. Under IP/cosine the halved f_cross
//             automatically halves the error term too, which is exactly the
//             IP-analogue half-width: err(-<o,q>) = d_o d_q err(<u,v>).)
// Codes live in an SoA store that also keeps the packed fast-scan layout for
// the batch estimator.
//
// MULTI-BIT CODES (bits_per_dim B_d in {1, 2, 4, 8}): each rotated residual
// entry o'_i is quantized onto a symmetric uniform grid of 2^B_d levels over
// [-m, m] with m = max_i |o'_i|:
//   delta = 2m / 2^B_d,  u_i in [0, 2^B_d),  rec_i = -m + (u_i + 0.5) delta
//   x-bar = rec / ||rec||  =>  x-bar_i = m_alpha * u_i + m_beta  with
//   m_alpha = delta / ||rec||,  m_beta = (-m + 0.5 delta) / ||rec||
// The grid is sign-split so the MSB plane of u IS the 1-bit sign code:
// u_i >= 2^(B_d - 1) iff o'_i >= 0. The sign plane therefore keeps living in
// bits_ (1-bit estimates, goldens and the stage-1 scan are unchanged for any
// B_d) and only the B_d - 1 low planes are stored extra, each with its own
// fast-scan packing. Per-code multi factors:
//   m_o_o      = <x-bar, o'>      (replaces ||o'||_1 / sqrt(B) of the 1-bit
//                                  code -- tighter, so the Eq. 16 bound
//                                  shrinks with B_d)
//   m_code_sum = sum_i u_i        (pairs with the query's v_l term)
// plus derived m_inv_oo / m_err computed in Append exactly like the 1-bit
// f_inv_oo / f_err. B_d = 1 stores nothing extra and degenerates bit-for-bit
// to the historical code path.

#ifndef RABITQ_CORE_RABITQ_H_
#define RABITQ_CORE_RABITQ_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/metric.h"
#include "core/rotator.h"
#include "linalg/matrix.h"
#include "quant/fastscan.h"
#include "util/aligned_buffer.h"
#include "util/bit_ops.h"
#include "util/status.h"

namespace rabitq {

struct RabitqConfig {
  /// Quantization-code length B in bits; 0 selects the paper default, the
  /// smallest multiple of 64 >= D. Values > D implement the zero-padding
  /// accuracy knob of Section 5.1.
  std::size_t total_bits = 0;
  /// Confidence parameter of the error bound (Eq. 14); 1.9 gives the
  /// near-perfect confidence used throughout the paper (Section 5.2.4).
  float epsilon0 = 1.9f;
  /// Bits per entry of the quantized query (B_q, Section 3.3.1); 4 makes the
  /// scalar-quantization error negligible (Theorem 3.3, Section 5.2.5).
  int query_bits = 4;
  /// Bits per (padded) dimension of the stored code: 1, 2, 4 or 8. 1 is the
  /// paper's sign code; higher widths add low bit planes on the sign-split
  /// uniform grid (see the header comment) and enable the two-stage
  /// error-bound scan: the 1-bit plane prunes, the full-width code refines.
  std::size_t bits_per_dim = 1;
  RotatorKind rotator = RotatorKind::kDense;
  std::uint64_t seed = 0x5A17B1D5EEDULL;
};

/// Read-only view of one stored code.
struct RabitqCodeView {
  const std::uint64_t* bits = nullptr;  // B / 64 words
  float dist_to_centroid = 0.0f;        // ||o_r - c||
  float o_o = 0.0f;                     // <o-bar, o>
  std::uint32_t bit_count = 0;          // popcount(x_b)
  // Precomputed estimator factors (see the header comment); derived from
  // (dist_to_centroid, o_o, B) at append time, never stored on disk.
  float f_sq = 0.0f;       // dist_to_centroid^2
  float f_cross = 0.0f;    // 2 * dist_to_centroid
  float f_inv_oo = 1.0f;   // 1 / max(o_o, 1e-9)
  float f_err = 0.0f;      // Eq. 16 half-width sans eps0
};

/// Structure-of-arrays storage for RaBitQ codes; append during the index
/// phase, then Finalize() to build the packed fast-scan layout.
class RabitqCodeStore {
 public:
  RabitqCodeStore() = default;
  explicit RabitqCodeStore(std::size_t total_bits) { Init(total_bits); }

  /// `metric` selects the factor algebra baked in by Append (see the header
  /// comment); it must match the owning index's metric. `bits_per_dim`
  /// must match the encoder feeding this store (1, 2, 4 or 8).
  void Init(std::size_t total_bits, Metric metric = Metric::kL2,
            std::size_t bits_per_dim = 1) {
    total_bits_ = total_bits;
    words_per_code_ = WordsForBits(total_bits);
    metric_ = metric;
    bits_per_dim_ = bits_per_dim;
    Clear();
  }

  void Clear() {
    bits_.clear();
    dist_to_centroid_.clear();
    o_o_.clear();
    bit_count_.clear();
    norm_sq_.clear();
    f_sq_.clear();
    f_cross_.clear();
    f_inv_oo_.clear();
    f_err_.clear();
    extra_bits_.clear();
    m_o_o_.clear();
    m_code_sum_.clear();
    m_alpha_.clear();
    m_beta_.clear();
    m_inv_oo_.clear();
    m_err_.clear();
    packed_ = FastScanCodes{};
    extra_packed_.assign(bits_per_dim_ > 1 ? bits_per_dim_ - 1 : 0,
                         FastScanCodes{});
  }

  void Reserve(std::size_t n) {
    bits_.reserve(n * words_per_code_);
    dist_to_centroid_.reserve(n);
    o_o_.reserve(n);
    bit_count_.reserve(n);
    norm_sq_.reserve(n);
    f_sq_.reserve(n);
    f_cross_.reserve(n);
    f_inv_oo_.reserve(n);
    f_err_.reserve(n);
    if (bits_per_dim_ > 1) {
      extra_bits_.reserve(n * extra_words_per_code());
      m_o_o_.reserve(n);
      m_code_sum_.reserve(n);
      m_alpha_.reserve(n);
      m_beta_.reserve(n);
      m_inv_oo_.reserve(n);
      m_err_.reserve(n);
    }
  }

  std::size_t size() const { return dist_to_centroid_.size(); }
  std::size_t total_bits() const { return total_bits_; }
  std::size_t words_per_code() const { return words_per_code_; }
  Metric metric() const { return metric_; }
  std::size_t bits_per_dim() const { return bits_per_dim_; }
  /// Words of extra (low) bit planes per code: (bits_per_dim - 1) planes of
  /// words_per_code() words each, plane-major (plane j at offset j * words).
  std::size_t extra_words_per_code() const {
    return bits_per_dim_ > 1 ? (bits_per_dim_ - 1) * words_per_code_ : 0;
  }

  RabitqCodeView View(std::size_t i) const {
    return RabitqCodeView{bits_.data() + i * words_per_code_,
                          dist_to_centroid_[i], o_o_[i],      bit_count_[i],
                          f_sq_[i],             f_cross_[i],  f_inv_oo_[i],
                          f_err_[i]};
  }

  const std::uint64_t* BitsAt(std::size_t i) const {
    return bits_.data() + i * words_per_code_;
  }
  float dist_to_centroid(std::size_t i) const { return dist_to_centroid_[i]; }
  float o_o(std::size_t i) const { return o_o_[i]; }
  std::uint32_t bit_count(std::size_t i) const { return bit_count_[i]; }
  float norm_sq(std::size_t i) const { return norm_sq_[i]; }
  const float* norm_sq_data() const { return norm_sq_.data(); }

  // SoA factor arrays for the fused batch estimator; parallel to the code
  // order, always size() entries (appended in lock-step by Append).
  const float* dist_to_centroid_data() const { return dist_to_centroid_.data(); }
  const std::uint32_t* bit_count_data() const { return bit_count_.data(); }
  const float* f_sq_data() const { return f_sq_.data(); }
  const float* f_cross_data() const { return f_cross_.data(); }
  const float* f_inv_oo_data() const { return f_inv_oo_.data(); }
  const float* f_err_data() const { return f_err_.data(); }

  // Multi-bit accessors; only meaningful when bits_per_dim() > 1 (the
  // arrays stay empty otherwise).
  const std::uint64_t* ExtraPlanesAt(std::size_t i) const {
    return extra_bits_.data() + i * extra_words_per_code();
  }
  float m_o_o(std::size_t i) const { return m_o_o_[i]; }
  float m_alpha(std::size_t i) const { return m_alpha_[i]; }
  float m_beta(std::size_t i) const { return m_beta_[i]; }
  float m_code_sum(std::size_t i) const { return m_code_sum_[i]; }
  const float* m_alpha_data() const { return m_alpha_.data(); }
  const float* m_beta_data() const { return m_beta_.data(); }
  const float* m_code_sum_data() const { return m_code_sum_.data(); }
  const float* m_inv_oo_data() const { return m_inv_oo_.data(); }
  const float* m_err_data() const { return m_err_.data(); }
  /// Packed fast-scan layout of extra plane j (0 <= j < bits_per_dim - 1).
  const FastScanCodes& extra_packed(std::size_t j) const {
    return extra_packed_[j];
  }

  /// Appends a code; `bits` must hold words_per_code() words. The derived
  /// estimator factors are computed here under the store's metric -- every
  /// code-creation path (encode, single-vector append, compaction, snapshot
  /// load) funnels through this method, so factors can never go stale and
  /// snapshots never store them (Load recomputes them for free, every
  /// format version alike). `norm_sq` = ||o_r||^2 of the original vector;
  /// it is stored (and persisted by snapshot v3+) regardless of metric so a
  /// metric switch never needs re-encoding, but only enters the factors
  /// under kInnerProduct / kCosine.
  ///
  /// When bits_per_dim() > 1 the multi-bit payload rides along:
  /// `extra_planes` holds extra_words_per_code() words (nullptr appends
  /// all-zero planes, the zero-residual case), and (m_o_o, m_alpha, m_beta,
  /// m_code_sum) are the primary multi factors -- they depend on the rotated
  /// residual, which is never stored, so unlike the derived factors they ARE
  /// persisted (snapshot v4). m_inv_oo / m_err are derived from them here.
  void Append(const std::uint64_t* bits, float dist_to_centroid, float o_o,
              std::uint32_t bit_count, float norm_sq = 0.0f,
              const std::uint64_t* extra_planes = nullptr, float m_o_o = 1.0f,
              float m_alpha = 0.0f, float m_beta = 0.0f,
              float m_code_sum = 0.0f);

  /// Builds the packed fast-scan layout (4-bit nibbles of the bit strings).
  /// Call once after the last Append.
  void Finalize();

  /// Incremental Finalize after appending ONE code to an already-finalized
  /// store: writes the new code's nibbles into the (zero-filled) tail slots
  /// of the packed layout -- O(B/4) instead of the O(n*B/4) full repack, the
  /// piece that makes single-vector index appends amortized O(1). Falls back
  /// to Finalize() when the store was not finalized at size()-1. The result
  /// is bit-identical to a full Finalize() (tested).
  void FinalizeAppend();

  /// Appends the codes whose `dead` flag is 0 into `*out` (Init'ed to the
  /// same width by this call) and finalizes it -- the code-store half of an
  /// IVF list compaction. `dead` must hold size() entries.
  void CompactInto(const std::uint8_t* dead, RabitqCodeStore* out) const;

  bool finalized() const { return packed_.num_vectors == size() && size() > 0; }
  const FastScanCodes& packed() const { return packed_; }

 private:
  std::size_t total_bits_ = 0;
  std::size_t words_per_code_ = 0;
  Metric metric_ = Metric::kL2;
  std::size_t bits_per_dim_ = 1;
  AlignedVector<std::uint64_t> bits_;
  std::vector<float> dist_to_centroid_;
  std::vector<float> o_o_;
  std::vector<std::uint32_t> bit_count_;
  std::vector<float> norm_sq_;
  // Derived factor SoA arrays (see header comment); aligned so the fused
  // kernel's block-granular loads stay on cache-line boundaries.
  AlignedVector<float> f_sq_;
  AlignedVector<float> f_cross_;
  AlignedVector<float> f_inv_oo_;
  AlignedVector<float> f_err_;
  // Multi-bit state (empty at bits_per_dim_ == 1): low bit planes, primary
  // factors (persisted) and derived factors (recomputed in Append).
  AlignedVector<std::uint64_t> extra_bits_;
  std::vector<float> m_o_o_;
  AlignedVector<float> m_code_sum_;
  AlignedVector<float> m_alpha_;
  AlignedVector<float> m_beta_;
  AlignedVector<float> m_inv_oo_;
  AlignedVector<float> m_err_;
  FastScanCodes packed_;
  std::vector<FastScanCodes> extra_packed_;
};

/// Stateless-per-vector encoder; owns the rotator (the conceptual codebook:
/// the paper stores only P, never the 2^B codebook vectors).
class RabitqEncoder {
 public:
  /// Prepares the encoder for vectors of dimensionality `dim`.
  Status Init(std::size_t dim, const RabitqConfig& config);

  std::size_t dim() const { return dim_; }
  std::size_t total_bits() const { return total_bits_; }
  const RabitqConfig& config() const { return config_; }
  const Rotator& rotator() const { return *rotator_; }

  /// Quantizes `vec` relative to `centroid` (nullptr = origin) and appends
  /// the code to `store` (which must be Init'ed with total_bits()).
  Status EncodeAppend(const float* vec, const float* centroid,
                      RabitqCodeStore* store) const;

  /// Reconstructs the quantized unit vector o-bar = P x-bar of a code
  /// (B floats). Used by tests and the concentration study.
  void ReconstructQuantizedUnit(const std::uint64_t* bits, float* out) const;

 private:
  RabitqConfig config_;
  std::size_t dim_ = 0;
  std::size_t total_bits_ = 0;
  std::unique_ptr<Rotator> rotator_;
};

}  // namespace rabitq

#endif  // RABITQ_CORE_RABITQ_H_
