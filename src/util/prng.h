// Deterministic, platform-independent pseudo-random number generation.
// xoshiro256** for uniform bits (seeded through SplitMix64, as its authors
// recommend) plus Gaussian sampling via the Marsaglia polar method. Every
// randomized component of the library (rotations, kmeans seeding, randomized
// query rounding, synthetic datasets) draws from this generator so experiments
// are reproducible from a single seed.

#ifndef RABITQ_UTIL_PRNG_H_
#define RABITQ_UTIL_PRNG_H_

#include <cmath>
#include <cstdint>

namespace rabitq {

/// Mixes two 64-bit values into one well-distributed seed (a SplitMix64
/// finalizer over a golden-ratio-strided stream). This is THE seed-derivation
/// primitive of the library: the serving engine derives per-query seeds from
/// (engine seed, ticket), and the IVF search path derives per-probed-list
/// rounding seeds from (query seed, list id). Deriving per-list seeds --
/// instead of consuming one generator sequentially across probed lists --
/// makes each list's randomized query quantization a pure function of
/// (query seed, list id), so a sharded index whose shards quantize against
/// the same centroid set reproduces the single-shard estimate stream
/// bit-for-bit, no matter how lists are distributed over shards.
inline std::uint64_t MixSeed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  void Seed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
    has_spare_gaussian_ = false;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()() { return NextU64(); }

  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float UniformFloat() {
    return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, n). `n` must be > 0.
  std::uint64_t UniformInt(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling; bias < 2^-64 is fine here.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * n) >> 64);
  }

  /// Standard normal sample (Marsaglia polar method, caches the spare value).
  double Gaussian() {
    if (has_spare_gaussian_) {
      has_spare_gaussian_ = false;
      return spare_gaussian_;
    }
    double u, v, s;
    do {
      u = 2.0 * UniformDouble() - 1.0;
      v = 2.0 * UniformDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_gaussian_ = v * factor;
    has_spare_gaussian_ = true;
    return u * factor;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace rabitq

#endif  // RABITQ_UTIL_PRNG_H_
