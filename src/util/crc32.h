// Table-based IEEE CRC-32 (reflected polynomial 0xEDB88320), the checksum
// used by zlib/gzip/PNG. Header-only and dependency-free; snapshot blobs
// append it as a footer so bit-rot fails closed at Load instead of
// reconstructing garbage.

#ifndef RABITQ_UTIL_CRC32_H_
#define RABITQ_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace rabitq {
namespace crc32_internal {

inline const std::array<std::uint32_t, 256>& Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace crc32_internal

/// Extends a running CRC-32 over `len` more bytes. Start from 0 and feed
/// successive chunks through the returned value; the final result equals a
/// single-shot Crc32 over the concatenation.
inline std::uint32_t Crc32Update(std::uint32_t crc, const void* data,
                                 std::size_t len) {
  const auto& table = crc32_internal::Table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a buffer.
inline std::uint32_t Crc32(const void* data, std::size_t len) {
  return Crc32Update(0, data, len);
}

}  // namespace rabitq

#endif  // RABITQ_UTIL_CRC32_H_
