// Bit-string kernels backing RaBitQ's single-code estimator (paper Eq. 20-22):
// packing sign bits into 64-bit words, popcounts, and binary inner products
// <x_b, q_u^(j)> computed as popcount(x & plane_j).

#ifndef RABITQ_UTIL_BIT_OPS_H_
#define RABITQ_UTIL_BIT_OPS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace rabitq {

/// Number of 64-bit words needed to store `bits` bits.
inline constexpr std::size_t WordsForBits(std::size_t bits) {
  return (bits + 63) / 64;
}

/// popcount over a word array.
inline std::uint32_t PopCount(const std::uint64_t* words, std::size_t n_words) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n_words; ++i) acc += std::popcount(words[i]);
  return static_cast<std::uint32_t>(acc);
}

/// Inner product of two binary vectors: sum_i a[i] & b[i].
inline std::uint32_t BinaryDot(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n_words) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n_words; ++i) acc += std::popcount(a[i] & b[i]);
  return static_cast<std::uint32_t>(acc);
}

/// Weighted sum over B_q bit planes (paper Eq. 22):
///   sum_j 2^j * popcount(code & planes[j])
/// `planes` holds `n_planes` contiguous vectors of `n_words` words each.
inline std::uint32_t BitPlaneDot(const std::uint64_t* code,
                                 const std::uint64_t* planes,
                                 std::size_t n_planes, std::size_t n_words) {
  std::uint32_t acc = 0;
  for (std::size_t j = 0; j < n_planes; ++j) {
    acc += BinaryDot(code, planes + j * n_words, n_words) << j;
  }
  return acc;
}

/// Sets bit `pos` in a word array.
inline void SetBit(std::uint64_t* words, std::size_t pos) {
  words[pos / 64] |= std::uint64_t{1} << (pos % 64);
}

/// Reads bit `pos` from a word array.
inline bool GetBit(const std::uint64_t* words, std::size_t pos) {
  return (words[pos / 64] >> (pos % 64)) & 1u;
}

/// Extracts the 4-bit nibble at index `idx` (nibble 0 = bits [0,4)).
inline std::uint8_t GetNibble(const std::uint64_t* words, std::size_t idx) {
  return static_cast<std::uint8_t>((words[idx / 16] >> ((idx % 16) * 4)) & 0xF);
}

}  // namespace rabitq

#endif  // RABITQ_UTIL_BIT_OPS_H_
