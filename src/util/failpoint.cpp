#include "util/failpoint.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "util/prng.h"

namespace rabitq {
namespace fail {
namespace {

struct PointState {
  Mode mode = Mode::kOff;
  std::uint64_t arg = 0;
  std::uint64_t seed = 0;
  std::uint64_t hits = 0;
};

// One global registry behind a mutex: failpoints exist for tests, not for
// production throughput, and unconfigured sites exit before taking the lock
// via the armed-count fast path below.
std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::string, PointState>& Registry() {
  static std::unordered_map<std::string, PointState> r;
  return r;
}

// Fast path: when nothing is armed, Triggered() is a relaxed load + branch,
// so an RABITQ_FAILPOINTS=ON build with no configured points stays cheap
// enough to run the full suite.
std::atomic<int>& ArmedCount() {
  static std::atomic<int> n{0};
  return n;
}

}  // namespace

void Configure(const std::string& name, Mode mode, std::uint64_t arg,
               std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto [it, inserted] = Registry().try_emplace(name);
  if (inserted || it->second.mode == Mode::kOff) {
    if (mode != Mode::kOff) ArmedCount().fetch_add(1);
  } else if (mode == Mode::kOff) {
    ArmedCount().fetch_sub(1);
  }
  it->second = PointState{mode, arg, seed, 0};
}

void Clear(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) return;
  if (it->second.mode != Mode::kOff) ArmedCount().fetch_sub(1);
  Registry().erase(it);
}

void ClearAll() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Registry().clear();
  ArmedCount().store(0);
}

std::uint64_t HitCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

bool Triggered(const char* name) {
  if (ArmedCount().load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) return false;
  PointState& p = it->second;
  const std::uint64_t hit = ++p.hits;
  switch (p.mode) {
    case Mode::kOff:
      return false;
    case Mode::kAlways:
      return true;
    case Mode::kOnce:
      return hit == (p.arg == 0 ? 1 : p.arg);
    case Mode::kEveryN:
      return p.arg != 0 && hit % p.arg == 0;
    case Mode::kSeededPermille:
      return MixSeed(p.seed, hit) % 1000 < p.arg;
  }
  return false;
}

}  // namespace fail
}  // namespace rabitq
