#include "util/io.h"

#include <cstdio>
#include <memory>

namespace rabitq {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// Shared *vecs reader: every record is `int32 dim` + dim elements of
// `ElemT`, converted to `OutT` on the fly.
template <typename ElemT, typename OutT>
Status ReadVecsFile(const std::string& path, std::vector<OutT>* out,
                    std::size_t* n_out, std::size_t* dim_out) {
  if (out == nullptr || n_out == nullptr || dim_out == nullptr) {
    return Status::InvalidArgument("null output parameter");
  }
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  out->clear();
  *n_out = 0;
  *dim_out = 0;
  std::vector<ElemT> record;
  for (;;) {
    std::int32_t dim = 0;
    const std::size_t got = std::fread(&dim, sizeof(dim), 1, file.get());
    if (got == 0) break;  // clean EOF
    if (dim <= 0) {
      return Status::IoError("corrupt record header in '" + path + "'");
    }
    if (*dim_out == 0) {
      *dim_out = static_cast<std::size_t>(dim);
    } else if (static_cast<std::size_t>(dim) != *dim_out) {
      return Status::IoError("inconsistent dimensionality in '" + path + "'");
    }
    record.resize(static_cast<std::size_t>(dim));
    if (std::fread(record.data(), sizeof(ElemT), record.size(), file.get()) !=
        record.size()) {
      return Status::IoError("truncated record in '" + path + "'");
    }
    for (const ElemT v : record) out->push_back(static_cast<OutT>(v));
    ++*n_out;
  }
  return Status::Ok();
}

template <typename ElemT>
Status WriteVecsFile(const std::string& path, const ElemT* data, std::size_t n,
                     std::size_t dim) {
  if (data == nullptr && n > 0) {
    return Status::InvalidArgument("null data with nonzero count");
  }
  if (dim == 0 || dim > 0x7FFFFFFF) {
    return Status::InvalidArgument("dimensionality out of range");
  }
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const std::int32_t dim32 = static_cast<std::int32_t>(dim);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::fwrite(&dim32, sizeof(dim32), 1, file.get()) != 1 ||
        std::fwrite(data + i * dim, sizeof(ElemT), dim, file.get()) != dim) {
      return Status::IoError("short write to '" + path + "'");
    }
  }
  return Status::Ok();
}

}  // namespace

Status ReadFvecs(const std::string& path, std::vector<float>* out,
                 std::size_t* n_out, std::size_t* dim_out) {
  return ReadVecsFile<float, float>(path, out, n_out, dim_out);
}

Status ReadIvecs(const std::string& path, std::vector<std::int32_t>* out,
                 std::size_t* n_out, std::size_t* dim_out) {
  return ReadVecsFile<std::int32_t, std::int32_t>(path, out, n_out, dim_out);
}

Status ReadBvecs(const std::string& path, std::vector<float>* out,
                 std::size_t* n_out, std::size_t* dim_out) {
  return ReadVecsFile<std::uint8_t, float>(path, out, n_out, dim_out);
}

Status WriteFvecs(const std::string& path, const float* data, std::size_t n,
                  std::size_t dim) {
  return WriteVecsFile<float>(path, data, n, dim);
}

Status WriteIvecs(const std::string& path, const std::int32_t* data,
                  std::size_t n, std::size_t dim) {
  return WriteVecsFile<std::int32_t>(path, data, n, dim);
}

}  // namespace rabitq
