// Small fixed-size thread pool with a blocking ParallelFor (used by the index
// phase: kmeans assignment, encoding, ground-truth computation) and a
// future-returning SubmitTask (used by the query-serving engine to fan batch
// work out with exception propagation).

#ifndef RABITQ_UTIL_THREAD_POOL_H_
#define RABITQ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace rabitq {

/// Fixed pool of worker threads executing submitted closures.
class ThreadPool {
 public:
  /// `num_threads` == 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution. The task must not throw:
  /// an escaping exception terminates the worker (use SubmitTask when the
  /// task can fail).
  void Submit(std::function<void()> task);

  /// Enqueues `fn` and returns a future for its result. An exception thrown
  /// by the task is captured and rethrown from future::get(), so callers can
  /// join a fan-out and surface the first failure.
  template <typename F>
  auto SubmitTask(F fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    // shared_ptr because std::function requires copyable callables.
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Submit([task] { (*task)(); });
    return result;
  }

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Splits [0, n) into contiguous chunks and runs
  /// `fn(chunk_begin, chunk_end)` across the pool; blocks until done.
  /// Runs inline when n is small or the pool has a single thread.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t, std::size_t)>& fn,
                   std::size_t min_chunk = 256);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Process-wide pool for index-phase parallelism.
ThreadPool& GlobalThreadPool();

}  // namespace rabitq

#endif  // RABITQ_UTIL_THREAD_POOL_H_
