// Minimal binary (de)serialization primitives used by the index save/load
// paths: little-endian fixed-width integers, floats, raw arrays, and a
// magic+version header. All functions return Status and never throw.

#ifndef RABITQ_UTIL_SERIALIZE_H_
#define RABITQ_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace rabitq {

/// Buffered binary writer over a file. Fails fast: after the first error
/// every subsequent call is a no-op returning the original error.
class BinaryWriter {
 public:
  /// Opens `path` for writing (truncates).
  static Status Open(const std::string& path, std::unique_ptr<BinaryWriter>* out);
  ~BinaryWriter();

  BinaryWriter(const BinaryWriter&) = delete;
  BinaryWriter& operator=(const BinaryWriter&) = delete;

  Status WriteU32(std::uint32_t value);
  Status WriteU64(std::uint64_t value);
  Status WriteF32(float value);
  Status WriteBytes(const void* data, std::size_t size);

  /// Length-prefixed (u64 count) primitive array.
  template <typename T>
  Status WriteArray(const T* data, std::size_t count) {
    RABITQ_RETURN_IF_ERROR(WriteU64(count));
    return WriteBytes(data, count * sizeof(T));
  }

  /// Flushes and closes; returns the first error encountered, if any.
  Status Close();

  /// Starts accumulating a CRC-32 over every byte written from here on.
  /// Formats with a checksummed body call this right after the header, so
  /// the magic/version stay readable even when the body is unverifiable.
  void EnableChecksum();

  /// Stops accumulation and writes the running CRC-32 as a u32 footer (the
  /// footer itself is excluded from the checksum).
  Status WriteChecksumFooter();

 private:
  explicit BinaryWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_;
  Status deferred_error_;
  bool checksum_enabled_ = false;
  std::uint32_t crc_ = 0;
};

/// Binary reader mirroring BinaryWriter.
class BinaryReader {
 public:
  static Status Open(const std::string& path, std::unique_ptr<BinaryReader>* out);
  ~BinaryReader();

  BinaryReader(const BinaryReader&) = delete;
  BinaryReader& operator=(const BinaryReader&) = delete;

  Status ReadU32(std::uint32_t* value);
  Status ReadU64(std::uint64_t* value);
  Status ReadF32(float* value);
  Status ReadBytes(void* data, std::size_t size);

  /// Bytes between the current read position and the end of the file.
  /// Loaders use this to reject corrupt counts BEFORE allocating: a flipped
  /// length field must fail closed with an IoError, not take down the
  /// process with a multi-terabyte resize.
  std::uint64_t BytesRemaining() const;

  /// Length-prefixed primitive array; `max_count` guards against corrupt
  /// headers allocating unbounded memory, and the declared payload must
  /// actually fit in the remaining file bytes before anything is resized.
  template <typename T, typename Vec>
  Status ReadArray(Vec* out, std::size_t max_count = (std::size_t{1} << 32)) {
    std::uint64_t count = 0;
    RABITQ_RETURN_IF_ERROR(ReadU64(&count));
    if (count > max_count) {
      return Status::IoError("array length exceeds sanity bound");
    }
    if (count * sizeof(T) > BytesRemaining()) {
      return Status::IoError("array length exceeds file size");
    }
    out->resize(static_cast<std::size_t>(count));
    return ReadBytes(out->data(), static_cast<std::size_t>(count) * sizeof(T));
  }

  /// Mirrors BinaryWriter::EnableChecksum: accumulates a CRC-32 over every
  /// byte read from here on.
  void EnableChecksum();

  /// Stops accumulation, reads the u32 footer and compares it against the
  /// accumulated CRC-32; any mismatch fails closed with an IoError.
  Status VerifyChecksumFooter();

 private:
  explicit BinaryReader(std::FILE* file) : file_(file) {}

  std::FILE* file_;
  bool checksum_enabled_ = false;
  std::uint32_t crc_ = 0;
};

/// Writes/checks an 8-byte magic tag plus a u32 version.
Status WriteHeader(BinaryWriter* writer, const char magic[8],
                   std::uint32_t version);
Status ExpectHeader(BinaryReader* reader, const char magic[8],
                    std::uint32_t expected_version);

/// Multi-version header check for formats that stay load-compatible across
/// revisions: accepts any of the `count` (magic, version) pairs and reports
/// which one matched through `*found_index`. The magic/version arrays are
/// parallel, ordered however the caller likes (typically newest first).
Status ExpectHeaderOneOf(BinaryReader* reader, const char (*magics)[8],
                         const std::uint32_t* versions, std::size_t count,
                         std::size_t* found_index);

}  // namespace rabitq

#endif  // RABITQ_UTIL_SERIALIZE_H_
