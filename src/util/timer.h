// Wall-clock timing used by the benchmark harness (QPS, ns-per-vector).

#ifndef RABITQ_UTIL_TIMER_H_
#define RABITQ_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace rabitq {

/// Monotonic stopwatch. Starts on construction; Restart() resets the origin.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rabitq

#endif  // RABITQ_UTIL_TIMER_H_
