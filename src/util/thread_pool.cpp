#include "util/thread_pool.h"

#include <algorithm>

namespace rabitq {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_chunk) {
  if (n == 0) return;
  const std::size_t threads = num_threads();
  if (threads <= 1 || n <= min_chunk) {
    fn(0, n);
    return;
  }
  const std::size_t chunks = std::min(threads * 4, (n + min_chunk - 1) / min_chunk);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(begin + chunk, n);
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rabitq
