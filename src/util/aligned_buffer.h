// 64-byte-aligned storage used for all SIMD-visible arrays (codes, vectors,
// look-up tables). Alignment lets the AVX2 kernels use aligned loads and keeps
// packed code blocks on cache-line boundaries.

#ifndef RABITQ_UTIL_ALIGNED_BUFFER_H_
#define RABITQ_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

namespace rabitq {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal allocator that over-aligns every allocation to `Alignment` bytes.
template <typename T, std::size_t Alignment = kCacheLineBytes>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::align_val_t kAlign{Alignment};

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace rabitq

#endif  // RABITQ_UTIL_ALIGNED_BUFFER_H_
