// Readers/writers for the de-facto ANN benchmark formats (fvecs / ivecs /
// bvecs: each record is an int32 dimensionality followed by that many
// float / int32 / uint8 payload entries). The synthetic dataset suite stands
// in for the paper's public datasets offline; these routines let the real
// SIFT/GIST/DEEP/... files drop in unchanged when available.

#ifndef RABITQ_UTIL_IO_H_
#define RABITQ_UTIL_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace rabitq {

/// Reads an .fvecs file. On success `out` holds `*n_out * *dim_out` floats in
/// row-major order. Every record must share one dimensionality.
Status ReadFvecs(const std::string& path, std::vector<float>* out,
                 std::size_t* n_out, std::size_t* dim_out);

/// Reads an .ivecs file (e.g. ground-truth neighbor ids).
Status ReadIvecs(const std::string& path, std::vector<std::int32_t>* out,
                 std::size_t* n_out, std::size_t* dim_out);

/// Reads a .bvecs file into floats (uint8 payload widened).
Status ReadBvecs(const std::string& path, std::vector<float>* out,
                 std::size_t* n_out, std::size_t* dim_out);

/// Writes row-major float data as .fvecs.
Status WriteFvecs(const std::string& path, const float* data, std::size_t n,
                  std::size_t dim);

/// Writes row-major int32 data as .ivecs.
Status WriteIvecs(const std::string& path, const std::int32_t* data,
                  std::size_t n, std::size_t dim);

}  // namespace rabitq

#endif  // RABITQ_UTIL_IO_H_
