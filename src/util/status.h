// Lightweight Status type for error handling without exceptions, in the style
// of the Google/RocksDB C++ guides. Fallible functions return a Status and
// write results through output parameters.

#ifndef RABITQ_UTIL_STATUS_H_
#define RABITQ_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace rabitq {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// Result of a fallible operation: a code plus a human-readable message.
///
/// Usage:
///   Status s = index.Build(data);
///   if (!s.ok()) { std::cerr << s.ToString(); return; }
class Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<category>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace rabitq

/// Propagates a non-OK Status to the caller.
#define RABITQ_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::rabitq::Status rabitq_status_tmp_ = (expr);   \
    if (!rabitq_status_tmp_.ok()) return rabitq_status_tmp_; \
  } while (0)

#endif  // RABITQ_UTIL_STATUS_H_
