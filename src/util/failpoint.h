// Deterministic fault-injection points ("failpoints") for robustness tests.
//
// A failpoint is a named trigger site compiled into a hot path only when the
// build sets -DRABITQ_FAILPOINTS (CMake option RABITQ_FAILPOINTS=ON); default
// builds pay literally nothing — the RABITQ_FAILPOINT macro expands to an
// empty statement. The registry API below (Configure/Clear/HitCount/...) is
// always compiled so tests link in every configuration and can GTEST_SKIP
// when FailpointsCompiledIn() is false.
//
// Triggering is deterministic: every evaluation increments the point's hit
// counter, and the configured mode decides from (hit index, seed) alone —
// kSeededPermille keys off MixSeed(seed, hit), so a given (seed, traffic
// pattern) always injects the same faults.
//
// Usage at a trigger site:
//   RABITQ_FAILPOINT("snapshot.write", return Status::IoError("injected"));
// Usage in a test:
//   fail::Configure("snapshot.write", fail::Mode::kOnce, /*arg=*/3);
//   ... exercise ...
//   fail::ClearAll();

#ifndef RABITQ_UTIL_FAILPOINT_H_
#define RABITQ_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>

namespace rabitq {
namespace fail {

enum class Mode {
  kOff,            // never triggers (same as unconfigured)
  kAlways,         // triggers on every hit
  kOnce,           // triggers only on the arg-th hit (1-based; arg=0 -> first)
  kEveryN,         // triggers on every arg-th hit (hit % arg == 0)
  kSeededPermille  // triggers when MixSeed(seed, hit) % 1000 < arg
};

/// True when trigger sites are compiled into the library (RABITQ_FAILPOINTS).
constexpr bool FailpointsCompiledIn() {
#ifdef RABITQ_FAILPOINTS
  return true;
#else
  return false;
#endif
}

/// Arms `name` with the given mode. `arg` is the mode's parameter (hit index
/// for kOnce, period for kEveryN, permille rate for kSeededPermille); `seed`
/// keys kSeededPermille. Reconfiguring resets the hit counter.
void Configure(const std::string& name, Mode mode, std::uint64_t arg = 0,
               std::uint64_t seed = 0);

/// Disarms `name` (hit counting continues at zero cost of triggering).
void Clear(const std::string& name);

/// Disarms every failpoint and forgets all hit counters.
void ClearAll();

/// Number of times the trigger site `name` has been evaluated since it was
/// configured (0 if never configured or never hit).
std::uint64_t HitCount(const std::string& name);

/// Evaluates the trigger site: bumps the hit counter and returns whether the
/// configured mode fires on this hit. Unconfigured names never fire (and do
/// not allocate). Called only from RABITQ_FAILPOINT sites.
bool Triggered(const char* name);

}  // namespace fail
}  // namespace rabitq

#ifdef RABITQ_FAILPOINTS
#define RABITQ_FAILPOINT(name, action)               \
  do {                                               \
    if (::rabitq::fail::Triggered(name)) {           \
      action;                                        \
    }                                                \
  } while (0)
#else
#define RABITQ_FAILPOINT(name, action) \
  do {                                 \
  } while (0)
#endif

#endif  // RABITQ_UTIL_FAILPOINT_H_
