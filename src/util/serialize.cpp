#include "util/serialize.h"

#include <cstring>

#include "util/crc32.h"

namespace rabitq {

Status BinaryWriter::Open(const std::string& path,
                          std::unique_ptr<BinaryWriter>* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  out->reset(new BinaryWriter(file));
  return Status::Ok();
}

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryWriter::WriteBytes(const void* data, std::size_t size) {
  if (!deferred_error_.ok()) return deferred_error_;
  if (size == 0) return Status::Ok();
  if (std::fwrite(data, 1, size, file_) != size) {
    deferred_error_ = Status::IoError("short write");
    return deferred_error_;
  }
  if (checksum_enabled_) crc_ = Crc32Update(crc_, data, size);
  return Status::Ok();
}

void BinaryWriter::EnableChecksum() {
  checksum_enabled_ = true;
  crc_ = 0;
}

Status BinaryWriter::WriteChecksumFooter() {
  checksum_enabled_ = false;
  return WriteU32(crc_);
}

Status BinaryWriter::WriteU32(std::uint32_t value) {
  return WriteBytes(&value, sizeof(value));
}

Status BinaryWriter::WriteU64(std::uint64_t value) {
  return WriteBytes(&value, sizeof(value));
}

Status BinaryWriter::WriteF32(float value) {
  return WriteBytes(&value, sizeof(value));
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return deferred_error_;
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (!deferred_error_.ok()) return deferred_error_;
  if (rc != 0) return Status::IoError("close failed");
  return Status::Ok();
}

Status BinaryReader::Open(const std::string& path,
                          std::unique_ptr<BinaryReader>* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  out->reset(new BinaryReader(file));
  return Status::Ok();
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryReader::ReadBytes(void* data, std::size_t size) {
  if (size == 0) return Status::Ok();
  if (std::fread(data, 1, size, file_) != size) {
    return Status::IoError("unexpected end of file");
  }
  if (checksum_enabled_) crc_ = Crc32Update(crc_, data, size);
  return Status::Ok();
}

void BinaryReader::EnableChecksum() {
  checksum_enabled_ = true;
  crc_ = 0;
}

Status BinaryReader::VerifyChecksumFooter() {
  checksum_enabled_ = false;
  std::uint32_t stored = 0;
  RABITQ_RETURN_IF_ERROR(ReadU32(&stored));
  if (stored != crc_) {
    return Status::IoError("snapshot checksum mismatch (corrupt file)");
  }
  return Status::Ok();
}

Status BinaryReader::ReadU32(std::uint32_t* value) {
  return ReadBytes(value, sizeof(*value));
}

Status BinaryReader::ReadU64(std::uint64_t* value) {
  return ReadBytes(value, sizeof(*value));
}

Status BinaryReader::ReadF32(float* value) {
  return ReadBytes(value, sizeof(*value));
}

std::uint64_t BinaryReader::BytesRemaining() const {
  const long pos = std::ftell(file_);
  if (pos < 0) return 0;
  if (std::fseek(file_, 0, SEEK_END) != 0) return 0;
  const long end = std::ftell(file_);
  std::fseek(file_, pos, SEEK_SET);
  return end > pos ? static_cast<std::uint64_t>(end - pos) : 0;
}

Status WriteHeader(BinaryWriter* writer, const char magic[8],
                   std::uint32_t version) {
  RABITQ_RETURN_IF_ERROR(writer->WriteBytes(magic, 8));
  return writer->WriteU32(version);
}

Status ExpectHeader(BinaryReader* reader, const char magic[8],
                    std::uint32_t expected_version) {
  char got[8];
  RABITQ_RETURN_IF_ERROR(reader->ReadBytes(got, 8));
  if (std::memcmp(got, magic, 8) != 0) {
    return Status::IoError("magic mismatch (not a rabitq index file?)");
  }
  std::uint32_t version = 0;
  RABITQ_RETURN_IF_ERROR(reader->ReadU32(&version));
  if (version != expected_version) {
    return Status::IoError("unsupported format version");
  }
  return Status::Ok();
}

Status ExpectHeaderOneOf(BinaryReader* reader, const char (*magics)[8],
                         const std::uint32_t* versions, std::size_t count,
                         std::size_t* found_index) {
  char got[8];
  RABITQ_RETURN_IF_ERROR(reader->ReadBytes(got, 8));
  std::uint32_t version = 0;
  RABITQ_RETURN_IF_ERROR(reader->ReadU32(&version));
  for (std::size_t i = 0; i < count; ++i) {
    if (std::memcmp(got, magics[i], 8) == 0 && version == versions[i]) {
      if (found_index != nullptr) *found_index = i;
      return Status::Ok();
    }
  }
  return Status::IoError("unrecognized magic/version (not a rabitq file?)");
}

}  // namespace rabitq
