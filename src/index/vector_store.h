// Chunked raw-vector storage for the mutable IVF index. Rows live in
// fixed-size chunks (kChunkRows x dim each), so a single-vector append costs
// one dim-float copy plus, at most, one new-chunk allocation -- amortized
// O(1), unlike a dense Matrix whose grow-by-one is a full reallocate-and-copy
// (N single inserts would cost O(N^2)). Two properties the index relies on:
//   * Row pointers are stable: existing chunks never move or reallocate, so
//     a pointer handed out before an append stays valid after it.
//   * Rows are 64-byte aligned whenever dim * sizeof(float) is a multiple of
//     64 -- same alignment contract as Matrix rows.
// Thread safety: const accessors may run concurrently; Append/OverwriteRow
// need external exclusion from each other AND from readers of the affected
// row (SearchEngine provides this via its writer lock).

#ifndef RABITQ_INDEX_VECTOR_STORE_H_
#define RABITQ_INDEX_VECTOR_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/aligned_buffer.h"

namespace rabitq {

/// Append-only (plus in-place overwrite) chunked row store of floats.
class ChunkedVectorStore {
 public:
  /// Rows per chunk; 4096 rows of a 128-dim vector is a 2 MiB chunk.
  static constexpr std::size_t kChunkRows = 4096;

  /// Drops all rows and fixes the row width.
  void Init(std::size_t dim);

  /// Bulk-load: Init(data.cols()) then copy every row of `data`.
  void Assign(const Matrix& data);

  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return rows_ == 0; }

  const float* Row(std::size_t r) const {
    return chunks_[r / kChunkRows].data() + (r % kChunkRows) * dim_;
  }

  /// Appends one row (copied); returns its row id == previous rows().
  std::uint32_t Append(const float* vec);

  /// Overwrites row `r` in place (Update's raw-vector half).
  void OverwriteRow(std::size_t r, const float* vec);

 private:
  std::size_t dim_ = 0;
  std::size_t rows_ = 0;
  // Chunk buffers are allocated at full capacity up front and never resized,
  // so growing the outer vector moves only the (heap-stable) inner handles.
  std::vector<AlignedVector<float>> chunks_;
};

}  // namespace rabitq

#endif  // RABITQ_INDEX_VECTOR_STORE_H_
