#include "index/vector_store.h"

#include <algorithm>

namespace rabitq {

void ChunkedVectorStore::Init(std::size_t dim) {
  dim_ = dim;
  rows_ = 0;
  chunks_.clear();
}

void ChunkedVectorStore::Assign(const Matrix& data) {
  Init(data.cols());
  const std::size_t n = data.rows();
  chunks_.reserve((n + kChunkRows - 1) / kChunkRows);
  for (std::size_t r = 0; r < n; ++r) Append(data.Row(r));
}

std::uint32_t ChunkedVectorStore::Append(const float* vec) {
  if (rows_ == chunks_.size() * kChunkRows) {
    chunks_.emplace_back(kChunkRows * dim_, 0.0f);
  }
  const std::uint32_t id = static_cast<std::uint32_t>(rows_);
  ++rows_;
  std::copy_n(vec, dim_, chunks_[id / kChunkRows].data() +
                             (id % kChunkRows) * dim_);
  return id;
}

void ChunkedVectorStore::OverwriteRow(std::size_t r, const float* vec) {
  std::copy_n(vec, dim_,
              chunks_[r / kChunkRows].data() + (r % kChunkRows) * dim_);
}

}  // namespace rabitq
