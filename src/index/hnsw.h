// Hierarchical Navigable Small World graphs [Malkov & Yashunin, TPAMI'20],
// the graph-based reference baseline of paper Fig. 4. Standard construction:
// exponential level sampling (mult = 1/ln(M)), greedy descent through upper
// layers, beam search with ef_construction at the insertion layers, and the
// distance-based neighbor-selection heuristic with bidirectional links
// pruned back to the degree caps (2M at layer 0, M above).

#ifndef RABITQ_INDEX_HNSW_H_
#define RABITQ_INDEX_HNSW_H_

#include <cstdint>
#include <vector>

#include "core/metric.h"
#include "index/brute_force.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace rabitq {

struct HnswConfig {
  /// Out-degree parameter M (layer-0 cap is 2M; the paper uses M=16 so the
  /// maximum out-degree is 32).
  std::size_t m = 16;
  std::size_t ef_construction = 200;
  std::uint64_t seed = 2024;
  /// Distance space of the graph: kL2 or kInnerProduct (every edge and
  /// search comparison goes through MetricDistance, so scores ascend under
  /// both). kCosine is rejected at Build: this baseline does not normalize
  /// on ingest, so silently treating cosine as IP would rank by magnitude.
  Metric metric = Metric::kL2;
};

/// In-memory HNSW index in the configured metric space (see
/// HnswConfig::metric; search scores are ascending-is-better, negated inner
/// products under kInnerProduct).
class HnswIndex {
 public:
  Status Build(const Matrix& data, const HnswConfig& config);

  std::size_t size() const { return data_.rows(); }
  std::size_t dim() const { return data_.cols(); }
  int max_level() const { return max_level_; }

  /// Top-k search with beam width ef_search (>= k).
  Status Search(const float* query, std::size_t k, std::size_t ef_search,
                std::vector<Neighbor>* out) const;

 private:
  struct Node {
    int level = 0;
    /// neighbors[l] = adjacency list at layer l (0 <= l <= level).
    std::vector<std::vector<std::uint32_t>> neighbors;
  };

  float DistanceTo(const float* query, std::uint32_t id) const;
  /// Beam search at one layer from `entry`; returns up to `ef` nearest
  /// candidates as a sorted ascending vector.
  std::vector<Neighbor> SearchLayer(const float* query, std::uint32_t entry,
                                    std::size_t ef, int layer) const;
  /// Neighbor-selection heuristic: keep c iff it is closer to the base
  /// point than to every already-kept neighbor.
  std::vector<std::uint32_t> SelectNeighbors(
      const std::vector<Neighbor>& candidates, std::size_t m) const;

  Matrix data_;
  HnswConfig config_;
  std::vector<Node> nodes_;
  std::uint32_t entry_point_ = 0;
  int max_level_ = -1;
};

}  // namespace rabitq

#endif  // RABITQ_INDEX_HNSW_H_
