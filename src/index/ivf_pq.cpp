#include "index/ivf_pq.h"

#include <algorithm>

#include "linalg/vector_ops.h"
#include "util/thread_pool.h"

namespace rabitq {

std::size_t IvfPqIndex::code_bits() const {
  return config_.use_opq ? opq_.code_bits() : pq_.code_bits();
}

Status IvfPqIndex::Build(const Matrix& data, const IvfPqConfig& config) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  config_ = config;
  data_ = data;

  KMeansConfig kmeans = config.ivf.kmeans;
  kmeans.num_clusters = std::min(config.ivf.num_lists, data.rows());
  KMeansResult clustering;
  RABITQ_RETURN_IF_ERROR(RunKMeans(data_, kmeans, &clustering));
  centroids_ = std::move(clustering.centroids);

  // Train the quantizer on the raw vectors (global codebooks, as in the
  // paper's distance-estimation protocol).
  std::vector<std::uint8_t> all_codes;
  std::size_t num_segments = 0;
  if (config.use_opq) {
    OpqConfig opq_config;
    opq_config.pq = config.pq;
    opq_config.opq_iterations = config.opq_iterations;
    opq_config.max_training_points = config.opq_max_training_points;
    RABITQ_RETURN_IF_ERROR(opq_.Train(data_, opq_config));
    opq_.EncodeBatch(data_, &all_codes);
    num_segments = opq_.num_segments();
  } else {
    RABITQ_RETURN_IF_ERROR(pq_.Train(data_, config.pq));
    pq_.EncodeBatch(data_, &all_codes);
    num_segments = pq_.num_segments();
  }

  lists_.assign(centroids_.rows(), List{});
  for (std::size_t i = 0; i < data_.rows(); ++i) {
    lists_[clustering.assignments[i]].ids.push_back(
        static_cast<std::uint32_t>(i));
  }
  GlobalThreadPool().ParallelFor(
      lists_.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t l = begin; l < end; ++l) {
          List& list = lists_[l];
          list.codes.resize(list.ids.size() * num_segments);
          for (std::size_t i = 0; i < list.ids.size(); ++i) {
            std::copy_n(all_codes.data() + list.ids[i] * num_segments,
                        num_segments, list.codes.data() + i * num_segments);
          }
          if (config_.pq.bits == 4 && !list.ids.empty()) {
            PackFastScanCodes(list.codes.data(), list.ids.size(), num_segments,
                              &list.packed);
          }
        }
      },
      /*min_chunk=*/1);
  return Status::Ok();
}

std::vector<std::uint32_t> IvfPqIndex::ProbeOrder(const float* query) const {
  std::vector<std::pair<float, std::uint32_t>> by_dist(centroids_.rows());
  for (std::size_t l = 0; l < centroids_.rows(); ++l) {
    by_dist[l] = {L2SqrDistance(query, centroids_.Row(l), dim()),
                  static_cast<std::uint32_t>(l)};
  }
  std::sort(by_dist.begin(), by_dist.end());
  std::vector<std::uint32_t> order(by_dist.size());
  for (std::size_t i = 0; i < by_dist.size(); ++i) order[i] = by_dist[i].second;
  return order;
}

void IvfPqIndex::PrepareQueryLuts(const float* query, QueryLuts* luts) const {
  if (config_.use_opq) {
    opq_.ComputeLookupTables(query, &luts->float_luts);
  } else {
    pq_.ComputeLookupTables(query, &luts->float_luts);
  }
  if (config_.pq.bits == 4) {
    QuantizeLutsToU8(luts->float_luts.data(), config_.pq.num_segments,
                     &luts->u8_luts, &luts->scale, &luts->bias_sum);
  }
}

void IvfPqIndex::EstimateList(std::size_t l, const QueryLuts& luts,
                              std::vector<float>* estimates) const {
  const List& list = lists_[l];
  const std::size_t n = list.ids.size();
  estimates->resize(n);
  if (config_.pq.bits == 4) {
    // Fast-scan batches with u8-quantized LUTs.
    std::uint32_t acc[kFastScanBlockSize];
    for (std::size_t block = 0; block < list.packed.num_blocks; ++block) {
      FastScanAccumulateBlock(list.packed.BlockPtr(block),
                              list.packed.num_segments, luts.u8_luts.data(),
                              acc);
      const std::size_t begin = block * kFastScanBlockSize;
      const std::size_t end = std::min(begin + kFastScanBlockSize, n);
      for (std::size_t i = begin; i < end; ++i) {
        (*estimates)[i] =
            luts.scale * static_cast<float>(acc[i - begin]) + luts.bias_sum;
      }
    }
  } else {
    // LUT-in-RAM ADC.
    const ProductQuantizer& quantizer = config_.use_opq ? opq_.pq() : pq_;
    const std::size_t num_segments = quantizer.num_segments();
    for (std::size_t i = 0; i < n; ++i) {
      (*estimates)[i] = quantizer.EstimateWithLuts(
          list.codes.data() + i * num_segments, luts.float_luts.data());
    }
  }
}

Status IvfPqIndex::Search(const float* query, const IvfPqSearchParams& params,
                          std::vector<Neighbor>* out,
                          IvfSearchStats* stats) const {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (params.k == 0) return Status::InvalidArgument("k must be positive");
  const std::vector<std::uint32_t> order = ProbeOrder(query);
  const std::size_t nprobe = std::min(params.nprobe, order.size());

  QueryLuts luts;
  PrepareQueryLuts(query, &luts);

  IvfSearchStats local_stats;
  std::vector<Neighbor> pool;
  std::vector<float> estimates;
  for (std::size_t p = 0; p < nprobe; ++p) {
    const std::size_t l = order[p];
    if (lists_[l].ids.empty()) continue;
    ++local_stats.lists_probed;
    EstimateList(l, luts, &estimates);
    local_stats.codes_estimated += estimates.size();
    for (std::size_t i = 0; i < estimates.size(); ++i) {
      pool.emplace_back(estimates[i], lists_[l].ids[i]);
    }
  }

  if (params.rerank_candidates == 0) {
    const std::size_t keep = std::min(params.k, pool.size());
    std::partial_sort(pool.begin(), pool.begin() + keep, pool.end());
    pool.resize(keep);
    *out = std::move(pool);
  } else {
    const std::size_t keep =
        std::min(std::max(params.rerank_candidates, params.k), pool.size());
    std::partial_sort(pool.begin(), pool.begin() + keep, pool.end());
    TopKHeap heap(params.k);
    for (std::size_t i = 0; i < keep; ++i) {
      const std::uint32_t id = pool[i].second;
      heap.Push(L2SqrDistance(data_.Row(id), query, dim()), id);
    }
    local_stats.candidates_reranked = keep;
    *out = heap.ExtractSorted();
  }
  if (stats != nullptr) *stats = local_stats;
  return Status::Ok();
}

}  // namespace rabitq
