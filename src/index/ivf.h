// IVF + RaBitQ, the in-memory ANN pipeline of paper Section 4. The index
// phase KMeans-clusters the raw vectors, normalizes each vector against its
// cluster centroid (the paper's normalization instantiation), and stores
// per-cluster RaBitQ code stores. The query phase probes the nprobe nearest
// clusters, estimates distances from the codes (fast-scan batches by
// default), and re-ranks with exact distances under one of two policies:
//   * kErrorBound (RaBitQ): re-rank iff the eps0 lower bound beats the
//     current k-th best exact distance -- the tuning-free rule of Section 4.
//   * kFixedCandidates (PQ-style): keep the `rerank_candidates` smallest
//     estimates, then re-rank those -- the baseline knob of Section 5.
//   * kNone: rank purely by estimated distances (Fig. 10 ablation).
//
// Beyond the paper's build-once protocol the index is fully mutable:
//   * Add appends a vector in amortized O(1) (chunked raw storage, an
//     incremental fast-scan repack of only the tail block);
//   * Delete tombstones an id -- codes stay in place, the search path skips
//     dead entries, so a delete is O(1) and never moves other vectors;
//   * Update overwrites the raw vector and re-encodes it into the list of
//     its (possibly new) nearest centroid, tombstoning the stale entry;
//   * list compaction drops a list's tombstones and repacks its code store,
//     split into a plan step (pure read, can run concurrently with
//     searches) and a commit step (an O(live-entries) swap that is the only
//     part needing exclusive access) -- see PlanListCompaction.

#ifndef RABITQ_INDEX_IVF_H_
#define RABITQ_INDEX_IVF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "index/brute_force.h"
#include "index/search_types.h"
#include "index/vector_store.h"
#include "obs/trace.h"
#include "util/prng.h"

namespace rabitq {

struct IvfConfig {
  std::size_t num_lists = 256;
  KMeansConfig kmeans;  // num_clusters is overwritten with num_lists
  /// Distance space of the index (kL2 / kInnerProduct / kCosine), validated
  /// at build and load (ValidateMetric) and persisted by snapshot v3. Under
  /// kCosine the index normalizes every ingested vector (Build, Add, Update)
  /// and each query once per search; zero-norm vectors are rejected. Scores
  /// are always ascending-is-better: negated inner products under
  /// kInnerProduct/kCosine (see core/metric.h).
  Metric metric = Metric::kL2;
};

/// Reusable workspace for SearchWithScratch. Buffers reach steady-state
/// capacity after the first few queries, after which searches stop touching
/// the allocator -- the serving engine keeps one scratch per worker thread.
/// A scratch must never be shared by concurrent callers.
struct IvfSearchScratch {
  std::vector<std::pair<float, std::uint32_t>> probe_order;
  std::vector<float> rotated_query;
  /// Unit-normalized copy of the query, filled only under kCosine when the
  /// caller did not pass a rotated query (the normalize-where-you-rotate
  /// contract; see SearchWithScratch).
  std::vector<float> norm_query;
  std::vector<float> est_buf;
  std::vector<float> lb_buf;
  /// Stage-2 lower bounds of the multi-bit refine (bits_per_dim > 1 under
  /// kErrorBound). Separate from lb_buf because the re-rank walk re-checks
  /// BOTH bounds against the live threshold.
  std::vector<float> mlb_buf;
  std::vector<Neighbor> estimate_pool;
  QuantizedQuery query;
  /// When non-null, SearchWithScratch adds per-stage spans (probe ordering,
  /// scan, re-rank; preprocess when it rotates the query itself) into this
  /// trace. Null (the default) costs one branch per stage and no clock
  /// reads. The engine points this at the sampled query's QueryTrace for
  /// the duration of each (query x shard) cell.
  obs::QueryTrace* trace = nullptr;
};

/// A compacted replacement for one list, built by PlanListCompaction without
/// disturbing the index and installed by CommitListCompaction. The embedded
/// generation ties the plan to the exact list state it was derived from:
/// commit refuses a plan whose list has since been mutated.
struct IvfCompactionPlan {
  std::uint32_t list_id = 0;
  std::uint64_t list_generation = 0;
  std::vector<std::uint32_t> ids;  // live ids, in list order
  RabitqCodeStore codes;           // their codes, re-packed
};

/// IVF index over RaBitQ codes. Keeps the raw vectors (chunked storage) for
/// exact re-ranking, mirroring the paper's in-memory setting.
///
/// Thread-safety contract: every const method is a pure read -- any number
/// of threads may search/plan concurrently. The mutators (Build, Load, Add,
/// Delete, Update, CommitListCompaction, Compact) require exclusive access:
/// no concurrent reader or writer. PlanListCompaction is const and may
/// overlap searches, but NOT writers (the plan would go stale -- commit
/// detects this and fails closed). SearchEngine layers the shared/exclusive
/// locking that upholds this contract for serving workloads.
class IvfRabitqIndex {
 public:
  /// Builds the index: KMeans into num_lists buckets, then RaBitQ-encode
  /// every vector against its bucket centroid.
  Status Build(const Matrix& data, const IvfConfig& ivf_config,
               const RabitqConfig& rabitq_config);

  /// Builds the index from an externally supplied clustering: `centroids`
  /// (L x dim) and `assignments` (data.rows() entries, each < L). Build is
  /// exactly RunKMeans + this. ShardedIndex uses it to give every shard the
  /// SAME centroid set (one global clustering), which is what makes the
  /// scatter-gather merge bit-identical to a single-shard index.
  /// Under kCosine, `data` rows must already be unit-normalized (Build and
  /// ShardedIndex normalize before clustering; zero rows must have been
  /// rejected by then) -- this method ingests them as-is.
  Status BuildFromClustering(const Matrix& data, Matrix centroids,
                             const std::uint32_t* assignments,
                             const RabitqConfig& rabitq_config,
                             Metric metric = Metric::kL2);

  /// Total ids ever assigned (including tombstoned ones); ids are dense in
  /// [0, size()).
  std::size_t size() const { return data_.rows(); }
  /// Number of non-deleted vectors.
  std::size_t live_size() const { return live_count_; }
  /// Tombstoned list entries not yet dropped by compaction. Counts stale
  /// Update entries too, so it can exceed size() - live_size().
  std::size_t num_tombstones() const { return num_tombstones_; }
  std::size_t dim() const { return data_.dim(); }
  std::size_t num_lists() const { return centroids_.rows(); }
  /// Distance space the index was built for; persisted by snapshot v3
  /// (v1/v2 snapshots load as kL2).
  Metric metric() const { return metric_; }
  const RabitqEncoder& encoder() const { return encoder_; }
  const Matrix& centroids() const { return centroids_; }
  const std::vector<std::uint32_t>& list_ids(std::size_t l) const {
    return lists_[l].ids;
  }
  const RabitqCodeStore& list_codes(std::size_t l) const {
    return lists_[l].codes;
  }
  /// Tombstoned entries in list `l`.
  std::size_t list_tombstones(std::size_t l) const {
    return lists_[l].num_dead;
  }
  /// True iff `id` was deleted (or never assigned).
  bool IsDeleted(std::uint32_t id) const {
    return id >= id_live_.size() || id_live_[id] == 0;
  }
  /// List holding the current entry of a LIVE id (stale for deleted ids).
  std::uint32_t list_of(std::uint32_t id) const { return id_to_list_[id]; }
  /// Raw vector of a live id (the re-ranking source of truth).
  const float* vector(std::uint32_t id) const { return data_.Row(id); }

  /// P^T c per list, precomputed at build time so the per-cluster query
  /// preparation is a subtract-and-scale (see PrepareQueryFromRotated).
  const Matrix& rotated_centroids() const { return rotated_centroids_; }

  /// Lists sorted ascending by centroid key to `query` (the probe order):
  /// squared centroid distance under kL2, negated centroid inner product
  /// under kInnerProduct/kCosine. Exposed for the distance-estimation
  /// benches.
  std::vector<std::uint32_t> ProbeOrder(const float* query) const;

  /// Probe order with the centroid keys attached.
  std::vector<std::pair<float, std::uint32_t>> ProbeOrderWithDistances(
      const float* query) const;

  /// Allocation-free variant writing the probe order into `*out`.
  void ProbeOrderInto(const float* query,
                      std::vector<std::pair<float, std::uint32_t>>* out) const;

  /// nprobe-aware variant: only the first min(nprobe, num_lists) entries of
  /// `*out` are sorted ascending (nth_element + sort of the prefix, O(L +
  /// nprobe log nprobe) instead of O(L log L)); entries past the prefix are
  /// in unspecified order. Because (distance, list id) pairs are totally
  /// ordered, the sorted prefix is exactly the full sort's prefix -- the
  /// search path (SearchWithScratch, and through it ShardedIndex and the
  /// engine) stays bit-identical while skipping the full sort.
  void ProbeOrderInto(const float* query, std::size_t nprobe,
                      std::vector<std::pair<float, std::uint32_t>>* out) const;

  /// Unified request API: k-NN over the LIVE vectors (tombstones skipped
  /// during candidate selection), restricted to request.options.filter when
  /// one is set -- the filter is folded into the scan's survivors mask, so
  /// excluded codes never reach re-ranking. The result is a pure function
  /// of (index, request): per probed list the query rounding is seeded by
  /// Rng(MixSeed(base, list_id)) where base is options.seed (0 when unset).
  ///
  /// Thread-safety: the query path is const and touches no mutable index
  /// state, so any number of threads may search one index concurrently.
  /// Searches must not overlap the mutators (see the class contract above);
  /// SearchEngine provides that coordination for serving workloads.
  SearchResponse Search(const SearchRequest& request) const;

#ifndef RABITQ_NO_DEPRECATED
  /// Legacy overloads, now thin shims over the request API (definitions in
  /// search_compat.h). `rng` supplies the base seed via one NextU64 draw;
  /// the seeded overload is the old spelling of options.seed.
  RABITQ_DEPRECATED("use Search(const SearchRequest&)")
  Status Search(const float* query, const IvfSearchParams& params, Rng* rng,
                std::vector<Neighbor>* out, IvfSearchStats* stats = nullptr) const;

  RABITQ_DEPRECATED("use Search(const SearchRequest&) with options.seed")
  Status Search(const float* query, const IvfSearchParams& params,
                std::uint64_t seed, std::vector<Neighbor>* out,
                IvfSearchStats* stats = nullptr) const;
#endif  // RABITQ_NO_DEPRECATED

  /// Search core with caller-owned workspace (the hot path of the serving
  /// engine). `rotated_query` optionally passes a precomputed P^T q
  /// (encoder().total_bits() floats, e.g. one row of the engine's batched
  /// rotation -- bit-identical to RotateQueryOnce by the Rotator contract);
  /// nullptr computes it into the scratch. Under kCosine the query is
  /// normalized WHERE it is rotated: when `rotated_query` is null this
  /// method normalizes (rejecting a zero-norm query); when non-null the
  /// caller guarantees `query` is already unit-normalized and `rotated_query`
  /// is its rotation -- never both, since re-normalizing an already
  /// normalized vector is not a bitwise no-op. `seed` is the per-query base of
  /// the per-list rounding seeds -- the explicit parameter wins over
  /// params.seed, which this level ignores (the layers above resolve it).
  /// params.filter, when active, is pushed into candidate selection; its
  /// ids are this index's LOCAL ids unless the filter carries an id map
  /// (see IdFilter::WithIdMap). `scratch` must be non-null and exclusive
  /// to this call for its duration.
  Status SearchWithScratch(const float* query, const float* rotated_query,
                           const IvfSearchParams& params, std::uint64_t seed,
                           IvfSearchScratch* scratch,
                           std::vector<Neighbor>* out,
                           IvfSearchStats* stats = nullptr) const;

  /// Appends one vector to the index after Build: encodes it against its
  /// nearest centroid and extends that list's packed layout by one slot --
  /// amortized O(1). The new vector's id (== previous size()) is returned
  /// through `id_out` when non-null.
  Status Add(const float* vec, std::uint32_t* id_out = nullptr);

  /// Tombstones `id`: it stops appearing in search results immediately; its
  /// code entry is reclaimed by the next compaction of its list. The raw
  /// row stays allocated (ids are append-only), so memory is bounded by ids
  /// ever assigned, not by the live count. NotFound if the id was never
  /// assigned or already deleted.
  Status Delete(std::uint32_t id);

  /// Replaces the vector of a live `id` in place: overwrites the raw row,
  /// tombstones the old list entry, and re-encodes into the list of the new
  /// nearest centroid. The id is stable across the update.
  Status Update(std::uint32_t id, const float* vec);

  /// Lists whose tombstone ratio (num_dead / entries) reaches `min_ratio`
  /// and whose num_dead is at least `min_dead` (compacting a 3-entry list
  /// over one tombstone is churn, not progress).
  std::vector<std::uint32_t> ListsNeedingCompaction(
      float min_ratio, std::size_t min_dead = 1) const;

  /// Builds a compacted replacement for one list into `*plan`. Const and
  /// allocation-contained: may run concurrently with searches (it only
  /// reads), but must not overlap writers.
  Status PlanListCompaction(std::uint32_t list_id,
                            IvfCompactionPlan* plan) const;

  /// Installs a plan: swaps in the compacted ids/codes, clears the list's
  /// tombstones and refreshes the id->position mapping. O(live entries of
  /// the list) -- the only step that needs exclusive access, so readers are
  /// blocked no longer than an epoch bump. FailedPrecondition if the list
  /// changed after the plan was built.
  Status CommitListCompaction(IvfCompactionPlan&& plan);

  /// Blocking convenience: plan+commit every list selected by
  /// ListsNeedingCompaction(min_ratio, min_dead). Requires exclusive access.
  Status Compact(float min_ratio = 0.0f, std::size_t min_dead = 1);

  /// Serializes the full index (raw vectors, centroids, codes, tombstones,
  /// per-code norms, the metric, bits_per_dim and -- for multi-bit stores --
  /// the extra code planes and their scale factors) in snapshot format v5
  /// ("RBQIVF05"): everything after the header is covered by a CRC-32
  /// footer. The write is crash-safe -- the blob goes to `<path>.tmp` and is
  /// renamed over `path` only after a clean close, so a crash mid-save
  /// leaves the previous snapshot intact. The rotation matrix itself is NOT
  /// stored: rotators are deterministic in (dim, bits, kind, seed), so Load
  /// re-derives it from the saved config -- the same trick the paper uses
  /// to never materialize the codebook.
  Status Save(const std::string& path) const;

  /// Restores an index written by Save into `*this`. Reads the current v5
  /// format (body verified against its CRC-32 footer; any mismatch fails
  /// closed with an IoError) plus the legacy v4 ("RBQIVF04", no checksum),
  /// v3 ("RBQIVF03", no bits_per_dim / multi-bit payload), v2 ("RBQIVF02",
  /// additionally no metric/norms) and v1 ("RBQIVF01", additionally no
  /// tombstones) formats; v1-v3 snapshots load with bits_per_dim = 1, and
  /// v1/v2 as Metric::kL2 -- the only choices that existed when they were
  /// written. Metric, rotator kind and bits_per_dim bytes are validated
  /// BEFORE the O(B^3) rotator rebuild so corrupt values fail closed
  /// cheaply.
  Status Load(const std::string& path);

 private:
  struct List {
    std::vector<std::uint32_t> ids;
    RabitqCodeStore codes;
    // Positional tombstones, parallel to `ids`: dead[p] == 1 marks a
    // deleted id or the stale pre-Update entry of a re-encoded id.
    std::vector<std::uint8_t> dead;
    std::size_t num_dead = 0;
    // Bumped on every mutation; pins compaction plans to a list state.
    std::uint64_t generation = 0;
  };

  /// Appends (id, code-of-vec) to the list of vec's nearest centroid and
  /// refreshes the id mapping; shared tail of Add and Update.
  Status AppendToNearestList(std::uint32_t id, const float* vec);

  /// Writes the snapshot blob itself (header, checksummed body, footer) to
  /// `path`; Save wraps this with the tmp-write + atomic-rename dance.
  Status SaveBody(const std::string& path) const;

  ChunkedVectorStore data_;   // raw vectors (for re-ranking)
  Metric metric_ = Metric::kL2;
  Matrix centroids_;          // num_lists x dim
  Matrix rotated_centroids_;  // num_lists x total_bits: P^T c per list
  RabitqEncoder encoder_;
  std::vector<List> lists_;

  // Per-id lifecycle state. id_to_list_/id_to_pos_ locate the CURRENT
  // (non-dead) entry of a live id; stale for deleted ids (guarded by
  // id_live_).
  std::vector<std::uint8_t> id_live_;
  std::vector<std::uint32_t> id_to_list_;
  std::vector<std::uint32_t> id_to_pos_;
  std::size_t live_count_ = 0;
  std::size_t num_tombstones_ = 0;
};

}  // namespace rabitq

// Deprecated-overload shim definitions (see search_compat.h for the scheme).
#define RABITQ_SEARCH_COMPAT_HAVE_IVF 1
#include "index/search_compat.h"

#endif  // RABITQ_INDEX_IVF_H_
