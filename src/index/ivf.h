// IVF + RaBitQ, the in-memory ANN pipeline of paper Section 4. The index
// phase KMeans-clusters the raw vectors, normalizes each vector against its
// cluster centroid (the paper's normalization instantiation), and stores
// per-cluster RaBitQ code stores. The query phase probes the nprobe nearest
// clusters, estimates distances from the codes (fast-scan batches by
// default), and re-ranks with exact distances under one of two policies:
//   * kErrorBound (RaBitQ): re-rank iff the eps0 lower bound beats the
//     current k-th best exact distance -- the tuning-free rule of Section 4.
//   * kFixedCandidates (PQ-style): keep the `rerank_candidates` smallest
//     estimates, then re-rank those -- the baseline knob of Section 5.
//   * kNone: rank purely by estimated distances (Fig. 10 ablation).

#ifndef RABITQ_INDEX_IVF_H_
#define RABITQ_INDEX_IVF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "index/brute_force.h"
#include "util/prng.h"

namespace rabitq {

struct IvfConfig {
  std::size_t num_lists = 256;
  KMeansConfig kmeans;  // num_clusters is overwritten with num_lists
};

enum class RerankPolicy {
  kErrorBound,       // paper Section 4, no tunable parameter
  kFixedCandidates,  // conventional top-R re-ranking
  kNone,             // rank by estimates only
};

struct IvfSearchParams {
  std::size_t k = 100;
  std::size_t nprobe = 16;
  RerankPolicy policy = RerankPolicy::kErrorBound;
  /// Only for kFixedCandidates: number of candidates re-ranked exactly.
  std::size_t rerank_candidates = 1000;
  /// Overrides the encoder's eps0 when >= 0 (Fig. 5 sweep).
  float epsilon0_override = -1.0f;
  /// Use the packed fast-scan batch estimator (true) or the bitwise
  /// single-code estimator (false).
  bool use_batch_estimator = true;
};

struct IvfSearchStats {
  std::size_t codes_estimated = 0;
  std::size_t candidates_reranked = 0;
  std::size_t lists_probed = 0;
};

/// Reusable workspace for SearchWithScratch. Buffers reach steady-state
/// capacity after the first few queries, after which searches stop touching
/// the allocator -- the serving engine keeps one scratch per worker thread.
/// A scratch must never be shared by concurrent callers.
struct IvfSearchScratch {
  std::vector<std::pair<float, std::uint32_t>> probe_order;
  std::vector<float> rotated_query;
  std::vector<float> est_buf;
  std::vector<float> lb_buf;
  std::vector<Neighbor> estimate_pool;
  QuantizedQuery query;
};

/// IVF index over RaBitQ codes. Keeps a copy of the raw vectors for exact
/// re-ranking, mirroring the paper's in-memory setting.
class IvfRabitqIndex {
 public:
  /// Builds the index: KMeans into num_lists buckets, then RaBitQ-encode
  /// every vector against its bucket centroid.
  Status Build(const Matrix& data, const IvfConfig& ivf_config,
               const RabitqConfig& rabitq_config);

  std::size_t size() const { return data_.rows(); }
  std::size_t dim() const { return data_.cols(); }
  std::size_t num_lists() const { return centroids_.rows(); }
  const RabitqEncoder& encoder() const { return encoder_; }
  const Matrix& centroids() const { return centroids_; }
  const std::vector<std::uint32_t>& list_ids(std::size_t l) const {
    return lists_[l].ids;
  }
  const RabitqCodeStore& list_codes(std::size_t l) const {
    return lists_[l].codes;
  }

  /// P^T c per list, precomputed at build time so the per-cluster query
  /// preparation is a subtract-and-scale (see PrepareQueryFromRotated).
  const Matrix& rotated_centroids() const { return rotated_centroids_; }

  /// Lists sorted ascending by centroid distance to `query` (the probe
  /// order); exposed for the distance-estimation benches.
  std::vector<std::uint32_t> ProbeOrder(const float* query) const;

  /// Probe order with the squared centroid distances attached.
  std::vector<std::pair<float, std::uint32_t>> ProbeOrderWithDistances(
      const float* query) const;

  /// Allocation-free variant writing the probe order into `*out`.
  void ProbeOrderInto(const float* query,
                      std::vector<std::pair<float, std::uint32_t>>* out) const;

  /// K-NN search. `rng` drives the randomized query quantization.
  ///
  /// Thread-safety contract: the query path is const and touches no mutable
  /// index state, so any number of threads may search one index concurrently
  /// -- provided each caller passes its OWN Rng (and scratch). Sharing one
  /// Rng across concurrent searches is a data race, and even a synchronized
  /// shared Rng would make results depend on thread scheduling. Searches
  /// must not overlap the writers (Add/Build/Load); SearchEngine provides
  /// that coordination for serving workloads.
  Status Search(const float* query, const IvfSearchParams& params, Rng* rng,
                std::vector<Neighbor>* out, IvfSearchStats* stats = nullptr) const;

  /// Rng-free search: seeds a fresh Rng(seed), making the result a pure
  /// function of (index, query, params, seed) -- safe to call from any
  /// number of threads with no shared state. The serving engine derives one
  /// seed per query from its base seed; this overload is the sequential
  /// reference that the engine's result-parity tests compare against.
  Status Search(const float* query, const IvfSearchParams& params,
                std::uint64_t seed, std::vector<Neighbor>* out,
                IvfSearchStats* stats = nullptr) const;

  /// Search core with caller-owned workspace (the hot path of the serving
  /// engine). `rotated_query` optionally passes a precomputed P^T q
  /// (encoder().total_bits() floats, e.g. one row of the engine's batched
  /// rotation -- bit-identical to RotateQueryOnce by the Rotator contract);
  /// nullptr computes it into the scratch. `scratch` must be non-null and
  /// exclusive to this call for its duration.
  Status SearchWithScratch(const float* query, const float* rotated_query,
                           const IvfSearchParams& params, Rng* rng,
                           IvfSearchScratch* scratch,
                           std::vector<Neighbor>* out,
                           IvfSearchStats* stats = nullptr) const;

  /// Appends one vector to the index after Build: encodes it against its
  /// nearest centroid and re-packs that list's batch layout (O(list size);
  /// suited to moderate trickle inserts, not bulk loads). The new vector's
  /// id (== previous size()) is returned through `id_out` when non-null.
  Status Add(const float* vec, std::uint32_t* id_out = nullptr);

  /// Serializes the full index (raw vectors, centroids, codes and the
  /// quantizer configuration). The rotation matrix itself is NOT stored:
  /// rotators are deterministic in (dim, bits, kind, seed), so Load
  /// re-derives it from the saved config -- the same trick the paper uses
  /// to never materialize the codebook.
  Status Save(const std::string& path) const;

  /// Restores an index written by Save into `*this`.
  Status Load(const std::string& path);

 private:
  struct List {
    std::vector<std::uint32_t> ids;
    RabitqCodeStore codes;
  };

  Matrix data_;               // raw vectors (for re-ranking)
  Matrix centroids_;          // num_lists x dim
  Matrix rotated_centroids_;  // num_lists x total_bits: P^T c per list
  RabitqEncoder encoder_;
  std::vector<List> lists_;
};

}  // namespace rabitq

#endif  // RABITQ_INDEX_IVF_H_
