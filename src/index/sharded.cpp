#include "index/sharded.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <thread>
#include <utility>

#include "cluster/kmeans.h"
#include "linalg/vector_ops.h"
#include "util/failpoint.h"
#include "util/serialize.h"

namespace rabitq {

namespace {

// Readable manifest formats, newest first; Save always writes
// kManifestMagics[0]. Manifest v2 adds the metric (a u32 right after the
// header, validated before the shard blobs are touched); v1 manifests
// predate non-L2 metrics and load as kL2.
constexpr char kManifestMagics[][8] = {
    {'R', 'B', 'Q', 'S', 'H', 'R', 'D', '2'},
    {'R', 'B', 'Q', 'S', 'H', 'R', 'D', '1'}};
constexpr std::uint32_t kManifestVersions[] = {2, 1};
constexpr std::uint32_t kManifestVersionV2 = 2;
static_assert(std::size(kManifestMagics) == std::size(kManifestVersions),
              "every readable manifest magic needs its version");

std::string ManifestPath(const std::string& dir) { return dir + "/MANIFEST"; }

std::string ShardBlobPath(const std::string& dir, std::size_t s) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard_%04zu.rbq", s);
  return dir + "/" + name;
}

/// Runs fn(s) for every shard in [0, n) across up to `hardware` threads.
/// Statuses land in st[s]; the caller surfaces the first error.
void ForEachShardParallel(std::size_t n,
                          const std::function<Status(std::size_t)>& fn,
                          std::vector<Status>* st) {
  st->assign(n, Status::Ok());
  const std::size_t threads = std::min<std::size_t>(
      n, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (std::size_t s = t; s < n; s += threads) (*st)[s] = fn(s);
    });
  }
  for (auto& thread : pool) thread.join();
}

Status FirstError(const std::vector<Status>& st) {
  for (const Status& s : st) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

ShardedIndex ShardedIndex::FromSingle(IvfRabitqIndex&& index) {
  ShardedIndex out;
  auto shard = std::make_unique<IvfRabitqIndex>(std::move(index));
  const std::size_t n = shard->size();
  out.shards_.push_back(std::move(shard));
  out.next_id_ = static_cast<std::uint32_t>(n);
  out.id_shard_.assign(n, 0);
  out.id_local_.resize(n);
  out.local_to_global_.resize(1);
  out.local_to_global_[0].resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.id_local_[i] = static_cast<std::uint32_t>(i);
    out.local_to_global_[0][i] = static_cast<std::uint32_t>(i);
  }
  return out;
}

Status ShardedIndex::Build(const Matrix& data, const ShardedConfig& config) {
  const std::size_t S = config.num_shards;
  if (S == 0 || S > kMaxShards) {
    return Status::InvalidArgument("shard count out of range");
  }
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  if (data.rows() < S) {
    return Status::InvalidArgument("fewer vectors than shards");
  }
  RABITQ_RETURN_IF_ERROR(ValidateMetric(config.ivf.metric));
  // Reset to the unbuilt state up front and only commit the new shards on
  // success: a failed (re)build must leave an empty index, never stale id
  // maps pointing into a differently-sized or half-built shard vector.
  shards_.clear();
  next_id_ = 0;
  id_shard_.clear();
  id_local_.clear();
  local_to_global_.clear();

  // Cosine stores unit vectors. Under kShared the shards encode through
  // BuildFromClustering, which expects pre-normalized rows, so normalize
  // BEFORE the partition copies; under kPerShard each shard's own Build
  // normalizes its slice.
  Matrix normalized;
  const Matrix* source = &data;
  if (config.ivf.metric == Metric::kCosine &&
      config.clustering == ShardClustering::kShared) {
    normalized = data;
    for (std::size_t g = 0; g < normalized.rows(); ++g) {
      if (NormalizeInPlace(normalized.Row(g), normalized.cols()) == 0.0f) {
        return Status::InvalidArgument("zero-norm vector under cosine metric");
      }
    }
    source = &normalized;
  }

  // Round-robin partition: global id g -> (shard g % S, local g / S).
  std::vector<Matrix> shard_data(S);
  for (std::size_t s = 0; s < S; ++s) {
    const std::size_t rows = (data.rows() - s + S - 1) / S;
    shard_data[s].Reset(rows, data.cols());
  }
  for (std::size_t g = 0; g < data.rows(); ++g) {
    std::copy_n(source->Row(g), data.cols(), shard_data[g % S].Row(g / S));
  }

  std::vector<std::unique_ptr<IvfRabitqIndex>> shards;
  for (std::size_t s = 0; s < S; ++s) {
    shards.push_back(std::make_unique<IvfRabitqIndex>());
  }

  std::vector<Status> st;
  if (config.clustering == ShardClustering::kShared) {
    // One global clustering; every shard encodes against the same
    // centroids, which is what makes scatter-gather bit-identical to the
    // single-shard index (same codes, same per-list query rounding).
    KMeansConfig kmeans = config.ivf.kmeans;
    kmeans.num_clusters = std::min(config.ivf.num_lists, data.rows());
    KMeansResult clustering;
    RABITQ_RETURN_IF_ERROR(RunKMeans(*source, kmeans, &clustering));
    std::vector<std::vector<std::uint32_t>> shard_assign(S);
    for (std::size_t s = 0; s < S; ++s) {
      shard_assign[s].reserve(shard_data[s].rows());
    }
    for (std::size_t g = 0; g < data.rows(); ++g) {
      shard_assign[g % S].push_back(clustering.assignments[g]);
    }
    const Matrix& centroids = clustering.centroids;
    ForEachShardParallel(
        S,
        [&](std::size_t s) {
          Matrix copy = centroids;
          return shards[s]->BuildFromClustering(
              shard_data[s], std::move(copy), shard_assign[s].data(),
              config.rabitq, config.ivf.metric);
        },
        &st);
  } else {
    // Independent per-shard clustering: S smaller KMeans runs in parallel,
    // the build-time win of partitioned RaBitQ deployments.
    ForEachShardParallel(
        S,
        [&](std::size_t s) {
          return shards[s]->Build(shard_data[s], config.ivf, config.rabitq);
        },
        &st);
  }
  RABITQ_RETURN_IF_ERROR(FirstError(st));

  shards_ = std::move(shards);
  next_id_ = static_cast<std::uint32_t>(data.rows());
  id_shard_.resize(data.rows());
  id_local_.resize(data.rows());
  local_to_global_.assign(S, {});
  for (std::size_t g = 0; g < data.rows(); ++g) {
    id_shard_[g] = static_cast<std::uint32_t>(g % S);
    id_local_[g] = static_cast<std::uint32_t>(g / S);
    local_to_global_[g % S].push_back(static_cast<std::uint32_t>(g));
  }
  return Status::Ok();
}

std::size_t ShardedIndex::size() const {
  std::lock_guard<std::mutex> lock(*id_mutex_);
  return next_id_;
}

std::size_t ShardedIndex::live_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->live_size();
  return total;
}

std::size_t ShardedIndex::num_tombstones() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->num_tombstones();
  return total;
}

bool ShardedIndex::IsDeleted(std::uint32_t id) const {
  std::uint32_t s = 0, local = 0;
  {
    std::lock_guard<std::mutex> lock(*id_mutex_);
    if (id >= next_id_ || id_local_[id] == kPendingLocal) return true;
    s = id_shard_[id];
    local = id_local_[id];
  }
  return shards_[s]->IsDeleted(local);
}

const float* ShardedIndex::vector(std::uint32_t id) const {
  std::uint32_t s = 0, local = 0;
  {
    std::lock_guard<std::mutex> lock(*id_mutex_);
    s = id_shard_[id];
    local = id_local_[id];
  }
  return shards_[s]->vector(local);
}

bool ShardedIndex::TryShardOf(std::uint32_t id, std::uint32_t* shard) const {
  std::lock_guard<std::mutex> lock(*id_mutex_);
  if (id >= next_id_) return false;
  *shard = id_shard_[id];
  return true;
}

std::uint32_t ShardedIndex::local_of(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(*id_mutex_);
  return id_local_[id];
}

SearchResponse ShardedIndex::Search(const SearchRequest& request) const {
  SearchResponse response;
  ShardedSearchScratch scratch;
  SearchOptions options = request.options;
  options.ResolveDeadline(std::chrono::steady_clock::now());
  ShardMergeInfo info;
  response.status = SearchWithScratch(
      request.query, nullptr, options, options.seed.value_or(0), &scratch,
      &response.neighbors, &response.stats, &info);
  response.partial = info.partial;
  response.shards_ok = info.shards_ok;
  response.shards_failed = info.shards_failed;
  return response;
}

Status ShardedIndex::SearchWithScratch(const float* query,
                                       const float* rotated_query,
                                       const IvfSearchParams& params,
                                       std::uint64_t seed,
                                       ShardedSearchScratch* scratch,
                                       std::vector<Neighbor>* out,
                                       IvfSearchStats* stats,
                                       ShardMergeInfo* info) const {
  if (out == nullptr || scratch == nullptr) {
    return Status::InvalidArgument("null output/scratch");
  }
  if (query == nullptr) return Status::InvalidArgument("null query");
  if (params.k == 0) return Status::InvalidArgument("k must be positive");
  if (shards_.empty()) return Status::FailedPrecondition("index not built");
  if (rotated_query == nullptr) {
    // Normalize where we rotate (the IvfRabitqIndex contract): a caller
    // that pre-rotated the query guarantees it was already normalized.
    if (metric() == Metric::kCosine) {
      scratch->norm_query.assign(query, query + dim());
      if (NormalizeInPlace(scratch->norm_query.data(), dim()) == 0.0f) {
        return Status::InvalidArgument("zero-norm query under cosine metric");
      }
      query = scratch->norm_query.data();
    }
    scratch->rotated_query.resize(encoder().total_bits());
    RotateQueryOnce(encoder(), query, scratch->rotated_query.data());
    rotated_query = scratch->rotated_query.data();
  }
  const std::size_t S = shards_.size();
  scratch->shard_results.resize(S);
  scratch->shard_stats.assign(S, IvfSearchStats{});
  scratch->shard_statuses.assign(S, Status::Ok());
  for (std::size_t s = 0; s < S; ++s) {
    Status& shard_status = scratch->shard_statuses[s];
    shard_status = SearchShard(s, query, rotated_query, params, seed,
                               &scratch->shard_scratch,
                               &scratch->shard_results[s],
                               &scratch->shard_stats[s]);
    if (!shard_status.ok() &&
        shard_status.code() != StatusCode::kDeadlineExceeded) {
      // A hard-failed shard may have bailed before writing its output slot;
      // drop whatever a previous query left there so the merge (which also
      // skips failed shards) can never see stale neighbors.
      scratch->shard_results[s].clear();
    }
  }
  // The per-shard scans above recorded their own spans through
  // shard_scratch.trace (when the caller set one); the gather is the merge
  // stage. The engine's scatter path times its merge chunks the same way.
  obs::ScopedSpan merge_span(scratch->shard_scratch.trace, obs::Stage::kMerge);
  return MergeShardResults(query, params, scratch->shard_results.data(),
                           scratch->shard_stats.data(), scratch, out, stats,
                           scratch->shard_statuses.data(), info);
}

Status ShardedIndex::SearchShard(std::size_t shard, const float* query,
                                 const float* rotated_query,
                                 const IvfSearchParams& params,
                                 std::uint64_t seed, IvfSearchScratch* scratch,
                                 std::vector<Neighbor>* out,
                                 IvfSearchStats* stats) const {
  RABITQ_FAILPOINT("sharded.search_shard",
                   return Status::Internal("injected shard failure"));
  IvfSearchParams shard_params = params;
  if (params.policy == RerankPolicy::kFixedCandidates) {
    // Gather estimates only; the merge selects the globally best
    // max(k, R) of them and re-ranks exactly -- a budget split
    // proportional to per-shard candidate quality.
    shard_params.policy = RerankPolicy::kNone;
    shard_params.k = std::max(params.k, params.rerank_candidates);
  }
  if (params.filter.active()) {
    // Per-shard filter slicing: the caller's filter speaks GLOBAL ids, the
    // shard scan produces LOCAL ids; rebinding through this shard's
    // local->global map keeps the pushdown inside the scan. The map only
    // grows under the shard's exclusive lock, which the caller's shared
    // lock excludes for the duration of this search.
    shard_params.filter =
        params.filter.WithIdMap(local_to_global_[shard].data());
  }
  return shards_[shard]->SearchWithScratch(query, rotated_query, shard_params,
                                           seed, scratch, out, stats);
}

Status ShardedIndex::MergeShardResults(const float* query,
                                       const IvfSearchParams& params,
                                       const std::vector<Neighbor>* shard_results,
                                       const IvfSearchStats* shard_stats,
                                       ShardedSearchScratch* scratch,
                                       std::vector<Neighbor>* out,
                                       IvfSearchStats* stats,
                                       const Status* shard_statuses,
                                       ShardMergeInfo* info) const {
  if (out == nullptr || scratch == nullptr) {
    return Status::InvalidArgument("null output/scratch");
  }
  if (params.k == 0) return Status::InvalidArgument("k must be positive");
  const std::size_t S = shards_.size();

  // Per-shard degradation tallies. A deadline-exceeded shard still counts
  // as ok (its partial candidates merge below); only hard failures are
  // excluded outright.
  ShardMergeInfo local_info;
  bool any_deadline = false;
  Status first_failure = Status::Ok();
  const auto hard_failed = [&](std::size_t s) {
    return shard_statuses != nullptr && !shard_statuses[s].ok() &&
           shard_statuses[s].code() != StatusCode::kDeadlineExceeded;
  };
  for (std::size_t s = 0; s < S; ++s) {
    if (hard_failed(s)) {
      ++local_info.shards_failed;
      local_info.partial = true;
      if (first_failure.ok()) first_failure = shard_statuses[s];
    } else {
      ++local_info.shards_ok;
      if (shard_statuses != nullptr &&
          shard_statuses[s].code() == StatusCode::kDeadlineExceeded) {
        any_deadline = true;
        local_info.partial = true;
      }
    }
  }

  auto& cands = scratch->cands;
  cands.clear();
  for (std::size_t s = 0; s < S; ++s) {
    if (hard_failed(s)) continue;
    for (const Neighbor& nb : shard_results[s]) {
      cands.push_back({nb.first, local_to_global_[s][nb.second],
                       shards_[s]->vector(nb.second)});
    }
  }
  // (key, global id) order: deterministic under duplicate keys, and -- for
  // build-order ids -- identical to the order a single-shard scan sorts its
  // candidate pool into.
  std::sort(cands.begin(), cands.end(),
            [](const ShardedSearchScratch::MergeCand& a,
               const ShardedSearchScratch::MergeCand& b) {
              return a.key != b.key ? a.key < b.key : a.gid < b.gid;
            });

  IvfSearchStats agg;
  if (shard_stats != nullptr) {
    for (std::size_t s = 0; s < S; ++s) {
      if (hard_failed(s)) continue;
      agg.codes_estimated += shard_stats[s].codes_estimated;
      agg.candidates_reranked += shard_stats[s].candidates_reranked;
      agg.lists_probed += shard_stats[s].lists_probed;
      agg.codes_filtered += shard_stats[s].codes_filtered;
      agg.codes_refined += shard_stats[s].codes_refined;
      agg.rerank_bound_violations += shard_stats[s].rerank_bound_violations;
      agg.rerank_health_samples += shard_stats[s].rerank_health_samples;
      agg.rerank_signed_err_sum += shard_stats[s].rerank_signed_err_sum;
      agg.rerank_tightness_sum += shard_stats[s].rerank_tightness_sum;
    }
  }

  if (params.policy == RerankPolicy::kFixedCandidates) {
    // The globally best max(k, R) estimates, re-ranked exactly -- the same
    // candidate set (and, with deterministic ties, the same result) as the
    // single-shard kFixedCandidates path.
    const std::size_t keep =
        std::min(std::max(params.rerank_candidates, params.k), cands.size());
    TopKHeap heap(params.k);
    const std::size_t d = dim();
    for (std::size_t i = 0; i < keep; ++i) {
      heap.Push(MetricDistance(metric(), cands[i].vec, query, d),
                cands[i].gid);
    }
    *out = heap.ExtractSorted();
    agg.candidates_reranked += keep;
  } else {
    // kErrorBound carries exact distances, kNone carries estimates; both
    // merge to the k globally smallest keys.
    const std::size_t keep = std::min(params.k, cands.size());
    out->resize(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      (*out)[i] = {cands[i].key, cands[i].gid};
    }
  }
  if (stats != nullptr) *stats = agg;
  if (info != nullptr) *info = local_info;
  // Degraded-but-useful beats failed: only an all-shards-down fan-out
  // surfaces the shard error itself. A deadline anywhere dominates hard
  // failures -- the caller asked for time bounds and got partial results.
  if (any_deadline) {
    return Status::DeadlineExceeded("query deadline exceeded mid-scan");
  }
  if (local_info.shards_failed > 0 && local_info.shards_ok == 0) {
    return first_failure;
  }
  return Status::Ok();
}

Status ShardedIndex::Add(const float* vec, std::uint32_t* id_out) {
  std::uint32_t id = 0, shard = 0;
  RABITQ_RETURN_IF_ERROR(ReserveId(&id, &shard));
  RABITQ_RETURN_IF_ERROR(CompleteAdd(id, shard, vec));
  if (id_out != nullptr) *id_out = id;
  return Status::Ok();
}

Status ShardedIndex::ReserveId(std::uint32_t* id_out,
                               std::uint32_t* shard_out) {
  if (id_out == nullptr || shard_out == nullptr) {
    return Status::InvalidArgument("null outputs");
  }
  if (shards_.empty()) return Status::FailedPrecondition("index not built");
  std::lock_guard<std::mutex> lock(*id_mutex_);
  const std::uint32_t id = next_id_++;
  id_shard_.push_back(id % static_cast<std::uint32_t>(shards_.size()));
  id_local_.push_back(kPendingLocal);
  *id_out = id;
  *shard_out = id_shard_.back();
  return Status::Ok();
}

Status ShardedIndex::CompleteAdd(std::uint32_t id, std::uint32_t shard,
                                 const float* vec) {
  if (shard >= shards_.size()) return Status::InvalidArgument("bad shard");
  IvfRabitqIndex& target = *shards_[shard];
  const std::size_t before = target.size();
  std::uint32_t local = 0;
  const Status status = target.Add(vec, &local);
  if (target.size() > before) {
    // The shard assigned a local slot (even on a failed append the raw row
    // exists and stays dead); keep the maps in lock-step with it.
    local_to_global_[shard].push_back(id);
    std::lock_guard<std::mutex> lock(*id_mutex_);
    id_local_[id] = static_cast<std::uint32_t>(before);
  }
  return status;
}

Status ShardedIndex::Delete(std::uint32_t id) {
  std::uint32_t s = 0, local = 0;
  {
    std::lock_guard<std::mutex> lock(*id_mutex_);
    if (id >= next_id_ || id_local_[id] == kPendingLocal) {
      return Status::NotFound("id not live");
    }
    s = id_shard_[id];
    local = id_local_[id];
  }
  return shards_[s]->Delete(local);
}

Status ShardedIndex::Update(std::uint32_t id, const float* vec) {
  std::uint32_t s = 0, local = 0;
  {
    std::lock_guard<std::mutex> lock(*id_mutex_);
    if (id >= next_id_ || id_local_[id] == kPendingLocal) {
      return Status::NotFound("id not live");
    }
    s = id_shard_[id];
    local = id_local_[id];
  }
  // IvfRabitqIndex::Update keeps the local id stable, so the maps and the
  // shard assignment (a pure function of the global id) are untouched.
  return shards_[s]->Update(local, vec);
}

Status ShardedIndex::Compact(float min_ratio, std::size_t min_dead) {
  for (auto& shard : shards_) {
    RABITQ_RETURN_IF_ERROR(shard->Compact(min_ratio, min_dead));
  }
  return Status::Ok();
}

Status ShardedIndex::Save(const std::string& path) const {
  if (shards_.empty()) return Status::FailedPrecondition("index not built");
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IoError("cannot create snapshot directory " + path);
  }
  // Phase 1: write the manifest and every shard blob under temporary
  // names. A crash or write fault anywhere in this phase leaves a previous
  // snapshot in `path` fully intact.
  const std::string manifest_tmp = ManifestPath(path) + ".tmp";
  Status status = [&]() -> Status {
    std::unique_ptr<BinaryWriter> writer;
    RABITQ_RETURN_IF_ERROR(BinaryWriter::Open(manifest_tmp, &writer));
    RABITQ_RETURN_IF_ERROR(
        WriteHeader(writer.get(), kManifestMagics[0], kManifestVersions[0]));
    RABITQ_RETURN_IF_ERROR(writer->WriteU32(static_cast<std::uint32_t>(metric())));
    RABITQ_RETURN_IF_ERROR(writer->WriteU64(shards_.size()));
    RABITQ_RETURN_IF_ERROR(writer->WriteU64(dim()));
    RABITQ_RETURN_IF_ERROR(writer->WriteU64(next_id_));
    for (const auto& map : local_to_global_) {
      RABITQ_RETURN_IF_ERROR(writer->WriteArray(map.data(), map.size()));
    }
    return writer->Close();
  }();
  if (status.ok()) {
    std::vector<Status> st;
    ForEachShardParallel(
        shards_.size(),
        [&](std::size_t s) {
          // IvfRabitqIndex::Save is itself write-then-rename, so each .new
          // blob only appears once fully written and checksummed.
          return shards_[s]->Save(ShardBlobPath(path, s) + ".new");
        },
        &st);
    status = FirstError(st);
  }
  // Phase 2: publish -- blobs first, manifest last. Renaming the manifest
  // is the commit point; until then a reader's Load sees the old snapshot.
  for (std::size_t s = 0; s < shards_.size() && status.ok(); ++s) {
    const std::string blob = ShardBlobPath(path, s);
    const std::string tmp = blob + ".new";
    if (std::rename(tmp.c_str(), blob.c_str()) != 0) {
      status = Status::IoError("cannot rename '" + tmp + "' to '" + blob + "'");
    }
  }
  if (status.ok() &&
      std::rename(manifest_tmp.c_str(), ManifestPath(path).c_str()) != 0) {
    status = Status::IoError("cannot publish manifest for " + path);
  }
  if (!status.ok()) {
    std::remove(manifest_tmp.c_str());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::remove((ShardBlobPath(path, s) + ".new").c_str());
    }
  }
  return status;
}

Status ShardedIndex::Load(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::is_directory(path, ec)) {
    // Single-file v1/v2 snapshot -> 1-shard configuration.
    IvfRabitqIndex single;
    RABITQ_RETURN_IF_ERROR(single.Load(path));
    *this = FromSingle(std::move(single));
    return Status::Ok();
  }

  std::uint64_t num_shards = 0, dim = 0, next_id = 0;
  Metric manifest_metric = Metric::kL2;
  std::vector<std::vector<std::uint32_t>> maps;
  {
    std::unique_ptr<BinaryReader> reader;
    RABITQ_RETURN_IF_ERROR(BinaryReader::Open(ManifestPath(path), &reader));
    std::size_t format = 0;
    RABITQ_RETURN_IF_ERROR(ExpectHeaderOneOf(reader.get(), kManifestMagics,
                                             kManifestVersions,
                                             std::size(kManifestMagics),
                                             &format));
    if (kManifestVersions[format] >= kManifestVersionV2) {
      // Validated before anything else is read -- a corrupt metric fails
      // closed without touching the (much larger) shard blobs.
      std::uint32_t metric_raw = 0;
      RABITQ_RETURN_IF_ERROR(reader->ReadU32(&metric_raw));
      if (metric_raw > kMaxMetricValue) {
        return Status::IoError("corrupt manifest metric");
      }
      manifest_metric = static_cast<Metric>(metric_raw);
    }
    RABITQ_RETURN_IF_ERROR(ValidateMetric(manifest_metric));
    RABITQ_RETURN_IF_ERROR(reader->ReadU64(&num_shards));
    if (num_shards == 0 || num_shards > kMaxShards) {
      return Status::IoError("corrupt shard count");
    }
    RABITQ_RETURN_IF_ERROR(reader->ReadU64(&dim));
    if (dim == 0 || dim > (1u << 20)) return Status::IoError("corrupt dim");
    RABITQ_RETURN_IF_ERROR(reader->ReadU64(&next_id));
    if (next_id > 0xFFFFFFFFull) return Status::IoError("corrupt id count");
    maps.resize(num_shards);
    for (std::uint64_t s = 0; s < num_shards; ++s) {
      RABITQ_RETURN_IF_ERROR(
          (reader->ReadArray<std::uint32_t>(&maps[s], next_id)));
    }
  }

  std::vector<std::unique_ptr<IvfRabitqIndex>> shards(num_shards);
  std::vector<Status> st;
  ForEachShardParallel(
      num_shards,
      [&](std::size_t s) {
        shards[s] = std::make_unique<IvfRabitqIndex>();
        return shards[s]->Load(ShardBlobPath(path, s));
      },
      &st);
  RABITQ_RETURN_IF_ERROR(FirstError(st));
  for (std::uint64_t s = 0; s < num_shards; ++s) {
    if (shards[s]->dim() != dim) {
      return Status::IoError("shard dim mismatch with manifest");
    }
    if (shards[s]->metric() != manifest_metric) {
      return Status::IoError("shard metric mismatch with manifest");
    }
    if (shards[s]->size() != maps[s].size()) {
      return Status::IoError("shard size mismatch with manifest id map");
    }
    if (shards[s]->encoder().total_bits() != shards[0]->encoder().total_bits()) {
      return Status::IoError("shard code width mismatch");
    }
    if (shards[s]->encoder().config().bits_per_dim !=
        shards[0]->encoder().config().bits_per_dim) {
      return Status::IoError("shard bits_per_dim mismatch");
    }
  }
  // The id maps must cover the id space exactly; checked by size here so a
  // corrupt next_id fails closed BEFORE RebuildIdMaps sizes its tables to
  // it, and by bijection below.
  std::uint64_t mapped = 0;
  for (const auto& map : maps) mapped += map.size();
  if (mapped != next_id) {
    return Status::IoError("id maps do not cover the id space");
  }

  shards_ = std::move(shards);
  next_id_ = static_cast<std::uint32_t>(next_id);
  local_to_global_ = std::move(maps);
  return RebuildIdMaps();
}

Status ShardedIndex::RebuildIdMaps() {
  id_shard_.assign(next_id_, 0);
  id_local_.assign(next_id_, kPendingLocal);
  std::vector<std::uint8_t> seen(next_id_, 0);
  for (std::size_t s = 0; s < local_to_global_.size(); ++s) {
    for (std::size_t l = 0; l < local_to_global_[s].size(); ++l) {
      const std::uint32_t gid = local_to_global_[s][l];
      if (gid >= next_id_) return Status::IoError("id map entry out of range");
      if (seen[gid]) return Status::IoError("global id mapped twice");
      seen[gid] = 1;
      id_shard_[gid] = static_cast<std::uint32_t>(s);
      id_local_[gid] = static_cast<std::uint32_t>(l);
    }
  }
  for (std::uint32_t gid = 0; gid < next_id_; ++gid) {
    if (!seen[gid]) return Status::IoError("global id unmapped");
  }
  return Status::Ok();
}

}  // namespace rabitq
