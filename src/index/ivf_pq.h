// IVF + PQ/OPQ baselines (paper Section 5 protocol): the same coarse
// clustering as IvfRabitqIndex, with conventional quantization codes in the
// lists. Two execution modes mirror the paper's implementation families:
//   * bits = 8: "x8-single" -- ADC via float LUTs looked up in RAM.
//   * bits = 4: "x4fs-batch" -- LUTs quantized to u8 and searched with the
//     SIMD fast-scan kernel, 32 codes at a time.
// Re-ranking uses the fixed-candidate-count policy with the paper's
// tunable `rerank_candidates` knob (500/1000/2500 in Fig. 4).

#ifndef RABITQ_INDEX_IVF_PQ_H_
#define RABITQ_INDEX_IVF_PQ_H_

#include <cstdint>
#include <vector>

#include "index/brute_force.h"
#include "index/ivf.h"
#include "quant/opq.h"
#include "quant/pq.h"

namespace rabitq {

struct IvfPqConfig {
  IvfConfig ivf;
  /// Quantizer configuration; `pq.bits` selects the execution mode.
  PqConfig pq;
  /// Train the OPQ rotation on top of PQ.
  bool use_opq = false;
  /// OPQ-specific knobs (pq field inside is ignored; `pq` above is used).
  int opq_iterations = 8;
  std::size_t opq_max_training_points = 20000;
};

struct IvfPqSearchParams {
  std::size_t k = 100;
  std::size_t nprobe = 16;
  /// Candidates re-ranked with exact distances; 0 = no re-ranking
  /// (rank by estimates, Fig. 10 ablation).
  std::size_t rerank_candidates = 1000;
};

/// IVF index over PQ or OPQ codes.
class IvfPqIndex {
 public:
  Status Build(const Matrix& data, const IvfPqConfig& config);

  std::size_t size() const { return data_.rows(); }
  std::size_t dim() const { return data_.cols(); }
  std::size_t num_lists() const { return centroids_.rows(); }
  bool use_opq() const { return config_.use_opq; }
  std::size_t code_bits() const;
  const std::vector<std::uint32_t>& list_ids(std::size_t l) const {
    return lists_[l].ids;
  }

  std::vector<std::uint32_t> ProbeOrder(const float* query) const;

  Status Search(const float* query, const IvfPqSearchParams& params,
                std::vector<Neighbor>* out,
                IvfSearchStats* stats = nullptr) const;

  /// Estimates distances for every code in list `l` (bench hook; uses the
  /// mode matching `pq.bits`). `luts` etc. must come from PrepareQueryLuts.
  struct QueryLuts {
    AlignedVector<float> float_luts;
    AlignedVector<std::uint8_t> u8_luts;  // bits == 4 only
    float scale = 1.0f;
    float bias_sum = 0.0f;
  };
  void PrepareQueryLuts(const float* query, QueryLuts* luts) const;
  void EstimateList(std::size_t l, const QueryLuts& luts,
                    std::vector<float>* estimates) const;

 private:
  struct List {
    std::vector<std::uint32_t> ids;
    std::vector<std::uint8_t> codes;  // n x M unpacked
    FastScanCodes packed;             // bits == 4 only
  };

  IvfPqConfig config_;
  Matrix data_;
  Matrix centroids_;
  ProductQuantizer pq_;
  OptimizedProductQuantizer opq_;
  std::vector<List> lists_;
};

}  // namespace rabitq

#endif  // RABITQ_INDEX_IVF_PQ_H_
