#include "index/ivf.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numeric>

#include "linalg/vector_ops.h"
#include "util/thread_pool.h"

namespace rabitq {

Status IvfRabitqIndex::Build(const Matrix& data, const IvfConfig& ivf_config,
                             const RabitqConfig& rabitq_config) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  data_ = data;

  KMeansConfig kmeans = ivf_config.kmeans;
  kmeans.num_clusters = std::min(ivf_config.num_lists, data.rows());
  KMeansResult clustering;
  RABITQ_RETURN_IF_ERROR(RunKMeans(data_, kmeans, &clustering));
  centroids_ = std::move(clustering.centroids);

  RABITQ_RETURN_IF_ERROR(encoder_.Init(data.cols(), rabitq_config));

  // Precompute P^T c per list (shares the query rotation across clusters).
  rotated_centroids_.Reset(centroids_.rows(), encoder_.total_bits());
  for (std::size_t l = 0; l < centroids_.rows(); ++l) {
    encoder_.rotator().InverseRotate(centroids_.Row(l),
                                     rotated_centroids_.Row(l));
  }

  // Bucket membership, then per-list encoding (parallel across lists).
  lists_.assign(centroids_.rows(), List{});
  for (std::size_t i = 0; i < data_.rows(); ++i) {
    lists_[clustering.assignments[i]].ids.push_back(
        static_cast<std::uint32_t>(i));
  }
  Status worker_status = Status::Ok();
  std::mutex status_mutex;
  GlobalThreadPool().ParallelFor(
      lists_.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t l = begin; l < end; ++l) {
          List& list = lists_[l];
          list.codes.Init(encoder_.total_bits());
          list.codes.Reserve(list.ids.size());
          for (const std::uint32_t id : list.ids) {
            const Status s = encoder_.EncodeAppend(data_.Row(id),
                                                   centroids_.Row(l),
                                                   &list.codes);
            if (!s.ok()) {
              std::lock_guard<std::mutex> lock(status_mutex);
              worker_status = s;
              return;
            }
          }
          if (!list.ids.empty()) list.codes.Finalize();
        }
      },
      /*min_chunk=*/1);
  return worker_status;
}

void IvfRabitqIndex::ProbeOrderInto(
    const float* query,
    std::vector<std::pair<float, std::uint32_t>>* out) const {
  out->resize(centroids_.rows());
  for (std::size_t l = 0; l < centroids_.rows(); ++l) {
    (*out)[l] = {L2SqrDistance(query, centroids_.Row(l), dim()),
                 static_cast<std::uint32_t>(l)};
  }
  std::sort(out->begin(), out->end());
}

std::vector<std::pair<float, std::uint32_t>>
IvfRabitqIndex::ProbeOrderWithDistances(const float* query) const {
  std::vector<std::pair<float, std::uint32_t>> by_dist;
  ProbeOrderInto(query, &by_dist);
  return by_dist;
}

std::vector<std::uint32_t> IvfRabitqIndex::ProbeOrder(
    const float* query) const {
  const auto by_dist = ProbeOrderWithDistances(query);
  std::vector<std::uint32_t> order(by_dist.size());
  for (std::size_t i = 0; i < by_dist.size(); ++i) order[i] = by_dist[i].second;
  return order;
}

Status IvfRabitqIndex::Search(const float* query, const IvfSearchParams& params,
                              Rng* rng, std::vector<Neighbor>* out,
                              IvfSearchStats* stats) const {
  IvfSearchScratch scratch;
  return SearchWithScratch(query, nullptr, params, rng, &scratch, out, stats);
}

Status IvfRabitqIndex::Search(const float* query, const IvfSearchParams& params,
                              std::uint64_t seed, std::vector<Neighbor>* out,
                              IvfSearchStats* stats) const {
  Rng rng(seed);
  IvfSearchScratch scratch;
  return SearchWithScratch(query, nullptr, params, &rng, &scratch, out, stats);
}

Status IvfRabitqIndex::SearchWithScratch(const float* query,
                                         const float* rotated_query,
                                         const IvfSearchParams& params,
                                         Rng* rng, IvfSearchScratch* scratch,
                                         std::vector<Neighbor>* out,
                                         IvfSearchStats* stats) const {
  if (out == nullptr || rng == nullptr || scratch == nullptr) {
    return Status::InvalidArgument("null output/rng/scratch");
  }
  if (params.k == 0) return Status::InvalidArgument("k must be positive");
  const float epsilon0 = params.epsilon0_override >= 0.0f
                             ? params.epsilon0_override
                             : encoder_.config().epsilon0;
  ProbeOrderInto(query, &scratch->probe_order);
  const auto& order = scratch->probe_order;
  const std::size_t nprobe = std::min(params.nprobe, order.size());

  // Rotate the query ONCE; each probed list reuses it (Section 3.3's shared
  // preprocessing, made explicit by PrepareQueryFromRotated). Serving-engine
  // callers pass the row of a batched rotation instead.
  if (rotated_query == nullptr) {
    scratch->rotated_query.resize(encoder_.total_bits());
    RotateQueryOnce(encoder_, query, scratch->rotated_query.data());
    rotated_query = scratch->rotated_query.data();
  }

  IvfSearchStats local_stats;
  TopKHeap exact_heap(params.k);
  // For the fixed-candidates and no-rerank policies: (estimate, id) pool.
  std::vector<Neighbor>& estimate_pool = scratch->estimate_pool;
  estimate_pool.clear();

  std::vector<float>& est_buf = scratch->est_buf;
  std::vector<float>& lb_buf = scratch->lb_buf;
  QuantizedQuery& qq = scratch->query;
  for (std::size_t p = 0; p < nprobe; ++p) {
    const std::uint32_t list_id = order[p].second;
    const List& list = lists_[list_id];
    if (list.ids.empty()) continue;
    ++local_stats.lists_probed;
    RABITQ_RETURN_IF_ERROR(PrepareQueryFromRotated(
        encoder_, rotated_query, rotated_centroids_.Row(list_id),
        std::sqrt(std::max(0.0f, order[p].first)), rng, &qq));
    const std::size_t n = list.ids.size();
    est_buf.resize(n);
    lb_buf.resize(n);
    const bool need_bounds = params.policy == RerankPolicy::kErrorBound;
    if (params.use_batch_estimator && qq.has_exact_luts) {
      EstimateAll(qq, list.codes, epsilon0, est_buf.data(),
                  need_bounds ? lb_buf.data() : nullptr);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const DistanceEstimate est =
            EstimateDistance(qq, list.codes.View(i), epsilon0);
        est_buf[i] = est.dist_sq;
        lb_buf[i] = est.lower_bound_sq;
      }
    }
    local_stats.codes_estimated += n;

    switch (params.policy) {
      case RerankPolicy::kErrorBound:
        // Paper Section 4: drop a vector iff its distance lower bound
        // exceeds the current k-th best exact distance; otherwise compute
        // the exact distance right away so the threshold tightens as we go.
        for (std::size_t i = 0; i < n; ++i) {
          if (exact_heap.full() && lb_buf[i] > exact_heap.Threshold()) continue;
          const std::uint32_t id = list.ids[i];
          const float exact = L2SqrDistance(data_.Row(id), query, dim());
          exact_heap.Push(exact, id);
          ++local_stats.candidates_reranked;
        }
        break;
      case RerankPolicy::kFixedCandidates:
      case RerankPolicy::kNone:
        for (std::size_t i = 0; i < n; ++i) {
          estimate_pool.emplace_back(est_buf[i], list.ids[i]);
        }
        break;
    }
  }

  if (params.policy == RerankPolicy::kErrorBound) {
    *out = exact_heap.ExtractSorted();
  } else if (params.policy == RerankPolicy::kFixedCandidates) {
    const std::size_t keep =
        std::min(std::max(params.rerank_candidates, params.k),
                 estimate_pool.size());
    std::partial_sort(estimate_pool.begin(), estimate_pool.begin() + keep,
                      estimate_pool.end());
    for (std::size_t i = 0; i < keep; ++i) {
      const std::uint32_t id = estimate_pool[i].second;
      exact_heap.Push(L2SqrDistance(data_.Row(id), query, dim()), id);
    }
    local_stats.candidates_reranked = keep;
    *out = exact_heap.ExtractSorted();
  } else {
    const std::size_t keep = std::min(params.k, estimate_pool.size());
    std::partial_sort(estimate_pool.begin(), estimate_pool.begin() + keep,
                      estimate_pool.end());
    // Copy (not move) so the pool's capacity stays with the scratch.
    out->assign(estimate_pool.begin(), estimate_pool.begin() + keep);
  }
  if (stats != nullptr) *stats = local_stats;
  return Status::Ok();
}

}  // namespace rabitq
