#include "index/ivf.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <numeric>

#include "linalg/vector_ops.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

namespace rabitq {

namespace {

// 32-lane allow mask of one fast-scan block for the pushed-down IdFilter:
// bit k set iff lane k is live and filter.Allows(ids[k]). Tombstoned lanes
// are skipped WITHOUT consulting the filter -- the IdFilter contract
// promises predicates are only called on live candidate ids (a caller may
// key its predicate off live-only metadata), and the kernel's dead fold
// drops those lanes regardless of their allow bit. Lanes past `count` stay
// clear (tail padding, masked out again inside the kernel). `*filtered` is
// advanced by the number of live lanes the filter excluded.
std::uint32_t FilterBlockMask(const IdFilter& filter,
                              const std::uint32_t* ids, std::size_t count,
                              const std::uint8_t* dead,
                              std::size_t* filtered) {
  std::uint32_t allow = 0;
  std::size_t dropped = 0;
  for (std::size_t k = 0; k < count; ++k) {
    if (dead != nullptr && dead[k] != 0) continue;
    if (filter.Allows(ids[k])) {
      allow |= 1u << k;
    } else {
      ++dropped;
    }
  }
  *filtered += dropped;
  return allow;
}

using TraceClock = std::chrono::steady_clock;

inline std::uint64_t NanosSince(TraceClock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(TraceClock::now() -
                                                           start)
          .count());
}

// Estimator-health accumulation at the kErrorBound re-rank sites: both the
// estimate and the eps0 lower bound are already in the scratch buffers and
// the exact distance was just computed, so the live bound-violation /
// bias / tightness telemetry costs a handful of flops per RE-RANKED
// candidate (a tiny fraction of codes scanned) on top of a full exact
// distance -- never a measurable hot-path cost.
// Scores ascend under every metric (negated inner products for IP/cosine),
// so "exact < lb" is a bound violation in the same sense everywhere. Both
// relative stats normalize the GAP by |exact|: tightness is
// 1 - (exact - lb)/|exact|, which equals the historical lb/exact whenever
// exact > 0 (all of kL2) but keeps its "1 = bound hugging the true score,
// smaller = slacker" reading when IP/cosine scores go negative -- dividing
// lb by a signed exact there flipped the gauge's direction, reporting
// slack bounds as tightness > 1 and tight bounds as < 1.
inline void AccumulateRerankHealth(float est, float lb, float exact,
                                   IvfSearchStats* stats) {
  stats->rerank_bound_violations += exact < lb;
  if (exact != 0.0f) {
    ++stats->rerank_health_samples;
    const double inv = 1.0 / std::abs(static_cast<double>(exact));
    stats->rerank_signed_err_sum +=
        (static_cast<double>(est) - static_cast<double>(exact)) * inv;
    stats->rerank_tightness_sum +=
        1.0 - (static_cast<double>(exact) - static_cast<double>(lb)) * inv;
  }
}

// Cosine ingest: copy-and-normalize one vector, failing closed on a
// zero-norm input (its direction -- the only thing cosine sees -- is
// undefined).
Status NormalizeForCosine(const float* vec, std::size_t dim,
                          std::vector<float>* out) {
  out->assign(vec, vec + dim);
  if (NormalizeInPlace(out->data(), dim) == 0.0f) {
    return Status::InvalidArgument("zero-norm vector under cosine metric");
  }
  return Status::Ok();
}

}  // namespace

Status IvfRabitqIndex::Build(const Matrix& data, const IvfConfig& ivf_config,
                             const RabitqConfig& rabitq_config) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  RABITQ_RETURN_IF_ERROR(ValidateMetric(ivf_config.metric));
  // kCosine normalizes the dataset BEFORE clustering so the centroids live
  // in the same unit-sphere space as the stored vectors (cosine over the
  // normalized copies IS inner product); a zero-norm row fails the build.
  Matrix normalized;
  const Matrix* build_data = &data;
  if (ivf_config.metric == Metric::kCosine) {
    normalized.Reset(data.rows(), data.cols());
    for (std::size_t i = 0; i < data.rows(); ++i) {
      std::copy_n(data.Row(i), data.cols(), normalized.Row(i));
      if (NormalizeInPlace(normalized.Row(i), data.cols()) == 0.0f) {
        return Status::InvalidArgument("zero-norm vector under cosine metric");
      }
    }
    build_data = &normalized;
  }
  KMeansConfig kmeans = ivf_config.kmeans;
  kmeans.num_clusters = std::min(ivf_config.num_lists, data.rows());
  KMeansResult clustering;
  RABITQ_RETURN_IF_ERROR(RunKMeans(*build_data, kmeans, &clustering));
  return BuildFromClustering(*build_data, std::move(clustering.centroids),
                             clustering.assignments.data(), rabitq_config,
                             ivf_config.metric);
}

Status IvfRabitqIndex::BuildFromClustering(const Matrix& data, Matrix centroids,
                                           const std::uint32_t* assignments,
                                           const RabitqConfig& rabitq_config,
                                           Metric metric) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  RABITQ_RETURN_IF_ERROR(ValidateMetric(metric));
  metric_ = metric;
  if (centroids.rows() == 0 || centroids.cols() != data.cols()) {
    return Status::InvalidArgument("bad centroid matrix");
  }
  if (assignments == nullptr) {
    return Status::InvalidArgument("null assignments");
  }
  for (std::size_t i = 0; i < data.rows(); ++i) {
    if (assignments[i] >= centroids.rows()) {
      return Status::InvalidArgument("assignment out of range");
    }
  }
  data_.Assign(data);
  centroids_ = std::move(centroids);

  RABITQ_RETURN_IF_ERROR(encoder_.Init(data.cols(), rabitq_config));

  // Precompute P^T c per list (shares the query rotation across clusters).
  rotated_centroids_.Reset(centroids_.rows(), encoder_.total_bits());
  for (std::size_t l = 0; l < centroids_.rows(); ++l) {
    encoder_.rotator().InverseRotate(centroids_.Row(l),
                                     rotated_centroids_.Row(l));
  }

  // Bucket membership, then per-list encoding (parallel across lists).
  lists_.assign(centroids_.rows(), List{});
  for (std::size_t i = 0; i < data.rows(); ++i) {
    lists_[assignments[i]].ids.push_back(static_cast<std::uint32_t>(i));
  }
  Status worker_status = Status::Ok();
  std::mutex status_mutex;
  GlobalThreadPool().ParallelFor(
      lists_.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t l = begin; l < end; ++l) {
          List& list = lists_[l];
          list.codes.Init(encoder_.total_bits(), metric_,
                          encoder_.config().bits_per_dim);
          list.codes.Reserve(list.ids.size());
          for (const std::uint32_t id : list.ids) {
            const Status s = encoder_.EncodeAppend(data.Row(id),
                                                   centroids_.Row(l),
                                                   &list.codes);
            if (!s.ok()) {
              std::lock_guard<std::mutex> lock(status_mutex);
              worker_status = s;
              return;
            }
          }
          list.dead.assign(list.ids.size(), 0);
          if (!list.ids.empty()) list.codes.Finalize();
        }
      },
      /*min_chunk=*/1);
  if (!worker_status.ok()) return worker_status;

  // Every id starts live, positioned where bucketing put it.
  const std::size_t n = data.rows();
  id_live_.assign(n, 1);
  id_to_list_.assign(n, 0);
  id_to_pos_.assign(n, 0);
  live_count_ = n;
  num_tombstones_ = 0;
  for (std::size_t l = 0; l < lists_.size(); ++l) {
    for (std::size_t p = 0; p < lists_[l].ids.size(); ++p) {
      id_to_list_[lists_[l].ids[p]] = static_cast<std::uint32_t>(l);
      id_to_pos_[lists_[l].ids[p]] = static_cast<std::uint32_t>(p);
    }
  }
  return Status::Ok();
}

void IvfRabitqIndex::ProbeOrderInto(
    const float* query,
    std::vector<std::pair<float, std::uint32_t>>* out) const {
  ProbeOrderInto(query, centroids_.rows(), out);
}

void IvfRabitqIndex::ProbeOrderInto(
    const float* query, std::size_t nprobe,
    std::vector<std::pair<float, std::uint32_t>>* out) const {
  out->resize(centroids_.rows());
  // Metric-aware probe key: squared distance under kL2, negated centroid
  // inner product under kInnerProduct/kCosine (probe the lists whose
  // centroid scores best under the index's own metric).
  for (std::size_t l = 0; l < centroids_.rows(); ++l) {
    (*out)[l] = {MetricDistance(metric_, centroids_.Row(l), query, dim()),
                 static_cast<std::uint32_t>(l)};
  }
  if (nprobe >= out->size()) {
    std::sort(out->begin(), out->end());
    return;
  }
  // Select the nprobe nearest, then order only them. The pair comparison is
  // a total order (list ids are unique), so this prefix is identical to the
  // full sort's.
  std::nth_element(out->begin(), out->begin() + nprobe, out->end());
  std::sort(out->begin(), out->begin() + nprobe);
}

std::vector<std::pair<float, std::uint32_t>>
IvfRabitqIndex::ProbeOrderWithDistances(const float* query) const {
  std::vector<std::pair<float, std::uint32_t>> by_dist;
  ProbeOrderInto(query, &by_dist);
  return by_dist;
}

std::vector<std::uint32_t> IvfRabitqIndex::ProbeOrder(
    const float* query) const {
  const auto by_dist = ProbeOrderWithDistances(query);
  std::vector<std::uint32_t> order(by_dist.size());
  for (std::size_t i = 0; i < by_dist.size(); ++i) order[i] = by_dist[i].second;
  return order;
}

SearchResponse IvfRabitqIndex::Search(const SearchRequest& request) const {
  SearchResponse response;
  IvfSearchScratch scratch;
  SearchOptions options = request.options;
  options.ResolveDeadline(std::chrono::steady_clock::now());
  response.status = SearchWithScratch(request.query, nullptr, options,
                                      options.seed.value_or(0), &scratch,
                                      &response.neighbors, &response.stats);
  // A bare index is its own single "shard": a deadline trip degrades to
  // partial results, any other failure fails the response outright.
  response.partial = response.status.code() == StatusCode::kDeadlineExceeded;
  response.shards_ok = response.status.ok() || response.partial ? 1 : 0;
  return response;
}

Status IvfRabitqIndex::SearchWithScratch(const float* query,
                                         const float* rotated_query,
                                         const IvfSearchParams& params,
                                         std::uint64_t seed,
                                         IvfSearchScratch* scratch,
                                         std::vector<Neighbor>* out,
                                         IvfSearchStats* stats) const {
  if (out == nullptr || scratch == nullptr) {
    return Status::InvalidArgument("null output/scratch");
  }
  if (query == nullptr) return Status::InvalidArgument("null query");
  if (params.k == 0) return Status::InvalidArgument("k must be positive");
  // kCosine: normalize the query WHERE it gets rotated (the contract of
  // SearchWithScratch): a caller passing a precomputed rotation guarantees
  // `query` is already unit-normalized, so normalizing again here would
  // break bit-parity with that caller. Everything below -- probe order,
  // preprocessing, exact re-rank -- sees the normalized pointer.
  if (metric_ == Metric::kCosine && rotated_query == nullptr) {
    scratch->norm_query.assign(query, query + dim());
    if (NormalizeInPlace(scratch->norm_query.data(), dim()) == 0.0f) {
      return Status::InvalidArgument("zero-norm query under cosine metric");
    }
    query = scratch->norm_query.data();
  }
  const float epsilon0 = params.epsilon0_override >= 0.0f
                             ? params.epsilon0_override
                             : encoder_.config().epsilon0;
  // Per-stage tracing: null for untraced queries (one branch per stage, no
  // clock reads). The scan span is measured as (whole list loop) minus the
  // re-rank time accumulated inside it, so scan + rerank tile the loop.
  obs::QueryTrace* const trace = scratch->trace;
  TraceClock::time_point span_start;
  if (trace != nullptr) span_start = TraceClock::now();
  ProbeOrderInto(query, params.nprobe, &scratch->probe_order);
  if (trace != nullptr) {
    trace->AddNanos(obs::Stage::kProbeOrder, NanosSince(span_start));
  }
  const auto& order = scratch->probe_order;
  const std::size_t nprobe = std::min(params.nprobe, order.size());

  // Rotate the query ONCE; each probed list reuses it (Section 3.3's shared
  // preprocessing, made explicit by PrepareQueryFromRotated). Serving-engine
  // callers pass the row of a batched rotation instead (and attribute the
  // batched rotation to kPreprocess themselves).
  if (rotated_query == nullptr) {
    if (trace != nullptr) span_start = TraceClock::now();
    scratch->rotated_query.resize(encoder_.total_bits());
    RotateQueryOnce(encoder_, query, scratch->rotated_query.data());
    rotated_query = scratch->rotated_query.data();
    if (trace != nullptr) {
      trace->AddNanos(obs::Stage::kPreprocess, NanosSince(span_start));
    }
  }

  // ||q||^2 feeds the per-query half of the IP/cosine score base
  // (QuantizedQuery::q_base); computed once, not per probed list.
  const float query_norm_sq =
      metric_ == Metric::kL2 ? 0.0f : SquaredNorm(query, dim());

  // Cooperative cancellation: deadline-free queries (the overwhelmingly
  // common case) never read the clock or touch `deadline_check`, so their
  // scan is instruction-for-instruction the pre-deadline scan -- the
  // bit-identical contract survives the plumbing. Armed queries pay one
  // clock read per probed list plus one per kDeadlineCheckBlocks fast-scan
  // blocks (per 256 entries on the un-fused paths).
  const bool has_deadline = params.deadline != SearchOptions::kNoDeadline;
  const auto deadline = params.deadline;
  bool deadline_hit = false;
  std::uint32_t deadline_check = 0;
  constexpr std::uint32_t kDeadlineCheckBlocks = 16;

  IvfSearchStats local_stats;
  TopKHeap exact_heap(params.k);
  // For the fixed-candidates and no-rerank policies: (estimate, id) pool.
  std::vector<Neighbor>& estimate_pool = scratch->estimate_pool;
  estimate_pool.clear();

  std::vector<float>& est_buf = scratch->est_buf;
  std::vector<float>& lb_buf = scratch->lb_buf;
  QuantizedQuery& qq = scratch->query;
  const bool need_bounds = params.policy == RerankPolicy::kErrorBound;
  // Per-query predicate, pushed INTO candidate selection: the fused path
  // folds it into the kernel's survivors mask, the fallback loops check it
  // exactly where they check tombstones. Either way a filtered-out code
  // never reaches exact re-ranking and no post-hoc pass exists.
  const IdFilter& filter = params.filter;
  const bool filtering = filter.active();

  // One block-padded sizing per search instead of one resize per probed
  // list: the fused kernel stores whole 32-lane blocks, so the buffers are
  // padded up to the block multiple of the largest probed list.
  std::size_t max_entries = 0;
  for (std::size_t p = 0; p < nprobe; ++p) {
    max_entries = std::max(max_entries, lists_[order[p].second].ids.size());
  }
  const std::size_t padded =
      (max_entries + kFastScanBlockSize - 1) / kFastScanBlockSize *
      kFastScanBlockSize;
  est_buf.resize(padded);
  lb_buf.resize(padded);
  // Stage-2 scan of a multi-bit index: the two-stage refine needs the
  // multi-bit lower bounds in their own buffer (stage 2 overwrites est_buf
  // at candidate lanes, but the walk re-checks BOTH stages' bounds). The
  // estimate-only policies need it too, as the batch kernel's mandatory
  // bound output (the bounds themselves go unread there).
  const bool multi_code = encoder_.config().bits_per_dim > 1;
  const bool multi = need_bounds && multi_code;
  std::vector<float>& mlb_buf = scratch->mlb_buf;
  if (multi_code) mlb_buf.resize(padded);

  // Scan span = (list loop + result extraction) minus the re-rank time
  // accumulated inside; the two stages tile the post-preprocess pipeline.
  TraceClock::time_point scan_start;
  std::uint64_t rerank_ns = 0;
  if (trace != nullptr) scan_start = TraceClock::now();

  for (std::size_t p = 0; p < nprobe; ++p) {
    RABITQ_FAILPOINT("ivf.scan_deadline", deadline_hit = true);
    if (deadline_hit ||
        (has_deadline && std::chrono::steady_clock::now() >= deadline)) {
      deadline_hit = true;
      break;
    }
    const std::uint32_t list_id = order[p].second;
    const List& list = lists_[list_id];
    if (list.ids.empty()) continue;
    ++local_stats.lists_probed;
    // Per-list rounding seed: a pure function of (query seed, list id), so
    // the quantized query of a list is identical no matter which shard of a
    // sharded index holds it or in what order lists are probed.
    Rng list_rng(MixSeed(seed, list_id));
    // q_dist = ||q - c||. Under kL2 the probe key IS the squared distance;
    // under IP/cosine the key is a negated dot product, so the residual
    // norm is computed here (one extra O(dim) pass per PROBED list).
    const float q_dist =
        metric_ == Metric::kL2
            ? std::sqrt(std::max(0.0f, order[p].first))
            : std::sqrt(std::max(
                  0.0f, L2SqrDistance(query, centroids_.Row(list_id), dim())));
    RABITQ_RETURN_IF_ERROR(PrepareQueryFromRotated(
        encoder_, rotated_query, rotated_centroids_.Row(list_id), q_dist,
        &list_rng, &qq, /*query_bits_override=*/0, metric_, query_norm_sq));
    const std::size_t n = list.ids.size();
    const bool batch = params.use_batch_estimator && qq.has_exact_luts &&
                       list.codes.finalized();
    local_stats.codes_estimated += n;

    // Candidate selection consults the tombstones: a dead entry (deleted id
    // or stale pre-Update code) is estimated by the batch kernel -- blocks
    // are contiguous -- but never reaches the heap or the pool.
    if (params.policy == RerankPolicy::kErrorBound && batch) {
      // Fused scan + selection (paper Section 4 made branch-free): per
      // block, accumulate the fast-scan sums, assemble estimates + lower
      // bounds 8 lanes at a time, and prune in-kernel against the current
      // k-th best exact distance (FLT_MAX while the heap is filling) with
      // the tombstone flags folded into the same survivors mask. Only
      // surviving lanes are walked; each is re-checked against the LIVE
      // threshold (it tightens within a block as candidates are pushed), so
      // the re-ranked set is element-for-element identical to the
      // un-fused per-entry loop.
      const FastScanCodes& packed = list.codes.packed();
      const std::uint8_t* dead_base =
          list.num_dead > 0 ? list.dead.data() : nullptr;
      std::uint32_t sums[kFastScanBlockSize];
      for (std::size_t block = 0; block < packed.num_blocks; ++block) {
        if (has_deadline &&
            ++deadline_check % kDeadlineCheckBlocks == 0 &&
            std::chrono::steady_clock::now() >= deadline) {
          deadline_hit = true;
          break;
        }
        const std::size_t begin = block * kFastScanBlockSize;
        const std::size_t count = std::min(kFastScanBlockSize, n - begin);
        PrefetchBlockData(list.codes, block + 1);
        // The filter's allow mask rides into the kernel as lane_mask; a
        // fully-disallowed block skips even the fast-scan accumulation.
        std::uint32_t allow_mask = 0xFFFFFFFFu;
        if (filtering) {
          allow_mask = FilterBlockMask(
              filter, list.ids.data() + begin, count,
              dead_base == nullptr ? nullptr : dead_base + begin,
              &local_stats.codes_filtered);
          if (allow_mask == 0) continue;
        }
        FastScanAccumulateBlock(packed.BlockPtr(block), packed.num_segments,
                                qq.luts.data(), sums);
        // +infinity (not FLT_MAX) while the heap is filling: nothing
        // compares greater than inf, so even a lower bound that overflowed
        // to +inf survives the kernel -- exactly like the un-fused loop,
        // whose `full() &&` short-circuit never prunes while filling.
        const float threshold = exact_heap.full()
                                    ? exact_heap.Threshold()
                                    : std::numeric_limits<float>::infinity();
        std::uint32_t survivors = EstimateBlockFusedPruned(
            qq, list.codes, block, sums, epsilon0, threshold,
            dead_base == nullptr ? nullptr : dead_base + begin,
            est_buf.data() + begin, lb_buf.data() + begin, allow_mask);
        // Two-stage scan for multi-bit codes: the block above pruned with
        // the cheap sign plane; its survivors are re-estimated from the
        // full B_d-bit code (reusing the sign-plane sums) and pruned again
        // against the same snapshot threshold. est_buf now holds the
        // tighter stage-2 estimates at candidate lanes; mlb_buf their
        // bounds, with lb_buf keeping the stage-1 bounds for the walk's
        // live re-check of both stages.
        if (multi && survivors != 0) {
          local_stats.codes_refined +=
              static_cast<std::size_t>(std::popcount(survivors));
          std::uint32_t msums[kFastScanBlockSize];
          AccumulateMultiBlockSums(qq, list.codes, block, sums, msums);
          survivors = EstimateBlockMultiPruned(
              qq, list.codes, block, msums, epsilon0, threshold, survivors,
              est_buf.data() + begin, mlb_buf.data() + begin);
        }
        const bool time_rerank = trace != nullptr && survivors != 0;
        if (time_rerank) span_start = TraceClock::now();
        while (survivors != 0) {
          const unsigned lane = std::countr_zero(survivors);
          survivors &= survivors - 1;
          const std::size_t i = begin + lane;
          if (exact_heap.full() && lb_buf[i] > exact_heap.Threshold()) {
            continue;
          }
          if (multi && exact_heap.full() &&
              mlb_buf[i] > exact_heap.Threshold()) {
            continue;
          }
          const std::uint32_t id = list.ids[i];
          const float exact = MetricDistance(metric_, data_.Row(id), query, dim());
          exact_heap.Push(exact, id);
          ++local_stats.candidates_reranked;
          AccumulateRerankHealth(est_buf[i], multi ? mlb_buf[i] : lb_buf[i],
                                 exact, &local_stats);
        }
        if (time_rerank) rerank_ns += NanosSince(span_start);
      }
      if (deadline_hit) break;
      continue;
    }

    // Estimate-only policies on a multi-bit index rank by the code's full
    // width: the extra planes exist precisely so the estimate can stand in
    // for the exact distance (kNone) or pick the rerank set (kFixed-
    // Candidates), so the pool gets B_d-bit estimates, not the sign
    // plane's. kErrorBound keeps its two-stage shape: sign-plane estimates
    // here, per-survivor refinement below.
    const bool refine_all =
        multi_code && params.policy != RerankPolicy::kErrorBound;
    if (batch) {
      if (refine_all) {
        EstimateAllMulti(qq, list.codes, epsilon0, est_buf.data(),
                         mlb_buf.data());
      } else {
        EstimateAll(qq, list.codes, epsilon0, est_buf.data(),
                    need_bounds ? lb_buf.data() : nullptr);
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const DistanceEstimate est =
            refine_all ? EstimateDistanceMulti(qq, list.codes, i, epsilon0)
                       : EstimateDistance(qq, list.codes.View(i), epsilon0);
        est_buf[i] = est.dist_sq;
        // Match the batch path's need_bounds gating: policies that never
        // read lower bounds do not pay the stores.
        if (need_bounds) lb_buf[i] = est.lower_bound_sq;
      }
    }
    if (refine_all) local_stats.codes_refined += n;

    switch (params.policy) {
      case RerankPolicy::kErrorBound:
        // Paper Section 4: drop a vector iff its distance lower bound
        // exceeds the current k-th best exact distance; otherwise compute
        // the exact distance right away so the threshold tightens as we go.
        // The filter check sits with the tombstone check (before the bound
        // test) so codes_filtered counts every live excluded code, exactly
        // like the fused path's per-block mask.
        if (trace != nullptr) span_start = TraceClock::now();
        for (std::size_t i = 0; i < n; ++i) {
          if (has_deadline && (++deadline_check & 255u) == 0 &&
              std::chrono::steady_clock::now() >= deadline) {
            deadline_hit = true;
            break;
          }
          if (list.dead[i]) continue;
          if (filtering && !filter.Allows(list.ids[i])) {
            ++local_stats.codes_filtered;
            continue;
          }
          if (exact_heap.full() && lb_buf[i] > exact_heap.Threshold()) continue;
          float est = est_buf[i];
          float lb = lb_buf[i];
          // Stage 2 of the multi-bit scan, per entry: refine the stage-1
          // survivor from the full B_d-bit code and give the tighter bound
          // its own chance to prune before the exact distance is paid.
          if (multi) {
            const DistanceEstimate refined =
                EstimateDistanceMulti(qq, list.codes, i, epsilon0);
            ++local_stats.codes_refined;
            est = refined.dist_sq;
            lb = refined.lower_bound_sq;
            if (exact_heap.full() && lb > exact_heap.Threshold()) continue;
          }
          const std::uint32_t id = list.ids[i];
          const float exact = MetricDistance(metric_, data_.Row(id), query, dim());
          exact_heap.Push(exact, id);
          ++local_stats.candidates_reranked;
          AccumulateRerankHealth(est, lb, exact, &local_stats);
        }
        if (trace != nullptr) rerank_ns += NanosSince(span_start);
        break;
      case RerankPolicy::kFixedCandidates:
      case RerankPolicy::kNone:
        for (std::size_t i = 0; i < n; ++i) {
          if (list.dead[i]) continue;
          if (filtering && !filter.Allows(list.ids[i])) {
            ++local_stats.codes_filtered;
            continue;
          }
          estimate_pool.emplace_back(est_buf[i], list.ids[i]);
        }
        break;
    }
    if (deadline_hit) break;
  }

  if (params.policy == RerankPolicy::kErrorBound) {
    *out = exact_heap.ExtractSorted();
  } else if (params.policy == RerankPolicy::kFixedCandidates) {
    const std::size_t keep =
        std::min(std::max(params.rerank_candidates, params.k),
                 estimate_pool.size());
    std::partial_sort(estimate_pool.begin(), estimate_pool.begin() + keep,
                      estimate_pool.end());
    if (trace != nullptr) span_start = TraceClock::now();
    for (std::size_t i = 0; i < keep; ++i) {
      const std::uint32_t id = estimate_pool[i].second;
      exact_heap.Push(MetricDistance(metric_, data_.Row(id), query, dim()), id);
    }
    if (trace != nullptr) rerank_ns += NanosSince(span_start);
    local_stats.candidates_reranked = keep;
    *out = exact_heap.ExtractSorted();
  } else {
    const std::size_t keep = std::min(params.k, estimate_pool.size());
    std::partial_sort(estimate_pool.begin(), estimate_pool.begin() + keep,
                      estimate_pool.end());
    // Copy (not move) so the pool's capacity stays with the scratch.
    out->assign(estimate_pool.begin(), estimate_pool.begin() + keep);
  }
  if (trace != nullptr) {
    const std::uint64_t total_ns = NanosSince(scan_start);
    trace->AddNanos(obs::Stage::kScan,
                    total_ns > rerank_ns ? total_ns - rerank_ns : 0);
    trace->AddNanos(obs::Stage::kRerank, rerank_ns);
  }
  if (stats != nullptr) *stats = local_stats;
  // The extraction above ran regardless: a deadline trip returns everything
  // gathered before the stop (possibly fewer than k, possibly empty), and
  // the caller flags the response partial.
  if (deadline_hit) {
    return Status::DeadlineExceeded("query deadline exceeded mid-scan");
  }
  return Status::Ok();
}

Status IvfRabitqIndex::AppendToNearestList(std::uint32_t id,
                                           const float* vec) {
  const std::uint32_t list_id = NearestCentroid(vec, centroids_);
  List& list = lists_[list_id];
  RABITQ_RETURN_IF_ERROR(
      encoder_.EncodeAppend(vec, centroids_.Row(list_id), &list.codes));
  list.ids.push_back(id);
  list.dead.push_back(0);
  list.codes.FinalizeAppend();  // extends the packed layout by one slot
  ++list.generation;
  id_to_list_[id] = list_id;
  id_to_pos_[id] = static_cast<std::uint32_t>(list.ids.size() - 1);
  return Status::Ok();
}

Status IvfRabitqIndex::Add(const float* vec, std::uint32_t* id_out) {
  if (vec == nullptr) return Status::InvalidArgument("null vector");
  if (lists_.empty()) return Status::FailedPrecondition("index not built");
  // kCosine stores the normalized vector (same as Build), so re-rank and
  // the estimator see unit data no matter how the vector arrived.
  std::vector<float> normalized;
  if (metric_ == Metric::kCosine) {
    RABITQ_RETURN_IF_ERROR(NormalizeForCosine(vec, dim(), &normalized));
    vec = normalized.data();
  }
  const std::uint32_t id = data_.Append(vec);
  // The id turns live only once its list entry exists; on append failure it
  // stays permanently dead (IsDeleted == true), never a dangling mapping.
  id_live_.push_back(0);
  id_to_list_.push_back(0);
  id_to_pos_.push_back(0);
  RABITQ_RETURN_IF_ERROR(AppendToNearestList(id, vec));
  id_live_[id] = 1;
  ++live_count_;
  if (id_out != nullptr) *id_out = id;
  return Status::Ok();
}

Status IvfRabitqIndex::Delete(std::uint32_t id) {
  if (lists_.empty()) return Status::FailedPrecondition("index not built");
  if (IsDeleted(id)) return Status::NotFound("id not live");
  List& list = lists_[id_to_list_[id]];
  list.dead[id_to_pos_[id]] = 1;
  ++list.num_dead;
  ++list.generation;
  id_live_[id] = 0;
  --live_count_;
  ++num_tombstones_;
  return Status::Ok();
}

Status IvfRabitqIndex::Update(std::uint32_t id, const float* vec) {
  if (vec == nullptr) return Status::InvalidArgument("null vector");
  if (lists_.empty()) return Status::FailedPrecondition("index not built");
  if (IsDeleted(id)) return Status::NotFound("id not live");
  // Normalize FIRST (and fail closed) so a zero-norm update under cosine
  // leaves the index untouched rather than half-tombstoned.
  std::vector<float> normalized;
  if (metric_ == Metric::kCosine) {
    RABITQ_RETURN_IF_ERROR(NormalizeForCosine(vec, dim(), &normalized));
    vec = normalized.data();
  }
  // Tombstone the stale entry, then re-encode against the (possibly new)
  // nearest centroid. The id itself stays live throughout.
  List& old_list = lists_[id_to_list_[id]];
  old_list.dead[id_to_pos_[id]] = 1;
  ++old_list.num_dead;
  ++old_list.generation;
  ++num_tombstones_;
  data_.OverwriteRow(id, vec);
  return AppendToNearestList(id, vec);
}

std::vector<std::uint32_t> IvfRabitqIndex::ListsNeedingCompaction(
    float min_ratio, std::size_t min_dead) const {
  std::vector<std::uint32_t> out;
  for (std::size_t l = 0; l < lists_.size(); ++l) {
    const List& list = lists_[l];
    if (list.num_dead == 0 || list.num_dead < min_dead) continue;
    const float ratio = static_cast<float>(list.num_dead) /
                        static_cast<float>(list.ids.size());
    if (ratio >= min_ratio) out.push_back(static_cast<std::uint32_t>(l));
  }
  return out;
}

Status IvfRabitqIndex::PlanListCompaction(std::uint32_t list_id,
                                          IvfCompactionPlan* plan) const {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  if (list_id >= lists_.size()) return Status::InvalidArgument("bad list id");
  const List& list = lists_[list_id];
  plan->list_id = list_id;
  plan->list_generation = list.generation;
  plan->ids.clear();
  plan->ids.reserve(list.ids.size() - list.num_dead);
  for (std::size_t p = 0; p < list.ids.size(); ++p) {
    if (!list.dead[p]) plan->ids.push_back(list.ids[p]);
  }
  list.codes.CompactInto(list.dead.data(), &plan->codes);
  return Status::Ok();
}

Status IvfRabitqIndex::CommitListCompaction(IvfCompactionPlan&& plan) {
  if (plan.list_id >= lists_.size()) {
    return Status::InvalidArgument("bad list id");
  }
  List& list = lists_[plan.list_id];
  if (list.generation != plan.list_generation) {
    return Status::FailedPrecondition("stale compaction plan");
  }
  num_tombstones_ -= list.num_dead;
  list.ids = std::move(plan.ids);
  list.codes = std::move(plan.codes);
  list.dead.assign(list.ids.size(), 0);
  list.num_dead = 0;
  ++list.generation;
  for (std::size_t p = 0; p < list.ids.size(); ++p) {
    id_to_pos_[list.ids[p]] = static_cast<std::uint32_t>(p);
  }
  return Status::Ok();
}

Status IvfRabitqIndex::Compact(float min_ratio, std::size_t min_dead) {
  for (const std::uint32_t l : ListsNeedingCompaction(min_ratio, min_dead)) {
    IvfCompactionPlan plan;
    RABITQ_RETURN_IF_ERROR(PlanListCompaction(l, &plan));
    RABITQ_RETURN_IF_ERROR(CommitListCompaction(std::move(plan)));
  }
  return Status::Ok();
}

}  // namespace rabitq
