// Save/Load and incremental insertion for IvfRabitqIndex. The on-disk
// format stores the raw vectors, the coarse centroids, the per-list ids and
// code-store arrays, and the RabitqConfig; the rotation is reconstructed
// deterministically from (dim, bits, kind, seed) at load time, mirroring the
// paper's observation that the codebook never needs to be materialized.

#include <algorithm>

#include "index/ivf.h"
#include "util/serialize.h"

namespace rabitq {

namespace {
constexpr char kMagic[8] = {'R', 'B', 'Q', 'I', 'V', 'F', '0', '1'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

Status IvfRabitqIndex::Add(const float* vec, std::uint32_t* id_out) {
  if (vec == nullptr) return Status::InvalidArgument("null vector");
  if (lists_.empty()) return Status::FailedPrecondition("index not built");
  const std::uint32_t id = static_cast<std::uint32_t>(data_.rows());

  // Grow the raw-vector matrix by one row.
  Matrix grown(data_.rows() + 1, dim());
  std::copy_n(data_.data(), data_.size(), grown.data());
  std::copy_n(vec, dim(), grown.Row(id));
  data_ = std::move(grown);

  const std::uint32_t list_id = NearestCentroid(vec, centroids_);
  List& list = lists_[list_id];
  list.ids.push_back(id);
  RABITQ_RETURN_IF_ERROR(
      encoder_.EncodeAppend(vec, centroids_.Row(list_id), &list.codes));
  list.codes.Finalize();  // re-pack the batch layout for this list
  if (id_out != nullptr) *id_out = id;
  return Status::Ok();
}

Status IvfRabitqIndex::Save(const std::string& path) const {
  if (lists_.empty()) return Status::FailedPrecondition("index not built");
  std::unique_ptr<BinaryWriter> writer;
  RABITQ_RETURN_IF_ERROR(BinaryWriter::Open(path, &writer));
  RABITQ_RETURN_IF_ERROR(WriteHeader(writer.get(), kMagic, kVersion));

  // Quantizer configuration (the rotator is re-derived from this on load).
  const RabitqConfig& config = encoder_.config();
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(dim()));
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(encoder_.total_bits()));
  RABITQ_RETURN_IF_ERROR(writer->WriteF32(config.epsilon0));
  RABITQ_RETURN_IF_ERROR(writer->WriteU32(config.query_bits));
  RABITQ_RETURN_IF_ERROR(
      writer->WriteU32(static_cast<std::uint32_t>(config.rotator)));
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(config.seed));

  // Raw vectors and centroids.
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(data_.rows()));
  RABITQ_RETURN_IF_ERROR(writer->WriteBytes(data_.data(),
                                            data_.size() * sizeof(float)));
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(centroids_.rows()));
  RABITQ_RETURN_IF_ERROR(writer->WriteBytes(
      centroids_.data(), centroids_.size() * sizeof(float)));

  // Per-list ids and code arrays.
  for (const List& list : lists_) {
    RABITQ_RETURN_IF_ERROR(
        writer->WriteArray(list.ids.data(), list.ids.size()));
    const std::size_t n = list.codes.size();
    RABITQ_RETURN_IF_ERROR(writer->WriteU64(n));
    for (std::size_t i = 0; i < n; ++i) {
      const RabitqCodeView view = list.codes.View(i);
      RABITQ_RETURN_IF_ERROR(writer->WriteBytes(
          view.bits, list.codes.words_per_code() * sizeof(std::uint64_t)));
      RABITQ_RETURN_IF_ERROR(writer->WriteF32(view.dist_to_centroid));
      RABITQ_RETURN_IF_ERROR(writer->WriteF32(view.o_o));
      RABITQ_RETURN_IF_ERROR(writer->WriteU32(view.bit_count));
    }
  }
  return writer->Close();
}

Status IvfRabitqIndex::Load(const std::string& path) {
  std::unique_ptr<BinaryReader> reader;
  RABITQ_RETURN_IF_ERROR(BinaryReader::Open(path, &reader));
  RABITQ_RETURN_IF_ERROR(ExpectHeader(reader.get(), kMagic, kVersion));

  std::uint64_t dim = 0, total_bits = 0, seed = 0;
  std::uint32_t query_bits = 0, rotator_kind = 0;
  float epsilon0 = 0.0f;
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&dim));
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&total_bits));
  RABITQ_RETURN_IF_ERROR(reader->ReadF32(&epsilon0));
  RABITQ_RETURN_IF_ERROR(reader->ReadU32(&query_bits));
  RABITQ_RETURN_IF_ERROR(reader->ReadU32(&rotator_kind));
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&seed));
  if (dim == 0 || dim > (1u << 20)) return Status::IoError("corrupt dim");
  if (rotator_kind > static_cast<std::uint32_t>(RotatorKind::kIdentity)) {
    return Status::IoError("corrupt rotator kind");
  }

  RabitqConfig config;
  // kFht may have rounded the configured width up to a power of two; the
  // stored value is the actual width, which Init accepts for kDense and
  // re-rounds identically for kFht.
  config.total_bits =
      static_cast<RotatorKind>(rotator_kind) == RotatorKind::kFht
          ? 0
          : total_bits;
  config.epsilon0 = epsilon0;
  config.query_bits = static_cast<int>(query_bits);
  config.rotator = static_cast<RotatorKind>(rotator_kind);
  config.seed = seed;
  RABITQ_RETURN_IF_ERROR(encoder_.Init(dim, config));
  if (encoder_.total_bits() != total_bits) {
    return Status::IoError("reconstructed code width mismatch");
  }

  std::uint64_t n = 0;
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&n));
  if (n > (std::uint64_t{1} << 40) / std::max<std::uint64_t>(dim, 1)) {
    return Status::IoError("corrupt vector count");
  }
  data_.Reset(n, dim);
  RABITQ_RETURN_IF_ERROR(
      reader->ReadBytes(data_.data(), data_.size() * sizeof(float)));

  std::uint64_t num_lists = 0;
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&num_lists));
  if (num_lists == 0 || num_lists > n + 1) {
    return Status::IoError("corrupt list count");
  }
  centroids_.Reset(num_lists, dim);
  RABITQ_RETURN_IF_ERROR(
      reader->ReadBytes(centroids_.data(), centroids_.size() * sizeof(float)));

  rotated_centroids_.Reset(num_lists, encoder_.total_bits());
  for (std::size_t l = 0; l < num_lists; ++l) {
    encoder_.rotator().InverseRotate(centroids_.Row(l),
                                     rotated_centroids_.Row(l));
  }

  lists_.assign(num_lists, List{});
  const std::size_t words = WordsForBits(total_bits);
  std::vector<std::uint64_t> bits(words);
  for (List& list : lists_) {
    RABITQ_RETURN_IF_ERROR(
        (reader->ReadArray<std::uint32_t>(&list.ids, n + 1)));
    std::uint64_t codes = 0;
    RABITQ_RETURN_IF_ERROR(reader->ReadU64(&codes));
    if (codes != list.ids.size()) {
      return Status::IoError("list id/code count mismatch");
    }
    list.codes.Init(total_bits);
    list.codes.Reserve(codes);
    for (std::uint64_t i = 0; i < codes; ++i) {
      float dist = 0.0f, o_o = 0.0f;
      std::uint32_t bit_count = 0;
      RABITQ_RETURN_IF_ERROR(
          reader->ReadBytes(bits.data(), words * sizeof(std::uint64_t)));
      RABITQ_RETURN_IF_ERROR(reader->ReadF32(&dist));
      RABITQ_RETURN_IF_ERROR(reader->ReadF32(&o_o));
      RABITQ_RETURN_IF_ERROR(reader->ReadU32(&bit_count));
      list.codes.Append(bits.data(), dist, o_o, bit_count);
    }
    if (!list.ids.empty()) list.codes.Finalize();
  }
  return Status::Ok();
}

}  // namespace rabitq
