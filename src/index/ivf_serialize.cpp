// Save/Load for IvfRabitqIndex. Snapshot format v5 ("RBQIVF05") stores the
// metric (a u32 immediately after the header, so it is validated before any
// expensive reconstruction), the raw vectors, the coarse centroids, the
// per-list ids, positional tombstones and code-store arrays (including the
// per-code ||o_r||^2 the IP/cosine factors need), and the RabitqConfig --
// including bits_per_dim (a u32 right after the config seed, validated
// up front like the metric). Multi-bit stores additionally persist, per
// code, the B_d - 1 extra bit planes and the primary multi factors
// (m_o_o, m_alpha, m_beta, m_code_sum): unlike the derived estimator
// factors these depend on the rotated residual, which is never stored. The
// rotation is reconstructed deterministically from (dim, bits, kind, seed)
// at load time, mirroring the paper's observation that the codebook never
// needs to be materialized.
// v5 adds durability, not payload: every byte after the 12-byte header is
// covered by a CRC-32 footer, so bit-rot fails closed in Load with a
// checksum IoError instead of reconstructing garbage that happens to pass
// the structural bounds. Save is also crash-safe -- the blob is written to
// `<path>.tmp` and renamed into place only after a clean Close, so a crash
// or injected write fault mid-save leaves the previous snapshot intact.
// Legacy files still load: v4 ("RBQIVF04", same layout minus the footer),
// v3 ("RBQIVF03", written before multi-bit codes -- no bits_per_dim field
// or multi payload, so it loads as bits_per_dim = 1, the only width in
// existence then), v2 ("RBQIVF02", additionally no metric field or
// per-code norms) and v1 ("RBQIVF01", written before the index became
// mutable -- additionally no tombstone sections). v1/v2 default to
// Metric::kL2, which fixes the old hardcoded `metric_ = kL2` that would
// have silently mis-loaded any non-L2 snapshot.
//
// The derived estimator factors (f_sq/f_cross/f_inv_oo/f_err) are NOT part
// of any format: they are a pure function of the stored per-code
// (dist_to_centroid, o_o, norm_sq) floats and the metric, and are recomputed
// by RabitqCodeStore::Append as Load streams the codes in -- every format
// version comes back with factors bit-identical to the ones the original
// index computed at encode time.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "index/ivf.h"
#include "util/failpoint.h"
#include "util/serialize.h"

namespace rabitq {

namespace {
// Readable formats, newest first; Save always writes kMagics[0]. Keeping
// writer and reader on one table means a format bump cannot desynchronize
// them.
constexpr char kMagics[][8] = {{'R', 'B', 'Q', 'I', 'V', 'F', '0', '5'},
                               {'R', 'B', 'Q', 'I', 'V', 'F', '0', '4'},
                               {'R', 'B', 'Q', 'I', 'V', 'F', '0', '3'},
                               {'R', 'B', 'Q', 'I', 'V', 'F', '0', '2'},
                               {'R', 'B', 'Q', 'I', 'V', 'F', '0', '1'}};
constexpr std::uint32_t kVersions[] = {5, 4, 3, 2, 1};
constexpr std::uint32_t kVersionV2 = 2;  // adds tombstones
constexpr std::uint32_t kVersionV3 = 3;  // adds metric + per-code norms
constexpr std::uint32_t kVersionV4 = 4;  // adds bits_per_dim + multi planes
constexpr std::uint32_t kVersionV5 = 5;  // adds the CRC-32 body footer
static_assert(std::size(kMagics) == std::size(kVersions),
              "every readable magic needs its version");
}  // namespace

Status IvfRabitqIndex::Save(const std::string& path) const {
  if (lists_.empty()) return Status::FailedPrecondition("index not built");
  // Crash-safe: the blob lands in `<path>.tmp` and only a fully written,
  // cleanly closed file is renamed over `path` (the same pattern
  // serve_demo's --metrics-out exporter uses). A crash or write fault at
  // any point leaves the previous snapshot untouched.
  const std::string tmp = path + ".tmp";
  const Status body = SaveBody(tmp);
  if (!body.ok()) {
    std::remove(tmp.c_str());
    return body;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::Ok();
}

Status IvfRabitqIndex::SaveBody(const std::string& path) const {
  std::unique_ptr<BinaryWriter> writer;
  RABITQ_RETURN_IF_ERROR(BinaryWriter::Open(path, &writer));
  RABITQ_RETURN_IF_ERROR(WriteHeader(writer.get(), kMagics[0], kVersions[0]));
  // v5: everything after the header feeds the CRC-32 footer.
  writer->EnableChecksum();

  // v3: the metric comes FIRST so Load can validate it before reading (or
  // reconstructing) anything expensive.
  RABITQ_RETURN_IF_ERROR(
      writer->WriteU32(static_cast<std::uint32_t>(metric_)));

  // Quantizer configuration (the rotator is re-derived from this on load).
  const RabitqConfig& config = encoder_.config();
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(dim()));
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(encoder_.total_bits()));
  RABITQ_RETURN_IF_ERROR(writer->WriteF32(config.epsilon0));
  RABITQ_RETURN_IF_ERROR(writer->WriteU32(config.query_bits));
  RABITQ_RETURN_IF_ERROR(
      writer->WriteU32(static_cast<std::uint32_t>(config.rotator)));
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(config.seed));
  // v4: the code width per dimension; gates the per-code multi payload.
  const std::uint32_t bits_per_dim =
      static_cast<std::uint32_t>(config.bits_per_dim);
  RABITQ_RETURN_IF_ERROR(writer->WriteU32(bits_per_dim));

  // Raw vectors (chunk by chunk -- the store is not one contiguous block)
  // and centroids.
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(data_.rows()));
  for (std::size_t r = 0; r < data_.rows();) {
    const std::size_t run =
        std::min(ChunkedVectorStore::kChunkRows - (r % ChunkedVectorStore::kChunkRows),
                 data_.rows() - r);
    RABITQ_RETURN_IF_ERROR(
        writer->WriteBytes(data_.Row(r), run * dim() * sizeof(float)));
    r += run;
  }
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(centroids_.rows()));
  RABITQ_RETURN_IF_ERROR(writer->WriteBytes(
      centroids_.data(), centroids_.size() * sizeof(float)));

  // Total list entries (live + tombstoned): un-compacted updates make the
  // per-list entry count unbounded in n, so Load needs the real total to
  // sanity-check per-list array lengths against.
  std::uint64_t total_entries = 0;
  for (const List& list : lists_) total_entries += list.ids.size();
  RABITQ_RETURN_IF_ERROR(writer->WriteU64(total_entries));

  // Per-list ids, tombstones and code arrays.
  for (const List& list : lists_) {
    RABITQ_FAILPOINT("snapshot.write",
                     return Status::IoError("injected snapshot write fault"));
    RABITQ_RETURN_IF_ERROR(
        writer->WriteArray(list.ids.data(), list.ids.size()));
    RABITQ_RETURN_IF_ERROR(
        writer->WriteArray(list.dead.data(), list.dead.size()));
    const std::size_t n = list.codes.size();
    RABITQ_RETURN_IF_ERROR(writer->WriteU64(n));
    for (std::size_t i = 0; i < n; ++i) {
      const RabitqCodeView view = list.codes.View(i);
      RABITQ_RETURN_IF_ERROR(writer->WriteBytes(
          view.bits, list.codes.words_per_code() * sizeof(std::uint64_t)));
      RABITQ_RETURN_IF_ERROR(writer->WriteF32(view.dist_to_centroid));
      RABITQ_RETURN_IF_ERROR(writer->WriteF32(view.o_o));
      RABITQ_RETURN_IF_ERROR(writer->WriteU32(view.bit_count));
      // v3: ||o_r||^2, stored (not recomputed at load: Update overwrites the
      // raw row of a stale entry, so the raw vectors cannot reproduce every
      // entry's norm) regardless of metric.
      RABITQ_RETURN_IF_ERROR(writer->WriteF32(list.codes.norm_sq(i)));
      // v4 multi payload: the low bit planes and the primary multi factors
      // (the rotated residual they derive from is never stored).
      if (bits_per_dim > 1) {
        RABITQ_RETURN_IF_ERROR(writer->WriteBytes(
            list.codes.ExtraPlanesAt(i),
            list.codes.extra_words_per_code() * sizeof(std::uint64_t)));
        RABITQ_RETURN_IF_ERROR(writer->WriteF32(list.codes.m_o_o(i)));
        RABITQ_RETURN_IF_ERROR(writer->WriteF32(list.codes.m_alpha(i)));
        RABITQ_RETURN_IF_ERROR(writer->WriteF32(list.codes.m_beta(i)));
        RABITQ_RETURN_IF_ERROR(writer->WriteF32(list.codes.m_code_sum(i)));
      }
    }
  }
  RABITQ_RETURN_IF_ERROR(writer->WriteChecksumFooter());
  return writer->Close();
}

Status IvfRabitqIndex::Load(const std::string& path) {
  std::unique_ptr<BinaryReader> reader;
  RABITQ_RETURN_IF_ERROR(BinaryReader::Open(path, &reader));
  RABITQ_FAILPOINT("snapshot.read",
                   return Status::IoError("injected snapshot read fault"));
  std::size_t format = 0;
  RABITQ_RETURN_IF_ERROR(ExpectHeaderOneOf(reader.get(), kMagics, kVersions,
                                           std::size(kMagics), &format));
  // v5 bodies are checksummed; accumulate from the first post-header byte
  // so the footer check at the end covers everything the loader trusted.
  const bool has_checksum = kVersions[format] >= kVersionV5;
  if (has_checksum) reader->EnableChecksum();
  const bool has_tombstones = kVersions[format] >= kVersionV2;
  const bool has_metric = kVersions[format] >= kVersionV3;
  const bool has_norm_sq = kVersions[format] >= kVersionV3;
  const bool has_bits_per_dim = kVersions[format] >= kVersionV4;

  // v3 stores the metric right after the header; it is range-checked and
  // run through the ValidateMetric funnel BEFORE anything else is read --
  // in particular before encoder_.Init's O(B^3) rotator reconstruction --
  // so a corrupt metric byte fails closed cheaply. v1/v2 predate non-L2
  // metrics, so their metric is kL2 by construction.
  if (has_metric) {
    std::uint32_t metric_raw = 0;
    RABITQ_RETURN_IF_ERROR(reader->ReadU32(&metric_raw));
    if (metric_raw > kMaxMetricValue) {
      return Status::IoError("corrupt metric");
    }
    metric_ = static_cast<Metric>(metric_raw);
  } else {
    metric_ = Metric::kL2;
  }
  RABITQ_RETURN_IF_ERROR(ValidateMetric(metric_));

  std::uint64_t dim = 0, total_bits = 0, seed = 0;
  std::uint32_t query_bits = 0, rotator_kind = 0;
  float epsilon0 = 0.0f;
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&dim));
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&total_bits));
  RABITQ_RETURN_IF_ERROR(reader->ReadF32(&epsilon0));
  RABITQ_RETURN_IF_ERROR(reader->ReadU32(&query_bits));
  RABITQ_RETURN_IF_ERROR(reader->ReadU32(&rotator_kind));
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&seed));
  // v4: per-dimension code width, validated up front (pre-v4 snapshots were
  // all written at the only width that existed, 1).
  std::uint32_t bits_per_dim = 1;
  if (has_bits_per_dim) {
    RABITQ_RETURN_IF_ERROR(reader->ReadU32(&bits_per_dim));
    if (bits_per_dim != 1 && bits_per_dim != 2 && bits_per_dim != 4 &&
        bits_per_dim != 8) {
      return Status::IoError("corrupt bits_per_dim");
    }
  }
  if (dim == 0 || dim > (1u << 20)) return Status::IoError("corrupt dim");
  // Bound the code width BEFORE Init reconstructs the B x B rotator (an
  // O(B^3) orthogonalization for kDense): a bit-flipped width must fail
  // closed, not hang or OOM. Legitimate widths are the padded dimension
  // times at most a small zero-padding factor (Section 5.1); 8x is already
  // far beyond anything the accuracy knob pays for.
  const std::uint64_t padded_dim = (dim + 63) / 64 * 64;
  if (total_bits == 0 || total_bits % 64 != 0 ||
      total_bits > 8 * padded_dim) {
    return Status::IoError("corrupt code width");
  }
  if (rotator_kind > static_cast<std::uint32_t>(RotatorKind::kIdentity)) {
    return Status::IoError("corrupt rotator kind");
  }

  RabitqConfig config;
  // kFht may have rounded the configured width up to a power of two; the
  // stored value is the actual width, which Init accepts for kDense and
  // re-rounds identically for kFht.
  config.total_bits =
      static_cast<RotatorKind>(rotator_kind) == RotatorKind::kFht
          ? 0
          : total_bits;
  config.epsilon0 = epsilon0;
  config.query_bits = static_cast<int>(query_bits);
  config.bits_per_dim = bits_per_dim;
  config.rotator = static_cast<RotatorKind>(rotator_kind);
  config.seed = seed;
  RABITQ_RETURN_IF_ERROR(encoder_.Init(dim, config));
  if (encoder_.total_bits() != total_bits) {
    return Status::IoError("reconstructed code width mismatch");
  }

  std::uint64_t n = 0;
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&n));
  if (n > (std::uint64_t{1} << 40) / std::max<std::uint64_t>(dim, 1) ||
      n * dim * sizeof(float) > reader->BytesRemaining()) {
    return Status::IoError("corrupt vector count");
  }
  data_.Init(dim);
  {
    // Stream the raw rows into the chunked store a chunk at a time.
    std::vector<float> row_buf(ChunkedVectorStore::kChunkRows * dim);
    for (std::uint64_t r = 0; r < n;) {
      const std::size_t run = static_cast<std::size_t>(
          std::min<std::uint64_t>(ChunkedVectorStore::kChunkRows, n - r));
      RABITQ_RETURN_IF_ERROR(
          reader->ReadBytes(row_buf.data(), run * dim * sizeof(float)));
      for (std::size_t i = 0; i < run; ++i) {
        data_.Append(row_buf.data() + i * dim);
      }
      r += run;
    }
  }

  std::uint64_t num_lists = 0;
  RABITQ_RETURN_IF_ERROR(reader->ReadU64(&num_lists));
  if (num_lists == 0 || num_lists > n + 1 ||
      num_lists * dim * sizeof(float) > reader->BytesRemaining()) {
    return Status::IoError("corrupt list count");
  }
  centroids_.Reset(num_lists, dim);
  RABITQ_RETURN_IF_ERROR(
      reader->ReadBytes(centroids_.data(), centroids_.size() * sizeof(float)));

  rotated_centroids_.Reset(num_lists, encoder_.total_bits());
  for (std::size_t l = 0; l < num_lists; ++l) {
    encoder_.rotator().InverseRotate(centroids_.Row(l),
                                     rotated_centroids_.Row(l));
  }

  // v2 lists may exceed n entries (Update leaves a stale entry per
  // re-encode, unboundedly many until compaction), so the per-list sanity
  // bound comes from the stored total entry count; v1 entries are exactly
  // the n build-time ids.
  std::uint64_t total_entries = n;
  if (has_tombstones) {
    RABITQ_RETURN_IF_ERROR(reader->ReadU64(&total_entries));
    if (total_entries > (std::uint64_t{1} << 40)) {
      return Status::IoError("corrupt entry count");
    }
  }

  lists_.assign(num_lists, List{});
  const std::size_t words = WordsForBits(total_bits);
  std::vector<std::uint64_t> bits(words);
  const std::size_t extra_words =
      bits_per_dim > 1 ? (bits_per_dim - 1) * words : 0;
  std::vector<std::uint64_t> extra(extra_words);
  num_tombstones_ = 0;
  std::uint64_t entries_seen = 0;
  for (List& list : lists_) {
    RABITQ_RETURN_IF_ERROR(
        (reader->ReadArray<std::uint32_t>(&list.ids, total_entries)));
    entries_seen += list.ids.size();
    if (entries_seen > total_entries) {
      return Status::IoError("list entries exceed stored total");
    }
    if (has_tombstones) {
      RABITQ_RETURN_IF_ERROR(
          (reader->ReadArray<std::uint8_t>(&list.dead, total_entries)));
      if (list.dead.size() != list.ids.size()) {
        return Status::IoError("list id/tombstone count mismatch");
      }
      for (const std::uint8_t d : list.dead) list.num_dead += d != 0;
      num_tombstones_ += list.num_dead;
    } else {
      list.dead.assign(list.ids.size(), 0);
    }
    std::uint64_t codes = 0;
    RABITQ_RETURN_IF_ERROR(reader->ReadU64(&codes));
    if (codes != list.ids.size()) {
      return Status::IoError("list id/code count mismatch");
    }
    list.codes.Init(total_bits, metric_, bits_per_dim);
    list.codes.Reserve(codes);
    for (std::uint64_t i = 0; i < codes; ++i) {
      float dist = 0.0f, o_o = 0.0f, norm_sq = 0.0f;
      std::uint32_t bit_count = 0;
      RABITQ_RETURN_IF_ERROR(
          reader->ReadBytes(bits.data(), words * sizeof(std::uint64_t)));
      RABITQ_RETURN_IF_ERROR(reader->ReadF32(&dist));
      RABITQ_RETURN_IF_ERROR(reader->ReadF32(&o_o));
      RABITQ_RETURN_IF_ERROR(reader->ReadU32(&bit_count));
      // Pre-v3 snapshots carry no norms; they are all-kL2, whose factors
      // never read norm_sq, so 0 is not just a placeholder but exact.
      if (has_norm_sq) {
        RABITQ_RETURN_IF_ERROR(reader->ReadF32(&norm_sq));
      }
      if (bits_per_dim > 1) {
        float m_o_o = 1.0f, m_alpha = 0.0f, m_beta = 0.0f, m_code_sum = 0.0f;
        RABITQ_RETURN_IF_ERROR(reader->ReadBytes(
            extra.data(), extra_words * sizeof(std::uint64_t)));
        RABITQ_RETURN_IF_ERROR(reader->ReadF32(&m_o_o));
        RABITQ_RETURN_IF_ERROR(reader->ReadF32(&m_alpha));
        RABITQ_RETURN_IF_ERROR(reader->ReadF32(&m_beta));
        RABITQ_RETURN_IF_ERROR(reader->ReadF32(&m_code_sum));
        list.codes.Append(bits.data(), dist, o_o, bit_count, norm_sq,
                          extra.data(), m_o_o, m_alpha, m_beta, m_code_sum);
      } else {
        list.codes.Append(bits.data(), dist, o_o, bit_count, norm_sq);
      }
    }
    if (!list.ids.empty()) list.codes.Finalize();
  }

  // Rebuild the per-id lifecycle state from the list contents: an id is
  // live iff it has a (unique) non-dead entry.
  id_live_.assign(n, 0);
  id_to_list_.assign(n, 0);
  id_to_pos_.assign(n, 0);
  live_count_ = 0;
  for (std::size_t l = 0; l < lists_.size(); ++l) {
    const List& list = lists_[l];
    for (std::size_t p = 0; p < list.ids.size(); ++p) {
      const std::uint32_t id = list.ids[p];
      if (id >= n) return Status::IoError("list id out of range");
      if (list.dead[p]) continue;
      if (id_live_[id]) {
        return Status::IoError("id live in more than one list entry");
      }
      id_live_[id] = 1;
      id_to_list_[id] = static_cast<std::uint32_t>(l);
      id_to_pos_[id] = static_cast<std::uint32_t>(p);
      ++live_count_;
    }
  }
  // The structural bounds above catch impossible shapes; the footer catches
  // everything else (flipped payload bits that still parse).
  if (has_checksum) {
    RABITQ_RETURN_IF_ERROR(reader->VerifyChecksumFooter());
  }
  return Status::Ok();
}

}  // namespace rabitq
