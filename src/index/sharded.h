// Sharded IVF+RaBitQ: hash-partitions ids round-robin across S independent
// IvfRabitqIndex shards, the scaling move of the GPU-native and Ascend
// RaBitQ follow-ups -- the paper's per-list estimator and error bound are
// untouched, each shard is just a smaller instance of the same index.
//
// What sharding buys:
//   * parallel build: shards encode (and, under kPerShard clustering, also
//     cluster) concurrently;
//   * parallel mutation: each shard has its own writer serialization point
//     (SearchEngine keeps one writer mutex PER SHARD instead of one for the
//     whole engine), so concurrent inserts/deletes/updates that hash to
//     different shards no longer contend;
//   * scatter-gather search: a query fans out to every shard and the
//     per-shard top-k candidate heaps are merged into one global result.
//
// Determinism contract: under kShared clustering (one global KMeans, every
// shard quantizes against the same centroid set) the scatter-gather result
// is BIT-IDENTICAL to a single-shard index over the same data and seed:
//   * per-list query rounding is seeded by MixSeed(query seed, list id), so
//     a list's quantized query does not depend on which shard holds it;
//   * per-code estimates are position-independent (exact integer LUTs), so
//     a code's estimate does not depend on which codes share its block;
//   * merges resolve ties by (key, global id), as does TopKHeap, so results
//     are a pure function of the candidate SET, not of scan order.
// For kFixedCandidates and kNone the identity is unconditional. For
// kErrorBound it additionally requires that no candidate's eps0 lower bound
// is violated AT the k-th-distance boundary: each shard prunes against its
// own (weaker) running threshold, and a bound violation there can admit a
// candidate the single-shard scan pruned. Violations are the designed-in
// rare event of the paper's bound (rate measured by
// error_bound_property_test); with a fixed seed the outcome is
// deterministic either way, which is what the parity tests pin.
// Under kFixedCandidates the re-rank budget R is split across shards by
// candidate quality: every shard submits its best estimates and the merge
// re-ranks the globally best R -- exactly the candidates the single-shard
// scan would have re-ranked.
//
// Id scheme: global ids are dense in [0, size()); id g lives on shard
// g % num_shards. Local ids are per-shard dense; the maps between the two
// are explicit (concurrent inserts may complete out of order within a
// shard), guarded by id_mutex_. Shard CONTENT thread-safety is inherited
// from IvfRabitqIndex: const methods are pure reads, mutators need
// exclusive access to their shard -- SearchEngine supplies per-shard
// shared/exclusive locking for serving workloads.

#ifndef RABITQ_INDEX_SHARDED_H_
#define RABITQ_INDEX_SHARDED_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/ivf.h"

namespace rabitq {

enum class ShardClustering {
  /// One global KMeans; every shard quantizes against the same centroid
  /// set. Scatter-gather results are bit-identical to a single-shard index.
  kShared,
  /// Each shard trains its own KMeans over its id slice: fully independent
  /// shards and a parallel (multi-KMeans) build, at the cost of exact
  /// single-shard result parity (recall parity still holds -- re-ranking is
  /// exact either way).
  kPerShard,
};

struct ShardedConfig {
  std::size_t num_shards = 1;
  ShardClustering clustering = ShardClustering::kShared;
  IvfConfig ivf;  // per-shard list count and kmeans knobs
  RabitqConfig rabitq;
};

/// Outcome of the scatter-gather fan-out, filled by MergeShardResults: how
/// many shards contributed to the merge, how many were excluded by a hard
/// failure, and whether the merged result is partial (a shard tripped its
/// deadline mid-scan, or failed outright). The serving layers copy these
/// into SearchResponse so a caller can tell a complete answer from a
/// degraded one.
struct ShardMergeInfo {
  std::uint32_t shards_ok = 0;
  std::uint32_t shards_failed = 0;
  bool partial = false;
};

/// Reusable workspace for ShardedIndex::SearchWithScratch and
/// MergeShardResults. Never share one scratch between concurrent callers.
struct ShardedSearchScratch {
  /// One merge candidate: sort key (exact distance or estimate), global id,
  /// and a stable pointer to the raw vector for exact re-ranking.
  struct MergeCand {
    float key;
    std::uint32_t gid;
    const float* vec;
  };

  IvfSearchScratch shard_scratch;
  std::vector<std::vector<Neighbor>> shard_results;
  std::vector<IvfSearchStats> shard_stats;
  std::vector<Status> shard_statuses;
  std::vector<float> rotated_query;
  std::vector<float> norm_query;  // cosine: unit-normalized query copy
  std::vector<MergeCand> cands;
};

class ShardedIndex {
 public:
  static constexpr std::size_t kMaxShards = 1024;

  ShardedIndex() = default;
  ShardedIndex(ShardedIndex&&) = default;
  ShardedIndex& operator=(ShardedIndex&&) = default;

  /// Wraps an already-built single index as a 1-shard configuration
  /// (global ids == local ids). SearchEngine uses this to keep serving
  /// plain IvfRabitqIndex instances through the sharded machinery.
  static ShardedIndex FromSingle(IvfRabitqIndex&& index);

  /// Builds the sharded index: partitions ids round-robin, clusters per
  /// `config.clustering`, and builds every shard in parallel. Requires
  /// 1 <= num_shards <= min(kMaxShards, data.rows()).
  Status Build(const Matrix& data, const ShardedConfig& config);

  std::size_t num_shards() const { return shards_.size(); }
  const IvfRabitqIndex& shard(std::size_t s) const { return *shards_[s]; }
  /// Mutable shard access for callers that provide their own exclusion
  /// (SearchEngine's per-shard compaction path).
  IvfRabitqIndex* mutable_shard(std::size_t s) { return shards_[s].get(); }

  /// Total global ids ever assigned (including deleted/pending ones).
  std::size_t size() const;
  /// Live vectors summed over shards.
  std::size_t live_size() const;
  /// Tombstoned entries summed over shards.
  std::size_t num_tombstones() const;

  std::size_t dim() const { return shards_.empty() ? 0 : shards_[0]->dim(); }
  /// Per-shard list count (all shards are configured identically).
  std::size_t num_lists() const {
    return shards_.empty() ? 0 : shards_[0]->num_lists();
  }
  const RabitqEncoder& encoder() const { return shards_[0]->encoder(); }
  /// Distance metric (all shards are configured identically; enforced on
  /// Load against the manifest).
  Metric metric() const {
    return shards_.empty() ? Metric::kL2 : shards_[0]->metric();
  }

  /// True iff `id` has no live entry (never assigned, pending, or deleted).
  bool IsDeleted(std::uint32_t id) const;
  /// Raw vector of a live global id.
  const float* vector(std::uint32_t id) const;
  /// Shard that owns `id` (stable for the id's lifetime). False if the id
  /// was never assigned.
  bool TryShardOf(std::uint32_t id, std::uint32_t* shard) const;
  /// Shard-local id of a global id (stale for deleted ids, like list_of).
  std::uint32_t local_of(std::uint32_t id) const;

  /// Unified request API: scatter-gather k-NN over all shards; GLOBAL ids
  /// in the response. request.options.filter (global ids) is sliced per
  /// shard -- each shard scan consults it through its local->global id map
  /// (IdFilter::WithIdMap), so filtering happens inside the per-shard scan,
  /// never as a merge-time pass. The result is a pure function of (index,
  /// request); options.seed unset means seed 0.
  SearchResponse Search(const SearchRequest& request) const;

#ifndef RABITQ_NO_DEPRECATED
  /// Legacy overload, now a thin shim over the request API (definition in
  /// search_compat.h).
  RABITQ_DEPRECATED("use Search(const SearchRequest&) with options.seed")
  Status Search(const float* query, const IvfSearchParams& params,
                std::uint64_t seed, std::vector<Neighbor>* out,
                IvfSearchStats* stats = nullptr) const;
#endif  // RABITQ_NO_DEPRECATED

  /// Search core with caller-owned workspace (see IvfRabitqIndex contract).
  /// Shard failures are ISOLATED: a shard that fails hard contributes
  /// nothing to the merge, a shard that trips params.deadline contributes
  /// its partial candidates; `*info` (optional) reports the tallies. The
  /// returned status is Ok while at least one shard merged cleanly and no
  /// deadline tripped, kDeadlineExceeded when any shard ran out of time
  /// (merged results are still written), and the first shard error only
  /// when EVERY shard failed hard.
  Status SearchWithScratch(const float* query, const float* rotated_query,
                           const IvfSearchParams& params, std::uint64_t seed,
                           ShardedSearchScratch* scratch,
                           std::vector<Neighbor>* out,
                           IvfSearchStats* stats = nullptr,
                           ShardMergeInfo* info = nullptr) const;

  /// Scatter half: searches ONE shard, returning shard-LOCAL candidates.
  /// kErrorBound runs unchanged (exact per-shard top-k); kFixedCandidates
  /// is mapped to an estimate gather (policy kNone, k = max(k, R)) so the
  /// merge can split the re-rank budget globally; kNone runs unchanged.
  /// An active params.filter (global ids) is rebound to this shard's
  /// local->global map before the scan, so the pushdown happens per shard.
  /// SearchEngine fans these out as (query x shard) cells. Each cell
  /// inherits the per-shard fast path of IvfRabitqIndex::SearchWithScratch
  /// (nprobe-aware partial probe ordering, the fused estimate+prune
  /// kernel), so the scatter cost scales with nprobe, not num_lists.
  Status SearchShard(std::size_t shard, const float* query,
                     const float* rotated_query, const IvfSearchParams& params,
                     std::uint64_t seed, IvfSearchScratch* scratch,
                     std::vector<Neighbor>* out, IvfSearchStats* stats) const;

  /// Gather half: merges num_shards() consecutive per-shard result vectors
  /// (local ids, from SearchShard) into the global top-k. For
  /// kFixedCandidates this selects the globally best max(k, R) estimates
  /// and re-ranks them exactly. `shard_stats` (optional, num_shards()
  /// entries) is aggregated into `*stats` along with the merge's re-ranks.
  /// `shard_statuses` (optional, num_shards() entries) enables per-shard
  /// degradation: a hard-failed shard's results and stats are EXCLUDED from
  /// the merge, a kDeadlineExceeded shard's partial results are included;
  /// `*info` reports shards_ok/shards_failed/partial. The returned status
  /// follows the SearchWithScratch contract above. Null shard_statuses
  /// means every shard succeeded (the legacy all-or-nothing callers).
  Status MergeShardResults(const float* query, const IvfSearchParams& params,
                           const std::vector<Neighbor>* shard_results,
                           const IvfSearchStats* shard_stats,
                           ShardedSearchScratch* scratch,
                           std::vector<Neighbor>* out,
                           IvfSearchStats* stats,
                           const Status* shard_statuses = nullptr,
                           ShardMergeInfo* info = nullptr) const;

  /// Appends one vector: ReserveId + CompleteAdd (single-writer callers).
  Status Add(const float* vec, std::uint32_t* id_out = nullptr);

  /// Two-phase add for concurrent writers (SearchEngine): ReserveId hands
  /// out the next global id and its shard without touching shard content
  /// (safe under any shard locks); the caller then takes that shard's
  /// exclusive lock and calls CompleteAdd. A reserved id whose CompleteAdd
  /// never runs (or fails) stays permanently dead -- never a dangling map.
  Status ReserveId(std::uint32_t* id_out, std::uint32_t* shard_out);
  Status CompleteAdd(std::uint32_t id, std::uint32_t shard, const float* vec);

  /// Tombstones a global id (O(1), within its shard).
  Status Delete(std::uint32_t id);

  /// Replaces the vector of a live id in place. The id keeps its shard
  /// (hash partitioning is by id) and its global identity.
  Status Update(std::uint32_t id, const float* vec);

  /// Plan+commit compaction across every shard (exclusive access required).
  Status Compact(float min_ratio = 0.0f, std::size_t min_dead = 1);

  /// Writes a sharded snapshot: `path` becomes a directory holding a
  /// MANIFEST ("RBQSHRD2": metric, shard count, id space, per-shard id
  /// maps) plus one v5 ("RBQIVF05", CRC-32-footed) blob per shard, written
  /// in parallel. Crash-safe in two phases: every blob and the manifest are
  /// fully written to temporary names first, then renamed into place with
  /// the manifest last -- a crash or write fault during the first phase
  /// leaves the previous snapshot untouched.
  Status Save(const std::string& path) const;

  /// Restores a snapshot written by Save (shard blobs load in parallel).
  /// Legacy "RBQSHRD1" manifests (which predate non-L2 metrics) load as
  /// kL2; every shard blob's metric must match the manifest's. A `path`
  /// that is a regular FILE is read as a single-file snapshot and loaded
  /// into a 1-shard configuration, so pre-sharding snapshots keep working
  /// unchanged.
  Status Load(const std::string& path);

 private:
  static constexpr std::uint32_t kPendingLocal = 0xFFFFFFFFu;

  /// Rebuilds id_shard_/id_local_ from local_to_global_; fails closed if
  /// the maps are not a bijection onto [0, next_id_).
  Status RebuildIdMaps();

  std::vector<std::unique_ptr<IvfRabitqIndex>> shards_;

  // Global<->local id maps. Guarded by id_mutex_ (a pointer so the class
  // stays movable); local_to_global_[s] is instead guarded by shard s's
  // exclusivity (appended only by CompleteAdd, read by merges that already
  // hold the shard at least shared).
  std::unique_ptr<std::mutex> id_mutex_ = std::make_unique<std::mutex>();
  std::uint32_t next_id_ = 0;
  std::vector<std::uint32_t> id_shard_;
  std::vector<std::uint32_t> id_local_;
  std::vector<std::vector<std::uint32_t>> local_to_global_;
};

}  // namespace rabitq

// Deprecated-overload shim definitions (see search_compat.h for the scheme).
#define RABITQ_SEARCH_COMPAT_HAVE_SHARDED 1
#include "index/search_compat.h"

#endif  // RABITQ_INDEX_SHARDED_H_
