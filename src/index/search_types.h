// The unified query surface shared by every search layer (IvfRabitqIndex,
// ShardedIndex, SearchEngine): one SearchRequest in, one SearchResponse out.
// The paper's protocol is "one thread, one query, one metric, no
// predicates"; serving workloads are not. This header is where the extra
// dimensions live so that new capabilities (filters, metrics) extend ONE
// request type instead of growing another positional parameter on three
// Search spellings. The metric itself is an INDEX property, not a request
// property -- see core/metric.h -- so requests stay metric-agnostic and
// scores are ascending-is-better under every metric.
//
//   SearchRequest  = non-owning query view + SearchOptions
//   SearchOptions  = k / nprobe / rerank policy / estimator knobs
//                    + optional per-query seed + per-query IdFilter
//   SearchResponse = Status + neighbors + IvfSearchStats
//
// IdFilter is a per-query predicate pushed INTO the scan: the allow/deny
// decision is folded into the fused kernel's 32-bit survivors mask alongside
// tombstones (see EstimateBlockFusedPruned's lane_mask), so filtered-out
// codes never reach exact re-ranking and there is no post-hoc filtering
// pass. Filtered search is therefore bit-identical to brute force over the
// allowed subset, for the same reason unfiltered search is bit-identical to
// brute force over the live set.

#ifndef RABITQ_INDEX_SEARCH_TYPES_H_
#define RABITQ_INDEX_SEARCH_TYPES_H_

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/metric.h"
#include "index/brute_force.h"
#include "util/status.h"

// Deprecation machinery for the legacy (pre-SearchRequest) overloads:
//   * RABITQ_NO_DEPRECATED hides the compatibility shims entirely -- the
//     escape hatch for consumers proving they are off the old API (see
//     search_compat.h).
//   * RABITQ_SUPPRESS_DEPRECATED keeps the shims but drops the
//     [[deprecated]] attribute -- for TUs that deliberately exercise them
//     (the old-vs-new parity tests).
#if defined(RABITQ_SUPPRESS_DEPRECATED)
#define RABITQ_DEPRECATED(msg)
#else
#define RABITQ_DEPRECATED(msg) [[deprecated(msg)]]
#endif

namespace rabitq {

// Metric / MetricName / ValidateMetric / MetricDistance moved down to
// core/metric.h (included above) when kInnerProduct and kCosine unlocked:
// the estimator and query-preprocessing layers below this header now need
// the enum too. Every existing `#include "index/search_types.h"` keeps
// seeing the same names.

enum class RerankPolicy {
  kErrorBound,       // paper Section 4, no tunable parameter
  kFixedCandidates,  // conventional top-R re-ranking
  kNone,             // rank by estimates only
};

/// Per-query id predicate, pushed down into candidate selection. A filter is
/// a non-owning VIEW: the bitmap / predicate context must outlive every
/// search using it (for SubmitAsync, until the returned future resolves).
/// Copying the view is trivial (no allocation), which is what lets the
/// per-(query x shard) fan-out carry it by value.
///
/// Bitmap semantics: bit `id` of `bits` (LSB-first within each u64 word)
/// covers ids in [0, num_ids). Ids at or past num_ids are DENIED by an
/// allow-bitmap (absent = not allowed) and ALLOWED by a deny-bitmap
/// (absent = not denied) -- so a deny-bitmap snapshot taken before an
/// insert naturally admits the newer ids.
class IdFilter {
 public:
  /// Returns true iff `id` may appear in results. `context` is the pointer
  /// given to FromPredicate, passed back verbatim.
  using Predicate = bool (*)(void* context, std::uint32_t id);

  constexpr IdFilter() = default;

  /// Only ids whose bit is set may appear in results.
  static IdFilter AllowBitmap(const std::uint64_t* bits, std::size_t num_ids) {
    IdFilter f;
    f.kind_ = Kind::kAllow;
    f.bits_ = bits;
    f.num_ids_ = num_ids;
    return f;
  }

  /// Ids whose bit is set are excluded from results.
  static IdFilter DenyBitmap(const std::uint64_t* bits, std::size_t num_ids) {
    IdFilter f;
    f.kind_ = Kind::kDeny;
    f.bits_ = bits;
    f.num_ids_ = num_ids;
    return f;
  }

  /// Arbitrary predicate. Called once per live candidate code in every
  /// probed list, so it should be cheap; it may be called concurrently from
  /// several worker threads and must be thread-safe.
  static IdFilter FromPredicate(Predicate predicate, void* context) {
    IdFilter f;
    f.kind_ = predicate != nullptr ? Kind::kPredicate : Kind::kNone;
    f.predicate_ = predicate;
    f.context_ = context;
    return f;
  }

  /// False for a default-constructed filter: no filtering, zero overhead on
  /// the scan (the search path special-cases inactive filters).
  bool active() const { return kind_ != Kind::kNone; }

  bool Allows(std::uint32_t id) const {
    if (id_map_ != nullptr) id = id_map_[id];
    switch (kind_) {
      case Kind::kNone:
        return true;
      case Kind::kAllow:
        return TestBit(id);
      case Kind::kDeny:
        return !TestBit(id);
      case Kind::kPredicate:
        return predicate_(context_, id);
    }
    return true;
  }

  /// Shard-slicing hook (library-internal): the returned filter evaluates
  /// Allows(local_to_global[id]), so a shard search over LOCAL ids consults
  /// the caller's GLOBAL-id filter. `local_to_global` must cover every local
  /// id the shard search can produce and outlive the search.
  IdFilter WithIdMap(const std::uint32_t* local_to_global) const {
    IdFilter f = *this;
    f.id_map_ = local_to_global;
    return f;
  }

  // Introspection for serialization (the server's wire codec): bitmap
  // filters have a wire form, predicate filters do not.
  bool is_bitmap() const {
    return kind_ == Kind::kAllow || kind_ == Kind::kDeny;
  }
  bool is_deny_bitmap() const { return kind_ == Kind::kDeny; }
  /// Valid only when is_bitmap(); (num_ids + 63) / 64 words are readable.
  const std::uint64_t* bitmap_words() const { return bits_; }
  std::size_t bitmap_num_ids() const { return num_ids_; }

 private:
  enum class Kind : std::uint8_t { kNone, kAllow, kDeny, kPredicate };

  bool TestBit(std::uint32_t id) const {
    if (id >= num_ids_) return false;
    return (bits_[id >> 6] >> (id & 63u)) & 1u;
  }

  Kind kind_ = Kind::kNone;
  const std::uint64_t* bits_ = nullptr;
  std::size_t num_ids_ = 0;
  Predicate predicate_ = nullptr;
  void* context_ = nullptr;
  const std::uint32_t* id_map_ = nullptr;
};

/// Everything tunable about one query. The flat pre-request parameter
/// struct (IvfSearchParams) is now an alias of this type, so the engine's
/// scratch plumbing and the request API share one options vocabulary.
struct SearchOptions {
  std::size_t k = 100;
  std::size_t nprobe = 16;
  RerankPolicy policy = RerankPolicy::kErrorBound;
  /// Only for kFixedCandidates: number of candidates re-ranked exactly.
  std::size_t rerank_candidates = 1000;
  /// Overrides the encoder's eps0 when >= 0 (Fig. 5 sweep).
  float epsilon0_override = -1.0f;
  /// Use the packed fast-scan batch estimator (true) or the bitwise
  /// single-code estimator (false).
  bool use_batch_estimator = true;
  /// Base seed of the randomized query quantization. Unset: the layer
  /// serving the request picks one (the engine derives it from its config
  /// seed and the query's ticket; a bare index uses seed 0). Set: used
  /// verbatim, making the result a pure function of (index, query, options)
  /// regardless of which layer or how many threads serve it.
  std::optional<std::uint64_t> seed;
  /// Per-query id filter, pushed down into candidate selection (global ids
  /// when searching a ShardedIndex / SearchEngine).
  IdFilter filter;

  /// Sentinel for `deadline`: no deadline.
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  /// Absolute deadline for this query. Resolved from `timeout_us` at
  /// admission when left at kNoDeadline; once set it rides the options copy
  /// through engine -> ShardedIndex -> IvfRabitqIndex::SearchWithScratch,
  /// whose scan loop checks it every few fast-scan blocks. A query that
  /// trips its deadline stops scanning, returns whatever candidates it has
  /// (sorted, re-ranked as far as it got) and reports kDeadlineExceeded with
  /// SearchResponse::partial set. Queries with no deadline skip every check
  /// and are bit-identical to pre-deadline builds.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;

  /// Relative spelling of `deadline`: a budget in microseconds from the
  /// moment the serving layer admits the query (SubmitAsync / SearchBatch /
  /// Search entry). 0 = no timeout. Ignored when `deadline` is already set.
  std::uint64_t timeout_us = 0;

  /// True when either deadline form is armed.
  bool has_deadline() const {
    return deadline != kNoDeadline || timeout_us != 0;
  }

  /// Pins `deadline` to an absolute time, deriving it from `timeout_us`
  /// relative to `now` when only the relative form was given. Idempotent --
  /// every serving layer calls it on its options copy at entry.
  void ResolveDeadline(std::chrono::steady_clock::time_point now) {
    if (deadline == kNoDeadline && timeout_us != 0) {
      deadline = now + std::chrono::microseconds(timeout_us);
    }
  }
};

/// Legacy spelling of SearchOptions, kept so existing call sites (and the
/// scratch-level Search plumbing) keep compiling unchanged.
using IvfSearchParams = SearchOptions;

struct IvfSearchStats {
  std::size_t codes_estimated = 0;
  std::size_t candidates_reranked = 0;
  std::size_t lists_probed = 0;
  /// Live candidate codes excluded by the request's IdFilter before
  /// re-ranking (tombstoned entries are not double-counted here).
  std::size_t codes_filtered = 0;
  /// Stage-2 multi-bit refinements (indexes with bits_per_dim > 1 under
  /// kErrorBound only): candidates that survived the 1-bit prune and were
  /// re-estimated from the full B_d-bit code before exact re-ranking.
  /// Always 0 for 1-bit indexes and for kFixedCandidates/kNone.
  std::size_t codes_refined = 0;

  // Estimator-health telemetry, collected at kErrorBound re-rank where the
  // estimate, the eps0 lower bound and the exact distance are all in hand
  // -- a live measurement of the paper's Eq. 16 guarantee at zero extra
  // distance computations. (kFixedCandidates/kNone re-rank without bounds
  // and contribute nothing here.)
  /// Re-ranked candidates whose exact distance fell below the eps0 lower
  /// bound. rerank_bound_violations / candidates_reranked is the observed
  /// violation rate, which should track the Gaussian tail P(Z > eps0)
  /// (~2.9% at the paper's eps0 = 1.9; see error_bound_property_test).
  std::size_t rerank_bound_violations = 0;
  /// Re-ranked candidates with exact > 0 (denominator of the two sums).
  std::size_t rerank_health_samples = 0;
  /// Sum of (estimate - exact) / exact over health samples; its mean near 0
  /// is the live check of the estimator's unbiasedness (Theorem 3.2).
  double rerank_signed_err_sum = 0.0;
  /// Sum of lower_bound / exact over health samples; its mean in (0, 1]
  /// measures how tight the bound runs (1 = exact, -> 0 = vacuous).
  double rerank_tightness_sum = 0.0;
};

/// One query: a non-owning view of `dim()` floats plus its options. The
/// pointer must stay valid for the duration of the call (SubmitAsync copies
/// the vector, but NOT the filter's bitmap/context -- see IdFilter).
struct SearchRequest {
  const float* query = nullptr;
  SearchOptions options;
};

/// Outcome of one served query: per-query status (a failed query reports
/// here, not by poisoning its whole batch), neighbors sorted ascending by
/// (distance, id), and the per-query work counters.
///
/// Degraded outcomes carry results instead of failing the query: a deadline
/// trip or an isolated shard failure still returns the neighbors gathered
/// from the work that did finish, with `partial` set and the shard tallies
/// reporting how much of the fan-out contributed. Callers that cannot use
/// partial answers check `partial`; callers that can, use the neighbors
/// as-is (status kDeadlineExceeded still reports WHY they are partial).
struct SearchResponse {
  Status status;
  std::vector<Neighbor> neighbors;
  IvfSearchStats stats;

  /// True when `neighbors` reflects less than the full requested search:
  /// the query hit its deadline mid-scan, or one or more shards failed and
  /// were excluded from the merge.
  bool partial = false;
  /// Shards whose results made it into the merge (single-index layers count
  /// as one shard). 0 until a search actually ran.
  std::uint32_t shards_ok = 0;
  /// Shards excluded from the merge by a hard failure.
  std::uint32_t shards_failed = 0;

  bool ok() const { return status.ok(); }
};

}  // namespace rabitq

#endif  // RABITQ_INDEX_SEARCH_TYPES_H_
