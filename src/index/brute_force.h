// Exact nearest-neighbor search by exhaustive scan. Serves as the ground
// truth oracle for recall / distance-ratio metrics and as the re-ranking
// primitive (exact distances on shortlisted candidates).

#ifndef RABITQ_INDEX_BRUTE_FORCE_H_
#define RABITQ_INDEX_BRUTE_FORCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/metric.h"
#include "linalg/matrix.h"

namespace rabitq {

/// (distance key, id) pair ordered by key. The key is the metric's
/// minimization objective: squared L2 distance for kL2, the negated inner
/// product for kInnerProduct/kCosine (see MetricDistance).
using Neighbor = std::pair<float, std::uint32_t>;

/// Exact top-k of `query` over the rows of `data`, ascending by the
/// metric's distance key. Under kCosine both the query and each row are
/// normalized on the fly (zero-norm rows score 0, a zero-norm query scores
/// every row 0), so `data` may hold raw, un-normalized vectors.
std::vector<Neighbor> BruteForceSearch(const Matrix& data, const float* query,
                                       std::size_t k,
                                       Metric metric = Metric::kL2);

/// Bounded max-heap of the k best (smallest-distance) neighbors seen so far.
class TopKHeap {
 public:
  explicit TopKHeap(std::size_t k) : k_(k) {}

  std::size_t capacity() const { return k_; }
  std::size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() == k_; }

  /// Largest distance currently kept (+inf while not full).
  float Threshold() const;

  /// Inserts if dist beats the current threshold (or heap not full).
  void Push(float dist, std::uint32_t id);

  /// Extracts the neighbors sorted ascending by distance.
  std::vector<Neighbor> ExtractSorted();

 private:
  std::size_t k_;
  std::vector<Neighbor> heap_;  // max-heap on distance
};

}  // namespace rabitq

#endif  // RABITQ_INDEX_BRUTE_FORCE_H_
