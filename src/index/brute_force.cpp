#include "index/brute_force.h"

#include <algorithm>
#include <limits>

#include "linalg/vector_ops.h"

namespace rabitq {

float TopKHeap::Threshold() const {
  return full() ? heap_.front().first : std::numeric_limits<float>::max();
}

void TopKHeap::Push(float dist, std::uint32_t id) {
  if (!full()) {
    heap_.emplace_back(dist, id);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  // Full lexicographic (dist, id) comparison, not dist alone: duplicate
  // distances resolve to the smaller id, which makes the kept set a pure
  // function of the candidate SET (not of push order). Scatter-gather
  // sharding relies on this -- per-shard heaps see candidates in a different
  // order than a single-shard scan, and ties at the k-th distance must not
  // make the merged result diverge.
  if (Neighbor{dist, id} >= heap_.front()) return;
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.back() = {dist, id};
  std::push_heap(heap_.begin(), heap_.end());
}

std::vector<Neighbor> TopKHeap::ExtractSorted() {
  std::sort_heap(heap_.begin(), heap_.end());
  return std::move(heap_);
}

std::vector<Neighbor> BruteForceSearch(const Matrix& data, const float* query,
                                       std::size_t k, Metric metric) {
  TopKHeap heap(k);
  const std::size_t d = data.cols();
  if (metric == Metric::kCosine) {
    // Normalize both sides on the fly with the same NormalizeInPlace the
    // index applies at ingest/search, so the oracle's keys are bitwise the
    // keys an exact re-rank over the (normalized-at-ingest) index computes.
    std::vector<float> unit_query(query, query + d);
    NormalizeInPlace(unit_query.data(), d);  // zero-norm query: all keys 0
    std::vector<float> unit_row(d);
    for (std::size_t i = 0; i < data.rows(); ++i) {
      std::copy_n(data.Row(i), d, unit_row.begin());
      NormalizeInPlace(unit_row.data(), d);
      heap.Push(-Dot(unit_row.data(), unit_query.data(), d),
                static_cast<std::uint32_t>(i));
    }
  } else {
    for (std::size_t i = 0; i < data.rows(); ++i) {
      heap.Push(MetricDistance(metric, data.Row(i), query, d),
                static_cast<std::uint32_t>(i));
    }
  }
  return heap.ExtractSorted();
}

}  // namespace rabitq
