#include "index/brute_force.h"

#include <algorithm>
#include <limits>

#include "linalg/vector_ops.h"

namespace rabitq {

float TopKHeap::Threshold() const {
  return full() ? heap_.front().first : std::numeric_limits<float>::max();
}

void TopKHeap::Push(float dist, std::uint32_t id) {
  if (!full()) {
    heap_.emplace_back(dist, id);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  // Full lexicographic (dist, id) comparison, not dist alone: duplicate
  // distances resolve to the smaller id, which makes the kept set a pure
  // function of the candidate SET (not of push order). Scatter-gather
  // sharding relies on this -- per-shard heaps see candidates in a different
  // order than a single-shard scan, and ties at the k-th distance must not
  // make the merged result diverge.
  if (Neighbor{dist, id} >= heap_.front()) return;
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.back() = {dist, id};
  std::push_heap(heap_.begin(), heap_.end());
}

std::vector<Neighbor> TopKHeap::ExtractSorted() {
  std::sort_heap(heap_.begin(), heap_.end());
  return std::move(heap_);
}

std::vector<Neighbor> BruteForceSearch(const Matrix& data, const float* query,
                                       std::size_t k) {
  TopKHeap heap(k);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    heap.Push(L2SqrDistance(data.Row(i), query, data.cols()),
              static_cast<std::uint32_t>(i));
  }
  return heap.ExtractSorted();
}

}  // namespace rabitq
