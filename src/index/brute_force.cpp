#include "index/brute_force.h"

#include <algorithm>
#include <limits>

#include "linalg/vector_ops.h"

namespace rabitq {

float TopKHeap::Threshold() const {
  return full() ? heap_.front().first : std::numeric_limits<float>::max();
}

void TopKHeap::Push(float dist, std::uint32_t id) {
  if (!full()) {
    heap_.emplace_back(dist, id);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  if (dist >= heap_.front().first) return;
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.back() = {dist, id};
  std::push_heap(heap_.begin(), heap_.end());
}

std::vector<Neighbor> TopKHeap::ExtractSorted() {
  std::sort_heap(heap_.begin(), heap_.end());
  return std::move(heap_);
}

std::vector<Neighbor> BruteForceSearch(const Matrix& data, const float* query,
                                       std::size_t k) {
  TopKHeap heap(k);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    heap.Push(L2SqrDistance(data.Row(i), query, data.cols()),
              static_cast<std::uint32_t>(i));
  }
  return heap.ExtractSorted();
}

}  // namespace rabitq
