// THE deprecation header: every pre-SearchRequest overload of the three
// search layers lives here as a thin inline shim over the unified request
// API, so the whole legacy surface can be audited (or deleted -- define
// RABITQ_NO_DEPRECATED) in one place.
//
// Inclusion scheme: this header has NO top-level include guard on purpose.
// ivf.h, sharded.h and engine/search_engine.h each include it at their
// bottom after defining RABITQ_SEARCH_COMPAT_HAVE_<CLASS>; each sectioned
// block below is compiled exactly once (per-section guard), at the first
// inclusion where its class is complete. User code never includes this
// file directly -- pulling in the class header is enough, exactly as with
// the old out-of-line definitions.
//
// Migration map (see README "Query API" for the full table):
//   index.Search(q, params, seed, &out, &st)   -> index.Search({q, opts})
//   index.Search(q, params, &rng, &out, &st)   -> same, caller draws seed
//   sharded.Search(q, params, seed, &out, &st) -> sharded.Search({q, opts})
//   engine.SearchBatch(q, n, params, base,...) -> engine.SearchBatch(reqs,
//       n, &responses) with reqs[i].options.seed = QuerySeed(base, i)
//   engine.SubmitAsync(q[, params[, seed]])    -> engine.SubmitAsync(req)
// where opts is the old params with opts.seed carrying the explicit seed.
// Every shim is bit-identical to its replacement at equal seeds.

#ifndef RABITQ_NO_DEPRECATED

#if defined(RABITQ_SEARCH_COMPAT_HAVE_IVF) && \
    !defined(RABITQ_SEARCH_COMPAT_DEFINED_IVF_)
#define RABITQ_SEARCH_COMPAT_DEFINED_IVF_

namespace rabitq {

inline Status IvfRabitqIndex::Search(const float* query,
                                     const IvfSearchParams& params,
                                     std::uint64_t seed,
                                     std::vector<Neighbor>* out,
                                     IvfSearchStats* stats) const {
  if (out == nullptr) return Status::InvalidArgument("null output");
  SearchRequest request{query, params};
  request.options.seed = seed;
  SearchResponse response = Search(request);
  *out = std::move(response.neighbors);
  if (stats != nullptr) *stats = response.stats;
  return response.status;
}

inline Status IvfRabitqIndex::Search(const float* query,
                                     const IvfSearchParams& params, Rng* rng,
                                     std::vector<Neighbor>* out,
                                     IvfSearchStats* stats) const {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (out == nullptr) return Status::InvalidArgument("null output");
  SearchRequest request{query, params};
  request.options.seed = rng->NextU64();
  SearchResponse response = Search(request);
  *out = std::move(response.neighbors);
  if (stats != nullptr) *stats = response.stats;
  return response.status;
}

}  // namespace rabitq

#endif  // RABITQ_SEARCH_COMPAT_HAVE_IVF

#if defined(RABITQ_SEARCH_COMPAT_HAVE_SHARDED) && \
    !defined(RABITQ_SEARCH_COMPAT_DEFINED_SHARDED_)
#define RABITQ_SEARCH_COMPAT_DEFINED_SHARDED_

namespace rabitq {

inline Status ShardedIndex::Search(const float* query,
                                   const IvfSearchParams& params,
                                   std::uint64_t seed,
                                   std::vector<Neighbor>* out,
                                   IvfSearchStats* stats) const {
  if (out == nullptr) return Status::InvalidArgument("null output");
  SearchRequest request{query, params};
  request.options.seed = seed;
  SearchResponse response = Search(request);
  *out = std::move(response.neighbors);
  if (stats != nullptr) *stats = response.stats;
  return response.status;
}

}  // namespace rabitq

#endif  // RABITQ_SEARCH_COMPAT_HAVE_SHARDED

#if defined(RABITQ_SEARCH_COMPAT_HAVE_ENGINE) && \
    !defined(RABITQ_SEARCH_COMPAT_DEFINED_ENGINE_)
#define RABITQ_SEARCH_COMPAT_DEFINED_ENGINE_

namespace rabitq {

namespace search_compat_internal {

/// Shared body of the two raw-pointer SearchBatch shims (kept out of the
/// deprecated members so no shim calls another deprecated entity, which
/// would trip -Werror=deprecated-declarations in strict TUs).
template <typename Engine>
Status RawPointerSearchBatch(Engine* engine, const float* queries,
                             std::size_t num_queries,
                             const IvfSearchParams& params,
                             std::uint64_t seed_base,
                             std::vector<std::vector<Neighbor>>* results,
                             IvfSearchStats* agg) {
  if (queries == nullptr || results == nullptr) {
    return Status::InvalidArgument("null queries/results");
  }
  std::vector<SearchRequest> requests(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    requests[i].query = queries + i * engine->dim();
    requests[i].options = params;
    requests[i].options.seed = SearchEngine::QuerySeed(seed_base, i);
  }
  std::vector<SearchResponse> responses;
  const Status status =
      engine->SearchBatch(requests.data(), num_queries, &responses);
  results->resize(num_queries);
  IvfSearchStats sum;
  for (std::size_t i = 0; i < num_queries; ++i) {
    (*results)[i] = std::move(responses[i].neighbors);
    sum.codes_estimated += responses[i].stats.codes_estimated;
    sum.candidates_reranked += responses[i].stats.candidates_reranked;
    sum.lists_probed += responses[i].stats.lists_probed;
    sum.codes_filtered += responses[i].stats.codes_filtered;
  }
  if (agg != nullptr) *agg = sum;
  return status;
}

}  // namespace search_compat_internal

inline Status SearchEngine::SearchBatch(
    const float* queries, std::size_t num_queries,
    const IvfSearchParams& params, std::uint64_t seed_base,
    std::vector<std::vector<Neighbor>>* results, IvfSearchStats* agg) {
  return search_compat_internal::RawPointerSearchBatch(
      this, queries, num_queries, params, seed_base, results, agg);
}

inline Status SearchEngine::SearchBatch(
    const float* queries, std::size_t num_queries,
    const IvfSearchParams& params,
    std::vector<std::vector<Neighbor>>* results, IvfSearchStats* agg) {
  return search_compat_internal::RawPointerSearchBatch(
      this, queries, num_queries, params, config_.seed, results, agg);
}

inline std::future<SearchResponse> SearchEngine::SubmitAsync(
    const float* query, const IvfSearchParams& params, std::uint64_t seed) {
  SearchRequest request{query, params};
  request.options.seed = seed;
  return SubmitAsync(request);
}

inline std::future<SearchResponse> SearchEngine::SubmitAsync(
    const float* query, const IvfSearchParams& params) {
  SearchRequest request{query, params};
  request.options.seed.reset();  // auto-seed from the ticket stream
  return SubmitAsync(request);
}

inline std::future<SearchResponse> SearchEngine::SubmitAsync(
    const float* query) {
  return SubmitAsync(SearchRequest{query, config_.default_params});
}

}  // namespace rabitq

#endif  // RABITQ_SEARCH_COMPAT_HAVE_ENGINE

#endif  // RABITQ_NO_DEPRECATED
