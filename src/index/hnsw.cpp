#include "index/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {

float HnswIndex::DistanceTo(const float* query, std::uint32_t id) const {
  // The configured metric, not hardcoded L2: an IP graph built with L2
  // edges silently returns L2 neighbors no matter what the caller asked
  // for. MetricDistance keeps scores ascending under both metrics.
  return MetricDistance(config_.metric, data_.Row(id), query, data_.cols());
}

std::vector<Neighbor> HnswIndex::SearchLayer(const float* query,
                                             std::uint32_t entry,
                                             std::size_t ef, int layer) const {
  // Min-heap of candidates to expand; max-heap (TopKHeap) of results.
  std::priority_queue<Neighbor, std::vector<Neighbor>, std::greater<>> frontier;
  TopKHeap results(ef);
  std::vector<bool> visited(nodes_.size(), false);

  const float entry_dist = DistanceTo(query, entry);
  frontier.emplace(entry_dist, entry);
  results.Push(entry_dist, entry);
  visited[entry] = true;

  while (!frontier.empty()) {
    const auto [dist, node] = frontier.top();
    frontier.pop();
    if (results.full() && dist > results.Threshold()) break;
    for (const std::uint32_t next : nodes_[node].neighbors[layer]) {
      if (visited[next]) continue;
      visited[next] = true;
      const float next_dist = DistanceTo(query, next);
      if (!results.full() || next_dist < results.Threshold()) {
        frontier.emplace(next_dist, next);
        results.Push(next_dist, next);
      }
    }
  }
  return results.ExtractSorted();
}

std::vector<std::uint32_t> HnswIndex::SelectNeighbors(
    const std::vector<Neighbor>& candidates, std::size_t m) const {
  // candidates are sorted ascending by distance to the base point.
  std::vector<std::uint32_t> kept;
  kept.reserve(m);
  for (const auto& [dist, id] : candidates) {
    if (kept.size() >= m) break;
    bool dominated = false;
    for (const std::uint32_t other : kept) {
      if (MetricDistance(config_.metric, data_.Row(id), data_.Row(other),
                         data_.cols()) < dist) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(id);
  }
  // Backfill with the closest dominated candidates if the heuristic kept
  // fewer than m (keeps the graph well connected).
  for (const auto& [dist, id] : candidates) {
    if (kept.size() >= m) break;
    if (std::find(kept.begin(), kept.end(), id) == kept.end()) {
      kept.push_back(id);
    }
  }
  return kept;
}

Status HnswIndex::Build(const Matrix& data, const HnswConfig& config) {
  if (data.rows() == 0) return Status::InvalidArgument("empty dataset");
  if (config.m < 2) return Status::InvalidArgument("m must be >= 2");
  RABITQ_RETURN_IF_ERROR(ValidateMetric(config.metric));
  // Fail closed rather than rank by magnitude: cosine needs normalized
  // data, and this baseline ingests vectors as-is.
  if (config.metric == Metric::kCosine) {
    return Status::InvalidArgument(
        "HnswIndex does not support kCosine (vectors are not normalized on "
        "ingest); normalize the data and use kInnerProduct");
  }
  data_ = data;
  config_ = config;
  nodes_.assign(data.rows(), Node{});
  max_level_ = -1;

  Rng rng(config.seed);
  const double mult = 1.0 / std::log(static_cast<double>(config.m));

  for (std::uint32_t id = 0; id < data_.rows(); ++id) {
    double u = rng.UniformDouble();
    if (u <= 0.0) u = 1e-12;
    const int level = static_cast<int>(-std::log(u) * mult);
    Node& node = nodes_[id];
    node.level = level;
    node.neighbors.resize(level + 1);

    if (max_level_ < 0) {
      // First point becomes the entry point.
      entry_point_ = id;
      max_level_ = level;
      continue;
    }

    const float* point = data_.Row(id);
    std::uint32_t entry = entry_point_;
    // Greedy descent through layers above the node's level.
    for (int layer = max_level_; layer > level; --layer) {
      bool improved = true;
      float best = DistanceTo(point, entry);
      while (improved) {
        improved = false;
        for (const std::uint32_t next : nodes_[entry].neighbors[layer]) {
          const float d = DistanceTo(point, next);
          if (d < best) {
            best = d;
            entry = next;
            improved = true;
          }
        }
      }
    }

    // Insert at each layer from min(level, max_level_) down to 0.
    for (int layer = std::min(level, max_level_); layer >= 0; --layer) {
      const std::vector<Neighbor> candidates =
          SearchLayer(point, entry, config.ef_construction, layer);
      const std::size_t cap = layer == 0 ? config.m * 2 : config.m;
      const std::vector<std::uint32_t> selected =
          SelectNeighbors(candidates, config.m);
      node.neighbors[layer] = selected;
      // Bidirectional links with pruning.
      for (const std::uint32_t other : selected) {
        auto& adj = nodes_[other].neighbors[layer];
        adj.push_back(id);
        if (adj.size() > cap) {
          const float* other_point = data_.Row(other);
          std::vector<Neighbor> scored;
          scored.reserve(adj.size());
          for (const std::uint32_t nb : adj) {
            scored.emplace_back(DistanceTo(other_point, nb), nb);
          }
          std::sort(scored.begin(), scored.end());
          adj = SelectNeighbors(scored, cap);
        }
      }
      if (!candidates.empty()) entry = candidates.front().second;
    }

    if (level > max_level_) {
      max_level_ = level;
      entry_point_ = id;
    }
  }
  return Status::Ok();
}

Status HnswIndex::Search(const float* query, std::size_t k,
                         std::size_t ef_search,
                         std::vector<Neighbor>* out) const {
  if (out == nullptr) return Status::InvalidArgument("null output");
  if (nodes_.empty()) return Status::FailedPrecondition("index not built");
  ef_search = std::max(ef_search, k);

  std::uint32_t entry = entry_point_;
  for (int layer = max_level_; layer > 0; --layer) {
    bool improved = true;
    float best = DistanceTo(query, entry);
    while (improved) {
      improved = false;
      for (const std::uint32_t next : nodes_[entry].neighbors[layer]) {
        const float d = DistanceTo(query, next);
        if (d < best) {
          best = d;
          entry = next;
          improved = true;
        }
      }
    }
  }
  std::vector<Neighbor> found = SearchLayer(query, entry, ef_search, 0);
  if (found.size() > k) found.resize(k);
  *out = std::move(found);
  return Status::Ok();
}

}  // namespace rabitq
