// Synthetic dataset suite standing in for the paper's six public datasets
// (Table 3). The environment is offline, so each generator reproduces the
// statistical property that drives the corresponding experimental result --
// see DESIGN.md, substitution #1:
//
//   kGaussianMixture    SIFT/DEEP/Image-like: anisotropic Gaussian clusters.
//   kCorrelatedMixture  GIST-like: clusters mixed through a random low-rank
//                       map; strong inter-dimension correlation in high D.
//   kHeavyTailed        MSong-like: per-dimension log-normal scales plus
//                       correlated energy -- the regime where 4-bit PQ with
//                       u8-requantized LUTs collapses while RaBitQ's
//                       distribution-free bound holds.
//   kAngular            Word2Vec-like: heavy-tailed directions, rows
//                       normalized to the unit sphere.
//   kUniformSphere      isotropic control (hardest case for clustering).
//
// Queries are fresh draws from the same distribution.

#ifndef RABITQ_EVAL_DATASETS_H_
#define RABITQ_EVAL_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/status.h"

namespace rabitq {

enum class DatasetKind {
  kGaussianMixture,
  kCorrelatedMixture,
  kHeavyTailed,
  kAngular,
  kUniformSphere,
};

struct SyntheticSpec {
  std::string name;
  std::size_t n = 10000;
  std::size_t dim = 128;
  std::size_t num_queries = 100;
  DatasetKind kind = DatasetKind::kGaussianMixture;
  std::size_t num_clusters = 50;      // mixture components
  float cluster_spread = 1.0f;        // within-cluster std dev scale
  float scale_sigma = 2.0f;           // kHeavyTailed: log-normal sigma
  std::size_t mixing_rank = 32;       // kCorrelatedMixture: rank of the mix
  std::uint64_t seed = 123;
};

/// Generates base and query sets for a spec.
Status GenerateDataset(const SyntheticSpec& spec, Matrix* base,
                       Matrix* queries);

/// The six-dataset suite analogous to paper Table 3, scaled by `scale`
/// (1.0 = default laptop-sized N; the paper's N is ~1M). Dimensionalities
/// match the paper: 420, 128, 256, 300, 960, 150.
std::vector<SyntheticSpec> PaperSuite(double scale = 1.0);

/// Single specs used by the focused verification benches.
SyntheticSpec SiftLikeSpec(std::size_t n, std::size_t num_queries);
SyntheticSpec GistLikeSpec(std::size_t n, std::size_t num_queries);
SyntheticSpec MsongLikeSpec(std::size_t n, std::size_t num_queries);

}  // namespace rabitq

#endif  // RABITQ_EVAL_DATASETS_H_
