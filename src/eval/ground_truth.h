// Exact K-nearest-neighbor ground truth (multi-threaded brute force), the
// reference for recall and average-distance-ratio metrics.

#ifndef RABITQ_EVAL_GROUND_TRUTH_H_
#define RABITQ_EVAL_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "index/brute_force.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace rabitq {

struct GroundTruth {
  std::size_t k = 0;
  /// Metric the truth was computed under; recall/ratio comparisons against
  /// an index serving a different metric are meaningless (see
  /// CheckGroundTruthMetric).
  Metric metric = Metric::kL2;
  /// ids[q * k + j] = id of the j-th nearest base vector of query q.
  std::vector<std::uint32_t> ids;
  /// dist_sq[q * k + j] = its exact distance key (squared L2 distance for
  /// kL2, negated inner product for kInnerProduct/kCosine).
  std::vector<float> dist_sq;

  const std::uint32_t* IdsFor(std::size_t q) const { return ids.data() + q * k; }
  const float* DistFor(std::size_t q) const { return dist_sq.data() + q * k; }
};

/// Computes exact top-k for every query row under `metric` (ranked by
/// MetricDistance keys; cosine normalizes both sides, so `base` may be raw).
Status ComputeGroundTruth(const Matrix& base, const Matrix& queries,
                          std::size_t k, Metric metric, GroundTruth* out);

/// L2 shorthand, the original signature.
Status ComputeGroundTruth(const Matrix& base, const Matrix& queries,
                          std::size_t k, GroundTruth* out);

/// Refuses (InvalidArgument) an evaluation that would compare search results
/// produced under `index_metric` against truth computed under another
/// metric. Every recall/ratio harness should funnel through this before
/// scoring.
Status CheckGroundTruthMetric(const GroundTruth& gt, Metric index_metric);

}  // namespace rabitq

#endif  // RABITQ_EVAL_GROUND_TRUTH_H_
