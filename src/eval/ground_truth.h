// Exact K-nearest-neighbor ground truth (multi-threaded brute force), the
// reference for recall and average-distance-ratio metrics.

#ifndef RABITQ_EVAL_GROUND_TRUTH_H_
#define RABITQ_EVAL_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "index/brute_force.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace rabitq {

struct GroundTruth {
  std::size_t k = 0;
  /// ids[q * k + j] = id of the j-th nearest base vector of query q.
  std::vector<std::uint32_t> ids;
  /// dist_sq[q * k + j] = its exact squared distance.
  std::vector<float> dist_sq;

  const std::uint32_t* IdsFor(std::size_t q) const { return ids.data() + q * k; }
  const float* DistFor(std::size_t q) const { return dist_sq.data() + q * k; }
};

/// Computes exact top-k for every query row.
Status ComputeGroundTruth(const Matrix& base, const Matrix& queries,
                          std::size_t k, GroundTruth* out);

}  // namespace rabitq

#endif  // RABITQ_EVAL_GROUND_TRUTH_H_
