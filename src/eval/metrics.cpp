#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

namespace rabitq {

void RelativeErrorAccumulator::Add(double estimated, double exact,
                                   double min_true) {
  if (std::fabs(exact) < min_true) return;
  const double rel = std::fabs(estimated - exact) / std::fabs(exact);
  sum_ += rel;
  max_ = std::max(max_, rel);
  ++count_;
}

RelativeErrorStats RelativeErrorAccumulator::Stats() const {
  RelativeErrorStats stats;
  stats.count = count_;
  stats.maximum = max_;
  stats.average = count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  return stats;
}

double RecallAtK(const GroundTruth& gt, std::size_t query,
                 const std::vector<Neighbor>& result, std::size_t k) {
  k = std::min(k, gt.k);
  if (k == 0) return 0.0;
  std::unordered_set<std::uint32_t> truth(gt.IdsFor(query),
                                          gt.IdsFor(query) + k);
  std::size_t hits = 0;
  const std::size_t limit = std::min(result.size(), k);
  for (std::size_t j = 0; j < limit; ++j) {
    hits += truth.count(result[j].second);
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double AverageDistanceRatio(const GroundTruth& gt, std::size_t query,
                            const std::vector<Neighbor>& result,
                            std::size_t k) {
  k = std::min(k, gt.k);
  if (k == 0) return 0.0;
  const float* true_dist = gt.DistFor(query);
  double sum = 0.0;
  std::size_t counted = 0;
  const double worst = std::sqrt(std::max(true_dist[k - 1], 0.0f));
  for (std::size_t j = 0; j < k; ++j) {
    const double truth = std::sqrt(std::max(true_dist[j], 0.0f));
    if (truth <= 0.0) continue;
    const double returned =
        j < result.size() ? std::sqrt(std::max(result[j].first, 0.0f)) : worst;
    sum += returned / truth;
    ++counted;
  }
  return counted > 0 ? sum / static_cast<double>(counted) : 1.0;
}

LinearFit FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double mean_x = 0.0, mean_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mean_x += x[i];
    mean_y += y[i];
  }
  mean_x /= static_cast<double>(n);
  mean_y /= static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::Print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (std::size_t c = 0; c < widths.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

}  // namespace rabitq
