// Accuracy metrics of the paper's evaluation (Section 5.1):
//   * average / maximum relative error of estimated squared distances,
//   * recall@K against exact ground truth,
//   * average distance ratio of the returned K w.r.t. the true K-NN,
//   * least-squares linear regression (slope/intercept) for the
//     unbiasedness study of Fig. 7,
// plus a fixed-width table printer for the bench harness output.

#ifndef RABITQ_EVAL_METRICS_H_
#define RABITQ_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/ground_truth.h"
#include "index/brute_force.h"

namespace rabitq {

struct RelativeErrorStats {
  double average = 0.0;  // mean |est - true| / true
  double maximum = 0.0;
  std::size_t count = 0;
};

/// Accumulates relative errors of estimated vs exact squared distances.
class RelativeErrorAccumulator {
 public:
  /// Pairs with |true| below `min_true` are skipped (ratio undefined).
  void Add(double estimated, double exact, double min_true = 1e-12);
  RelativeErrorStats Stats() const;

 private:
  double sum_ = 0.0;
  double max_ = 0.0;
  std::size_t count_ = 0;
};

/// Fraction of the true top-k ids present in `result` (any order).
double RecallAtK(const GroundTruth& gt, std::size_t query,
                 const std::vector<Neighbor>& result, std::size_t k);

/// Average of dist(returned_j) / dist(true_j) over j (non-squared distances,
/// per the paper); pairs with a zero true distance are skipped. Missing
/// results (fewer than k returned) are scored against the farthest true
/// neighbor, penalizing truncation.
double AverageDistanceRatio(const GroundTruth& gt, std::size_t query,
                            const std::vector<Neighbor>& result,
                            std::size_t k);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

/// Ordinary least squares y ~ slope * x + intercept.
LinearFit FitLinear(const std::vector<double>& x, const std::vector<double>& y);

/// Fixed-width console table used by every bench binary.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(const std::vector<std::string>& cells);
  /// Renders header + rows to stdout.
  void Print() const;

  static std::string FormatDouble(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rabitq

#endif  // RABITQ_EVAL_METRICS_H_
