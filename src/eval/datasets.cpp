#include "eval/datasets.h"

#include <algorithm>
#include <cmath>

#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {

namespace {

// Shared mixture machinery: `post` hooks transform each sampled row.
struct MixtureParams {
  std::size_t num_clusters;
  float center_scale = 10.0f;
  float spread = 1.0f;
};

void FillGaussian(Rng* rng, float* out, std::size_t n, float scale) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(rng->Gaussian()) * scale;
  }
}

// Samples `rows` rows of an anisotropic Gaussian mixture. Per-cluster,
// per-dimension std devs are drawn once so clusters have different shapes.
void SampleMixture(const SyntheticSpec& spec, const MixtureParams& params,
                   Rng* rng, const Matrix& centers, const Matrix& stds,
                   Matrix* out) {
  const std::size_t dim = spec.dim;
  for (std::size_t i = 0; i < out->rows(); ++i) {
    const std::size_t c = rng->UniformInt(params.num_clusters);
    float* row = out->Row(i);
    const float* center = centers.Row(c);
    const float* std_dev = stds.Row(c);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = center[j] + static_cast<float>(rng->Gaussian()) * std_dev[j];
    }
  }
}

void MakeMixtureModel(const SyntheticSpec& spec, const MixtureParams& params,
                      Rng* rng, Matrix* centers, Matrix* stds) {
  centers->Reset(params.num_clusters, spec.dim);
  stds->Reset(params.num_clusters, spec.dim);
  FillGaussian(rng, centers->data(), centers->size(), params.center_scale);
  for (std::size_t c = 0; c < params.num_clusters; ++c) {
    for (std::size_t j = 0; j < spec.dim; ++j) {
      // Anisotropy: std dev uniform in [0.5, 1.5] * spread.
      stds->At(c, j) = params.spread * (0.5f + rng->UniformFloat());
    }
  }
}

}  // namespace

Status GenerateDataset(const SyntheticSpec& spec, Matrix* base,
                       Matrix* queries) {
  if (base == nullptr || queries == nullptr) {
    return Status::InvalidArgument("null outputs");
  }
  if (spec.n == 0 || spec.dim == 0) {
    return Status::InvalidArgument("empty spec");
  }
  Rng rng(spec.seed);
  base->Reset(spec.n, spec.dim);
  queries->Reset(spec.num_queries, spec.dim);

  MixtureParams params;
  params.num_clusters = std::max<std::size_t>(1, spec.num_clusters);
  params.spread = spec.cluster_spread;

  switch (spec.kind) {
    case DatasetKind::kGaussianMixture: {
      Matrix centers, stds;
      MakeMixtureModel(spec, params, &rng, &centers, &stds);
      SampleMixture(spec, params, &rng, centers, stds, base);
      SampleMixture(spec, params, &rng, centers, stds, queries);
      return Status::Ok();
    }
    case DatasetKind::kCorrelatedMixture: {
      // Low-rank mixing: sample in a rank-r latent space, then map through
      // a fixed random r x D matrix; add small isotropic noise. Produces the
      // strong inter-dimension correlation of GIST-style descriptors.
      const std::size_t rank = std::clamp<std::size_t>(spec.mixing_rank, 2,
                                                       spec.dim);
      SyntheticSpec latent_spec = spec;
      latent_spec.dim = rank;
      Matrix centers, stds;
      MixtureParams latent_params = params;
      MakeMixtureModel(latent_spec, latent_params, &rng, &centers, &stds);
      Matrix mix(rank, spec.dim);
      FillGaussian(&rng, mix.data(), mix.size(), 1.0f / std::sqrt(rank));
      auto emit = [&](Matrix* out) {
        Matrix latent(out->rows(), rank);
        SampleMixture(latent_spec, latent_params, &rng, centers, stds, &latent);
        for (std::size_t i = 0; i < out->rows(); ++i) {
          MatTVec(mix, latent.Row(i), out->Row(i));
          for (std::size_t j = 0; j < spec.dim; ++j) {
            out->At(i, j) += 0.05f * static_cast<float>(rng.Gaussian());
          }
        }
      };
      emit(base);
      emit(queries);
      return Status::Ok();
    }
    case DatasetKind::kHeavyTailed: {
      // Two MSong-style pathologies combined:
      //  * per-dimension log-normal scales (sigma ~ 2): a handful of dims
      //    carry most of the energy, so their segments dominate PQx4fs's
      //    global u8 LUT scale and crush the other segments' tables;
      //  * high-kurtosis within-cluster noise (cube of a Gaussian): most
      //    mass sits near the cluster center with rare huge excursions,
      //    which 16-entry (4-bit) sub-codebooks cannot cover -- 256-entry
      //    (8-bit) ones largely can, reproducing "PQx8 fine, PQx4fs
      //    disastrous".
      std::vector<float> dim_scale(spec.dim);
      for (std::size_t j = 0; j < spec.dim; ++j) {
        dim_scale[j] = std::exp(spec.scale_sigma *
                                static_cast<float>(rng.Gaussian()));
      }
      Matrix centers, stds;
      MakeMixtureModel(spec, params, &rng, &centers, &stds);
      // Var(g^3) = 15 for standard g; rescale to unit variance.
      const float kCubeNorm = 1.0f / std::sqrt(15.0f);
      auto emit = [&](Matrix* out) {
        for (std::size_t i = 0; i < out->rows(); ++i) {
          const std::size_t c = rng.UniformInt(params.num_clusters);
          float* row = out->Row(i);
          for (std::size_t j = 0; j < spec.dim; ++j) {
            const float g = static_cast<float>(rng.Gaussian());
            const float noise = g * g * g * kCubeNorm * stds.At(c, j);
            row[j] = (centers.At(c, j) * 0.1f + noise) * dim_scale[j];
          }
        }
      };
      emit(base);
      emit(queries);
      return Status::Ok();
    }
    case DatasetKind::kAngular: {
      // Heavy-tailed coordinates (Gaussian^3 keeps direction but fattens the
      // tails), normalized to the unit sphere -- word-embedding style.
      auto emit = [&](Matrix* out) {
        for (std::size_t i = 0; i < out->rows(); ++i) {
          float* row = out->Row(i);
          for (std::size_t j = 0; j < spec.dim; ++j) {
            const float g = static_cast<float>(rng.Gaussian());
            row[j] = g * g * g;
          }
          NormalizeInPlace(row, spec.dim);
        }
      };
      emit(base);
      emit(queries);
      return Status::Ok();
    }
    case DatasetKind::kUniformSphere: {
      auto emit = [&](Matrix* out) {
        for (std::size_t i = 0; i < out->rows(); ++i) {
          FillGaussian(&rng, out->Row(i), spec.dim, 1.0f);
          NormalizeInPlace(out->Row(i), spec.dim);
        }
      };
      emit(base);
      emit(queries);
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown dataset kind");
}

std::vector<SyntheticSpec> PaperSuite(double scale) {
  auto scaled = [scale](std::size_t n) {
    return std::max<std::size_t>(1000, static_cast<std::size_t>(n * scale));
  };
  std::vector<SyntheticSpec> suite;

  SyntheticSpec msong;
  msong.name = "MSong-like";
  msong.n = scaled(60000);
  msong.dim = 420;
  msong.num_queries = 100;
  msong.kind = DatasetKind::kHeavyTailed;
  msong.num_clusters = 60;
  msong.scale_sigma = 2.0f;
  msong.seed = 420001;
  suite.push_back(msong);

  SyntheticSpec sift;
  sift.name = "SIFT-like";
  sift.n = scaled(100000);
  sift.dim = 128;
  sift.num_queries = 200;
  sift.kind = DatasetKind::kGaussianMixture;
  sift.num_clusters = 100;
  sift.seed = 128001;
  suite.push_back(sift);

  SyntheticSpec deep;
  deep.name = "DEEP-like";
  deep.n = scaled(100000);
  deep.dim = 256;
  deep.num_queries = 200;
  deep.kind = DatasetKind::kCorrelatedMixture;
  deep.num_clusters = 80;
  deep.mixing_rank = 96;
  deep.seed = 256001;
  suite.push_back(deep);

  SyntheticSpec word2vec;
  word2vec.name = "Word2Vec-like";
  word2vec.n = scaled(100000);
  word2vec.dim = 300;
  word2vec.num_queries = 200;
  word2vec.kind = DatasetKind::kAngular;
  word2vec.seed = 300001;
  suite.push_back(word2vec);

  SyntheticSpec gist;
  gist.name = "GIST-like";
  gist.n = scaled(30000);
  gist.dim = 960;
  gist.num_queries = 100;
  gist.kind = DatasetKind::kCorrelatedMixture;
  gist.num_clusters = 60;
  gist.mixing_rank = 128;
  gist.seed = 960001;
  suite.push_back(gist);

  SyntheticSpec image;
  image.name = "Image-like";
  image.n = scaled(120000);
  image.dim = 150;
  image.num_queries = 200;
  image.kind = DatasetKind::kGaussianMixture;
  image.num_clusters = 120;
  image.cluster_spread = 0.7f;
  image.seed = 150001;
  suite.push_back(image);

  return suite;
}

SyntheticSpec SiftLikeSpec(std::size_t n, std::size_t num_queries) {
  SyntheticSpec spec;
  spec.name = "SIFT-like";
  spec.n = n;
  spec.dim = 128;
  spec.num_queries = num_queries;
  spec.kind = DatasetKind::kGaussianMixture;
  spec.num_clusters = 100;
  spec.seed = 128001;
  return spec;
}

SyntheticSpec GistLikeSpec(std::size_t n, std::size_t num_queries) {
  SyntheticSpec spec;
  spec.name = "GIST-like";
  spec.n = n;
  spec.dim = 960;
  spec.num_queries = num_queries;
  spec.kind = DatasetKind::kCorrelatedMixture;
  spec.num_clusters = 60;
  spec.mixing_rank = 128;
  spec.seed = 960001;
  return spec;
}

SyntheticSpec MsongLikeSpec(std::size_t n, std::size_t num_queries) {
  SyntheticSpec spec;
  spec.name = "MSong-like";
  spec.n = n;
  spec.dim = 420;
  spec.num_queries = num_queries;
  spec.kind = DatasetKind::kHeavyTailed;
  spec.num_clusters = 60;
  spec.scale_sigma = 2.0f;
  spec.seed = 420001;
  return spec;
}

}  // namespace rabitq
