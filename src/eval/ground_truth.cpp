#include "eval/ground_truth.h"

#include "util/thread_pool.h"

namespace rabitq {

Status ComputeGroundTruth(const Matrix& base, const Matrix& queries,
                          std::size_t k, Metric metric, GroundTruth* out) {
  if (out == nullptr) return Status::InvalidArgument("null output");
  RABITQ_RETURN_IF_ERROR(ValidateMetric(metric));
  if (base.rows() == 0 || queries.rows() == 0) {
    return Status::InvalidArgument("empty base/query set");
  }
  if (base.cols() != queries.cols()) {
    return Status::InvalidArgument("dimensionality mismatch");
  }
  k = std::min(k, base.rows());
  out->k = k;
  out->metric = metric;
  out->ids.assign(queries.rows() * k, 0);
  out->dist_sq.assign(queries.rows() * k, 0.0f);
  GlobalThreadPool().ParallelFor(
      queries.rows(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
          const std::vector<Neighbor> nn =
              BruteForceSearch(base, queries.Row(q), k, metric);
          for (std::size_t j = 0; j < nn.size(); ++j) {
            out->ids[q * k + j] = nn[j].second;
            out->dist_sq[q * k + j] = nn[j].first;
          }
        }
      },
      /*min_chunk=*/1);
  return Status::Ok();
}

Status ComputeGroundTruth(const Matrix& base, const Matrix& queries,
                          std::size_t k, GroundTruth* out) {
  return ComputeGroundTruth(base, queries, k, Metric::kL2, out);
}

Status CheckGroundTruthMetric(const GroundTruth& gt, Metric index_metric) {
  if (gt.metric != index_metric) {
    return Status::InvalidArgument(
        std::string("ground truth computed under ") + MetricName(gt.metric) +
        " cannot score an index serving " + MetricName(index_metric));
  }
  return Status::Ok();
}

}  // namespace rabitq
