// Optimized Product Quantization [Ge et al., CVPR'13], non-parametric
// variant: alternately (1) train/encode a PQ on rotated data and (2) solve
// the orthogonal Procrustes problem R = argmin ||X R^T - Y||_F for the
// current reconstructions Y. The learned rotation de-correlates segments and
// balances their variance, which is why OPQ is the strongest conventional
// baseline in the paper (Section 5.1).

#ifndef RABITQ_QUANT_OPQ_H_
#define RABITQ_QUANT_OPQ_H_

#include "quant/pq.h"

namespace rabitq {

struct OpqConfig {
  PqConfig pq;
  /// Alternating optimization rounds (each runs a short PQ train + SVD).
  int opq_iterations = 8;
  /// KMeans iterations for the short per-round PQ trainings.
  int inner_kmeans_iterations = 4;
  /// Subsample cap for the rotation optimization (0 = all points).
  std::size_t max_training_points = 20000;
};

/// OPQ = learned orthogonal rotation + product quantizer. Vectors are encoded
/// as PQ codes of R*x; queries are rotated before LUT computation, so every
/// downstream path (LUT-in-RAM, fast scan) is identical to PQ's.
class OptimizedProductQuantizer {
 public:
  Status Train(const Matrix& data, const OpqConfig& config);

  const ProductQuantizer& pq() const { return pq_; }
  const Matrix& rotation() const { return rotation_; }
  std::size_t dim() const { return pq_.dim(); }
  std::size_t num_segments() const { return pq_.num_segments(); }
  std::size_t code_bits() const { return pq_.code_bits(); }

  /// out = R * vec (the space PQ operates in).
  void RotateVector(const float* vec, float* out) const;

  /// Encodes one raw (unrotated) vector.
  void Encode(const float* vec, std::uint8_t* code) const;

  /// Encodes all rows of `data` (threaded).
  void EncodeBatch(const Matrix& data, std::vector<std::uint8_t>* codes) const;

  /// Reconstructs the quantized vector in the *original* space (R^T decode).
  void Decode(const std::uint8_t* code, float* out) const;

  /// ADC tables for a raw query (rotates internally).
  void ComputeLookupTables(const float* query,
                           AlignedVector<float>* luts) const;

  float EstimateWithLuts(const std::uint8_t* code, const float* luts) const {
    return pq_.EstimateWithLuts(code, luts);
  }

  Status PackForFastScan(const std::vector<std::uint8_t>& codes, std::size_t n,
                         FastScanCodes* out) const {
    return pq_.PackForFastScan(codes, n, out);
  }

 private:
  ProductQuantizer pq_;
  Matrix rotation_;  // R, dim x dim, applied as out = R * vec
};

}  // namespace rabitq

#endif  // RABITQ_QUANT_OPQ_H_
