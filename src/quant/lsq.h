// Additive quantization baseline standing in for LSQ/LSQ++ [Martinez et al.,
// ECCV'16/'18]: a vector is approximated by the SUM of M codewords, one from
// each of M 16-entry codebooks (4-bit codes, matching the paper's LSQx4fs
// configuration). Exact LSQ encoding is NP-hard -- the paper reports >24h
// indexing on GIST -- so this implementation uses the standard practical
// scheme: greedy residual initialization + iterated conditional modes (ICM)
// re-encoding, with coordinate-descent codebook updates. This preserves the
// behaviours the paper measures: indexing far slower than PQ (Table 4) and
// accuracy that is dataset-sensitive (Fig. 3). See DESIGN.md substitution #2.
//
// ADC at query time: ||q - y||^2 = ||q||^2 + 2<q, -y> + ||y||^2 with
// y = sum_m c_m. LUT[m][j] = -2<q, c_mj>; ||y||^2 is precomputed per code
// at index time, so the accumulation is LUT sums + one stored scalar --
// exactly the fast-scan form, like PQ.

#ifndef RABITQ_QUANT_LSQ_H_
#define RABITQ_QUANT_LSQ_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "quant/fastscan.h"
#include "util/aligned_buffer.h"
#include "util/status.h"

namespace rabitq {

struct LsqConfig {
  /// Number of additive codebooks M (16 entries each; 4 bits per code).
  std::size_t num_codebooks = 8;
  /// Outer training rounds (each = full ICM re-encode + codebook update).
  int train_iterations = 4;
  /// ICM sweeps per encode call.
  int icm_iterations = 2;
  /// Subsample cap for training (0 = all points).
  std::size_t max_training_points = 10000;
  std::uint64_t seed = 13;
};

/// Additive ("local search") quantizer with 4-bit codes.
class AdditiveQuantizer {
 public:
  Status Train(const Matrix& data, const LsqConfig& config);

  std::size_t dim() const { return dim_; }
  std::size_t num_codebooks() const { return config_.num_codebooks; }
  std::size_t code_bits() const { return num_codebooks() * 4; }
  const Matrix& codebook(std::size_t m) const { return codebooks_[m]; }

  /// Encodes one vector into num_codebooks() nibble bytes via greedy
  /// initialization + ICM refinement; also returns ||reconstruction||^2.
  void Encode(const float* vec, std::uint8_t* code, float* recon_sq) const;

  /// Encodes all rows (threaded); `recon_sq` gets one float per row.
  void EncodeBatch(const Matrix& data, std::vector<std::uint8_t>* codes,
                   std::vector<float>* recon_sq) const;

  /// Reconstructs y = sum_m codebook_m[code[m]].
  void Decode(const std::uint8_t* code, float* out) const;

  /// LUT[m][j] = -2 <query, c_mj>  (num_codebooks x 16 floats).
  void ComputeLookupTables(const float* query,
                           AlignedVector<float>* luts) const;

  /// Estimated squared distance = query_sq + sum_m LUT[m][code[m]] + recon_sq.
  float EstimateWithLuts(const std::uint8_t* code, const float* luts,
                         float recon_sq, float query_sq) const;

  Status PackForFastScan(const std::vector<std::uint8_t>& codes, std::size_t n,
                         FastScanCodes* out) const;

 private:
  LsqConfig config_;
  std::size_t dim_ = 0;
  std::vector<Matrix> codebooks_;  // M matrices of 16 x dim
};

}  // namespace rabitq

#endif  // RABITQ_QUANT_LSQ_H_
