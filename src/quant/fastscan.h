// The SIMD "fast scan" substrate of [Andre et al., VLDB'15 / ICMR'17]: 4-bit
// codes are packed in blocks of 32 vectors so that per-segment look-up tables
// (16 u8 entries) can be searched with one AVX2 byte shuffle for 16 codes at a
// time. Both PQx4fs and RaBitQ-batch (paper Section 3.3.2) reduce to this
// kernel; RaBitQ's LUTs are exact u8 integers while PQ requantizes float LUTs.

#ifndef RABITQ_QUANT_FASTSCAN_H_
#define RABITQ_QUANT_FASTSCAN_H_

#include <cstdint>

#include "util/aligned_buffer.h"
#include "util/status.h"

namespace rabitq {

/// Vectors per packed block.
inline constexpr std::size_t kFastScanBlockSize = 32;

/// Packed 4-bit codes. Block layout: for block b and segment t, 16 bytes;
/// byte k holds the code of vector (32b + k) in its low nibble and the code
/// of vector (32b + 16 + k) in its high nibble.
struct FastScanCodes {
  std::size_t num_vectors = 0;
  std::size_t num_segments = 0;
  std::size_t num_blocks = 0;
  AlignedVector<std::uint8_t> packed;

  const std::uint8_t* BlockPtr(std::size_t block) const {
    return packed.data() + block * num_segments * 16;
  }
};

/// Packs `n` unpacked codes (one nibble value per byte, row-major
/// n x num_segments) into the block layout. Tail slots are zero-filled.
void PackFastScanCodes(const std::uint8_t* codes, std::size_t n,
                       std::size_t num_segments, FastScanCodes* out);

/// Accumulates sum_t lut[t][code(v,t)] for the 32 vectors of one block.
/// `luts` holds num_segments * 16 u8 entries; results go to `out[0..32)`.
/// u16 partial sums are widened to u32 every 128 segments, so any
/// num_segments is safe from overflow.
void FastScanAccumulateBlock(const std::uint8_t* block,
                             std::size_t num_segments,
                             const std::uint8_t* luts, std::uint32_t* out);

/// Reference implementation of FastScanAccumulateBlock (no SIMD); the tests
/// cross-check the AVX2 path against it bit-for-bit.
void FastScanAccumulateBlockScalar(const std::uint8_t* block,
                                   std::size_t num_segments,
                                   const std::uint8_t* luts,
                                   std::uint32_t* out);

/// Quantizes float LUTs (num_segments x 16) to u8 for the kernel, as PQx4fs
/// does: per-segment bias = min entry, one global scale. Reconstruction:
/// float_sum ~= accumulated_u8 * (*scale) + (*bias_sum).
void QuantizeLutsToU8(const float* luts, std::size_t num_segments,
                      AlignedVector<std::uint8_t>* out, float* scale,
                      float* bias_sum);

}  // namespace rabitq

#endif  // RABITQ_QUANT_FASTSCAN_H_
