#include "quant/scalar_quantizer.h"

#include <algorithm>
#include <cmath>

namespace rabitq {

Status ScalarQuantizer8::Train(const Matrix& data) {
  if (data.rows() == 0 || data.cols() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  const std::size_t dim = data.cols();
  lo_.assign(dim, 0.0f);
  step_.assign(dim, 0.0f);
  std::vector<float> hi(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    lo_[j] = data.At(0, j);
    hi[j] = data.At(0, j);
  }
  for (std::size_t i = 1; i < data.rows(); ++i) {
    const float* row = data.Row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      lo_[j] = std::min(lo_[j], row[j]);
      hi[j] = std::max(hi[j], row[j]);
    }
  }
  for (std::size_t j = 0; j < dim; ++j) step_[j] = (hi[j] - lo_[j]) / 255.0f;
  return Status::Ok();
}

void ScalarQuantizer8::Encode(const float* vec, std::uint8_t* code) const {
  for (std::size_t j = 0; j < dim(); ++j) {
    if (step_[j] <= 0.0f) {
      code[j] = 0;
      continue;
    }
    const float scaled = (vec[j] - lo_[j]) / step_[j];
    code[j] = static_cast<std::uint8_t>(
        std::clamp(std::lround(scaled), 0l, 255l));
  }
}

void ScalarQuantizer8::Decode(const std::uint8_t* code, float* out) const {
  for (std::size_t j = 0; j < dim(); ++j) {
    out[j] = lo_[j] + step_[j] * static_cast<float>(code[j]);
  }
}

float ScalarQuantizer8::EstimateSquaredDistance(
    const float* query, const std::uint8_t* code) const {
  float acc = 0.0f;
  for (std::size_t j = 0; j < dim(); ++j) {
    const float d = query[j] - (lo_[j] + step_[j] * static_cast<float>(code[j]));
    acc += d * d;
  }
  return acc;
}

Status RandomizedUniformQuantize(const float* vec, std::size_t dim, int bits,
                                 Rng* rng, RandomizedQuantizedVector* out) {
  if (bits < 1 || bits > 8) {
    return Status::InvalidArgument("bits must be in [1, 8]");
  }
  if (dim == 0 || vec == nullptr || rng == nullptr || out == nullptr) {
    return Status::InvalidArgument("bad arguments");
  }
  const int levels = (1 << bits) - 1;  // 2^B - 1 segments
  float lo = vec[0];
  float hi = vec[0];
  for (std::size_t i = 1; i < dim; ++i) {
    lo = std::min(lo, vec[i]);
    hi = std::max(hi, vec[i]);
  }
  out->lo = lo;
  out->step = (hi - lo) / static_cast<float>(levels);
  out->codes.resize(dim);
  out->sum = 0;
  if (out->step <= 0.0f) {
    // Constant vector: every value quantizes to level 0 exactly.
    out->step = 0.0f;
    std::fill(out->codes.begin(), out->codes.end(), std::uint8_t{0});
    return Status::Ok();
  }
  for (std::size_t i = 0; i < dim; ++i) {
    // Eq. (18): floor((v - vl)/Delta + u), u ~ U[0,1).
    const float scaled = (vec[i] - lo) / out->step;
    long level = static_cast<long>(scaled + rng->UniformFloat());
    level = std::clamp(level, 0l, static_cast<long>(levels));
    out->codes[i] = static_cast<std::uint8_t>(level);
    out->sum += static_cast<std::uint32_t>(level);
  }
  return Status::Ok();
}

}  // namespace rabitq
