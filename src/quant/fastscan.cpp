#include "quant/fastscan.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace rabitq {

void PackFastScanCodes(const std::uint8_t* codes, std::size_t n,
                       std::size_t num_segments, FastScanCodes* out) {
  out->num_vectors = n;
  out->num_segments = num_segments;
  out->num_blocks = (n + kFastScanBlockSize - 1) / kFastScanBlockSize;
  out->packed.assign(out->num_blocks * num_segments * 16, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t block = v / kFastScanBlockSize;
    const std::size_t slot = v % kFastScanBlockSize;
    const std::size_t byte = slot % 16;
    const bool high = slot >= 16;
    std::uint8_t* base = out->packed.data() + block * num_segments * 16;
    for (std::size_t t = 0; t < num_segments; ++t) {
      const std::uint8_t code = codes[v * num_segments + t] & 0xF;
      base[t * 16 + byte] |= high ? static_cast<std::uint8_t>(code << 4) : code;
    }
  }
}

void FastScanAccumulateBlockScalar(const std::uint8_t* block,
                                   std::size_t num_segments,
                                   const std::uint8_t* luts,
                                   std::uint32_t* out) {
  std::memset(out, 0, kFastScanBlockSize * sizeof(std::uint32_t));
  for (std::size_t t = 0; t < num_segments; ++t) {
    const std::uint8_t* seg = block + t * 16;
    const std::uint8_t* lut = luts + t * 16;
    for (std::size_t k = 0; k < 16; ++k) {
      out[k] += lut[seg[k] & 0xF];
      out[k + 16] += lut[(seg[k] >> 4) & 0xF];
    }
  }
}

#if defined(__AVX2__)

void FastScanAccumulateBlock(const std::uint8_t* block,
                             std::size_t num_segments,
                             const std::uint8_t* luts, std::uint32_t* out) {
  // u16 accumulators for the low 16 vectors and high 16 vectors; widened to
  // u32 every kChunk segments (kChunk * 255 = 32640 < 65535: no overflow).
  constexpr std::size_t kChunk = 128;
  const __m128i low_mask = _mm_set1_epi8(0x0F);
  __m256i acc32_lo0 = _mm256_setzero_si256();  // vectors 0..7
  __m256i acc32_lo1 = _mm256_setzero_si256();  // vectors 8..15
  __m256i acc32_hi0 = _mm256_setzero_si256();  // vectors 16..23
  __m256i acc32_hi1 = _mm256_setzero_si256();  // vectors 24..31

  for (std::size_t chunk_begin = 0; chunk_begin < num_segments;
       chunk_begin += kChunk) {
    const std::size_t chunk_end = std::min(chunk_begin + kChunk, num_segments);
    __m256i acc_lo = _mm256_setzero_si256();  // 16 u16 lanes, vectors 0..15
    __m256i acc_hi = _mm256_setzero_si256();  // 16 u16 lanes, vectors 16..31
    for (std::size_t t = chunk_begin; t < chunk_end; ++t) {
      const __m128i codes = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(block + t * 16));
      const __m128i lut = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(luts + t * 16));
      const __m128i lo_vals =
          _mm_shuffle_epi8(lut, _mm_and_si128(codes, low_mask));
      const __m128i hi_vals = _mm_shuffle_epi8(
          lut, _mm_and_si128(_mm_srli_epi16(codes, 4), low_mask));
      acc_lo = _mm256_add_epi16(acc_lo, _mm256_cvtepu8_epi16(lo_vals));
      acc_hi = _mm256_add_epi16(acc_hi, _mm256_cvtepu8_epi16(hi_vals));
    }
    // Widen u16 -> u32 and fold into the running 32-bit accumulators.
    acc32_lo0 = _mm256_add_epi32(
        acc32_lo0, _mm256_cvtepu16_epi32(_mm256_castsi256_si128(acc_lo)));
    acc32_lo1 = _mm256_add_epi32(
        acc32_lo1, _mm256_cvtepu16_epi32(_mm256_extracti128_si256(acc_lo, 1)));
    acc32_hi0 = _mm256_add_epi32(
        acc32_hi0, _mm256_cvtepu16_epi32(_mm256_castsi256_si128(acc_hi)));
    acc32_hi1 = _mm256_add_epi32(
        acc32_hi1, _mm256_cvtepu16_epi32(_mm256_extracti128_si256(acc_hi, 1)));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0), acc32_lo0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8), acc32_lo1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 16), acc32_hi0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 24), acc32_hi1);
}

#else  // !defined(__AVX2__)

void FastScanAccumulateBlock(const std::uint8_t* block,
                             std::size_t num_segments,
                             const std::uint8_t* luts, std::uint32_t* out) {
  FastScanAccumulateBlockScalar(block, num_segments, luts, out);
}

#endif  // defined(__AVX2__)

void QuantizeLutsToU8(const float* luts, std::size_t num_segments,
                      AlignedVector<std::uint8_t>* out, float* scale,
                      float* bias_sum) {
  out->assign(num_segments * 16, 0);
  *bias_sum = 0.0f;
  float max_range = 0.0f;
  std::vector<float> mins(num_segments);
  for (std::size_t t = 0; t < num_segments; ++t) {
    const float* lut = luts + t * 16;
    float lo = lut[0];
    float hi = lut[0];
    for (int j = 1; j < 16; ++j) {
      lo = std::min(lo, lut[j]);
      hi = std::max(hi, lut[j]);
    }
    mins[t] = lo;
    *bias_sum += lo;
    max_range = std::max(max_range, hi - lo);
  }
  *scale = max_range > 0.0f ? max_range / 255.0f : 1.0f;
  const float inv_scale = 1.0f / *scale;
  for (std::size_t t = 0; t < num_segments; ++t) {
    const float* lut = luts + t * 16;
    std::uint8_t* qlut = out->data() + t * 16;
    for (int j = 0; j < 16; ++j) {
      const long q = std::lround((lut[j] - mins[t]) * inv_scale);
      qlut[j] = static_cast<std::uint8_t>(std::clamp(q, 0l, 255l));
    }
  }
}

}  // namespace rabitq
