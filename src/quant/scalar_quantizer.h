// Uniform scalar quantization. Two flavors:
//  * SQ8: classic per-dimension 8-bit quantizer (related-work baseline and a
//    building block for PQ's LUT compression).
//  * RandomizedUniform: the unbiased randomized rounding of paper Eq. (18),
//    used by the RaBitQ query quantization (Section 3.3.1) and analyzed by
//    Theorem 3.3. Rounding v = vl + m*delta + t goes up with probability
//    t/delta, down otherwise, so E[round(v)] = v.

#ifndef RABITQ_QUANT_SCALAR_QUANTIZER_H_
#define RABITQ_QUANT_SCALAR_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/prng.h"
#include "util/status.h"

namespace rabitq {

/// Per-dimension 8-bit min/max scalar quantizer.
class ScalarQuantizer8 {
 public:
  /// Learns per-dimension [min, max] ranges from training data.
  Status Train(const Matrix& data);

  std::size_t dim() const { return lo_.size(); }

  /// Encodes one vector into dim() bytes (values clamped into range).
  void Encode(const float* vec, std::uint8_t* code) const;

  /// Decodes a code back to floats (segment midpoint reconstruction).
  void Decode(const std::uint8_t* code, float* out) const;

  /// Estimated squared distance between a raw query and an encoded vector.
  float EstimateSquaredDistance(const float* query,
                                const std::uint8_t* code) const;

 private:
  std::vector<float> lo_;
  std::vector<float> step_;  // (hi - lo) / 255, 0 for constant dims
};

/// Result of randomized uniform quantization of one vector.
struct RandomizedQuantizedVector {
  float lo = 0.0f;     // v_l
  float step = 0.0f;   // Delta
  std::uint32_t sum = 0;  // sum_i code[i]
  std::vector<std::uint8_t> codes;  // each in [0, 2^bits)
};

/// Quantizes `vec` into `bits`-bit unsigned integers with unbiased randomized
/// rounding (paper Eq. 18). `bits` must be in [1, 8].
Status RandomizedUniformQuantize(const float* vec, std::size_t dim, int bits,
                                 Rng* rng, RandomizedQuantizedVector* out);

}  // namespace rabitq

#endif  // RABITQ_QUANT_SCALAR_QUANTIZER_H_
