#include "quant/lsq.h"

#include <algorithm>
#include <limits>

#include "cluster/kmeans.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"
#include "util/thread_pool.h"

namespace rabitq {

namespace {
constexpr std::size_t kEntries = 16;  // 4-bit codebooks
}

Status AdditiveQuantizer::Train(const Matrix& data, const LsqConfig& config) {
  if (data.rows() == 0) return Status::InvalidArgument("empty training data");
  if (config.num_codebooks == 0) {
    return Status::InvalidArgument("num_codebooks must be positive");
  }
  config_ = config;
  dim_ = data.cols();

  Rng rng(config.seed);
  const std::size_t train_n =
      config.max_training_points > 0
          ? std::min(config.max_training_points, data.rows())
          : data.rows();
  Matrix x(train_n, dim_);
  {
    std::vector<std::size_t> rows(data.rows());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    for (std::size_t i = 0; i < train_n; ++i) {
      std::swap(rows[i], rows[i + rng.UniformInt(rows.size() - i)]);
    }
    for (std::size_t i = 0; i < train_n; ++i) {
      std::copy_n(data.Row(rows[i]), dim_, x.Row(i));
    }
  }

  // Residual (RVQ) initialization: codebook m = KMeans of the residuals left
  // by codebooks 0..m-1.
  codebooks_.assign(config.num_codebooks, Matrix());
  Matrix residual = x;
  for (std::size_t m = 0; m < config.num_codebooks; ++m) {
    KMeansConfig kmeans;
    kmeans.num_clusters = kEntries;
    kmeans.max_iterations = 10;
    kmeans.seed = config.seed + m * 99991ULL;
    KMeansResult result;
    RABITQ_RETURN_IF_ERROR(RunKMeans(residual, kmeans, &result));
    codebooks_[m] = std::move(result.centroids);
    for (std::size_t i = 0; i < train_n; ++i) {
      Axpy(-1.0f, codebooks_[m].Row(result.assignments[i]), residual.Row(i),
           dim_);
    }
  }

  // Alternating local search: ICM re-encode, then coordinate-descent
  // codebook update (entry = mean residual of its assignees).
  std::vector<std::uint8_t> codes(train_n * config.num_codebooks);
  std::vector<float> recon_sq(train_n);
  for (int round = 0; round < config.train_iterations; ++round) {
    GlobalThreadPool().ParallelFor(
        train_n,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            Encode(x.Row(i), codes.data() + i * config.num_codebooks,
                   &recon_sq[i]);
          }
        },
        /*min_chunk=*/16);

    // Full residuals once per round: residual_i = x_i - Decode(code_i).
    // The per-codebook leave-one-out residual is then residual_i + c_m,
    // keeping the update O(N*M*D) instead of O(N*M^2*D).
    Matrix residuals(train_n, dim_);
    for (std::size_t i = 0; i < train_n; ++i) {
      Decode(codes.data() + i * config.num_codebooks, residuals.Row(i));
      float* row = residuals.Row(i);
      const float* xi = x.Row(i);
      for (std::size_t d = 0; d < dim_; ++d) row[d] = xi[d] - row[d];
    }
    std::vector<float> partial(dim_);
    for (std::size_t m = 0; m < config.num_codebooks; ++m) {
      Matrix sums(kEntries, dim_);
      std::vector<std::size_t> counts(kEntries, 0);
      for (std::size_t i = 0; i < train_n; ++i) {
        const std::uint8_t* code = codes.data() + i * config.num_codebooks;
        std::copy_n(residuals.Row(i), dim_, partial.data());
        Axpy(1.0f, codebooks_[m].Row(code[m]), partial.data(), dim_);
        Axpy(1.0f, partial.data(), sums.Row(code[m]), dim_);
        ++counts[code[m]];
      }
      const Matrix old_codebook = codebooks_[m];
      for (std::size_t j = 0; j < kEntries; ++j) {
        if (counts[j] == 0) continue;  // keep the stale entry
        const float inv = 1.0f / static_cast<float>(counts[j]);
        float* row = codebooks_[m].Row(j);
        const float* sum = sums.Row(j);
        for (std::size_t d = 0; d < dim_; ++d) row[d] = sum[d] * inv;
      }
      // Keep the residuals consistent with the just-updated codebook
      // (Gauss-Seidel): residual_i shifts by old_c - new_c.
      for (std::size_t i = 0; i < train_n; ++i) {
        const std::uint8_t j = codes[i * config.num_codebooks + m];
        float* row = residuals.Row(i);
        const float* old_row = old_codebook.Row(j);
        const float* new_row = codebooks_[m].Row(j);
        for (std::size_t d = 0; d < dim_; ++d) {
          row[d] += old_row[d] - new_row[d];
        }
      }
    }
  }
  return Status::Ok();
}

void AdditiveQuantizer::Encode(const float* vec, std::uint8_t* code,
                               float* recon_sq) const {
  const std::size_t m_total = config_.num_codebooks;
  std::vector<float> residual(vec, vec + dim_);

  // Greedy residual pass.
  for (std::size_t m = 0; m < m_total; ++m) {
    std::size_t best = 0;
    float best_dist = std::numeric_limits<float>::max();
    for (std::size_t j = 0; j < kEntries; ++j) {
      const float d = L2SqrDistance(residual.data(), codebooks_[m].Row(j), dim_);
      if (d < best_dist) {
        best_dist = d;
        best = j;
      }
    }
    code[m] = static_cast<std::uint8_t>(best);
    Axpy(-1.0f, codebooks_[m].Row(best), residual.data(), dim_);
  }

  // ICM sweeps: re-pick each codeword with the others held fixed. `residual`
  // is maintained as x - full reconstruction.
  for (int sweep = 0; sweep < config_.icm_iterations; ++sweep) {
    bool changed = false;
    for (std::size_t m = 0; m < m_total; ++m) {
      // target = residual + current contribution of codebook m.
      Axpy(1.0f, codebooks_[m].Row(code[m]), residual.data(), dim_);
      std::size_t best = 0;
      float best_dist = std::numeric_limits<float>::max();
      for (std::size_t j = 0; j < kEntries; ++j) {
        const float d =
            L2SqrDistance(residual.data(), codebooks_[m].Row(j), dim_);
        if (d < best_dist) {
          best_dist = d;
          best = j;
        }
      }
      if (best != code[m]) changed = true;
      code[m] = static_cast<std::uint8_t>(best);
      Axpy(-1.0f, codebooks_[m].Row(best), residual.data(), dim_);
    }
    if (!changed) break;
  }

  if (recon_sq != nullptr) {
    std::vector<float> recon(dim_);
    Decode(code, recon.data());
    *recon_sq = SquaredNorm(recon.data(), dim_);
  }
}

void AdditiveQuantizer::EncodeBatch(const Matrix& data,
                                    std::vector<std::uint8_t>* codes,
                                    std::vector<float>* recon_sq) const {
  codes->resize(data.rows() * num_codebooks());
  recon_sq->resize(data.rows());
  GlobalThreadPool().ParallelFor(
      data.rows(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Encode(data.Row(i), codes->data() + i * num_codebooks(),
                 &(*recon_sq)[i]);
        }
      },
      /*min_chunk=*/16);
}

void AdditiveQuantizer::Decode(const std::uint8_t* code, float* out) const {
  std::fill_n(out, dim_, 0.0f);
  for (std::size_t m = 0; m < num_codebooks(); ++m) {
    Axpy(1.0f, codebooks_[m].Row(code[m]), out, dim_);
  }
}

void AdditiveQuantizer::ComputeLookupTables(const float* query,
                                            AlignedVector<float>* luts) const {
  luts->resize(num_codebooks() * kEntries);
  for (std::size_t m = 0; m < num_codebooks(); ++m) {
    float* lut = luts->data() + m * kEntries;
    for (std::size_t j = 0; j < kEntries; ++j) {
      lut[j] = -2.0f * Dot(query, codebooks_[m].Row(j), dim_);
    }
  }
}

float AdditiveQuantizer::EstimateWithLuts(const std::uint8_t* code,
                                          const float* luts, float recon_sq,
                                          float query_sq) const {
  float acc = query_sq + recon_sq;
  for (std::size_t m = 0; m < num_codebooks(); ++m) {
    acc += luts[m * kEntries + code[m]];
  }
  return acc;
}

Status AdditiveQuantizer::PackForFastScan(const std::vector<std::uint8_t>& codes,
                                          std::size_t n,
                                          FastScanCodes* out) const {
  if (codes.size() < n * num_codebooks()) {
    return Status::InvalidArgument("code buffer too small");
  }
  PackFastScanCodes(codes.data(), n, num_codebooks(), out);
  return Status::Ok();
}

}  // namespace rabitq
