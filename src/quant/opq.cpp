#include "quant/opq.h"

#include <algorithm>

#include "linalg/eigen.h"
#include "linalg/orthogonal.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"
#include "util/thread_pool.h"

namespace rabitq {

Status OptimizedProductQuantizer::Train(const Matrix& data,
                                        const OpqConfig& config) {
  if (data.rows() == 0) return Status::InvalidArgument("empty training data");
  const std::size_t dim = data.cols();

  // Rotation-learning subsample.
  Rng rng(config.pq.seed ^ 0xA5A5A5A5ULL);
  const std::size_t train_n =
      config.max_training_points > 0
          ? std::min(config.max_training_points, data.rows())
          : data.rows();
  Matrix x(train_n, dim);
  if (train_n == data.rows()) {
    std::copy_n(data.data(), data.size(), x.data());
  } else {
    std::vector<std::size_t> rows(data.rows());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
    for (std::size_t i = 0; i < train_n; ++i) {
      std::swap(rows[i], rows[i + rng.UniformInt(rows.size() - i)]);
    }
    for (std::size_t i = 0; i < train_n; ++i) {
      std::copy_n(data.Row(rows[i]), dim, x.Row(i));
    }
  }

  RABITQ_RETURN_IF_ERROR(SampleRandomOrthogonal(dim, &rng, &rotation_));

  Matrix x_rot(train_n, dim);
  auto rotate_all = [&]() {
    GlobalThreadPool().ParallelFor(train_n,
                                   [&](std::size_t begin, std::size_t end) {
                                     for (std::size_t i = begin; i < end; ++i) {
                                       MatVec(rotation_, x.Row(i), x_rot.Row(i));
                                     }
                                   },
                                   /*min_chunk=*/64);
  };

  PqConfig inner = config.pq;
  inner.kmeans_iterations = config.inner_kmeans_iterations;
  std::vector<std::uint8_t> codes;
  Matrix y(train_n, dim);
  Matrix m, r_new;
  for (int round = 0; round < config.opq_iterations; ++round) {
    rotate_all();
    ProductQuantizer round_pq;
    RABITQ_RETURN_IF_ERROR(round_pq.Train(x_rot, inner));
    round_pq.EncodeBatch(x_rot, &codes);
    GlobalThreadPool().ParallelFor(
        train_n,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            round_pq.Decode(codes.data() + i * round_pq.num_segments(),
                            y.Row(i));
          }
        },
        /*min_chunk=*/64);
    // Procrustes: minimizing ||X R^T - Y||_F over orthogonal R is maximizing
    // tr(R^T Y^T X) = tr(R X^T Y), so we hand ProcrustesRotation (which
    // maximizes tr(R M)) the matrix M = X^T Y.
    MatTMul(x, y, &m);
    RABITQ_RETURN_IF_ERROR(ProcrustesRotation(m, &r_new));
    rotation_ = std::move(r_new);
  }

  // Final full PQ training on rotated data.
  rotate_all();
  return pq_.Train(x_rot, config.pq);
}

void OptimizedProductQuantizer::RotateVector(const float* vec,
                                             float* out) const {
  MatVec(rotation_, vec, out);
}

void OptimizedProductQuantizer::Encode(const float* vec,
                                       std::uint8_t* code) const {
  std::vector<float> rotated(dim());
  RotateVector(vec, rotated.data());
  pq_.Encode(rotated.data(), code);
}

void OptimizedProductQuantizer::EncodeBatch(
    const Matrix& data, std::vector<std::uint8_t>* codes) const {
  codes->resize(data.rows() * num_segments());
  GlobalThreadPool().ParallelFor(
      data.rows(), [&](std::size_t begin, std::size_t end) {
        std::vector<float> rotated(dim());
        for (std::size_t i = begin; i < end; ++i) {
          RotateVector(data.Row(i), rotated.data());
          pq_.Encode(rotated.data(), codes->data() + i * num_segments());
        }
      },
      /*min_chunk=*/64);
}

void OptimizedProductQuantizer::Decode(const std::uint8_t* code,
                                       float* out) const {
  std::vector<float> rotated(dim());
  pq_.Decode(code, rotated.data());
  MatTVec(rotation_, rotated.data(), out);
}

void OptimizedProductQuantizer::ComputeLookupTables(
    const float* query, AlignedVector<float>* luts) const {
  std::vector<float> rotated(dim());
  RotateVector(query, rotated.data());
  pq_.ComputeLookupTables(rotated.data(), luts);
}

}  // namespace rabitq
