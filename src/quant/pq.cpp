#include "quant/pq.h"

#include <limits>

#include "linalg/vector_ops.h"
#include "util/thread_pool.h"

namespace rabitq {

Status ProductQuantizer::Train(const Matrix& data, const PqConfig& config) {
  if (data.rows() == 0) return Status::InvalidArgument("empty training data");
  if (config.bits != 4 && config.bits != 8) {
    return Status::InvalidArgument("bits must be 4 or 8");
  }
  if (config.num_segments == 0 || data.cols() % config.num_segments != 0) {
    return Status::InvalidArgument(
        "num_segments must divide the dimensionality");
  }
  config_ = config;
  dim_ = data.cols();
  sub_dim_ = dim_ / config.num_segments;
  codebooks_.assign(config.num_segments, Matrix());

  // Per-segment KMeans on the segment slice of the training data.
  Matrix segment_data(data.rows(), sub_dim_);
  for (std::size_t m = 0; m < config.num_segments; ++m) {
    for (std::size_t i = 0; i < data.rows(); ++i) {
      const float* src = data.Row(i) + m * sub_dim_;
      std::copy_n(src, sub_dim_, segment_data.Row(i));
    }
    KMeansConfig kmeans;
    kmeans.num_clusters = codebook_size();
    kmeans.max_iterations = config.kmeans_iterations;
    kmeans.max_training_points = config.max_training_points;
    kmeans.seed = config.seed + m * 1000003ULL;
    KMeansResult result;
    RABITQ_RETURN_IF_ERROR(RunKMeans(segment_data, kmeans, &result));
    codebooks_[m] = std::move(result.centroids);
  }
  return Status::Ok();
}

void ProductQuantizer::Encode(const float* vec, std::uint8_t* code) const {
  for (std::size_t m = 0; m < num_segments(); ++m) {
    code[m] = static_cast<std::uint8_t>(
        NearestCentroid(vec + m * sub_dim_, codebooks_[m]));
  }
}

void ProductQuantizer::EncodeBatch(const Matrix& data,
                                   std::vector<std::uint8_t>* codes) const {
  codes->resize(data.rows() * num_segments());
  GlobalThreadPool().ParallelFor(
      data.rows(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Encode(data.Row(i), codes->data() + i * num_segments());
        }
      });
}

void ProductQuantizer::Decode(const std::uint8_t* code, float* out) const {
  for (std::size_t m = 0; m < num_segments(); ++m) {
    std::copy_n(codebooks_[m].Row(code[m]), sub_dim_, out + m * sub_dim_);
  }
}

void ProductQuantizer::ComputeLookupTables(const float* query,
                                           AlignedVector<float>* luts) const {
  const std::size_t ksub = codebook_size();
  luts->resize(num_segments() * ksub);
  for (std::size_t m = 0; m < num_segments(); ++m) {
    const float* q_seg = query + m * sub_dim_;
    float* lut = luts->data() + m * ksub;
    for (std::size_t j = 0; j < ksub; ++j) {
      lut[j] = L2SqrDistance(q_seg, codebooks_[m].Row(j), sub_dim_);
    }
  }
}

float ProductQuantizer::EstimateWithLuts(const std::uint8_t* code,
                                         const float* luts) const {
  const std::size_t ksub = codebook_size();
  float acc = 0.0f;
  for (std::size_t m = 0; m < num_segments(); ++m) {
    acc += luts[m * ksub + code[m]];
  }
  return acc;
}

Status ProductQuantizer::PackForFastScan(const std::vector<std::uint8_t>& codes,
                                         std::size_t n,
                                         FastScanCodes* out) const {
  if (config_.bits != 4) {
    return Status::FailedPrecondition("fast scan requires 4-bit codes");
  }
  if (codes.size() < n * num_segments()) {
    return Status::InvalidArgument("code buffer too small");
  }
  PackFastScanCodes(codes.data(), n, num_segments(), out);
  return Status::Ok();
}

}  // namespace rabitq
