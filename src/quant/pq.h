// Product Quantization [Jegou et al., TPAMI'11], the paper's primary baseline.
// Splits D dims into M sub-segments, trains a 2^k-entry KMeans sub-codebook
// per segment, and estimates squared distances by asymmetric distance
// computation (ADC): per-query look-up tables of sub-distances accumulated
// over segments. k=8 is the classic LUT-in-RAM variant ("PQx8-single");
// k=4 feeds the SIMD fast-scan layout ("PQx4fs-batch", see fastscan.h).

#ifndef RABITQ_QUANT_PQ_H_
#define RABITQ_QUANT_PQ_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "linalg/matrix.h"
#include "quant/fastscan.h"
#include "util/aligned_buffer.h"
#include "util/status.h"

namespace rabitq {

struct PqConfig {
  /// Number of sub-segments M. Must divide the dimensionality.
  std::size_t num_segments = 8;
  /// Bits per sub-code: 8 (256-entry sub-codebooks) or 4 (16-entry, fast-scan).
  int bits = 8;
  /// KMeans iterations per sub-codebook.
  int kmeans_iterations = 20;
  /// Training subsample cap per sub-codebook (0 = all points).
  std::size_t max_training_points = 65536;
  std::uint64_t seed = 7;
};

/// Product quantizer. Codes are stored *unpacked*: one byte per segment, each
/// byte in [0, 2^bits). Packing for fast scan is a separate step.
class ProductQuantizer {
 public:
  /// Trains the M sub-codebooks on `data` (N x dim).
  Status Train(const Matrix& data, const PqConfig& config);

  std::size_t dim() const { return dim_; }
  std::size_t num_segments() const { return config_.num_segments; }
  std::size_t sub_dim() const { return sub_dim_; }
  int bits() const { return config_.bits; }
  std::size_t codebook_size() const { return std::size_t{1} << config_.bits; }
  /// Compressed size in bits of one code (M * k).
  std::size_t code_bits() const { return num_segments() * config_.bits; }

  /// Centroids of segment m (codebook_size() x sub_dim()).
  const Matrix& sub_codebook(std::size_t m) const { return codebooks_[m]; }

  /// Encodes one vector into num_segments() bytes.
  void Encode(const float* vec, std::uint8_t* code) const;

  /// Encodes all rows of `data` (threaded). `codes` is resized to
  /// N * num_segments().
  void EncodeBatch(const Matrix& data, std::vector<std::uint8_t>* codes) const;

  /// Reconstructs the quantized vector of a code.
  void Decode(const std::uint8_t* code, float* out) const;

  /// ADC tables for `query`: num_segments() x codebook_size() floats, where
  /// entry (m, j) is the squared distance between query segment m and
  /// centroid j.
  void ComputeLookupTables(const float* query,
                           AlignedVector<float>* luts) const;

  /// Estimated squared distance: sum of LUT entries selected by the code.
  float EstimateWithLuts(const std::uint8_t* code, const float* luts) const;

  /// Packs 4-bit codes into the fast-scan layout (requires bits == 4).
  Status PackForFastScan(const std::vector<std::uint8_t>& codes, std::size_t n,
                         FastScanCodes* out) const;

 private:
  PqConfig config_;
  std::size_t dim_ = 0;
  std::size_t sub_dim_ = 0;
  std::vector<Matrix> codebooks_;  // M matrices, codebook_size x sub_dim
};

}  // namespace rabitq

#endif  // RABITQ_QUANT_PQ_H_
