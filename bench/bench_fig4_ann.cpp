// Reproduces Figure 4: QPS vs recall@100 and QPS vs average distance ratio
// for in-memory ANN search. Methods, as in the paper:
//   * IVF-RaBitQ      (error-bound re-ranking, no tuning),
//   * IVF-OPQx4fs     (fixed re-ranking with 500 / 1000 / 2500 candidates),
//   * HNSW            (efSearch sweep; M=16 -> max out-degree 32).
// One row per operating point; single-threaded queries per the paper.
//
// Expected shapes: IVF-RaBitQ dominates IVF-OPQ at every re-rank setting on
// all datasets; on MSong-like data OPQ's recall collapses (and *decreases*
// with more probing); no single OPQ re-rank parameter works everywhere.

#include <cstdio>

#include "bench_common.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/hnsw.h"
#include "index/ivf.h"
#include "index/ivf_pq.h"
#include "util/timer.h"

using namespace rabitq;

namespace {

constexpr std::size_t kK = 100;

struct OperatingPoint {
  std::string method;
  std::string param;
  double recall;
  double ratio;
  double qps;
};

template <typename SearchFn>
OperatingPoint MeasureSweepPoint(const std::string& method,
                                 const std::string& param,
                                 const Matrix& queries, const GroundTruth& gt,
                                 const SearchFn& search) {
  double recall = 0.0, ratio = 0.0;
  WallTimer timer;
  std::vector<Neighbor> result;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    search(q, &result);
    recall += RecallAtK(gt, q, result, kK);
    ratio += AverageDistanceRatio(gt, q, result, kK);
  }
  const double seconds = timer.ElapsedSeconds();
  return OperatingPoint{method, param, recall / queries.rows(),
                        ratio / queries.rows(),
                        queries.rows() / seconds};
}

}  // namespace

int main() {
  std::printf("=== Fig. 4: QPS vs recall@100 / avg distance ratio (ANN) "
              "===\n");
  const std::vector<std::size_t> nprobes = {1, 2, 4, 8, 16, 32, 64};
  const std::vector<std::size_t> efs = {100, 200, 400, 800};

  for (const SyntheticSpec& spec : bench::BenchSuite(15)) {
    Matrix base, queries;
    bench::CheckOk(GenerateDataset(spec, &base, &queries), spec.name.c_str());
    GroundTruth gt;
    bench::CheckOk(ComputeGroundTruth(base, queries, kK, &gt), "ground truth");

    // Keep the paper's occupancy (~250 vectors/list at 1M/4096) rather than
    // its absolute list count: at laptop N a 4*sqrt(N) grid leaves ~25
    // vectors/list, where probe order alone decides recall and the
    // quantizer never matters.
    IvfConfig ivf;
    ivf.num_lists = std::max<std::size_t>(16, base.rows() / 256);

    IvfRabitqIndex rabitq_index;
    bench::CheckOk(rabitq_index.Build(base, ivf, RabitqConfig{}),
                   "IVF-RaBitQ build");

    IvfPqConfig opq_config;
    opq_config.ivf = ivf;
    opq_config.pq.num_segments = bench::LargestDivisorAtMost(spec.dim,
                                                             spec.dim / 2);
    opq_config.pq.bits = 4;
    opq_config.pq.kmeans_iterations = 8;
    opq_config.use_opq = true;
    opq_config.opq_iterations = 3;
    opq_config.opq_max_training_points = 8000;
    IvfPqIndex opq_index;
    bench::CheckOk(opq_index.Build(base, opq_config), "IVF-OPQ build");

    HnswIndex hnsw;
    HnswConfig hnsw_config;
    hnsw_config.m = 16;
    hnsw_config.ef_construction = 200;
    bench::CheckOk(hnsw.Build(base, hnsw_config), "HNSW build");

    std::vector<OperatingPoint> points;
    for (std::size_t nprobe : nprobes) {
      nprobe = std::min(nprobe, rabitq_index.num_lists());
      Rng rng(1);
      IvfSearchParams params;
      params.k = kK;
      params.nprobe = nprobe;
      points.push_back(MeasureSweepPoint(
          "IVF-RaBitQ", "nprobe=" + std::to_string(nprobe), queries, gt,
          [&](std::size_t q, std::vector<Neighbor>* out) {
            SearchRequest request{queries.Row(q), params};
            request.options.seed = rng.NextU64();
            SearchResponse response = rabitq_index.Search(request);
            bench::CheckOk(response.status, "search");
            *out = std::move(response.neighbors);
          }));
    }
    for (const std::size_t rerank : {500u, 1000u, 2500u}) {
      for (std::size_t nprobe : nprobes) {
        nprobe = std::min(nprobe, opq_index.num_lists());
        IvfPqSearchParams params;
        params.k = kK;
        params.nprobe = nprobe;
        params.rerank_candidates = rerank;
        points.push_back(MeasureSweepPoint(
            "IVF-OPQx4fs", "rerank=" + std::to_string(rerank) +
                               ",nprobe=" + std::to_string(nprobe),
            queries, gt, [&](std::size_t q, std::vector<Neighbor>* out) {
              bench::CheckOk(opq_index.Search(queries.Row(q), params, out),
                             "search");
            }));
      }
    }
    for (const std::size_t ef : efs) {
      points.push_back(MeasureSweepPoint(
          "HNSW", "efSearch=" + std::to_string(ef), queries, gt,
          [&](std::size_t q, std::vector<Neighbor>* out) {
            bench::CheckOk(hnsw.Search(queries.Row(q), kK, ef, out), "search");
          }));
    }

    std::printf("\n--- %s (N=%zu, D=%zu, %zu queries, K=%zu) ---\n",
                spec.name.c_str(), base.rows(), spec.dim, queries.rows(), kK);
    TablePrinter table(
        {"method", "param", "recall@100 (%)", "avg dist ratio", "QPS"});
    for (const OperatingPoint& p : points) {
      table.AddRow({p.method, p.param,
                    TablePrinter::FormatDouble(100 * p.recall, 2),
                    TablePrinter::FormatDouble(p.ratio, 4),
                    TablePrinter::FormatDouble(p.qps, 0)});
    }
    table.Print();
  }
  return 0;
}
