// Reproduces Table 7 (Appendix F.2): ablation of the estimator. Same codes,
// two read-outs:
//   * <obar,q> / <obar,o>   -- the paper's unbiased estimator,
//   * <obar,q>              -- treating the quantized vector as the vector,
//                              as PQ does (biased by a factor ~<obar,o>~0.8).
//
// Expected: the unbiased estimator wins on both columns; paper numbers
// (GIST, 1M): 1.675%/13.04% vs 2.196%/52.40%.

#include <cstdio>

#include "bench_common.h"
#include "core/estimator.h"
#include "eval/metrics.h"
#include "util/prng.h"

using namespace rabitq;

int main() {
  const SyntheticSpec spec = GistLikeSpec(
      static_cast<std::size_t>(8000 * bench::EnvScale()), 10);
  Matrix base, queries;
  bench::CheckOk(GenerateDataset(spec, &base, &queries), "dataset");
  const std::size_t dim = spec.dim;
  std::printf("=== Table 7: estimator ablation, %s N=%zu ===\n\n",
              spec.name.c_str(), base.rows());
  const auto centroid = bench::DatasetCentroid(base);

  RabitqEncoder encoder;
  bench::CheckOk(encoder.Init(dim, RabitqConfig{}), "init");
  RabitqCodeStore store(encoder.total_bits());
  for (std::size_t i = 0; i < base.rows(); ++i) {
    bench::CheckOk(encoder.EncodeAppend(base.Row(i), centroid.data(), &store),
                   "encode");
  }

  // Mean squared distance (to floor the relative-error denominators).
  double mean_truth = 0.0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    for (std::size_t i = 0; i < base.rows(); ++i) {
      mean_truth += L2SqrDistance(queries.Row(q), base.Row(i), dim);
    }
  }
  mean_truth /= static_cast<double>(queries.rows() * base.rows());
  const double floor = 0.01 * mean_truth;

  Rng rng(6);
  RelativeErrorAccumulator unbiased_err, biased_err;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    QuantizedQuery qq;
    bench::CheckOk(
        PrepareQuery(encoder, queries.Row(q), centroid.data(), &rng, &qq),
        "prepare");
    for (std::size_t i = 0; i < store.size(); ++i) {
      const float truth = L2SqrDistance(queries.Row(q), base.Row(i), dim);
      unbiased_err.Add(EstimateDistance(qq, store.View(i), 0.0f).dist_sq,
                       truth, floor);
      biased_err.Add(EstimateDistanceBiased(qq, store.View(i)).dist_sq, truth,
                     floor);
    }
  }

  TablePrinter table({"estimator", "avg rel err", "max rel err",
                      "paper (GIST, 1M)"});
  const RelativeErrorStats u = unbiased_err.Stats();
  const RelativeErrorStats b = biased_err.Stats();
  table.AddRow({"<obar,q>/<obar,o> (RaBitQ)",
                TablePrinter::FormatDouble(100 * u.average, 3) + "%",
                TablePrinter::FormatDouble(100 * u.maximum, 2) + "%",
                "1.675% / 13.04%"});
  table.AddRow({"<obar,q> (PQ-style, ablated)",
                TablePrinter::FormatDouble(100 * b.average, 3) + "%",
                TablePrinter::FormatDouble(100 * b.maximum, 2) + "%",
                "2.196% / 52.40%"});
  table.Print();
  std::printf("\nShape check: the ablated estimator is worse on BOTH "
              "columns (and its error bound no longer applies).\n");
  return 0;
}
