// Reproduces Figure 3: time-accuracy trade-off of distance estimation per
// vector. For each of the six datasets it prints one row per (method, code
// length): average relative error, maximum relative error, and nanoseconds
// per estimated vector (query preprocessing included, as in the paper).
//
// Methods: RaBitQ-single (bitwise), RaBitQ-batch (fast scan), PQx8-single
// (LUT in RAM), PQx4fs-batch, OPQx8-single, OPQx4fs-batch, LSQx4fs-batch.
// Code lengths: RaBitQ sweeps zero-padding {B0, 2*B0}; PQ/OPQ sweep
// M in {~D/4, ~D/2} (4-bit) and {~D/8, ~D/4} (8-bit); LSQ uses M ~ D/4.
//
// Expected shapes (paper Section 5.2.1):
//   * RaBitQ at B0 ~ D bits beats PQ/OPQ at 2D bits on both error columns;
//   * RaBitQ-single is ~3x faster than PQx8-single at comparable accuracy;
//   * on MSong-like data PQx4fs/OPQx4fs collapse (avg err > 50%).

#include <cmath>
#include <cstdio>
#include <functional>

#include "bench_common.h"
#include "core/estimator.h"
#include "eval/metrics.h"
#include "index/ivf.h"
#include "quant/lsq.h"
#include "quant/opq.h"
#include "quant/pq.h"
#include "util/prng.h"
#include "util/timer.h"

using namespace rabitq;

namespace {

struct MethodRow {
  std::string method;
  std::size_t code_bits;
  double ns_per_vector;
  double avg_err;
  double max_err;
};

// Exact squared distances query x base, in base order.
Matrix ExactDistances(const Matrix& base, const Matrix& queries) {
  Matrix truth(queries.rows(), base.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    for (std::size_t i = 0; i < base.rows(); ++i) {
      truth.At(q, i) = L2SqrDistance(queries.Row(q), base.Row(i), base.cols());
    }
  }
  return truth;
}

MethodRow ScoreEstimates(const std::string& method, std::size_t code_bits,
                         double seconds, const Matrix& truth,
                         const Matrix& estimates) {
  RelativeErrorAccumulator err;
  const double floor = 0.01 * bench::MeanOfMatrix(truth);
  for (std::size_t q = 0; q < truth.rows(); ++q) {
    for (std::size_t i = 0; i < truth.cols(); ++i) {
      err.Add(estimates.At(q, i), truth.At(q, i), floor);
    }
  }
  const RelativeErrorStats stats = err.Stats();
  return MethodRow{method, code_bits,
                   seconds * 1e9 / (truth.rows() * truth.cols()),
                   stats.average, stats.maximum};
}

// ---- RaBitQ (per-cluster normalization via a small IVF, probe order). -----
void RunRabitq(const Matrix& base, const Matrix& queries, const Matrix& truth,
               std::size_t total_bits, std::vector<MethodRow>* rows) {
  IvfConfig ivf;
  ivf.num_lists = std::max<std::size_t>(8, base.rows() / 256);
  RabitqConfig config;
  config.total_bits = total_bits;
  IvfRabitqIndex index;
  bench::CheckOk(index.Build(base, ivf, config), "RaBitQ IVF build");

  Matrix estimates(queries.rows(), base.rows());
  std::vector<float> rotated_query(index.encoder().total_bits());
  for (const bool batch : {false, true}) {
    Rng rng(77);
    WallTimer timer;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      const auto order = index.ProbeOrderWithDistances(queries.Row(q));
      RotateQueryOnce(index.encoder(), queries.Row(q), rotated_query.data());
      for (const auto& [centroid_dist_sq, l] : order) {
        const auto& ids = index.list_ids(l);
        if (ids.empty()) continue;
        QuantizedQuery qq;
        bench::CheckOk(
            PrepareQueryFromRotated(index.encoder(), rotated_query.data(),
                                    index.rotated_centroids().Row(l),
                                    std::sqrt(std::max(0.0f, centroid_dist_sq)),
                                    &rng, &qq),
            "prepare query");
        const RabitqCodeStore& codes = index.list_codes(l);
        if (batch) {
          std::vector<float> buffer(codes.size());
          EstimateAll(qq, codes, 0.0f, buffer.data(), nullptr);
          for (std::size_t i = 0; i < ids.size(); ++i) {
            estimates.At(q, ids[i]) = buffer[i];
          }
        } else {
          for (std::size_t i = 0; i < ids.size(); ++i) {
            estimates.At(q, ids[i]) =
                EstimateDistance(qq, codes.View(i), 0.0f).dist_sq;
          }
        }
      }
    }
    const double seconds = timer.ElapsedSeconds();
    rows->push_back(ScoreEstimates(
        batch ? "RaBitQ-batch" : "RaBitQ-single",
        index.encoder().total_bits(), seconds, truth, estimates));
  }
}

// ---- PQ / OPQ (global codebooks; x8 LUT-in-RAM or x4fs fast scan). --------
void RunPqLike(const Matrix& base, const Matrix& queries, const Matrix& truth,
               bool use_opq, int bits, std::size_t num_segments,
               std::vector<MethodRow>* rows) {
  PqConfig pq_config;
  pq_config.num_segments = num_segments;
  pq_config.bits = bits;
  pq_config.kmeans_iterations = 10;
  ProductQuantizer pq;
  OptimizedProductQuantizer opq;
  std::vector<std::uint8_t> codes;
  if (use_opq) {
    OpqConfig opq_config;
    opq_config.pq = pq_config;
    opq_config.opq_iterations = 3;
    opq_config.max_training_points = 8000;
    bench::CheckOk(opq.Train(base, opq_config), "OPQ train");
    opq.EncodeBatch(base, &codes);
  } else {
    bench::CheckOk(pq.Train(base, pq_config), "PQ train");
    pq.EncodeBatch(base, &codes);
  }

  const std::string name = std::string(use_opq ? "OPQ" : "PQ") +
                           (bits == 4 ? "x4fs-batch" : "x8-single");
  Matrix estimates(queries.rows(), base.rows());
  AlignedVector<float> luts;
  WallTimer timer;
  if (bits == 4) {
    FastScanCodes packed;
    PackFastScanCodes(codes.data(), base.rows(), num_segments, &packed);
    timer.Restart();  // packing is index-phase work
    AlignedVector<std::uint8_t> qluts;
    std::uint32_t acc[kFastScanBlockSize];
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      if (use_opq) {
        opq.ComputeLookupTables(queries.Row(q), &luts);
      } else {
        pq.ComputeLookupTables(queries.Row(q), &luts);
      }
      float scale, bias;
      QuantizeLutsToU8(luts.data(), num_segments, &qluts, &scale, &bias);
      for (std::size_t block = 0; block < packed.num_blocks; ++block) {
        FastScanAccumulateBlock(packed.BlockPtr(block), num_segments,
                                qluts.data(), acc);
        const std::size_t begin = block * kFastScanBlockSize;
        const std::size_t end =
            std::min(begin + kFastScanBlockSize, base.rows());
        for (std::size_t i = begin; i < end; ++i) {
          estimates.At(q, i) =
              scale * static_cast<float>(acc[i - begin]) + bias;
        }
      }
    }
  } else {
    const ProductQuantizer& quantizer = use_opq ? opq.pq() : pq;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      if (use_opq) {
        opq.ComputeLookupTables(queries.Row(q), &luts);
      } else {
        pq.ComputeLookupTables(queries.Row(q), &luts);
      }
      for (std::size_t i = 0; i < base.rows(); ++i) {
        estimates.At(q, i) = quantizer.EstimateWithLuts(
            codes.data() + i * num_segments, luts.data());
      }
    }
  }
  const double seconds = timer.ElapsedSeconds();
  rows->push_back(ScoreEstimates(name, num_segments * bits, seconds, truth,
                                 estimates));
}

// ---- LSQ-lite x4fs. --------------------------------------------------------
void RunLsq(const Matrix& base, const Matrix& queries, const Matrix& truth,
            std::size_t num_codebooks, std::vector<MethodRow>* rows) {
  LsqConfig config;
  config.num_codebooks = num_codebooks;
  config.train_iterations = 2;
  config.icm_iterations = 1;
  config.max_training_points = 4000;
  AdditiveQuantizer aq;
  bench::CheckOk(aq.Train(base, config), "LSQ train");
  std::vector<std::uint8_t> codes;
  std::vector<float> norms;
  aq.EncodeBatch(base, &codes, &norms);
  FastScanCodes packed;
  PackFastScanCodes(codes.data(), base.rows(), num_codebooks, &packed);

  Matrix estimates(queries.rows(), base.rows());
  AlignedVector<float> luts;
  AlignedVector<std::uint8_t> qluts;
  std::uint32_t acc[kFastScanBlockSize];
  WallTimer timer;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    aq.ComputeLookupTables(queries.Row(q), &luts);
    float scale, bias;
    QuantizeLutsToU8(luts.data(), num_codebooks, &qluts, &scale, &bias);
    const float query_sq = SquaredNorm(queries.Row(q), base.cols());
    for (std::size_t block = 0; block < packed.num_blocks; ++block) {
      FastScanAccumulateBlock(packed.BlockPtr(block), num_codebooks,
                              qluts.data(), acc);
      const std::size_t begin = block * kFastScanBlockSize;
      const std::size_t end = std::min(begin + kFastScanBlockSize, base.rows());
      for (std::size_t i = begin; i < end; ++i) {
        estimates.At(q, i) = scale * static_cast<float>(acc[i - begin]) +
                             bias + query_sq + norms[i];
      }
    }
  }
  const double seconds = timer.ElapsedSeconds();
  rows->push_back(ScoreEstimates("LSQx4fs-batch", num_codebooks * 4, seconds,
                                 truth, estimates));
}

}  // namespace

int main() {
  std::printf("=== Fig. 3: time-accuracy trade-off of distance estimation "
              "===\n");
  for (const SyntheticSpec& spec : bench::BenchSuite(10)) {
    Matrix base, queries;
    bench::CheckOk(GenerateDataset(spec, &base, &queries), spec.name.c_str());
    const Matrix truth = ExactDistances(base, queries);
    const std::size_t dim = spec.dim;

    std::vector<MethodRow> rows;
    const std::size_t b0 = DefaultPaddedDim(dim);
    RunRabitq(base, queries, truth, b0, &rows);
    RunRabitq(base, queries, truth, 2 * b0, &rows);
    for (const std::size_t m :
         {bench::LargestDivisorAtMost(dim, dim / 4),
          bench::LargestDivisorAtMost(dim, dim / 2)}) {
      RunPqLike(base, queries, truth, /*use_opq=*/false, /*bits=*/4, m, &rows);
      RunPqLike(base, queries, truth, /*use_opq=*/true, /*bits=*/4, m, &rows);
    }
    for (const std::size_t m :
         {bench::LargestDivisorAtMost(dim, dim / 8),
          bench::LargestDivisorAtMost(dim, dim / 4)}) {
      RunPqLike(base, queries, truth, /*use_opq=*/false, /*bits=*/8, m, &rows);
      RunPqLike(base, queries, truth, /*use_opq=*/true, /*bits=*/8, m, &rows);
    }
    RunLsq(base, queries, truth, bench::LargestDivisorAtMost(dim, dim / 4),
           &rows);

    std::printf("\n--- %s (N=%zu, D=%zu, %zu queries) ---\n",
                spec.name.c_str(), base.rows(), dim, queries.rows());
    TablePrinter table({"method", "code bits", "ns/vector", "avg rel err",
                        "max rel err"});
    for (const MethodRow& row : rows) {
      table.AddRow({row.method, std::to_string(row.code_bits),
                    TablePrinter::FormatDouble(row.ns_per_vector, 1),
                    TablePrinter::FormatDouble(100 * row.avg_err, 2) + "%",
                    TablePrinter::FormatDouble(100 * row.max_err, 1) + "%"});
    }
    table.Print();
  }
  return 0;
}
