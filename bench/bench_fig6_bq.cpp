// Reproduces Figure 6: average relative error of estimated distances as a
// function of B_q (bits per quantized query entry), on SIFT-like (D=128)
// and GIST-like (D=960) data.
//
// Expected shape: the error converges by B_q ~ 4 (Theorem 3.3's
// Theta(log log D) in practice); B_q = 1 -- both sides binary, the
// binary-hashing regime -- is clearly worse.

#include <cstdio>

#include "bench_common.h"
#include "core/estimator.h"
#include "eval/metrics.h"
#include "util/prng.h"
#include "util/timer.h"

using namespace rabitq;

int main() {
  std::printf("=== Fig. 6: avg relative error vs B_q ===\n\n");
  const double scale = bench::EnvScale();
  std::vector<SyntheticSpec> specs = {
      SiftLikeSpec(static_cast<std::size_t>(10000 * scale), 20),
      GistLikeSpec(static_cast<std::size_t>(4000 * scale), 10)};

  TablePrinter table({"dataset", "B_q", "avg rel err", "max rel err"});
  for (const SyntheticSpec& spec : specs) {
    Matrix base, queries;
    bench::CheckOk(GenerateDataset(spec, &base, &queries), spec.name.c_str());
    const std::size_t dim = spec.dim;
    const auto centroid = bench::DatasetCentroid(base);

    RabitqEncoder encoder;
    bench::CheckOk(encoder.Init(dim, RabitqConfig{}), "init");
    RabitqCodeStore store(encoder.total_bits());
    store.Reserve(base.rows());
    for (std::size_t i = 0; i < base.rows(); ++i) {
      bench::CheckOk(encoder.EncodeAppend(base.Row(i), centroid.data(), &store),
                     "encode");
    }

    // Exact distances once.
    Matrix truth(queries.rows(), base.rows());
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      for (std::size_t i = 0; i < base.rows(); ++i) {
        truth.At(q, i) = L2SqrDistance(queries.Row(q), base.Row(i), dim);
      }
    }

    const double floor = 0.01 * bench::MeanOfMatrix(truth);
    for (int bq = 1; bq <= 8; ++bq) {
      Rng rng(42);
      RelativeErrorAccumulator err;
      for (std::size_t q = 0; q < queries.rows(); ++q) {
        QuantizedQuery qq;
        bench::CheckOk(PrepareQuery(encoder, queries.Row(q), centroid.data(),
                                    &rng, &qq, bq),
                       "prepare");
        for (std::size_t i = 0; i < store.size(); ++i) {
          err.Add(EstimateDistance(qq, store.View(i), 0.0f).dist_sq,
                  truth.At(q, i), floor);
        }
      }
      const RelativeErrorStats stats = err.Stats();
      table.AddRow({spec.name + " (D=" + std::to_string(dim) + ")",
                    std::to_string(bq),
                    TablePrinter::FormatDouble(100 * stats.average, 2) + "%",
                    TablePrinter::FormatDouble(100 * stats.maximum, 1) + "%"});
    }
  }
  table.Print();
  std::printf("\nShape check: error converges at B_q ~ 4 on both datasets; "
              "B_q = 1 is much worse.\n");
  return 0;
}
