// Serving-engine throughput: QPS of batched multi-threaded SearchBatch vs
// the paper's sequential single-query Search, swept over thread count and
// batch size at equal recall (same index and estimator; the per-query seed
// streams differ only in the randomized query rounding, which the recall
// column shows is noise), plus a sharded scatter-gather sweep reporting
// build time, query QPS and concurrent-writer mutation throughput per
// shard count. Emits one JSON object for dashboard scraping (the --json
// flag is accepted for symmetry with bench_kernels; output is always JSON).
// A "stages" series traces every query (sample period 1) through
// SubmitAsync and reports the per-stage latency histograms (queue wait,
// preprocess, probe order, scan, rerank, merge) plus the estimator-health
// gauges out of the engine's metrics registry. A "metric":"ip" pair of
// series re-runs the sequential and batched-engine protocols under
// Metric::kInnerProduct so the non-L2 estimate path has its own dashboard
// trajectory.
//
//   ./bench_engine_throughput [--shards S] [--json]
//                                            (sharded sweep runs {1, S};
//                                             default S = 4)
//
// Environment knobs:
//   RABITQ_BENCH_SCALE    dataset size multiplier (default 1.0 -> N = 20000)
//   RABITQ_BENCH_QUERIES  number of distinct query vectors (default 256)
//   RABITQ_BENCH_THREADS  comma-free max thread count (default hardware)
//   RABITQ_BENCH_REPEAT   times the query set is replayed per series
//                         (default 4; raise for stabler numbers)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/search_engine.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/prng.h"
#include "util/timer.h"

namespace rabitq {
namespace bench {
namespace {

constexpr std::uint64_t kSeedBase = 2024;

Matrix Clustered(std::size_t n, std::size_t dim, std::size_t clusters,
                 std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

double RecallOf(const GroundTruth& gt,
                const std::vector<std::vector<Neighbor>>& results,
                std::size_t k) {
  double recall = 0.0;
  for (std::size_t q = 0; q < results.size(); ++q) {
    recall += RecallAtK(gt, q, results[q], k);
  }
  return results.empty() ? 0.0 : recall / static_cast<double>(results.size());
}

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

// Runs rows [begin, begin + count) of `queries` through the engine as one
// request batch (seed QuerySeed(kSeedBase, row), optional shared filter)
// and moves the neighbor lists into (*all)[row].
void RunRequestBatch(SearchEngine* engine, const Matrix& queries,
                     std::size_t begin, std::size_t count,
                     const IvfSearchParams& params, const IdFilter& filter,
                     std::vector<std::vector<Neighbor>>* all) {
  std::vector<SearchRequest> requests(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests[i].query = queries.Row(begin + i);
    requests[i].options = params;
    requests[i].options.seed = SearchEngine::QuerySeed(kSeedBase, begin + i);
    requests[i].options.filter = filter;
  }
  std::vector<SearchResponse> responses;
  CheckOk(engine->SearchBatch(requests.data(), count, &responses),
          "SearchBatch");
  for (std::size_t i = 0; i < count; ++i) {
    (*all)[begin + i] = std::move(responses[i].neighbors);
  }
}

}  // namespace

int Run(int argc, char** argv) {
  const std::size_t n = static_cast<std::size_t>(20000 * EnvScale());
  const std::size_t dim = 96;
  const std::size_t num_queries = EnvQueryCap(256);
  const std::size_t repeat = EnvSize("RABITQ_BENCH_REPEAT", 4);
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const std::size_t max_threads = EnvSize("RABITQ_BENCH_THREADS", hw);

  Matrix data = Clustered(n, dim, 64, 11);
  Matrix queries = Clustered(num_queries, dim, 64, 12);

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 32;

  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 256;
  CheckOk(index.Build(data, ivf, RabitqConfig{}), "Build");
  GroundTruth gt;
  CheckOk(ComputeGroundTruth(data, queries, params.k, &gt), "GroundTruth");

  std::printf("{\"bench\":\"engine_throughput\",\"n\":%zu,\"dim\":%zu,"
              "\"queries\":%zu,\"repeat\":%zu,\"k\":%zu,\"nprobe\":%zu,"
              "\"hardware_threads\":%zu,\"series\":[\n",
              n, dim, num_queries, repeat, params.k, params.nprobe, hw);

  // Baseline: the paper's protocol -- sequential, single-query, one thread.
  double sequential_qps = 0.0;
  {
    std::vector<std::vector<Neighbor>> results(num_queries);
    WallTimer timer;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (std::size_t i = 0; i < num_queries; ++i) {
        SearchRequest request{queries.Row(i), params};
        request.options.seed = SearchEngine::QuerySeed(kSeedBase, i);
        SearchResponse response = index.Search(request);
        CheckOk(response.status, "Search");
        results[i] = std::move(response.neighbors);
      }
    }
    const double seconds = timer.ElapsedSeconds();
    sequential_qps =
        static_cast<double>(num_queries * repeat) / std::max(seconds, 1e-9);
    std::printf("  {\"mode\":\"sequential\",\"threads\":1,\"batch\":1,"
                "\"qps\":%.1f,\"recall\":%.4f}",
                sequential_qps, RecallOf(gt, results, params.k));
  }

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) thread_counts.push_back(max_threads);
  const std::size_t batch_sizes[] = {8, 32, 128};

  // Each engine owns its index; clone the built one through Save/Load
  // instead of re-running kmeans per series.
  const char* tmp_path = "bench_engine_throughput.tmp.idx";
  CheckOk(index.Save(tmp_path), "Save");

  for (const std::size_t threads : thread_counts) {
    EngineConfig config;
    config.num_threads = threads;
    IvfRabitqIndex engine_index;
    CheckOk(engine_index.Load(tmp_path), "Load");
    SearchEngine engine(std::move(engine_index), config);
    for (const std::size_t batch : batch_sizes) {
      engine.ResetStats();
      std::vector<std::vector<Neighbor>> all(num_queries);
      WallTimer timer;
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t begin = 0; begin < num_queries; begin += batch) {
          const std::size_t count = std::min(batch, num_queries - begin);
          RunRequestBatch(&engine, queries, begin, count, params, IdFilter{},
                          &all);
        }
      }
      const double seconds = timer.ElapsedSeconds();
      const double qps =
          static_cast<double>(num_queries * repeat) / std::max(seconds, 1e-9);
      const EngineStatsSnapshot stats = engine.Stats();
      std::printf(",\n  {\"mode\":\"engine\",\"threads\":%zu,\"batch\":%zu,"
                  "\"qps\":%.1f,\"recall\":%.4f,\"speedup\":%.2f,"
                  "\"p50_us\":%.1f,\"p99_us\":%.1f,\"codes_filtered\":%llu}",
                  threads, batch, qps, RecallOf(gt, all, params.k),
                  qps / std::max(sequential_qps, 1e-9),
                  stats.latency_p50_us, stats.latency_p99_us,
                  static_cast<unsigned long long>(stats.codes_filtered));
    }
  }

  // ---- Filtered serving: the same query stream with a per-query IdFilter
  // at several selectivities (fraction of ids allowed). The filter is pushed
  // into the fused kernel's survivors mask, so QPS tracks the allowed
  // fraction instead of paying full-scan cost plus a post-filter.
  {
    EngineConfig config;
    config.num_threads = max_threads;
    IvfRabitqIndex engine_index;
    CheckOk(engine_index.Load(tmp_path), "Load");
    SearchEngine engine(std::move(engine_index), config);
    Rng filter_rng(77);
    for (const double selectivity : {1.0, 0.5, 0.1}) {
      std::vector<std::uint64_t> bitmap((n + 63) / 64, 0);
      std::size_t allowed = 0;
      for (std::size_t id = 0; id < n; ++id) {
        if (filter_rng.UniformInt(1000) <
            static_cast<std::size_t>(selectivity * 1000)) {
          bitmap[id >> 6] |= std::uint64_t{1} << (id & 63);
          ++allowed;
        }
      }
      const IdFilter filter = IdFilter::AllowBitmap(bitmap.data(), n);
      engine.ResetStats();
      std::vector<std::vector<Neighbor>> all(num_queries);
      WallTimer timer;
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t begin = 0; begin < num_queries; begin += 32) {
          const std::size_t count =
              std::min<std::size_t>(32, num_queries - begin);
          RunRequestBatch(&engine, queries, begin, count, params, filter,
                          &all);
        }
      }
      const double seconds = timer.ElapsedSeconds();
      const EngineStatsSnapshot stats = engine.Stats();
      std::printf(",\n  {\"mode\":\"filtered\",\"threads\":%zu,"
                  "\"selectivity\":%.2f,\"allowed\":%zu,\"qps\":%.1f,"
                  "\"codes_filtered\":%llu}",
                  max_threads, selectivity, allowed,
                  static_cast<double>(num_queries * repeat) /
                      std::max(seconds, 1e-9),
                  static_cast<unsigned long long>(stats.codes_filtered));
    }
  }

  // ---- Per-stage breakdown: a dedicated engine traces EVERY query
  // (trace_sample_period = 1) and is driven through SubmitAsync so the
  // queue-wait span is real queueing, not zero. Stage histograms and the
  // estimator-health gauges come straight out of the metrics registry --
  // the same series a production scrape would see via obs::Export.
  {
    EngineConfig config;
    config.num_threads = max_threads;
    config.trace_sample_period = 1;
    IvfRabitqIndex engine_index;
    CheckOk(engine_index.Load(tmp_path), "Load");
    SearchEngine engine(std::move(engine_index), config);
    engine.ResetStats();
    for (std::size_t r = 0; r < repeat; ++r) {
      std::vector<std::future<SearchResponse>> futures;
      futures.reserve(num_queries);
      for (std::size_t i = 0; i < num_queries; ++i) {
        SearchRequest request{queries.Row(i), params};
        request.options.seed = SearchEngine::QuerySeed(kSeedBase, i);
        futures.push_back(engine.SubmitAsync(request));
      }
      for (auto& f : futures) CheckOk(f.get().status, "SubmitAsync");
    }
    const obs::MetricsSnapshot metrics = engine.SnapshotMetrics();
    std::printf(",\n  {\"mode\":\"stages\",\"threads\":%zu,"
                "\"trace_sample_period\":1,\"stages\":{",
                max_threads);
    for (int s = 0; s < obs::kNumStages; ++s) {
      const char* stage = obs::StageName(static_cast<obs::Stage>(s));
      const obs::MetricValue* mv =
          metrics.Find(std::string("rabitq_stage_") + stage + "_us");
      const obs::HistogramSnapshot hist =
          mv != nullptr ? mv->hist : obs::HistogramSnapshot{};
      std::printf("%s\"%s\":{\"count\":%llu,\"mean_us\":%.2f,"
                  "\"p50_us\":%.2f,\"p99_us\":%.2f}",
                  s == 0 ? "" : ",", stage,
                  static_cast<unsigned long long>(hist.count), hist.Mean(),
                  hist.Quantile(0.50), hist.Quantile(0.99));
    }
    const EngineStatsSnapshot stats = engine.Stats();
    std::printf("},\"estimator_health\":{\"eps0_violation_rate\":%.5f,"
                "\"signed_rel_err_mean\":%.5f,\"bound_tightness_mean\":%.4f,"
                "\"samples\":%llu}}",
                stats.eps0_violation_rate, stats.rerank_signed_err_mean,
                stats.rerank_bound_tightness_mean,
                static_cast<unsigned long long>(stats.rerank_health_samples));
  }
  // ---- Open-loop overload: offered load is PACED (1ms ticks), not closed
  // loop, so pushing past saturation actually overloads the engine instead
  // of self-throttling. Every request carries a 20ms budget and the queue
  // is bounded, so past saturation the engine degrades by design: excess
  // work is rejected at admission or shed when its deadline lapses in the
  // queue, while goodput stays near saturation and the served-query p99
  // stays bounded by the deadline instead of growing with the backlog.
  {
    EngineConfig config;
    config.num_threads = max_threads;
    config.max_batch = 32;
    config.max_queue_depth = 256;
    IvfRabitqIndex engine_index;
    CheckOk(engine_index.Load(tmp_path), "Load");
    SearchEngine engine(std::move(engine_index), config);

    // Saturation estimate: closed-loop batched throughput on this engine.
    double saturation_qps = 0.0;
    {
      std::vector<std::vector<Neighbor>> all(num_queries);
      WallTimer timer;
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t begin = 0; begin < num_queries; begin += 32) {
          const std::size_t count =
              std::min<std::size_t>(32, num_queries - begin);
          RunRequestBatch(&engine, queries, begin, count, params, IdFilter{},
                          &all);
        }
      }
      saturation_qps = static_cast<double>(num_queries * repeat) /
                       std::max(timer.ElapsedSeconds(), 1e-9);
    }

    constexpr std::uint64_t kBudgetUs = 20000;
    for (const double load_factor : {0.5, 1.0, 2.0}) {
      const double rate = saturation_qps * load_factor;
      std::size_t total = static_cast<std::size_t>(rate * 0.75);
      total = std::max<std::size_t>(256, std::min<std::size_t>(total, 50000));

      engine.ResetStats();
      std::vector<std::future<SearchResponse>> futures;
      futures.reserve(total);
      std::size_t submitted = 0;
      auto next_tick = std::chrono::steady_clock::now();
      WallTimer timer;
      while (submitted < total) {
        next_tick += std::chrono::milliseconds(1);
        const double target_cumulative =
            rate * std::max(timer.ElapsedSeconds(), 1e-9);
        const std::size_t target = std::min(
            total, static_cast<std::size_t>(target_cumulative) + 1);
        while (submitted < target) {
          SearchRequest request{queries.Row(submitted % num_queries), params};
          request.options.seed =
              SearchEngine::QuerySeed(kSeedBase, submitted % num_queries);
          request.options.timeout_us = kBudgetUs;
          futures.push_back(engine.SubmitAsync(request));
          ++submitted;
        }
        std::this_thread::sleep_until(next_tick);
      }
      std::size_t good = 0, rejected = 0, deadline = 0, other = 0;
      for (auto& f : futures) {
        const SearchResponse response = f.get();
        if (response.ok()) {
          ++good;
        } else if (response.status.code() == StatusCode::kResourceExhausted) {
          ++rejected;
        } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
          ++deadline;
        } else {
          ++other;
        }
      }
      const double seconds = std::max(timer.ElapsedSeconds(), 1e-9);
      const EngineStatsSnapshot stats = engine.Stats();
      std::printf(",\n  {\"mode\":\"overload\",\"threads\":%zu,"
                  "\"load_factor\":%.1f,\"queue_depth\":%zu,"
                  "\"timeout_us\":%llu,\"offered_qps\":%.0f,"
                  "\"submitted\":%zu,\"goodput_qps\":%.0f,\"served\":%zu,"
                  "\"rejected\":%zu,\"deadline_exceeded\":%zu,"
                  "\"errors\":%zu,\"shed\":%llu,\"p99_us\":%.1f}",
                  max_threads, load_factor, config.max_queue_depth,
                  static_cast<unsigned long long>(kBudgetUs),
                  static_cast<double>(submitted) / seconds, submitted,
                  static_cast<double>(good) / seconds, good, rejected,
                  deadline, other,
                  static_cast<unsigned long long>(stats.queries_shed),
                  stats.latency_p99_us);
    }
  }
  std::remove(tmp_path);

  // ---- Bits-per-dim ablation: the multi-bit code path (B in {1,2,4,8})
  // across an nprobe sweep, batched engine at max threads, under three
  // settings per width:
  //   * kErrorBound at the paper's eps0 = 1.9 -- the two-stage scan
  //     (sign-plane prune, survivors refined with the B-bit estimate)
  //     feeding exact re-rank; the refined bound prunes more, so
  //     candidates_reranked drops with B at a small recall cost (two
  //     pruning stages, two chances for a bound violation);
  //   * kErrorBound at eps0 = 2.5 -- the setting the tighter multi-bit
  //     half-width buys: a more conservative confidence level recovers the
  //     violation-pruned recall while still re-ranking far fewer
  //     candidates than B = 1, which is where B > 1 takes the
  //     recall-vs-QPS frontier at equal recall >= 0.95;
  //   * kNone -- rank by the B-bit estimate alone, no exact re-rank
  //     (recall tracks estimate quality: the 1-bit estimate saturates
  //     under 0.5 here, the 8-bit estimate near the query-quantization
  //     ceiling).
  struct AblationSetting {
    RerankPolicy policy;
    float eps0;  // epsilon0_override; -1 keeps the config default (1.9)
    const char* tag;
  };
  constexpr AblationSetting kAblationSettings[] = {
      {RerankPolicy::kErrorBound, -1.0f, "error_bound"},
      {RerankPolicy::kErrorBound, 2.5f, "error_bound_eps2.5"},
      {RerankPolicy::kNone, -1.0f, "none"},
  };
  for (const std::size_t bits : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}, std::size_t{8}}) {
    IvfConfig bits_ivf;
    bits_ivf.num_lists = 256;
    RabitqConfig bits_rabitq;
    bits_rabitq.bits_per_dim = bits;
    IvfRabitqIndex bits_index;
    CheckOk(bits_index.Build(data, bits_ivf, bits_rabitq), "bits Build");
    EngineConfig config;
    config.num_threads = max_threads;
    SearchEngine engine(std::move(bits_index), config);
    for (const AblationSetting& setting : kAblationSettings) {
      for (const std::size_t nprobe : {std::size_t{4}, std::size_t{8},
                                       std::size_t{16}, std::size_t{32}}) {
        IvfSearchParams bparams = params;
        bparams.policy = setting.policy;
        bparams.epsilon0_override = setting.eps0;
        bparams.nprobe = nprobe;
        engine.ResetStats();
        std::vector<std::vector<Neighbor>> all(num_queries);
        WallTimer timer;
        for (std::size_t r = 0; r < repeat; ++r) {
          for (std::size_t begin = 0; begin < num_queries; begin += 32) {
            const std::size_t count =
                std::min<std::size_t>(32, num_queries - begin);
            RunRequestBatch(&engine, queries, begin, count, bparams,
                            IdFilter{}, &all);
          }
        }
        const double seconds = timer.ElapsedSeconds();
        const EngineStatsSnapshot stats = engine.Stats();
        std::printf(",\n  {\"mode\":\"bits_ablation\",\"bits\":%zu,"
                    "\"policy\":\"%s\",\"threads\":%zu,\"nprobe\":%zu,"
                    "\"qps\":%.1f,\"recall\":%.4f,\"codes_refined\":%llu,"
                    "\"candidates_reranked\":%llu}",
                    bits, setting.tag, max_threads, nprobe,
                    static_cast<double>(num_queries * repeat) /
                        std::max(seconds, 1e-9),
                    RecallOf(gt, all, params.k),
                    static_cast<unsigned long long>(stats.codes_refined),
                    static_cast<unsigned long long>(
                        stats.candidates_reranked));
      }
    }
  }

  // ---- Inner-product serving: the same vectors and queries scored under
  // Metric::kInnerProduct (halved cross factor, IP error half-width, exact
  // -<a,q> re-rank). Sequential vs batched engine at max threads, recall
  // against an IP oracle -- so the dashboard tracks the non-L2 estimate
  // path's throughput next to the L2 series above.
  {
    IvfRabitqIndex ip_index;
    IvfConfig ip_ivf;
    ip_ivf.num_lists = 256;
    ip_ivf.metric = Metric::kInnerProduct;
    CheckOk(ip_index.Build(data, ip_ivf, RabitqConfig{}), "ip Build");
    GroundTruth ip_gt;
    CheckOk(ComputeGroundTruth(data, queries, params.k,
                               Metric::kInnerProduct, &ip_gt),
            "ip GroundTruth");

    double ip_sequential_qps = 0.0;
    {
      std::vector<std::vector<Neighbor>> results(num_queries);
      WallTimer timer;
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t i = 0; i < num_queries; ++i) {
          SearchRequest request{queries.Row(i), params};
          request.options.seed = SearchEngine::QuerySeed(kSeedBase, i);
          SearchResponse response = ip_index.Search(request);
          CheckOk(response.status, "ip Search");
          results[i] = std::move(response.neighbors);
        }
      }
      ip_sequential_qps = static_cast<double>(num_queries * repeat) /
                          std::max(timer.ElapsedSeconds(), 1e-9);
      std::printf(",\n  {\"mode\":\"sequential\",\"metric\":\"ip\","
                  "\"threads\":1,\"batch\":1,\"qps\":%.1f,\"recall\":%.4f}",
                  ip_sequential_qps, RecallOf(ip_gt, results, params.k));
    }

    EngineConfig config;
    config.num_threads = max_threads;
    SearchEngine engine(std::move(ip_index), config);
    std::vector<std::vector<Neighbor>> all(num_queries);
    WallTimer timer;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (std::size_t begin = 0; begin < num_queries; begin += 32) {
        const std::size_t count = std::min<std::size_t>(32, num_queries - begin);
        RunRequestBatch(&engine, queries, begin, count, params, IdFilter{},
                        &all);
      }
    }
    const double seconds = timer.ElapsedSeconds();
    const double qps =
        static_cast<double>(num_queries * repeat) / std::max(seconds, 1e-9);
    std::printf(",\n  {\"mode\":\"engine\",\"metric\":\"ip\",\"threads\":%zu,"
                "\"batch\":32,\"qps\":%.1f,\"recall\":%.4f,\"speedup\":%.2f}",
                max_threads, qps, RecallOf(ip_gt, all, params.k),
                qps / std::max(ip_sequential_qps, 1e-9));
  }

  // ---- Sharded scatter-gather sweep: per shard count, the parallel build
  // time (independent per-shard clustering, lists split across shards so
  // the clustering work scales down with S), batched query QPS, and the
  // mutation throughput of concurrent writers -- the per-shard writer
  // mutexes are what turns S writers from serialized into parallel.
  const std::size_t max_shards = ParseShards(argc, argv, 4);
  std::vector<std::size_t> shard_counts = {1};
  if (max_shards > 1) shard_counts.push_back(max_shards);
  for (const std::size_t shards : shard_counts) {
    ShardedConfig scfg;
    scfg.num_shards = shards;
    scfg.clustering = ShardClustering::kPerShard;
    scfg.ivf.num_lists = std::max<std::size_t>(1, 256 / shards);
    ShardedIndex sharded;
    WallTimer build_timer;
    CheckOk(sharded.Build(data, scfg), "sharded Build");
    const double build_s = build_timer.ElapsedSeconds();

    EngineConfig config;
    config.num_threads = max_threads;
    SearchEngine engine(std::move(sharded), config);
    IvfSearchParams sparams = params;
    sparams.nprobe = std::max<std::size_t>(1, params.nprobe / shards);

    std::vector<std::vector<Neighbor>> all(num_queries);
    WallTimer query_timer;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (std::size_t begin = 0; begin < num_queries; begin += 32) {
        const std::size_t count = std::min<std::size_t>(32, num_queries - begin);
        RunRequestBatch(&engine, queries, begin, count, sparams, IdFilter{},
                        &all);
      }
    }
    const double query_s = query_timer.ElapsedSeconds();

    // Concurrent writers: each thread owns a disjoint id slice (updates)
    // and also appends fresh vectors; ops hash across every shard. Writer
    // count is independent of the engine pool -- these are caller threads,
    // and per-shard writer mutexes are what they contend on.
    const std::size_t writers = 4;
    const std::size_t ops_per_writer =
        std::max<std::size_t>(200, n / 8 / std::max<std::size_t>(writers, 1));
    std::atomic<std::size_t> mutations{0};
    std::vector<std::thread> writer_threads;
    WallTimer mutation_timer;
    for (std::size_t w = 0; w < writers; ++w) {
      writer_threads.emplace_back([&, w] {
        Rng rng(900 + w);
        std::vector<float> vec(dim);
        std::uint32_t owned = static_cast<std::uint32_t>(w);
        for (std::size_t op = 0; op < ops_per_writer; ++op) {
          for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 8.0f;
          if (op % 2 == 0) {
            CheckOk(engine.Insert(vec.data(), nullptr), "sharded Insert");
          } else {
            CheckOk(engine.Update(owned, vec.data()), "sharded Update");
            owned = static_cast<std::uint32_t>((owned + writers) % n);
          }
          mutations.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : writer_threads) t.join();
    const double mutation_s = mutation_timer.ElapsedSeconds();

    std::printf(",\n  {\"mode\":\"sharded\",\"shards\":%zu,\"threads\":%zu,"
                "\"build_s\":%.3f,\"qps\":%.1f,\"recall\":%.4f,"
                "\"mutation_writers\":%zu,\"mutation_ops_per_s\":%.0f}",
                shards, max_threads, build_s,
                static_cast<double>(num_queries * repeat) /
                    std::max(query_s, 1e-9),
                RecallOf(gt, all, params.k), writers,
                static_cast<double>(mutations.load()) /
                    std::max(mutation_s, 1e-9));
  }

  std::printf("\n]}\n");
  return 0;
}

}  // namespace bench
}  // namespace rabitq

int main(int argc, char** argv) { return rabitq::bench::Run(argc, argv); }
