// Serving-engine throughput: QPS of batched multi-threaded SearchBatch vs
// the paper's sequential single-query Search, swept over thread count and
// batch size at equal recall (same index and estimator; the per-query seed
// streams differ only in the randomized query rounding, which the recall
// column shows is noise), plus a sharded scatter-gather sweep reporting
// build time, query QPS and concurrent-writer mutation throughput per
// shard count. Emits one JSON object for dashboard scraping (the --json
// flag is accepted for symmetry with bench_kernels; output is always JSON).
// A "stages" series traces every query (sample period 1) through
// SubmitAsync and reports the per-stage latency histograms (queue wait,
// preprocess, probe order, scan, rerank, merge) plus the estimator-health
// gauges out of the engine's metrics registry. A "metric":"ip" pair of
// series re-runs the sequential and batched-engine protocols under
// Metric::kInnerProduct so the non-L2 estimate path has its own dashboard
// trajectory.
//
//   ./bench_engine_throughput [--shards S] [--json]
//                                            (sharded sweep runs {1, S};
//                                             default S = 4)
//
// Environment knobs:
//   RABITQ_BENCH_SCALE    dataset size multiplier (default 1.0 -> N = 20000)
//   RABITQ_BENCH_QUERIES  number of distinct query vectors (default 256)
//   RABITQ_BENCH_THREADS  comma-free max thread count (default hardware)
//   RABITQ_BENCH_REPEAT   times the query set is replayed per series
//                         (default 4; raise for stabler numbers)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/search_engine.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/client.h"
#include "server/server.h"
#include "util/prng.h"
#include "util/timer.h"

namespace rabitq {
namespace bench {
namespace {

constexpr std::uint64_t kSeedBase = 2024;

Matrix Clustered(std::size_t n, std::size_t dim, std::size_t clusters,
                 std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

double RecallOf(const GroundTruth& gt,
                const std::vector<std::vector<Neighbor>>& results,
                std::size_t k) {
  double recall = 0.0;
  for (std::size_t q = 0; q < results.size(); ++q) {
    recall += RecallAtK(gt, q, results[q], k);
  }
  return results.empty() ? 0.0 : recall / static_cast<double>(results.size());
}

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

// Runs rows [begin, begin + count) of `queries` through the engine as one
// request batch (seed QuerySeed(kSeedBase, row), optional shared filter)
// and moves the neighbor lists into (*all)[row].
void RunRequestBatch(SearchEngine* engine, const Matrix& queries,
                     std::size_t begin, std::size_t count,
                     const IvfSearchParams& params, const IdFilter& filter,
                     std::vector<std::vector<Neighbor>>* all) {
  std::vector<SearchRequest> requests(count);
  for (std::size_t i = 0; i < count; ++i) {
    requests[i].query = queries.Row(begin + i);
    requests[i].options = params;
    requests[i].options.seed = SearchEngine::QuerySeed(kSeedBase, begin + i);
    requests[i].options.filter = filter;
  }
  std::vector<SearchResponse> responses;
  CheckOk(engine->SearchBatch(requests.data(), count, &responses),
          "SearchBatch");
  for (std::size_t i = 0; i < count; ++i) {
    (*all)[begin + i] = std::move(responses[i].neighbors);
  }
}

}  // namespace

int Run(int argc, char** argv) {
  const std::size_t n = static_cast<std::size_t>(20000 * EnvScale());
  const std::size_t dim = 96;
  const std::size_t num_queries = EnvQueryCap(256);
  const std::size_t repeat = EnvSize("RABITQ_BENCH_REPEAT", 4);
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const std::size_t max_threads = EnvSize("RABITQ_BENCH_THREADS", hw);

  Matrix data = Clustered(n, dim, 64, 11);
  Matrix queries = Clustered(num_queries, dim, 64, 12);

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 32;

  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 256;
  CheckOk(index.Build(data, ivf, RabitqConfig{}), "Build");
  GroundTruth gt;
  CheckOk(ComputeGroundTruth(data, queries, params.k, &gt), "GroundTruth");

  std::printf("{\"bench\":\"engine_throughput\",\"n\":%zu,\"dim\":%zu,"
              "\"queries\":%zu,\"repeat\":%zu,\"k\":%zu,\"nprobe\":%zu,"
              "\"hardware_threads\":%zu,\"series\":[\n",
              n, dim, num_queries, repeat, params.k, params.nprobe, hw);

  // Baseline: the paper's protocol -- sequential, single-query, one thread.
  double sequential_qps = 0.0;
  {
    std::vector<std::vector<Neighbor>> results(num_queries);
    WallTimer timer;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (std::size_t i = 0; i < num_queries; ++i) {
        SearchRequest request{queries.Row(i), params};
        request.options.seed = SearchEngine::QuerySeed(kSeedBase, i);
        SearchResponse response = index.Search(request);
        CheckOk(response.status, "Search");
        results[i] = std::move(response.neighbors);
      }
    }
    const double seconds = timer.ElapsedSeconds();
    sequential_qps =
        static_cast<double>(num_queries * repeat) / std::max(seconds, 1e-9);
    std::printf("  {\"mode\":\"sequential\",\"threads\":1,\"batch\":1,"
                "\"qps\":%.1f,\"recall\":%.4f}",
                sequential_qps, RecallOf(gt, results, params.k));
  }

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) thread_counts.push_back(max_threads);
  const std::size_t batch_sizes[] = {8, 32, 128};

  // Each engine owns its index; clone the built one through Save/Load
  // instead of re-running kmeans per series.
  const char* tmp_path = "bench_engine_throughput.tmp.idx";
  CheckOk(index.Save(tmp_path), "Save");

  for (const std::size_t threads : thread_counts) {
    EngineConfig config;
    config.num_threads = threads;
    IvfRabitqIndex engine_index;
    CheckOk(engine_index.Load(tmp_path), "Load");
    SearchEngine engine(std::move(engine_index), config);
    for (const std::size_t batch : batch_sizes) {
      engine.ResetStats();
      std::vector<std::vector<Neighbor>> all(num_queries);
      WallTimer timer;
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t begin = 0; begin < num_queries; begin += batch) {
          const std::size_t count = std::min(batch, num_queries - begin);
          RunRequestBatch(&engine, queries, begin, count, params, IdFilter{},
                          &all);
        }
      }
      const double seconds = timer.ElapsedSeconds();
      const double qps =
          static_cast<double>(num_queries * repeat) / std::max(seconds, 1e-9);
      const EngineStatsSnapshot stats = engine.Stats();
      std::printf(",\n  {\"mode\":\"engine\",\"threads\":%zu,\"batch\":%zu,"
                  "\"qps\":%.1f,\"recall\":%.4f,\"speedup\":%.2f,"
                  "\"p50_us\":%.1f,\"p99_us\":%.1f,\"codes_filtered\":%llu}",
                  threads, batch, qps, RecallOf(gt, all, params.k),
                  qps / std::max(sequential_qps, 1e-9),
                  stats.latency_p50_us, stats.latency_p99_us,
                  static_cast<unsigned long long>(stats.codes_filtered));
    }
  }

  // ---- Filtered serving: the same query stream with a per-query IdFilter
  // at several selectivities (fraction of ids allowed). The filter is pushed
  // into the fused kernel's survivors mask, so QPS tracks the allowed
  // fraction instead of paying full-scan cost plus a post-filter.
  {
    EngineConfig config;
    config.num_threads = max_threads;
    IvfRabitqIndex engine_index;
    CheckOk(engine_index.Load(tmp_path), "Load");
    SearchEngine engine(std::move(engine_index), config);
    Rng filter_rng(77);
    for (const double selectivity : {1.0, 0.5, 0.1}) {
      std::vector<std::uint64_t> bitmap((n + 63) / 64, 0);
      std::size_t allowed = 0;
      for (std::size_t id = 0; id < n; ++id) {
        if (filter_rng.UniformInt(1000) <
            static_cast<std::size_t>(selectivity * 1000)) {
          bitmap[id >> 6] |= std::uint64_t{1} << (id & 63);
          ++allowed;
        }
      }
      const IdFilter filter = IdFilter::AllowBitmap(bitmap.data(), n);
      engine.ResetStats();
      std::vector<std::vector<Neighbor>> all(num_queries);
      WallTimer timer;
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t begin = 0; begin < num_queries; begin += 32) {
          const std::size_t count =
              std::min<std::size_t>(32, num_queries - begin);
          RunRequestBatch(&engine, queries, begin, count, params, filter,
                          &all);
        }
      }
      const double seconds = timer.ElapsedSeconds();
      const EngineStatsSnapshot stats = engine.Stats();
      std::printf(",\n  {\"mode\":\"filtered\",\"threads\":%zu,"
                  "\"selectivity\":%.2f,\"allowed\":%zu,\"qps\":%.1f,"
                  "\"codes_filtered\":%llu}",
                  max_threads, selectivity, allowed,
                  static_cast<double>(num_queries * repeat) /
                      std::max(seconds, 1e-9),
                  static_cast<unsigned long long>(stats.codes_filtered));
    }
  }

  // ---- Per-stage breakdown: a dedicated engine traces EVERY query
  // (trace_sample_period = 1) and is driven through SubmitAsync so the
  // queue-wait span is real queueing, not zero. Stage histograms and the
  // estimator-health gauges come straight out of the metrics registry --
  // the same series a production scrape would see via obs::Export.
  {
    EngineConfig config;
    config.num_threads = max_threads;
    config.trace_sample_period = 1;
    IvfRabitqIndex engine_index;
    CheckOk(engine_index.Load(tmp_path), "Load");
    SearchEngine engine(std::move(engine_index), config);
    engine.ResetStats();
    for (std::size_t r = 0; r < repeat; ++r) {
      std::vector<std::future<SearchResponse>> futures;
      futures.reserve(num_queries);
      for (std::size_t i = 0; i < num_queries; ++i) {
        SearchRequest request{queries.Row(i), params};
        request.options.seed = SearchEngine::QuerySeed(kSeedBase, i);
        futures.push_back(engine.SubmitAsync(request));
      }
      for (auto& f : futures) CheckOk(f.get().status, "SubmitAsync");
    }
    const obs::MetricsSnapshot metrics = engine.SnapshotMetrics();
    std::printf(",\n  {\"mode\":\"stages\",\"threads\":%zu,"
                "\"trace_sample_period\":1,\"stages\":{",
                max_threads);
    for (int s = 0; s < obs::kNumStages; ++s) {
      const char* stage = obs::StageName(static_cast<obs::Stage>(s));
      const obs::MetricValue* mv =
          metrics.Find(std::string("rabitq_stage_") + stage + "_us");
      const obs::HistogramSnapshot hist =
          mv != nullptr ? mv->hist : obs::HistogramSnapshot{};
      std::printf("%s\"%s\":{\"count\":%llu,\"mean_us\":%.2f,"
                  "\"p50_us\":%.2f,\"p99_us\":%.2f}",
                  s == 0 ? "" : ",", stage,
                  static_cast<unsigned long long>(hist.count), hist.Mean(),
                  hist.Quantile(0.50), hist.Quantile(0.99));
    }
    const EngineStatsSnapshot stats = engine.Stats();
    std::printf("},\"estimator_health\":{\"eps0_violation_rate\":%.5f,"
                "\"signed_rel_err_mean\":%.5f,\"bound_tightness_mean\":%.4f,"
                "\"samples\":%llu}}",
                stats.eps0_violation_rate, stats.rerank_signed_err_mean,
                stats.rerank_bound_tightness_mean,
                static_cast<unsigned long long>(stats.rerank_health_samples));
  }
  // ---- Open-loop overload: offered load is PACED (1ms ticks), not closed
  // loop, so pushing past saturation actually overloads the engine instead
  // of self-throttling. Every request carries a 20ms budget and the queue
  // is bounded, so past saturation the engine degrades by design: excess
  // work is rejected at admission or shed when its deadline lapses in the
  // queue, while goodput stays near saturation and the served-query p99
  // stays bounded by the deadline instead of growing with the backlog.
  {
    EngineConfig config;
    config.num_threads = max_threads;
    config.max_batch = 32;
    config.max_queue_depth = 256;
    IvfRabitqIndex engine_index;
    CheckOk(engine_index.Load(tmp_path), "Load");
    SearchEngine engine(std::move(engine_index), config);

    // Saturation estimate: closed-loop batched throughput on this engine.
    double saturation_qps = 0.0;
    {
      std::vector<std::vector<Neighbor>> all(num_queries);
      WallTimer timer;
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t begin = 0; begin < num_queries; begin += 32) {
          const std::size_t count =
              std::min<std::size_t>(32, num_queries - begin);
          RunRequestBatch(&engine, queries, begin, count, params, IdFilter{},
                          &all);
        }
      }
      saturation_qps = static_cast<double>(num_queries * repeat) /
                       std::max(timer.ElapsedSeconds(), 1e-9);
    }

    constexpr std::uint64_t kBudgetUs = 20000;
    for (const double load_factor : {0.5, 1.0, 2.0}) {
      const double rate = saturation_qps * load_factor;
      std::size_t total = static_cast<std::size_t>(rate * 0.75);
      total = std::max<std::size_t>(256, std::min<std::size_t>(total, 50000));

      engine.ResetStats();
      std::vector<std::future<SearchResponse>> futures;
      futures.reserve(total);
      std::size_t submitted = 0;
      auto next_tick = std::chrono::steady_clock::now();
      WallTimer timer;
      while (submitted < total) {
        next_tick += std::chrono::milliseconds(1);
        const double target_cumulative =
            rate * std::max(timer.ElapsedSeconds(), 1e-9);
        const std::size_t target = std::min(
            total, static_cast<std::size_t>(target_cumulative) + 1);
        while (submitted < target) {
          SearchRequest request{queries.Row(submitted % num_queries), params};
          request.options.seed =
              SearchEngine::QuerySeed(kSeedBase, submitted % num_queries);
          request.options.timeout_us = kBudgetUs;
          futures.push_back(engine.SubmitAsync(request));
          ++submitted;
        }
        std::this_thread::sleep_until(next_tick);
      }
      std::size_t good = 0, rejected = 0, deadline = 0, other = 0;
      for (auto& f : futures) {
        const SearchResponse response = f.get();
        if (response.ok()) {
          ++good;
        } else if (response.status.code() == StatusCode::kResourceExhausted) {
          ++rejected;
        } else if (response.status.code() == StatusCode::kDeadlineExceeded) {
          ++deadline;
        } else {
          ++other;
        }
      }
      const double seconds = std::max(timer.ElapsedSeconds(), 1e-9);
      const EngineStatsSnapshot stats = engine.Stats();
      std::printf(",\n  {\"mode\":\"overload\",\"threads\":%zu,"
                  "\"load_factor\":%.1f,\"queue_depth\":%zu,"
                  "\"timeout_us\":%llu,\"offered_qps\":%.0f,"
                  "\"submitted\":%zu,\"goodput_qps\":%.0f,\"served\":%zu,"
                  "\"rejected\":%zu,\"deadline_exceeded\":%zu,"
                  "\"errors\":%zu,\"shed\":%llu,\"p99_us\":%.1f}",
                  max_threads, load_factor, config.max_queue_depth,
                  static_cast<unsigned long long>(kBudgetUs),
                  static_cast<double>(submitted) / seconds, submitted,
                  static_cast<double>(good) / seconds, good, rejected,
                  deadline, other,
                  static_cast<unsigned long long>(stats.queries_shed),
                  stats.latency_p99_us);
    }
  }
  std::remove(tmp_path);

  // ---- Bits-per-dim ablation: the multi-bit code path (B in {1,2,4,8})
  // across an nprobe sweep, batched engine at max threads, under three
  // settings per width:
  //   * kErrorBound at the paper's eps0 = 1.9 -- the two-stage scan
  //     (sign-plane prune, survivors refined with the B-bit estimate)
  //     feeding exact re-rank; the refined bound prunes more, so
  //     candidates_reranked drops with B at a small recall cost (two
  //     pruning stages, two chances for a bound violation);
  //   * kErrorBound at eps0 = 2.5 -- the setting the tighter multi-bit
  //     half-width buys: a more conservative confidence level recovers the
  //     violation-pruned recall while still re-ranking far fewer
  //     candidates than B = 1, which is where B > 1 takes the
  //     recall-vs-QPS frontier at equal recall >= 0.95;
  //   * kNone -- rank by the B-bit estimate alone, no exact re-rank
  //     (recall tracks estimate quality: the 1-bit estimate saturates
  //     under 0.5 here, the 8-bit estimate near the query-quantization
  //     ceiling).
  struct AblationSetting {
    RerankPolicy policy;
    float eps0;  // epsilon0_override; -1 keeps the config default (1.9)
    const char* tag;
  };
  constexpr AblationSetting kAblationSettings[] = {
      {RerankPolicy::kErrorBound, -1.0f, "error_bound"},
      {RerankPolicy::kErrorBound, 2.5f, "error_bound_eps2.5"},
      {RerankPolicy::kNone, -1.0f, "none"},
  };
  for (const std::size_t bits : {std::size_t{1}, std::size_t{2},
                                 std::size_t{4}, std::size_t{8}}) {
    IvfConfig bits_ivf;
    bits_ivf.num_lists = 256;
    RabitqConfig bits_rabitq;
    bits_rabitq.bits_per_dim = bits;
    IvfRabitqIndex bits_index;
    CheckOk(bits_index.Build(data, bits_ivf, bits_rabitq), "bits Build");
    EngineConfig config;
    config.num_threads = max_threads;
    SearchEngine engine(std::move(bits_index), config);
    for (const AblationSetting& setting : kAblationSettings) {
      for (const std::size_t nprobe : {std::size_t{4}, std::size_t{8},
                                       std::size_t{16}, std::size_t{32}}) {
        IvfSearchParams bparams = params;
        bparams.policy = setting.policy;
        bparams.epsilon0_override = setting.eps0;
        bparams.nprobe = nprobe;
        engine.ResetStats();
        std::vector<std::vector<Neighbor>> all(num_queries);
        WallTimer timer;
        for (std::size_t r = 0; r < repeat; ++r) {
          for (std::size_t begin = 0; begin < num_queries; begin += 32) {
            const std::size_t count =
                std::min<std::size_t>(32, num_queries - begin);
            RunRequestBatch(&engine, queries, begin, count, bparams,
                            IdFilter{}, &all);
          }
        }
        const double seconds = timer.ElapsedSeconds();
        const EngineStatsSnapshot stats = engine.Stats();
        std::printf(",\n  {\"mode\":\"bits_ablation\",\"bits\":%zu,"
                    "\"policy\":\"%s\",\"threads\":%zu,\"nprobe\":%zu,"
                    "\"qps\":%.1f,\"recall\":%.4f,\"codes_refined\":%llu,"
                    "\"candidates_reranked\":%llu}",
                    bits, setting.tag, max_threads, nprobe,
                    static_cast<double>(num_queries * repeat) /
                        std::max(seconds, 1e-9),
                    RecallOf(gt, all, params.k),
                    static_cast<unsigned long long>(stats.codes_refined),
                    static_cast<unsigned long long>(
                        stats.candidates_reranked));
      }
    }
  }

  // ---- Inner-product serving: the same vectors and queries scored under
  // Metric::kInnerProduct (halved cross factor, IP error half-width, exact
  // -<a,q> re-rank). Sequential vs batched engine at max threads, recall
  // against an IP oracle -- so the dashboard tracks the non-L2 estimate
  // path's throughput next to the L2 series above.
  {
    IvfRabitqIndex ip_index;
    IvfConfig ip_ivf;
    ip_ivf.num_lists = 256;
    ip_ivf.metric = Metric::kInnerProduct;
    CheckOk(ip_index.Build(data, ip_ivf, RabitqConfig{}), "ip Build");
    GroundTruth ip_gt;
    CheckOk(ComputeGroundTruth(data, queries, params.k,
                               Metric::kInnerProduct, &ip_gt),
            "ip GroundTruth");

    double ip_sequential_qps = 0.0;
    {
      std::vector<std::vector<Neighbor>> results(num_queries);
      WallTimer timer;
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t i = 0; i < num_queries; ++i) {
          SearchRequest request{queries.Row(i), params};
          request.options.seed = SearchEngine::QuerySeed(kSeedBase, i);
          SearchResponse response = ip_index.Search(request);
          CheckOk(response.status, "ip Search");
          results[i] = std::move(response.neighbors);
        }
      }
      ip_sequential_qps = static_cast<double>(num_queries * repeat) /
                          std::max(timer.ElapsedSeconds(), 1e-9);
      std::printf(",\n  {\"mode\":\"sequential\",\"metric\":\"ip\","
                  "\"threads\":1,\"batch\":1,\"qps\":%.1f,\"recall\":%.4f}",
                  ip_sequential_qps, RecallOf(ip_gt, results, params.k));
    }

    EngineConfig config;
    config.num_threads = max_threads;
    SearchEngine engine(std::move(ip_index), config);
    std::vector<std::vector<Neighbor>> all(num_queries);
    WallTimer timer;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (std::size_t begin = 0; begin < num_queries; begin += 32) {
        const std::size_t count = std::min<std::size_t>(32, num_queries - begin);
        RunRequestBatch(&engine, queries, begin, count, params, IdFilter{},
                        &all);
      }
    }
    const double seconds = timer.ElapsedSeconds();
    const double qps =
        static_cast<double>(num_queries * repeat) / std::max(seconds, 1e-9);
    std::printf(",\n  {\"mode\":\"engine\",\"metric\":\"ip\",\"threads\":%zu,"
                "\"batch\":32,\"qps\":%.1f,\"recall\":%.4f,\"speedup\":%.2f}",
                max_threads, qps, RecallOf(ip_gt, all, params.k),
                qps / std::max(ip_sequential_qps, 1e-9));
  }

  // ---- Sharded scatter-gather sweep: per shard count, the parallel build
  // time (independent per-shard clustering, lists split across shards so
  // the clustering work scales down with S), batched query QPS, and the
  // mutation throughput of concurrent writers -- the per-shard writer
  // mutexes are what turns S writers from serialized into parallel.
  const std::size_t max_shards = ParseShards(argc, argv, 4);
  std::vector<std::size_t> shard_counts = {1};
  if (max_shards > 1) shard_counts.push_back(max_shards);
  for (const std::size_t shards : shard_counts) {
    ShardedConfig scfg;
    scfg.num_shards = shards;
    scfg.clustering = ShardClustering::kPerShard;
    scfg.ivf.num_lists = std::max<std::size_t>(1, 256 / shards);
    ShardedIndex sharded;
    WallTimer build_timer;
    CheckOk(sharded.Build(data, scfg), "sharded Build");
    const double build_s = build_timer.ElapsedSeconds();

    EngineConfig config;
    config.num_threads = max_threads;
    SearchEngine engine(std::move(sharded), config);
    IvfSearchParams sparams = params;
    sparams.nprobe = std::max<std::size_t>(1, params.nprobe / shards);

    std::vector<std::vector<Neighbor>> all(num_queries);
    WallTimer query_timer;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (std::size_t begin = 0; begin < num_queries; begin += 32) {
        const std::size_t count = std::min<std::size_t>(32, num_queries - begin);
        RunRequestBatch(&engine, queries, begin, count, sparams, IdFilter{},
                        &all);
      }
    }
    const double query_s = query_timer.ElapsedSeconds();

    // Concurrent writers: each thread owns a disjoint id slice (updates)
    // and also appends fresh vectors; ops hash across every shard. Writer
    // count is independent of the engine pool -- these are caller threads,
    // and per-shard writer mutexes are what they contend on.
    const std::size_t writers = 4;
    const std::size_t ops_per_writer =
        std::max<std::size_t>(200, n / 8 / std::max<std::size_t>(writers, 1));
    std::atomic<std::size_t> mutations{0};
    std::vector<std::thread> writer_threads;
    WallTimer mutation_timer;
    for (std::size_t w = 0; w < writers; ++w) {
      writer_threads.emplace_back([&, w] {
        Rng rng(900 + w);
        std::vector<float> vec(dim);
        std::uint32_t owned = static_cast<std::uint32_t>(w);
        for (std::size_t op = 0; op < ops_per_writer; ++op) {
          for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 8.0f;
          if (op % 2 == 0) {
            CheckOk(engine.Insert(vec.data(), nullptr), "sharded Insert");
          } else {
            CheckOk(engine.Update(owned, vec.data()), "sharded Update");
            owned = static_cast<std::uint32_t>((owned + writers) % n);
          }
          mutations.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : writer_threads) t.join();
    const double mutation_s = mutation_timer.ElapsedSeconds();

    std::printf(",\n  {\"mode\":\"sharded\",\"shards\":%zu,\"threads\":%zu,"
                "\"build_s\":%.3f,\"qps\":%.1f,\"recall\":%.4f,"
                "\"mutation_writers\":%zu,\"mutation_ops_per_s\":%.0f}",
                shards, max_threads, build_s,
                static_cast<double>(num_queries * repeat) /
                    std::max(query_s, 1e-9),
                RecallOf(gt, all, params.k), writers,
                static_cast<double>(mutations.load()) /
                    std::max(mutation_s, 1e-9));
  }

  // ---- Wire serving: the same engine behind the TCP server, driven by N
  // closed-loop blocking clients over localhost (one Client per thread --
  // the shape the client library is built for). The sweep doubles the
  // client count to find saturation QPS with client-observed round-trip
  // p50/p99. The closing point is the overload drill: a second server with
  // an overload-tuned engine template (shallow admission queue, tiny
  // batches) takes 2x the saturating client count, each query carrying a
  // 20 ms budget -- so the answer to overload is fast kResourceExhausted /
  // kDeadlineExceeded responses and a bounded served p99, not unbounded
  // queueing.
  {
    using server::Client;
    using server::Server;
    using server::ServerConfig;
    using server::WireCollectionSpec;

    WireCollectionSpec spec;
    spec.dim = static_cast<std::uint32_t>(dim);
    spec.metric = Metric::kL2;
    spec.bits_per_dim = 1;
    spec.num_shards = 1;
    spec.num_lists = 256;

    struct WirePoint {
      double wall_s = 0.0;
      std::size_t served = 0;
      std::size_t rejected = 0;
      std::size_t deadline = 0;
      std::size_t errors = 0;
      double p50_us = 0.0;
      double p99_us = 0.0;
      double qps() const {
        return static_cast<double>(served) / std::max(wall_s, 1e-9);
      }
    };

    auto percentile = [](std::vector<double>* sorted, double p) {
      if (sorted->empty()) return 0.0;
      const std::size_t idx =
          static_cast<std::size_t>(p * static_cast<double>(sorted->size() - 1));
      return (*sorted)[idx];
    };

    // Runs `clients` closed-loop threads against the collection "bench" on
    // `port` for ~`seconds`, each request carrying `timeout_us` (0 = no
    // deadline). Outcomes are tallied per status code; latency quantiles
    // cover the SERVED responses only.
    auto drive = [&](std::uint16_t port, std::size_t clients, double seconds,
                     std::uint64_t timeout_us) {
      std::atomic<bool> stop{false};
      std::vector<WirePoint> tallies(clients);
      std::vector<std::vector<double>> latencies(clients);
      std::vector<std::thread> threads;
      threads.reserve(clients);
      WallTimer wall;
      for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          Client client;
          if (!client.Connect("127.0.0.1", port).ok()) return;
          std::size_t i = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            const std::size_t qi = (c * 7919 + i) % num_queries;
            SearchOptions options = params;
            options.seed = SearchEngine::QuerySeed(kSeedBase, qi);
            options.timeout_us = timeout_us;
            WallTimer rt;
            const SearchResponse response =
                client.Search("bench", queries.Row(qi), dim, options);
            const double us = rt.ElapsedSeconds() * 1e6;
            if (response.status.ok()) {
              ++tallies[c].served;
              latencies[c].push_back(us);
            } else if (response.status.code() ==
                       StatusCode::kResourceExhausted) {
              ++tallies[c].rejected;
              // Well-behaved clients back off after an admission rejection;
              // without this the rejection fast path turns the closed loop
              // into a retry storm that starves the queue it is probing.
              std::this_thread::sleep_for(std::chrono::microseconds(500));
            } else if (response.status.code() ==
                       StatusCode::kDeadlineExceeded) {
              ++tallies[c].deadline;
            } else {
              ++tallies[c].errors;
              if (!client.connected() &&
                  !client.Connect("127.0.0.1", port).ok()) {
                break;
              }
            }
            ++i;
          }
        });
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
      stop.store(true, std::memory_order_relaxed);
      for (auto& t : threads) t.join();

      WirePoint point;
      point.wall_s = wall.ElapsedSeconds();
      std::vector<double> merged;
      for (std::size_t c = 0; c < clients; ++c) {
        point.served += tallies[c].served;
        point.rejected += tallies[c].rejected;
        point.deadline += tallies[c].deadline;
        point.errors += tallies[c].errors;
        merged.insert(merged.end(), latencies[c].begin(), latencies[c].end());
      }
      std::sort(merged.begin(), merged.end());
      point.p50_us = percentile(&merged, 0.50);
      point.p99_us = percentile(&merged, 0.99);
      return point;
    };

    // Saturation sweep: production-shaped engine template.
    double saturation_qps = 0.0;
    std::size_t saturation_clients = 1;
    {
      ServerConfig serve_config;
      serve_config.port = 0;
      serve_config.collections.engine.num_threads = max_threads;
      Server wire_server(serve_config);
      CheckOk(wire_server.Start(), "wire Start");
      {
        Client admin;
        CheckOk(admin.Connect("127.0.0.1", wire_server.port()),
                "wire Connect");
        CheckOk(admin.CreateCollection("bench", spec, data), "wire Create");
      }
      const std::size_t client_cap = std::max<std::size_t>(8, 2 * max_threads);
      for (std::size_t clients = 1; clients <= client_cap; clients *= 2) {
        const WirePoint point = drive(wire_server.port(), clients, 0.6, 0);
        std::printf(",\n  {\"mode\":\"server\",\"clients\":%zu,"
                    "\"threads\":%zu,\"qps\":%.1f,\"p50_us\":%.0f,"
                    "\"p99_us\":%.0f,\"served\":%zu,\"errors\":%zu}",
                    clients, max_threads, point.qps(), point.p50_us,
                    point.p99_us, point.served, point.errors);
        if (point.qps() > saturation_qps) {
          saturation_qps = point.qps();
          saturation_clients = clients;
        }
      }
      wire_server.Stop();
      wire_server.Wait();
    }

    // Overload drill: 2x the saturating client count against the
    // overload-tuned template. The shallow queue turns excess concurrency
    // into immediate kResourceExhausted; the 20 ms budget sheds whatever
    // still queues too long -- both counted below, with the engine-side
    // shed/partial tallies read straight off the collection.
    {
      ServerConfig overload_config;
      overload_config.port = 0;
      overload_config.collections.engine.num_threads = max_threads;
      overload_config.collections.engine.max_batch = 4;
      overload_config.collections.engine.batch_linger_us = 0;
      // Sized so 2x the saturating concurrency cannot all fit: the excess
      // is the measured rejection rate rather than invisible queueing.
      overload_config.collections.engine.max_queue_depth =
          std::max<std::size_t>(2, saturation_clients / 2);
      Server overload_server(overload_config);
      CheckOk(overload_server.Start(), "wire overload Start");
      {
        Client admin;
        CheckOk(admin.Connect("127.0.0.1", overload_server.port()),
                "wire overload Connect");
        CheckOk(admin.CreateCollection("bench", spec, data),
                "wire overload Create");
      }
      const std::size_t overload_clients =
          std::min<std::size_t>(2 * saturation_clients, 128);
      const std::uint64_t kBudgetUs = 20000;
      const WirePoint point =
          drive(overload_server.port(), overload_clients, 0.8, kBudgetUs);
      EngineStatsSnapshot engine_stats;
      if (const auto collection =
              overload_server.collections()->Get("bench")) {
        engine_stats = collection->engine->Stats();
      }
      std::printf(
          ",\n  {\"mode\":\"server_overload\",\"clients\":%zu,"
          "\"load\":\"2x\",\"saturation_qps\":%.1f,\"timeout_us\":%llu,"
          "\"goodput_qps\":%.1f,\"p50_us\":%.0f,\"p99_us\":%.0f,"
          "\"served\":%zu,\"rejected\":%zu,\"deadline_exceeded\":%zu,"
          "\"shed\":%llu,\"partial\":%llu,\"errors\":%zu}",
          overload_clients, saturation_qps,
          static_cast<unsigned long long>(kBudgetUs), point.qps(),
          point.p50_us, point.p99_us, point.served, point.rejected,
          point.deadline,
          static_cast<unsigned long long>(engine_stats.queries_shed),
          static_cast<unsigned long long>(engine_stats.partial_responses),
          point.errors);
      overload_server.Stop();
      overload_server.Wait();
    }
  }

  std::printf("\n]}\n");
  return 0;
}

}  // namespace bench
}  // namespace rabitq

int main(int argc, char** argv) { return rabitq::bench::Run(argc, argv); }
