// Serving-engine throughput: QPS of batched multi-threaded SearchBatch vs
// the paper's sequential single-query Search, swept over thread count and
// batch size at equal recall (same index and estimator; the per-query seed
// streams differ only in the randomized query rounding, which the recall
// column shows is noise). Emits one JSON object for dashboard scraping.
//
// Environment knobs:
//   RABITQ_BENCH_SCALE    dataset size multiplier (default 1.0 -> N = 20000)
//   RABITQ_BENCH_QUERIES  number of distinct query vectors (default 256)
//   RABITQ_BENCH_THREADS  comma-free max thread count (default hardware)
//   RABITQ_BENCH_REPEAT   times the query set is replayed per series
//                         (default 4; raise for stabler numbers)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/search_engine.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/ivf.h"
#include "util/prng.h"
#include "util/timer.h"

namespace rabitq {
namespace bench {
namespace {

constexpr std::uint64_t kSeedBase = 2024;

Matrix Clustered(std::size_t n, std::size_t dim, std::size_t clusters,
                 std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

double RecallOf(const GroundTruth& gt,
                const std::vector<std::vector<Neighbor>>& results,
                std::size_t k) {
  double recall = 0.0;
  for (std::size_t q = 0; q < results.size(); ++q) {
    recall += RecallAtK(gt, q, results[q], k);
  }
  return results.empty() ? 0.0 : recall / static_cast<double>(results.size());
}

std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace

int Run() {
  const std::size_t n = static_cast<std::size_t>(20000 * EnvScale());
  const std::size_t dim = 96;
  const std::size_t num_queries = EnvQueryCap(256);
  const std::size_t repeat = EnvSize("RABITQ_BENCH_REPEAT", 4);
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  const std::size_t max_threads = EnvSize("RABITQ_BENCH_THREADS", hw);

  Matrix data = Clustered(n, dim, 64, 11);
  Matrix queries = Clustered(num_queries, dim, 64, 12);

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 32;

  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 256;
  CheckOk(index.Build(data, ivf, RabitqConfig{}), "Build");
  GroundTruth gt;
  CheckOk(ComputeGroundTruth(data, queries, params.k, &gt), "GroundTruth");

  std::printf("{\"bench\":\"engine_throughput\",\"n\":%zu,\"dim\":%zu,"
              "\"queries\":%zu,\"repeat\":%zu,\"k\":%zu,\"nprobe\":%zu,"
              "\"hardware_threads\":%zu,\"series\":[\n",
              n, dim, num_queries, repeat, params.k, params.nprobe, hw);

  // Baseline: the paper's protocol -- sequential, single-query, one thread.
  double sequential_qps = 0.0;
  {
    std::vector<std::vector<Neighbor>> results(num_queries);
    WallTimer timer;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (std::size_t i = 0; i < num_queries; ++i) {
        CheckOk(index.Search(queries.Row(i), params,
                             SearchEngine::QuerySeed(kSeedBase, i),
                             &results[i]),
                "Search");
      }
    }
    const double seconds = timer.ElapsedSeconds();
    sequential_qps =
        static_cast<double>(num_queries * repeat) / std::max(seconds, 1e-9);
    std::printf("  {\"mode\":\"sequential\",\"threads\":1,\"batch\":1,"
                "\"qps\":%.1f,\"recall\":%.4f}",
                sequential_qps, RecallOf(gt, results, params.k));
  }

  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) thread_counts.push_back(max_threads);
  const std::size_t batch_sizes[] = {8, 32, 128};

  // Each engine owns its index; clone the built one through Save/Load
  // instead of re-running kmeans per series.
  const char* tmp_path = "bench_engine_throughput.tmp.idx";
  CheckOk(index.Save(tmp_path), "Save");

  for (const std::size_t threads : thread_counts) {
    EngineConfig config;
    config.num_threads = threads;
    IvfRabitqIndex engine_index;
    CheckOk(engine_index.Load(tmp_path), "Load");
    SearchEngine engine(std::move(engine_index), config);
    for (const std::size_t batch : batch_sizes) {
      engine.ResetStats();
      std::vector<std::vector<Neighbor>> all(num_queries);
      WallTimer timer;
      for (std::size_t r = 0; r < repeat; ++r) {
        for (std::size_t begin = 0; begin < num_queries; begin += batch) {
          const std::size_t count = std::min(batch, num_queries - begin);
          std::vector<std::vector<Neighbor>> results;
          CheckOk(engine.SearchBatch(queries.Row(begin), count, params,
                                     SearchEngine::QuerySeed(kSeedBase, begin),
                                     &results),
                  "SearchBatch");
          for (std::size_t i = 0; i < count; ++i) {
            all[begin + i] = std::move(results[i]);
          }
        }
      }
      const double seconds = timer.ElapsedSeconds();
      const double qps =
          static_cast<double>(num_queries * repeat) / std::max(seconds, 1e-9);
      const EngineStatsSnapshot stats = engine.Stats();
      std::printf(",\n  {\"mode\":\"engine\",\"threads\":%zu,\"batch\":%zu,"
                  "\"qps\":%.1f,\"recall\":%.4f,\"speedup\":%.2f,"
                  "\"p50_us\":%.1f,\"p99_us\":%.1f}",
                  threads, batch, qps, RecallOf(gt, all, params.k),
                  qps / std::max(sequential_qps, 1e-9),
                  stats.latency_p50_us, stats.latency_p99_us);
    }
  }
  std::remove(tmp_path);
  std::printf("\n]}\n");
  return 0;
}

}  // namespace bench
}  // namespace rabitq

int main() { return rabitq::bench::Run(); }
