// Index-lifecycle bench: insert/delete/update/compaction throughput of the
// mutable IVF+RaBitQ index, plus evidence that single-vector inserts are
// amortized O(1) -- the per-insert cost is reported per chunk of the insert
// stream and must stay flat as the index grows (the pre-chunked-storage code
// copied the full raw-vector matrix per insert, so this curve was linear).
// Emits one JSON object for dashboard scraping.
//
//   ./bench_lifecycle [--shards S]   (sharded churn series runs {1, S};
//                                     default S = 4)
//
// Environment knobs:
//   RABITQ_BENCH_SCALE    dataset size multiplier (default 1.0 -> N = 20000)
//   RABITQ_BENCH_QUERIES  queries for the serving-during-churn series
//                         (default 128)

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "engine/search_engine.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "util/prng.h"
#include "util/timer.h"

namespace rabitq {
namespace bench {
namespace {

Matrix Clustered(std::size_t n, std::size_t dim, std::size_t clusters,
                 std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

}  // namespace

int Run(int argc, char** argv) {
  const std::size_t base_n = static_cast<std::size_t>(20000 * EnvScale());
  const std::size_t insert_n = base_n;  // double the index by single inserts
  const std::size_t dim = 96;
  const std::size_t num_queries = EnvQueryCap(128);

  Matrix data = Clustered(base_n, dim, 64, 21);
  Matrix extra = Clustered(insert_n, dim, 64, 22);
  Matrix queries = Clustered(num_queries, dim, 64, 23);

  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 256;
  CheckOk(index.Build(data, ivf, RabitqConfig{}), "Build");

  std::printf("{\"bench\":\"lifecycle\",\"n\":%zu,\"dim\":%zu,"
              "\"inserts\":%zu,\"series\":[\n",
              base_n, dim, insert_n);

  // --- Insert throughput, reported per chunk: flat curve == amortized O(1).
  const std::size_t chunks = 8;
  const std::size_t per_chunk = insert_n / chunks;
  double insert_total_s = 0.0;
  std::printf("  {\"op\":\"insert\",\"per_chunk_us\":[");
  for (std::size_t c = 0; c < chunks; ++c) {
    WallTimer timer;
    for (std::size_t i = c * per_chunk; i < (c + 1) * per_chunk; ++i) {
      CheckOk(index.Add(extra.Row(i), nullptr), "Add");
    }
    const double seconds = timer.ElapsedSeconds();
    insert_total_s += seconds;
    std::printf("%s%.3f", c == 0 ? "" : ",",
                1e6 * seconds / static_cast<double>(per_chunk));
  }
  std::printf("],\"ops_per_s\":%.0f}",
              static_cast<double>(chunks * per_chunk) /
                  std::max(insert_total_s, 1e-9));

  // --- Delete throughput (tombstoning is O(1) per op).
  const std::size_t delete_n = index.size() / 2;
  {
    WallTimer timer;
    for (std::uint32_t id = 0; id < delete_n; ++id) {
      CheckOk(index.Delete(2 * id), "Delete");
    }
    std::printf(",\n  {\"op\":\"delete\",\"count\":%zu,\"ops_per_s\":%.0f}",
                delete_n,
                static_cast<double>(delete_n) /
                    std::max(timer.ElapsedSeconds(), 1e-9));
  }

  // --- Update throughput (tombstone + re-encode + O(1) repack).
  {
    Rng rng(31);
    std::vector<float> vec(dim);
    const std::size_t update_n = delete_n / 4;
    WallTimer timer;
    for (std::uint32_t i = 0; i < update_n; ++i) {
      for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 8.0f;
      CheckOk(index.Update(2 * i + 1, vec.data()), "Update");
    }
    std::printf(",\n  {\"op\":\"update\",\"count\":%zu,\"ops_per_s\":%.0f}",
                update_n,
                static_cast<double>(update_n) /
                    std::max(timer.ElapsedSeconds(), 1e-9));
  }

  // --- Compaction: drain every tombstone, report reclaimed entries/s.
  {
    const std::size_t tombstones = index.num_tombstones();
    WallTimer timer;
    CheckOk(index.Compact(), "Compact");
    const double seconds = timer.ElapsedSeconds();
    std::printf(",\n  {\"op\":\"compact\",\"tombstones\":%zu,"
                "\"seconds\":%.4f,\"reclaimed_per_s\":%.0f}",
                tombstones, seconds,
                static_cast<double>(tombstones) / std::max(seconds, 1e-9));
  }

  // --- Serving during churn: queries flow through the engine while one
  // writer thread mutates; background compaction enabled.
  {
    // Snapshot liveness BEFORE handing the index to the engine: the churn
    // below never deletes, so this stays accurate, and it avoids reading
    // index internals while the background compactor commits.
    const std::size_t pre_size = index.size();
    std::vector<bool> was_deleted(pre_size);
    for (std::uint32_t id = 0; id < pre_size; ++id) {
      was_deleted[id] = index.IsDeleted(id);
    }
    EngineConfig config;
    config.compaction_tombstone_ratio = 0.2f;
    config.compaction_min_dead = 64;
    SearchEngine engine(std::move(index), config);
    IvfSearchParams params;
    params.k = 10;
    params.nprobe = 32;

    std::atomic<bool> stop{false};
    std::thread writer([&] {
      Rng rng(47);
      std::vector<float> vec(dim);
      std::uint32_t id = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 8.0f;
        if (rng.UniformInt(2) == 0) {
          CheckOk(engine.Insert(vec.data(), nullptr), "engine Insert");
        } else if (!was_deleted[id]) {
          CheckOk(engine.Update(id, vec.data()), "engine Update");
        }
        id += 2;
        if (id >= pre_size) id = 1;
      }
    });
    std::size_t served = 0;
    WallTimer timer;
    for (std::size_t round = 0; round < 4; ++round) {
      std::vector<SearchRequest> requests(num_queries);
      for (std::size_t i = 0; i < num_queries; ++i) {
        requests[i].query = queries.data() + i * dim;
        requests[i].options = params;
        requests[i].options.seed = SearchEngine::QuerySeed(round, i);
      }
      std::vector<SearchResponse> responses;
      CheckOk(engine.SearchBatch(requests.data(), num_queries, &responses),
              "SearchBatch");
      served += num_queries;
    }
    const double seconds = timer.ElapsedSeconds();
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    const EngineStatsSnapshot stats = engine.Stats();
    std::printf(",\n  {\"op\":\"serve_during_churn\",\"qps\":%.0f,"
                "\"mutations\":%llu,\"compactions\":%llu,"
                "\"tombstones_left\":%llu}",
                static_cast<double>(served) / std::max(seconds, 1e-9),
                static_cast<unsigned long long>(stats.inserts + stats.updates +
                                                stats.deletes),
                static_cast<unsigned long long>(stats.compactions),
                static_cast<unsigned long long>(stats.tombstones));
  }

  // --- Sharded mutation throughput: the same concurrent churn (4 writer
  // threads, mixed insert/update/delete) against 1 shard vs S shards. The
  // per-shard writer mutexes are the whole story: with one shard every
  // mutation serializes, with S shards writers collide only when their ids
  // hash to the same shard.
  const std::size_t max_shards = ParseShards(argc, argv, 4);
  for (const std::size_t shards :
       std::vector<std::size_t>{1, max_shards > 1 ? max_shards : 0}) {
    if (shards == 0) continue;
    ShardedConfig scfg;
    scfg.num_shards = shards;
    scfg.clustering = ShardClustering::kPerShard;
    scfg.ivf.num_lists = std::max<std::size_t>(1, 256 / shards);
    ShardedIndex sharded;
    CheckOk(sharded.Build(data, scfg), "sharded Build");
    EngineConfig config;
    config.compaction_tombstone_ratio = 0.2f;
    config.compaction_min_dead = 64;
    SearchEngine engine(std::move(sharded), config);

    const std::size_t writers = 4;
    const std::size_t ops_per_writer = base_n / 8;
    std::atomic<std::size_t> ops{0};
    std::vector<std::thread> writer_threads;
    WallTimer timer;
    for (std::size_t w = 0; w < writers; ++w) {
      writer_threads.emplace_back([&, w] {
        Rng rng(700 + w);
        std::vector<float> vec(dim);
        // Disjoint id slices per writer; deletes walk forward so an id is
        // deleted at most once.
        std::uint32_t owned = static_cast<std::uint32_t>(w);
        for (std::size_t op = 0; op < ops_per_writer; ++op) {
          const std::uint64_t dice = rng.UniformInt(3);
          if (dice == 0 && owned < base_n) {
            CheckOk(engine.Delete(owned), "sharded engine Delete");
            owned += static_cast<std::uint32_t>(writers);
          } else if (dice == 1 && owned < base_n) {
            for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 8.0f;
            CheckOk(engine.Update(owned, vec.data()), "sharded engine Update");
          } else {
            for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 8.0f;
            CheckOk(engine.Insert(vec.data(), nullptr),
                    "sharded engine Insert");
          }
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : writer_threads) t.join();
    const double seconds = timer.ElapsedSeconds();
    const EngineStatsSnapshot stats = engine.Stats();
    std::printf(",\n  {\"op\":\"sharded_churn\",\"shards\":%zu,\"writers\":%zu,"
                "\"ops\":%zu,\"ops_per_s\":%.0f,\"compactions\":%llu}",
                shards, writers, ops.load(),
                static_cast<double>(ops.load()) / std::max(seconds, 1e-9),
                static_cast<unsigned long long>(stats.compactions));
  }

  std::printf("\n]}\n");
  return 0;
}

}  // namespace bench
}  // namespace rabitq

int main(int argc, char** argv) { return rabitq::bench::Run(argc, argv); }
