// Micro-benchmarks for the Section 3.3 efficiency claims (google-benchmark):
//   * the bitwise single-code estimator (B_q and+popcount passes) vs PQ's
//     LUT-in-RAM ADC -- the paper reports ~3x in RaBitQ's favor at equal
//     accuracy (RaBitQ D bits vs PQx8 2D bits = M=D/4 byte lookups);
//   * the shared fast-scan kernel (AVX2 vs scalar);
//   * rotation costs: dense mat-vec vs the O(B log B) FHT extension.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/rotator.h"
#include "quant/fastscan.h"
#include "util/bit_ops.h"
#include "util/prng.h"

namespace {

using namespace rabitq;

constexpr std::size_t kDim = 128;   // SIFT-like
constexpr std::size_t kBits = 128;  // RaBitQ code length
constexpr int kBq = 4;

// ---- Single-code estimators ------------------------------------------------

void BM_RabitqBitwiseSingle(benchmark::State& state) {
  const std::size_t words = WordsForBits(kBits);
  Rng rng(1);
  std::vector<std::uint64_t> code(words);
  std::vector<std::uint64_t> planes(kBq * words);
  for (auto& w : code) w = rng.NextU64();
  for (auto& w : planes) w = rng.NextU64();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BitPlaneDot(code.data(), planes.data(), kBq, words));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RabitqBitwiseSingle);

// PQx8-single at the paper's default 2D bits: M = D/4 segments of 8 bits,
// each estimate = M random float loads from a 256-entry LUT + adds.
void BM_PqLutInRamSingle(benchmark::State& state) {
  const std::size_t m = kDim / 4;
  Rng rng(2);
  std::vector<float> luts(m * 256);
  for (auto& v : luts) v = rng.UniformFloat();
  std::vector<std::uint8_t> code(m);
  for (auto& c : code) c = static_cast<std::uint8_t>(rng.UniformInt(256));
  for (auto _ : state) {
    float acc = 0.0f;
    for (std::size_t seg = 0; seg < m; ++seg) {
      acc += luts[seg * 256 + code[seg]];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PqLutInRamSingle);

// ---- Batch fast-scan kernel --------------------------------------------------

void BM_FastScanBlockAvx2(benchmark::State& state) {
  const std::size_t segments = state.range(0);
  Rng rng(3);
  std::vector<std::uint8_t> codes(32 * segments);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.UniformInt(16));
  FastScanCodes packed;
  PackFastScanCodes(codes.data(), 32, segments, &packed);
  AlignedVector<std::uint8_t> luts(segments * 16);
  for (auto& l : luts) l = static_cast<std::uint8_t>(rng.UniformInt(61));
  std::uint32_t out[kFastScanBlockSize];
  for (auto _ : state) {
    FastScanAccumulateBlock(packed.BlockPtr(0), segments, luts.data(), out);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() * kFastScanBlockSize);
}
BENCHMARK(BM_FastScanBlockAvx2)->Arg(32)->Arg(120)->Arg(240);

void BM_FastScanBlockScalar(benchmark::State& state) {
  const std::size_t segments = state.range(0);
  Rng rng(3);
  std::vector<std::uint8_t> codes(32 * segments);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.UniformInt(16));
  FastScanCodes packed;
  PackFastScanCodes(codes.data(), 32, segments, &packed);
  AlignedVector<std::uint8_t> luts(segments * 16);
  for (auto& l : luts) l = static_cast<std::uint8_t>(rng.UniformInt(61));
  std::uint32_t out[kFastScanBlockSize];
  for (auto _ : state) {
    FastScanAccumulateBlockScalar(packed.BlockPtr(0), segments, luts.data(),
                                  out);
    benchmark::DoNotOptimize(out[0]);
  }
  state.SetItemsProcessed(state.iterations() * kFastScanBlockSize);
}
BENCHMARK(BM_FastScanBlockScalar)->Arg(32)->Arg(120)->Arg(240);

// ---- Rotators ----------------------------------------------------------------

void BM_DenseRotate(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  std::unique_ptr<Rotator> rotator;
  if (!CreateRotator(dim, 0, RotatorKind::kDense, 5, &rotator).ok()) {
    state.SkipWithError("rotator init failed");
    return;
  }
  Rng rng(6);
  std::vector<float> in(dim), out(rotator->padded_dim());
  for (auto& v : in) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    rotator->InverseRotate(in.data(), out.data());
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_DenseRotate)->Arg(128)->Arg(960);

void BM_FhtRotate(benchmark::State& state) {
  const std::size_t dim = state.range(0);
  std::unique_ptr<Rotator> rotator;
  if (!CreateRotator(dim, 0, RotatorKind::kFht, 5, &rotator).ok()) {
    state.SkipWithError("rotator init failed");
    return;
  }
  Rng rng(6);
  std::vector<float> in(dim), out(rotator->padded_dim());
  for (auto& v : in) v = static_cast<float>(rng.Gaussian());
  for (auto _ : state) {
    rotator->InverseRotate(in.data(), out.data());
    benchmark::DoNotOptimize(out[0]);
  }
}
BENCHMARK(BM_FhtRotate)->Arg(128)->Arg(960);

}  // namespace
