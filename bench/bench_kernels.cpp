// Micro-benchmarks for the hot query-phase kernels (Section 3.3 efficiency
// claims plus this repo's fused estimate pipeline):
//   * estimate+bound assembly: the legacy per-code path (sqrt + divide +
//     AoS view, the pre-factor-precomputation code) vs the fused scalar
//     reference vs the fused AVX2 kernel -- the headline `speedup_assemble`
//     is fused vs the scalar reference, `speedup_assemble_vs_legacy` shows
//     the full hoisting win;
//   * end-to-end per-list scan: fast-scan accumulation + assembly +
//     candidate selection, two-pass (estimate everything, then re-scan the
//     buffers) vs the fused in-kernel-pruned single pass;
//   * the bitwise single-code estimator (B_q and+popcount passes) vs PQ's
//     LUT-in-RAM ADC (the paper reports ~3x in RaBitQ's favor);
//   * the shared fast-scan LUT kernel, AVX2 vs scalar;
//   * rotation costs: dense mat-vec vs the O(B log B) FHT extension.
//
// Usage: bench_kernels [--json [PATH]]
//   Prints a human-readable table; with --json additionally writes the
//   machine-readable results to PATH (default BENCH_kernels.json) so CI can
//   archive the perf trajectory.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "core/rotator.h"
#include "quant/fastscan.h"
#include "util/bit_ops.h"
#include "util/prng.h"
#include "util/timer.h"

namespace rabitq {
namespace bench {
namespace {

constexpr std::size_t kDim = 128;   // SIFT-like
constexpr std::size_t kBits = 128;  // RaBitQ code length
constexpr std::size_t kScanCodes = 4096;  // 128 full blocks per "list"

// Keeps results alive across optimization like benchmark::DoNotOptimize.
volatile float g_sink_f = 0.0f;
volatile std::uint32_t g_sink_u = 0;

/// ns per op for `fn` (one call = `ops` logical operations): calibrates the
/// iteration count to ~0.2 s of wall time, then measures.
template <typename Fn>
double NsPerOp(Fn&& fn, std::size_t ops) {
  fn();  // warm caches and page in
  std::size_t iters = 1;
  double seconds = 0.0;
  for (;;) {
    WallTimer timer;
    for (std::size_t i = 0; i < iters; ++i) fn();
    seconds = timer.ElapsedSeconds();
    if (seconds >= 0.2 || iters >= (1u << 30)) break;
    const double target = 0.25;
    const std::size_t next =
        seconds <= 1e-6 ? iters * 64
                        : static_cast<std::size_t>(
                              static_cast<double>(iters) * target / seconds) +
                              1;
    iters = std::max(next, iters * 2);
  }
  return seconds * 1e9 / (static_cast<double>(iters) * static_cast<double>(ops));
}

struct Row {
  std::string name;
  double ns_per_op;
  std::string unit;  // what one op is
};

// The pre-factor-precomputation assembly, verbatim from the old estimator:
// an AoS view materialization plus a divide and (inside IpErrorBound) a
// sqrt + divide per code. Kept here as the bench baseline.
inline float LegacyAssemble(const QuantizedQuery& query,
                            const RabitqCodeView& code, std::uint32_t s,
                            float epsilon0, float* lb_out) {
  if (code.dist_to_centroid == 0.0f) {
    const float d = query.q_dist * query.q_dist;
    *lb_out = d;
    return d;
  }
  if (query.q_dist == 0.0f) {
    const float d = code.dist_to_centroid * code.dist_to_centroid;
    *lb_out = d;
    return d;
  }
  const float x_qbar = query.ip_scale * static_cast<float>(s) +
                       query.pop_scale * static_cast<float>(code.bit_count) +
                       query.bias;
  const float o_o = std::max(code.o_o, 1e-9f);
  const float ip = x_qbar / o_o;
  const float cross = 2.0f * code.dist_to_centroid * query.q_dist;
  const float dist = code.dist_to_centroid * code.dist_to_centroid +
                     query.q_dist * query.q_dist - cross * ip;
  const float ip_error = IpErrorBound(o_o, epsilon0, query.total_bits);
  *lb_out = dist - cross * ip_error;
  return dist;
}

struct ScanFixture {
  RabitqEncoder encoder;
  RabitqCodeStore store;
  QuantizedQuery query;
  std::vector<std::uint32_t> sums;  // per-code fast-scan sums, precomputed
};

void BuildScanFixture(ScanFixture* fx) {
  Rng rng(42);
  RabitqConfig config;
  config.total_bits = kBits;
  if (!fx->encoder.Init(kDim, config).ok()) {
    std::fprintf(stderr, "[bench] encoder init failed\n");
    std::exit(1);
  }
  fx->store.Init(fx->encoder.total_bits());
  std::vector<float> centroid(kDim);
  for (auto& v : centroid) v = static_cast<float>(rng.Gaussian()) * 0.5f;
  std::vector<float> vec(kDim);
  for (std::size_t i = 0; i < kScanCodes; ++i) {
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
    if (!fx->encoder.EncodeAppend(vec.data(), centroid.data(), &fx->store)
             .ok()) {
      std::fprintf(stderr, "[bench] encode failed\n");
      std::exit(1);
    }
  }
  fx->store.Finalize();
  for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
  if (!PrepareQuery(fx->encoder, vec.data(), centroid.data(), &rng,
                    &fx->query)
           .ok() ||
      !fx->query.has_exact_luts) {
    std::fprintf(stderr, "[bench] query preparation failed\n");
    std::exit(1);
  }
  // Precompute the fast-scan sums once so the assembly benchmarks time the
  // float assembly alone.
  const FastScanCodes& packed = fx->store.packed();
  fx->sums.resize(packed.num_blocks * kFastScanBlockSize);
  for (std::size_t b = 0; b < packed.num_blocks; ++b) {
    FastScanAccumulateBlock(packed.BlockPtr(b), packed.num_segments,
                            fx->query.luts.data(),
                            fx->sums.data() + b * kFastScanBlockSize);
  }
}

void RunAssemblyBenches(const ScanFixture& fx, std::vector<Row>* rows,
                        double* speedup_assemble,
                        double* speedup_assemble_vs_legacy) {
  const std::size_t num_blocks = fx.store.packed().num_blocks;
  std::vector<float> est(kScanCodes), lb(kScanCodes);
  const float eps0 = 1.9f;

  const double legacy_ns = NsPerOp(
      [&] {
        for (std::size_t i = 0; i < kScanCodes; ++i) {
          est[i] = LegacyAssemble(fx.query, fx.store.View(i), fx.sums[i],
                                  eps0, &lb[i]);
        }
        g_sink_f = g_sink_f + est[0] + lb[kScanCodes - 1];
      },
      kScanCodes);
  rows->push_back({"assemble_legacy", legacy_ns, "code"});

  const double scalar_ns = NsPerOp(
      [&] {
        for (std::size_t b = 0; b < num_blocks; ++b) {
          const std::size_t begin = b * kFastScanBlockSize;
          EstimateBlockFusedScalar(fx.query, fx.store, b,
                                   fx.sums.data() + begin, eps0,
                                   est.data() + begin, lb.data() + begin);
        }
        g_sink_f = g_sink_f + est[0] + lb[kScanCodes - 1];
      },
      kScanCodes);
  rows->push_back({"assemble_scalar", scalar_ns, "code"});

  const double fused_ns = NsPerOp(
      [&] {
        for (std::size_t b = 0; b < num_blocks; ++b) {
          const std::size_t begin = b * kFastScanBlockSize;
          EstimateBlockFused(fx.query, fx.store, b, fx.sums.data() + begin,
                             eps0, est.data() + begin, lb.data() + begin);
        }
        g_sink_f = g_sink_f + est[0] + lb[kScanCodes - 1];
      },
      kScanCodes);
  rows->push_back({"assemble_fused", fused_ns, "code"});

  *speedup_assemble = scalar_ns / fused_ns;
  *speedup_assemble_vs_legacy = legacy_ns / fused_ns;
}

void RunScanBenches(const ScanFixture& fx, std::vector<Row>* rows,
                    double* speedup_scan) {
  const FastScanCodes& packed = fx.store.packed();
  const std::size_t num_blocks = packed.num_blocks;
  std::vector<float> est(kScanCodes), lb(kScanCodes);
  const float eps0 = 1.9f;

  // A realistic pruning threshold: the 5th-percentile lower bound, i.e.
  // ~5% of candidates survive to re-ranking (the regime the error-bound
  // policy operates in at steady state).
  {
    std::uint32_t sums[kFastScanBlockSize];
    for (std::size_t b = 0; b < num_blocks; ++b) {
      FastScanAccumulateBlock(packed.BlockPtr(b), packed.num_segments,
                              fx.query.luts.data(), sums);
      EstimateBlockFusedScalar(fx.query, fx.store, b, sums, eps0,
                               est.data() + b * kFastScanBlockSize,
                               lb.data() + b * kFastScanBlockSize);
    }
  }
  std::vector<float> sorted_lb = lb;
  std::sort(sorted_lb.begin(), sorted_lb.end());
  const float threshold = sorted_lb[kScanCodes / 20];

  // Two-pass baseline: estimate + bound every code into the buffers, then a
  // second full pass over lb to find survivors (the pre-PR selection shape,
  // with the legacy per-code assembly).
  const double twopass_ns = NsPerOp(
      [&] {
        std::uint32_t sums[kFastScanBlockSize];
        std::uint32_t survivors = 0;
        for (std::size_t b = 0; b < num_blocks; ++b) {
          FastScanAccumulateBlock(packed.BlockPtr(b), packed.num_segments,
                                  fx.query.luts.data(), sums);
          const std::size_t begin = b * kFastScanBlockSize;
          for (std::size_t k = 0; k < kFastScanBlockSize; ++k) {
            est[begin + k] =
                LegacyAssemble(fx.query, fx.store.View(begin + k), sums[k],
                               eps0, &lb[begin + k]);
          }
        }
        for (std::size_t i = 0; i < kScanCodes; ++i) {
          survivors += lb[i] <= threshold;
        }
        g_sink_u = g_sink_u + survivors;
      },
      kScanCodes);
  rows->push_back({"scan_per_list_twopass", twopass_ns, "code"});

  // Fused single pass: accumulate + assemble + in-kernel prune, walking
  // only surviving lanes.
  const double fused_ns = NsPerOp(
      [&] {
        std::uint32_t sums[kFastScanBlockSize];
        std::uint32_t survivors = 0;
        for (std::size_t b = 0; b < num_blocks; ++b) {
          PrefetchBlockData(fx.store, b + 1);
          FastScanAccumulateBlock(packed.BlockPtr(b), packed.num_segments,
                                  fx.query.luts.data(), sums);
          const std::size_t begin = b * kFastScanBlockSize;
          std::uint32_t mask = EstimateBlockFusedPruned(
              fx.query, fx.store, b, sums, eps0, threshold, nullptr,
              est.data() + begin, lb.data() + begin);
          while (mask != 0) {
            ++survivors;
            mask &= mask - 1;
          }
        }
        g_sink_u = g_sink_u + survivors;
      },
      kScanCodes);
  rows->push_back({"scan_per_list_fused", fused_ns, "code"});

  *speedup_scan = twopass_ns / fused_ns;
}

void RunSingleCodeBenches(std::vector<Row>* rows) {
  constexpr int kBq = 4;
  const std::size_t words = WordsForBits(kBits);
  Rng rng(1);
  std::vector<std::uint64_t> code(words);
  std::vector<std::uint64_t> planes(kBq * words);
  for (auto& w : code) w = rng.NextU64();
  for (auto& w : planes) w = rng.NextU64();
  rows->push_back({"bitwise_single",
                   NsPerOp(
                       [&] {
                         g_sink_u = g_sink_u +
                                    BitPlaneDot(code.data(), planes.data(),
                                                kBq, words);
                       },
                       1),
                   "estimate"});

  // PQx8-single at the paper's default 2D bits: M = D/4 segments of 8 bits,
  // each estimate = M random float loads from a 256-entry LUT + adds.
  const std::size_t m = kDim / 4;
  std::vector<float> luts(m * 256);
  for (auto& v : luts) v = rng.UniformFloat();
  std::vector<std::uint8_t> pq_code(m);
  for (auto& c : pq_code) c = static_cast<std::uint8_t>(rng.UniformInt(256));
  rows->push_back({"pq_lut_in_ram_single",
                   NsPerOp(
                       [&] {
                         float acc = 0.0f;
                         for (std::size_t seg = 0; seg < m; ++seg) {
                           acc += luts[seg * 256 + pq_code[seg]];
                         }
                         g_sink_f = g_sink_f + acc;
                       },
                       1),
                   "estimate"});
}

void RunFastScanBenches(std::vector<Row>* rows) {
  const std::size_t segments = kBits / 4;
  Rng rng(3);
  std::vector<std::uint8_t> codes(kFastScanBlockSize * segments);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.UniformInt(16));
  FastScanCodes packed;
  PackFastScanCodes(codes.data(), kFastScanBlockSize, segments, &packed);
  AlignedVector<std::uint8_t> luts(segments * 16);
  for (auto& l : luts) l = static_cast<std::uint8_t>(rng.UniformInt(61));
  std::uint32_t out[kFastScanBlockSize];
  rows->push_back({"fastscan_block_simd",
                   NsPerOp(
                       [&] {
                         FastScanAccumulateBlock(packed.BlockPtr(0), segments,
                                                 luts.data(), out);
                         g_sink_u = g_sink_u + out[0];
                       },
                       kFastScanBlockSize),
                   "code"});
  rows->push_back({"fastscan_block_scalar",
                   NsPerOp(
                       [&] {
                         FastScanAccumulateBlockScalar(packed.BlockPtr(0),
                                                       segments, luts.data(),
                                                       out);
                         g_sink_u = g_sink_u + out[0];
                       },
                       kFastScanBlockSize),
                   "code"});
}

void RunRotatorBenches(std::vector<Row>* rows) {
  for (const RotatorKind kind : {RotatorKind::kDense, RotatorKind::kFht}) {
    std::unique_ptr<Rotator> rotator;
    if (!CreateRotator(kDim, 0, kind, 5, &rotator).ok()) continue;
    Rng rng(6);
    std::vector<float> in(kDim), out(rotator->padded_dim());
    for (auto& v : in) v = static_cast<float>(rng.Gaussian());
    rows->push_back(
        {kind == RotatorKind::kDense ? "rotate_dense_128" : "rotate_fht_128",
         NsPerOp(
             [&] {
               rotator->InverseRotate(in.data(), out.data());
               g_sink_f = g_sink_f + out[0];
             },
             1),
         "rotation"});
  }
}

void WriteJson(std::FILE* f, const std::vector<Row>& rows,
               double speedup_assemble, double speedup_assemble_vs_legacy,
               double speedup_scan) {
  std::fprintf(f,
               "{\"bench\":\"kernels\",\"dim\":%zu,\"bits\":%zu,"
               "\"codes\":%zu,\"simd\":\"%s\",\n \"rows\":[\n",
               kDim, kBits, kScanCodes,
#if defined(__AVX2__) && defined(__FMA__)
               "avx2+fma"
#else
               "scalar"
#endif
  );
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f, "  {\"name\":\"%s\",\"ns_per_%s\":%.3f}%s\n",
                 rows[i].name.c_str(), rows[i].unit.c_str(),
                 rows[i].ns_per_op, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f,
               " ],\n \"speedup_assemble\":%.2f,"
               "\"speedup_assemble_vs_legacy\":%.2f,"
               "\"speedup_scan\":%.2f}\n",
               speedup_assemble, speedup_assemble_vs_legacy, speedup_scan);
}

int Run(int argc, char** argv) {
  bool json = false;
  std::string json_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[i + 1];
    }
  }

  ScanFixture fx;
  BuildScanFixture(&fx);

  std::vector<Row> rows;
  double speedup_assemble = 0.0, speedup_assemble_vs_legacy = 0.0,
         speedup_scan = 0.0;
  RunAssemblyBenches(fx, &rows, &speedup_assemble,
                     &speedup_assemble_vs_legacy);
  RunScanBenches(fx, &rows, &speedup_scan);
  RunSingleCodeBenches(&rows);
  RunFastScanBenches(&rows);
  RunRotatorBenches(&rows);

  std::printf("%-24s %14s  per\n", "kernel", "ns/op");
  for (const Row& row : rows) {
    std::printf("%-24s %14.3f  %s\n", row.name.c_str(), row.ns_per_op,
                row.unit.c_str());
  }
  std::printf("speedup assemble fused vs scalar: %.2fx\n", speedup_assemble);
  std::printf("speedup assemble fused vs legacy: %.2fx\n",
              speedup_assemble_vs_legacy);
  std::printf("speedup per-list scan fused vs two-pass: %.2fx\n",
              speedup_scan);

  if (json) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot open %s\n", json_path.c_str());
      return 1;
    }
    WriteJson(f, rows, speedup_assemble, speedup_assemble_vs_legacy,
              speedup_scan);
    std::fclose(f);
    WriteJson(stdout, rows, speedup_assemble, speedup_assemble_vs_legacy,
              speedup_scan);
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace rabitq

int main(int argc, char** argv) { return rabitq::bench::Run(argc, argv); }
