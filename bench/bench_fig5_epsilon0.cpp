// Reproduces Figure 5: recall of the error-bound re-ranking rule as a
// function of eps0, on SIFT-like (D=128) and GIST-like (D=960) data.
// Protocol follows Section 5.2.4: estimate distances for ALL data vectors
// (full probe), keep a vector for exact re-ranking iff its lower bound
// beats the current k-th best exact distance; a true neighbor pruned by the
// bound is lost for good.
//
// Expected shape: both curves rise with eps0 and reach ~perfect recall at
// eps0 ~ 1.9 -- the knee is dataset- and dimension-independent.

#include <cstdio>

#include "bench_common.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/ivf.h"

using namespace rabitq;

int main() {
  std::printf("=== Fig. 5: recall vs eps0 (error-bound re-ranking) ===\n\n");
  const std::size_t k = 100;
  const double scale = bench::EnvScale();

  std::vector<SyntheticSpec> specs = {
      SiftLikeSpec(static_cast<std::size_t>(15000 * scale), 30),
      GistLikeSpec(static_cast<std::size_t>(6000 * scale), 20)};

  TablePrinter table({"dataset", "eps0", "recall@100 (%)",
                      "reranked/query"});
  for (const SyntheticSpec& spec : specs) {
    Matrix base, queries;
    bench::CheckOk(GenerateDataset(spec, &base, &queries), spec.name.c_str());
    GroundTruth gt;
    bench::CheckOk(ComputeGroundTruth(base, queries, k, &gt), "ground truth");

    IvfConfig ivf;
    ivf.num_lists = 64;
    IvfRabitqIndex index;
    bench::CheckOk(index.Build(base, ivf, RabitqConfig{}), "build");

    for (const float eps0 : {0.0f, 0.5f, 1.0f, 1.5f, 1.9f, 2.5f, 3.0f, 4.0f}) {
      double recall = 0.0;
      std::size_t reranked = 0;
      for (std::size_t q = 0; q < queries.rows(); ++q) {
        Rng rng(500 + q);  // same quantization randomness across eps0 values
        IvfSearchParams params;
        params.k = k;
        params.nprobe = index.num_lists();  // full probe
        params.epsilon0_override = eps0;
        params.seed = rng.NextU64();
        const SearchResponse response =
            index.Search(SearchRequest{queries.Row(q), params});
        bench::CheckOk(response.status, "search");
        recall += RecallAtK(gt, q, response.neighbors, k);
        reranked += response.stats.candidates_reranked;
      }
      table.AddRow({spec.name + " (D=" + std::to_string(spec.dim) + ")",
                    TablePrinter::FormatDouble(eps0, 1),
                    TablePrinter::FormatDouble(100 * recall / queries.rows(), 2),
                    std::to_string(reranked / queries.rows())});
    }
  }
  table.Print();
  std::printf("\nShape check: recall ~100%% from eps0 ~ 1.9 on BOTH "
              "datasets (no tuning).\n");
  return 0;
}
