// Shared plumbing for the figure/table reproduction harness. Every bench
// binary prints the rows/series of one table or figure from the paper's
// evaluation (Section 5 / Appendix F); EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Environment knobs (all optional):
//   RABITQ_BENCH_SCALE    dataset size multiplier vs the built-in laptop
//                         defaults (default 1.0; the built-in suite is
//                         already ~15x smaller than the paper's 1M scale).
//   RABITQ_BENCH_QUERIES  cap on queries per dataset (default per-bench).

#ifndef RABITQ_BENCH_BENCH_COMMON_H_
#define RABITQ_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "linalg/matrix.h"
#include "linalg/vector_ops.h"
#include "util/status.h"

namespace rabitq {
namespace bench {

/// Aborts the binary with a message when a Status is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "[bench] %s failed: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

inline double EnvScale() {
  const char* value = std::getenv("RABITQ_BENCH_SCALE");
  if (value == nullptr) return 1.0;
  const double parsed = std::atof(value);
  return parsed > 0.0 ? parsed : 1.0;
}

inline std::size_t EnvQueryCap(std::size_t default_cap) {
  const char* value = std::getenv("RABITQ_BENCH_QUERIES");
  if (value == nullptr) return default_cap;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : default_cap;
}

/// "--shards S" from argv (the sharded-sweep benches); `fallback` when the
/// flag is absent or malformed.
inline std::size_t ParseShards(int argc, char** argv, std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--shards") {
      const long parsed = std::atol(argv[i + 1]);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
  }
  return fallback;
}

/// The suite sized for a bench run: the paper's six datasets at roughly
/// N = 9k..18k (scale them up with RABITQ_BENCH_SCALE for deeper runs).
inline std::vector<SyntheticSpec> BenchSuite(std::size_t query_cap) {
  std::vector<SyntheticSpec> suite = PaperSuite(0.15 * EnvScale());
  query_cap = EnvQueryCap(query_cap);
  for (auto& spec : suite) {
    if (spec.num_queries > query_cap) spec.num_queries = query_cap;
  }
  return suite;
}

/// Mean of the rows of `data`.
inline std::vector<float> DatasetCentroid(const Matrix& data) {
  std::vector<float> centroid(data.cols(), 0.0f);
  const float inv = 1.0f / static_cast<float>(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    Axpy(inv, data.Row(i), centroid.data(), data.cols());
  }
  return centroid;
}

/// Mean of all entries of a matrix (used to floor relative-error
/// denominators at 1% of the typical squared distance, so near-duplicate
/// synthetic pairs do not dominate the max-error column).
inline double MeanOfMatrix(const Matrix& m) {
  double sum = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) sum += m.data()[i];
  return m.size() > 0 ? sum / static_cast<double>(m.size()) : 0.0;
}

/// Largest divisor of `dim` that is <= `target` (PQ needs M | D).
inline std::size_t LargestDivisorAtMost(std::size_t dim, std::size_t target) {
  for (std::size_t m = std::min(target, dim); m >= 1; --m) {
    if (dim % m == 0) return m;
  }
  return 1;
}

}  // namespace bench
}  // namespace rabitq

#endif  // RABITQ_BENCH_BENCH_COMMON_H_
