// Reproduces Table 4: index-phase time on the GIST-like dataset (D = 960)
// for RaBitQ, PQ, OPQ and LSQ. The paper reports 117s / 105s / 291s /
// time-out(>24h) at N = 1M with 32 threads; at laptop scale the *ordering*
// and the ratios are the reproducible shape:
//   RaBitQ ~ PQ  <<  OPQ  <<  LSQ (reported as projected-full-encode time).

#include <cstdio>

#include "bench_common.h"
#include "core/rabitq.h"
#include "eval/metrics.h"
#include "quant/lsq.h"
#include "quant/opq.h"
#include "quant/pq.h"
#include "util/timer.h"

using namespace rabitq;

int main() {
  const SyntheticSpec spec = GistLikeSpec(
      static_cast<std::size_t>(8000 * bench::EnvScale()), 1);
  Matrix base, queries;
  bench::CheckOk(GenerateDataset(spec, &base, &queries), "dataset");
  const std::size_t dim = spec.dim;
  const std::size_t n = base.rows();
  std::printf("=== Table 4: indexing time, %s N=%zu D=%zu ===\n\n",
              spec.name.c_str(), n, dim);

  TablePrinter table({"method", "train (s)", "encode (s)", "total (s)",
                      "note"});

  // ---- RaBitQ: sample rotation (train) + encode all vectors. --------------
  {
    WallTimer timer;
    RabitqEncoder encoder;
    bench::CheckOk(encoder.Init(dim, RabitqConfig{}), "rabitq init");
    const double train_s = timer.ElapsedSeconds();
    const auto centroid = bench::DatasetCentroid(base);
    WallTimer encode_timer;
    RabitqCodeStore store(encoder.total_bits());
    store.Reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      bench::CheckOk(encoder.EncodeAppend(base.Row(i), centroid.data(), &store),
                     "rabitq encode");
    }
    store.Finalize();
    const double encode_s = encode_timer.ElapsedSeconds();
    table.AddRow({"RaBitQ", TablePrinter::FormatDouble(train_s, 1),
                  TablePrinter::FormatDouble(encode_s, 1),
                  TablePrinter::FormatDouble(train_s + encode_s, 1),
                  "paper: 117s @1M/32thr"});
  }

  // ---- PQ (k=4, M=D/2). -----------------------------------------------------
  PqConfig pq_config;
  pq_config.num_segments = dim / 2;
  pq_config.bits = 4;
  pq_config.kmeans_iterations = 10;
  {
    WallTimer timer;
    ProductQuantizer pq;
    bench::CheckOk(pq.Train(base, pq_config), "pq train");
    const double train_s = timer.ElapsedSeconds();
    WallTimer encode_timer;
    std::vector<std::uint8_t> codes;
    pq.EncodeBatch(base, &codes);
    const double encode_s = encode_timer.ElapsedSeconds();
    table.AddRow({"PQ", TablePrinter::FormatDouble(train_s, 1),
                  TablePrinter::FormatDouble(encode_s, 1),
                  TablePrinter::FormatDouble(train_s + encode_s, 1),
                  "paper: 105s @1M/32thr"});
  }

  // ---- OPQ (adds alternating Procrustes/SVD rounds). -----------------------
  {
    WallTimer timer;
    OpqConfig opq_config;
    opq_config.pq = pq_config;
    opq_config.opq_iterations = 3;
    opq_config.max_training_points = 6000;
    OptimizedProductQuantizer opq;
    bench::CheckOk(opq.Train(base, opq_config), "opq train");
    const double train_s = timer.ElapsedSeconds();
    WallTimer encode_timer;
    std::vector<std::uint8_t> codes;
    opq.EncodeBatch(base, &codes);
    const double encode_s = encode_timer.ElapsedSeconds();
    table.AddRow({"OPQ", TablePrinter::FormatDouble(train_s, 1),
                  TablePrinter::FormatDouble(encode_s, 1),
                  TablePrinter::FormatDouble(train_s + encode_s, 1),
                  "paper: 291s @1M/32thr"});
  }

  // ---- LSQ (ICM encoding; measured on a slice, projected to full N). -------
  {
    LsqConfig lsq_config;
    lsq_config.num_codebooks = dim / 2;
    lsq_config.train_iterations = 1;
    lsq_config.icm_iterations = 1;
    lsq_config.max_training_points = 1000;
    WallTimer timer;
    AdditiveQuantizer aq;
    bench::CheckOk(aq.Train(base, lsq_config), "lsq train");
    const double train_s = timer.ElapsedSeconds();
    const std::size_t slice = std::min<std::size_t>(300, n);
    WallTimer encode_timer;
    std::vector<std::uint8_t> code(aq.num_codebooks());
    for (std::size_t i = 0; i < slice; ++i) {
      aq.Encode(base.Row(i), code.data(), nullptr);
    }
    const double slice_s = encode_timer.ElapsedSeconds();
    const double projected = slice_s / slice * n;
    table.AddRow({"LSQ", TablePrinter::FormatDouble(train_s, 1),
                  TablePrinter::FormatDouble(projected, 1) + " (proj.)",
                  TablePrinter::FormatDouble(train_s + projected, 1),
                  "paper: >24h (timeout) @1M"});
    std::printf("LSQ encode cost: %.2f ms/vector -> ~%.1f hours for the "
                "paper's 1M vectors\n(vs seconds/vector-free scaling for "
                "RaBitQ/PQ; the paper's LSQ row times out).\n\n",
                1000.0 * slice_s / slice, slice_s / slice * 1e6 / 3600.0);
  }

  table.Print();
  std::printf("\nShape check: RaBitQ ~ PQ << OPQ << LSQ (encode-dominated "
              "at scale).\n");
  return 0;
}
