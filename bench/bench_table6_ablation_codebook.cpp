// Reproduces Table 6 (Appendix F.1): ablation of the codebook construction.
// Keeping the estimator fixed, swap the random rotation for
//   (a) no rotation at all -- the deterministic codebook C of Eq. 3, and
//   (b) the fast Hadamard rotation (our extension; sanity row).
// Also prints the Appendix E per-bit entropy of the codes (normalization
// uniformity check: the paper reports > 99.9% of the maximum).
//
// Expected: the randomized codebooks (dense, FHT) clearly beat the
// deterministic one on both error columns, and their code-bit entropy is
// ~100% while the deterministic codebook's is lower.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/estimator.h"
#include "eval/metrics.h"
#include "util/prng.h"

using namespace rabitq;

namespace {

double CodeEntropyFraction(const RabitqCodeStore& store) {
  const std::size_t b = store.total_bits();
  std::vector<std::size_t> ones(b, 0);
  for (std::size_t i = 0; i < store.size(); ++i) {
    const std::uint64_t* bits = store.BitsAt(i);
    for (std::size_t j = 0; j < b; ++j) {
      if (GetBit(bits, j)) ++ones[j];
    }
  }
  double entropy = 0.0;
  for (std::size_t j = 0; j < b; ++j) {
    const double p = static_cast<double>(ones[j]) / store.size();
    if (p > 0.0 && p < 1.0) {
      entropy += -(p * std::log2(p) + (1 - p) * std::log2(1 - p));
    }
  }
  return entropy / b;
}

}  // namespace

int main() {
  // Two datasets: the coordinate-isotropic GIST-like set (where a
  // deterministic codebook happens to be benign -- our low-rank generator
  // spreads energy evenly over coordinates) and the axis-skewed MSong-like
  // set, the adversarial case Section 3.1.2 motivates: without the random
  // rotation the codebook favors some vectors and fails others.
  std::vector<SyntheticSpec> specs = {
      GistLikeSpec(static_cast<std::size_t>(8000 * bench::EnvScale()), 10),
      MsongLikeSpec(static_cast<std::size_t>(8000 * bench::EnvScale()), 10)};
  std::printf("=== Table 6: codebook-construction ablation ===\n\n");
  TablePrinter table({"dataset", "codebook", "avg rel err", "max rel err",
                      "bit entropy (%)"});
  for (const SyntheticSpec& spec : specs) {
  Matrix base, queries;
  bench::CheckOk(GenerateDataset(spec, &base, &queries), "dataset");
  const std::size_t dim = spec.dim;
  const auto centroid = bench::DatasetCentroid(base);

  Matrix truth(queries.rows(), base.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    for (std::size_t i = 0; i < base.rows(); ++i) {
      truth.At(q, i) = L2SqrDistance(queries.Row(q), base.Row(i), dim);
    }
  }

  struct Row {
    const char* label;
    RotatorKind kind;
  };
  for (const Row& row : {Row{"randomized (paper)", RotatorKind::kDense},
                         Row{"deterministic C (no rotation)",
                             RotatorKind::kIdentity},
                         Row{"randomized FHT (extension)", RotatorKind::kFht}}) {
    RabitqConfig config;
    config.rotator = row.kind;
    RabitqEncoder encoder;
    bench::CheckOk(encoder.Init(dim, config), "init");
    RabitqCodeStore store(encoder.total_bits());
    for (std::size_t i = 0; i < base.rows(); ++i) {
      bench::CheckOk(encoder.EncodeAppend(base.Row(i), centroid.data(), &store),
                     "encode");
    }
    Rng rng(4);
    RelativeErrorAccumulator err;
    const double floor = 0.01 * bench::MeanOfMatrix(truth);
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      QuantizedQuery qq;
      bench::CheckOk(
          PrepareQuery(encoder, queries.Row(q), centroid.data(), &rng, &qq),
          "prepare");
      for (std::size_t i = 0; i < store.size(); ++i) {
        err.Add(EstimateDistance(qq, store.View(i), 0.0f).dist_sq,
                truth.At(q, i), floor);
      }
    }
    const RelativeErrorStats stats = err.Stats();
    table.AddRow({spec.name, row.label,
                  TablePrinter::FormatDouble(100 * stats.average, 3) + "%",
                  TablePrinter::FormatDouble(100 * stats.maximum, 2) + "%",
                  TablePrinter::FormatDouble(100 * CodeEntropyFraction(store),
                                             2)});
  }
  }
  table.Print();
  std::printf("\nPaper Table 6 (GIST, 1M): randomized 1.675%% / 13.04%%; "
              "learned-codebook ablation 3.049%% / 34.38%%.\n"
              "Appendix E: bit entropy > 99.9%% with proper normalization + "
              "rotation.\n");
  return 0;
}
