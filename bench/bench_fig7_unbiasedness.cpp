// Reproduces Figure 7 (and Appendix F.2's Figure 11): unbiasedness of the
// distance estimator. Collects (true, estimated) squared-distance pairs on
// GIST-like data, normalizes by the maximum true squared distance, and fits
// a linear regression, as the paper does with 10^7 pairs.
//
// Expected: RaBitQ's fit has slope ~1, intercept ~0 (unbiased); OPQ's is
// clearly off; the ablated estimator <obar,q> (not divided by <obar,o>) is
// biased as well (Fig. 11's ~0.8 slope in inner-product space).

#include <cstdio>

#include "bench_common.h"
#include "core/estimator.h"
#include "eval/metrics.h"
#include "quant/opq.h"
#include "util/prng.h"

using namespace rabitq;

int main() {
  const SyntheticSpec spec = GistLikeSpec(
      static_cast<std::size_t>(8000 * bench::EnvScale()), 10);
  Matrix base, queries;
  bench::CheckOk(GenerateDataset(spec, &base, &queries), "dataset");
  const std::size_t dim = spec.dim;
  std::printf("=== Fig. 7 / Fig. 11: unbiasedness study, %s N=%zu, %zu "
              "queries (%zu pairs) ===\n\n",
              spec.name.c_str(), base.rows(), queries.rows(),
              base.rows() * queries.rows());

  const auto centroid = bench::DatasetCentroid(base);

  // RaBitQ codes.
  RabitqEncoder encoder;
  bench::CheckOk(encoder.Init(dim, RabitqConfig{}), "init");
  RabitqCodeStore store(encoder.total_bits());
  for (std::size_t i = 0; i < base.rows(); ++i) {
    bench::CheckOk(encoder.EncodeAppend(base.Row(i), centroid.data(), &store),
                   "encode");
  }

  // OPQ codes (2D bits, the paper's default).
  OpqConfig opq_config;
  opq_config.pq.num_segments = dim / 2;
  opq_config.pq.bits = 4;
  opq_config.pq.kmeans_iterations = 8;
  opq_config.opq_iterations = 3;
  opq_config.max_training_points = 6000;
  OptimizedProductQuantizer opq;
  bench::CheckOk(opq.Train(base, opq_config), "opq train");
  std::vector<std::uint8_t> opq_codes;
  opq.EncodeBatch(base, &opq_codes);

  std::vector<double> truth_norm, rabitq_est, rabitq_biased_est, opq_est;
  Rng rng(9);
  AlignedVector<float> luts;
  // First pass: true distances and the normalizer.
  double max_truth = 0.0;
  Matrix truth(queries.rows(), base.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    for (std::size_t i = 0; i < base.rows(); ++i) {
      truth.At(q, i) = L2SqrDistance(queries.Row(q), base.Row(i), dim);
      max_truth = std::max<double>(max_truth, truth.At(q, i));
    }
  }
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    QuantizedQuery qq;
    bench::CheckOk(
        PrepareQuery(encoder, queries.Row(q), centroid.data(), &rng, &qq),
        "prepare");
    opq.ComputeLookupTables(queries.Row(q), &luts);
    for (std::size_t i = 0; i < base.rows(); ++i) {
      truth_norm.push_back(truth.At(q, i) / max_truth);
      rabitq_est.push_back(
          EstimateDistance(qq, store.View(i), 0.0f).dist_sq / max_truth);
      rabitq_biased_est.push_back(
          EstimateDistanceBiased(qq, store.View(i)).dist_sq / max_truth);
      opq_est.push_back(
          opq.EstimateWithLuts(opq_codes.data() + i * opq.num_segments(),
                               luts.data()) /
          max_truth);
    }
  }

  TablePrinter table({"estimator", "slope", "intercept", "R^2",
                      "paper expectation"});
  const LinearFit rabitq_fit = FitLinear(truth_norm, rabitq_est);
  const LinearFit biased_fit = FitLinear(truth_norm, rabitq_biased_est);
  const LinearFit opq_fit = FitLinear(truth_norm, opq_est);
  table.AddRow({"RaBitQ <obar,q>/<obar,o>",
                TablePrinter::FormatDouble(rabitq_fit.slope, 4),
                TablePrinter::FormatDouble(rabitq_fit.intercept, 4),
                TablePrinter::FormatDouble(rabitq_fit.r2, 4),
                "slope 1, intercept 0 (unbiased)"});
  table.AddRow({"RaBitQ ablated <obar,q>",
                TablePrinter::FormatDouble(biased_fit.slope, 4),
                TablePrinter::FormatDouble(biased_fit.intercept, 4),
                TablePrinter::FormatDouble(biased_fit.r2, 4),
                "biased (Fig. 11)"});
  table.AddRow({"OPQx4fs", TablePrinter::FormatDouble(opq_fit.slope, 4),
                TablePrinter::FormatDouble(opq_fit.intercept, 4),
                TablePrinter::FormatDouble(opq_fit.r2, 4),
                "visibly biased"});
  table.Print();
  return 0;
}
