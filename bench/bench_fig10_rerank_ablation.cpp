// Reproduces Figure 10 (Appendix F.3): the necessity of re-ranking. For
// each dataset, compares at full probe depth:
//   * IVF-RaBitQ with error-bound re-ranking   (the full method),
//   * IVF-RaBitQ without re-ranking            (rank by estimates),
//   * IVF-OPQx4fs without re-ranking at D bits and 2D bits.
//
// Expected: without re-ranking, recall saturates well below 100% for every
// quantizer (distances of close neighbors are within quantization error);
// RaBitQ-without-rerank still beats OPQ-without-rerank at equal bits.

#include <cstdio>

#include "bench_common.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/ivf.h"
#include "index/ivf_pq.h"
#include "util/timer.h"

using namespace rabitq;

int main() {
  std::printf("=== Fig. 10: re-ranking ablation (recall@100 at nprobe in "
              "{8, 32, all}) ===\n");
  const std::size_t k = 100;
  for (const SyntheticSpec& spec : bench::BenchSuite(10)) {
    Matrix base, queries;
    bench::CheckOk(GenerateDataset(spec, &base, &queries), spec.name.c_str());
    GroundTruth gt;
    bench::CheckOk(ComputeGroundTruth(base, queries, k, &gt), "ground truth");

    // Keep the paper's occupancy (~250 vectors/list at 1M/4096) rather than
    // its absolute list count: at laptop N a 4*sqrt(N) grid leaves ~25
    // vectors/list, where probe order alone decides recall and the
    // quantizer never matters.
    IvfConfig ivf;
    ivf.num_lists = std::max<std::size_t>(16, base.rows() / 256);
    IvfRabitqIndex rabitq_index;
    bench::CheckOk(rabitq_index.Build(base, ivf, RabitqConfig{}), "build");

    auto build_opq = [&](std::size_t segments, IvfPqIndex* index) {
      IvfPqConfig config;
      config.ivf = ivf;
      config.pq.num_segments = segments;
      config.pq.bits = 4;
      config.pq.kmeans_iterations = 8;
      config.use_opq = true;
      config.opq_iterations = 3;
      config.opq_max_training_points = 8000;
      bench::CheckOk(index->Build(base, config), "opq build");
    };
    IvfPqIndex opq_d, opq_2d;  // D bits (M=D/4) and 2D bits (M=D/2)
    build_opq(bench::LargestDivisorAtMost(spec.dim, spec.dim / 4), &opq_d);
    build_opq(bench::LargestDivisorAtMost(spec.dim, spec.dim / 2), &opq_2d);

    std::printf("\n--- %s (N=%zu, D=%zu) ---\n", spec.name.c_str(),
                base.rows(), spec.dim);
    TablePrinter table({"method", "nprobe", "recall@100 (%)", "QPS"});
    const std::size_t probes[] = {8, 32, rabitq_index.num_lists()};
    for (const std::size_t nprobe : probes) {
      // RaBitQ with and without re-ranking.
      for (const bool rerank : {true, false}) {
        Rng rng(3);
        IvfSearchParams params;
        params.k = k;
        params.nprobe = nprobe;
        params.policy =
            rerank ? RerankPolicy::kErrorBound : RerankPolicy::kNone;
        double recall = 0.0;
        WallTimer timer;
        for (std::size_t q = 0; q < queries.rows(); ++q) {
          SearchRequest request{queries.Row(q), params};
          request.options.seed = rng.NextU64();
          const SearchResponse response = rabitq_index.Search(request);
          bench::CheckOk(response.status, "search");
          recall += RecallAtK(gt, q, response.neighbors, k);
        }
        const double seconds = timer.ElapsedSeconds();
        table.AddRow({rerank ? "IVF-RaBitQ (with rerank)"
                             : "IVF-RaBitQ (w/o rerank)",
                      std::to_string(nprobe),
                      TablePrinter::FormatDouble(
                          100 * recall / queries.rows(), 2),
                      TablePrinter::FormatDouble(queries.rows() / seconds, 0)});
      }
      // OPQ without re-ranking at two code lengths.
      struct OpqRow {
        const char* label;
        IvfPqIndex* index;
      };
      for (const OpqRow& row : {OpqRow{"IVF-OPQx4fs D bits, w/o rerank",
                                       &opq_d},
                                OpqRow{"IVF-OPQx4fs 2D bits, w/o rerank",
                                       &opq_2d}}) {
        IvfPqSearchParams params;
        params.k = k;
        params.nprobe = nprobe;
        params.rerank_candidates = 0;
        double recall = 0.0;
        WallTimer timer;
        for (std::size_t q = 0; q < queries.rows(); ++q) {
          std::vector<Neighbor> result;
          bench::CheckOk(row.index->Search(queries.Row(q), params, &result),
                         "search");
          recall += RecallAtK(gt, q, result, k);
        }
        const double seconds = timer.ElapsedSeconds();
        table.AddRow({row.label, std::to_string(nprobe),
                      TablePrinter::FormatDouble(
                          100 * recall / queries.rows(), 2),
                      TablePrinter::FormatDouble(queries.rows() / seconds, 0)});
      }
    }
    table.Print();
  }
  return 0;
}
