// Reproduces Figure 1 (right panel) and Figure 8 / Lemma B.3: the
// concentration of <o-bar, o> around E[<o-bar,o>] ~ 0.8 and the centered,
// symmetric distribution of <o-bar, e1>, measured over many independently
// sampled rotations for one fixed (o, q) pair in D = 128.
//
// Paper reference points:
//   * E[<o-bar,o>] = sqrt(D/pi) * 2 Gamma(D/2) / ((D-1) Gamma((D-1)/2)),
//     numerically in [0.798, 0.800] for D in [1e2, 1e6];
//   * <o-bar,e1> has mean 0; deviations beyond Omega(1/sqrt(D)) are rare;
//   * <o-bar,e1> / sqrt(1 - <o-bar,o>^2) follows the projection density
//     p_{D-1} (Lemma B.1).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/rabitq.h"
#include "eval/metrics.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

using namespace rabitq;

namespace {

// E[<o-bar,o>] via the closed form (log-Gamma for stability).
double TheoreticalOO(std::size_t d) {
  const double log_ratio = std::lgamma(d / 2.0) - std::lgamma((d - 1) / 2.0);
  return std::sqrt(d / M_PI) * 2.0 / (d - 1.0) * std::exp(log_ratio);
}

}  // namespace

int main() {
  const std::size_t kDim = 128;
  const int kTrials = static_cast<int>(2000 * bench::EnvScale());

  std::printf("=== Fig. 1 (right) + Fig. 8: concentration study, D=%zu, "
              "%d independent rotations ===\n\n",
              kDim, kTrials);

  // Fixed pair (o, q), unit norm.
  Rng data_rng(7);
  std::vector<float> o(kDim), q(kDim);
  for (auto& v : o) v = static_cast<float>(data_rng.Gaussian());
  for (auto& v : q) v = static_cast<float>(data_rng.Gaussian());
  NormalizeInPlace(o.data(), kDim);
  NormalizeInPlace(q.data(), kDim);
  // e1 = normalized component of q orthogonal to o.
  std::vector<float> e1(q);
  Axpy(-Dot(q.data(), o.data(), kDim), o.data(), e1.data(), kDim);
  NormalizeInPlace(e1.data(), kDim);

  double sum_oo = 0.0, sum_oo_sq = 0.0;
  double sum_e1 = 0.0, sum_e1_sq = 0.0;
  double max_abs_e1 = 0.0;
  // Histogram of the normalized variable x1 = <obar,e1>/sqrt(1-<obar,o>^2),
  // which Lemma B.3 says follows p_{D-1} (std ~ 1/sqrt(D-1)).
  const int kBins = 11;
  const double kBinHalfWidth = 4.0;  // in units of 1/sqrt(D-1)
  std::vector<int> histogram(kBins, 0);

  std::vector<float> o_bar(kDim);
  for (int t = 0; t < kTrials; ++t) {
    RabitqConfig config;
    config.seed = 1000003ULL * t + 17;
    RabitqEncoder encoder;
    bench::CheckOk(encoder.Init(kDim, config), "encoder init");
    RabitqCodeStore store(encoder.total_bits());
    bench::CheckOk(encoder.EncodeAppend(o.data(), nullptr, &store), "encode");
    encoder.ReconstructQuantizedUnit(store.BitsAt(0), o_bar.data());

    const double oo = Dot(o_bar.data(), o.data(), kDim);
    const double oe1 = Dot(o_bar.data(), e1.data(), kDim);
    sum_oo += oo;
    sum_oo_sq += oo * oo;
    sum_e1 += oe1;
    sum_e1_sq += oe1 * oe1;
    max_abs_e1 = std::max(max_abs_e1, std::fabs(oe1));

    const double x1 = oe1 / std::sqrt(std::max(1e-12, 1.0 - oo * oo));
    const double z = x1 * std::sqrt(static_cast<double>(kDim - 1));
    const int bin = static_cast<int>((z + kBinHalfWidth) / (2 * kBinHalfWidth) *
                                     kBins);
    if (bin >= 0 && bin < kBins) ++histogram[bin];
  }

  const double mean_oo = sum_oo / kTrials;
  const double std_oo = std::sqrt(sum_oo_sq / kTrials - mean_oo * mean_oo);
  const double mean_e1 = sum_e1 / kTrials;
  const double std_e1 = std::sqrt(sum_e1_sq / kTrials - mean_e1 * mean_e1);

  TablePrinter table({"quantity", "measured", "paper/theory"});
  table.AddRow({"E[<obar,o>]", TablePrinter::FormatDouble(mean_oo, 4),
                TablePrinter::FormatDouble(TheoreticalOO(kDim), 4) +
                    " (\"~0.8\")"});
  table.AddRow({"std[<obar,o>]", TablePrinter::FormatDouble(std_oo, 4),
                "O(1/sqrt(D)) = " +
                    TablePrinter::FormatDouble(1.0 / std::sqrt(kDim), 4)});
  table.AddRow({"E[<obar,e1>]", TablePrinter::FormatDouble(mean_e1, 4),
                "0 (exactly)"});
  table.AddRow({"std[<obar,e1>]", TablePrinter::FormatDouble(std_e1, 4),
                "~sqrt(1-0.64)/sqrt(D) = " +
                    TablePrinter::FormatDouble(0.6 / std::sqrt(kDim), 4)});
  table.AddRow({"max|<obar,e1>|", TablePrinter::FormatDouble(max_abs_e1, 4),
                "few x 1/sqrt(D)"});
  table.Print();

  std::printf("\nFig. 8 histogram of z = <obar,e1>/sqrt(1-<obar,o>^2) * "
              "sqrt(D-1)  (expected: symmetric, std ~ 1):\n");
  const int peak = *std::max_element(histogram.begin(), histogram.end());
  for (int b = 0; b < kBins; ++b) {
    const double lo = -kBinHalfWidth + b * 2 * kBinHalfWidth / kBins;
    const double hi = lo + 2 * kBinHalfWidth / kBins;
    const int bar = peak > 0 ? histogram[b] * 40 / peak : 0;
    std::printf("  [%5.2f, %5.2f) %6d  %s\n", lo, hi, histogram[b],
                std::string(bar, '#').c_str());
  }

  // E[<obar,o>] across dimensions (paper: stays in [0.798, 0.800]).
  std::printf("\nClosed-form E[<obar,o>] across D (paper: ~0.8 for all):\n");
  for (const std::size_t d : {128u, 256u, 1024u, 4096u, 65536u}) {
    std::printf("  D = %6zu: %.4f\n", d, TheoreticalOO(d));
  }
  return 0;
}
