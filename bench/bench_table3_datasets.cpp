// Reproduces Table 3 (dataset statistics) for the synthetic stand-in suite.
// The dimensionalities and query-set proportions match the paper; sizes are
// scaled to laptop scale (multiply with RABITQ_BENCH_SCALE to grow them).
// Also prints the statistical signature of each generator so the substitution
// documented in DESIGN.md is auditable.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "eval/metrics.h"

using namespace rabitq;

namespace {

const char* KindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kGaussianMixture: return "clustered (SIFT/Image-like)";
    case DatasetKind::kCorrelatedMixture: return "low-rank corr. (GIST/DEEP)";
    case DatasetKind::kHeavyTailed: return "heavy-tailed (MSong-like)";
    case DatasetKind::kAngular: return "angular (Word2Vec-like)";
    case DatasetKind::kUniformSphere: return "uniform sphere";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("=== Table 3: dataset statistics (synthetic stand-ins; paper "
              "sizes ~1M) ===\n\n");
  TablePrinter table({"Dataset", "Size", "D", "Query Size", "Data Type",
                      "var(dim) max/med", "kurtosis"});
  for (const SyntheticSpec& spec : bench::BenchSuite(1000)) {
    Matrix base, queries;
    bench::CheckOk(GenerateDataset(spec, &base, &queries), spec.name.c_str());

    // Per-dimension variance spread and excess kurtosis (signatures of the
    // heavy-tailed generator vs the Gaussian ones).
    std::vector<double> variance(spec.dim, 0.0);
    double kurt_num = 0.0, kurt_den = 0.0;
    for (std::size_t j = 0; j < spec.dim; ++j) {
      double mean = 0.0;
      for (std::size_t i = 0; i < base.rows(); ++i) mean += base.At(i, j);
      mean /= base.rows();
      double m2 = 0.0, m4 = 0.0;
      for (std::size_t i = 0; i < base.rows(); ++i) {
        const double d = base.At(i, j) - mean;
        m2 += d * d;
        m4 += d * d * d * d;
      }
      m2 /= base.rows();
      m4 /= base.rows();
      variance[j] = m2;
      kurt_num += m4;
      kurt_den += m2 * m2;
    }
    std::sort(variance.begin(), variance.end());
    const double spread =
        variance.back() / (variance[spec.dim / 2] + 1e-30);
    const double kurtosis = kurt_num / (kurt_den / spec.dim * spec.dim);

    table.AddRow({spec.name, std::to_string(base.rows()),
                  std::to_string(spec.dim), std::to_string(queries.rows()),
                  KindName(spec.kind),
                  TablePrinter::FormatDouble(spread, 1),
                  TablePrinter::FormatDouble(kurtosis, 1)});
  }
  table.Print();
  std::printf("\nPaper's Table 3 (for reference): MSong 992k/420, SIFT "
              "1M/128, DEEP 1M/256,\nWord2Vec 1M/300, GIST 1M/960, Image "
              "2.34M/150.\n");
  return 0;
}
