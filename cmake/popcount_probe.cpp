// Configure-time probe for broken vectorized popcount, seen on virtualized
// hosts whose CPUID advertises AVX-512 extensions the hypervisor does not
// execute faithfully: GCC expands this constant-trip-count BinaryDot idiom
// into an AVX-512 sequence that returns garbage there (observed: a 3-word
// binary dot product off by ~2^30). Exit 0 iff the optimized result matches
// a vectorization-proof scalar recount; the build degrades the arch flags
// until this probe passes.
#include <bit>
#include <cstddef>
#include <cstdint>

inline std::uint32_t Dot(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += std::popcount(a[i] & b[i]);
  return static_cast<std::uint32_t>(acc);
}

int main() {
  std::uint64_t a[3], b[3], seed = 0;
  const auto next = [&seed] {
    seed += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = seed;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  for (int i = 0; i < 3; ++i) {
    a[i] = next();
    b[i] = next();
  }
  volatile std::uint32_t expect = 0;  // volatile defeats idiom recognition
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 64; ++j) {
      expect = expect + ((a[i] >> j) & (b[i] >> j) & 1u);
    }
  }
  return Dot(a, b, 3) == expect ? 0 : 1;
}
