// Tests for the IVF-RaBitQ index: construction invariants, recall with the
// error-bound re-ranking policy (Section 4), policy comparisons, stats, and
// the batch/single estimator toggle.

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/ivf.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

class IvfTestFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 4000;
  static constexpr std::size_t kDim = 48;

  void SetUp() override {
    data_ = ClusteredData(kN, kDim, 20, 7);
    IvfConfig ivf;
    ivf.num_lists = 32;
    RabitqConfig rabitq;
    ASSERT_TRUE(index_.Build(data_, ivf, rabitq).ok());
    queries_ = ClusteredData(20, kDim, 20, 8);
    ASSERT_TRUE(ComputeGroundTruth(data_, queries_, 10, &gt_).ok());
  }

  Matrix data_;
  Matrix queries_;
  GroundTruth gt_;
  IvfRabitqIndex index_;
};

TEST_F(IvfTestFixture, EveryVectorAssignedToExactlyOneList) {
  std::vector<int> seen(kN, 0);
  std::size_t total = 0;
  for (std::size_t l = 0; l < index_.num_lists(); ++l) {
    EXPECT_EQ(index_.list_ids(l).size(), index_.list_codes(l).size());
    for (const std::uint32_t id : index_.list_ids(l)) {
      ASSERT_LT(id, kN);
      ++seen[id];
      ++total;
    }
  }
  EXPECT_EQ(total, kN);
  for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST_F(IvfTestFixture, ProbeOrderSortsByCentroidDistance) {
  const auto order = index_.ProbeOrder(queries_.Row(0));
  ASSERT_EQ(order.size(), index_.num_lists());
  float prev = -1.0f;
  for (const std::uint32_t l : order) {
    const float d =
        L2SqrDistance(queries_.Row(0), index_.centroids().Row(l), kDim);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST_F(IvfTestFixture, PartialProbeOrderMatchesFullSortPrefix) {
  // The nprobe-aware selection (nth_element + prefix sort) must produce
  // exactly the full sort's first nprobe entries -- this is what keeps the
  // search path bit-identical after the partial-sort optimization.
  for (std::size_t q = 0; q < 4; ++q) {
    std::vector<std::pair<float, std::uint32_t>> full;
    index_.ProbeOrderInto(queries_.Row(q), &full);
    for (const std::size_t nprobe : {std::size_t{1}, std::size_t{5},
                                     std::size_t{16}, index_.num_lists(),
                                     index_.num_lists() + 10}) {
      std::vector<std::pair<float, std::uint32_t>> partial;
      index_.ProbeOrderInto(queries_.Row(q), nprobe, &partial);
      ASSERT_EQ(partial.size(), full.size());
      const std::size_t prefix = std::min(nprobe, full.size());
      for (std::size_t i = 0; i < prefix; ++i) {
        EXPECT_EQ(partial[i], full[i]) << "nprobe " << nprobe << " pos " << i;
      }
    }
  }
}

TEST_F(IvfTestFixture, FullProbeErrorBoundRecallIsNearPerfect) {
  // Probing every list with error-bound re-ranking must find essentially
  // all true neighbors (misses only when the bound fails, prob ~ 1e-3).
  Rng rng(1);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = index_.num_lists();
  double recall = 0.0;
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    std::vector<Neighbor> result;
    ASSERT_TRUE(index_.Search(queries_.Row(q), params, &rng, &result).ok());
    recall += RecallAtK(gt_, q, result, 10);
  }
  EXPECT_GE(recall / queries_.rows(), 0.99);
}

TEST_F(IvfTestFixture, ExactDistancesReturnedAfterRerank) {
  Rng rng(2);
  IvfSearchParams params;
  params.k = 5;
  params.nprobe = index_.num_lists();
  std::vector<Neighbor> result;
  ASSERT_TRUE(index_.Search(queries_.Row(0), params, &rng, &result).ok());
  for (const auto& [dist, id] : result) {
    EXPECT_FLOAT_EQ(dist,
                    L2SqrDistance(queries_.Row(0), data_.Row(id), kDim));
  }
  // Sorted ascending.
  for (std::size_t i = 1; i < result.size(); ++i) {
    EXPECT_LE(result[i - 1].first, result[i].first);
  }
}

TEST_F(IvfTestFixture, ErrorBoundPrunesMostCandidates) {
  Rng rng(3);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = index_.num_lists();
  IvfSearchStats stats;
  std::vector<Neighbor> result;
  ASSERT_TRUE(
      index_.Search(queries_.Row(0), params, &rng, &result, &stats).ok());
  EXPECT_EQ(stats.codes_estimated, kN);
  EXPECT_LT(stats.candidates_reranked, kN / 2)
      << "the bound should prune the bulk of the candidates";
  EXPECT_GE(stats.candidates_reranked, params.k);
}

TEST_F(IvfTestFixture, SingleAndBatchEstimatorsGiveSameResults) {
  IvfSearchParams batch_params;
  batch_params.k = 10;
  batch_params.nprobe = 8;
  IvfSearchParams single_params = batch_params;
  single_params.use_batch_estimator = false;
  for (std::size_t q = 0; q < 5; ++q) {
    // Same rng seed -> identical randomized query quantization.
    Rng rng_a(100 + q), rng_b(100 + q);
    std::vector<Neighbor> batch_result, single_result;
    ASSERT_TRUE(
        index_.Search(queries_.Row(q), batch_params, &rng_a, &batch_result)
            .ok());
    ASSERT_TRUE(
        index_.Search(queries_.Row(q), single_params, &rng_b, &single_result)
            .ok());
    ASSERT_EQ(batch_result.size(), single_result.size());
    for (std::size_t i = 0; i < batch_result.size(); ++i) {
      EXPECT_EQ(batch_result[i].second, single_result[i].second);
      EXPECT_FLOAT_EQ(batch_result[i].first, single_result[i].first);
    }
  }
}

TEST_F(IvfTestFixture, FixedCandidatePolicyWorksAndObeysBudget) {
  Rng rng(4);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = index_.num_lists();
  params.policy = RerankPolicy::kFixedCandidates;
  params.rerank_candidates = 200;
  IvfSearchStats stats;
  double recall = 0.0;
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    std::vector<Neighbor> result;
    ASSERT_TRUE(
        index_.Search(queries_.Row(q), params, &rng, &result, &stats).ok());
    EXPECT_LE(stats.candidates_reranked, 200u);
    recall += RecallAtK(gt_, q, result, 10);
  }
  EXPECT_GE(recall / queries_.rows(), 0.9);
}

TEST_F(IvfTestFixture, NoRerankPolicyReturnsEstimates) {
  Rng rng(5);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = index_.num_lists();
  params.policy = RerankPolicy::kNone;
  std::vector<Neighbor> result;
  ASSERT_TRUE(index_.Search(queries_.Row(0), params, &rng, &result).ok());
  ASSERT_EQ(result.size(), 10u);
  // Estimated distances are not exact, but ids should still be decent:
  // recall without rerank is lower yet far from random.
  const double recall = RecallAtK(gt_, 0, result, 10);
  EXPECT_GE(recall, 0.3);
}

TEST_F(IvfTestFixture, SmallerEpsilonLowersRecallFloor) {
  // eps0 = 0 prunes aggressively (bound = estimate): recall drops relative
  // to eps0 = 1.9 (Fig. 5's left edge).
  IvfSearchParams tight;
  tight.k = 10;
  tight.nprobe = index_.num_lists();
  tight.epsilon0_override = 0.0f;
  IvfSearchParams loose = tight;
  loose.epsilon0_override = 1.9f;
  double recall_tight = 0.0, recall_loose = 0.0;
  for (std::size_t q = 0; q < queries_.rows(); ++q) {
    Rng rng_a(200 + q), rng_b(200 + q);
    std::vector<Neighbor> rt, rl;
    ASSERT_TRUE(index_.Search(queries_.Row(q), tight, &rng_a, &rt).ok());
    ASSERT_TRUE(index_.Search(queries_.Row(q), loose, &rng_b, &rl).ok());
    recall_tight += RecallAtK(gt_, q, rt, 10);
    recall_loose += RecallAtK(gt_, q, rl, 10);
  }
  EXPECT_GT(recall_loose, recall_tight);
}

TEST(IvfTest, RejectsBadArguments) {
  IvfRabitqIndex index;
  EXPECT_FALSE(index.Build(Matrix(), IvfConfig{}, RabitqConfig{}).ok());

  Matrix data = ClusteredData(100, 16, 4, 1);
  IvfConfig ivf;
  ivf.num_lists = 4;
  ASSERT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  Rng rng(1);
  std::vector<Neighbor> out;
  IvfSearchParams params;
  params.k = 0;
  EXPECT_FALSE(index.Search(data.Row(0), params, &rng, &out).ok());
  params.k = 5;
  EXPECT_FALSE(index.Search(data.Row(0), params, nullptr, &out).ok());
  EXPECT_FALSE(index.Search(data.Row(0), params, &rng, nullptr).ok());
}

TEST(IvfTest, MoreListsThanPointsClamps) {
  Matrix data = ClusteredData(10, 8, 2, 3);
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 64;
  ASSERT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  EXPECT_LE(index.num_lists(), 10u);
  Rng rng(1);
  IvfSearchParams params;
  params.k = 3;
  params.nprobe = index.num_lists();
  std::vector<Neighbor> out;
  ASSERT_TRUE(index.Search(data.Row(0), params, &rng, &out).ok());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].second, 0u);  // the point itself
  EXPECT_NEAR(out[0].first, 0.0f, 1e-5f);
}

}  // namespace
}  // namespace rabitq
