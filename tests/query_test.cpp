// Tests for query-phase preprocessing: bit planes reassemble the quantized
// values, LUTs equal nibble sums, Eq. 20 constants are consistent, and the
// <x-bar, q-bar> identity holds against a from-scratch computation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/query.h"
#include "linalg/vector_ops.h"
#include "util/bit_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

std::vector<float> RandomVec(std::size_t dim, Rng* rng) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

class QueryParamTest : public ::testing::TestWithParam<int> {};

TEST_P(QueryParamTest, BitPlanesReassembleQuantizedValues) {
  const int bq = GetParam();
  RabitqEncoder enc;
  RabitqConfig config;
  config.query_bits = bq;
  ASSERT_TRUE(enc.Init(100, config).ok());
  Rng rng(bq * 11);
  const auto query = RandomVec(100, &rng);
  QuantizedQuery qq;
  ASSERT_TRUE(PrepareQuery(enc, query.data(), nullptr, &rng, &qq).ok());
  ASSERT_EQ(qq.qu.size(), enc.total_bits());
  for (std::size_t i = 0; i < qq.qu.size(); ++i) {
    std::uint8_t reassembled = 0;
    for (int j = 0; j < bq; ++j) {
      if (GetBit(qq.Plane(j), i)) reassembled |= (1u << j);
    }
    ASSERT_EQ(reassembled, qq.qu[i]) << "entry " << i;
  }
}

TEST_P(QueryParamTest, SumMatchesEntries) {
  const int bq = GetParam();
  RabitqEncoder enc;
  RabitqConfig config;
  config.query_bits = bq;
  ASSERT_TRUE(enc.Init(77, config).ok());
  Rng rng(bq * 13);
  const auto query = RandomVec(77, &rng);
  QuantizedQuery qq;
  ASSERT_TRUE(PrepareQuery(enc, query.data(), nullptr, &rng, &qq).ok());
  std::uint32_t sum = 0;
  for (const auto v : qq.qu) sum += v;
  EXPECT_EQ(sum, qq.sum_qu);
}

INSTANTIATE_TEST_SUITE_P(QueryBits, QueryParamTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(QueryTest, LutsEqualNibbleSums) {
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(64, RabitqConfig{}).ok());
  Rng rng(3);
  const auto query = RandomVec(64, &rng);
  QuantizedQuery qq;
  ASSERT_TRUE(PrepareQuery(enc, query.data(), nullptr, &rng, &qq).ok());
  ASSERT_TRUE(qq.has_exact_luts);
  const std::size_t segments = enc.total_bits() / 4;
  ASSERT_EQ(qq.luts.size(), segments * 16);
  for (std::size_t t = 0; t < segments; ++t) {
    for (int pattern = 0; pattern < 16; ++pattern) {
      int expected = 0;
      for (int bit = 0; bit < 4; ++bit) {
        if (pattern & (1 << bit)) expected += qq.qu[t * 4 + bit];
      }
      ASSERT_EQ(qq.luts[t * 16 + pattern], expected);
    }
  }
}

TEST(QueryTest, NoExactLutsAboveBq6) {
  RabitqEncoder enc;
  RabitqConfig config;
  config.query_bits = 8;  // 4 * 255 > 255: u8 LUTs would clip
  ASSERT_TRUE(enc.Init(64, config).ok());
  Rng rng(4);
  const auto query = RandomVec(64, &rng);
  QuantizedQuery qq;
  ASSERT_TRUE(PrepareQuery(enc, query.data(), nullptr, &rng, &qq).ok());
  EXPECT_FALSE(qq.has_exact_luts);
  EXPECT_TRUE(qq.luts.empty());
}

TEST(QueryTest, XbarQbarIdentityAgainstFromScratch) {
  // Eq. 20: for any code x_b,
  //   <x-bar, q-bar> = ip_scale*<x_b,qu> + pop_scale*popcount + bias
  // where x-bar[i] = +-1/sqrt(B) and q-bar = lo + step*qu.
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(96, RabitqConfig{}).ok());
  const std::size_t b = enc.total_bits();
  Rng rng(5);
  const auto query = RandomVec(96, &rng);
  QuantizedQuery qq;
  ASSERT_TRUE(PrepareQuery(enc, query.data(), nullptr, &rng, &qq).ok());

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint64_t> code(WordsForBits(b), 0);
    for (std::size_t i = 0; i < b; ++i) {
      if (rng.NextU64() & 1) SetBit(code.data(), i);
    }
    const std::uint32_t pop = PopCount(code.data(), code.size());
    std::uint32_t s = 0;
    float direct = 0.0f;
    const float scale = 1.0f / std::sqrt(static_cast<float>(b));
    for (std::size_t i = 0; i < b; ++i) {
      const float x_bar = GetBit(code.data(), i) ? scale : -scale;
      const float q_bar = qq.lo + qq.step * static_cast<float>(qq.qu[i]);
      direct += x_bar * q_bar;
      if (GetBit(code.data(), i)) s += qq.qu[i];
    }
    const float via_constants = qq.ip_scale * static_cast<float>(s) +
                                qq.pop_scale * static_cast<float>(pop) +
                                qq.bias;
    EXPECT_NEAR(via_constants, direct, 1e-3f);
  }
}

TEST(QueryTest, QuantizationErrorShrinksWithBq) {
  // ||q-bar - q'|| must drop monotonically (in expectation) as B_q grows;
  // check 1 vs 4 vs 8 with generous margins.
  RabitqEncoder enc1, enc4, enc8;
  RabitqConfig c1, c4, c8;
  c1.query_bits = 1;
  c4.query_bits = 4;
  c8.query_bits = 8;
  ASSERT_TRUE(enc1.Init(128, c1).ok());
  ASSERT_TRUE(enc4.Init(128, c4).ok());
  ASSERT_TRUE(enc8.Init(128, c8).ok());

  Rng rng(6);
  double err1 = 0.0, err4 = 0.0, err8 = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto query = RandomVec(128, &rng);
    std::vector<float> normalized(query);
    NormalizeInPlace(normalized.data(), 128);
    auto reconstruction_error = [&](RabitqEncoder& enc,
                                    int /*bits*/) -> double {
      QuantizedQuery qq;
      EXPECT_TRUE(PrepareQuery(enc, query.data(), nullptr, &rng, &qq).ok());
      std::vector<float> rotated(enc.total_bits());
      enc.rotator().InverseRotate(normalized.data(), rotated.data());
      double err = 0.0;
      for (std::size_t i = 0; i < rotated.size(); ++i) {
        const double recon = qq.lo + qq.step * static_cast<double>(qq.qu[i]);
        err += (recon - rotated[i]) * (recon - rotated[i]);
      }
      return err;
    };
    err1 += reconstruction_error(enc1, 1);
    err4 += reconstruction_error(enc4, 4);
    err8 += reconstruction_error(enc8, 8);
  }
  EXPECT_LT(err4, err1 * 0.2);
  EXPECT_LT(err8, err4 * 0.2);
}

TEST(QueryTest, RotatedFastPathMatchesDirectPath) {
  // PrepareQueryFromRotated (P^T q precomputed once, P^T c from the index)
  // must produce the same quantized query as the direct PrepareQuery, up to
  // float error in q'; with identical rng streams the randomized rounding
  // sees the same inputs and the codes must match exactly.
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(96, RabitqConfig{}).ok());
  const std::size_t b = enc.total_bits();
  Rng rng(10);
  const auto query = RandomVec(96, &rng);
  const auto centroid = RandomVec(96, &rng);

  Rng rng_a(55), rng_b(55);
  QuantizedQuery direct;
  ASSERT_TRUE(
      PrepareQuery(enc, query.data(), centroid.data(), &rng_a, &direct).ok());

  std::vector<float> rotated_query(b), rotated_centroid(b);
  RotateQueryOnce(enc, query.data(), rotated_query.data());
  enc.rotator().InverseRotate(centroid.data(), rotated_centroid.data());
  std::vector<float> residual(96);
  Subtract(query.data(), centroid.data(), residual.data(), 96);
  const float q_dist = Norm(residual.data(), 96);
  QuantizedQuery fast;
  ASSERT_TRUE(PrepareQueryFromRotated(enc, rotated_query.data(),
                                      rotated_centroid.data(), q_dist, &rng_b,
                                      &fast)
                  .ok());

  EXPECT_FLOAT_EQ(fast.q_dist, direct.q_dist);
  EXPECT_NEAR(fast.lo, direct.lo, 1e-4f);
  EXPECT_NEAR(fast.step, direct.step, 1e-5f);
  // Identical rounding decisions given float-identical inputs is not
  // guaranteed (q' differs in the last ulp), so compare the quantized
  // values within one level and the derived constants loosely.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < b; ++i) {
    mismatches += std::abs(int(fast.qu[i]) - int(direct.qu[i])) > 1 ? 1 : 0;
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_NEAR(fast.ip_scale, direct.ip_scale, 1e-6f);
}

TEST(QueryTest, RotatedFastPathRejectsBadArguments) {
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(32, RabitqConfig{}).ok());
  Rng rng(1);
  std::vector<float> rotated(enc.total_bits(), 0.0f);
  QuantizedQuery qq;
  EXPECT_FALSE(
      PrepareQueryFromRotated(enc, nullptr, nullptr, 1.0f, &rng, &qq).ok());
  EXPECT_FALSE(PrepareQueryFromRotated(enc, rotated.data(), nullptr, -1.0f,
                                       &rng, &qq)
                   .ok());
  // q_dist == 0 is the degenerate-at-centroid case, allowed.
  EXPECT_TRUE(PrepareQueryFromRotated(enc, rotated.data(), nullptr, 0.0f, &rng,
                                      &qq)
                  .ok());
  EXPECT_FLOAT_EQ(qq.q_dist, 0.0f);
}

TEST(QueryTest, DegenerateQueryAtCentroid) {
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(32, RabitqConfig{}).ok());
  Rng rng(7);
  std::vector<float> point(32, 2.0f);
  QuantizedQuery qq;
  ASSERT_TRUE(PrepareQuery(enc, point.data(), point.data(), &rng, &qq).ok());
  EXPECT_FLOAT_EQ(qq.q_dist, 0.0f);
}

TEST(QueryTest, RejectsNullArguments) {
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(32, RabitqConfig{}).ok());
  Rng rng(8);
  std::vector<float> q(32, 1.0f);
  QuantizedQuery qq;
  EXPECT_FALSE(PrepareQuery(enc, nullptr, nullptr, &rng, &qq).ok());
  EXPECT_FALSE(PrepareQuery(enc, q.data(), nullptr, nullptr, &qq).ok());
  EXPECT_FALSE(PrepareQuery(enc, q.data(), nullptr, &rng, nullptr).ok());
}

}  // namespace
}  // namespace rabitq
