// Tests for the additive (LSQ-lite) quantizer: reconstruction quality vs a
// single codebook, ICM improvement, ADC identity, stored-norm correctness.

#include <gtest/gtest.h>

#include "cluster/kmeans.h"
#include "linalg/vector_ops.h"
#include "quant/lsq.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix RandomData(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix data(n, dim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian());
  }
  return data;
}

TEST(LsqTest, TrainProducesRequestedCodebooks) {
  const Matrix data = RandomData(500, 16, 1);
  LsqConfig config;
  config.num_codebooks = 4;
  config.train_iterations = 2;
  AdditiveQuantizer aq;
  ASSERT_TRUE(aq.Train(data, config).ok());
  EXPECT_EQ(aq.num_codebooks(), 4u);
  EXPECT_EQ(aq.code_bits(), 16u);
  for (std::size_t m = 0; m < 4; ++m) {
    EXPECT_EQ(aq.codebook(m).rows(), 16u);
    EXPECT_EQ(aq.codebook(m).cols(), 16u);
  }
}

TEST(LsqTest, MultipleCodebooksBeatSingleKMeans) {
  // An additive quantizer with M=4 codebooks (16 bits) must reconstruct far
  // better than one 16-entry codebook (4 bits) -- the whole point of AQ.
  const Matrix data = RandomData(800, 12, 2);
  LsqConfig config;
  config.num_codebooks = 4;
  config.train_iterations = 3;
  AdditiveQuantizer aq;
  ASSERT_TRUE(aq.Train(data, config).ok());

  KMeansConfig kmeans;
  kmeans.num_clusters = 16;
  KMeansResult km;
  ASSERT_TRUE(RunKMeans(data, kmeans, &km).ok());

  double aq_err = 0.0, km_err = 0.0;
  std::vector<std::uint8_t> code(4);
  std::vector<float> recon(12);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    aq.Encode(data.Row(i), code.data(), nullptr);
    aq.Decode(code.data(), recon.data());
    aq_err += L2SqrDistance(recon.data(), data.Row(i), 12);
    km_err += L2SqrDistance(km.centroids.Row(km.assignments[i]), data.Row(i), 12);
  }
  EXPECT_LT(aq_err, km_err * 0.8);
}

TEST(LsqTest, StoredNormMatchesDecodedNorm) {
  const Matrix data = RandomData(200, 10, 3);
  LsqConfig config;
  config.num_codebooks = 3;
  config.train_iterations = 2;
  AdditiveQuantizer aq;
  ASSERT_TRUE(aq.Train(data, config).ok());
  std::vector<std::uint8_t> code(3);
  std::vector<float> recon(10);
  for (std::size_t i = 0; i < 30; ++i) {
    float stored = -1.0f;
    aq.Encode(data.Row(i), code.data(), &stored);
    aq.Decode(code.data(), recon.data());
    EXPECT_NEAR(stored, SquaredNorm(recon.data(), 10), 1e-3f);
  }
}

TEST(LsqTest, AdcIdentityHolds) {
  // query_sq + sum_m LUT[m][code] + recon_sq == ||q - y||^2 exactly.
  const Matrix data = RandomData(300, 8, 4);
  LsqConfig config;
  config.num_codebooks = 4;
  config.train_iterations = 2;
  AdditiveQuantizer aq;
  ASSERT_TRUE(aq.Train(data, config).ok());

  Rng rng(77);
  std::vector<float> query(8);
  for (auto& v : query) v = static_cast<float>(rng.Gaussian());
  const float query_sq = SquaredNorm(query.data(), 8);
  AlignedVector<float> luts;
  aq.ComputeLookupTables(query.data(), &luts);

  std::vector<std::uint8_t> code(4);
  std::vector<float> recon(8);
  for (std::size_t i = 0; i < 50; ++i) {
    float recon_sq = 0.0f;
    aq.Encode(data.Row(i), code.data(), &recon_sq);
    aq.Decode(code.data(), recon.data());
    const float est =
        aq.EstimateWithLuts(code.data(), luts.data(), recon_sq, query_sq);
    const float direct = L2SqrDistance(query.data(), recon.data(), 8);
    EXPECT_NEAR(est, direct, 1e-3f * (1.0f + direct));
  }
}

TEST(LsqTest, EncodeBatchMatchesSingle) {
  const Matrix data = RandomData(150, 8, 5);
  LsqConfig config;
  config.num_codebooks = 3;
  config.train_iterations = 1;
  AdditiveQuantizer aq;
  ASSERT_TRUE(aq.Train(data, config).ok());
  std::vector<std::uint8_t> batch;
  std::vector<float> norms;
  aq.EncodeBatch(data, &batch, &norms);
  ASSERT_EQ(batch.size(), 150u * 3u);
  ASSERT_EQ(norms.size(), 150u);
  std::vector<std::uint8_t> single(3);
  for (std::size_t i = 0; i < data.rows(); i += 17) {
    float norm = 0.0f;
    aq.Encode(data.Row(i), single.data(), &norm);
    for (std::size_t m = 0; m < 3; ++m) EXPECT_EQ(batch[i * 3 + m], single[m]);
    EXPECT_FLOAT_EQ(norm, norms[i]);
  }
}

TEST(LsqTest, RejectsBadConfigs) {
  AdditiveQuantizer aq;
  LsqConfig config;
  config.num_codebooks = 0;
  EXPECT_FALSE(aq.Train(RandomData(10, 4, 6), config).ok());
  config.num_codebooks = 2;
  EXPECT_FALSE(aq.Train(Matrix(), config).ok());
}

}  // namespace
}  // namespace rabitq
