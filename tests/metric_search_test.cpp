// The Metric seam, end to end: inner-product and cosine search.
//   * Exhaustive exact-mode search (kErrorBound and kFixedCandidates, full
//     probe, never-prune eps0) is element-identical to the brute-force
//     oracle under both new metrics -- unfiltered, filtered (allow-bitmap
//     pushdown), and with duplicate rows forcing score ties;
//   * the fused AVX2 estimate path is bit-identical to the un-fused scalar
//     path per metric (use_batch_estimator on/off agree across policies);
//   * the metric survives the v3 single-file snapshot and the v2 sharded
//     MANIFEST round trip, with post-load search bit-identical to pre-save;
//   * sharded scatter-gather stays bit-identical to single-shard per metric;
//   * the engine serves non-L2 metrics through SearchBatch, including the
//     per-query zero-norm cosine failure;
//   * cosine ingest/search rejects zero-norm vectors and queries;
//   * eval ground truth records its metric and refuses a mismatch.
// The engine/sharded variants honor the METRIC env var ("l2", "ip",
// "cosine") so the CI matrix can sweep the serving metric, and every index
// built here honors the BITS env var (1/2/4/8 bits per dimension) so the
// same matrix sweeps the multi-bit code path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/search_engine.h"
#include "eval/ground_truth.h"
#include "index/brute_force.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Metric EnvMetric(Metric fallback) {
  const char* value = std::getenv("METRIC");
  Metric metric = fallback;
  if (value != nullptr && !ParseMetricName(value, &metric)) return fallback;
  return metric;
}

// Code width for every index built in this file; the CI matrix sets BITS to
// sweep the multi-bit quantizer through the whole metric surface.
std::size_t EnvBits() {
  const char* value = std::getenv("BITS");
  if (value == nullptr) return 1;
  const int bits = std::atoi(value);
  return (bits == 1 || bits == 2 || bits == 4 || bits == 8)
             ? static_cast<std::size_t>(bits)
             : 1;
}

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

// The last `dupes` rows copy the first `dupes` rows verbatim, so every
// metric sees exactly-equal score ties that must resolve by id.
Matrix DataWithDuplicates(std::size_t n, std::size_t dim, std::size_t dupes,
                          std::uint64_t seed) {
  Matrix data = ClusteredData(n, dim, 10, seed);
  for (std::size_t i = 0; i < dupes; ++i) {
    std::copy_n(data.Row(i), dim, data.Row(n - dupes + i));
  }
  return data;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& want,
                         const std::vector<Neighbor>& got,
                         const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].second, got[i].second) << label << " pos " << i;
    EXPECT_EQ(want[i].first, got[i].first) << label << " pos " << i;
  }
}

// Brute-force oracle over an allowed subset (all rows when mask is empty).
std::vector<Neighbor> OracleAllowed(const Matrix& data, const float* query,
                                    std::size_t k, Metric metric,
                                    const std::vector<bool>& allowed) {
  const std::vector<Neighbor> full =
      BruteForceSearch(data, query, data.rows(), metric);
  std::vector<Neighbor> out;
  for (const Neighbor& nb : full) {
    if (allowed.empty() || allowed[nb.second]) out.push_back(nb);
    if (out.size() == k) break;
  }
  return out;
}

class MetricSearchTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 1200;
  static constexpr std::size_t kDim = 24;
  static constexpr std::size_t kLists = 12;
  static constexpr std::size_t kNumQueries = 8;
  static constexpr std::size_t kK = 10;

  void SetUp() override {
    data_ = DataWithDuplicates(kN, kDim, 6, 321);
    queries_ = ClusteredData(kNumQueries, kDim, 10, 322);
  }

  IvfRabitqIndex BuildSingle(Metric metric) const {
    IvfRabitqIndex index;
    IvfConfig ivf;
    ivf.num_lists = kLists;
    ivf.metric = metric;
    RabitqConfig rabitq;
    rabitq.bits_per_dim = EnvBits();
    EXPECT_TRUE(index.Build(data_, ivf, rabitq).ok());
    return index;
  }

  ShardedIndex BuildSharded(Metric metric, std::size_t shards,
                            ShardClustering clustering) const {
    ShardedIndex index;
    ShardedConfig config;
    config.num_shards = shards;
    config.clustering = clustering;
    config.ivf.num_lists = kLists;
    config.ivf.metric = metric;
    config.rabitq.bits_per_dim = EnvBits();
    EXPECT_TRUE(index.Build(data_, config).ok());
    return index;
  }

  // Exhaustive exact settings: full probe, never prune.
  static IvfSearchParams ExhaustiveParams(RerankPolicy policy) {
    IvfSearchParams params;
    params.k = kK;
    params.nprobe = kLists;
    params.epsilon0_override = 50.0f;
    params.policy = policy;
    params.rerank_candidates = kN;
    return params;
  }

  Matrix data_;
  Matrix queries_;
};

// The tentpole acceptance criterion: for each non-L2 metric, exhaustive
// kErrorBound and kFixedCandidates search returns exactly the brute-force
// oracle's (key, id) list -- duplicate-score ties included -- on both
// estimator paths.
TEST_F(MetricSearchTest, ExhaustiveSearchMatchesOracle) {
  for (const Metric metric : {Metric::kInnerProduct, Metric::kCosine}) {
    const IvfRabitqIndex index = BuildSingle(metric);
    ASSERT_EQ(index.metric(), metric);
    for (std::size_t q = 0; q < kNumQueries; ++q) {
      const std::vector<Neighbor> oracle =
          OracleAllowed(data_, queries_.Row(q), kK, metric, {});
      for (const RerankPolicy policy :
           {RerankPolicy::kErrorBound, RerankPolicy::kFixedCandidates}) {
        for (const bool batch : {true, false}) {
          IvfSearchParams params = ExhaustiveParams(policy);
          params.use_batch_estimator = batch;
          std::vector<Neighbor> got;
          ASSERT_TRUE(
              index.Search(queries_.Row(q), params, 700 + q, &got).ok());
          ExpectSameNeighbors(oracle, got,
                              std::string(MetricName(metric)) + " q" +
                                  std::to_string(q));
        }
      }
    }
  }
}

// Filtered search under both new metrics: the allow-bitmap pushdown returns
// exactly the oracle over the allowed subset.
TEST_F(MetricSearchTest, FilteredSearchMatchesOracleOverAllowedSubset) {
  Rng pick(55);
  std::vector<bool> allowed(kN, false);
  std::vector<std::uint64_t> bits((kN + 63) / 64, 0);
  for (std::size_t i = 0; i < kN; ++i) {
    if (pick.UniformInt(3) != 0) {  // ~2/3 allowed
      allowed[i] = true;
      bits[i / 64] |= std::uint64_t{1} << (i % 64);
    }
  }
  for (const Metric metric : {Metric::kInnerProduct, Metric::kCosine}) {
    const IvfRabitqIndex index = BuildSingle(metric);
    for (std::size_t q = 0; q < kNumQueries; ++q) {
      const std::vector<Neighbor> oracle =
          OracleAllowed(data_, queries_.Row(q), kK, metric, allowed);
      for (const bool batch : {true, false}) {
        IvfSearchParams params = ExhaustiveParams(RerankPolicy::kErrorBound);
        params.use_batch_estimator = batch;
        params.filter = IdFilter::AllowBitmap(bits.data(), kN);
        std::vector<Neighbor> got;
        ASSERT_TRUE(index.Search(queries_.Row(q), params, 800 + q, &got).ok());
        for (const Neighbor& nb : got) {
          ASSERT_TRUE(allowed[nb.second]) << "filtered id returned";
        }
        ExpectSameNeighbors(oracle, got,
                            std::string("filtered ") + MetricName(metric));
      }
    }
  }
}

// Fused AVX2 vs un-fused scalar estimates: bit-identical results per metric
// at NON-exhaustive settings too (estimates decide the candidate set here,
// so any kernel divergence shows up as a result difference).
TEST_F(MetricSearchTest, FusedAndScalarEstimatorsBitIdenticalPerMetric) {
  for (const Metric metric :
       {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    const IvfRabitqIndex index = BuildSingle(metric);
    for (const RerankPolicy policy :
         {RerankPolicy::kErrorBound, RerankPolicy::kFixedCandidates,
          RerankPolicy::kNone}) {
      IvfSearchParams fused;
      fused.k = kK;
      fused.nprobe = 5;
      fused.policy = policy;
      fused.rerank_candidates = 40;
      fused.use_batch_estimator = true;
      IvfSearchParams scalar = fused;
      scalar.use_batch_estimator = false;
      for (std::size_t q = 0; q < kNumQueries; ++q) {
        std::vector<Neighbor> fused_out, scalar_out;
        ASSERT_TRUE(
            index.Search(queries_.Row(q), fused, 900 + q, &fused_out).ok());
        ASSERT_TRUE(
            index.Search(queries_.Row(q), scalar, 900 + q, &scalar_out).ok());
        ExpectSameNeighbors(scalar_out, fused_out,
                            std::string("fused-vs-scalar ") +
                                MetricName(metric));
      }
    }
  }
}

// Sharded scatter-gather under shared clustering stays bit-identical to the
// single-shard index for every metric (honors the SHARDS-style METRIC env).
TEST_F(MetricSearchTest, ShardedMatchesSingleShardPerMetric) {
  for (const Metric metric :
       {EnvMetric(Metric::kInnerProduct), Metric::kCosine}) {
    const IvfRabitqIndex single = BuildSingle(metric);
    const ShardedIndex sharded =
        BuildSharded(metric, 3, ShardClustering::kShared);
    ASSERT_EQ(sharded.metric(), metric);
    for (const RerankPolicy policy :
         {RerankPolicy::kErrorBound, RerankPolicy::kFixedCandidates,
          RerankPolicy::kNone}) {
      IvfSearchParams params;
      params.k = kK;
      params.nprobe = 6;
      params.policy = policy;
      params.rerank_candidates = 40;
      if (policy == RerankPolicy::kErrorBound) {
        // kErrorBound parity is conditional on no eps0 bound violation at
        // the k-th boundary (see sharded.h) -- shards prune against weaker
        // per-shard thresholds, so a violated bound admits a candidate the
        // single-shard scan pruned. Widen eps0 to make the bound safe; the
        // partial probe and the pruning path are still exercised.
        params.epsilon0_override = 8.0f;
      }
      for (std::size_t q = 0; q < kNumQueries; ++q) {
        std::vector<Neighbor> want, got;
        ASSERT_TRUE(
            single.Search(queries_.Row(q), params, 1000 + q, &want).ok());
        ASSERT_TRUE(
            sharded.Search(queries_.Row(q), params, 1000 + q, &got).ok());
        ExpectSameNeighbors(want, got,
                            std::string("sharded ") + MetricName(metric));
      }
    }
  }
}

// Per-shard clustering cannot be bit-identical to single-shard, but
// exhaustive exact re-ranking still reproduces the oracle under any metric.
TEST_F(MetricSearchTest, PerShardClusteringExhaustiveMatchesOracle) {
  const Metric metric = EnvMetric(Metric::kCosine);
  const ShardedIndex sharded =
      BuildSharded(metric, 4, ShardClustering::kPerShard);
  const IvfSearchParams params = ExhaustiveParams(RerankPolicy::kErrorBound);
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    const std::vector<Neighbor> oracle =
        OracleAllowed(data_, queries_.Row(q), kK, metric, {});
    std::vector<Neighbor> got;
    ASSERT_TRUE(sharded.Search(queries_.Row(q), params, 1100 + q, &got).ok());
    ExpectSameNeighbors(oracle, got, "per-shard exhaustive");
  }
}

// v3 single-file snapshot: the metric round-trips and post-load search is
// bit-identical to pre-save.
TEST_F(MetricSearchTest, SnapshotRoundTripsMetric) {
  for (const Metric metric : {Metric::kInnerProduct, Metric::kCosine}) {
    const std::string path = ::testing::TempDir() + "/metric_" +
                             MetricName(metric) + ".rbq";
    const IvfRabitqIndex index = BuildSingle(metric);
    ASSERT_TRUE(index.Save(path).ok());
    IvfRabitqIndex loaded;
    ASSERT_TRUE(loaded.Load(path).ok());
    EXPECT_EQ(loaded.metric(), metric);
    const IvfSearchParams params = ExhaustiveParams(RerankPolicy::kErrorBound);
    for (std::size_t q = 0; q < kNumQueries; ++q) {
      std::vector<Neighbor> want, got;
      ASSERT_TRUE(index.Search(queries_.Row(q), params, 1200 + q, &want).ok());
      ASSERT_TRUE(loaded.Search(queries_.Row(q), params, 1200 + q, &got).ok());
      ExpectSameNeighbors(want, got, "snapshot round trip");
    }
    std::filesystem::remove(path);
  }
}

// Sharded MANIFEST v2: the metric round-trips through the directory
// snapshot, every shard blob agrees with the manifest, and post-load
// scatter-gather is bit-identical.
TEST_F(MetricSearchTest, ShardedManifestRoundTripsMetric) {
  const Metric metric = EnvMetric(Metric::kInnerProduct);
  const std::string dir = ::testing::TempDir() + "/metric_sharded_snap";
  std::filesystem::remove_all(dir);
  const ShardedIndex sharded =
      BuildSharded(metric, 3, ShardClustering::kShared);
  ASSERT_TRUE(sharded.Save(dir).ok());
  ShardedIndex loaded;
  ASSERT_TRUE(loaded.Load(dir).ok());
  EXPECT_EQ(loaded.metric(), metric);
  ASSERT_EQ(loaded.num_shards(), sharded.num_shards());
  IvfSearchParams params;
  params.k = kK;
  params.nprobe = 6;
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    std::vector<Neighbor> want, got;
    ASSERT_TRUE(sharded.Search(queries_.Row(q), params, 1300 + q, &want).ok());
    ASSERT_TRUE(loaded.Search(queries_.Row(q), params, 1300 + q, &got).ok());
    ExpectSameNeighbors(want, got, "sharded manifest round trip");
  }
  std::filesystem::remove_all(dir);
}

// The engine serves non-L2 metrics: SearchBatch is bit-identical to the
// sequential sharded reference at equal seeds, and a zero-norm cosine query
// fails through ITS OWN response while the rest of the batch executes.
TEST_F(MetricSearchTest, EngineServesMetricBatches) {
  const Metric metric = EnvMetric(Metric::kCosine);
  ShardedIndex reference = BuildSharded(metric, 2, ShardClustering::kShared);

  IvfSearchParams params;
  params.k = kK;
  params.nprobe = 6;

  std::vector<std::vector<Neighbor>> want(kNumQueries);
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    ASSERT_TRUE(reference
                    .Search(queries_.Row(q), params, 5000 + q, &want[q])
                    .ok());
  }

  EngineConfig config;
  config.num_threads = 4;
  SearchEngine engine(BuildSharded(metric, 2, ShardClustering::kShared),
                      config);
  EXPECT_EQ(engine.metric(), metric);

  std::vector<SearchRequest> requests(kNumQueries);
  SearchOptions options;
  options.k = kK;
  options.nprobe = 6;
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    requests[q] = {queries_.Row(q), options};
    requests[q].options.seed = 5000 + q;
  }
  std::vector<SearchResponse> responses;
  ASSERT_TRUE(engine.SearchBatch(requests.data(), requests.size(), &responses)
                  .ok());
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    ASSERT_TRUE(responses[q].ok()) << responses[q].status.message();
    ExpectSameNeighbors(want[q], responses[q].neighbors, "engine batch");
  }

  if (metric == Metric::kCosine) {
    // Zero-norm query: per-query failure, valid neighbors still execute.
    std::vector<float> zero(kDim, 0.0f);
    std::vector<SearchRequest> mixed = {requests[0], requests[1]};
    mixed[1].query = zero.data();
    std::vector<SearchResponse> mixed_responses;
    const Status batch_status =
        engine.SearchBatch(mixed.data(), mixed.size(), &mixed_responses);
    EXPECT_FALSE(batch_status.ok());
    ASSERT_EQ(mixed_responses.size(), 2u);
    EXPECT_TRUE(mixed_responses[0].ok());
    ExpectSameNeighbors(want[0], mixed_responses[0].neighbors,
                        "mixed batch survivor");
    EXPECT_EQ(mixed_responses[1].status.code(), StatusCode::kInvalidArgument);
  }
}

// Cosine ingest/search rejects zero-norm vectors and queries at every entry
// point (Build, Add, Update, query side).
TEST_F(MetricSearchTest, CosineRejectsZeroNormVectors) {
  Matrix poisoned = data_;
  std::fill_n(poisoned.Row(3), kDim, 0.0f);
  IvfConfig ivf;
  ivf.num_lists = kLists;
  ivf.metric = Metric::kCosine;
  IvfRabitqIndex rejected;
  EXPECT_EQ(rejected.Build(poisoned, ivf, RabitqConfig{}).code(),
            StatusCode::kInvalidArgument);

  IvfRabitqIndex index = BuildSingle(Metric::kCosine);
  const std::vector<float> zero(kDim, 0.0f);
  EXPECT_EQ(index.Add(zero.data()).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(index.Update(0, zero.data()).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(index.IsDeleted(0)) << "failed update must not tombstone";

  IvfSearchParams params;
  params.k = kK;
  params.nprobe = 4;
  std::vector<Neighbor> out;
  EXPECT_EQ(index.Search(zero.data(), params, std::uint64_t{0}, &out).code(),
            StatusCode::kInvalidArgument);
}

// Eval plumbing: ground truth records its metric, ranks by MetricDistance
// keys, and the mismatch guard refuses cross-metric scoring.
TEST_F(MetricSearchTest, GroundTruthCarriesMetricAndRefusesMismatch) {
  GroundTruth l2_truth, ip_truth;
  ASSERT_TRUE(ComputeGroundTruth(data_, queries_, kK, &l2_truth).ok());
  ASSERT_TRUE(ComputeGroundTruth(data_, queries_, kK, Metric::kInnerProduct,
                                 &ip_truth)
                  .ok());
  EXPECT_EQ(l2_truth.metric, Metric::kL2);
  EXPECT_EQ(ip_truth.metric, Metric::kInnerProduct);
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    const std::vector<Neighbor> oracle = OracleAllowed(
        data_, queries_.Row(q), kK, Metric::kInnerProduct, {});
    for (std::size_t j = 0; j < kK; ++j) {
      EXPECT_EQ(ip_truth.IdsFor(q)[j], oracle[j].second);
      EXPECT_EQ(ip_truth.DistFor(q)[j], oracle[j].first);
    }
  }
  EXPECT_TRUE(CheckGroundTruthMetric(ip_truth, Metric::kInnerProduct).ok());
  EXPECT_EQ(CheckGroundTruthMetric(ip_truth, Metric::kL2).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CheckGroundTruthMetric(l2_truth, Metric::kCosine).code(),
            StatusCode::kInvalidArgument);
}

// ParseMetricName accepts the documented spellings and rejects garbage.
TEST(MetricNameTest, ParseRoundTrip) {
  Metric metric = Metric::kL2;
  EXPECT_TRUE(ParseMetricName("l2", &metric));
  EXPECT_EQ(metric, Metric::kL2);
  EXPECT_TRUE(ParseMetricName("ip", &metric));
  EXPECT_EQ(metric, Metric::kInnerProduct);
  EXPECT_TRUE(ParseMetricName("inner_product", &metric));
  EXPECT_EQ(metric, Metric::kInnerProduct);
  EXPECT_TRUE(ParseMetricName("cosine", &metric));
  EXPECT_EQ(metric, Metric::kCosine);
  EXPECT_TRUE(ParseMetricName("cos", &metric));
  EXPECT_EQ(metric, Metric::kCosine);
  EXPECT_FALSE(ParseMetricName("euclidean", &metric));
  for (const Metric m : {Metric::kL2, Metric::kInnerProduct, Metric::kCosine}) {
    Metric parsed = Metric::kL2;
    ASSERT_TRUE(ParseMetricName(MetricName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
}

}  // namespace
}  // namespace rabitq
