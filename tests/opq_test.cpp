// Tests for OPQ: rotation orthogonality, encode/decode consistency through
// the rotation, ADC correctness, and quantization-error improvement over
// plain PQ on correlated data (the reason OPQ exists).

#include <gtest/gtest.h>

#include "linalg/vector_ops.h"
#include "quant/opq.h"
#include "util/prng.h"

namespace rabitq {
namespace {

// Correlated data: low-rank latent mixed into D dims. PQ's independent
// sub-segments struggle here; OPQ's rotation recovers much of the loss.
Matrix CorrelatedData(std::size_t n, std::size_t dim, std::size_t rank,
                      std::uint64_t seed) {
  Rng rng(seed);
  Matrix mix(rank, dim);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    mix.data()[i] = static_cast<float>(rng.Gaussian());
  }
  Matrix data(n, dim);
  std::vector<float> latent(rank);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& l : latent) l = static_cast<float>(rng.Gaussian());
    MatTVec(mix, latent.data(), data.Row(i));
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) += 0.05f * static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

double MeanQuantizationError(const Matrix& data,
                             const std::function<void(const float*, float*)>&
                                 reconstruct) {
  std::vector<float> recon(data.cols());
  double total = 0.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    reconstruct(data.Row(i), recon.data());
    total += L2SqrDistance(data.Row(i), recon.data(), data.cols());
  }
  return total / static_cast<double>(data.rows());
}

TEST(OpqTest, LearnedRotationIsOrthogonal) {
  const Matrix data = CorrelatedData(800, 32, 8, 1);
  OpqConfig config;
  config.pq.num_segments = 8;
  config.pq.bits = 4;
  config.opq_iterations = 4;
  OptimizedProductQuantizer opq;
  ASSERT_TRUE(opq.Train(data, config).ok());
  EXPECT_TRUE(IsOrthogonal(opq.rotation(), 1e-3f));
}

TEST(OpqTest, DecodeInvertsRotation) {
  const Matrix data = CorrelatedData(500, 24, 6, 2);
  OpqConfig config;
  config.pq.num_segments = 6;
  config.pq.bits = 4;
  config.opq_iterations = 3;
  OptimizedProductQuantizer opq;
  ASSERT_TRUE(opq.Train(data, config).ok());

  // Decode(Encode(x)) must live in the original space: its rotation must
  // equal the PQ reconstruction of the rotated vector.
  std::vector<std::uint8_t> code(6);
  std::vector<float> decoded(24), rotated_decoded(24), rotated(24),
      pq_recon(24);
  for (std::size_t i = 0; i < 10; ++i) {
    opq.Encode(data.Row(i), code.data());
    opq.Decode(code.data(), decoded.data());
    opq.RotateVector(decoded.data(), rotated_decoded.data());
    opq.RotateVector(data.Row(i), rotated.data());
    opq.pq().Decode(code.data(), pq_recon.data());
    for (std::size_t j = 0; j < 24; ++j) {
      EXPECT_NEAR(rotated_decoded[j], pq_recon[j], 1e-3f);
    }
  }
}

TEST(OpqTest, AdcMatchesDecodedDistance) {
  const Matrix data = CorrelatedData(400, 16, 5, 3);
  OpqConfig config;
  config.pq.num_segments = 4;
  config.pq.bits = 8;
  config.opq_iterations = 3;
  OptimizedProductQuantizer opq;
  ASSERT_TRUE(opq.Train(data, config).ok());

  Rng rng(9);
  std::vector<float> query(16);
  for (auto& v : query) v = static_cast<float>(rng.Gaussian());
  AlignedVector<float> luts;
  opq.ComputeLookupTables(query.data(), &luts);
  std::vector<std::uint8_t> code(4);
  std::vector<float> decoded(16);
  for (std::size_t i = 0; i < 40; ++i) {
    opq.Encode(data.Row(i), code.data());
    opq.Decode(code.data(), decoded.data());
    // Rotation preserves distances, so ADC in rotated space equals the
    // distance to the decoded vector in the original space.
    const float via_lut = opq.EstimateWithLuts(code.data(), luts.data());
    const float direct = L2SqrDistance(query.data(), decoded.data(), 16);
    EXPECT_NEAR(via_lut, direct, 1e-2f * (1.0f + direct));
  }
}

TEST(OpqTest, BeatsPlainPqOnCorrelatedData) {
  const Matrix data = CorrelatedData(1500, 32, 4, 4);
  PqConfig pq_config;
  pq_config.num_segments = 16;
  pq_config.bits = 4;
  pq_config.kmeans_iterations = 12;
  ProductQuantizer pq;
  ASSERT_TRUE(pq.Train(data, pq_config).ok());

  OpqConfig opq_config;
  opq_config.pq = pq_config;
  opq_config.opq_iterations = 8;
  OptimizedProductQuantizer opq;
  ASSERT_TRUE(opq.Train(data, opq_config).ok());

  std::vector<std::uint8_t> code(16);
  const double pq_err = MeanQuantizationError(
      data, [&](const float* x, float* out) {
        pq.Encode(x, code.data());
        pq.Decode(code.data(), out);
      });
  const double opq_err = MeanQuantizationError(
      data, [&](const float* x, float* out) {
        opq.Encode(x, code.data());
        opq.Decode(code.data(), out);
      });
  EXPECT_LT(opq_err, pq_err * 0.9)
      << "OPQ should reduce quantization error on correlated data";
}

TEST(OpqTest, EncodeBatchMatchesSingle) {
  const Matrix data = CorrelatedData(200, 16, 4, 5);
  OpqConfig config;
  config.pq.num_segments = 4;
  config.pq.bits = 4;
  config.opq_iterations = 2;
  OptimizedProductQuantizer opq;
  ASSERT_TRUE(opq.Train(data, config).ok());
  std::vector<std::uint8_t> batch;
  opq.EncodeBatch(data, &batch);
  std::vector<std::uint8_t> single(4);
  for (std::size_t i = 0; i < data.rows(); i += 23) {
    opq.Encode(data.Row(i), single.data());
    for (std::size_t m = 0; m < 4; ++m) {
      EXPECT_EQ(batch[i * 4 + m], single[m]);
    }
  }
}

TEST(OpqTest, RejectsEmptyData) {
  OptimizedProductQuantizer opq;
  EXPECT_FALSE(opq.Train(Matrix(), OpqConfig{}).ok());
}

}  // namespace
}  // namespace rabitq
