// Tests for the RaBitQ encoder and code store: stored factors match their
// definitions (<o-bar,o> = ||P^T o||_1 / sqrt(B), popcounts, residual norms),
// reconstruction geometry, degenerate vectors, and the paper's
// concentration facts (E[<o-bar,o>] ~= 0.8 for the sampled rotation family).

#include <gtest/gtest.h>

#include <cmath>

#include "core/rabitq.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

std::vector<float> RandomVec(std::size_t dim, Rng* rng, float scale = 1.0f) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian()) * scale;
  return v;
}

TEST(RabitqEncoderTest, InitValidatesConfig) {
  RabitqEncoder enc;
  RabitqConfig config;
  EXPECT_FALSE(enc.Init(0, config).ok());
  config.total_bits = 100;  // not a multiple of 64
  EXPECT_FALSE(enc.Init(96, config).ok());
  config.total_bits = 64;
  EXPECT_FALSE(enc.Init(128, config).ok());  // total_bits < dim
  config.total_bits = 0;
  config.query_bits = 0;
  EXPECT_FALSE(enc.Init(64, config).ok());
  config.query_bits = 4;
  config.epsilon0 = -1.0f;
  EXPECT_FALSE(enc.Init(64, config).ok());
  config.epsilon0 = 1.9f;
  EXPECT_TRUE(enc.Init(100, config).ok());
  EXPECT_EQ(enc.total_bits(), 128u);  // rounded up to multiple of 64
}

class RabitqEncoderParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(RabitqEncoderParamTest, StoredFactorsMatchDefinitions) {
  const auto [dim, total_bits] = GetParam();
  RabitqEncoder enc;
  RabitqConfig config;
  config.total_bits = total_bits;
  ASSERT_TRUE(enc.Init(dim, config).ok());
  const std::size_t b = enc.total_bits();

  Rng rng(dim * 3 + 1);
  RabitqCodeStore store(b);
  const auto centroid = RandomVec(dim, &rng);
  for (int i = 0; i < 20; ++i) {
    const auto vec = RandomVec(dim, &rng, 2.0f);
    ASSERT_TRUE(enc.EncodeAppend(vec.data(), centroid.data(), &store).ok());
    const RabitqCodeView view = store.View(i);

    // dist_to_centroid = ||vec - centroid||.
    EXPECT_NEAR(view.dist_to_centroid,
                std::sqrt(L2SqrDistance(vec.data(), centroid.data(), dim)),
                1e-3f);
    // bit_count = popcount of the stored bits.
    EXPECT_EQ(view.bit_count, PopCount(view.bits, store.words_per_code()));

    // o_o = <x-bar, P^T o> recomputed from scratch.
    std::vector<float> o(dim);
    Subtract(vec.data(), centroid.data(), o.data(), dim);
    NormalizeInPlace(o.data(), dim);
    std::vector<float> rotated(b);
    enc.rotator().InverseRotate(o.data(), rotated.data());
    float manual = 0.0f;
    const float scale = 1.0f / std::sqrt(static_cast<float>(b));
    for (std::size_t j = 0; j < b; ++j) {
      manual += (GetBit(view.bits, j) ? scale : -scale) * rotated[j];
    }
    EXPECT_NEAR(view.o_o, manual, 1e-3f);
    // <o-bar, o> is positive and bounded by 1 (both unit vectors).
    EXPECT_GT(view.o_o, 0.0f);
    EXPECT_LE(view.o_o, 1.0f + 1e-4f);
  }
}

TEST_P(RabitqEncoderParamTest, ReconstructionHasUnitNormAndMatchesOO) {
  const auto [dim, total_bits] = GetParam();
  RabitqEncoder enc;
  RabitqConfig config;
  config.total_bits = total_bits;
  ASSERT_TRUE(enc.Init(dim, config).ok());
  const std::size_t b = enc.total_bits();

  Rng rng(dim * 5 + 7);
  RabitqCodeStore store(b);
  const auto vec = RandomVec(dim, &rng);
  ASSERT_TRUE(enc.EncodeAppend(vec.data(), nullptr, &store).ok());

  // o-bar = P x-bar is a unit vector, and <o-bar, pad(o)> == stored o_o.
  std::vector<float> o_bar(b);
  enc.ReconstructQuantizedUnit(store.BitsAt(0), o_bar.data());
  EXPECT_NEAR(Norm(o_bar.data(), b), 1.0f, 1e-3f);

  std::vector<float> o_padded(b, 0.0f);
  std::copy_n(vec.data(), dim, o_padded.data());
  NormalizeInPlace(o_padded.data(), b);
  EXPECT_NEAR(Dot(o_bar.data(), o_padded.data(), b), store.o_o(0), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RabitqEncoderParamTest,
                         ::testing::Values(std::make_pair(64, 64),
                                           std::make_pair(100, 128),
                                           std::make_pair(128, 128),
                                           std::make_pair(128, 256),
                                           std::make_pair(60, 192)));

TEST(RabitqEncoderTest, ZeroResidualVectorIsHandled) {
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(32, RabitqConfig{}).ok());
  RabitqCodeStore store(enc.total_bits());
  std::vector<float> vec(32, 1.5f);
  ASSERT_TRUE(enc.EncodeAppend(vec.data(), vec.data(), &store).ok());
  EXPECT_FLOAT_EQ(store.dist_to_centroid(0), 0.0f);
  EXPECT_FLOAT_EQ(store.o_o(0), 1.0f);
}

TEST(RabitqEncoderTest, ConcentrationAroundPoint8) {
  // Paper Section 3.2.1 / Appendix B: E[<o-bar, o>] in [0.798, 0.800] for
  // D in [100, 1e6]. Average over many vectors with a fixed rotation is a
  // consistent estimate of the same quantity by exchangeability.
  const std::size_t dim = 128;
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(dim, RabitqConfig{}).ok());
  RabitqCodeStore store(enc.total_bits());
  Rng rng(2024);
  const int n = 400;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto vec = RandomVec(dim, &rng);
    ASSERT_TRUE(enc.EncodeAppend(vec.data(), nullptr, &store).ok());
    sum += store.o_o(i);
  }
  EXPECT_NEAR(sum / n, 0.8, 0.02);
}

TEST(RabitqEncoderTest, PaddingIncreasesOO) {
  // Longer codes quantize the unit vector more finely: <o-bar,o> grows
  // toward 1 ... actually <o-bar,o> stays ~0.8 regardless of B (it is a
  // property of dimension B); what shrinks is the error bound ~1/sqrt(B).
  // Verify o_o stays in the concentration band for several paddings.
  Rng rng(5);
  const std::size_t dim = 96;
  const auto vec = RandomVec(dim, &rng);
  for (const std::size_t bits : {128u, 256u, 512u}) {
    RabitqEncoder enc;
    RabitqConfig config;
    config.total_bits = bits;
    ASSERT_TRUE(enc.Init(dim, config).ok());
    RabitqCodeStore store(bits);
    ASSERT_TRUE(enc.EncodeAppend(vec.data(), nullptr, &store).ok());
    EXPECT_GT(store.o_o(0), 0.6f);
    EXPECT_LT(store.o_o(0), 0.95f);
  }
}

TEST(RabitqCodeStoreTest, AppendViewRoundTrip) {
  RabitqCodeStore store(128);
  EXPECT_EQ(store.words_per_code(), 2u);
  std::uint64_t bits[2] = {0xDEADBEEFCAFEBABEULL, 0x0123456789ABCDEFULL};
  store.Append(bits, 3.5f, 0.82f, 61);
  ASSERT_EQ(store.size(), 1u);
  const RabitqCodeView view = store.View(0);
  EXPECT_EQ(view.bits[0], bits[0]);
  EXPECT_EQ(view.bits[1], bits[1]);
  EXPECT_FLOAT_EQ(view.dist_to_centroid, 3.5f);
  EXPECT_FLOAT_EQ(view.o_o, 0.82f);
  EXPECT_EQ(view.bit_count, 61u);
}

TEST(RabitqCodeStoreTest, FinalizePacksNibbles) {
  RabitqCodeStore store(64);
  std::uint64_t bits = 0xFEDCBA9876543210ULL;
  store.Append(&bits, 1.0f, 0.8f, 32);
  store.Finalize();
  ASSERT_TRUE(store.finalized());
  const FastScanCodes& packed = store.packed();
  EXPECT_EQ(packed.num_segments, 16u);
  EXPECT_EQ(packed.num_blocks, 1u);
  // Vector 0 occupies low nibble of byte 0 in each segment's 16-byte group.
  for (std::size_t t = 0; t < 16; ++t) {
    EXPECT_EQ(packed.BlockPtr(0)[t * 16] & 0xF, t);
  }
}

// Growing a store one code at a time through FinalizeAppend must produce
// exactly the packed bytes of a one-shot Finalize over the same codes --
// the invariant behind amortized-O(1) index appends.
TEST(RabitqCodeStoreTest, FinalizeAppendMatchesFullFinalize) {
  Rng rng(321);
  const std::size_t total_bits = 128;
  const std::size_t words = WordsForBits(total_bits);
  RabitqCodeStore incremental(total_bits);
  RabitqCodeStore reference(total_bits);
  // 71 codes: crosses two block boundaries and ends mid-block.
  for (std::size_t i = 0; i < 71; ++i) {
    std::uint64_t bits[2] = {rng.NextU64(), rng.NextU64()};
    const float d = rng.UniformFloat() + 0.5f;
    const float o_o = rng.UniformFloat() * 0.3f + 0.6f;
    const std::uint32_t pop = static_cast<std::uint32_t>(rng.UniformInt(128));
    incremental.Append(bits, d, o_o, pop);
    incremental.FinalizeAppend();
    reference.Append(bits, d, o_o, pop);

    RabitqCodeStore full(total_bits);
    for (std::size_t j = 0; j <= i; ++j) {
      full.Append(reference.BitsAt(j), reference.dist_to_centroid(j),
                  reference.o_o(j), reference.bit_count(j));
    }
    full.Finalize();
    ASSERT_TRUE(incremental.finalized());
    ASSERT_EQ(incremental.packed().num_blocks, full.packed().num_blocks);
    ASSERT_EQ(incremental.packed().packed.size(), full.packed().packed.size());
    for (std::size_t b = 0; b < incremental.packed().packed.size(); ++b) {
      ASSERT_EQ(incremental.packed().packed[b], full.packed().packed[b])
          << "byte " << b << " after append " << i;
    }
  }
  EXPECT_EQ(incremental.words_per_code(), words);
}

// CompactInto keeps exactly the live codes, in order, and the result is
// finalized and bit-identical to appending the survivors directly.
TEST(RabitqCodeStoreTest, CompactIntoDropsDeadEntries) {
  Rng rng(99);
  const std::size_t total_bits = 64;
  RabitqCodeStore store(total_bits);
  std::vector<std::uint8_t> dead;
  RabitqCodeStore expect(total_bits);
  for (std::size_t i = 0; i < 50; ++i) {
    std::uint64_t bits = rng.NextU64();
    const float d = rng.UniformFloat() + 0.5f;
    const float o_o = 0.8f;
    const std::uint32_t pop = static_cast<std::uint32_t>(rng.UniformInt(64));
    store.Append(&bits, d, o_o, pop);
    dead.push_back(i % 3 == 0 ? 1 : 0);
    if (i % 3 != 0) expect.Append(&bits, d, o_o, pop);
  }
  store.Finalize();
  expect.Finalize();

  RabitqCodeStore compacted;
  store.CompactInto(dead.data(), &compacted);
  ASSERT_EQ(compacted.size(), expect.size());
  ASSERT_TRUE(compacted.finalized());
  for (std::size_t i = 0; i < compacted.size(); ++i) {
    EXPECT_EQ(compacted.BitsAt(i)[0], expect.BitsAt(i)[0]);
    EXPECT_FLOAT_EQ(compacted.dist_to_centroid(i), expect.dist_to_centroid(i));
    EXPECT_FLOAT_EQ(compacted.o_o(i), expect.o_o(i));
    EXPECT_EQ(compacted.bit_count(i), expect.bit_count(i));
  }
  ASSERT_EQ(compacted.packed().packed.size(), expect.packed().packed.size());
  for (std::size_t b = 0; b < compacted.packed().packed.size(); ++b) {
    ASSERT_EQ(compacted.packed().packed[b], expect.packed().packed[b]);
  }
}

TEST(RabitqCodeStoreTest, EncoderRejectsMismatchedStore) {
  RabitqEncoder enc;
  ASSERT_TRUE(enc.Init(64, RabitqConfig{}).ok());
  RabitqCodeStore wrong(128);
  std::vector<float> vec(64, 1.0f);
  EXPECT_EQ(enc.EncodeAppend(vec.data(), nullptr, &wrong).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(enc.EncodeAppend(vec.data(), nullptr, nullptr).ok());
}

}  // namespace
}  // namespace rabitq
