// Tests for the PQ baseline: training validity, encode/decode consistency,
// ADC estimation vs decoded distances, 4-bit vs 8-bit configurations.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.h"
#include "quant/pq.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix RandomData(std::size_t n, std::size_t dim, std::uint64_t seed,
                  float scale = 1.0f) {
  Rng rng(seed);
  Matrix data(n, dim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.data()[i] = static_cast<float>(rng.Gaussian()) * scale;
  }
  return data;
}

struct PqCase {
  std::size_t dim;
  std::size_t m;
  int bits;
};

class PqParamTest : public ::testing::TestWithParam<PqCase> {};

TEST_P(PqParamTest, TrainEncodeDecode) {
  const PqCase c = GetParam();
  const Matrix data = RandomData(600, c.dim, c.dim * 7 + c.bits);
  PqConfig config;
  config.num_segments = c.m;
  config.bits = c.bits;
  config.kmeans_iterations = 8;
  ProductQuantizer pq;
  ASSERT_TRUE(pq.Train(data, config).ok());
  EXPECT_EQ(pq.num_segments(), c.m);
  EXPECT_EQ(pq.sub_dim(), c.dim / c.m);
  EXPECT_EQ(pq.code_bits(), c.m * static_cast<std::size_t>(c.bits));

  std::vector<std::uint8_t> code(c.m);
  std::vector<float> decoded(c.dim);
  const std::size_t ksub = pq.codebook_size();
  for (std::size_t i = 0; i < 10; ++i) {
    pq.Encode(data.Row(i), code.data());
    for (std::size_t m = 0; m < c.m; ++m) ASSERT_LT(code[m], ksub);
    pq.Decode(code.data(), decoded.data());
    // Decoded vector is not exact but must be closer than a random vector.
    const float err = L2SqrDistance(decoded.data(), data.Row(i), c.dim);
    const float baseline = L2SqrDistance(data.Row(i + 20), data.Row(i), c.dim);
    EXPECT_LT(err, baseline);
  }
}

TEST_P(PqParamTest, AdcEqualsDistanceToDecoded) {
  // PQ's estimator IS the distance to the quantized vector; the LUT path
  // must agree with explicit decode + L2 up to float error.
  const PqCase c = GetParam();
  const Matrix data = RandomData(400, c.dim, c.dim * 13 + c.bits);
  PqConfig config;
  config.num_segments = c.m;
  config.bits = c.bits;
  config.kmeans_iterations = 6;
  ProductQuantizer pq;
  ASSERT_TRUE(pq.Train(data, config).ok());

  const Matrix queries = RandomData(5, c.dim, 999);
  AlignedVector<float> luts;
  std::vector<std::uint8_t> code(c.m);
  std::vector<float> decoded(c.dim);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    pq.ComputeLookupTables(queries.Row(q), &luts);
    for (std::size_t i = 0; i < 50; ++i) {
      pq.Encode(data.Row(i), code.data());
      pq.Decode(code.data(), decoded.data());
      const float via_lut = pq.EstimateWithLuts(code.data(), luts.data());
      const float direct =
          L2SqrDistance(queries.Row(q), decoded.data(), c.dim);
      EXPECT_NEAR(via_lut, direct, 1e-2f * (1.0f + direct));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PqParamTest,
    ::testing::Values(PqCase{32, 4, 8}, PqCase{32, 8, 8}, PqCase{64, 16, 4},
                      PqCase{128, 32, 4}, PqCase{48, 12, 4}));

TEST(PqTest, EncodeBatchMatchesSingleEncode) {
  const Matrix data = RandomData(300, 32, 5);
  PqConfig config;
  config.num_segments = 8;
  config.bits = 4;
  ProductQuantizer pq;
  ASSERT_TRUE(pq.Train(data, config).ok());
  std::vector<std::uint8_t> batch;
  pq.EncodeBatch(data, &batch);
  ASSERT_EQ(batch.size(), data.rows() * 8);
  std::vector<std::uint8_t> single(8);
  for (std::size_t i = 0; i < data.rows(); i += 37) {
    pq.Encode(data.Row(i), single.data());
    for (std::size_t m = 0; m < 8; ++m) {
      EXPECT_EQ(batch[i * 8 + m], single[m]) << "row " << i << " seg " << m;
    }
  }
}

TEST(PqTest, EncodePicksNearestSubCentroid) {
  const Matrix data = RandomData(200, 16, 6);
  PqConfig config;
  config.num_segments = 4;
  config.bits = 4;
  ProductQuantizer pq;
  ASSERT_TRUE(pq.Train(data, config).ok());
  std::vector<std::uint8_t> code(4);
  for (std::size_t i = 0; i < 20; ++i) {
    pq.Encode(data.Row(i), code.data());
    for (std::size_t m = 0; m < 4; ++m) {
      const float* seg = data.Row(i) + m * 4;
      const float chosen =
          L2SqrDistance(seg, pq.sub_codebook(m).Row(code[m]), 4);
      for (std::size_t j = 0; j < pq.codebook_size(); ++j) {
        EXPECT_LE(chosen, L2SqrDistance(seg, pq.sub_codebook(m).Row(j), 4) +
                              1e-5f);
      }
    }
  }
}

TEST(PqTest, RejectsInvalidConfigs) {
  const Matrix data = RandomData(50, 30, 7);
  ProductQuantizer pq;
  PqConfig config;
  config.num_segments = 7;  // does not divide 30
  EXPECT_FALSE(pq.Train(data, config).ok());
  config.num_segments = 6;
  config.bits = 5;  // unsupported
  EXPECT_FALSE(pq.Train(data, config).ok());
  config.bits = 8;
  EXPECT_FALSE(pq.Train(Matrix(), config).ok());
}

TEST(PqTest, PackForFastScanRequires4Bits) {
  const Matrix data = RandomData(100, 16, 8);
  PqConfig config;
  config.num_segments = 4;
  config.bits = 8;
  ProductQuantizer pq;
  ASSERT_TRUE(pq.Train(data, config).ok());
  std::vector<std::uint8_t> codes;
  pq.EncodeBatch(data, &codes);
  FastScanCodes packed;
  EXPECT_EQ(pq.PackForFastScan(codes, data.rows(), &packed).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace rabitq
