// End-to-end integration tests across modules: the full paper pipeline
// (synthetic dataset -> IVF+RaBitQ -> search -> recall/ratio metrics),
// RaBitQ-vs-PQ accuracy ordering, the MSong-style PQx4fs failure mode, and
// cross-policy consistency at realistic scales (kept small enough for CI).

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.h"
#include "eval/datasets.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "index/hnsw.h"
#include "index/ivf.h"
#include "index/ivf_pq.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

struct Pipeline {
  Matrix base;
  Matrix queries;
  GroundTruth gt;
};

void BuildPipeline(const SyntheticSpec& spec, std::size_t k, Pipeline* p) {
  ASSERT_TRUE(GenerateDataset(spec, &p->base, &p->queries).ok());
  ASSERT_TRUE(ComputeGroundTruth(p->base, p->queries, k, &p->gt).ok());
}

TEST(IntegrationTest, IvfRabitqEndToEndRecall) {
  SyntheticSpec spec = SiftLikeSpec(8000, 20);
  Pipeline p;
  BuildPipeline(spec, 10, &p);

  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 64;
  ASSERT_TRUE(index.Build(p.base, ivf, RabitqConfig{}).ok());

  Rng rng(1);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 32;
  double recall = 0.0, ratio = 0.0;
  for (std::size_t q = 0; q < p.queries.rows(); ++q) {
    std::vector<Neighbor> result;
    ASSERT_TRUE(index.Search(p.queries.Row(q), params, &rng, &result).ok());
    recall += RecallAtK(p.gt, q, result, 10);
    ratio += AverageDistanceRatio(p.gt, q, result, 10);
  }
  recall /= p.queries.rows();
  ratio /= p.queries.rows();
  EXPECT_GE(recall, 0.9);
  EXPECT_LT(ratio, 1.05);
}

TEST(IntegrationTest, RabitqBeatsPqAtHalfTheCodeLength) {
  // The paper's headline: D-bit RaBitQ estimates are more accurate than
  // 2D-bit PQx4fs (M = D/2, 4 bits each). Compare average relative error
  // of the two estimators on the same data.
  SyntheticSpec spec = SiftLikeSpec(4000, 10);
  Pipeline p;
  BuildPipeline(spec, 1, &p);
  const std::size_t dim = spec.dim;

  // RaBitQ with a single global centroid (origin-centered for simplicity:
  // normalize against the dataset centroid).
  std::vector<float> centroid(dim, 0.0f);
  for (std::size_t i = 0; i < p.base.rows(); ++i) {
    for (std::size_t j = 0; j < dim; ++j) centroid[j] += p.base.At(i, j);
  }
  for (auto& c : centroid) c /= static_cast<float>(p.base.rows());

  RabitqEncoder encoder;
  ASSERT_TRUE(encoder.Init(dim, RabitqConfig{}).ok());  // D bits
  RabitqCodeStore store(encoder.total_bits());
  for (std::size_t i = 0; i < p.base.rows(); ++i) {
    ASSERT_TRUE(
        encoder.EncodeAppend(p.base.Row(i), centroid.data(), &store).ok());
  }
  store.Finalize();

  ProductQuantizer pq;  // 2D bits: M = D/2 segments x 4 bits
  PqConfig pq_config;
  pq_config.num_segments = dim / 2;
  pq_config.bits = 4;
  pq_config.kmeans_iterations = 10;
  ASSERT_TRUE(pq.Train(p.base, pq_config).ok());
  std::vector<std::uint8_t> pq_codes;
  pq.EncodeBatch(p.base, &pq_codes);

  Rng rng(2);
  RelativeErrorAccumulator rabitq_err, pq_err;
  AlignedVector<float> luts;
  AlignedVector<std::uint8_t> qluts;
  for (std::size_t q = 0; q < p.queries.rows(); ++q) {
    QuantizedQuery qq;
    ASSERT_TRUE(
        PrepareQuery(encoder, p.queries.Row(q), centroid.data(), &rng, &qq)
            .ok());
    pq.ComputeLookupTables(p.queries.Row(q), &luts);
    float scale, bias;
    QuantizeLutsToU8(luts.data(), pq.num_segments(), &qluts, &scale, &bias);
    for (std::size_t i = 0; i < p.base.rows(); ++i) {
      const float truth =
          L2SqrDistance(p.queries.Row(q), p.base.Row(i), dim);
      rabitq_err.Add(EstimateDistance(qq, store.View(i), 0.0f).dist_sq, truth);
      // PQx4fs-style estimate: u8-requantized LUT accumulation.
      std::uint32_t acc = 0;
      for (std::size_t m = 0; m < pq.num_segments(); ++m) {
        acc += qluts[m * 16 + pq_codes[i * pq.num_segments() + m]];
      }
      pq_err.Add(scale * static_cast<float>(acc) + bias, truth);
    }
  }
  EXPECT_LT(rabitq_err.Stats().average, pq_err.Stats().average)
      << "RaBitQ (D bits) must beat PQx4fs (2D bits) on average error";
}

TEST(IntegrationTest, MsongLikeDataBreaksPqButNotRabitq) {
  // Fig. 3 MSong panel: PQx4fs average relative error explodes (>50%)
  // while RaBitQ stays in single digits.
  SyntheticSpec spec = MsongLikeSpec(3000, 5);
  Pipeline p;
  BuildPipeline(spec, 1, &p);
  const std::size_t dim = spec.dim;

  std::vector<float> centroid(dim, 0.0f);
  for (std::size_t i = 0; i < p.base.rows(); ++i) {
    for (std::size_t j = 0; j < dim; ++j) centroid[j] += p.base.At(i, j);
  }
  for (auto& c : centroid) c /= static_cast<float>(p.base.rows());

  RabitqEncoder encoder;
  ASSERT_TRUE(encoder.Init(dim, RabitqConfig{}).ok());
  RabitqCodeStore store(encoder.total_bits());
  for (std::size_t i = 0; i < p.base.rows(); ++i) {
    ASSERT_TRUE(
        encoder.EncodeAppend(p.base.Row(i), centroid.data(), &store).ok());
  }

  ProductQuantizer pq;
  PqConfig pq_config;
  pq_config.num_segments = dim / 2;
  pq_config.bits = 4;
  pq_config.kmeans_iterations = 8;
  ASSERT_TRUE(pq.Train(p.base, pq_config).ok());
  std::vector<std::uint8_t> pq_codes;
  pq.EncodeBatch(p.base, &pq_codes);

  Rng rng(3);
  RelativeErrorAccumulator rabitq_err, pq_err;
  AlignedVector<float> luts;
  AlignedVector<std::uint8_t> qluts;
  for (std::size_t q = 0; q < p.queries.rows(); ++q) {
    QuantizedQuery qq;
    ASSERT_TRUE(
        PrepareQuery(encoder, p.queries.Row(q), centroid.data(), &rng, &qq)
            .ok());
    pq.ComputeLookupTables(p.queries.Row(q), &luts);
    float scale, bias;
    QuantizeLutsToU8(luts.data(), pq.num_segments(), &qluts, &scale, &bias);
    for (std::size_t i = 0; i < p.base.rows(); ++i) {
      const float truth = L2SqrDistance(p.queries.Row(q), p.base.Row(i), dim);
      rabitq_err.Add(EstimateDistance(qq, store.View(i), 0.0f).dist_sq, truth);
      std::uint32_t acc = 0;
      for (std::size_t m = 0; m < pq.num_segments(); ++m) {
        acc += qluts[m * 16 + pq_codes[i * pq.num_segments() + m]];
      }
      pq_err.Add(scale * static_cast<float>(acc) + bias, truth);
    }
  }
  EXPECT_LT(rabitq_err.Stats().average, 0.15);
  EXPECT_GT(pq_err.Stats().average, 0.3)
      << "heavy-tailed data should break PQx4fs as MSong does in the paper";
}

TEST(IntegrationTest, ErrorBoundRerankMatchesFullRerankQuality) {
  // The tuning-free error-bound policy must match a generous fixed-rerank
  // budget in recall while re-ranking fewer candidates.
  SyntheticSpec spec = SiftLikeSpec(6000, 15);
  Pipeline p;
  BuildPipeline(spec, 100, &p);

  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = 64;
  ASSERT_TRUE(index.Build(p.base, ivf, RabitqConfig{}).ok());

  IvfSearchParams bound_params;
  bound_params.k = 100;
  bound_params.nprobe = 64;
  IvfSearchParams fixed_params = bound_params;
  fixed_params.policy = RerankPolicy::kFixedCandidates;
  fixed_params.rerank_candidates = 2500;

  double bound_recall = 0.0, fixed_recall = 0.0;
  std::size_t bound_reranked = 0;
  for (std::size_t q = 0; q < p.queries.rows(); ++q) {
    Rng rng_a(300 + q), rng_b(300 + q);
    std::vector<Neighbor> rb, rf;
    IvfSearchStats stats;
    ASSERT_TRUE(
        index.Search(p.queries.Row(q), bound_params, &rng_a, &rb, &stats).ok());
    ASSERT_TRUE(index.Search(p.queries.Row(q), fixed_params, &rng_b, &rf).ok());
    bound_recall += RecallAtK(p.gt, q, rb, 100);
    fixed_recall += RecallAtK(p.gt, q, rf, 100);
    bound_reranked += stats.candidates_reranked;
  }
  bound_recall /= p.queries.rows();
  fixed_recall /= p.queries.rows();
  EXPECT_GE(bound_recall, fixed_recall - 0.02);
  EXPECT_LT(bound_reranked / p.queries.rows(), 2500u);
}

TEST(IntegrationTest, HnswAndIvfRabitqAgreeOnNeighbors) {
  SyntheticSpec spec = SiftLikeSpec(3000, 10);
  Pipeline p;
  BuildPipeline(spec, 10, &p);

  IvfRabitqIndex ivf_index;
  IvfConfig ivf;
  ivf.num_lists = 32;
  ASSERT_TRUE(ivf_index.Build(p.base, ivf, RabitqConfig{}).ok());
  HnswIndex hnsw;
  HnswConfig hnsw_config;
  hnsw_config.m = 16;
  hnsw_config.ef_construction = 120;
  ASSERT_TRUE(hnsw.Build(p.base, hnsw_config).ok());

  Rng rng(4);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 32;
  for (std::size_t q = 0; q < p.queries.rows(); ++q) {
    std::vector<Neighbor> ivf_result, hnsw_result;
    ASSERT_TRUE(
        ivf_index.Search(p.queries.Row(q), params, &rng, &ivf_result).ok());
    ASSERT_TRUE(hnsw.Search(p.queries.Row(q), 10, 200, &hnsw_result).ok());
    const double ivf_recall = RecallAtK(p.gt, q, ivf_result, 10);
    const double hnsw_recall = RecallAtK(p.gt, q, hnsw_result, 10);
    EXPECT_GE(ivf_recall, 0.7) << "query " << q;
    EXPECT_GE(hnsw_recall, 0.7) << "query " << q;
  }
}

TEST(IntegrationTest, FhtRotatorMatchesDenseAccuracy) {
  // Extension check: the O(B log B) Hadamard rotator delivers the same
  // estimation quality as the dense rotation.
  SyntheticSpec spec = SiftLikeSpec(2000, 5);
  Pipeline p;
  BuildPipeline(spec, 1, &p);
  const std::size_t dim = spec.dim;

  auto mean_error = [&](RotatorKind kind) {
    RabitqConfig config;
    config.rotator = kind;
    RabitqEncoder encoder;
    EXPECT_TRUE(encoder.Init(dim, config).ok());
    RabitqCodeStore store(encoder.total_bits());
    for (std::size_t i = 0; i < p.base.rows(); ++i) {
      EXPECT_TRUE(encoder.EncodeAppend(p.base.Row(i), nullptr, &store).ok());
    }
    Rng rng(5);
    RelativeErrorAccumulator err;
    for (std::size_t q = 0; q < p.queries.rows(); ++q) {
      QuantizedQuery qq;
      EXPECT_TRUE(
          PrepareQuery(encoder, p.queries.Row(q), nullptr, &rng, &qq).ok());
      for (std::size_t i = 0; i < p.base.rows(); ++i) {
        err.Add(EstimateDistance(qq, store.View(i), 0.0f).dist_sq,
                L2SqrDistance(p.queries.Row(q), p.base.Row(i), dim));
      }
    }
    return err.Stats().average;
  };
  const double dense = mean_error(RotatorKind::kDense);
  const double fht = mean_error(RotatorKind::kFht);
  EXPECT_LT(fht, dense * 1.3) << "FHT rotator should be competitive";
  EXPECT_LT(fht, 0.2);
}

}  // namespace
}  // namespace rabitq
