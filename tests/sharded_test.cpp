// Scatter-gather sharding tests: bit-identical result parity between a
// ShardedIndex (any shard count, shared clustering) and the single-shard
// IvfRabitqIndex, exact-mode agreement with the brute-force oracle under
// deletes and duplicate-distance ties, engine SearchBatch parity, round-
// robin id placement, and the sharded snapshot (manifest + per-shard blob)
// round trip including single-file v1/v2 fallback. The shard count of the
// "sharded" variants honors the SHARDS env var so the CI matrix can sweep
// it (SHARDS=1 and SHARDS=4).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/search_engine.h"
#include "index/brute_force.h"
#include "index/ivf.h"
#include "index/sharded.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

std::size_t EnvShards(std::size_t fallback) {
  const char* value = std::getenv("SHARDS");
  if (value == nullptr) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

// Data with exact duplicate rows, so distance ties are guaranteed: the last
// `dupes` rows copy the first `dupes` rows verbatim.
Matrix DataWithDuplicates(std::size_t n, std::size_t dim, std::size_t dupes,
                          std::uint64_t seed) {
  Matrix data = ClusteredData(n, dim, 10, seed);
  for (std::size_t i = 0; i < dupes; ++i) {
    std::copy_n(data.Row(i), dim, data.Row(n - dupes + i));
  }
  return data;
}

void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b,
                         const char* what = "") {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second, b[i].second) << what << " rank " << i;
    EXPECT_EQ(a[i].first, b[i].first) << what << " rank " << i;
  }
}

// Exact top-k over the live rows, with the library's (dist, id) tie order.
std::vector<Neighbor> BruteForceLive(const Matrix& data, const float* query,
                                     std::size_t k,
                                     const std::vector<bool>& alive) {
  TopKHeap heap(k);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    if (!alive[i]) continue;
    heap.Push(L2SqrDistance(data.Row(i), query, data.cols()),
              static_cast<std::uint32_t>(i));
  }
  return heap.ExtractSorted();
}

class ShardedTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 700;
  static constexpr std::size_t kDim = 24;
  static constexpr std::size_t kLists = 12;
  static constexpr std::size_t kDupes = 60;
  static constexpr std::size_t kNumQueries = 16;

  void SetUp() override {
    data_ = DataWithDuplicates(kN, kDim, kDupes, 31);
    queries_ = ClusteredData(kNumQueries, kDim, 10, 32);
  }

  ShardedIndex BuildSharded(std::size_t num_shards,
                            ShardClustering clustering,
                            const Matrix& data) {
    ShardedIndex index;
    ShardedConfig config;
    config.num_shards = num_shards;
    config.clustering = clustering;
    config.ivf.num_lists = kLists;
    EXPECT_TRUE(index.Build(data, config).ok());
    return index;
  }

  IvfRabitqIndex BuildSingle(const Matrix& data) {
    IvfRabitqIndex index;
    IvfConfig ivf;
    ivf.num_lists = kLists;
    EXPECT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
    return index;
  }

  Matrix data_;
  Matrix queries_;
};

// The tentpole acceptance criterion: under shared clustering, scatter-gather
// search over any shard count returns BIT-IDENTICAL results to the plain
// single-shard index -- same ids, same distances -- for every re-rank
// policy, both estimator paths, duplicate-distance ties included.
TEST_F(ShardedTest, MatchesSingleShardBitIdenticallyAllPolicies) {
  const IvfRabitqIndex single = BuildSingle(data_);
  std::vector<IvfSearchParams> param_sets;
  for (const RerankPolicy policy :
       {RerankPolicy::kErrorBound, RerankPolicy::kFixedCandidates,
        RerankPolicy::kNone}) {
    for (const bool batch : {true, false}) {
      IvfSearchParams params;
      params.k = 10;
      params.nprobe = 6;
      params.policy = policy;
      params.rerank_candidates = 40;  // < candidate pool: budget split matters
      params.use_batch_estimator = batch;
      param_sets.push_back(params);
    }
  }

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}, EnvShards(4)}) {
    const ShardedIndex sharded =
        BuildSharded(shards, ShardClustering::kShared, data_);
    ASSERT_EQ(sharded.num_shards(), shards);
    ASSERT_EQ(sharded.size(), single.size());
    for (const IvfSearchParams& params : param_sets) {
      for (std::size_t q = 0; q < kNumQueries; ++q) {
        const std::uint64_t seed = 9000 + q;
        std::vector<Neighbor> want, got;
        ASSERT_TRUE(single.Search(queries_.Row(q), params, seed, &want).ok());
        ASSERT_TRUE(sharded.Search(queries_.Row(q), params, seed, &got).ok());
        ExpectSameNeighbors(want, got, "sharded-vs-single");
      }
    }
  }
}

// Property test: random shard counts and random deletes (mirrored into the
// single-shard index), exhaustive settings -> sharded results equal BOTH
// the single-shard index and the brute-force oracle over the live set,
// under the exact policies; kNone additionally matches single-shard and
// never returns a deleted id.
TEST_F(ShardedTest, DeletesAndTiesMatchSingleShardAndOracle) {
  Rng pick(77);
  for (const std::size_t shards :
       {std::size_t{2}, EnvShards(4), std::size_t{5}}) {
    IvfRabitqIndex single = BuildSingle(data_);
    ShardedIndex sharded = BuildSharded(shards, ShardClustering::kShared, data_);
    std::vector<bool> alive(kN, true);
    for (std::size_t i = 0; i < kN / 3; ++i) {
      const std::uint32_t id = static_cast<std::uint32_t>(pick.UniformInt(kN));
      if (!alive[id]) continue;
      ASSERT_TRUE(single.Delete(id).ok());
      ASSERT_TRUE(sharded.Delete(id).ok());
      alive[id] = false;
    }
    ASSERT_EQ(sharded.live_size(), single.live_size());
    ASSERT_EQ(sharded.num_tombstones(), single.num_tombstones());

    // Exhaustive settings: full probe, never prune (huge eps0 override) /
    // re-rank everything -- the result must be the exact live top-k.
    IvfSearchParams bound;
    bound.k = 10;
    bound.nprobe = kLists;
    bound.epsilon0_override = 50.0f;
    IvfSearchParams fixed = bound;
    fixed.policy = RerankPolicy::kFixedCandidates;
    fixed.rerank_candidates = kN;
    IvfSearchParams none = bound;
    none.policy = RerankPolicy::kNone;

    for (std::size_t q = 0; q < kNumQueries; ++q) {
      const std::uint64_t seed = 400 + q;
      const auto oracle = BruteForceLive(data_, queries_.Row(q), 10, alive);
      for (const IvfSearchParams* params : {&bound, &fixed}) {
        std::vector<Neighbor> got, want;
        ASSERT_TRUE(
            sharded.Search(queries_.Row(q), *params, seed, &got).ok());
        ASSERT_TRUE(single.Search(queries_.Row(q), *params, seed, &want).ok());
        ExpectSameNeighbors(want, got, "exhaustive sharded-vs-single");
        ExpectSameNeighbors(oracle, got, "exhaustive sharded-vs-oracle");
      }
      std::vector<Neighbor> got, want;
      ASSERT_TRUE(sharded.Search(queries_.Row(q), none, seed, &got).ok());
      ASSERT_TRUE(single.Search(queries_.Row(q), none, seed, &want).ok());
      ExpectSameNeighbors(want, got, "kNone sharded-vs-single");
      for (const Neighbor& nb : got) {
        EXPECT_TRUE(alive[nb.second]) << "deleted id returned";
      }
    }
  }
}

// Independent per-shard clustering cannot be bit-identical to the single
// index (different centroids), but exhaustive exact re-ranking still has to
// reproduce the oracle exactly.
TEST_F(ShardedTest, PerShardClusteringExhaustiveMatchesOracle) {
  const ShardedIndex sharded =
      BuildSharded(EnvShards(4), ShardClustering::kPerShard, data_);
  std::vector<bool> alive(kN, true);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = kLists;
  params.epsilon0_override = 50.0f;
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    const auto oracle = BruteForceLive(data_, queries_.Row(q), 10, alive);
    std::vector<Neighbor> got;
    ASSERT_TRUE(sharded.Search(queries_.Row(q), params, 600 + q, &got).ok());
    ExpectSameNeighbors(oracle, got, "per-shard exhaustive");
  }
}

// Engine parity: SearchBatch over a sharded engine is bit-identical to the
// sequential ShardedIndex::Search with the engine's per-query seed stream,
// and (under shared clustering) to the single-shard sequential reference.
TEST_F(ShardedTest, EngineSearchBatchMatchesSequential) {
  constexpr std::uint64_t kSeedBase = 121;
  const IvfRabitqIndex single = BuildSingle(data_);
  ShardedIndex sharded =
      BuildSharded(EnvShards(4), ShardClustering::kShared, data_);

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 6;

  std::vector<std::vector<Neighbor>> reference(kNumQueries);
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    ASSERT_TRUE(sharded
                    .Search(queries_.Row(i), params,
                            SearchEngine::QuerySeed(kSeedBase, i),
                            &reference[i])
                    .ok());
  }

  EngineConfig config;
  config.num_threads = 4;
  SearchEngine engine(std::move(sharded), config);
  std::vector<std::vector<Neighbor>> results;
  IvfSearchStats agg;
  ASSERT_TRUE(engine
                  .SearchBatch(queries_.data(), kNumQueries, params, kSeedBase,
                               &results, &agg)
                  .ok());
  ASSERT_EQ(results.size(), kNumQueries);
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    ExpectSameNeighbors(results[i], reference[i], "engine-vs-sequential");
    std::vector<Neighbor> single_ref;
    ASSERT_TRUE(single
                    .Search(queries_.Row(i), params,
                            SearchEngine::QuerySeed(kSeedBase, i), &single_ref)
                    .ok());
    ExpectSameNeighbors(results[i], single_ref, "engine-vs-single-shard");
  }
  EXPECT_GT(agg.codes_estimated, 0u);

  // Async path with explicit seeds agrees too.
  for (std::size_t i = 0; i < 8; ++i) {
    EngineResult result =
        engine
            .SubmitAsync(queries_.Row(i), params,
                         SearchEngine::QuerySeed(kSeedBase, i))
            .get();
    ASSERT_TRUE(result.status.ok());
    ExpectSameNeighbors(result.neighbors, reference[i], "async-vs-sequential");
  }
}

// Round-robin id placement and the mutation surface: ids hash to id % S,
// Add assigns dense global ids, Update keeps id and shard, Delete/Update on
// missing ids fail with NotFound.
TEST_F(ShardedTest, IdPlacementAndMutations) {
  const std::size_t S = 3;
  ShardedIndex index = BuildSharded(S, ShardClustering::kShared, data_);
  for (const std::uint32_t id : {0u, 1u, 2u, 3u, 100u, 699u}) {
    std::uint32_t shard = 0;
    ASSERT_TRUE(index.TryShardOf(id, &shard));
    EXPECT_EQ(shard, id % S);
  }
  std::uint32_t shard = 0;
  EXPECT_FALSE(index.TryShardOf(static_cast<std::uint32_t>(kN), &shard));

  std::vector<float> vec(kDim, 42.0f);
  std::uint32_t id = 0;
  ASSERT_TRUE(index.Add(vec.data(), &id).ok());
  EXPECT_EQ(id, kN);
  ASSERT_TRUE(index.TryShardOf(id, &shard));
  EXPECT_EQ(shard, id % S);
  EXPECT_FALSE(index.IsDeleted(id));
  EXPECT_EQ(index.size(), kN + 1);

  // The fresh vector is findable at ~zero distance, under its global id.
  IvfSearchParams one;
  one.k = 1;
  one.nprobe = kLists;
  std::vector<Neighbor> out;
  ASSERT_TRUE(index.Search(vec.data(), one, 5, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, id);
  EXPECT_NEAR(out[0].first, 0.0f, 1e-4f);

  // Update keeps id and shard; the new location wins, the old one loses.
  std::vector<float> moved(kDim, -37.0f);
  ASSERT_TRUE(index.Update(id, moved.data()).ok());
  std::uint32_t shard_after = 0;
  ASSERT_TRUE(index.TryShardOf(id, &shard_after));
  EXPECT_EQ(shard_after, shard);
  ASSERT_TRUE(index.Search(moved.data(), one, 6, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, id);

  ASSERT_TRUE(index.Delete(id).ok());
  EXPECT_TRUE(index.IsDeleted(id));
  EXPECT_EQ(index.Delete(id).code(), StatusCode::kNotFound);
  EXPECT_EQ(index.Update(id, vec.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ(index.Delete(kN + 100).code(), StatusCode::kNotFound);

  // Compaction across shards drains the tombstones.
  ASSERT_TRUE(index.Compact().ok());
  EXPECT_EQ(index.num_tombstones(), 0u);

  // k == 0 is rejected for every policy (including kFixedCandidates, whose
  // shard pass internally rewrites k).
  for (const RerankPolicy policy :
       {RerankPolicy::kErrorBound, RerankPolicy::kFixedCandidates,
        RerankPolicy::kNone}) {
    IvfSearchParams zero;
    zero.k = 0;
    zero.policy = policy;
    EXPECT_FALSE(index.Search(vec.data(), zero, 1, &out).ok());
  }
}

TEST_F(ShardedTest, BuildRejectsBadConfigs) {
  ShardedIndex index;
  ShardedConfig config;
  config.num_shards = 0;
  EXPECT_FALSE(index.Build(data_, config).ok());
  config.num_shards = kN + 1;  // more shards than vectors
  EXPECT_FALSE(index.Build(data_, config).ok());
  config.num_shards = ShardedIndex::kMaxShards + 1;
  EXPECT_FALSE(index.Build(data_, config).ok());
}

// Sharded snapshot round trip: mutate (deletes + updates + adds), save to a
// manifest + per-shard blobs, reload, and require bit-identical results and
// accounting. Also: a single-FILE v2 snapshot loads into a 1-shard
// configuration through the same entry point.
TEST_F(ShardedTest, ShardedSnapshotRoundTripsBitIdentically) {
  const std::string dir = ::testing::TempDir() + "/sharded_snapshot";
  std::filesystem::remove_all(dir);

  ShardedIndex index = BuildSharded(3, ShardClustering::kShared, data_);
  Rng rng(5);
  std::vector<float> vec(kDim);
  for (std::uint32_t id = 0; id < kN; id += 7) {
    ASSERT_TRUE(index.Delete(id).ok());
  }
  for (std::uint32_t id = 1; id < kN; id += 97) {
    if (id % 7 == 0) continue;  // deleted above
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian()) * 2.0f;
    ASSERT_TRUE(index.Update(id, vec.data()).ok());
  }
  for (int i = 0; i < 15; ++i) {
    for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
    ASSERT_TRUE(index.Add(vec.data()).ok());
  }
  ASSERT_GT(index.num_tombstones(), 0u);

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = kLists;
  std::vector<std::vector<Neighbor>> before(kNumQueries);
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    ASSERT_TRUE(
        index.Search(queries_.Row(q), params, 800 + q, &before[q]).ok());
  }

  ASSERT_TRUE(index.Save(dir).ok());
  ASSERT_TRUE(std::filesystem::exists(dir + "/MANIFEST"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/shard_0000.rbq"));
  ASSERT_TRUE(std::filesystem::exists(dir + "/shard_0002.rbq"));

  ShardedIndex loaded;
  ASSERT_TRUE(loaded.Load(dir).ok());
  EXPECT_EQ(loaded.num_shards(), 3u);
  EXPECT_EQ(loaded.size(), index.size());
  EXPECT_EQ(loaded.live_size(), index.live_size());
  EXPECT_EQ(loaded.num_tombstones(), index.num_tombstones());
  for (std::uint32_t id = 0; id < index.size(); ++id) {
    EXPECT_EQ(loaded.IsDeleted(id), index.IsDeleted(id)) << "id " << id;
  }
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    std::vector<Neighbor> after;
    ASSERT_TRUE(
        loaded.Search(queries_.Row(q), params, 800 + q, &after).ok());
    ExpectSameNeighbors(before[q], after, "snapshot round trip");
  }

  // The reloaded index keeps mutating: compaction drains the restored
  // tombstones without changing results.
  ASSERT_TRUE(loaded.Compact().ok());
  EXPECT_EQ(loaded.num_tombstones(), 0u);
  for (std::size_t q = 0; q < kNumQueries; ++q) {
    std::vector<Neighbor> after;
    ASSERT_TRUE(
        loaded.Search(queries_.Row(q), params, 800 + q, &after).ok());
    ExpectSameNeighbors(before[q], after, "post-compaction");
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedTest, SingleFileSnapshotLoadsAsOneShard) {
  const std::string path = ::testing::TempDir() + "/single_file.rbq";
  IvfRabitqIndex single = BuildSingle(data_);
  ASSERT_TRUE(single.Save(path).ok());

  ShardedIndex loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.num_shards(), 1u);
  EXPECT_EQ(loaded.size(), kN);

  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 6;
  for (std::size_t q = 0; q < 8; ++q) {
    std::vector<Neighbor> want, got;
    ASSERT_TRUE(single.Search(queries_.Row(q), params, 70 + q, &want).ok());
    ASSERT_TRUE(loaded.Search(queries_.Row(q), params, 70 + q, &got).ok());
    ExpectSameNeighbors(want, got, "single-file fallback");
  }
  std::remove(path.c_str());
}

// FromSingle wraps a built monolith index without disturbing it: 1-shard
// scatter-gather equals the wrapped index's own results.
TEST_F(ShardedTest, FromSingleIsTransparent) {
  IvfRabitqIndex single = BuildSingle(data_);
  IvfSearchParams params;
  params.k = 10;
  params.nprobe = 6;
  std::vector<std::vector<Neighbor>> want(8);
  for (std::size_t q = 0; q < 8; ++q) {
    ASSERT_TRUE(single.Search(queries_.Row(q), params, 50 + q, &want[q]).ok());
  }
  const ShardedIndex wrapped = ShardedIndex::FromSingle(std::move(single));
  EXPECT_EQ(wrapped.num_shards(), 1u);
  EXPECT_EQ(wrapped.size(), kN);
  for (std::size_t q = 0; q < 8; ++q) {
    std::vector<Neighbor> got;
    ASSERT_TRUE(wrapped.Search(queries_.Row(q), params, 50 + q, &got).ok());
    ExpectSameNeighbors(want[q], got, "FromSingle");
  }
}

}  // namespace
}  // namespace rabitq
