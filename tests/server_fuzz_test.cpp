// Frame fuzzer for the wire protocol: the server must fail CLOSED on
// anything that is not a well-formed frame -- truncated frames, single-bit
// corruption anywhere in the frame or its CRC footer, oversized body_len
// claims, response-flagged "requests" and raw garbage all drop the
// connection WITHOUT a response and WITHOUT taking the server down. The
// dual contract is also pinned: a frame that passes framing but carries a
// malformed body gets a first-class InvalidArgument response and the
// connection keeps serving.
//
// Everything here drives the real server over real sockets with hand-built
// byte buffers (net.h + protocol.h primitives) -- the same code paths a
// hostile peer would hit.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/net.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/prng.h"

namespace rabitq {
namespace server {
namespace {

class ServerFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerConfig config;
    config.port = 0;
    // A short io timeout bounds how long the server waits for the rest of a
    // truncated frame -- the fuzz cases rely on it to observe the drop.
    config.io_timeout_ms = 100;
    server_ = std::make_unique<Server>(config);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    server_->Stop();
    server_->Wait();
  }

  std::uint16_t port() const { return server_->port(); }

  /// Sends raw bytes on a fresh connection and then reads. Returns true iff
  /// the server sent ANY byte back before closing. Write failures are fine
  /// (the server may legitimately drop us mid-send).
  bool SendRawAndGotResponse(const void* data, std::size_t len) {
    Socket socket;
    if (!ConnectTcp("127.0.0.1", port(), &socket).ok()) {
      ADD_FAILURE() << "server stopped accepting connections";
      return false;
    }
    (void)WriteFull(socket.fd(), data, len);
    std::uint8_t byte = 0;
    return ReadFull(socket.fd(), &byte, 1).ok();
  }

  /// Reads and validates one response frame off `fd`; returns false on any
  /// framing failure. On success `*body` holds the response payload.
  static bool ReadResponseFrame(int fd, FrameHeader* header,
                                std::vector<std::uint8_t>* body) {
    std::uint8_t head[kFrameHeaderSize];
    if (!ReadFull(fd, head, sizeof(head)).ok()) return false;
    if (!DecodeFrameHeader(head, header).ok()) return false;
    std::vector<std::uint8_t> frame(kFrameHeaderSize + header->body_len);
    std::memcpy(frame.data(), head, sizeof(head));
    if (header->body_len > 0 &&
        !ReadFull(fd, frame.data() + kFrameHeaderSize, header->body_len)
             .ok()) {
      return false;
    }
    std::uint8_t crc_bytes[4];
    if (!ReadFull(fd, crc_bytes, sizeof(crc_bytes)).ok()) return false;
    std::uint32_t crc = 0;
    std::memcpy(&crc, crc_bytes, sizeof(crc));
    if (!CheckFrameCrc(frame.data(), frame.size(), crc).ok()) return false;
    body->assign(frame.begin() + kFrameHeaderSize, frame.end());
    return true;
  }

  /// Sends one well-framed request and expects a first-class error status
  /// back on a connection that stays open.
  void ExpectErrorResponse(MsgType type, const std::string& body,
                           const char* what) {
    Socket socket;
    ASSERT_TRUE(ConnectTcp("127.0.0.1", port(), &socket).ok());
    std::string frame;
    EncodeFrame(static_cast<std::uint16_t>(type), 21, body, &frame);
    ASSERT_TRUE(WriteFull(socket.fd(), frame.data(), frame.size()).ok());
    FrameHeader header;
    std::vector<std::uint8_t> response;
    ASSERT_TRUE(ReadResponseFrame(socket.fd(), &header, &response))
        << what << " dropped the connection (or crashed the server)";
    WireReader r(response.data(), response.size());
    WireStatus status;
    ASSERT_TRUE(DecodeStatus(&r, &status)) << what;
    EXPECT_FALSE(status.ok()) << what;
  }

  /// The all-clear after a fuzzing pass: a real client still round-trips.
  void ExpectServerStillServes() {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok())
        << "server died under fuzzing";
    EXPECT_TRUE(client.Ping().ok());
    std::vector<std::string> names;
    EXPECT_TRUE(client.ListCollections(&names).ok());
  }

  std::unique_ptr<Server> server_;
};

/// A small, valid request frame with a non-empty body (stats for "x").
std::string ValidStatsFrame() {
  std::string body;
  WireWriter w(&body);
  w.String("x");
  w.U8(1);
  std::string frame;
  EncodeFrame(static_cast<std::uint16_t>(MsgType::kStats), 7, body, &frame);
  return frame;
}

TEST_F(ServerFuzzTest, TruncatedFramesGetNoResponse) {
  const std::string frame = ValidStatsFrame();
  // Cut inside the header, at the header boundary, inside the body and
  // inside the CRC footer.
  const std::size_t cuts[] = {1, 7, 19, 20, 23, frame.size() - 2};
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, frame.size());
    EXPECT_FALSE(SendRawAndGotResponse(frame.data(), cut))
        << "server answered a frame truncated at byte " << cut;
  }
  ExpectServerStillServes();
}

TEST_F(ServerFuzzTest, SingleBitCorruptionAnywhereGetsNoResponse) {
  const std::string frame = ValidStatsFrame();
  // One flip per byte covers every field: magic, version, type, request_id,
  // body_len, the body and the CRC footer itself. Every one must kill the
  // frame -- CRC-32 catches all single-bit errors, and the header fields it
  // protects are cross-checked before the body is even read.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string corrupt = frame;
    corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << (i % 8)));
    EXPECT_FALSE(SendRawAndGotResponse(corrupt.data(), corrupt.size()))
        << "server answered a frame with bit " << (i % 8) << " of byte " << i
        << " flipped";
  }
  ExpectServerStillServes();
}

TEST_F(ServerFuzzTest, OversizedBodyLenIsRejectedBeforeAllocation) {
  // A header claiming a body far past kMaxFrameBody, followed by a little
  // garbage. The server must reject on the header alone -- never try to
  // read (or allocate) the claimed 2 GiB.
  std::string frame;
  {
    std::string valid;
    EncodeFrame(static_cast<std::uint16_t>(MsgType::kPing), 1, std::string(),
                &valid);
    frame.assign(valid, 0, kFrameHeaderSize);
  }
  const std::uint32_t huge = 0x7FFFFFFFu;
  std::memcpy(frame.data() + 16, &huge, sizeof(huge));
  frame.append(64, '\0');
  EXPECT_FALSE(SendRawAndGotResponse(frame.data(), frame.size()));
  ExpectServerStillServes();
}

TEST_F(ServerFuzzTest, ResponseFlaggedRequestIsDropped) {
  // A CRC-valid frame whose type claims to BE a response: nothing a client
  // should ever send, so the server drops it as a framing error.
  std::string frame;
  EncodeFrame(static_cast<std::uint16_t>(MsgType::kPing) | kResponseFlag, 1,
              std::string(), &frame);
  EXPECT_FALSE(SendRawAndGotResponse(frame.data(), frame.size()));
  ExpectServerStillServes();
}

TEST_F(ServerFuzzTest, RandomGarbageNeverElicitsAResponse) {
  Rng rng(123);
  for (int round = 0; round < 32; ++round) {
    std::vector<std::uint8_t> garbage(1 + rng.UniformInt(200));
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.UniformInt(256));
    }
    EXPECT_FALSE(SendRawAndGotResponse(garbage.data(), garbage.size()))
        << "round " << round;
  }
  ExpectServerStillServes();
}

// The other half of the fail-closed contract: a frame that PASSES framing
// but carries a body the handler cannot parse is answered with a
// first-class InvalidArgument -- and the connection stays usable.
TEST_F(ServerFuzzTest, MalformedBodiesGetInvalidArgumentWithoutDropping) {
  const MsgType types[] = {MsgType::kCreateCollection, MsgType::kAdd,
                           MsgType::kDelete, MsgType::kUpdate,
                           MsgType::kSearch, MsgType::kBatchSearch,
                           MsgType::kSnapshot, MsgType::kStats};
  Socket socket;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", port(), &socket).ok());
  std::uint64_t request_id = 1;
  Rng rng(7);
  for (const MsgType type : types) {
    std::string body(1 + rng.UniformInt(32), '\0');
    for (auto& c : body) {
      c = static_cast<char>(rng.UniformInt(256));
    }
    std::string frame;
    EncodeFrame(static_cast<std::uint16_t>(type), request_id, body, &frame);
    ASSERT_TRUE(WriteFull(socket.fd(), frame.data(), frame.size()).ok());

    FrameHeader header;
    std::vector<std::uint8_t> response;
    ASSERT_TRUE(ReadResponseFrame(socket.fd(), &header, &response))
        << MsgTypeName(type) << " with a garbage body dropped the connection";
    EXPECT_EQ(header.type, static_cast<std::uint16_t>(type) | kResponseFlag);
    EXPECT_EQ(header.request_id, request_id);
    WireReader r(response.data(), response.size());
    WireStatus status;
    ASSERT_TRUE(DecodeStatus(&r, &status));
    // Usually InvalidArgument ("malformed ... body"); garbage that happens
    // to parse as a valid shape may earn NotFound instead. Either way it is
    // a first-class error RESPONSE, never a success and never a drop.
    EXPECT_FALSE(status.ok()) << MsgTypeName(type);
    ++request_id;
  }

  // Unknown message types are likewise answered, not dropped.
  std::string frame;
  EncodeFrame(/*type=*/999, request_id, std::string(), &frame);
  ASSERT_TRUE(WriteFull(socket.fd(), frame.data(), frame.size()).ok());
  FrameHeader header;
  std::vector<std::uint8_t> response;
  ASSERT_TRUE(ReadResponseFrame(socket.fd(), &header, &response));
  WireReader r(response.data(), response.size());
  WireStatus status;
  ASSERT_TRUE(DecodeStatus(&r, &status));
  EXPECT_EQ(status.ToStatus().code(), StatusCode::kUnimplemented);

  // Same connection, still alive: a valid ping round-trips on it.
  std::string ping;
  EncodeFrame(static_cast<std::uint16_t>(MsgType::kPing), ++request_id,
              std::string(), &ping);
  ASSERT_TRUE(WriteFull(socket.fd(), ping.data(), ping.size()).ok());
  ASSERT_TRUE(ReadResponseFrame(socket.fd(), &header, &response));
  WireReader pr(response.data(), response.size());
  ASSERT_TRUE(DecodeStatus(&pr, &status));
  EXPECT_TRUE(status.ok());
}

// Integer-overflow probes: size arithmetic on attacker-controlled counts
// must be overflow-safe, not just bounds-checked. Each case below is a
// frame that previously multiplied or added its way past a check.

TEST_F(ServerFuzzTest, CreateWithOverflowingSizeClaimIsRejected) {
  // rows = dim = 2^31: rows * dim * sizeof(float) wraps uint64 to 0, which
  // an equality check against an empty remainder would wave through -- and
  // the handler would then attempt a ~2^62-float allocation.
  std::string body;
  WireWriter w(&body);
  w.String("c");
  WireCollectionSpec spec;
  spec.dim = 1u << 31;
  EncodeCollectionSpec(spec, &w);
  w.U32(1u << 31);  // rows
  ExpectErrorResponse(MsgType::kCreateCollection, body,
                      "create with wrapping rows*dim");
  ExpectServerStillServes();
}

TEST_F(ServerFuzzTest, BatchSearchWithOverflowingSizeClaimIsRejected) {
  std::string body;
  WireWriter w(&body);
  w.String("c");
  EncodeSearchOptions(WireSearchOptions{}, &w);
  w.U32(1u << 31);  // num
  w.U32(1u << 31);  // dim
  ExpectErrorResponse(MsgType::kBatchSearch, body,
                      "batch_search with wrapping num*dim");
  ExpectServerStillServes();
}

TEST_F(ServerFuzzTest, SearchWithOverflowingFilterRangeIsRejected) {
  // filter_num_ids near 2^64 makes (num_ids + 63) / 64 wrap to 0, so a
  // zero-word bitmap used to satisfy the coverage check and hand the engine
  // a null bitmap claiming to span every id.
  std::string body;
  WireWriter w(&body);
  w.String("c");
  WireSearchOptions options;
  options.filter_kind = 1;
  options.filter_num_ids = std::numeric_limits<std::uint64_t>::max();
  EncodeSearchOptions(options, &w);
  w.U32(0);  // dim (never reached; the options decode must fail first)
  ExpectErrorResponse(MsgType::kSearch, body,
                      "search with wrapping filter_num_ids");
  ExpectServerStillServes();
}

TEST(ServerFrameBudgetTest, ClaimsPastTheFrameMemoryBudgetAreDropped) {
  // A tiny budget: any frame claiming a body larger than it is refused
  // BEFORE the body is buffered (the connection drops, the server lives),
  // while small frames keep round-tripping.
  ServerConfig config;
  config.port = 0;
  config.io_timeout_ms = 100;
  config.frame_memory_budget = 1024;
  Server server(config);
  ASSERT_TRUE(server.Start().ok());

  std::string frame;
  EncodeFrame(static_cast<std::uint16_t>(MsgType::kStats), 3,
              std::string(64 * 1024, 'x'), &frame);
  Socket socket;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server.port(), &socket).ok());
  (void)WriteFull(socket.fd(), frame.data(), frame.size());
  std::uint8_t byte = 0;
  EXPECT_FALSE(ReadFull(socket.fd(), &byte, 1).ok())
      << "server buffered a body past its frame memory budget";

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  EXPECT_TRUE(client.Ping().ok());
  server.Stop();
  server.Wait();
}

// WireReader itself must never read out of bounds on adversarial payload
// decodes -- the decoders reject short buffers instead of trusting length
// prefixes (ASan in the sanitize job backs this assertion).
TEST(ServerProtocolFuzzTest, DecodersRejectTruncatedPayloads) {
  // A valid search-options payload, truncated at every length.
  WireSearchOptions options;
  options.k = 5;
  options.seed = 42;
  options.filter_kind = 1;
  options.filter_num_ids = 64;
  options.filter_words = {0xDEADBEEFu};
  std::string payload;
  WireWriter w(&payload);
  EncodeSearchOptions(options, &w);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    WireReader r(reinterpret_cast<const std::uint8_t*>(payload.data()), len);
    WireSearchOptions decoded;
    EXPECT_FALSE(DecodeSearchOptions(&r, &decoded)) << "len " << len;
  }
  // The full payload decodes; a bitmap word-count lie does not.
  {
    WireReader r(reinterpret_cast<const std::uint8_t*>(payload.data()),
                 payload.size());
    WireSearchOptions decoded;
    EXPECT_TRUE(DecodeSearchOptions(&r, &decoded));
    EXPECT_EQ(decoded.filter_words, options.filter_words);
  }

  // Same drill for the response decoder.
  SearchResponse response;
  response.status = Status::Ok();
  response.neighbors = {{0.5f, 3}};
  std::string resp_payload;
  WireWriter rw(&resp_payload);
  EncodeSearchResponse(response, &rw);
  for (std::size_t len = 0; len < resp_payload.size(); ++len) {
    WireReader r(reinterpret_cast<const std::uint8_t*>(resp_payload.data()),
                 len);
    SearchResponse decoded;
    EXPECT_FALSE(DecodeSearchResponse(&r, &decoded)) << "len " << len;
  }
}

}  // namespace
}  // namespace server
}  // namespace rabitq
