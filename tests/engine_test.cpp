// Tests for the concurrent query-serving engine: batched execution parity
// with the sequential search path (bit-identical results), multi-threaded
// stress through both SearchBatch and SubmitAsync, concurrent insert+search
// coordination, stats accounting, and error propagation.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <vector>

#include "engine/search_engine.h"
#include "index/ivf.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

Matrix ClusteredData(std::size_t n, std::size_t dim, std::size_t clusters,
                     std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(clusters, dim);
  for (std::size_t i = 0; i < centers.size(); ++i) {
    centers.data()[i] = static_cast<float>(rng.Gaussian()) * 8.0f;
  }
  Matrix data(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = rng.UniformInt(clusters);
    for (std::size_t j = 0; j < dim; ++j) {
      data.At(i, j) = centers.At(c, j) + static_cast<float>(rng.Gaussian());
    }
  }
  return data;
}

IvfRabitqIndex BuildIndex(const Matrix& data, std::size_t num_lists) {
  IvfRabitqIndex index;
  IvfConfig ivf;
  ivf.num_lists = num_lists;
  EXPECT_TRUE(index.Build(data, ivf, RabitqConfig{}).ok());
  return index;
}

// Neighbor lists must agree exactly: same ids, bit-identical distances.
void ExpectSameNeighbors(const std::vector<Neighbor>& a,
                         const std::vector<Neighbor>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].second, b[i].second) << "rank " << i;
    EXPECT_EQ(a[i].first, b[i].first) << "rank " << i;
  }
}

class EngineTestFixture : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 2000;
  static constexpr std::size_t kDim = 32;
  static constexpr std::size_t kNumQueries = 48;
  static constexpr std::uint64_t kSeedBase = 42;

  void SetUp() override {
    data_ = ClusteredData(kN, kDim, 12, 7);
    queries_ = ClusteredData(kNumQueries, kDim, 12, 8);
    params_.k = 10;
    params_.nprobe = 8;
  }

  // The sequential reference: the paper's one-query-at-a-time protocol with
  // the same per-query seed stream the engine uses.
  std::vector<std::vector<Neighbor>> SequentialReference(
      const IvfRabitqIndex& index) {
    std::vector<std::vector<Neighbor>> ref(kNumQueries);
    for (std::size_t i = 0; i < kNumQueries; ++i) {
      EXPECT_TRUE(index
                      .Search(queries_.Row(i), params_,
                              SearchEngine::QuerySeed(kSeedBase, i), &ref[i])
                      .ok());
    }
    return ref;
  }

  Matrix data_;
  Matrix queries_;
  IvfSearchParams params_;
};

TEST_F(EngineTestFixture, SearchBatchMatchesSequentialSearch) {
  IvfRabitqIndex index = BuildIndex(data_, 16);
  const auto reference = SequentialReference(index);

  EngineConfig config;
  config.num_threads = 4;
  SearchEngine engine(std::move(index), config);
  std::vector<std::vector<Neighbor>> results;
  IvfSearchStats agg;
  ASSERT_TRUE(engine
                  .SearchBatch(queries_.data(), kNumQueries, params_,
                               kSeedBase, &results, &agg)
                  .ok());
  ASSERT_EQ(results.size(), kNumQueries);
  for (std::size_t i = 0; i < kNumQueries; ++i) {
    ExpectSameNeighbors(results[i], reference[i]);
  }
  EXPECT_GT(agg.codes_estimated, 0u);
  EXPECT_GT(agg.lists_probed, 0u);
}

TEST_F(EngineTestFixture, BatchSizeOneMatchesSequentialSearch) {
  IvfRabitqIndex index = BuildIndex(data_, 16);
  const auto reference = SequentialReference(index);
  SearchEngine engine(std::move(index));
  for (std::size_t i = 0; i < 5; ++i) {
    std::vector<std::vector<Neighbor>> results;
    ASSERT_TRUE(engine
                    .SearchBatch(queries_.Row(i), 1, params_,
                                 /*seed_base=*/0, &results)
                    .ok());
    // Seed parity: batch index 0 under base QuerySeed must replay query i's
    // sequential seed, so search with the matching explicit stream.
    std::vector<Neighbor> ref;
    ASSERT_TRUE(engine.index()
                    .Search(queries_.Row(i), params_,
                            SearchEngine::QuerySeed(0, 0), &ref)
                    .ok());
    ExpectSameNeighbors(results[0], ref);
  }
}

// N producer threads x M queries each through the async micro-batching
// scheduler; every result must be bit-identical to the sequential path.
TEST_F(EngineTestFixture, MultiThreadedStressMatchesSequentialSearch) {
  IvfRabitqIndex index = BuildIndex(data_, 16);
  const auto reference = SequentialReference(index);

  EngineConfig config;
  config.num_threads = 4;
  config.max_batch = 8;
  config.batch_linger_us = 100;
  SearchEngine engine(std::move(index), config);

  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kRounds = 3;  // every producer submits all queries
  std::vector<std::vector<std::future<EngineResult>>> futures(
      kProducers * kRounds);
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t r = 0; r < kRounds; ++r) {
        auto& slot = futures[p * kRounds + r];
        slot.reserve(kNumQueries);
        for (std::size_t i = 0; i < kNumQueries; ++i) {
          // Explicit per-query seeds: results must not depend on how the
          // scheduler batches the interleaved submissions.
          slot.push_back(engine.SubmitAsync(
              queries_.Row(i), params_,
              SearchEngine::QuerySeed(kSeedBase, i)));
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (std::size_t s = 0; s < futures.size(); ++s) {
    for (std::size_t i = 0; i < kNumQueries; ++i) {
      EngineResult result = futures[s][i].get();
      ASSERT_TRUE(result.status.ok()) << result.status.ToString();
      ExpectSameNeighbors(result.neighbors, reference[i]);
    }
  }
  const EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.queries, kProducers * kRounds * kNumQueries);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_LE(stats.batches, stats.queries);
}

// Concurrent SearchBatch callers (the sync API) from several threads.
TEST_F(EngineTestFixture, ConcurrentSearchBatchCallers) {
  IvfRabitqIndex index = BuildIndex(data_, 16);
  const auto reference = SequentialReference(index);
  EngineConfig config;
  config.num_threads = 2;
  SearchEngine engine(std::move(index), config);

  constexpr std::size_t kCallers = 4;
  std::vector<Status> statuses(kCallers);
  std::vector<std::vector<std::vector<Neighbor>>> results(kCallers);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      statuses[c] = engine.SearchBatch(queries_.data(), kNumQueries, params_,
                                       kSeedBase, &results[c]);
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    ASSERT_TRUE(statuses[c].ok()) << statuses[c].ToString();
    for (std::size_t i = 0; i < kNumQueries; ++i) {
      ExpectSameNeighbors(results[c][i], reference[i]);
    }
  }
}

// Insert runs concurrently with a search workload: no crashes, every search
// succeeds, inserts all land, and inserted vectors become findable.
TEST_F(EngineTestFixture, ConcurrentInsertAndSearch) {
  SearchEngine engine(BuildIndex(data_, 16));
  constexpr std::size_t kInserts = 40;
  const Matrix new_vectors = ClusteredData(kInserts, kDim, 12, 99);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> searches_served{0};
  std::vector<std::thread> searchers;
  for (std::size_t t = 0; t < 3; ++t) {
    searchers.emplace_back([&, t] {
      std::size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        EngineResult result =
            engine.SubmitAsync(queries_.Row(i % kNumQueries), params_).get();
        ASSERT_TRUE(result.status.ok()) << result.status.ToString();
        ASSERT_FALSE(result.neighbors.empty());
        searches_served.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  std::vector<std::uint32_t> inserted_ids(kInserts);
  for (std::size_t i = 0; i < kInserts; ++i) {
    ASSERT_TRUE(engine.Insert(new_vectors.Row(i), &inserted_ids[i]).ok());
  }
  // The inserts can outrun the first async search; keep the searchers alive
  // until at least one result lands so the >0 assertion below is not a race
  // against the micro-batching linger. Deadline-bounded so a searcher
  // regression fails the test instead of hanging it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (searches_served.load(std::memory_order_relaxed) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : searchers) t.join();

  EXPECT_EQ(engine.size(), kN + kInserts);
  EXPECT_EQ(engine.epoch(), kInserts);
  EXPECT_GT(searches_served.load(), 0u);

  // Every inserted vector is now its own nearest neighbor at full probe.
  IvfSearchParams full = params_;
  full.k = 1;
  full.nprobe = engine.index().num_lists();
  for (std::size_t i = 0; i < kInserts; ++i) {
    EngineResult result =
        engine.SubmitAsync(new_vectors.Row(i), full).get();
    ASSERT_TRUE(result.status.ok());
    ASSERT_EQ(result.neighbors.size(), 1u);
    EXPECT_EQ(result.neighbors[0].second, inserted_ids[i]);
    EXPECT_NEAR(result.neighbors[0].first, 0.0f, 1e-5f);
  }
}

TEST_F(EngineTestFixture, StatsAccumulateAndReset) {
  SearchEngine engine(BuildIndex(data_, 16));
  std::vector<std::vector<Neighbor>> results;
  ASSERT_TRUE(
      engine.SearchBatch(queries_.data(), kNumQueries, params_, &results)
          .ok());
  EngineStatsSnapshot stats = engine.Stats();
  EXPECT_EQ(stats.queries, kNumQueries);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.search_errors, 0u);
  EXPECT_GT(stats.codes_estimated, 0u);
  EXPECT_GT(stats.latency_p50_us, 0.0);
  EXPECT_GE(stats.latency_p99_us, stats.latency_p50_us);
  EXPECT_GT(stats.qps, 0.0);

  engine.ResetStats();
  stats = engine.Stats();
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.latency_p50_us, 0.0);
}

TEST_F(EngineTestFixture, PerQueryErrorsPropagateWithoutPoisoningBatch) {
  SearchEngine engine(BuildIndex(data_, 16));
  IvfSearchParams bad = params_;
  bad.k = 0;  // rejected by the search path
  std::future<EngineResult> bad_future =
      engine.SubmitAsync(queries_.Row(0), bad);
  std::future<EngineResult> good_future =
      engine.SubmitAsync(queries_.Row(1), params_);
  EXPECT_FALSE(bad_future.get().status.ok());
  EngineResult good = good_future.get();
  EXPECT_TRUE(good.status.ok()) << good.status.ToString();
  EXPECT_FALSE(good.neighbors.empty());
  EXPECT_EQ(engine.Stats().search_errors, 1u);

  // Sync batch: first error is returned, healthy queries still answered.
  std::vector<std::vector<Neighbor>> results;
  EXPECT_FALSE(
      engine.SearchBatch(queries_.data(), 2, bad, &results).ok());
  ASSERT_EQ(results.size(), 2u);
}

TEST(EngineTest, LatencyHistogramQuantiles) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_EQ(hist.max_micros(), 1000.0);
  // Log-bucketed quantiles carry <= ~19% bucket error plus the bucket-edge
  // overestimate; accept a generous band around the exact quantiles.
  EXPECT_GT(hist.Quantile(0.5), 350.0);
  EXPECT_LT(hist.Quantile(0.5), 800.0);
  EXPECT_GT(hist.Quantile(0.99), 800.0);
  EXPECT_LE(hist.Quantile(0.99), 1000.0);
  // Degenerate q resolves to the first occupied bucket's upper edge.
  EXPECT_GE(hist.Quantile(0.0), 1.0);
  EXPECT_LE(hist.Quantile(0.0), 2.0);
}

TEST(EngineTest, QuerySeedStreamIsStable) {
  // The parity contract freezes the derivation: same (base, ticket) ->
  // same seed, distinct tickets -> distinct seeds.
  EXPECT_EQ(SearchEngine::QuerySeed(1, 0), SearchEngine::QuerySeed(1, 0));
  EXPECT_NE(SearchEngine::QuerySeed(1, 0), SearchEngine::QuerySeed(1, 1));
  EXPECT_NE(SearchEngine::QuerySeed(1, 0), SearchEngine::QuerySeed(2, 0));
}

}  // namespace
}  // namespace rabitq
