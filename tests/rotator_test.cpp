// Tests for the rotators: orthogonality (norm/inner-product preservation),
// inverse consistency, padding semantics, determinism, FHT power-of-two
// handling -- parameterized over both rotator kinds.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rotator.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

std::vector<float> RandomVec(std::size_t dim, Rng* rng) {
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng->Gaussian());
  return v;
}

TEST(RotatorTest, DefaultPaddedDimRoundsUpToMultipleOf64) {
  EXPECT_EQ(DefaultPaddedDim(1), 64u);
  EXPECT_EQ(DefaultPaddedDim(64), 64u);
  EXPECT_EQ(DefaultPaddedDim(65), 128u);
  EXPECT_EQ(DefaultPaddedDim(128), 128u);
  EXPECT_EQ(DefaultPaddedDim(960), 960u);
  EXPECT_EQ(DefaultPaddedDim(420), 448u);
}

struct RotatorCase {
  RotatorKind kind;
  std::size_t dim;
  std::size_t padded;
};

class RotatorParamTest : public ::testing::TestWithParam<RotatorCase> {
 protected:
  void SetUp() override {
    const RotatorCase c = GetParam();
    ASSERT_TRUE(CreateRotator(c.dim, c.padded, c.kind, 42, &rotator_).ok());
  }
  std::unique_ptr<Rotator> rotator_;
};

TEST_P(RotatorParamTest, InverseRotatePreservesNorm) {
  const RotatorCase c = GetParam();
  Rng rng(c.dim);
  const auto v = RandomVec(c.dim, &rng);
  std::vector<float> out(rotator_->padded_dim());
  rotator_->InverseRotate(v.data(), out.data());
  EXPECT_NEAR(Norm(out.data(), out.size()), Norm(v.data(), c.dim),
              1e-3f * (1.0f + Norm(v.data(), c.dim)));
}

TEST_P(RotatorParamTest, InverseRotatePreservesInnerProducts) {
  const RotatorCase c = GetParam();
  Rng rng(c.dim + 5);
  const auto a = RandomVec(c.dim, &rng);
  const auto b = RandomVec(c.dim, &rng);
  const std::size_t padded = rotator_->padded_dim();
  std::vector<float> pa(padded), pb(padded);
  rotator_->InverseRotate(a.data(), pa.data());
  rotator_->InverseRotate(b.data(), pb.data());
  EXPECT_NEAR(Dot(pa.data(), pb.data(), padded), Dot(a.data(), b.data(), c.dim),
              1e-2f * c.dim);
}

TEST_P(RotatorParamTest, RotateInvertsInverseRotate) {
  const RotatorCase c = GetParam();
  Rng rng(c.dim + 9);
  const auto v = RandomVec(c.dim, &rng);
  const std::size_t padded = rotator_->padded_dim();
  std::vector<float> inv(padded), back(padded);
  rotator_->InverseRotate(v.data(), inv.data());
  rotator_->Rotate(inv.data(), back.data());
  // P (P^T pad(v)) = pad(v): first dim entries recover v, the rest are 0.
  for (std::size_t i = 0; i < c.dim; ++i) {
    EXPECT_NEAR(back[i], v[i], 2e-3f * (1.0f + std::fabs(v[i])));
  }
  for (std::size_t i = c.dim; i < padded; ++i) {
    EXPECT_NEAR(back[i], 0.0f, 2e-3f);
  }
}

TEST_P(RotatorParamTest, DeterministicForSameSeed) {
  const RotatorCase c = GetParam();
  std::unique_ptr<Rotator> twin;
  ASSERT_TRUE(CreateRotator(c.dim, c.padded, c.kind, 42, &twin).ok());
  Rng rng(c.dim + 1);
  const auto v = RandomVec(c.dim, &rng);
  std::vector<float> a(rotator_->padded_dim()), b(twin->padded_dim());
  rotator_->InverseRotate(v.data(), a.data());
  twin->InverseRotate(v.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST_P(RotatorParamTest, DifferentSeedsGiveDifferentRotations) {
  const RotatorCase c = GetParam();
  std::unique_ptr<Rotator> other;
  ASSERT_TRUE(CreateRotator(c.dim, c.padded, c.kind, 43, &other).ok());
  Rng rng(c.dim + 2);
  const auto v = RandomVec(c.dim, &rng);
  std::vector<float> a(rotator_->padded_dim()), b(other->padded_dim());
  rotator_->InverseRotate(v.data(), a.data());
  other->InverseRotate(v.data(), b.data());
  float diff = 0.0f;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    diff += std::fabs(a[i] - b[i]);
  }
  EXPECT_GT(diff, 0.1f);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, RotatorParamTest,
    ::testing::Values(RotatorCase{RotatorKind::kDense, 64, 64},
                      RotatorCase{RotatorKind::kDense, 100, 128},
                      RotatorCase{RotatorKind::kDense, 128, 256},
                      RotatorCase{RotatorKind::kFht, 64, 64},
                      RotatorCase{RotatorKind::kFht, 100, 128},
                      RotatorCase{RotatorKind::kFht, 420, 448}));

TEST(RotatorTest, FhtRoundsPaddingToPowerOfTwo) {
  std::unique_ptr<Rotator> r;
  ASSERT_TRUE(CreateRotator(420, 448, RotatorKind::kFht, 1, &r).ok());
  EXPECT_EQ(r->padded_dim(), 512u);  // next power of two >= 448
  ASSERT_TRUE(CreateRotator(100, 128, RotatorKind::kFht, 1, &r).ok());
  EXPECT_EQ(r->padded_dim(), 128u);
}

TEST(RotatorTest, ZeroPaddedDimUsesDefault) {
  std::unique_ptr<Rotator> r;
  ASSERT_TRUE(CreateRotator(100, 0, RotatorKind::kDense, 1, &r).ok());
  EXPECT_EQ(r->padded_dim(), 128u);
}

TEST(RotatorTest, RejectsBadArguments) {
  std::unique_ptr<Rotator> r;
  EXPECT_FALSE(CreateRotator(0, 64, RotatorKind::kDense, 1, &r).ok());
  EXPECT_FALSE(CreateRotator(128, 64, RotatorKind::kDense, 1, &r).ok());
  EXPECT_FALSE(CreateRotator(64, 64, RotatorKind::kDense, 1, nullptr).ok());
}

}  // namespace
}  // namespace rabitq
