// Tests for the synthetic dataset suite: shapes, determinism, and that each
// generator produces the statistical property it claims (clustering for
// mixtures, unit norms for angular/sphere kinds, scale imbalance for the
// heavy-tailed MSong analogue, low-rank structure for correlated mixtures).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "eval/datasets.h"
#include "linalg/orthogonal.h"
#include "linalg/vector_ops.h"

namespace rabitq {
namespace {

TEST(DatasetsTest, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.n = 500;
  spec.dim = 40;
  spec.num_queries = 25;
  Matrix base, queries;
  ASSERT_TRUE(GenerateDataset(spec, &base, &queries).ok());
  EXPECT_EQ(base.rows(), 500u);
  EXPECT_EQ(base.cols(), 40u);
  EXPECT_EQ(queries.rows(), 25u);
  EXPECT_EQ(queries.cols(), 40u);
}

TEST(DatasetsTest, DeterministicForFixedSeed) {
  SyntheticSpec spec;
  spec.n = 200;
  spec.dim = 16;
  spec.seed = 9;
  Matrix a, qa, b, qb;
  ASSERT_TRUE(GenerateDataset(spec, &a, &qa).ok());
  ASSERT_TRUE(GenerateDataset(spec, &b, &qb).ok());
  EXPECT_LT(MaxAbsDiff(a, b), 1e-12f);
  EXPECT_LT(MaxAbsDiff(qa, qb), 1e-12f);
}

TEST(DatasetsTest, DifferentSeedsDiffer) {
  SyntheticSpec spec;
  spec.n = 100;
  spec.dim = 8;
  Matrix a, qa, b, qb;
  spec.seed = 1;
  ASSERT_TRUE(GenerateDataset(spec, &a, &qa).ok());
  spec.seed = 2;
  ASSERT_TRUE(GenerateDataset(spec, &b, &qb).ok());
  EXPECT_GT(MaxAbsDiff(a, b), 0.1f);
}

TEST(DatasetsTest, AngularAndSphereRowsAreUnitNorm) {
  for (const DatasetKind kind :
       {DatasetKind::kAngular, DatasetKind::kUniformSphere}) {
    SyntheticSpec spec;
    spec.kind = kind;
    spec.n = 300;
    spec.dim = 50;
    Matrix base, queries;
    ASSERT_TRUE(GenerateDataset(spec, &base, &queries).ok());
    for (std::size_t i = 0; i < base.rows(); i += 13) {
      EXPECT_NEAR(Norm(base.Row(i), spec.dim), 1.0f, 1e-4f);
    }
  }
}

TEST(DatasetsTest, HeavyTailedHasExtremeDimensionScaleImbalance) {
  SyntheticSpec spec = MsongLikeSpec(2000, 10);
  spec.dim = 64;  // smaller for test speed
  Matrix base, queries;
  ASSERT_TRUE(GenerateDataset(spec, &base, &queries).ok());
  // Per-dimension variance: max / median should be enormous (log-normal
  // scales with sigma = 2).
  std::vector<double> variance(spec.dim, 0.0);
  for (std::size_t j = 0; j < spec.dim; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < base.rows(); ++i) mean += base.At(i, j);
    mean /= base.rows();
    for (std::size_t i = 0; i < base.rows(); ++i) {
      const double d = base.At(i, j) - mean;
      variance[j] += d * d;
    }
    variance[j] /= base.rows();
  }
  std::sort(variance.begin(), variance.end());
  const double median = variance[spec.dim / 2];
  const double max = variance.back();
  EXPECT_GT(max / (median + 1e-12), 50.0);
}

TEST(DatasetsTest, CorrelatedMixtureIsLowRankDominated) {
  SyntheticSpec spec;
  spec.kind = DatasetKind::kCorrelatedMixture;
  spec.n = 800;
  spec.dim = 60;
  spec.mixing_rank = 5;
  spec.num_clusters = 10;
  Matrix base, queries;
  ASSERT_TRUE(GenerateDataset(spec, &base, &queries).ok());
  // Center the data, compute total variance and the variance explained by
  // the span of the top-5 right singular directions approximated greedily
  // via power iteration on the covariance. Cheap proxy: the covariance's
  // trace vs the energy captured by projecting onto 5 random *data* rows
  // (which lie in the latent span up to the 0.05 noise).
  std::vector<double> mean(spec.dim, 0.0);
  for (std::size_t i = 0; i < base.rows(); ++i) {
    for (std::size_t j = 0; j < spec.dim; ++j) mean[j] += base.At(i, j);
  }
  for (auto& m : mean) m /= base.rows();
  double total_energy = 0.0;
  for (std::size_t i = 0; i < base.rows(); ++i) {
    for (std::size_t j = 0; j < spec.dim; ++j) {
      const double d = base.At(i, j) - mean[j];
      total_energy += d * d;
    }
  }
  // Build an orthonormal basis from a few centered rows.
  Matrix basis(8, spec.dim);
  for (std::size_t b = 0; b < 8; ++b) {
    for (std::size_t j = 0; j < spec.dim; ++j) {
      basis.At(b, j) = base.At(b * 97 + 1, j) - static_cast<float>(mean[j]);
    }
  }
  ASSERT_TRUE(GramSchmidtRows(&basis).ok());
  double captured = 0.0;
  std::vector<float> centered(spec.dim);
  for (std::size_t i = 0; i < base.rows(); ++i) {
    for (std::size_t j = 0; j < spec.dim; ++j) {
      centered[j] = base.At(i, j) - static_cast<float>(mean[j]);
    }
    for (std::size_t b = 0; b < 8; ++b) {
      const double p = Dot(centered.data(), basis.Row(b), spec.dim);
      captured += p * p;
    }
  }
  // Rank-5 latent + tiny noise: 8 in-span directions capture most energy.
  EXPECT_GT(captured / total_energy, 0.6);
}

TEST(DatasetsTest, PaperSuiteMatchesTable3Dimensions) {
  const auto suite = PaperSuite(0.1);
  ASSERT_EQ(suite.size(), 6u);
  EXPECT_EQ(suite[0].dim, 420u);  // MSong
  EXPECT_EQ(suite[1].dim, 128u);  // SIFT
  EXPECT_EQ(suite[2].dim, 256u);  // DEEP
  EXPECT_EQ(suite[3].dim, 300u);  // Word2Vec
  EXPECT_EQ(suite[4].dim, 960u);  // GIST
  EXPECT_EQ(suite[5].dim, 150u);  // Image
  for (const auto& spec : suite) {
    EXPECT_GE(spec.n, 1000u);
    EXPECT_GE(spec.num_queries, 100u);
    EXPECT_FALSE(spec.name.empty());
  }
}

TEST(DatasetsTest, RejectsBadSpecs) {
  Matrix base, queries;
  SyntheticSpec empty;
  empty.n = 0;
  EXPECT_FALSE(GenerateDataset(empty, &base, &queries).ok());
  SyntheticSpec ok;
  EXPECT_FALSE(GenerateDataset(ok, nullptr, &queries).ok());
  EXPECT_FALSE(GenerateDataset(ok, &base, nullptr).ok());
}

}  // namespace
}  // namespace rabitq
