// Randomized property test for the paper's error-bound guarantee (Section
// 3.2, Eq. 14/16): over many (vector, query) pairs,
//   * the estimator is unbiased (Theorem 3.2): the mean signed error of the
//     <o, q> estimate is statistically zero;
//   * the true distance falls below lower_bound_sq only at a rate
//     consistent with epsilon0 -- rare at the paper's eps0 = 1.9, common at
//     a deliberately weak eps0 = 0.5 (the bound is tight, not vacuous);
//   * compacting the code store preserves every surviving code's estimate
//     bit-for-bit, so the lifecycle machinery cannot silently break
//     unbiasedness or the bound.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/estimator.h"
#include "core/query.h"
#include "core/rabitq.h"
#include "linalg/vector_ops.h"
#include "util/prng.h"

namespace rabitq {
namespace {

constexpr std::size_t kDim = 64;
constexpr std::size_t kNumVectors = 200;
constexpr std::size_t kNumQueries = 50;

class ErrorBoundPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(encoder_.Init(kDim, RabitqConfig{}).ok());
    Rng rng(31337);
    centroid_.assign(kDim, 0.0f);
    for (auto& c : centroid_) c = static_cast<float>(rng.Gaussian()) * 0.5f;
    vectors_.resize(kNumVectors, std::vector<float>(kDim));
    store_.Init(encoder_.total_bits());
    for (auto& vec : vectors_) {
      for (auto& v : vec) v = static_cast<float>(rng.Gaussian());
      ASSERT_TRUE(
          encoder_.EncodeAppend(vec.data(), centroid_.data(), &store_).ok());
    }
    store_.Finalize();
    queries_.resize(kNumQueries, std::vector<float>(kDim));
    for (auto& q : queries_) {
      for (auto& v : q) v = static_cast<float>(rng.Gaussian());
    }
  }

  // Counts lower-bound violations (true < lb) at the given eps0 and
  // accumulates the signed <o, q> estimation error.
  void Sample(float epsilon0, std::size_t* violations, std::size_t* pairs,
              double* ip_error_sum) {
    Rng rng(777);
    QuantizedQuery qq;
    for (const auto& query : queries_) {
      ASSERT_TRUE(PrepareQuery(encoder_, query.data(), centroid_.data(), &rng,
                               &qq)
                      .ok());
      for (std::size_t i = 0; i < kNumVectors; ++i) {
        const DistanceEstimate est =
            EstimateDistance(qq, store_.View(i), epsilon0);
        const float true_dist =
            L2SqrDistance(vectors_[i].data(), query.data(), kDim);
        *violations += true_dist < est.lower_bound_sq;
        ++*pairs;
        // True <o, q> on the unit sphere around the centroid.
        std::vector<float> o(kDim), qr(kDim);
        Subtract(vectors_[i].data(), centroid_.data(), o.data(), kDim);
        Subtract(query.data(), centroid_.data(), qr.data(), kDim);
        const float no = Norm(o.data(), kDim), nq = Norm(qr.data(), kDim);
        if (no > 0.0f && nq > 0.0f) {
          const float true_ip = Dot(o.data(), qr.data(), kDim) / (no * nq);
          *ip_error_sum += est.ip - true_ip;
        }
      }
    }
  }

  RabitqEncoder encoder_;
  std::vector<float> centroid_;
  std::vector<std::vector<float>> vectors_;
  std::vector<std::vector<float>> queries_;
  RabitqCodeStore store_;
};

// The violation rate must scale with eps0 the way the theory says: the
// bound's half-width is ~eps0 standard deviations of the estimator error,
// so the one-sided violation rate tracks the Gaussian tail P(Z > eps0):
//   eps0 = 0.5 -> ~31%,  eps0 = 1.9 -> ~2.9%,  eps0 = 4.0 -> ~0.003%.
// The assertions bracket each rate loosely enough for 10k correlated pairs
// while still catching an off-by-sqrt(B) or sign regression (which shifts
// every rate by orders of magnitude).
TEST_F(ErrorBoundPropertyTest, ViolationRateTracksEpsilon) {
  const float eps0s[] = {0.5f, 1.9f, 4.0f};
  const double lo[] = {0.15, 0.0, 0.0};
  const double hi[] = {0.50, 0.06, 0.002};
  double prev_rate = 1.0;
  for (int i = 0; i < 3; ++i) {
    std::size_t violations = 0, pairs = 0;
    double ip_error_sum = 0.0;
    Sample(eps0s[i], &violations, &pairs, &ip_error_sum);
    ASSERT_EQ(pairs, kNumVectors * kNumQueries);
    const double rate = static_cast<double>(violations) / pairs;
    EXPECT_GE(rate, lo[i]) << "eps0=" << eps0s[i] << ": " << violations
                           << "/" << pairs;
    EXPECT_LE(rate, hi[i]) << "eps0=" << eps0s[i] << ": " << violations
                           << "/" << pairs;
    EXPECT_LE(rate, prev_rate) << "rate must fall as eps0 grows";
    prev_rate = rate;
  }
}

TEST_F(ErrorBoundPropertyTest, EstimatorIsUnbiased) {
  // The per-code quantization error is FIXED once P is sampled, so the
  // 10k pairs collapse to ~kNumVectors independent samples; average over
  // several encoder seeds to actually exercise the expectation over P.
  double total = 0.0;
  std::size_t total_pairs = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    RabitqConfig config;
    config.seed = 0xC0FFEE00ULL + seed;
    RabitqEncoder enc;
    ASSERT_TRUE(enc.Init(kDim, config).ok());
    RabitqCodeStore store(enc.total_bits());
    for (const auto& vec : vectors_) {
      ASSERT_TRUE(
          enc.EncodeAppend(vec.data(), centroid_.data(), &store).ok());
    }
    Rng rng(555 + seed);
    QuantizedQuery qq;
    for (std::size_t q = 0; q < 10; ++q) {
      ASSERT_TRUE(PrepareQuery(enc, queries_[q].data(), centroid_.data(),
                               &rng, &qq)
                      .ok());
      for (std::size_t i = 0; i < kNumVectors; ++i) {
        const DistanceEstimate est =
            EstimateDistance(qq, store.View(i), 1.9f);
        std::vector<float> o(kDim), qr(kDim);
        Subtract(vectors_[i].data(), centroid_.data(), o.data(), kDim);
        Subtract(queries_[q].data(), centroid_.data(), qr.data(), kDim);
        const float no = Norm(o.data(), kDim), nq = Norm(qr.data(), kDim);
        if (no > 0.0f && nq > 0.0f) {
          total += est.ip - Dot(o.data(), qr.data(), kDim) / (no * nq);
          ++total_pairs;
        }
      }
    }
  }
  // ~800 effective samples of per-code error (std ~0.094) -> se ~0.0033;
  // 0.015 is a ~4.5 sigma acceptance band around zero.
  EXPECT_LT(std::fabs(total / total_pairs), 0.015);
}

TEST_F(ErrorBoundPropertyTest, CompactionPreservesEstimatesBitForBit) {
  // Tombstone a third of the codes, compact, and require every survivor's
  // estimate (and bound) to be bit-identical to the original store's.
  std::vector<std::uint8_t> dead(kNumVectors, 0);
  for (std::size_t i = 0; i < kNumVectors; i += 3) dead[i] = 1;
  RabitqCodeStore compacted;
  store_.CompactInto(dead.data(), &compacted);

  Rng rng(4242);
  QuantizedQuery qq;
  for (std::size_t q = 0; q < 5; ++q) {
    ASSERT_TRUE(PrepareQuery(encoder_, queries_[q].data(), centroid_.data(),
                             &rng, &qq)
                    .ok());
    std::vector<float> est_all(store_.size()), lb_all(store_.size());
    std::vector<float> est_live(compacted.size()), lb_live(compacted.size());
    EstimateAll(qq, store_, 1.9f, est_all.data(), lb_all.data());
    EstimateAll(qq, compacted, 1.9f, est_live.data(), lb_live.data());
    std::size_t j = 0;
    for (std::size_t i = 0; i < kNumVectors; ++i) {
      if (dead[i]) continue;
      EXPECT_EQ(est_all[i], est_live[j]) << "estimate drifted at code " << i;
      EXPECT_EQ(lb_all[i], lb_live[j]) << "bound drifted at code " << i;
      ++j;
    }
  }
}

TEST_F(ErrorBoundPropertyTest, ReEncodingIsDeterministic) {
  // The other half of "compaction can't break unbiasedness": re-encoding
  // the same vector against the same centroid reproduces the exact code,
  // so a rebuild-from-raw compaction strategy would also be lossless.
  RabitqCodeStore again(encoder_.total_bits());
  for (const auto& vec : vectors_) {
    ASSERT_TRUE(
        encoder_.EncodeAppend(vec.data(), centroid_.data(), &again).ok());
  }
  ASSERT_EQ(again.size(), store_.size());
  for (std::size_t i = 0; i < store_.size(); ++i) {
    for (std::size_t w = 0; w < store_.words_per_code(); ++w) {
      ASSERT_EQ(store_.BitsAt(i)[w], again.BitsAt(i)[w]);
    }
    EXPECT_EQ(store_.dist_to_centroid(i), again.dist_to_centroid(i));
    EXPECT_EQ(store_.o_o(i), again.o_o(i));
    EXPECT_EQ(store_.bit_count(i), again.bit_count(i));
  }
}

}  // namespace
}  // namespace rabitq
